// Report-ingestion throughput: the batched/sharded pipeline this library
// uses to absorb millions of user reports, versus the textbook one-report-
// at-a-time baseline.
//
// The headline comparison is OLH ingestion + finalize, whose O(N*D) support
// scan is the aggregation bottleneck the paper flags (Section 3.2):
//   * Eager          — the seed implementation: a full O(D) domain scan per
//                      report inside SubmitValue, single thread.
//   * DeferredSingle — reports are only appended at ingest; Finalize runs
//                      one cache-blocked, branchless support scan on one
//                      thread.
//   * DeferredSharded — the same scan parallelized over reports with
//                      per-thread support accumulators (one per hardware
//                      core).
// All three produce bit-identical support counts (tests/olh_test.cc).
//
// The mechanism-level benches measure the end-to-end EncodeUsers batch path
// and the EncodeUsersSharded driver for the paper's three mechanism
// families.
//
// Release-mode numbers for this binary are checked in as
// BENCH_baseline.json (see bench/run_baselines.sh); later PRs claim
// speedups against those. CI runs only the */1024 cases as a smoke test.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "core/method.h"
#include "frequency/olh.h"

namespace {

using namespace ldp;  // NOLINT(build/namespaces)

constexpr double kEps = 1.1;  // the paper's default, g = e^eps + 1 = 4

// A fixed pseudo-random population over [0, d): ingestion cost does not
// depend on the value distribution, only on N and D.
std::vector<uint64_t> MakeValues(uint64_t n, uint64_t d) {
  std::vector<uint64_t> values(n);
  Rng rng(7);
  for (uint64_t& v : values) {
    v = rng.UniformInt(d);
  }
  return values;
}

enum class OlhVariant { kEager, kDeferredSingle, kDeferredSharded };

void RunOlhIngest(benchmark::State& state, OlhVariant variant) {
  const uint64_t d = state.range(0);
  const uint64_t n = state.range(1);
  const std::vector<uint64_t> values = MakeValues(n, d);
  for (auto _ : state) {
    OlhOracle oracle(d, kEps, /*g_override=*/0,
                     variant == OlhVariant::kEager ? OlhDecode::kEager
                                                   : OlhDecode::kDeferred);
    oracle.set_decode_threads(
        variant == OlhVariant::kDeferredSharded ? 0 : 1);
    Rng rng(42);
    oracle.SubmitBatch(values, rng);
    oracle.Finalize(rng);
    benchmark::DoNotOptimize(oracle.SupportCounts().data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["threads"] = static_cast<double>(
      variant == OlhVariant::kDeferredSharded ? HardwareThreads() : 1);
}

void BM_OlhIngestFinalize_Eager(benchmark::State& state) {
  RunOlhIngest(state, OlhVariant::kEager);
}
void BM_OlhIngestFinalize_DeferredSingle(benchmark::State& state) {
  RunOlhIngest(state, OlhVariant::kDeferredSingle);
}
void BM_OlhIngestFinalize_DeferredSharded(benchmark::State& state) {
  RunOlhIngest(state, OlhVariant::kDeferredSharded);
}

// {D, N}. The acceptance case is D = 2^16; the 1024 rows are the CI smoke
// (fast enough for every variant). N is kept moderate because the eager
// baseline is O(N*D).
#define OLH_INGEST_ARGS \
  ->Args({1 << 10, 1 << 12})->Args({1 << 16, 1 << 11})->Unit(benchmark::kMillisecond)

BENCHMARK(BM_OlhIngestFinalize_Eager) OLH_INGEST_ARGS;
BENCHMARK(BM_OlhIngestFinalize_DeferredSingle) OLH_INGEST_ARGS;
BENCHMARK(BM_OlhIngestFinalize_DeferredSharded) OLH_INGEST_ARGS;

// Ingest-only view (no finalize): what a live collection endpoint pays per
// report while the stream is still open.
void BM_OlhSubmitBatch_Deferred(benchmark::State& state) {
  const uint64_t d = state.range(0);
  const uint64_t n = state.range(1);
  const std::vector<uint64_t> values = MakeValues(n, d);
  for (auto _ : state) {
    OlhOracle oracle(d, kEps);
    Rng rng(42);
    oracle.SubmitBatch(values, rng);
    benchmark::DoNotOptimize(oracle.pending_reports());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_OlhSubmitBatch_Deferred)
    ->Args({1 << 10, 1 << 15})
    ->Args({1 << 16, 1 << 15})
    ->Unit(benchmark::kMillisecond);

MethodSpec MechanismSpec(int id) {
  switch (id) {
    case 0:
      return MethodSpec::Flat(OracleKind::kOueSimulated);
    case 1:
      return MethodSpec::Hh(4, OracleKind::kOueSimulated, true);
    default:
      return MethodSpec::Haar();
  }
}

void RunMechanismIngest(benchmark::State& state, bool sharded) {
  const uint64_t d = state.range(0);
  const uint64_t n = state.range(1);
  const MethodSpec spec = MechanismSpec(static_cast<int>(state.range(2)));
  const std::vector<uint64_t> values = MakeValues(n, d);
  for (auto _ : state) {
    auto mech = MakeMechanism(spec, d, kEps);
    if (sharded) {
      EncodeUsersSharded(*mech, values, /*seed=*/42, /*threads=*/0);
    } else {
      Rng rng(42);
      mech->EncodeUsers(values, rng);
    }
    benchmark::DoNotOptimize(mech->user_count());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(spec.Name());
}

void BM_MechanismEncodeUsers(benchmark::State& state) {
  RunMechanismIngest(state, /*sharded=*/false);
}
void BM_MechanismEncodeUsersSharded(benchmark::State& state) {
  RunMechanismIngest(state, /*sharded=*/true);
}

// {D, N, spec id}.
#define MECH_INGEST_ARGS                                            \
  ->Args({1 << 10, 1 << 15, 0})->Args({1 << 10, 1 << 15, 1})        \
      ->Args({1 << 10, 1 << 15, 2})->Args({1 << 16, 1 << 18, 1})    \
      ->Args({1 << 16, 1 << 18, 2})->Unit(benchmark::kMillisecond)

BENCHMARK(BM_MechanismEncodeUsers) MECH_INGEST_ARGS;
BENCHMARK(BM_MechanismEncodeUsersSharded) MECH_INGEST_ARGS;

}  // namespace

BENCHMARK_MAIN();
