// Reproduces paper Figure 8: "Impact of varying the distribution center
// (P x D) on mean squared error for various domain sizes D." The Cauchy
// center parameter P sweeps 0.1..0.9 at the default e^eps = 3; for each D
// we compare HaarHRR against the best consistent HH method from Table 5
// (HHc4, per the paper).
//
// Expected shape (paper Section 5.4): curves are essentially flat for
// small/medium domains — the input shape barely matters — with a mild
// uptick for left-skewed data (P <= 0.3) on the largest domains, an
// artifact of the strided query sampling. Absolute MSEs stay small.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/method.h"
#include "data/distributions.h"
#include "data/workload.h"
#include "eval/experiment.h"
#include "eval/table_printer.h"

namespace {

using namespace ldp;         // NOLINT(build/namespaces)
using namespace ldp::bench;  // NOLINT(build/namespaces)

QueryWorkload WorkloadFor(uint64_t domain) {
  if (domain <= (1 << 8)) {
    return QueryWorkload::AllRanges();
  }
  return QueryWorkload::Strided(domain >> 5, domain >> 8);
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  uint64_t population = PopulationFor(options, 1 << 17, 1 << 20, 1 << 26);
  uint64_t trials = TrialsFor(options, 3, 5, 5);
  PrintHeader("Figure 8: MSE vs distribution center P",
              "Cormode, Kulkarni, Srivastava (VLDB'19), Figure 8", options,
              population, trials);

  std::vector<uint64_t> domains;
  if (options.scale == "paper") {
    domains = {1ull << 8, 1ull << 16, 1ull << 20, 1ull << 22};
  } else if (options.scale == "full") {
    domains = {1ull << 8, 1ull << 16};
  } else {
    domains = {1ull << 8, 1ull << 12};
  }
  const std::vector<double> centers = {0.1, 0.2, 0.3, 0.4, 0.5,
                                       0.6, 0.7, 0.8, 0.9};
  const std::vector<MethodSpec> methods = {
      MethodSpec::Hh(4, OracleKind::kOueSimulated, true),
      MethodSpec::Haar()};

  for (uint64_t domain : domains) {
    std::printf("\n--- D = %llu (MSE x1000) ---\n",
                static_cast<unsigned long long>(domain));
    std::vector<std::string> headers = {"P"};
    for (const MethodSpec& method : methods) {
      headers.push_back(method.Name());
    }
    TablePrinter table(headers);
    QueryWorkload workload = WorkloadFor(domain);
    for (double p : centers) {
      std::vector<std::string> row = {FormatScaled(p, 1.0, 1)};
      for (const MethodSpec& method : methods) {
        ExperimentConfig config;
        config.domain = domain;
        config.population = population;
        config.epsilon = 1.1;
        config.method = method;
        config.trials = trials;
        config.seed = options.seed;
        CauchyDistribution dist(domain, p);
        double mse = RunRangeExperiment(config, dist, workload).mean_mse();
        row.push_back(FormatScaled(mse, 1000.0, 4));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  std::printf(
      "\nCompare with paper Figure 8: near-flat rows; HaarHRR slightly "
      "behind HHc4 throughout; maximum MSE a few x10^-3.\n");
  return 0;
}
