// AHEAD vs fixed-fanout hierarchies: ingest + finalize + query cost and
// — the headline — range-query accuracy on uniform and Zipf-skewed data.
//
// The accuracy cases carry an `mse` counter over the random-range
// workload at D = 2^16, eps = 1, 200k users (the PR acceptance bar:
// AHEAD4's Zipf MSE must beat HHc4's — see BENCH_micro_ahead.json for
// the recorded margin). Timing cases show what adaptivity costs at
// ingest/finalize time and what the pruned tree saves per query.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "core/method.h"
#include "data/distributions.h"
#include "data/workload.h"

namespace {

using namespace ldp;  // NOLINT(build/namespaces)

constexpr double kEps = 1.0;
constexpr uint64_t kAccuracyDomain = 1 << 16;
constexpr uint64_t kAccuracyUsers = 200000;

MethodSpec SpecFor(int id) {
  switch (id) {
    case 0:
      return MethodSpec::Ahead(4);
    case 1:
      return MethodSpec::Hh(4, OracleKind::kOueSimulated, true);
    default:
      return MethodSpec::Hh(16, OracleKind::kOueSimulated, true);
  }
}

std::unique_ptr<ValueDistribution> DistFor(int id, uint64_t domain) {
  if (id == 0) return std::make_unique<UniformDistribution>(domain);
  return std::make_unique<ZipfDistribution>(domain, 1.1);
}

const char* DistName(int id) { return id == 0 ? "Uniform" : "Zipf"; }

const std::vector<uint64_t>& PopulationFor(int dist_id, uint64_t domain,
                                           uint64_t n) {
  // Memoized per (dist, domain, n): sampling 200k Zipf values per
  // benchmark repetition would otherwise dominate the timings.
  static std::map<std::tuple<int, uint64_t, uint64_t>,
                  std::vector<uint64_t>>
      cache;
  auto key = std::make_tuple(dist_id, domain, n);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  std::vector<uint64_t> values(n);
  Rng rng(42);
  auto dist = DistFor(dist_id, domain);
  for (uint64_t& v : values) v = dist->Sample(rng);
  return cache.emplace(key, std::move(values)).first->second;
}

void BM_IngestFinalize(benchmark::State& state) {
  uint64_t d = state.range(0);
  MethodSpec spec = SpecFor(static_cast<int>(state.range(1)));
  int dist_id = static_cast<int>(state.range(2));
  const std::vector<uint64_t>& values = PopulationFor(dist_id, d, 100000);
  for (auto _ : state) {
    auto mech = MakeMechanism(spec, d, kEps);
    Rng rng(7);
    mech->EncodeUsers(values, rng);
    Rng fin(11);
    mech->Finalize(fin);
    benchmark::DoNotOptimize(mech.get());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
  state.SetLabel(std::string(spec.Name()) + "/" + DistName(dist_id));
}
BENCHMARK(BM_IngestFinalize)
    ->Args({1 << 12, 0, 1})
    ->Args({1 << 12, 1, 1})
    ->Args({1 << 16, 0, 0})
    ->Args({1 << 16, 0, 1})
    ->Args({1 << 16, 1, 1})
    ->Args({1 << 16, 2, 1})
    ->Unit(benchmark::kMillisecond);

void BM_RangeQuery(benchmark::State& state) {
  uint64_t d = state.range(0);
  MethodSpec spec = SpecFor(static_cast<int>(state.range(1)));
  int dist_id = static_cast<int>(state.range(2));
  const std::vector<uint64_t>& values = PopulationFor(dist_id, d, 100000);
  auto mech = MakeMechanism(spec, d, kEps);
  Rng rng(7);
  mech->EncodeUsers(values, rng);
  Rng fin(11);
  mech->Finalize(fin);
  uint64_t a = 0;
  for (auto _ : state) {
    uint64_t lo = (a * 2654435761u) % (d / 2);
    uint64_t hi = lo + d / 3;
    benchmark::DoNotOptimize(mech->RangeQuery(lo, hi));
    ++a;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(spec.Name()) + "/" + DistName(dist_id));
}
BENCHMARK(BM_RangeQuery)
    ->Args({1 << 16, 0, 1})
    ->Args({1 << 16, 1, 1})
    ->Args({1 << 16, 2, 1});

// One full accuracy trial per iteration at the acceptance-bar scale; the
// `mse` counter is the mean over iterations (so run with the default
// repetitions and read the counter, not the time).
void BM_AccuracyMse(benchmark::State& state) {
  uint64_t d = kAccuracyDomain;
  MethodSpec spec = SpecFor(static_cast<int>(state.range(0)));
  int dist_id = static_cast<int>(state.range(1));
  const std::vector<uint64_t>& values =
      PopulationFor(dist_id, d, kAccuracyUsers);
  std::vector<double> prefix(d + 1, 0.0);
  {
    std::vector<double> truth(d, 0.0);
    for (uint64_t v : values) {
      truth[v] += 1.0 / static_cast<double>(values.size());
    }
    for (uint64_t j = 0; j < d; ++j) prefix[j + 1] = prefix[j] + truth[j];
  }
  double mse_sum = 0.0;
  uint64_t trials = 0;
  for (auto _ : state) {
    auto mech = MakeMechanism(spec, d, kEps);
    Rng rng(1000 + trials);
    mech->EncodeUsers(values, rng);
    Rng fin(2000 + trials);
    mech->Finalize(fin);
    double se = 0.0;
    uint64_t queries = 0;
    QueryWorkload::Random(400, 9).Visit(d, [&](uint64_t a, uint64_t b) {
      double err = mech->RangeQuery(a, b) - (prefix[b + 1] - prefix[a]);
      se += err * err;
      ++queries;
    });
    mse_sum += se / static_cast<double>(queries);
    ++trials;
  }
  state.counters["mse"] =
      benchmark::Counter(mse_sum / static_cast<double>(trials));
  state.counters["report_bits"] = benchmark::Counter(
      MakeMechanism(spec, d, kEps)->ReportBits());
  state.SetLabel(std::string(spec.Name()) + "/" + DistName(dist_id));
}
BENCHMARK(BM_AccuracyMse)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
