#!/usr/bin/env bash
# Records the paper's figure/table harnesses (fig4, fig7-9, table5-6) at
# --scale=paper into BENCH_paper_scale.json at the repo root, so the perf
# trajectory covers paper-scale runs and not just the quick-scale micros.
#
# Each row embeds the harness's verbatim stdout; the harness header line
# prints the EFFECTIVE scale/N/trials, so any override passed here is
# self-documenting in the recorded file rather than silently baked in.
#
# Full fidelity (--scale=paper alone: N = 2^26, per-harness paper trial
# counts, domains to 2^22) is hours of CPU on a big machine. On a small or
# shared box, cap the per-cell cost and keep the paper domain sweep:
#
#   bench/run_paper_scale.sh --n=16777216 --trials=1
#
# Extra arguments are forwarded to every harness verbatim.
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_paper_scale.json"
harnesses=(
  bench_fig9_quantiles
  bench_fig7_centralized
  bench_fig8_distribution
  bench_table5_epsilon
  bench_table6_prefix
  bench_fig4_branching
)

cmake --preset release -DLDP_BUILD_BENCH=ON >/dev/null
cmake --build --preset release -j"$(nproc)" --target "${harnesses[@]}" \
  >/dev/null

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

for binary in "${harnesses[@]}"; do
  echo "== ${binary} --scale=paper $* -> ${out}"
  start=$SECONDS
  "build-release/bench/${binary}" --scale=paper "$@" \
    >"${workdir}/${binary}.txt"
  echo "$((SECONDS - start))" >"${workdir}/${binary}.seconds"
done

python3 - "${out}" "${workdir}" "$@" <<'EOF'
import json, os, platform, sys

out, workdir, extra = sys.argv[1], sys.argv[2], sys.argv[3:]
rows = []
for name in sorted(os.listdir(workdir)):
    if not name.endswith(".txt"):
        continue
    harness = name[: -len(".txt")]
    with open(os.path.join(workdir, name)) as f:
        text = f.read()
    with open(os.path.join(workdir, harness + ".seconds")) as f:
        seconds = int(f.read().strip())
    rows.append(
        {
            "harness": harness,
            "argv": ["--scale=paper"] + extra,
            "wall_seconds": seconds,
            "output": text.splitlines(),
        }
    )
doc = {
    "comment": (
        "Paper-scale figure/table rows recorded by bench/run_paper_scale.sh. "
        "Each harness header line states the effective scale/N/trials for "
        "its rows; re-run without overrides on a big machine for full "
        "fidelity (N=2^26, paper trial counts)."
    ),
    "host": {"machine": platform.machine(), "cpus": os.cpu_count()},
    "harnesses": rows,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out} ({len(rows)} harnesses)")
EOF
