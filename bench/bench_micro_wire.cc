// Microbenchmarks for the wire serialization layer: what does the v2
// envelope (envelope.h) cost over the seed's raw v1 framing on the
// report hot path? Batch sizes match PR 2's ingest baselines
// (BENCH_baseline.json: 32768 and 262144 users) — the guard for the
// claim that framing costs < 2% versus the raw v1 path at those sizes.
// Measured on the baseline box the claim holds with margin: the batch
// frame (one 8-byte header + count varint amortized over the whole
// batch, one allocation) encodes ~1.6x and decodes ~1.5x FASTER than
// the per-report v1 loop; only the per-report v2 path — one envelope
// per 9-byte payload, which no batch caller ships — pays real overhead.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "protocol/envelope.h"
#include "protocol/flat_protocol.h"
#include "protocol/wire.h"

namespace {

using namespace ldp;  // NOLINT(build/namespaces)

constexpr double kEps = 1.1;
constexpr uint64_t kDomain = 1 << 16;

std::vector<HrrReport> MakeReports(int64_t n) {
  protocol::FlatHrrClient client(kDomain, kEps);
  Rng rng(1);
  std::vector<uint64_t> values(n);
  for (int64_t i = 0; i < n; ++i) {
    values[i] = static_cast<uint64_t>(i) % kDomain;
  }
  return client.EncodeUsers(values, rng);
}

// --- encode: per-report framing, v1 vs v2 --------------------------------

void BM_WireEncodeReportsV1(benchmark::State& state) {
  std::vector<HrrReport> reports = MakeReports(state.range(0));
  for (auto _ : state) {
    for (const HrrReport& report : reports) {
      benchmark::DoNotOptimize(
          protocol::SerializeHrrReport(report, protocol::kWireVersionV1));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WireEncodeReportsV1)->Arg(32768)->Arg(262144);

void BM_WireEncodeReportsV2(benchmark::State& state) {
  std::vector<HrrReport> reports = MakeReports(state.range(0));
  for (auto _ : state) {
    for (const HrrReport& report : reports) {
      benchmark::DoNotOptimize(protocol::SerializeHrrReport(report));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WireEncodeReportsV2)->Arg(32768)->Arg(262144);

// One envelope for the whole batch: the deployment shape for PR 2's
// EncodeUsers path.
void BM_WireEncodeBatchV2(benchmark::State& state) {
  std::vector<HrrReport> reports = MakeReports(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol::SerializeHrrReportBatch(reports));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WireEncodeBatchV2)->Arg(32768)->Arg(262144);

// --- decode: per-report parsing, v1 vs v2 --------------------------------

void BM_WireDecodeReportsV1(benchmark::State& state) {
  std::vector<HrrReport> reports = MakeReports(state.range(0));
  std::vector<std::vector<uint8_t>> wire;
  wire.reserve(reports.size());
  for (const HrrReport& report : reports) {
    wire.push_back(
        protocol::SerializeHrrReport(report, protocol::kWireVersionV1));
  }
  for (auto _ : state) {
    HrrReport out;
    for (const std::vector<uint8_t>& bytes : wire) {
      benchmark::DoNotOptimize(protocol::ParseHrrReport(bytes, &out));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WireDecodeReportsV1)->Arg(32768)->Arg(262144);

void BM_WireDecodeReportsV2(benchmark::State& state) {
  std::vector<HrrReport> reports = MakeReports(state.range(0));
  std::vector<std::vector<uint8_t>> wire;
  wire.reserve(reports.size());
  for (const HrrReport& report : reports) {
    wire.push_back(protocol::SerializeHrrReport(report));
  }
  for (auto _ : state) {
    HrrReport out;
    for (const std::vector<uint8_t>& bytes : wire) {
      benchmark::DoNotOptimize(protocol::ParseHrrReport(bytes, &out));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WireDecodeReportsV2)->Arg(32768)->Arg(262144);

void BM_WireDecodeBatchV2(benchmark::State& state) {
  std::vector<uint8_t> framed =
      protocol::SerializeHrrReportBatch(MakeReports(state.range(0)));
  for (auto _ : state) {
    std::vector<HrrReport> out;
    benchmark::DoNotOptimize(protocol::ParseHrrReportBatch(framed, &out));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WireDecodeBatchV2)->Arg(32768)->Arg(262144);

// --- envelope frame alone (header encode + full header validation) -------

void BM_WireEnvelopeFrameOnly(benchmark::State& state) {
  std::vector<uint8_t> payload(9, 0xAB);
  for (auto _ : state) {
    std::vector<uint8_t> msg =
        protocol::EncodeEnvelope(protocol::MechanismTag::kFlatHrr, payload);
    protocol::Envelope env;
    benchmark::DoNotOptimize(protocol::DecodeEnvelope(msg, &env));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireEnvelopeFrameOnly);

}  // namespace

BENCHMARK_MAIN();
