// Reproduces paper Figure 7 — a reprint of Qardaji et al. (VLDB'13)
// Table 3: average variance over ALL range queries in the CENTRALIZED
// model at eps = 1, for the wavelet mechanism and consistent hierarchies
// HHc16 / HHc2, plus the two ratio rows the paper's argument rests on.
//
// The paper's point: centrally, the wavelet is ~1.9-2.8x WORSE than the
// optimized hierarchy — whereas locally (Tables 5/6) the two are within a
// few percent. We rebuild the centralized mechanisms from scratch (Laplace
// hierarchies with uniform budget split + consistency; privelet-style
// wavelet with per-level sensitivity); see src/central/*.h for the
// sensitivity derivations and EXPERIMENTS.md for the substitution notes.
// Absolute values differ from Qardaji's implementation; the ratio rows are
// the comparable quantity.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "central/average_variance.h"
#include "common/random.h"
#include "eval/table_printer.h"

namespace {

using namespace ldp;         // NOLINT(build/namespaces)
using namespace ldp::bench;  // NOLINT(build/namespaces)

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  // Monte-Carlo trials for the consistency-processed hierarchy.
  uint64_t trials = TrialsFor(options, 30, 100, 300);
  PrintHeader("Figure 7: centralized wavelet vs hierarchical baselines",
              "Cormode, Kulkarni, Srivastava (VLDB'19), Figure 7 / "
              "Qardaji et al. Table 3",
              options, /*population=*/0, trials);

  const double eps = 1.0;
  std::vector<uint64_t> domains = {1ull << 8, 1ull << 9, 1ull << 10,
                                   1ull << 11};

  std::vector<std::string> headers = {"row"};
  for (uint64_t d : domains) {
    headers.push_back("D=" + std::to_string(d));
  }
  TablePrinter table(headers);

  std::vector<double> wavelet;
  std::vector<double> hhc16;
  std::vector<double> hhc2;
  Rng rng(options.seed);
  for (uint64_t d : domains) {
    wavelet.push_back(CentralWaveletAverageVariance(d, eps));
    hhc16.push_back(
        CentralHierarchicalConsistentAverageVariance(d, eps, 16, trials,
                                                     rng));
    hhc2.push_back(
        CentralHierarchicalConsistentAverageVariance(d, eps, 2, trials,
                                                     rng));
  }

  auto add_row = [&](const std::string& label,
                     const std::vector<double>& values, int precision) {
    std::vector<std::string> row = {label};
    for (double v : values) {
      row.push_back(FormatScaled(v, 1.0, precision));
    }
    table.AddRow(row);
  };
  add_row("Wavelet", wavelet, 2);
  add_row("HHc16", hhc16, 2);
  add_row("HHc2", hhc2, 2);
  std::vector<double> ratio_wavelet;
  std::vector<double> ratio_hhc2;
  for (size_t i = 0; i < domains.size(); ++i) {
    ratio_wavelet.push_back(wavelet[i] / hhc16[i]);
    ratio_hhc2.push_back(hhc2[i] / hhc16[i]);
  }
  add_row("Wavelet/HHc16", ratio_wavelet, 4);
  add_row("HHc2/HHc16", ratio_hhc2, 4);
  table.Print(std::cout);

  std::printf(
      "\nPaper's Figure 7 reference ratios (Qardaji et al. "
      "implementation):\n"
      "  Wavelet/HHc16: 2.7971  1.8622  2.20    2.5077\n"
      "  HHc2/HHc16:    2.777   1.8576  2.202   2.5044\n"
      "Expected shape: both ratios clearly above 1 (the wavelet loses "
      "centrally, and HHc2 tracks it), in contrast to the near-parity of "
      "wavelet and HH under LDP in Tables 5/6.\n");
  return 0;
}
