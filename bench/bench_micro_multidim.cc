// The Section 6 question in microbenchmark form: what does answering
// rectangle queries with the 2-D hierarchical grid cost — and buy —
// versus the naive product-of-1-D baseline (split the population across
// two independent 1-D hierarchies, one per axis, and estimate each
// rectangle as the product of its marginals)?
//
// The two error sources are different in kind, and the counters keep
// them apart. The grid is unbiased but pays the paper's log^{2d} D
// variance — at D = 2^10 per axis and quick-scale n its `mse` is all
// variance, shrinking as 1/n. The baseline is cheap and low-variance but
// its independence assumption is wrong whenever the axes are correlated:
// its `bias_floor_mse` (product of the EXACT marginals vs truth, no LDP
// noise at all) is the error it keeps at any population size. On the
// diagonally-correlated workload here the baseline wins at quick scale;
// the floor is where the grid overtakes it as n grows. Timing cases
// cover ingest + finalize and per-rectangle query cost.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/hierarchical.h"
#include "core/multidim.h"

namespace {

using namespace ldp;  // NOLINT(build/namespaces)

constexpr uint64_t kAxisDomain = 1 << 10;
constexpr double kEps = 1.0;
constexpr uint64_t kUsers = 100000;
constexpr int kRectangles = 200;

HierarchicalGridConfig GridConfig() {
  HierarchicalGridConfig config;
  config.fanout = 2;
  return config;
}

HierarchicalConfig AxisConfig() {
  HierarchicalConfig config;
  config.fanout = 2;
  return config;
}

// Diagonally-correlated points: x uniform, y within a narrow band of x.
// The grid sees the joint distribution; product-of-marginals sees two
// nearly-uniform axes and misses the correlation entirely.
const std::vector<uint64_t>& Points() {
  static const std::vector<uint64_t> points = [] {
    std::vector<uint64_t> out;
    out.reserve(2 * kUsers);
    Rng rng(42);
    for (uint64_t i = 0; i < kUsers; ++i) {
      uint64_t x = rng.UniformInt(kAxisDomain);
      uint64_t offset = rng.UniformInt(64);
      uint64_t y = std::min(x + offset, kAxisDomain - 1);
      out.push_back(x);
      out.push_back(y);
    }
    return out;
  }();
  return points;
}

struct Rect {
  uint64_t ax, bx, ay, by;
};

const std::vector<Rect>& Rectangles() {
  static const std::vector<Rect> rects = [] {
    std::vector<Rect> out;
    Rng rng(7);
    for (int i = 0; i < kRectangles; ++i) {
      uint64_t ax = rng.UniformInt(kAxisDomain);
      uint64_t bx = ax + rng.UniformInt(kAxisDomain - ax);
      uint64_t ay = rng.UniformInt(kAxisDomain);
      uint64_t by = ay + rng.UniformInt(kAxisDomain - ay);
      out.push_back({ax, bx, ay, by});
    }
    return out;
  }();
  return rects;
}

const std::vector<double>& Truth() {
  static const std::vector<double> truth = [] {
    const std::vector<uint64_t>& points = Points();
    std::vector<double> out;
    out.reserve(Rectangles().size());
    for (const Rect& r : Rectangles()) {
      uint64_t count = 0;
      for (size_t i = 0; i < points.size(); i += 2) {
        if (points[i] >= r.ax && points[i] <= r.bx &&
            points[i + 1] >= r.ay && points[i + 1] <= r.by) {
          ++count;
        }
      }
      out.push_back(static_cast<double>(count) / kUsers);
    }
    return out;
  }();
  return truth;
}

std::unique_ptr<Hierarchical2D> BuildGrid(
    GridDecode decode = GridDecode::kDeferred) {
  HierarchicalGridConfig config = GridConfig();
  config.decode = decode;
  auto grid = std::make_unique<Hierarchical2D>(kAxisDomain, kEps, config);
  Rng rng(11);
  grid->EncodePoints(Points(), rng);
  Rng fin(13);
  grid->Finalize(fin);
  return grid;
}

// The naive baseline: the population is split in half, each half reports
// one coordinate through an independent 1-D hierarchy at the same eps,
// and a rectangle is estimated as the product of the two marginals.
struct ProductBaseline {
  HierarchicalMechanism x;
  HierarchicalMechanism y;

  ProductBaseline()
      : x(kAxisDomain, kEps, AxisConfig()),
        y(kAxisDomain, kEps, AxisConfig()) {
    const std::vector<uint64_t>& points = Points();
    Rng rng(11);
    for (size_t i = 0; i < points.size(); i += 2) {
      if ((i / 2) % 2 == 0) {
        x.EncodeUser(points[i], rng);
      } else {
        y.EncodeUser(points[i + 1], rng);
      }
    }
    Rng fin(13);
    x.Finalize(fin);
    y.Finalize(fin);
  }

  double Query(const Rect& r) const {
    return x.RangeQuery(r.ax, r.bx) * y.RangeQuery(r.ay, r.by);
  }
};

double Mse(const std::vector<double>& estimates) {
  const std::vector<double>& truth = Truth();
  double sum = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    double err = estimates[i] - truth[i];
    sum += err * err;
  }
  return sum / static_cast<double>(truth.size());
}

// The baseline's irreducible error: product of the exact (noise-free)
// marginals vs the joint truth — what remains when n -> infinity.
double BiasFloorMse() {
  const std::vector<uint64_t>& points = Points();
  std::vector<double> estimates;
  estimates.reserve(Rectangles().size());
  for (const Rect& r : Rectangles()) {
    uint64_t in_x = 0;
    uint64_t in_y = 0;
    for (size_t i = 0; i < points.size(); i += 2) {
      in_x += points[i] >= r.ax && points[i] <= r.bx;
      in_y += points[i + 1] >= r.ay && points[i + 1] <= r.by;
    }
    estimates.push_back(static_cast<double>(in_x) *
                        static_cast<double>(in_y) /
                        (static_cast<double>(kUsers) * kUsers));
  }
  return Mse(estimates);
}

void BM_GridIngestFinalize(benchmark::State& state) {
  for (auto _ : state) {
    auto grid = BuildGrid();
    benchmark::DoNotOptimize(grid.get());
  }
  state.SetItemsProcessed(state.iterations() * kUsers);
}
BENCHMARK(BM_GridIngestFinalize)->Unit(benchmark::kMillisecond);

// The eager baseline (one oracle update per report at ingest), kept
// benchmarked so the decode-strategy gap stays measured (bit-identical
// estimates; see multidim_test). Note eager shares the arena/sampler
// wins, so the live gap here is smaller than the >= 5x the CI smoke
// asserts against the pre-PR-7 eager number (419.57ms on this config).
void BM_GridIngestFinalizeEager(benchmark::State& state) {
  for (auto _ : state) {
    auto grid = BuildGrid(GridDecode::kEager);
    benchmark::DoNotOptimize(grid.get());
  }
  state.SetItemsProcessed(state.iterations() * kUsers);
}
BENCHMARK(BM_GridIngestFinalizeEager)->Unit(benchmark::kMillisecond);

void BM_ProductIngestFinalize(benchmark::State& state) {
  for (auto _ : state) {
    ProductBaseline baseline;
    benchmark::DoNotOptimize(&baseline);
  }
  state.SetItemsProcessed(state.iterations() * kUsers);
}
BENCHMARK(BM_ProductIngestFinalize)->Unit(benchmark::kMillisecond);

void BM_GridRectangleQuery(benchmark::State& state) {
  auto grid = BuildGrid();
  std::vector<double> estimates(Rectangles().size(), 0.0);
  for (auto _ : state) {
    for (size_t i = 0; i < Rectangles().size(); ++i) {
      const Rect& r = Rectangles()[i];
      estimates[i] = grid->RangeQuery(r.ax, r.bx, r.ay, r.by);
    }
    benchmark::DoNotOptimize(estimates.data());
  }
  state.SetItemsProcessed(state.iterations() * Rectangles().size());
  state.counters["mse"] = Mse(estimates);
}
BENCHMARK(BM_GridRectangleQuery)->Unit(benchmark::kMicrosecond);

void BM_ProductRectangleQuery(benchmark::State& state) {
  ProductBaseline baseline;
  std::vector<double> estimates(Rectangles().size(), 0.0);
  for (auto _ : state) {
    for (size_t i = 0; i < Rectangles().size(); ++i) {
      estimates[i] = baseline.Query(Rectangles()[i]);
    }
    benchmark::DoNotOptimize(estimates.data());
  }
  state.SetItemsProcessed(state.iterations() * Rectangles().size());
  state.counters["mse"] = Mse(estimates);
  state.counters["bias_floor_mse"] = BiasFloorMse();
}
BENCHMARK(BM_ProductRectangleQuery)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
