// Reproduces paper Table 6 (Figure 6): "Impact of varying eps on mean
// squared error for prefix queries", values scaled by 1000. Same grid as
// Table 5 but the workload is every prefix query [0, b]. Cells that
// improve on the corresponding arbitrary-range MSE (recomputed here, as
// Table 5 does) are suffixed '_' — the paper underlines them. The per-row
// minimum is marked '*'.
//
// Expected shape (paper Section 5.3): prefix errors are up to ~30% smaller
// than Table 5's, most visibly for small/medium domains (theory predicts a
// 0.5x variance factor, an upper-bound argument).

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/method.h"
#include "data/distributions.h"
#include "data/workload.h"
#include "eval/experiment.h"
#include "eval/table_printer.h"

namespace {

using namespace ldp;         // NOLINT(build/namespaces)
using namespace ldp::bench;  // NOLINT(build/namespaces)

QueryWorkload RangeWorkloadFor(uint64_t domain) {
  if (domain <= (1 << 8)) {
    return QueryWorkload::AllRanges();
  }
  return QueryWorkload::Strided(domain >> 5, domain >> 8);
}

void RunDomain(uint64_t domain, const std::vector<MethodSpec>& methods,
               const std::vector<double>& epsilons,
               const BenchOptions& options, uint64_t population,
               uint64_t trials) {
  std::printf("\n--- D = %llu (prefix-query MSE x1000; '_' = beats the "
              "arbitrary-range MSE) ---\n",
              static_cast<unsigned long long>(domain));
  std::vector<std::string> headers = {"eps"};
  for (const MethodSpec& method : methods) {
    headers.push_back(method.Name());
  }
  TablePrinter table(headers);
  CauchyDistribution dist(domain);
  QueryWorkload prefixes = QueryWorkload::Prefixes();
  QueryWorkload ranges = RangeWorkloadFor(domain);
  for (double eps : epsilons) {
    std::vector<std::string> row = {FormatScaled(eps, 1.0, 1)};
    std::vector<double> prefix_mse;
    std::vector<double> range_mse;
    for (const MethodSpec& method : methods) {
      ExperimentConfig config;
      config.domain = domain;
      config.population = population;
      config.epsilon = eps;
      config.method = method;
      config.trials = trials;
      config.seed = options.seed;
      prefix_mse.push_back(
          RunRangeExperiment(config, dist, prefixes).mean_mse());
      range_mse.push_back(
          RunRangeExperiment(config, dist, ranges).mean_mse());
    }
    std::vector<std::string> cells;
    for (size_t i = 0; i < prefix_mse.size(); ++i) {
      std::string cell = FormatScaled(prefix_mse[i], 1000.0, 3);
      if (prefix_mse[i] < range_mse[i]) {
        cell += "_";
      }
      cells.push_back(cell);
    }
    MarkRowMinimum(prefix_mse, cells);
    row.insert(row.end(), cells.begin(), cells.end());
    table.AddRow(row);
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  uint64_t population = PopulationFor(options, 1 << 17, 1 << 20, 1 << 26);
  uint64_t trials = TrialsFor(options, 3, 5, 5);
  PrintHeader("Table 6: MSE vs epsilon, prefix queries",
              "Cormode, Kulkarni, Srivastava (VLDB'19), Figure/Table 6",
              options, population, trials);

  const std::vector<double> epsilons = {0.2, 0.4, 0.6, 0.8,
                                        1.0, 1.1, 1.2, 1.4};
  std::vector<uint64_t> domains;
  if (options.scale == "paper") {
    domains = {1ull << 8, 1ull << 16, 1ull << 20, 1ull << 22};
  } else if (options.scale == "full") {
    domains = {1ull << 8, 1ull << 16};
  } else {
    domains = {1ull << 8, 1ull << 12};
  }
  for (uint64_t domain : domains) {
    std::vector<MethodSpec> methods = {
        MethodSpec::Hh(2, OracleKind::kOueSimulated, true),
        MethodSpec::Hh(4, OracleKind::kOueSimulated, true),
        MethodSpec::Hh(16, OracleKind::kOueSimulated, true),
        MethodSpec::Haar()};
    if (domain >= (1ull << 22)) {
      methods.erase(methods.begin() + 2);
    }
    RunDomain(domain, methods, epsilons, options, population, trials);
  }
  std::printf(
      "\nCompare with paper Table 6: many cells marked '_'; HHc4 tends to "
      "dominate at larger eps, HaarHRR at smaller eps.\n");
  return 0;
}
