// Microbenchmarks for the range mechanisms end to end: per-user encode
// cost, aggregator finalize cost (including consistency), and per-query
// cost — quantifying the paper's claim that "the related costs ... are very
// low for these methods, making them practical to deploy at scale". Also
// reports the per-user communication in bits as a counter.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "core/method.h"

namespace {

using namespace ldp;  // NOLINT(build/namespaces)

constexpr double kEps = 1.1;

MethodSpec SpecFor(int id) {
  switch (id) {
    case 0:
      return MethodSpec::Flat(OracleKind::kOueSimulated);
    case 1:
      return MethodSpec::Hh(4, OracleKind::kOueSimulated, true);
    case 2:
      return MethodSpec::Hh(16, OracleKind::kOueSimulated, true);
    case 3:
      return MethodSpec::Hh(2, OracleKind::kHrr, true);
    default:
      return MethodSpec::Haar();
  }
}

// Ingests a fixed synthetic population through the batch path (the
// ingestion idiom every harness now uses).
void IngestPopulation(RangeMechanism& mech, uint64_t n, uint64_t d,
                      Rng& rng) {
  std::vector<uint64_t> values(n);
  for (uint64_t i = 0; i < n; ++i) values[i] = i % d;
  mech.EncodeUsers(values, rng);
}

void BM_EncodeUser(benchmark::State& state) {
  uint64_t d = state.range(0);
  MethodSpec spec = SpecFor(static_cast<int>(state.range(1)));
  auto mech = MakeMechanism(spec, d, kEps);
  Rng rng(1);
  uint64_t v = 0;
  for (auto _ : state) {
    mech->EncodeUser(v++ % d, rng);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["report_bits"] = mech->ReportBits();
  state.SetLabel(spec.Name());
}
BENCHMARK(BM_EncodeUser)
    ->Args({1 << 12, 0})
    ->Args({1 << 12, 1})
    ->Args({1 << 12, 2})
    ->Args({1 << 12, 3})
    ->Args({1 << 12, 4})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4});

void BM_EncodeUsersBatch(benchmark::State& state) {
  uint64_t d = state.range(0);
  MethodSpec spec = SpecFor(static_cast<int>(state.range(1)));
  constexpr uint64_t kBatch = 4096;
  std::vector<uint64_t> values(kBatch);
  for (uint64_t i = 0; i < kBatch; ++i) values[i] = i % d;
  auto mech = MakeMechanism(spec, d, kEps);
  Rng rng(1);
  for (auto _ : state) {
    mech->EncodeUsers(values, rng);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.SetLabel(spec.Name());
}
BENCHMARK(BM_EncodeUsersBatch)
    ->Args({1 << 12, 0})
    ->Args({1 << 12, 1})
    ->Args({1 << 12, 4})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4});

void BM_Finalize(benchmark::State& state) {
  uint64_t d = state.range(0);
  MethodSpec spec = SpecFor(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(1);
    auto mech = MakeMechanism(spec, d, kEps);
    IngestPopulation(*mech, 20000, d, rng);
    state.ResumeTiming();
    mech->Finalize(rng);  // debias + (for HHc) consistency passes
    benchmark::DoNotOptimize(mech.get());
  }
  state.SetLabel(spec.Name());
}
BENCHMARK(BM_Finalize)
    ->Args({1 << 12, 1})
    ->Args({1 << 12, 4})
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 4});

void BM_RangeQuery(benchmark::State& state) {
  uint64_t d = state.range(0);
  MethodSpec spec = SpecFor(static_cast<int>(state.range(1)));
  Rng rng(1);
  auto mech = MakeMechanism(spec, d, kEps);
  IngestPopulation(*mech, 20000, d, rng);
  mech->Finalize(rng);
  uint64_t a = 0;
  for (auto _ : state) {
    uint64_t lo = (a * 2654435761u) % (d / 2);
    uint64_t hi = lo + d / 3;
    benchmark::DoNotOptimize(mech->RangeQuery(lo, hi));
    ++a;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(spec.Name());
}
BENCHMARK(BM_RangeQuery)
    ->Args({1 << 12, 0})
    ->Args({1 << 12, 1})
    ->Args({1 << 12, 2})
    ->Args({1 << 12, 4})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4});

void BM_QuantileQuery(benchmark::State& state) {
  uint64_t d = state.range(0);
  MethodSpec spec = SpecFor(static_cast<int>(state.range(1)));
  Rng rng(1);
  auto mech = MakeMechanism(spec, d, kEps);
  IngestPopulation(*mech, 20000, d, rng);
  mech->Finalize(rng);
  double phi = 0.05;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mech->QuantileQuery(phi));
    phi += 0.09;
    if (phi > 0.95) phi = 0.05;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(spec.Name());
}
BENCHMARK(BM_QuantileQuery)->Args({1 << 12, 1})->Args({1 << 12, 4});

}  // namespace

BENCHMARK_MAIN();
