// Ablation studies for the design choices the paper calls out:
//
//  (a) LEVEL SAMPLING vs BUDGET SPLITTING (Section 4.4 "Key difference
//      from the centralized case"): splitting eps over h levels should
//      cost ~h^2 vs sampling's ~h — the central idiom transplanted to LDP
//      loses badly, and more badly as eps shrinks.
//  (b) CONSISTENCY on/off across branching factors (Section 4.5 /
//      Lemma 4.6): CI never hurts, helps most at large B, and moves the
//      optimal B upward (4.92 -> 9.18).
//  (c) UNIFORM vs SKEWED level-sampling weights (Lemma 4.4): uniform
//      minimizes the variance sum; a linearly skewed allocation should
//      measurably lose.
//  (d) MEASURED vs THEORETICAL variance envelopes (Eqs. 1-3).
//  (e) OUE vs SUE (basic RAPPOR) as the HH primitive: the optimized
//      asymmetric bit flips beat the symmetric ones, increasingly so at
//      larger eps — why the paper builds on OUE.
//  (f) PAV-SMOOTHED quantiles (core/postprocess.h): enforcing CDF
//      monotonicity on the noisy prefixes, an extension beyond the
//      paper's raw binary search.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/hierarchical.h"
#include "core/method.h"
#include "core/postprocess.h"
#include "core/variance.h"
#include "data/dataset.h"
#include "data/distributions.h"
#include "data/workload.h"
#include "eval/experiment.h"
#include "eval/table_printer.h"
#include "frequency/frequency_oracle.h"
#include "frequency/sue.h"

namespace {

using namespace ldp;         // NOLINT(build/namespaces)
using namespace ldp::bench;  // NOLINT(build/namespaces)

double HierarchyMse(uint64_t domain, double eps, const HierarchicalConfig& hc,
                    uint64_t population, uint64_t trials, uint64_t seed) {
  CauchyDistribution dist(domain);
  double total = 0.0;
  for (uint64_t t = 0; t < trials; ++t) {
    Rng rng(seed + t);
    Dataset data = Dataset::FromDistribution(dist, population, rng);
    HierarchicalMechanism mech(domain, eps, hc);
    EncodePopulation(data, mech, rng);
    mech.Finalize(rng);
    double err = 0.0;
    uint64_t queries = 0;
    QueryWorkload::Strided(domain >> 5, domain >> 7)
        .Visit(domain, [&](uint64_t a, uint64_t b) {
          double diff = mech.RangeQuery(a, b) - data.TrueRange(a, b);
          err += diff * diff;
          ++queries;
        });
    total += err / static_cast<double>(queries);
  }
  return total / static_cast<double>(trials);
}

void SamplingVsSplitting(uint64_t domain, uint64_t population,
                         uint64_t trials, uint64_t seed) {
  std::printf("\n(a) Level sampling vs budget splitting, D = %llu "
              "(MSE x1000; ratio = split/sample)\n",
              static_cast<unsigned long long>(domain));
  TablePrinter table({"eps", "sampling", "splitting", "ratio"});
  for (double eps : {0.4, 0.8, 1.1, 1.4}) {
    HierarchicalConfig sampling;
    sampling.fanout = 4;
    sampling.consistency = true;
    sampling.budget = BudgetStrategy::kSampling;
    HierarchicalConfig splitting = sampling;
    splitting.budget = BudgetStrategy::kSplitting;
    double mse_sample =
        HierarchyMse(domain, eps, sampling, population, trials, seed);
    double mse_split =
        HierarchyMse(domain, eps, splitting, population, trials, seed);
    table.AddRow({FormatScaled(eps, 1.0, 1),
                  FormatScaled(mse_sample, 1000.0, 4),
                  FormatScaled(mse_split, 1000.0, 4),
                  FormatScaled(mse_split / mse_sample, 1.0, 2)});
  }
  table.Print(std::cout);
  std::printf(
      "Expected: ratio >> 1 — approximately h (= %u here) at small eps, "
      "growing further with eps as the e^{eps/h} penalty kicks in.\n",
      TreeShape(domain, 4).height());
}

void ConsistencyAcrossB(uint64_t domain, uint64_t population,
                        uint64_t trials, uint64_t seed) {
  std::printf("\n(b) Consistency on/off across B, D = %llu, eps = 1.1 "
              "(MSE x1000)\n",
              static_cast<unsigned long long>(domain));
  TablePrinter table({"B", "raw", "consistent", "improvement"});
  for (uint64_t b : {2ull, 4ull, 8ull, 16ull}) {
    HierarchicalConfig raw;
    raw.fanout = b;
    raw.consistency = false;
    HierarchicalConfig ci = raw;
    ci.consistency = true;
    double mse_raw =
        HierarchyMse(domain, 1.1, raw, population, trials, seed);
    double mse_ci = HierarchyMse(domain, 1.1, ci, population, trials, seed);
    table.AddRow({std::to_string(b), FormatScaled(mse_raw, 1000.0, 4),
                  FormatScaled(mse_ci, 1000.0, 4),
                  FormatScaled(mse_raw / mse_ci, 1.0, 2) + "x"});
  }
  table.Print(std::cout);
  std::printf("Paper-derived optima: B* = %.3f without CI, %.3f with CI.\n",
              OptimalBranchingFactor(false), OptimalBranchingFactor(true));
}

void UniformVsSkewedWeights(uint64_t domain, uint64_t population,
                            uint64_t trials, uint64_t seed) {
  std::printf("\n(c) Level-weight allocation (Lemma 4.4), D = %llu, "
              "eps = 1.1 (MSE x1000)\n",
              static_cast<unsigned long long>(domain));
  TreeShape shape(domain, 4);
  const uint32_t h = shape.height();
  TablePrinter table({"allocation", "MSE"});
  for (const std::string& kind :
       {std::string("uniform"), std::string("favor-leaves"),
        std::string("favor-root")}) {
    HierarchicalConfig config;
    config.fanout = 4;
    config.consistency = true;
    config.level_weights.assign(h, 1.0);
    for (uint32_t l = 0; l < h; ++l) {
      if (kind == "favor-leaves") {
        config.level_weights[l] = static_cast<double>(l + 1);
      } else if (kind == "favor-root") {
        config.level_weights[l] = static_cast<double>(h - l);
      }
    }
    double mse =
        HierarchyMse(domain, 1.1, config, population, trials, seed);
    table.AddRow({kind, FormatScaled(mse, 1000.0, 4)});
  }
  table.Print(std::cout);
  std::printf("Expected: uniform is the minimum (Lemma 4.4).\n");
}

void TheoryVsMeasured(uint64_t domain, uint64_t population, uint64_t trials,
                      uint64_t seed) {
  std::printf("\n(d) Measured MSE vs worst-case theory (Eqs. 1-3), "
              "D = %llu, eps = 1.1, r = D/4 (x1000)\n",
              static_cast<unsigned long long>(domain));
  const double eps = 1.1;
  uint64_t r = domain / 4;
  CauchyDistribution dist(domain);
  TablePrinter table({"method", "measured", "bound", "measured/bound"});
  struct Row {
    MethodSpec spec;
    double bound;
  };
  std::vector<Row> rows = {
      {MethodSpec::Flat(OracleKind::kOueSimulated),
       FlatRangeVarianceBound(r, eps, static_cast<double>(population))},
      {MethodSpec::Hh(8, OracleKind::kOueSimulated, true),
       HhConsistentRangeVarianceBound(domain, 8, r, eps,
                                      static_cast<double>(population))},
      {MethodSpec::Haar(),
       HaarRangeVarianceBound(domain, eps,
                              static_cast<double>(population))}};
  for (const Row& row : rows) {
    double total = 0.0;
    for (uint64_t t = 0; t < trials; ++t) {
      Rng rng(seed + t);
      Dataset data = Dataset::FromDistribution(dist, population, rng);
      auto mech = MakeMechanism(row.spec, domain, eps);
      EncodePopulation(data, *mech, rng);
      mech->Finalize(rng);
      double err = 0.0;
      uint64_t queries = 0;
      for (uint64_t a = 0; a + r <= domain; a += domain / 64) {
        double diff =
            mech->RangeQuery(a, a + r - 1) - data.TrueRange(a, a + r - 1);
        err += diff * diff;
        ++queries;
      }
      total += err / static_cast<double>(queries);
    }
    double measured = total / static_cast<double>(trials);
    table.AddRow({row.spec.Name(), FormatScaled(measured, 1000.0, 4),
                  FormatScaled(row.bound, 1000.0, 4),
                  FormatScaled(measured / row.bound, 1.0, 3)});
  }
  table.Print(std::cout);
  std::printf("Expected: every measured/bound <= 1 (bounds are worst-case "
              "and conservative).\n");
}

void OueVsSue(uint64_t domain, uint64_t population, uint64_t trials,
              uint64_t seed) {
  std::printf("\n(e) HH primitive: OUE vs SUE (basic RAPPOR), D = %llu "
              "(MSE x1000)\n",
              static_cast<unsigned long long>(domain));
  TablePrinter table({"eps", "HHc4-OUE", "HHc4-SUE", "SUE/OUE",
                      "theory V_SUE/V_F"});
  for (double eps : {0.4, 1.1, 2.0}) {
    HierarchicalConfig oue;
    oue.fanout = 4;
    oue.consistency = true;
    oue.oracle = OracleKind::kOueSimulated;
    HierarchicalConfig sue = oue;
    sue.oracle = OracleKind::kSueSimulated;
    double mse_oue = HierarchyMse(domain, eps, oue, population, trials, seed);
    double mse_sue = HierarchyMse(domain, eps, sue, population, trials, seed);
    table.AddRow({FormatScaled(eps, 1.0, 1),
                  FormatScaled(mse_oue, 1000.0, 4),
                  FormatScaled(mse_sue, 1000.0, 4),
                  FormatScaled(mse_sue / mse_oue, 1.0, 2),
                  FormatScaled(SueVariance(eps, 1.0) /
                                   OracleVariance(eps, 1.0),
                               1.0, 2)});
  }
  table.Print(std::cout);
  std::printf("Expected: measured SUE/OUE tracks the theory column and "
              "grows with eps.\n");
}

void PavQuantiles(uint64_t domain, uint64_t population, uint64_t trials,
                  uint64_t seed) {
  std::printf("\n(f) Quantile post-processing: raw binary search vs "
              "PAV-smoothed CDF, D = %llu, eps = 0.4 (mean |quantile "
              "error| over deciles)\n",
              static_cast<unsigned long long>(domain));
  CauchyDistribution dist(domain);
  TablePrinter table({"method", "raw", "PAV-smoothed"});
  for (const MethodSpec& spec :
       {MethodSpec::Hh(4, OracleKind::kOueSimulated, true),
        MethodSpec::Haar()}) {
    double raw_err = 0.0;
    double smooth_err = 0.0;
    int evaluations = 0;
    for (uint64_t t = 0; t < trials; ++t) {
      Rng rng(seed + t);
      Dataset data = Dataset::FromDistribution(dist, population, rng);
      auto mech = MakeMechanism(spec, domain, 0.4);
      EncodePopulation(data, *mech, rng);
      mech->Finalize(rng);
      std::vector<double> true_cdf = data.Cdf();
      std::vector<double> smooth = SmoothedCdf(*mech);
      for (double phi = 0.1; phi < 0.95; phi += 0.1) {
        uint64_t raw = mech->QuantileQuery(phi);
        uint64_t smoothed = QuantileFromCdf(smooth, phi);
        raw_err += std::abs(true_cdf[raw] - phi);
        smooth_err += std::abs(true_cdf[smoothed] - phi);
        ++evaluations;
      }
    }
    table.AddRow({spec.Name(),
                  FormatScaled(raw_err / evaluations, 1.0, 5),
                  FormatScaled(smooth_err / evaluations, 1.0, 5)});
  }
  table.Print(std::cout);
  std::printf(
      "Expected: a wash for consistent HH (its prefixes are already "
      "near-monotone) and a small gain for HaarHRR; PAV's value is the "
      "guarantee of a valid monotone CDF, not raw error.\n");
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  uint64_t population = PopulationFor(options, 1 << 17, 1 << 20, 1 << 24);
  uint64_t trials = TrialsFor(options, 3, 5, 5);
  uint64_t domain = options.scale == "quick" ? (1 << 10) : (1 << 12);
  PrintHeader("Ablations: the paper's design choices, quantified",
              "Cormode, Kulkarni, Srivastava (VLDB'19), Sections 4.4-4.6",
              options, population, trials);
  SamplingVsSplitting(domain, population, trials, options.seed);
  ConsistencyAcrossB(domain, population, trials, options.seed);
  UniformVsSkewedWeights(domain, population, trials, options.seed);
  TheoryVsMeasured(domain, population, trials, options.seed);
  OueVsSue(domain, population, trials, options.seed);
  PavQuantiles(domain, population, trials, options.seed);
  return 0;
}
