// Reproduces paper Table 5 (Figure 5): "Impact of varying eps on mean
// squared error for arbitrary queries", values scaled by 1000. Rows sweep
// eps from 0.2 (high privacy) to 1.4 (low privacy); columns compare the
// consistent hierarchical methods HHc2, HHc4, HHc16 (TreeOUECI
// instantiation, as in the paper) against HaarHRR. The per-row minimum is
// marked '*' (the paper uses bold).
//
// Expected shape (paper Section 5.2): HaarHRR wins at small eps; HHc_B
// (usually B=4) takes over at larger eps; no method trails the best by
// more than ~10%.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/method.h"
#include "data/distributions.h"
#include "data/workload.h"
#include "eval/experiment.h"
#include "eval/table_printer.h"

namespace {

using namespace ldp;         // NOLINT(build/namespaces)
using namespace ldp::bench;  // NOLINT(build/namespaces)

// The paper enumerates all C(D,2) ranges up to D = 2^16 and samples
// strided starts beyond; we keep the same spirit with caps suited to each
// scale.
QueryWorkload WorkloadFor(uint64_t domain) {
  if (domain <= (1 << 8)) {
    return QueryWorkload::AllRanges();
  }
  uint64_t start_stride = domain >> 5;           // 32 start points
  uint64_t length_stride = domain >> 8;          // ~256 lengths per start
  return QueryWorkload::Strided(start_stride, length_stride);
}

void RunDomain(uint64_t domain, const std::vector<MethodSpec>& methods,
               const std::vector<double>& epsilons,
               const BenchOptions& options, uint64_t population,
               uint64_t trials) {
  std::printf("\n--- D = %llu (MSE x1000 over %s queries) ---\n",
              static_cast<unsigned long long>(domain),
              WorkloadFor(domain).Name().c_str());
  std::vector<std::string> headers = {"eps"};
  for (const MethodSpec& method : methods) {
    headers.push_back(method.Name());
  }
  TablePrinter table(headers);
  CauchyDistribution dist(domain);
  QueryWorkload workload = WorkloadFor(domain);
  for (double eps : epsilons) {
    std::vector<std::string> row = {FormatScaled(eps, 1.0, 1)};
    std::vector<double> values;
    for (const MethodSpec& method : methods) {
      ExperimentConfig config;
      config.domain = domain;
      config.population = population;
      config.epsilon = eps;
      config.method = method;
      config.trials = trials;
      config.seed = options.seed;
      values.push_back(
          RunRangeExperiment(config, dist, workload).mean_mse());
    }
    std::vector<std::string> cells;
    for (double v : values) {
      cells.push_back(FormatScaled(v, 1000.0, 3));
    }
    MarkRowMinimum(values, cells);
    row.insert(row.end(), cells.begin(), cells.end());
    table.AddRow(row);
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  uint64_t population = PopulationFor(options, 1 << 17, 1 << 20, 1 << 26);
  uint64_t trials = TrialsFor(options, 3, 5, 5);
  PrintHeader("Table 5: MSE vs epsilon, arbitrary range queries",
              "Cormode, Kulkarni, Srivastava (VLDB'19), Figure/Table 5",
              options, population, trials);

  const std::vector<double> epsilons = {0.2, 0.4, 0.6, 0.8,
                                        1.0, 1.1, 1.2, 1.4};
  std::vector<uint64_t> domains;
  if (options.scale == "paper") {
    domains = {1ull << 8, 1ull << 16, 1ull << 20, 1ull << 22};
  } else if (options.scale == "full") {
    domains = {1ull << 8, 1ull << 16};
  } else {
    domains = {1ull << 8, 1ull << 12};
  }
  for (uint64_t domain : domains) {
    std::vector<MethodSpec> methods = {
        MethodSpec::Hh(2, OracleKind::kOueSimulated, true),
        MethodSpec::Hh(4, OracleKind::kOueSimulated, true),
        MethodSpec::Hh(16, OracleKind::kOueSimulated, true),
        MethodSpec::Haar()};
    if (domain >= (1ull << 22)) {
      // The paper drops HHc16 at D = 2^22.
      methods.erase(methods.begin() + 2);
    }
    RunDomain(domain, methods, epsilons, options, population, trials);
  }
  std::printf(
      "\nCompare with paper Table 5: HaarHRR should win most rows with "
      "eps <= 0.6; HHc4 most rows above; margins within ~10%%.\n");
  return 0;
}
