// Communication-cost table backing the paper's deployment claims (§1,
// §5.6): per-user report size in bits for every method across domain
// sizes, plus aggregator state. The paper's summary — "the wavelet
// approach ... requires a constant factor less space (D wavelet
// coefficients against 2D-1 for HH2)" and HRR-based reports are
// "⌈log2 D⌉ + 1 bits" — should be directly visible.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/bit_util.h"
#include "core/badic.h"
#include "core/method.h"
#include "eval/table_printer.h"

namespace {

using namespace ldp;         // NOLINT(build/namespaces)
using namespace ldp::bench;  // NOLINT(build/namespaces)

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  PrintHeader("Per-user communication and aggregator state",
              "Cormode, Kulkarni, Srivastava (VLDB'19), Sections 1 / 5.6",
              options, 0, 0);

  const double eps = 1.1;
  std::vector<uint64_t> domains = {1ull << 8, 1ull << 12, 1ull << 16,
                                   1ull << 20, 1ull << 22};
  std::vector<MethodSpec> methods = {
      MethodSpec::Flat(OracleKind::kOue),
      MethodSpec::Flat(OracleKind::kOlh),
      MethodSpec::Flat(OracleKind::kHrr),
      MethodSpec::Hh(2, OracleKind::kOue, true),
      MethodSpec::Hh(2, OracleKind::kHrr, true),
      MethodSpec::Haar()};

  std::printf("\nBits per user report:\n");
  std::vector<std::string> headers = {"method"};
  for (uint64_t d : domains) {
    headers.push_back("D=2^" + std::to_string(Log2Floor(d)));
  }
  TablePrinter bits_table(headers);
  for (const MethodSpec& method : methods) {
    std::vector<std::string> row = {method.Name()};
    for (uint64_t d : domains) {
      auto mech = MakeMechanism(method, d, eps);
      row.push_back(FormatScaled(mech->ReportBits(), 1.0, 1));
    }
    bits_table.AddRow(row);
  }
  bits_table.Print(std::cout);

  std::printf("\nAggregator state (values kept, in units of D):\n");
  TablePrinter state_table({"structure", "values", "units-of-D at D=2^16"});
  for (uint64_t fanout : {2ull, 4ull, 16ull}) {
    TreeShape shape(1 << 16, fanout);
    uint64_t nodes = shape.TotalNodes();
    state_table.AddRow(
        {"HH" + std::to_string(fanout) + " tree", std::to_string(nodes),
         FormatScaled(static_cast<double>(nodes) / (1 << 16), 1.0, 3)});
  }
  state_table.AddRow({"Haar coefficients", std::to_string(1 << 16), "1.000"});
  state_table.AddRow({"Flat histogram", std::to_string(1 << 16), "1.000"});
  state_table.Print(std::cout);

  std::printf(
      "\nExpected: flat OUE = D bits/user (unshippable at D = 2^22); "
      "OLH = 64 + log2(g); HRR-based methods stay below ~40 bits "
      "everywhere; HH2 keeps ~2D node estimates vs D wavelet "
      "coefficients (paper Section 5.6).\n");
  return 0;
}
