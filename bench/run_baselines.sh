#!/usr/bin/env bash
# Records the Release-mode micro-benchmark baselines checked in at the repo
# root (BENCH_*.json). Later PRs claim measured speedups against these, so
# re-run this script (on a quiet machine) whenever a hot path changes:
#
#   bench/run_baselines.sh            # all six binaries
#   bench/run_baselines.sh ingest     # just the ingest-throughput headline
#   bench/run_baselines.sh ahead      # just the AHEAD-vs-HHc comparison
#   bench/run_baselines.sh multidim   # just the 2-D grid vs product-of-1-D
#   bench/run_baselines.sh net        # loadgen over the loopback TCP front-end
#
# BENCH_baseline.json is the headline file: OLH ingestion+finalize
# throughput, eager vs deferred vs sharded (see bench_ingest_throughput.cc).
set -euo pipefail
cd "$(dirname "$0")/.."

what="${1:-all}"

cmake --preset release -DLDP_BUILD_BENCH=ON
cmake --build --preset release -j"$(nproc)" --target \
  bench_ingest_throughput bench_micro_oracles bench_micro_mechanisms \
  bench_micro_ahead bench_micro_multidim bench_stream_ingest loadgen

# Methodology (mirrors bench/bench_common.h): every recorded number is a
# MEDIAN over ${LDP_BENCH_REPS:-5} repetitions after a fixed warmup, never
# a single-shot timing — medians shrug off the one-sided contamination VM
# steal and background wakeups cause, which single runs do not.
run() {
  local binary="$1" out="$2"
  echo "== ${binary} -> ${out}"
  "build-release/bench/${binary}" \
    --benchmark_format=console \
    --benchmark_min_warmup_time=0.2 \
    --benchmark_repetitions="${LDP_BENCH_REPS:-5}" \
    --benchmark_report_aggregates_only=true \
    --benchmark_out="${out}" \
    --benchmark_out_format=json
}

if [[ "${what}" == "all" || "${what}" == "ingest" ]]; then
  run bench_ingest_throughput BENCH_baseline.json
fi
if [[ "${what}" == "all" || "${what}" == "micro" ]]; then
  run bench_micro_oracles BENCH_micro_oracles.json
  run bench_micro_mechanisms BENCH_micro_mechanisms.json
fi
if [[ "${what}" == "all" || "${what}" == "ahead" ]]; then
  # AHEAD vs HHc4/HHc16: timing plus the `mse` accuracy counters at the
  # acceptance scale (D = 2^16, eps = 1, 200k users).
  run bench_micro_ahead BENCH_micro_ahead.json
fi
if [[ "${what}" == "all" || "${what}" == "multidim" ]]; then
  # 2-D hierarchical grid vs the product-of-marginals baseline at
  # D = 2^10 per axis: ingest/finalize and per-rectangle query timing,
  # plus `mse` / `bias_floor_mse` accuracy counters.
  run bench_micro_multidim BENCH_micro_multidim.json
fi
if [[ "${what}" == "all" || "${what}" == "stream" ]]; then
  # Streamed chunks through AggregatorService vs the bare
  # AbsorbBatchSerialized loop (PR 5 acceptance: within 10% at D = 2^16).
  run bench_stream_ingest BENCH_micro_stream.json
fi
if [[ "${what}" == "all" || "${what}" == "net" ]]; then
  # The same streamed chunks through a real loopback socket: ingest
  # throughput and query latency via the self-hosted TCP front-end.
  # loadgen is a plain binary (no Google Benchmark) but follows the same
  # medians-over-reps methodology via --reps.
  echo "== loadgen -> BENCH_micro_net.json"
  build-release/bench/loadgen \
    --users=200000 --connections=8 --chunk=2000 --mechanism=haar \
    --domain=1024 --eps=1.0 --queries=200 \
    --reps="${LDP_BENCH_REPS:-5}" --assert-clean \
    --json=BENCH_micro_net.json
  # Distributed fan-in (PR 10): the same 200k-user population split
  # across N shard processes that each run the full encode+stream+absorb
  # pipeline on their own service, then push wire-serialized state
  # snapshots into this process's merge plane. Total connection count is
  # held at 8 so the 2- and 4-shard rows are comparable to the
  # single-process row above. The recorded scaling ratio is
  # aggregate-vs-shard-median within the run; note host_cpus in the
  # output — wall-clock cross-process scaling needs >= shards cores.
  fanin_tmp="$(mktemp -d)"
  trap 'rm -rf "${fanin_tmp}"' EXIT
  build-release/bench/loadgen \
    --users=200000 --connections=4 --chunk=2000 --mechanism=haar \
    --domain=1024 --eps=1.0 --queries=200 \
    --reps="${LDP_BENCH_REPS:-5}" --shards=2 --assert-clean \
    --json="${fanin_tmp}/fanin2.json"
  build-release/bench/loadgen \
    --users=200000 --connections=2 --chunk=2000 --mechanism=haar \
    --domain=1024 --eps=1.0 --queries=200 \
    --reps="${LDP_BENCH_REPS:-5}" --shards=4 --assert-clean \
    --json="${fanin_tmp}/fanin4.json"
  python3 - "${fanin_tmp}" <<'PY'
import json, sys
tmp = sys.argv[1]
with open("BENCH_micro_net.json") as f:
    merged = json.load(f)
merged["fan_in"] = [json.load(open(f"{tmp}/fanin{n}.json")) for n in (2, 4)]
with open("BENCH_micro_net.json", "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print("merged fan-in rows into BENCH_micro_net.json")
PY
fi
echo "done."
