// Microbenchmarks for the frequency-oracle building blocks, backing the
// paper's cost claims (Sections 1 and 5): per-user encoding is cheap for
// every oracle; OUE's cost is O(D) per user; OLH decoding is O(D) per
// report (the reason the paper drops it beyond D = 2^8); HRR decoding is
// one O(D log D) transform regardless of N.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "frequency/frequency_oracle.h"
#include "frequency/hadamard.h"
#include "frequency/hrr.h"
#include "frequency/olh.h"
#include "frequency/oue.h"

namespace {

using namespace ldp;  // NOLINT(build/namespaces)

constexpr double kEps = 1.1;

void BM_GrrEncode(benchmark::State& state) {
  uint64_t d = state.range(0);
  auto oracle = MakeOracle(OracleKind::kGrr, d, kEps);
  Rng rng(1);
  uint64_t v = 0;
  for (auto _ : state) {
    oracle->SubmitValue(v++ % d, rng);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GrrEncode)->Arg(1 << 8)->Arg(1 << 16);

void BM_OueExactEncode(benchmark::State& state) {
  uint64_t d = state.range(0);
  auto oracle = MakeOracle(OracleKind::kOue, d, kEps);
  Rng rng(1);
  uint64_t v = 0;
  for (auto _ : state) {
    oracle->SubmitValue(v++ % d, rng);  // O(D) bit flips per user
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OueExactEncode)->Arg(1 << 8)->Arg(1 << 12);

void BM_OueSimulatedEncode(benchmark::State& state) {
  uint64_t d = state.range(0);
  auto oracle = MakeOracle(OracleKind::kOueSimulated, d, kEps);
  Rng rng(1);
  uint64_t v = 0;
  for (auto _ : state) {
    oracle->SubmitValue(v++ % d, rng);  // O(1): the paper's §5 shortcut
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OueSimulatedEncode)->Arg(1 << 8)->Arg(1 << 20);

void BM_OueSimulatedSubmitBatch(benchmark::State& state) {
  // The batch path collapses the per-report virtual dispatch into one
  // count loop.
  uint64_t d = state.range(0);
  constexpr uint64_t kBatch = 4096;
  std::vector<uint64_t> values(kBatch);
  for (uint64_t i = 0; i < kBatch; ++i) values[i] = i % d;
  auto oracle = MakeOracle(OracleKind::kOueSimulated, d, kEps);
  Rng rng(1);
  for (auto _ : state) {
    oracle->SubmitBatch(values, rng);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_OueSimulatedSubmitBatch)->Arg(1 << 8)->Arg(1 << 20);

void BM_OlhEncodeAndFold(benchmark::State& state) {
  uint64_t d = state.range(0);
  // Eager mode: the O(D) support decode runs inside every SubmitValue —
  // the textbook per-report cost the deferred path amortizes away (see
  // bench_ingest_throughput for the full comparison).
  OlhOracle oracle(d, kEps, /*g_override=*/0, OlhDecode::kEager);
  Rng rng(1);
  uint64_t v = 0;
  for (auto _ : state) {
    oracle.SubmitValue(v++ % d, rng);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OlhEncodeAndFold)->Arg(1 << 8)->Arg(1 << 12);

void BM_OlhSubmitBatchDeferred(benchmark::State& state) {
  // Deferred mode ingest: O(1) per report; the support scan is paid once
  // at Finalize. Fresh oracle per iteration so pending reports do not
  // accumulate across the benchmark run.
  uint64_t d = state.range(0);
  constexpr uint64_t kBatch = 4096;
  std::vector<uint64_t> values(kBatch);
  for (uint64_t i = 0; i < kBatch; ++i) values[i] = i % d;
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    OlhOracle oracle(d, kEps);
    state.ResumeTiming();
    oracle.SubmitBatch(values, rng);
    benchmark::DoNotOptimize(oracle.pending_reports());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_OlhSubmitBatchDeferred)->Arg(1 << 8)->Arg(1 << 16);

void BM_OlhDeferredDecode(benchmark::State& state) {
  // The one-time cache-blocked support scan over all pending reports.
  uint64_t d = state.range(0);
  constexpr uint64_t kReports = 4096;
  std::vector<uint64_t> values(kReports);
  for (uint64_t i = 0; i < kReports; ++i) values[i] = i % d;
  for (auto _ : state) {
    state.PauseTiming();
    OlhOracle oracle(d, kEps);
    oracle.set_decode_threads(1);
    Rng rng(1);
    oracle.SubmitBatch(values, rng);
    state.ResumeTiming();
    Rng frng(2);
    oracle.Finalize(frng);
    benchmark::DoNotOptimize(oracle.SupportCounts().data());
  }
  state.SetItemsProcessed(state.iterations() * kReports);
}
BENCHMARK(BM_OlhDeferredDecode)->Arg(1 << 8)->Arg(1 << 12);

void BM_HrrEncode(benchmark::State& state) {
  uint64_t d = state.range(0);
  auto oracle = MakeOracle(OracleKind::kHrr, d, kEps);
  Rng rng(1);
  uint64_t v = 0;
  for (auto _ : state) {
    oracle->SubmitValue(v++ % d, rng);  // O(1) per user
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HrrEncode)->Arg(1 << 8)->Arg(1 << 20);

void BM_HrrDecode(benchmark::State& state) {
  uint64_t d = state.range(0);
  HrrOracle oracle(d, kEps);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    oracle.SubmitValue(i % d, rng);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.EstimateFractions());
  }
  state.SetComplexityN(d);
}
BENCHMARK(BM_HrrDecode)->Arg(1 << 8)->Arg(1 << 16)->Arg(1 << 20);

void BM_OueDecode(benchmark::State& state) {
  uint64_t d = state.range(0);
  OueOracle oracle(d, kEps, OueOracle::Mode::kSimulated);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    oracle.SubmitValue(i % d, rng);
  }
  oracle.Finalize(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.EstimateFractions());
  }
}
BENCHMARK(BM_OueDecode)->Arg(1 << 8)->Arg(1 << 20);

void BM_FastWalshHadamard(benchmark::State& state) {
  uint64_t d = state.range(0);
  Rng rng(1);
  std::vector<double> data(d);
  for (double& v : data) {
    v = rng.UniformDouble();
  }
  for (auto _ : state) {
    std::vector<double> copy = data;
    FastWalshHadamard(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetComplexityN(d);
}
BENCHMARK(BM_FastWalshHadamard)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
