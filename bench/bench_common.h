// Shared scaffolding for the paper-table/figure harnesses.
//
// Every harness runs at one of three scales:
//   quick (default) — seconds per binary; reduced D and N. Suitable for CI
//                     and for `for b in build/bench/*; do $b; done`.
//   full            — the paper's small/medium domains at N = 2^20.
//   paper           — the paper's exact parameters (D up to 2^22,
//                     N = 2^26). Hours of CPU; use on a big machine.
// Select with --scale=..., or the LDP_BENCH_SCALE environment variable.
// Error magnitudes scale as 1/N, so quick-scale MSEs are a constant factor
// above the paper's; orderings and crossovers are scale-invariant (see
// EXPERIMENTS.md).
//
// Timing methodology: never report a single-shot wall time. Hand-timed
// sections go through MedianMillis() — fixed warmup iterations (page in
// the working set, settle the frequency governor) followed by k timed
// repetitions, reporting the MEDIAN, which is robust to the one-sided
// contamination VM steal and cron wakeups cause. The google-benchmark
// micro harnesses get the same discipline from run_baselines.sh via
// --benchmark_min_warmup_time / --benchmark_repetitions /
// --benchmark_report_aggregates_only, so every checked-in BENCH_*.json
// row is a median over repetitions, not one lucky (or unlucky) run.

#ifndef LDPRANGE_BENCH_BENCH_COMMON_H_
#define LDPRANGE_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace ldp::bench {

struct BenchOptions {
  std::string scale = "quick";
  uint64_t population_override = 0;  // --n=
  uint64_t trials_override = 0;      // --trials=
  uint64_t seed = 42;                // --seed=
  uint64_t warmup = 2;               // --warmup=  (untimed runs)
  uint64_t reps = 5;                 // --reps=    (timed runs, median kept)
};

inline BenchOptions ParseOptions(int argc, char** argv) {
  BenchOptions options;
  if (const char* env = std::getenv("LDP_BENCH_SCALE")) {
    options.scale = env;
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      options.scale = arg + 8;
    } else if (std::strncmp(arg, "--n=", 4) == 0) {
      options.population_override = std::strtoull(arg + 4, nullptr, 10);
    } else if (std::strncmp(arg, "--trials=", 9) == 0) {
      options.trials_override = std::strtoull(arg + 9, nullptr, 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      options.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--warmup=", 9) == 0) {
      options.warmup = std::strtoull(arg + 9, nullptr, 10);
    } else if (std::strncmp(arg, "--reps=", 7) == 0) {
      options.reps = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "usage: %s [--scale=quick|full|paper] [--n=N] [--trials=T] "
          "[--seed=S] [--warmup=W] [--reps=K]\n",
          argv[0]);
      std::exit(0);
    }
  }
  if (options.scale != "quick" && options.scale != "full" &&
      options.scale != "paper") {
    std::fprintf(stderr, "unknown scale '%s', using quick\n",
                 options.scale.c_str());
    options.scale = "quick";
  }
  return options;
}

/// Picks the population for the current scale (honoring --n).
inline uint64_t PopulationFor(const BenchOptions& options, uint64_t quick,
                              uint64_t full, uint64_t paper) {
  if (options.population_override != 0) return options.population_override;
  if (options.scale == "paper") return paper;
  if (options.scale == "full") return full;
  return quick;
}

/// Picks the trial count for the current scale (honoring --trials).
inline uint64_t TrialsFor(const BenchOptions& options, uint64_t quick,
                          uint64_t full, uint64_t paper) {
  if (options.trials_override != 0) return options.trials_override;
  if (options.scale == "paper") return paper;
  if (options.scale == "full") return full;
  return quick;
}

/// The repo's one way to hand-time a section: `warmup` untimed runs of
/// `fn`, then `reps` timed runs, returning the MEDIAN wall time in
/// milliseconds (never a single-shot number — see the file comment).
/// `reps` is clamped to >= 1; pass options.warmup / options.reps so the
/// command line controls the budget.
template <typename Fn>
inline double MedianMillis(Fn&& fn, uint64_t warmup, uint64_t reps) {
  if (reps == 0) reps = 1;
  for (uint64_t i = 0; i < warmup; ++i) fn();
  std::vector<double> millis;
  millis.reserve(reps);
  for (uint64_t i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    millis.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  std::nth_element(millis.begin(), millis.begin() + millis.size() / 2,
                   millis.end());
  return millis[millis.size() / 2];
}

inline void PrintHeader(const char* title, const char* paper_ref,
                        const BenchOptions& options, uint64_t population,
                        uint64_t trials) {
  std::printf("==================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("scale=%s  N=%llu  trials=%llu  seed=%llu\n",
              options.scale.c_str(),
              static_cast<unsigned long long>(population),
              static_cast<unsigned long long>(trials),
              static_cast<unsigned long long>(options.seed));
  std::printf("==================================================\n");
}

}  // namespace ldp::bench

#endif  // LDPRANGE_BENCH_BENCH_COMMON_H_
