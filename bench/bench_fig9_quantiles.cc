// Reproduces paper Figure 9: decile quantile queries for a left-skewed
// (P = 0.1) and a centered (P = 0.5) Cauchy distribution. The top plots
// report VALUE error (|returned item - true quantile item|, in domain
// units); the bottom plots report QUANTILE error (|CDF(returned) - phi|).
// Methods: HHc2 and HaarHRR (the paper's best hierarchical pick at its
// largest domain, and the wavelet).
//
// Expected shape (paper Section 5.5): value error is largest where the
// data is sparse (right tail for P = 0.1, both extremes for P = 0.5) but
// still a tiny fraction of the domain; quantile error is mostly flat —
// returned items are distributionally within ~0.001 of the target.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/method.h"
#include "data/distributions.h"
#include "eval/experiment.h"
#include "eval/table_printer.h"

namespace {

using namespace ldp;         // NOLINT(build/namespaces)
using namespace ldp::bench;  // NOLINT(build/namespaces)

void RunCase(double center, uint64_t domain, const BenchOptions& options,
             uint64_t population, uint64_t trials) {
  std::printf("\n--- Cauchy P = %.1f, D = %llu ---\n", center,
              static_cast<unsigned long long>(domain));
  const std::vector<double> phis = {0.1, 0.2, 0.3, 0.4, 0.5,
                                    0.6, 0.7, 0.8, 0.9};
  const std::vector<MethodSpec> methods = {
      MethodSpec::Hh(2, OracleKind::kOueSimulated, true),
      MethodSpec::Haar()};
  CauchyDistribution dist(domain, center);

  std::vector<QuantileExperimentResult> results;
  for (const MethodSpec& method : methods) {
    ExperimentConfig config;
    config.domain = domain;
    config.population = population;
    config.epsilon = 1.1;
    config.method = method;
    config.trials = trials;
    config.seed = options.seed;
    results.push_back(RunQuantileExperiment(config, dist, phis));
  }

  TablePrinter value_table(
      {"phi", "HHc2 value-err", "HaarHRR value-err"});
  TablePrinter quantile_table(
      {"phi", "HHc2 quant-err", "HaarHRR quant-err"});
  for (size_t i = 0; i < phis.size(); ++i) {
    value_table.AddRow({FormatScaled(phis[i], 1.0, 1),
                        FormatScaled(results[0].value_error[i].mean(), 1.0, 1),
                        FormatScaled(results[1].value_error[i].mean(), 1.0,
                                     1)});
    quantile_table.AddRow(
        {FormatScaled(phis[i], 1.0, 1),
         FormatScaled(results[0].quantile_error[i].mean(), 1.0, 5),
         FormatScaled(results[1].quantile_error[i].mean(), 1.0, 5)});
  }
  std::printf("Value error (domain units; paper Figure 9 top row):\n");
  value_table.Print(std::cout);
  std::printf("\nQuantile error (CDF units; paper Figure 9 bottom row):\n");
  quantile_table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  uint64_t population = PopulationFor(options, 1 << 17, 1 << 20, 1 << 26);
  uint64_t trials = TrialsFor(options, 3, 5, 5);
  uint64_t domain;
  if (options.scale == "paper") {
    domain = 1ull << 22;
  } else if (options.scale == "full") {
    domain = 1ull << 16;
  } else {
    domain = 1ull << 12;
  }
  PrintHeader("Figure 9: decile quantile queries",
              "Cormode, Kulkarni, Srivastava (VLDB'19), Figure 9", options,
              population, trials);
  RunCase(0.1, domain, options, population, trials);
  RunCase(0.5, domain, options, population, trials);
  std::printf(
      "\nCompare with paper Figure 9: value error spikes only in sparse "
      "tails (<1%% of D); quantile error flat and tiny.\n");
  return 0;
}
