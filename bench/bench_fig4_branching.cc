// Reproduces paper Figure 4: "Impact of constrained inference and branching
// factor B". For each domain size D and query length r, prints the MSE of
// every method as the branching factor grows — TreeOUE / TreeHRR (and
// TreeOLH for the small domain) with and without consistency, the flat OUE
// baseline (plotted by the paper as B = D) and HaarHRR (B = 2 by
// construction).
//
// Expected shape (paper Section 5.1): CI never hurts and helps most at
// large r / large B; flat is competitive only at r = 1; HaarHRR is best or
// near-best for every range except the shortest; among HH methods,
// B in {4, 8, 16} minimizes the error.

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/method.h"
#include "data/dataset.h"
#include "data/distributions.h"
#include "eval/experiment.h"
#include "eval/table_printer.h"

namespace {

using namespace ldp;         // NOLINT(build/namespaces)
using namespace ldp::bench;  // NOLINT(build/namespaces)

// MSE over (up to 2048 evenly spaced) queries of exactly length r,
// averaged over independent trials — the paper's per-length evaluation,
// with its strided-start subsampling once domains get large.
double CellMse(const MethodSpec& method, uint64_t domain, uint64_t r,
               const BenchOptions& options, uint64_t population,
               uint64_t trials) {
  CauchyDistribution dist(domain);
  uint64_t num_starts = domain - r + 1;
  uint64_t step = num_starts > 2048 ? (num_starts + 2047) / 2048 : 1;
  double total_mse = 0.0;
  for (uint64_t t = 0; t < trials; ++t) {
    Rng rng(options.seed + t);
    Dataset data = Dataset::FromDistribution(dist, population, rng);
    std::unique_ptr<RangeMechanism> mech =
        MakeMechanism(method, domain, /*eps=*/1.1);
    EncodePopulation(data, *mech, rng);
    mech->Finalize(rng);
    double err = 0.0;
    uint64_t queries = 0;
    for (uint64_t a = 0; a + r <= domain; a += step) {
      double diff =
          mech->RangeQuery(a, a + r - 1) - data.TrueRange(a, a + r - 1);
      err += diff * diff;
      ++queries;
    }
    total_mse += err / static_cast<double>(queries);
  }
  return total_mse / static_cast<double>(trials);
}

void RunDomain(uint64_t domain, const std::vector<uint64_t>& fanouts,
               const std::vector<uint64_t>& lengths, bool include_olh,
               const BenchOptions& options, uint64_t population,
               uint64_t trials) {
  std::vector<OracleKind> oracles = {OracleKind::kOueSimulated,
                                     OracleKind::kHrr};
  if (include_olh) {
    oracles.push_back(OracleKind::kOlh);
  }
  for (uint64_t r : lengths) {
    std::printf("\n--- D = %llu, query length r = %llu (MSE x1000) ---\n",
                static_cast<unsigned long long>(domain),
                static_cast<unsigned long long>(r));
    std::vector<std::string> headers = {"B", "TreeOUE", "TreeOUECI",
                                        "TreeHRR", "TreeHRRCI"};
    if (include_olh) {
      headers.insert(headers.end(), {"TreeOLH", "TreeOLHCI"});
    }
    TablePrinter table(headers);
    for (uint64_t b : fanouts) {
      std::vector<std::string> row = {std::to_string(b)};
      for (OracleKind oracle : oracles) {
        for (bool ci : {false, true}) {
          double mse = CellMse(MethodSpec::Hh(b, oracle, ci), domain, r,
                               options, population, trials);
          row.push_back(FormatScaled(mse, 1000.0, 4));
        }
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
    double flat = CellMse(MethodSpec::Flat(OracleKind::kOueSimulated),
                          domain, r, options, population, trials);
    double haar =
        CellMse(MethodSpec::Haar(), domain, r, options, population, trials);
    std::printf("Flat-OUE (B=D): %s    HaarHRR (B=2): %s\n",
                FormatScaled(flat, 1000.0, 4).c_str(),
                FormatScaled(haar, 1000.0, 4).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  uint64_t population = PopulationFor(options, 1 << 17, 1 << 20, 1 << 26);
  uint64_t trials = TrialsFor(options, 3, 5, 5);
  PrintHeader("Figure 4: MSE vs branching factor B",
              "Cormode, Kulkarni, Srivastava (VLDB'19), Figure 4", options,
              population, trials);

  std::vector<uint64_t> domains;
  std::vector<uint64_t> fanouts;
  if (options.scale == "paper") {
    domains = {1ull << 8, 1ull << 16, 1ull << 20, 1ull << 22};
    fanouts = {2, 4, 8, 16, 32, 64};
  } else if (options.scale == "full") {
    domains = {1ull << 8, 1ull << 16};
    fanouts = {2, 4, 8, 16, 32};
  } else {
    domains = {1ull << 8, 1ull << 10};
    fanouts = {2, 4, 8, 16};
  }
  for (uint64_t domain : domains) {
    std::vector<uint64_t> lengths = {1, domain / 64, domain / 8, domain / 2};
    bool include_olh = domain <= (1 << 8);
    RunDomain(domain, fanouts, lengths, include_olh, options, population,
              trials);
  }
  std::printf(
      "\nTakeaways to compare with the paper: CI columns <= raw columns; "
      "flat competitive only at r=1; HaarHRR best/near-best elsewhere.\n");
  return 0;
}
