// Streamed vs one-shot ingestion: what does the service layer cost?
//
// The acceptance claim for PR 5: at D = 2^16, streaming a population as
// kStreamChunk messages through AggregatorService (session bookkeeping,
// per-server strand queue, worker-pool handoff) lands within 10% of the
// bare AbsorbBatchSerialized loop on the same chunk bytes — the stream
// framing adds ~18 bytes and one map lookup per multi-thousand-report
// chunk, so the absorb work dominates. BM_StreamedChunks covers worker
// pool sizes 1 and 4; BM_OneShotBatch is the reference. Chunk bytes are
// pre-encoded outside the timed region (client-side encode cost is the
// same on both paths and is measured by bench_ingest_throughput).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "protocol/tree_protocol.h"
#include "service/aggregator_service.h"
#include "service/server_factory.h"
#include "service/stream_wire.h"

namespace {

using namespace ldp;  // NOLINT(build/namespaces)

constexpr double kEps = 1.1;
constexpr uint64_t kReportsPerChunk = 8192;

service::ServerSpec TreeSpec(uint64_t domain) {
  service::ServerSpec spec;
  spec.kind = service::ServerKind::kTree;
  spec.domain = domain;
  spec.eps = kEps;
  spec.fanout = 4;
  return spec;
}

// Pre-encodes `num_chunks` kTreeHrrBatch messages of kReportsPerChunk
// reports each.
std::vector<std::vector<uint8_t>> MakeChunks(uint64_t domain,
                                             int64_t num_chunks) {
  protocol::TreeHrrClient client(domain, /*fanout=*/4, kEps);
  Rng rng(42);
  std::vector<uint64_t> values(kReportsPerChunk);
  std::vector<std::vector<uint8_t>> chunks;
  chunks.reserve(num_chunks);
  for (int64_t c = 0; c < num_chunks; ++c) {
    for (uint64_t i = 0; i < kReportsPerChunk; ++i) {
      values[i] = (c * kReportsPerChunk + i * 2654435761u) % domain;
    }
    chunks.push_back(client.EncodeUsersSerialized(values, rng));
  }
  return chunks;
}

// Reference: the in-process batch loop, no service in the path. The
// server lives outside the timed region (both paths ingest into a
// long-lived aggregator; counters just grow across iterations).
void BM_OneShotBatch(benchmark::State& state) {
  uint64_t domain = state.range(0);
  int64_t num_chunks = state.range(1);
  std::vector<std::vector<uint8_t>> chunks = MakeChunks(domain, num_chunks);
  std::unique_ptr<service::AggregatorServer> server =
      service::MakeAggregatorServer(TreeSpec(domain));
  for (auto _ : state) {
    for (const std::vector<uint8_t>& chunk : chunks) {
      server->AbsorbBatchSerialized(chunk);
    }
    benchmark::DoNotOptimize(server->accepted_reports());
  }
  state.SetItemsProcessed(state.iterations() * num_chunks *
                          kReportsPerChunk);
}
BENCHMARK(BM_OneShotBatch)
    ->Args({1 << 12, 8})
    ->Args({1 << 16, 8})
    ->Args({1 << 16, 32})
    ->UseRealTime();

// Streamed: the same chunk bytes through the live service, one fresh
// session per iteration (steady-state serving; the pool and server are
// long-lived). Wall-clock time, since the absorb work runs on pool
// workers. workers = 0 is inline mode — the acceptance comparison
// against BM_OneShotBatch, isolating the framing + session cost from
// core count (on a single-core box the pooled variants serialize the
// producer and worker, so their wall time is the sum of both).
void BM_StreamedChunks(benchmark::State& state) {
  uint64_t domain = state.range(0);
  int64_t num_chunks = state.range(1);
  unsigned workers = static_cast<unsigned>(state.range(2));
  std::vector<std::vector<uint8_t>> chunks = MakeChunks(domain, num_chunks);
  service::AggregatorService svc(workers);
  uint64_t id =
      svc.AddServer(service::MakeAggregatorServer(TreeSpec(domain)));
  uint64_t session = 0;
  for (auto _ : state) {
    ++session;
    svc.HandleMessage(service::SerializeStreamBegin({session, id}));
    for (int64_t c = 0; c < num_chunks; ++c) {
      svc.HandleMessage(service::SerializeStreamChunk(
          session, static_cast<uint64_t>(c), chunks[c]));
    }
    svc.HandleMessage(service::SerializeStreamEnd(
        {session, static_cast<uint64_t>(num_chunks), 0}));
    svc.Drain();
    benchmark::DoNotOptimize(svc.server(id).accepted_reports());
  }
  state.SetItemsProcessed(state.iterations() * num_chunks *
                          kReportsPerChunk);
}
BENCHMARK(BM_StreamedChunks)
    ->Args({1 << 12, 8, 0})
    ->Args({1 << 16, 8, 0})
    ->Args({1 << 16, 32, 0})
    ->Args({1 << 16, 8, 1})
    ->Args({1 << 16, 32, 1})
    ->Args({1 << 16, 32, 4})
    ->UseRealTime();

// Many mechanism instances ingesting concurrently — the case the worker
// pool exists for: 4 servers, one session each per iteration. With one
// worker the strands serialize; with 4 they genuinely overlap.
void BM_StreamedMultiServer(benchmark::State& state) {
  uint64_t domain = state.range(0);
  int64_t num_chunks = state.range(1);
  unsigned workers = static_cast<unsigned>(state.range(2));
  std::vector<std::vector<uint8_t>> chunks = MakeChunks(domain, num_chunks);
  constexpr int kServers = 4;
  service::AggregatorService svc(workers);
  std::vector<uint64_t> ids;
  for (int s = 0; s < kServers; ++s) {
    ids.push_back(
        svc.AddServer(service::MakeAggregatorServer(TreeSpec(domain))));
  }
  uint64_t session = 0;
  for (auto _ : state) {
    uint64_t base = session;
    for (int s = 0; s < kServers; ++s) {
      svc.HandleMessage(service::SerializeStreamBegin({base + s, ids[s]}));
    }
    for (int64_t c = 0; c < num_chunks; ++c) {
      for (int s = 0; s < kServers; ++s) {
        svc.HandleMessage(service::SerializeStreamChunk(
            base + s, static_cast<uint64_t>(c), chunks[c]));
      }
    }
    // End each session so its sequence set is released; without this
    // the timed region accumulates per-session state across iterations.
    for (int s = 0; s < kServers; ++s) {
      svc.HandleMessage(service::SerializeStreamEnd(
          {base + s, static_cast<uint64_t>(num_chunks), 0}));
    }
    svc.Drain();
    session += kServers;
    benchmark::DoNotOptimize(svc.server(ids[0]).accepted_reports());
  }
  state.SetItemsProcessed(state.iterations() * kServers * num_chunks *
                          kReportsPerChunk);
}
BENCHMARK(BM_StreamedMultiServer)
    ->Args({1 << 16, 8, 1})
    ->Args({1 << 16, 8, 4})
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
