// loadgen: TCP load generator for the aggregator front-end.
//
// Simulates a reporting population of --users LDP clients streaming
// encoded report chunks over --connections concurrent TCP connections,
// then measures query latency over the same wire. Two modes:
//
//   self-host (default, --port=0): spins up an AggregatorService +
//     TcpFrontEnd in-process on an ephemeral loopback port — the
//     reproducible single-box configuration run_baselines.sh records
//     and the CI net-smoke job asserts on.
//   external (--host/--port): drives an already-running front-end;
//     server-side stats come from the kStatsQuery scrape over the same
//     wire (the in-process ServiceStats reconciliation is self-host
//     only).
//
// Encoding happens BEFORE the clock starts (the client-side perturbation
// cost is bench_micro_mechanisms' subject, not this binary's): the timed
// section is framing + TCP + service admission + absorb. Every ingest
// connection ends with the shutdown(SHUT_WR) handshake and waits for the
// server's EOF, which the front-end only sends after routing every
// buffered message — so when the ingest phase ends, every chunk is
// admitted, and the finalize session cannot race ahead of data.
//
// Deliberately plain (no Google Benchmark dependency): it must build in
// every preset, including the sanitizer ones where LDP_BUILD_BENCH is
// OFF, because CI runs it under ASan.
//
// Output: human-readable summary on stdout, plus --json=PATH with the
// medians-over---reps numbers in the same shape as the other checked-in
// BENCH_*.json baselines. --assert-clean exits non-zero unless the run
// was hygienic (no rejected/incomplete/late/malformed anything) — socket
// pauses are NOT a failure, they are backpressure doing its job.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "net/snapshot_push.h"
#include "net/tcp_client.h"
#include "net/tcp_front_end.h"
#include "obs/stats_wire.h"
#include "obs/trace.h"
#include "protocol/flat_protocol.h"
#include "protocol/haar_protocol.h"
#include "protocol/tree_protocol.h"
#include "service/aggregator_service.h"
#include "service/server_factory.h"
#include "service/state_wire.h"
#include "service/stream_wire.h"

namespace {

using ldp::Rng;
using ldp::net::TcpClient;
using ldp::net::TcpFrontEnd;
using ldp::net::TcpFrontEndConfig;
using ldp::service::AggregatorService;
using ldp::service::MakeAggregatorServer;
using ldp::service::QueryStatus;
using ldp::service::RangeQueryRequest;
using ldp::service::RangeQueryResponse;
using ldp::service::ServerKind;
using ldp::service::ServerSpec;
using ldp::service::StreamEnd;

struct Options {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 => self-host on an ephemeral port
  unsigned connections = 8;
  uint64_t users = 200000;
  uint64_t chunk = 2000;  // users per chunk
  std::string mechanism = "haar";
  uint64_t domain = 1024;
  double eps = 1.0;
  uint64_t fanout = 4;
  unsigned workers = 0;  // 0 => hardware_concurrency / 2, min 1
  uint64_t queries = 200;
  unsigned reps = 3;
  double min_seconds = 0.0;  // per ingest rep, keep streaming until this
  std::string json;
  std::string trace;  // Chrome trace JSON of server-side spans
  bool assert_clean = false;
  // Multi-process fan-in mode: fork this many shard processes, each of
  // which runs the full ingest pipeline on its own service and pushes a
  // state snapshot to this process's merge plane. 0 = single-process.
  unsigned shards = 0;
  // Fan-in only: rebuild the identical population in-process and assert
  // every wire query response is byte-identical to the single-process
  // reference aggregate.
  bool verify_fanin = false;
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

Options ParseOptions(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (ParseFlag(arg, "host", &v)) opt.host = v;
    else if (ParseFlag(arg, "port", &v)) opt.port = static_cast<uint16_t>(std::stoul(v));
    else if (ParseFlag(arg, "connections", &v)) opt.connections = static_cast<unsigned>(std::stoul(v));
    else if (ParseFlag(arg, "users", &v)) opt.users = std::stoull(v);
    else if (ParseFlag(arg, "chunk", &v)) opt.chunk = std::stoull(v);
    else if (ParseFlag(arg, "mechanism", &v)) opt.mechanism = v;
    else if (ParseFlag(arg, "domain", &v)) opt.domain = std::stoull(v);
    else if (ParseFlag(arg, "eps", &v)) opt.eps = std::stod(v);
    else if (ParseFlag(arg, "fanout", &v)) opt.fanout = std::stoull(v);
    else if (ParseFlag(arg, "workers", &v)) opt.workers = static_cast<unsigned>(std::stoul(v));
    else if (ParseFlag(arg, "queries", &v)) opt.queries = std::stoull(v);
    else if (ParseFlag(arg, "reps", &v)) opt.reps = static_cast<unsigned>(std::stoul(v));
    else if (ParseFlag(arg, "min-seconds", &v)) opt.min_seconds = std::stod(v);
    else if (ParseFlag(arg, "json", &v)) opt.json = v;
    else if (ParseFlag(arg, "trace", &v)) opt.trace = v;
    else if (ParseFlag(arg, "shards", &v)) opt.shards = static_cast<unsigned>(std::stoul(v));
    else if (arg == "--verify-fanin") opt.verify_fanin = true;
    else if (arg == "--assert-clean") opt.assert_clean = true;
    else {
      std::fprintf(stderr,
                   "loadgen: unknown argument '%s'\n"
                   "flags: --host --port --connections --users --chunk "
                   "--mechanism=flat|haar|tree --domain --eps --fanout "
                   "--workers --queries --reps --min-seconds --json "
                   "--trace --shards --verify-fanin --assert-clean\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  if (opt.connections == 0) opt.connections = 1;
  if (opt.chunk == 0) opt.chunk = 1;
  if (opt.reps == 0) opt.reps = 1;
  return opt;
}

ServerKind KindFromName(const std::string& name) {
  if (name == "flat") return ServerKind::kFlat;
  if (name == "haar") return ServerKind::kHaar;
  if (name == "tree") return ServerKind::kTree;
  std::fprintf(stderr, "loadgen: unsupported --mechanism=%s\n", name.c_str());
  std::exit(2);
}

// One connection's pre-encoded traffic: the chunks of its user share.
std::vector<std::vector<uint8_t>> EncodeShare(const ServerSpec& spec,
                                              uint64_t users, uint64_t chunk,
                                              uint64_t seed) {
  Rng value_rng(seed);
  std::vector<uint64_t> values(users);
  for (uint64_t i = 0; i < users; ++i) {
    values[i] = value_rng.Bernoulli(0.6)
                    ? value_rng.UniformInt(std::max<uint64_t>(1, spec.domain / 8))
                    : value_rng.UniformInt(spec.domain);
  }
  std::vector<std::vector<uint8_t>> chunks;
  for (uint64_t begin = 0; begin < users; begin += chunk) {
    const uint64_t end = std::min(users, begin + chunk);
    std::span<const uint64_t> slice(values.data() + begin, end - begin);
    Rng rng(seed ^ (begin * 0x9E3779B97F4A7C15ULL));
    switch (spec.kind) {
      case ServerKind::kFlat: {
        ldp::protocol::FlatHrrClient client(spec.domain, spec.eps);
        chunks.push_back(client.EncodeUsersSerialized(slice, rng));
        break;
      }
      case ServerKind::kHaar: {
        ldp::protocol::HaarHrrClient client(spec.domain, spec.eps);
        chunks.push_back(client.EncodeUsersSerialized(slice, rng));
        break;
      }
      case ServerKind::kTree: {
        ldp::protocol::TreeHrrClient client(spec.domain, spec.fanout,
                                            spec.eps);
        chunks.push_back(client.EncodeUsersSerialized(slice, rng));
        break;
      }
      default:
        std::exit(2);
    }
  }
  return chunks;
}

// Streams `chunks` as one complete session. False on any socket failure.
bool StreamOneSession(TcpClient& client, uint64_t session_id,
                      uint64_t server_id,
                      const std::vector<std::vector<uint8_t>>& chunks) {
  if (!client.Send(ldp::service::SerializeStreamBegin(
          {session_id, server_id}))) {
    return false;
  }
  for (size_t c = 0; c < chunks.size(); ++c) {
    if (!client.Send(
            ldp::service::SerializeStreamChunk(session_id, c, chunks[c]))) {
      return false;
    }
  }
  StreamEnd end;
  end.session_id = session_id;
  end.chunk_count = chunks.size();
  return client.Send(ldp::service::SerializeStreamEnd(end));
}

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const size_t idx = static_cast<size_t>(p * (xs.size() - 1) + 0.5);
  return xs[idx];
}

struct IngestResult {
  double reports_per_sec = 0.0;
  double mb_per_sec = 0.0;
  uint64_t reports = 0;
  uint64_t sessions = 0;
  bool ok = true;
};

IngestResult RunIngestRep(const Options& opt, const std::string& host,
                          uint16_t port, uint64_t server_id,
                          const std::vector<std::vector<std::vector<uint8_t>>>&
                              shares,
                          const std::vector<uint64_t>& share_users,
                          std::atomic<uint64_t>& next_session) {
  IngestResult result;
  std::atomic<uint64_t> reports{0};
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> sessions{0};
  std::atomic<bool> ok{true};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(shares.size());
  for (size_t s = 0; s < shares.size(); ++s) {
    threads.emplace_back([&, s] {
      const auto& share = shares[s];
      TcpClient client;
      if (!client.Connect(host, port)) {
        ok.store(false);
        return;
      }
      uint64_t share_bytes = 0;
      for (const auto& chunk : share) share_bytes += chunk.size();
      // At least one session; keep looping fresh sessions of the same
      // encoded bytes until the rep has filled --min-seconds.
      do {
        const uint64_t session_id = next_session.fetch_add(1);
        if (!StreamOneSession(client, session_id, server_id, share)) {
          ok.store(false);
          return;
        }
        sessions.fetch_add(1);
        // Exact per-share count (the last share is short when --users is
        // not a multiple of --connections) so the scrape-time
        // reconciliation against server-side accepted+rejected is exact.
        reports.fetch_add(share_users[s]);
        bytes.fetch_add(share_bytes);
      } while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start)
                   .count() < opt.min_seconds);
      // Shutdown handshake: the server's EOF certifies every message on
      // this connection was routed before the rep is declared over.
      client.ShutdownWrite();
      std::vector<uint8_t> eof_probe;
      if (client.ReceiveMessage(&eof_probe)) ok.store(false);
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.reports = reports.load();
  result.sessions = sessions.load();
  result.ok = ok.load();
  result.reports_per_sec = elapsed > 0 ? result.reports / elapsed : 0.0;
  result.mb_per_sec = elapsed > 0 ? bytes.load() / elapsed / 1e6 : 0.0;
  return result;
}

ServerSpec SpecFromOptions(const Options& opt) {
  ServerSpec spec;
  spec.kind = KindFromName(opt.mechanism);
  spec.domain = opt.domain;
  spec.eps = opt.eps;
  spec.fanout = opt.fanout;
  return spec;
}

unsigned ResolveWorkers(const Options& opt) {
  if (opt.workers != 0) return opt.workers;
  return std::max(1u, std::thread::hardware_concurrency() / 2);
}

// ---------------------------------------------------------------------
// Single-process mode: one service hosts ingest and queries.

int RunSingle(const Options& opt) {
  // Server-side span capture (self-host only: the spans come from the
  // in-process service). Armed before any work so ingest is covered.
  if (!opt.trace.empty()) ldp::obs::StartTracing();
  const ServerSpec spec = SpecFromOptions(opt);

  // Self-hosted service + front-end, unless an external one was named.
  std::unique_ptr<AggregatorService> svc;
  std::unique_ptr<TcpFrontEnd> front;
  std::string host = opt.host;
  uint16_t port = opt.port;
  uint64_t server_id = 0;
  const unsigned workers = ResolveWorkers(opt);
  if (port == 0) {
    svc = std::make_unique<AggregatorService>(workers);
    server_id = svc->AddServer(MakeAggregatorServer(spec));
    front = std::make_unique<TcpFrontEnd>(*svc);
    if (!front->Start()) {
      std::fprintf(stderr, "loadgen: failed to start TcpFrontEnd: %s\n",
                   std::strerror(errno));
      return 1;
    }
    host = "127.0.0.1";
    port = front->port();
  }

  // Encode every connection's share up front, outside the clock.
  std::printf("loadgen: encoding %llu %s users (domain=%llu eps=%g) ...\n",
              static_cast<unsigned long long>(opt.users),
              opt.mechanism.c_str(),
              static_cast<unsigned long long>(opt.domain), opt.eps);
  const uint64_t per_conn =
      (opt.users + opt.connections - 1) / opt.connections;
  std::vector<std::vector<std::vector<uint8_t>>> shares(opt.connections);
  std::vector<uint64_t> share_users(opt.connections, 0);
  {
    std::vector<std::thread> encoders;
    for (unsigned c = 0; c < opt.connections; ++c) {
      encoders.emplace_back([&, c] {
        const uint64_t begin = c * per_conn;
        const uint64_t end = std::min<uint64_t>(opt.users, begin + per_conn);
        if (begin < end) {
          share_users[c] = end - begin;
          shares[c] =
              EncodeShare(spec, end - begin, opt.chunk, /*seed=*/0x10AD + c);
        }
      });
    }
    for (auto& t : encoders) t.join();
  }

  // Ingest phase: --reps timed passes, medians reported.
  std::atomic<uint64_t> next_session{1};
  std::vector<double> rep_reports_per_sec, rep_mb_per_sec;
  uint64_t total_reports = 0, total_sessions = 0;
  bool ingest_ok = true;
  for (unsigned rep = 0; rep < opt.reps; ++rep) {
    const IngestResult r = RunIngestRep(opt, host, port, server_id, shares,
                                        share_users, next_session);
    ingest_ok = ingest_ok && r.ok;
    rep_reports_per_sec.push_back(r.reports_per_sec);
    rep_mb_per_sec.push_back(r.mb_per_sec);
    total_reports += r.reports;
    total_sessions += r.sessions;
    std::printf("loadgen: ingest rep %u/%u: %.0f reports/s (%.1f MB/s)\n",
                rep + 1, opt.reps, r.reports_per_sec, r.mb_per_sec);
  }

  // Finalize: an empty finalizing session after all data sessions — the
  // EOF handshakes above guarantee nothing is still unrouted behind it.
  TcpClient query_conn;
  if (!query_conn.Connect(host, port)) {
    std::fprintf(stderr, "loadgen: query connection failed\n");
    return 1;
  }
  {
    const uint64_t session_id = next_session.fetch_add(1);
    query_conn.Send(
        ldp::service::SerializeStreamBegin({session_id, server_id}));
    StreamEnd end;
    end.session_id = session_id;
    end.chunk_count = 0;
    end.flags = ldp::service::kStreamFlagFinalize;
    query_conn.Send(ldp::service::SerializeStreamEnd(end));
  }

  // Query phase. The first query also acts as the finalize sync point:
  // retry while the server still answers kNotFinalized.
  Rng query_rng(0x9E57);
  std::vector<double> latencies_us;
  uint64_t queries_ok = 0;
  for (uint64_t q = 0; q < opt.queries; ++q) {
    RangeQueryRequest request;
    request.query_id = q;
    request.server_id = server_id;
    uint64_t lo = query_rng.UniformInt(opt.domain);
    uint64_t hi = query_rng.UniformInt(opt.domain);
    if (lo > hi) std::swap(lo, hi);
    request.intervals = {{lo, hi}};
    const std::vector<uint8_t> bytes =
        ldp::service::SerializeRangeQueryRequest(request);
    RangeQueryResponse response;
    for (int attempt = 0; attempt < 2000; ++attempt) {
      const auto t0 = std::chrono::steady_clock::now();
      const std::vector<uint8_t> reply = query_conn.Call(bytes);
      const auto t1 = std::chrono::steady_clock::now();
      if (ldp::service::ParseRangeQueryResponse(reply, &response) !=
          ldp::protocol::ParseError::kOk) {
        break;
      }
      if (q == 0 && response.status == QueryStatus::kNotFinalized) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;  // finalize still draining
      }
      if (response.status == QueryStatus::kOk) {
        ++queries_ok;
        latencies_us.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
      break;
    }
  }
  query_conn.Close();

  const double ingest_median = Median(rep_reports_per_sec);
  const double mb_median = Median(rep_mb_per_sec);
  const double q_p50 = Percentile(latencies_us, 0.50);
  const double q_p90 = Percentile(latencies_us, 0.90);
  const double q_p99 = Percentile(latencies_us, 0.99);
  std::printf(
      "loadgen: ingest median %.0f reports/s (%.1f MB/s) over %u reps, "
      "%llu sessions\n"
      "loadgen: query latency p50 %.1f us, p90 %.1f us, p99 %.1f us "
      "(%llu/%llu ok)\n",
      ingest_median, mb_median, opt.reps,
      static_cast<unsigned long long>(total_sessions), q_p50, q_p90, q_p99,
      static_cast<unsigned long long>(queries_ok),
      static_cast<unsigned long long>(opt.queries));

  // Hygiene verdict. Socket pauses and read pauses are expected under
  // load (they are the backpressure design working); anything dropped,
  // rejected or malformed is not.
  bool clean = ingest_ok && queries_ok == opt.queries;
  ldp::service::ServiceStats sstats;
  ldp::net::TcpFrontEndStats fstats;
  if (svc != nullptr) svc->Drain();

  // Stats-plane scrape: pull the server's metrics over the same wire the
  // load went through (kStatsQuery/kStatsResponse). Works against
  // external servers too — this is how server-side latency becomes
  // visible without any shared memory.
  ldp::obs::StatsResponse scrape;
  bool scrape_ok = false;
  {
    TcpClient stats_conn;
    if (stats_conn.Connect(host, port)) {
      ldp::obs::StatsQuery stats_query;
      stats_query.query_id = 0x57A75;
      stats_query.flags = ldp::obs::kStatsFlagIncludeGlobal;
      const std::vector<uint8_t> reply =
          stats_conn.Call(ldp::obs::SerializeStatsQuery(stats_query));
      scrape_ok = ldp::obs::ParseStatsResponse(reply, &scrape) ==
                      ldp::protocol::ParseError::kOk &&
                  scrape.status == ldp::obs::StatsStatus::kOk &&
                  scrape.query_id == stats_query.query_id;
      stats_conn.Close();
    }
  }
  if (!scrape_ok) {
    std::fprintf(stderr, "loadgen: stats scrape failed\n");
    clean = false;
  }

  // Server-side stage latency, from the scraped histograms (ns on the
  // wire, reported in us).
  const std::string server_prefix = "server" + std::to_string(server_id);
  auto scrape_quantiles = [&](const std::string& name, double out_us[3]) {
    out_us[0] = out_us[1] = out_us[2] = 0.0;
    const ldp::obs::HistogramValue* h = scrape.metrics.FindHistogram(name);
    if (h == nullptr) return uint64_t{0};
    out_us[0] = static_cast<double>(h->histogram.Quantile(0.50)) / 1e3;
    out_us[1] = static_cast<double>(h->histogram.Quantile(0.95)) / 1e3;
    out_us[2] = static_cast<double>(h->histogram.Quantile(0.99)) / 1e3;
    return h->histogram.count;
  };
  double absorb_us[3], qwait_us[3], squery_us[3];
  const uint64_t absorb_count =
      scrape_quantiles(server_prefix + ".absorb_batch_ns", absorb_us);
  scrape_quantiles("service.queue_wait_ns", qwait_us);
  scrape_quantiles("service.query_ns", squery_us);
  if (scrape_ok) {
    std::printf(
        "loadgen: server-side absorb_batch p50 %.1f us, p95 %.1f us, "
        "p99 %.1f us (%llu batches)\n"
        "loadgen: server-side queue_wait p50 %.1f us, p95 %.1f us, "
        "p99 %.1f us; query p50 %.1f us, p95 %.1f us, p99 %.1f us\n",
        absorb_us[0], absorb_us[1], absorb_us[2],
        static_cast<unsigned long long>(absorb_count), qwait_us[0],
        qwait_us[1], qwait_us[2], squery_us[0], squery_us[1], squery_us[2]);
  }

  if (svc != nullptr) {
    sstats = svc->stats();
    fstats = front->stats();
    clean = clean && sstats.malformed_messages == 0 &&
            sstats.rejected_sessions == 0 && sstats.unknown_sessions == 0 &&
            sstats.duplicate_chunks == 0 && sstats.late_chunks == 0 &&
            sstats.incomplete_streams == 0 &&
            sstats.oversized_declarations == 0 &&
            sstats.duplicate_sessions == 0 && fstats.protocol_errors == 0;
    std::printf(
        "loadgen: service stats: %llu msgs, %llu chunks absorbed, "
        "%llu socket pauses, %llu incomplete\n",
        static_cast<unsigned long long>(sstats.messages),
        static_cast<unsigned long long>(sstats.chunks_absorbed),
        static_cast<unsigned long long>(sstats.socket_pauses),
        static_cast<unsigned long long>(sstats.incomplete_streams));
  }

  // Stats-plane invariants: the scrape is taken after Drain() and after
  // every connection's EOF handshake, so the system is quiescent and the
  // relaxed counters are exact. Violations fail --assert-clean.
  if (scrape_ok && svc != nullptr) {
    auto check = [&](bool ok_cond, const char* what) {
      if (!ok_cond) {
        std::fprintf(stderr, "loadgen: stats invariant FAILED: %s\n", what);
        clean = false;
      }
    };
    // Every report the clients sent was either accepted or rejected by
    // the server — nothing vanished in the queues or on the wire.
    const uint64_t accepted =
        scrape.metrics.CounterOr(server_prefix + ".accepted");
    const uint64_t rejected =
        scrape.metrics.CounterOr(server_prefix + ".rejected");
    check(accepted + rejected == total_reports,
          "accepted + rejected == reports sent");
    // Backpressure pauses always resolved.
    check(scrape.metrics.CounterOr("net.read_pauses") ==
              scrape.metrics.CounterOr("net.read_resumes"),
          "net.read_pauses == net.read_resumes");
    // The ingest queues drained to empty.
    const ldp::obs::GaugeValue* depth =
        scrape.metrics.FindGauge("service.queue_depth");
    check(depth != nullptr && depth->value == 0,
          "service.queue_depth == 0 after drain");
    check(scrape.metrics.CounterOr("service.chunks_enqueued") ==
              scrape.metrics.CounterOr("service.chunks_absorbed"),
          "chunks_enqueued == chunks_absorbed");
    // The wire snapshot reconciles exactly with the in-process
    // ServiceStats read taken after it (no traffic in between).
    const struct { const char* name; uint64_t expect; } recon[] = {
        {"service.messages", sstats.messages},
        {"service.malformed_messages", sstats.malformed_messages},
        {"service.duplicate_sessions", sstats.duplicate_sessions},
        {"service.rejected_sessions", sstats.rejected_sessions},
        {"service.unknown_sessions", sstats.unknown_sessions},
        {"service.duplicate_chunks", sstats.duplicate_chunks},
        {"service.late_chunks", sstats.late_chunks},
        {"service.incomplete_streams", sstats.incomplete_streams},
        {"service.oversized_declarations", sstats.oversized_declarations},
        {"service.chunks_enqueued", sstats.chunks_enqueued},
        {"service.chunks_absorbed", sstats.chunks_absorbed},
        {"service.backpressure_waits", sstats.backpressure_waits},
        {"service.socket_pauses", sstats.socket_pauses},
        {"service.queries_answered", sstats.queries_answered},
    };
    for (const auto& r : recon) {
      if (scrape.metrics.CounterOr(r.name) != r.expect) {
        std::fprintf(stderr,
                     "loadgen: stats invariant FAILED: scraped %s = %llu "
                     "!= ServiceStats %llu\n",
                     r.name,
                     static_cast<unsigned long long>(
                         scrape.metrics.CounterOr(r.name)),
                     static_cast<unsigned long long>(r.expect));
        clean = false;
      }
    }
    // Session lifecycle: every session this run began (data sessions
    // plus the finalizing one) also completed, and exactly one finalize
    // ran. Registry-only counters — not part of ServiceStats.
    check(scrape.metrics.CounterOr("service.sessions_begun") ==
              scrape.metrics.CounterOr("service.sessions_completed"),
          "sessions_begun == sessions_completed");
    check(scrape.metrics.CounterOr("service.sessions_begun") ==
              total_sessions + 1,
          "sessions_begun == data sessions + finalize session");
    check(scrape.metrics.CounterOr("service.finalizes") == 1,
          "exactly one finalize");
    // The ingest histogram saw real work.
    check(absorb_count > 0, "absorb_batch histogram non-empty");
  }

  if (!opt.json.empty()) {
    std::ofstream out(opt.json);
    out << "{\n"
        << "  \"bench\": \"micro_net\",\n"
        << "  \"config\": {\"mechanism\": \"" << opt.mechanism
        << "\", \"domain\": " << opt.domain << ", \"eps\": " << opt.eps
        << ", \"users\": " << opt.users << ", \"chunk\": " << opt.chunk
        << ", \"connections\": " << opt.connections
        << ", \"workers\": " << workers << ", \"reps\": " << opt.reps
        << ", \"min_seconds\": " << opt.min_seconds << "},\n"
        << "  \"ingest\": {\"reports_per_sec_median\": " << ingest_median
        << ", \"mb_per_sec_median\": " << mb_median
        << ", \"total_reports\": " << total_reports
        << ", \"total_sessions\": " << total_sessions << "},\n"
        << "  \"query\": {\"count_ok\": " << queries_ok
        << ", \"p50_us\": " << q_p50 << ", \"p90_us\": " << q_p90
        << ", \"p99_us\": " << q_p99 << "},\n"
        << "  \"server_latency\": {\"scrape_ok\": "
        << (scrape_ok ? "true" : "false")
        << ", \"absorb_batch\": {\"count\": " << absorb_count
        << ", \"p50_us\": " << absorb_us[0] << ", \"p95_us\": "
        << absorb_us[1] << ", \"p99_us\": " << absorb_us[2] << "}"
        << ", \"queue_wait\": {\"p50_us\": " << qwait_us[0]
        << ", \"p95_us\": " << qwait_us[1] << ", \"p99_us\": " << qwait_us[2]
        << "}"
        << ", \"query\": {\"p50_us\": " << squery_us[0]
        << ", \"p95_us\": " << squery_us[1] << ", \"p99_us\": "
        << squery_us[2] << "}},\n"
        << "  \"service_stats\": {\"messages\": " << sstats.messages
        << ", \"chunks_absorbed\": " << sstats.chunks_absorbed
        << ", \"socket_pauses\": " << sstats.socket_pauses
        << ", \"backpressure_waits\": " << sstats.backpressure_waits
        << ", \"incomplete_streams\": " << sstats.incomplete_streams
        << ", \"rejected_sessions\": " << sstats.rejected_sessions << "},\n"
        << "  \"front_end_stats\": {\"connections\": "
        << fstats.connections_accepted
        << ", \"bytes_received\": " << fstats.bytes_received
        << ", \"read_pauses\": " << fstats.read_pauses
        << ", \"read_resumes\": " << fstats.read_resumes
        << ", \"protocol_errors\": " << fstats.protocol_errors << "},\n"
        << "  \"clean\": " << (clean ? "true" : "false") << "\n"
        << "}\n";
    std::printf("loadgen: wrote %s\n", opt.json.c_str());
  }

  if (front != nullptr) front->Stop();
  if (!opt.trace.empty()) {
    ldp::obs::StopTracing();
    if (ldp::obs::WriteChromeTraceJson(opt.trace)) {
      std::printf("loadgen: wrote %s (%llu spans, %llu dropped)\n",
                  opt.trace.c_str(),
                  static_cast<unsigned long long>(
                      ldp::obs::CapturedTraceEventCount()),
                  static_cast<unsigned long long>(
                      ldp::obs::DroppedTraceEventCount()));
    } else {
      std::fprintf(stderr, "loadgen: failed to write --trace=%s\n",
                   opt.trace.c_str());
    }
  }
  if (opt.assert_clean && !clean) {
    std::fprintf(stderr, "loadgen: --assert-clean FAILED\n");
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------
// Multi-process fan-in mode (--shards=N).
//
// N forked shard processes each run the full single-box ingest pipeline
// (their own AggregatorService + TcpFrontEnd on loopback, their own
// slice of the encoded population), then serialize their aggregate
// state and push it to this process's merge plane as one kStateMerge
// each, finalize flag set. The parent merges the snapshots in its
// parallel fan-in plane, answers the query phase from the merged
// aggregate, and reconciles the children's would-block retry counts
// against its own merge counters. The headline number is the aggregate
// ingest rate: N shards encode+stream+absorb concurrently, so it should
// scale near-linearly until the box runs out of cores.

struct ShardOutcome {
  uint64_t reports = 0;
  uint64_t sessions = 0;
  double rps = 0.0;   // median reports/s across the shard's reps
  double mbps = 0.0;
  uint64_t retries = 0;  // kWouldBlock bounces of the snapshot push
  int ok = 0;
};

// One forked shard. port_fd delivers the parent's front-end port (2
// bytes LE, written only once the parent is actually listening);
// result_fd receives one line of key=value results when the shard is
// done.
int RunShardChild(const Options& opt, unsigned shard, int port_fd,
                  int result_fd) {
  uint16_t parent_port = 0;
  {
    uint8_t raw[2];
    size_t got = 0;
    while (got < sizeof raw) {
      const ssize_t n = read(port_fd, raw + got, sizeof raw - got);
      if (n <= 0) {
        std::fprintf(stderr, "loadgen[shard %u]: no port from parent\n",
                     shard);
        return 1;
      }
      got += static_cast<size_t>(n);
    }
    parent_port = static_cast<uint16_t>(raw[0] | (raw[1] << 8));
    close(port_fd);
  }

  const ServerSpec spec = SpecFromOptions(opt);
  AggregatorService svc(ResolveWorkers(opt));
  const uint64_t server_id = svc.AddServer(MakeAggregatorServer(spec));
  TcpFrontEnd front(svc);
  if (!front.Start()) {
    std::fprintf(stderr, "loadgen[shard %u]: TcpFrontEnd failed: %s\n",
                 shard, std::strerror(errno));
    return 1;
  }

  // Encode this shard's slice of the population. Connection seeds are
  // globally offset so the union over all shards is exactly the
  // single-process population — the basis of --verify-fanin.
  const uint64_t global_conns =
      static_cast<uint64_t>(opt.connections) * opt.shards;
  const uint64_t per_conn = (opt.users + global_conns - 1) / global_conns;
  std::vector<std::vector<std::vector<uint8_t>>> shares(opt.connections);
  std::vector<uint64_t> share_users(opt.connections, 0);
  {
    std::vector<std::thread> encoders;
    for (unsigned c = 0; c < opt.connections; ++c) {
      encoders.emplace_back([&, c] {
        const uint64_t g =
            static_cast<uint64_t>(shard) * opt.connections + c;
        const uint64_t begin = g * per_conn;
        const uint64_t end = std::min<uint64_t>(opt.users, begin + per_conn);
        if (begin < end) {
          share_users[c] = end - begin;
          shares[c] = EncodeShare(spec, end - begin, opt.chunk,
                                  /*seed=*/0x10AD + g);
        }
      });
    }
    for (auto& t : encoders) t.join();
  }

  std::atomic<uint64_t> next_session{1};
  std::vector<double> rep_rps, rep_mbps;
  ShardOutcome out;
  out.ok = 1;
  for (unsigned rep = 0; rep < opt.reps; ++rep) {
    const IngestResult r = RunIngestRep(opt, "127.0.0.1", front.port(),
                                        server_id, shares, share_users,
                                        next_session);
    if (!r.ok) out.ok = 0;
    rep_rps.push_back(r.reports_per_sec);
    rep_mbps.push_back(r.mb_per_sec);
    out.reports += r.reports;
    out.sessions += r.sessions;
  }
  out.rps = Median(rep_rps);
  out.mbps = Median(rep_mbps);
  svc.Drain();

  // Shard-side hygiene: nothing malformed, rejected, or lost locally.
  const ldp::service::ServiceStats sstats = svc.stats();
  if (sstats.malformed_messages != 0 || sstats.rejected_sessions != 0 ||
      sstats.unknown_sessions != 0 || sstats.duplicate_chunks != 0 ||
      sstats.late_chunks != 0 || sstats.incomplete_streams != 0 ||
      sstats.chunks_enqueued != sstats.chunks_absorbed) {
    std::fprintf(stderr, "loadgen[shard %u]: local ingest not clean\n",
                 shard);
    out.ok = 0;
  }

  // Push the aggregate state into the parent's merge plane. The
  // finalize flag rides on every push; the parent finalizes once the
  // last shard lands.
  {
    TcpClient push_conn;
    if (!push_conn.Connect("127.0.0.1", parent_port)) {
      std::fprintf(stderr, "loadgen[shard %u]: connect to parent failed\n",
                   shard);
      out.ok = 0;
    } else {
      ldp::net::SnapshotPushOptions push_opt;
      push_opt.receive_timeout_ms = 60000;
      push_opt.jitter_seed = 0x5EED + shard;
      const ldp::net::SnapshotPushResult push = ldp::net::PushStateSnapshot(
          push_conn, /*merge_id=*/1, /*server_id=*/0, shard, opt.shards,
          ldp::service::kMergeFlagFinalize,
          svc.server(server_id).SerializeState(), push_opt);
      out.retries = push.retries;
      if (!push.ok) {
        std::fprintf(stderr, "loadgen[shard %u]: snapshot push failed (%s)\n",
                     shard,
                     ldp::service::MergeStatusName(push.status).c_str());
        out.ok = 0;
      }
    }
  }
  front.Stop();

  dprintf(result_fd,
          "reports=%llu sessions=%llu rps=%.3f mbps=%.3f retries=%llu "
          "ok=%d\n",
          static_cast<unsigned long long>(out.reports),
          static_cast<unsigned long long>(out.sessions), out.rps, out.mbps,
          static_cast<unsigned long long>(out.retries), out.ok);
  close(result_fd);
  return out.ok ? 0 : 1;
}

int RunFanIn(const Options& opt) {
  if (opt.port != 0) {
    std::fprintf(stderr, "loadgen: --shards requires self-host (--port=0)\n");
    return 2;
  }
  if (opt.verify_fanin && opt.min_seconds > 0) {
    std::fprintf(stderr,
                 "loadgen: --verify-fanin needs a deterministic report "
                 "count; drop --min-seconds\n");
    return 2;
  }

  // Fork the shard processes FIRST, before this process creates any
  // thread (service workers, front-end loop, encoders): fork() from a
  // multi-threaded process duplicates only the calling thread. The
  // children block until the port arrives over their pipe.
  struct ChildHandle {
    pid_t pid = -1;
    int port_wr = -1;
    int result_rd = -1;
  };
  std::vector<ChildHandle> children(opt.shards);
  for (unsigned s = 0; s < opt.shards; ++s) {
    int port_pipe[2];
    int result_pipe[2];
    if (pipe(port_pipe) != 0 || pipe(result_pipe) != 0) {
      std::perror("loadgen: pipe");
      return 1;
    }
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("loadgen: fork");
      return 1;
    }
    if (pid == 0) {
      close(port_pipe[1]);
      close(result_pipe[0]);
      for (unsigned prev = 0; prev < s; ++prev) {
        close(children[prev].port_wr);
        close(children[prev].result_rd);
      }
      std::exit(RunShardChild(opt, s, port_pipe[0], result_pipe[1]));
    }
    close(port_pipe[0]);
    close(result_pipe[1]);
    children[s] = ChildHandle{pid, port_pipe[1], result_pipe[0]};
  }

  // Threads are safe from here on. Bring up the query node and release
  // the shards.
  const ServerSpec spec = SpecFromOptions(opt);
  const unsigned workers = ResolveWorkers(opt);
  AggregatorService svc(workers);
  const uint64_t server_id = svc.AddServer(MakeAggregatorServer(spec));
  TcpFrontEnd front(svc);
  if (!front.Start()) {
    std::fprintf(stderr, "loadgen: failed to start TcpFrontEnd: %s\n",
                 std::strerror(errno));
    return 1;
  }
  std::printf(
      "loadgen: fan-in query node on port %u; %u shard processes x %u "
      "connections, %llu %s users total\n",
      front.port(), opt.shards, opt.connections,
      static_cast<unsigned long long>(opt.users), opt.mechanism.c_str());
  for (ChildHandle& child : children) {
    const uint16_t port = front.port();
    const uint8_t raw[2] = {static_cast<uint8_t>(port & 0xFF),
                            static_cast<uint8_t>(port >> 8)};
    if (write(child.port_wr, raw, sizeof raw) != sizeof raw) {
      std::perror("loadgen: write port");
      return 1;
    }
    close(child.port_wr);
  }

  // While the shards ingest, optionally rebuild the single-process
  // reference aggregate from the identical population (--verify-fanin):
  // same global connection seeds, every chunk absorbed once per rep —
  // exactly the union the shards streamed.
  std::unique_ptr<ldp::service::AggregatorServer> reference;
  if (opt.verify_fanin) {
    reference = MakeAggregatorServer(spec);
    const uint64_t global_conns =
        static_cast<uint64_t>(opt.connections) * opt.shards;
    const uint64_t per_conn = (opt.users + global_conns - 1) / global_conns;
    for (uint64_t g = 0; g < global_conns; ++g) {
      const uint64_t begin = g * per_conn;
      const uint64_t end = std::min<uint64_t>(opt.users, begin + per_conn);
      if (begin >= end) continue;
      const auto chunks =
          EncodeShare(spec, end - begin, opt.chunk, /*seed=*/0x10AD + g);
      for (unsigned rep = 0; rep < opt.reps; ++rep) {
        for (const auto& chunk : chunks) {
          if (reference->AbsorbBatchSerialized(chunk) !=
              ldp::protocol::ParseError::kOk) {
            std::fprintf(stderr, "loadgen: reference ingest failed\n");
            return 1;
          }
        }
      }
    }
    reference->Finalize();
  }

  // Collect the shards.
  std::vector<ShardOutcome> outcomes(opt.shards);
  bool shards_ok = true;
  for (unsigned s = 0; s < opt.shards; ++s) {
    ShardOutcome& out = outcomes[s];
    FILE* in = fdopen(children[s].result_rd, "r");
    unsigned long long reports = 0, sessions = 0, retries = 0;
    if (in == nullptr ||
        std::fscanf(in,
                    "reports=%llu sessions=%llu rps=%lf mbps=%lf "
                    "retries=%llu ok=%d",
                    &reports, &sessions, &out.rps, &out.mbps, &retries,
                    &out.ok) != 6) {
      std::fprintf(stderr, "loadgen: shard %u reported nothing\n", s);
      out.ok = 0;
    }
    if (in != nullptr) fclose(in);
    out.reports = reports;
    out.sessions = sessions;
    out.retries = retries;
    int status = 0;
    waitpid(children[s].pid, &status, 0);
    const bool exited_ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!exited_ok || out.ok != 1) shards_ok = false;
    std::printf(
        "loadgen: shard %u: %.0f reports/s (%.1f MB/s), %llu reports, "
        "%llu push retries%s\n",
        s, out.rps, out.mbps, static_cast<unsigned long long>(out.reports),
        static_cast<unsigned long long>(out.retries),
        exited_ok && out.ok == 1 ? "" : "  [FAILED]");
  }
  uint64_t total_reports = 0, total_sessions = 0, total_retries = 0;
  double aggregate_rps = 0.0, aggregate_mbps = 0.0;
  std::vector<double> shard_rps;
  for (const ShardOutcome& out : outcomes) {
    total_reports += out.reports;
    total_sessions += out.sessions;
    total_retries += out.retries;
    aggregate_rps += out.rps;
    aggregate_mbps += out.mbps;
    shard_rps.push_back(out.rps);
  }
  const double shard_median_rps = Median(shard_rps);
  std::printf(
      "loadgen: fan-in aggregate %.0f reports/s (%.1f MB/s) across %u "
      "shards\n",
      aggregate_rps, aggregate_mbps, opt.shards);

  // Query phase. The finalize flag on the last shard's push already
  // finalized the hosted server — and every push was acked before its
  // shard exited — so no finalize session is needed and the first query
  // cannot race the merge.
  TcpClient query_conn;
  if (!query_conn.Connect("127.0.0.1", front.port())) {
    std::fprintf(stderr, "loadgen: query connection failed\n");
    return 1;
  }
  Rng query_rng(0x9E57);
  std::vector<double> latencies_us;
  uint64_t queries_ok = 0;
  uint64_t verify_mismatches = 0;
  for (uint64_t q = 0; q < opt.queries; ++q) {
    RangeQueryRequest request;
    request.query_id = q;
    request.server_id = server_id;
    uint64_t lo = query_rng.UniformInt(opt.domain);
    uint64_t hi = query_rng.UniformInt(opt.domain);
    if (lo > hi) std::swap(lo, hi);
    request.intervals = {{lo, hi}};
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<uint8_t> reply =
        query_conn.Call(ldp::service::SerializeRangeQueryRequest(request));
    const auto t1 = std::chrono::steady_clock::now();
    RangeQueryResponse response;
    if (ldp::service::ParseRangeQueryResponse(reply, &response) !=
            ldp::protocol::ParseError::kOk ||
        response.status != QueryStatus::kOk) {
      continue;
    }
    ++queries_ok;
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    if (reference != nullptr) {
      RangeQueryResponse expected;
      expected.query_id = q;
      const ldp::RangeEstimate est =
          reference->RangeQueryWithUncertainty(lo, hi);
      expected.estimates.push_back(ldp::service::IntervalEstimate{
          est.value, est.stddev * est.stddev});
      if (reply != ldp::service::SerializeRangeQueryResponse(expected)) {
        ++verify_mismatches;
      }
    }
  }
  query_conn.Close();

  const double q_p50 = Percentile(latencies_us, 0.50);
  const double q_p90 = Percentile(latencies_us, 0.90);
  const double q_p99 = Percentile(latencies_us, 0.99);
  std::printf(
      "loadgen: query latency p50 %.1f us, p90 %.1f us, p99 %.1f us "
      "(%llu/%llu ok)\n",
      q_p50, q_p90, q_p99, static_cast<unsigned long long>(queries_ok),
      static_cast<unsigned long long>(opt.queries));
  if (reference != nullptr) {
    std::printf(
        "loadgen: --verify-fanin: %llu/%llu responses byte-identical to "
        "the single-process reference\n",
        static_cast<unsigned long long>(opt.queries - verify_mismatches),
        static_cast<unsigned long long>(opt.queries));
  }

  bool clean =
      shards_ok && queries_ok == opt.queries && verify_mismatches == 0;
  svc.Drain();

  // Stats-plane scrape over the same wire the snapshots came in on.
  ldp::obs::StatsResponse scrape;
  bool scrape_ok = false;
  {
    TcpClient stats_conn;
    if (stats_conn.Connect("127.0.0.1", front.port())) {
      ldp::obs::StatsQuery stats_query;
      stats_query.query_id = 0x57A75;
      stats_query.flags = ldp::obs::kStatsFlagIncludeGlobal;
      const std::vector<uint8_t> reply =
          stats_conn.Call(ldp::obs::SerializeStatsQuery(stats_query));
      scrape_ok = ldp::obs::ParseStatsResponse(reply, &scrape) ==
                      ldp::protocol::ParseError::kOk &&
                  scrape.status == ldp::obs::StatsStatus::kOk &&
                  scrape.query_id == stats_query.query_id;
      stats_conn.Close();
    }
  }
  if (!scrape_ok) {
    std::fprintf(stderr, "loadgen: stats scrape failed\n");
    clean = false;
  }
  auto scrape_quantiles = [&](const std::string& name, double out_us[3]) {
    out_us[0] = out_us[1] = out_us[2] = 0.0;
    const ldp::obs::HistogramValue* h = scrape.metrics.FindHistogram(name);
    if (h == nullptr) return uint64_t{0};
    out_us[0] = static_cast<double>(h->histogram.Quantile(0.50)) / 1e3;
    out_us[1] = static_cast<double>(h->histogram.Quantile(0.95)) / 1e3;
    out_us[2] = static_cast<double>(h->histogram.Quantile(0.99)) / 1e3;
    return h->histogram.count;
  };
  double merge_absorb_us[3], merge_fan_in_us[3];
  const uint64_t merge_absorb_count =
      scrape_quantiles("merge.absorb_ns", merge_absorb_us);
  const uint64_t merge_fan_in_count =
      scrape_quantiles("merge.fan_in_ns", merge_fan_in_us);
  std::printf(
      "loadgen: merge absorb p50 %.1f us, p95 %.1f us (%llu snapshots); "
      "fan-in reduce p50 %.1f us, p95 %.1f us (%llu merges); "
      "%llu would-block retries\n",
      merge_absorb_us[0], merge_absorb_us[1],
      static_cast<unsigned long long>(merge_absorb_count),
      merge_fan_in_us[0], merge_fan_in_us[1],
      static_cast<unsigned long long>(merge_fan_in_count),
      static_cast<unsigned long long>(total_retries));

  // Fan-in reconciliation: the children's retry counts must reconcile
  // exactly with the merge plane's counters, every shard must have
  // landed, and exactly one fan-in merge + finalize must have run.
  const ldp::service::ServiceStats sstats = svc.stats();
  const ldp::net::TcpFrontEndStats fstats = front.stats();
  auto check = [&](bool ok_cond, const char* what) {
    if (!ok_cond) {
      std::fprintf(stderr, "loadgen: fan-in invariant FAILED: %s\n", what);
      clean = false;
    }
  };
  check(sstats.merge_requests == opt.shards + total_retries,
        "merge_requests == shards + retries");
  check(sstats.merge_would_block == total_retries,
        "merge_would_block == sum of shard push retries");
  check(sstats.merge_rejects == 0, "no merge rejects");
  check(sstats.merges_completed == 1, "exactly one fan-in merge completed");
  check(sstats.malformed_messages == 0, "no malformed messages");
  check(fstats.protocol_errors == 0, "no front-end protocol errors");
  if (scrape_ok) {
    check(merge_absorb_count == opt.shards,
          "merge.absorb_ns count == shards");
    check(merge_fan_in_count == 1, "merge.fan_in_ns count == 1");
    check(scrape.metrics.CounterOr("service.finalizes") == 1,
          "exactly one finalize");
    // Every report a shard accepted or rejected is accounted for in the
    // merged aggregate — nothing was lost crossing process boundaries.
    const std::string server_prefix = "server" + std::to_string(server_id);
    const uint64_t accepted =
        scrape.metrics.CounterOr(server_prefix + ".accepted");
    const uint64_t rejected =
        scrape.metrics.CounterOr(server_prefix + ".rejected");
    check(accepted + rejected == total_reports,
          "merged accepted + rejected == reports sent to shards");
  }

  if (!opt.json.empty()) {
    std::ofstream out(opt.json);
    out << "{\n"
        << "  \"bench\": \"micro_net_fan_in\",\n"
        << "  \"config\": {\"mechanism\": \"" << opt.mechanism
        << "\", \"domain\": " << opt.domain << ", \"eps\": " << opt.eps
        << ", \"users\": " << opt.users << ", \"chunk\": " << opt.chunk
        << ", \"shards\": " << opt.shards
        << ", \"connections_per_shard\": " << opt.connections
        << ", \"workers\": " << workers << ", \"reps\": " << opt.reps
        << ", \"verify_fanin\": " << (opt.verify_fanin ? "true" : "false")
        << "},\n"
        << "  \"ingest\": {\"aggregate_reports_per_sec\": " << aggregate_rps
        << ", \"aggregate_mb_per_sec\": " << aggregate_mbps
        << ", \"shard_median_reports_per_sec\": " << shard_median_rps
        << ", \"aggregate_vs_shard_median\": "
        << (shard_median_rps > 0.0 ? aggregate_rps / shard_median_rps : 0.0)
        << ", \"shard_reports_per_sec\": [";
    for (unsigned s = 0; s < opt.shards; ++s)
      out << (s ? ", " : "") << outcomes[s].rps;
    out << "], \"host_cpus\": " << std::thread::hardware_concurrency()
        << ", \"total_reports\": " << total_reports
        << ", \"total_sessions\": " << total_sessions << "},\n"
        << "  \"query\": {\"count_ok\": " << queries_ok
        << ", \"p50_us\": " << q_p50 << ", \"p90_us\": " << q_p90
        << ", \"p99_us\": " << q_p99
        << ", \"verify_mismatches\": " << verify_mismatches << "},\n"
        << "  \"merge\": {\"scrape_ok\": " << (scrape_ok ? "true" : "false")
        << ", \"absorb\": {\"count\": " << merge_absorb_count
        << ", \"p50_us\": " << merge_absorb_us[0]
        << ", \"p95_us\": " << merge_absorb_us[1]
        << ", \"p99_us\": " << merge_absorb_us[2] << "}"
        << ", \"fan_in\": {\"count\": " << merge_fan_in_count
        << ", \"p50_us\": " << merge_fan_in_us[0]
        << ", \"p95_us\": " << merge_fan_in_us[1]
        << ", \"p99_us\": " << merge_fan_in_us[2] << "}"
        << ", \"would_block_retries\": " << total_retries << "},\n"
        << "  \"service_stats\": {\"merge_requests\": "
        << sstats.merge_requests
        << ", \"merge_rejects\": " << sstats.merge_rejects
        << ", \"merge_would_block\": " << sstats.merge_would_block
        << ", \"merges_completed\": " << sstats.merges_completed << "},\n"
        << "  \"clean\": " << (clean ? "true" : "false") << "\n"
        << "}\n";
    std::printf("loadgen: wrote %s\n", opt.json.c_str());
  }

  front.Stop();
  if (opt.assert_clean && !clean) {
    std::fprintf(stderr, "loadgen: --assert-clean FAILED\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);
  // Fan-in mode must dispatch before anything spawns a thread: it forks.
  if (opt.shards > 0) return RunFanIn(opt);
  return RunSingle(opt);
}
