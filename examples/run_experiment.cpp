// Command-line experiment driver: run any (method, oracle, domain, eps,
// distribution, workload) cell of the paper's evaluation grid from flags —
// the adoptable entry point for exploring the library without writing C++.
//
//   ./build/examples/example_run_experiment
//       --method=hh --fanout=8 --oracle=oue --consistency=1
//       --domain=4096 --eps=0.8 --n=500000 --dist=cauchy --p=0.4
//       --workload=random --queries=2000 --trials=5 --seed=42
// (one line; wrapped here for readability)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/method.h"
#include "core/variance.h"
#include "data/distributions.h"
#include "data/workload.h"
#include "eval/experiment.h"
#include "frequency/frequency_oracle.h"

namespace {

using namespace ldp;  // NOLINT(build/namespaces)

struct Flags {
  std::string method = "haar";    // flat | hh | haar | ahead
  uint64_t fanout = 4;
  std::string oracle = "oue";     // grr | oue | oue-exact | olh | hrr | sue
  bool consistency = true;
  uint64_t domain = 1024;
  double eps = 1.1;
  uint64_t n = 1 << 18;
  std::string dist = "cauchy";    // cauchy | zipf | uniform | bimodal
  double p = 0.4;                 // Cauchy center fraction
  std::string workload = "random";  // all | random | prefixes | length
  uint64_t queries = 2000;        // for random
  uint64_t length = 64;           // for length
  uint64_t trials = 5;
  uint64_t seed = 42;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (ParseFlag(arg, "--method", &value)) flags.method = value;
    else if (ParseFlag(arg, "--fanout", &value)) flags.fanout = std::stoull(value);
    else if (ParseFlag(arg, "--oracle", &value)) flags.oracle = value;
    else if (ParseFlag(arg, "--consistency", &value)) flags.consistency = value != "0";
    else if (ParseFlag(arg, "--domain", &value)) flags.domain = std::stoull(value);
    else if (ParseFlag(arg, "--eps", &value)) flags.eps = std::stod(value);
    else if (ParseFlag(arg, "--n", &value)) flags.n = std::stoull(value);
    else if (ParseFlag(arg, "--dist", &value)) flags.dist = value;
    else if (ParseFlag(arg, "--p", &value)) flags.p = std::stod(value);
    else if (ParseFlag(arg, "--workload", &value)) flags.workload = value;
    else if (ParseFlag(arg, "--queries", &value)) flags.queries = std::stoull(value);
    else if (ParseFlag(arg, "--length", &value)) flags.length = std::stoull(value);
    else if (ParseFlag(arg, "--trials", &value)) flags.trials = std::stoull(value);
    else if (ParseFlag(arg, "--seed", &value)) flags.seed = std::stoull(value);
    else {
      std::fprintf(stderr,
                   "unknown flag '%s'\nflags: --method=flat|hh|haar|ahead "
                   "--fanout=B --oracle=grr|oue|oue-exact|olh|hrr|sue "
                   "--consistency=0|1 --domain=D --eps=E --n=N "
                   "--dist=cauchy|zipf|uniform|bimodal --p=P "
                   "--workload=all|random|prefixes|length --queries=Q "
                   "--length=R --trials=T --seed=S\n",
                   arg);
      std::exit(2);
    }
  }
  return flags;
}

OracleKind OracleFromName(const std::string& name) {
  if (name == "grr") return OracleKind::kGrr;
  if (name == "oue") return OracleKind::kOueSimulated;
  if (name == "oue-exact") return OracleKind::kOue;
  if (name == "olh") return OracleKind::kOlh;
  if (name == "hrr") return OracleKind::kHrr;
  if (name == "sue") return OracleKind::kSueSimulated;
  std::fprintf(stderr, "unknown oracle '%s'\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  MethodSpec method;
  if (flags.method == "flat") {
    method = MethodSpec::Flat(OracleFromName(flags.oracle));
  } else if (flags.method == "hh") {
    method = MethodSpec::Hh(flags.fanout, OracleFromName(flags.oracle),
                            flags.consistency);
  } else if (flags.method == "haar") {
    method = MethodSpec::Haar();
  } else if (flags.method == "ahead") {
    AheadConfig ahead;
    ahead.fanout = flags.fanout;
    ahead.oracle = OracleFromName(flags.oracle);
    ahead.consistency = flags.consistency;
    method = MethodSpec::AheadWith(ahead);
  } else {
    std::fprintf(stderr, "unknown method '%s'\n", flags.method.c_str());
    return 2;
  }

  std::unique_ptr<ValueDistribution> dist;
  if (flags.dist == "cauchy") {
    dist = std::make_unique<CauchyDistribution>(flags.domain, flags.p);
  } else if (flags.dist == "zipf") {
    dist = std::make_unique<ZipfDistribution>(flags.domain);
  } else if (flags.dist == "uniform") {
    dist = std::make_unique<UniformDistribution>(flags.domain);
  } else if (flags.dist == "bimodal") {
    dist = std::make_unique<BimodalGaussianDistribution>(flags.domain);
  } else {
    std::fprintf(stderr, "unknown distribution '%s'\n", flags.dist.c_str());
    return 2;
  }

  QueryWorkload workload = QueryWorkload::Random(flags.queries, flags.seed);
  if (flags.workload == "all") {
    workload = QueryWorkload::AllRanges();
  } else if (flags.workload == "prefixes") {
    workload = QueryWorkload::Prefixes();
  } else if (flags.workload == "length") {
    workload = QueryWorkload::FixedLength(flags.length);
  } else if (flags.workload != "random") {
    std::fprintf(stderr, "unknown workload '%s'\n", flags.workload.c_str());
    return 2;
  }

  ExperimentConfig config;
  config.domain = flags.domain;
  config.population = flags.n;
  config.epsilon = flags.eps;
  config.method = method;
  config.trials = flags.trials;
  config.seed = flags.seed;

  std::printf("method=%s D=%llu eps=%.3f N=%llu dist=%s workload=%s "
              "trials=%llu seed=%llu\n",
              method.Name().c_str(), (unsigned long long)flags.domain,
              flags.eps, (unsigned long long)flags.n, dist->Name().c_str(),
              workload.Name().c_str(), (unsigned long long)flags.trials,
              (unsigned long long)flags.seed);

  ExperimentResult result = RunRangeExperiment(config, *dist, workload);
  std::printf("queries/trial     : %llu\n",
              (unsigned long long)workload.CountQueries(flags.domain));
  std::printf("MSE               : %.6e (+/- %.2e across trials)\n",
              result.mean_mse(), result.stddev_mse());
  std::printf("MSE x1000         : %.4f  (the paper's table scaling)\n",
              result.mean_mse() * 1000.0);
  std::printf("MAE               : %.6e\n", result.per_trial_mae.mean());
  std::printf("max |error|       : %.6e\n", result.pooled.max_abs_error());
  std::printf("V_F reference     : %.6e (shared oracle variance bound)\n",
              OracleVariance(flags.eps, static_cast<double>(flags.n)));
  return 0;
}
