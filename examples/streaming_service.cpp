// The unified aggregator service, end to end over serialized bytes:
// two mechanism instances (HaarHRR and TreeHRR-with-CI) hosted by one
// AggregatorService, populations streamed in as chunked sessions, and
// range queries answered as kRangeQueryResponse messages — the complete
// client -> stream -> service -> query-response flow a deployment runs.
//
// Everything that crosses the "network" here is a byte vector; nothing
// touches the servers except through HandleMessage.

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <vector>

#include "ldp.h"
#include "protocol/haar_protocol.h"
#include "protocol/tree_protocol.h"
#include "service/aggregator_service.h"
#include "service/server_factory.h"
#include "service/stream_wire.h"

using namespace ldp;  // NOLINT(build/namespaces)

namespace {

constexpr uint64_t kDomain = 256;
constexpr double kEps = 1.2;
constexpr uint64_t kUsers = 20000;
constexpr int kChunks = 4;

// A skewed synthetic population: most mass in the low eighth.
std::vector<uint64_t> DrawPopulation(Rng& rng) {
  std::vector<uint64_t> values;
  values.reserve(kUsers);
  for (uint64_t i = 0; i < kUsers; ++i) {
    values.push_back(rng.Bernoulli(0.7) ? rng.UniformInt(kDomain / 8)
                                        : rng.UniformInt(kDomain));
  }
  return values;
}

// Encodes `values` into kChunks framed batch messages for `kind`.
template <typename Client>
std::vector<std::vector<uint8_t>> EncodeChunks(const Client& client,
                                               std::span<const uint64_t> values,
                                               Rng& rng) {
  std::vector<std::vector<uint8_t>> chunks;
  uint64_t per_chunk = (values.size() + kChunks - 1) / kChunks;
  for (int c = 0; c < kChunks; ++c) {
    uint64_t begin = c * per_chunk;
    uint64_t end = std::min<uint64_t>(values.size(), begin + per_chunk);
    if (begin >= end) break;
    chunks.push_back(
        client.EncodeUsersSerialized(values.subspan(begin, end - begin), rng));
  }
  return chunks;
}

void StreamIn(service::AggregatorService& svc, uint64_t session,
              uint64_t server_id,
              std::vector<std::vector<uint8_t>> chunks) {
  svc.HandleMessage(service::SerializeStreamBegin({session, server_id}));
  for (size_t c = 0; c < chunks.size(); ++c) {
    // Moving the message in lets the service keep the buffer instead of
    // copying the nested batch onto its ingestion queue.
    svc.HandleMessage(
        service::SerializeStreamChunk(session, c, chunks[c]));
  }
  svc.HandleMessage(service::SerializeStreamEnd(
      {session, chunks.size(), service::kStreamFlagFinalize}));
}

void QueryAndPrint(service::AggregatorService& svc, uint64_t server_id,
                   const char* label) {
  service::RangeQueryRequest request;
  request.query_id = server_id + 1;
  request.server_id = server_id;
  request.intervals = {{0, kDomain / 8 - 1},   // the heavy head
                       {kDomain / 8, kDomain - 1},
                       {0, kDomain - 1}};
  std::vector<uint8_t> reply =
      svc.HandleMessage(service::SerializeRangeQueryRequest(request));
  service::RangeQueryResponse response;
  if (service::ParseRangeQueryResponse(reply, &response) !=
          protocol::ParseError::kOk ||
      response.status != service::QueryStatus::kOk) {
    std::printf("%s: query failed (%s)\n", label,
                service::QueryStatusName(response.status).c_str());
    return;
  }
  static const char* kNames[] = {"head [0, D/8)", "tail [D/8, D)",
                                 "whole domain"};
  std::printf("%s (%" PRIu64 " reports accepted):\n", label,
              svc.server(server_id).accepted_reports());
  for (size_t i = 0; i < response.estimates.size(); ++i) {
    std::printf("  %-14s estimate %+.4f  (stddev %.4f)\n", kNames[i],
                response.estimates[i].estimate,
                std::sqrt(response.estimates[i].variance));
  }
}

}  // namespace

int main() {
  Rng rng(2024);
  std::vector<uint64_t> values = DrawPopulation(rng);

  // One service, two hosted mechanism instances, two ingestion workers.
  service::AggregatorService svc(/*worker_threads=*/2);
  service::ServerSpec haar;
  haar.kind = service::ServerKind::kHaar;
  haar.domain = kDomain;
  haar.eps = kEps;
  uint64_t haar_id = svc.AddServer(service::MakeAggregatorServer(haar));
  service::ServerSpec tree = haar;
  tree.kind = service::ServerKind::kTree;
  tree.fanout = 4;
  uint64_t tree_id = svc.AddServer(service::MakeAggregatorServer(tree));

  // Each mechanism gets the same population, encoded by its own client.
  protocol::HaarHrrClient haar_client(kDomain, kEps);
  protocol::TreeHrrClient tree_client(kDomain, 4, kEps);
  StreamIn(svc, /*session=*/1, haar_id,
           EncodeChunks(haar_client, values, rng));
  StreamIn(svc, /*session=*/2, tree_id,
           EncodeChunks(tree_client, values, rng));
  svc.Drain();  // both sessions carried the finalize flag

  double true_head = 0;
  for (uint64_t v : values) true_head += v < kDomain / 8 ? 1.0 : 0.0;
  std::printf("true head mass: %.4f\n\n",
              true_head / static_cast<double>(kUsers));
  QueryAndPrint(svc, haar_id, "HaarHRR");
  QueryAndPrint(svc, tree_id, "TreeHRR+CI");

  service::ServiceStats stats = svc.stats();
  std::printf("\nservice: %" PRIu64 " messages, %" PRIu64
              " chunks absorbed, %" PRIu64 " queries answered\n",
              stats.messages, stats.chunks_absorbed,
              stats.queries_answered);
  return 0;
}
