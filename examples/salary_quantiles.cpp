// Workforce analytics scenario: estimate the salary distribution of a
// large workforce — deciles, median, interquartile range, and the share
// inside arbitrary salary bands — under local differential privacy, so no
// employee ever reveals their actual salary. (Financial status is one of
// the sensitive attributes the paper's abstract calls out.)
//
// Salaries are bucketed to $500 steps over [$0, $512k) -> domain 1024.
// The population mixes two occupational clusters (bimodal), which makes
// naive parametric summaries misleading — range queries recover the true
// shape. We also sweep the privacy budget to show the accuracy/privacy
// trade-off on the median.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/method.h"
#include "core/quantile.h"
#include "data/dataset.h"
#include "data/distributions.h"
#include "eval/experiment.h"

namespace {

using namespace ldp;  // NOLINT(build/namespaces)

double BucketToSalary(uint64_t bucket) { return bucket * 500.0; }

}  // namespace

int main() {
  const uint64_t kDomain = 1024;
  const uint64_t kEmployees = 300000;
  const double kEpsilon = 1.1;

  Rng rng(11);
  BimodalGaussianDistribution salaries(kDomain, /*center1_fraction=*/0.12,
                                       /*center2_fraction=*/0.35,
                                       /*scale_fraction=*/0.05);
  Dataset data = Dataset::FromDistribution(salaries, kEmployees, rng);
  std::vector<double> cdf = data.Cdf();

  std::printf("Private salary survey: %llu employees, eps = %.1f\n",
              (unsigned long long)kEmployees, kEpsilon);

  // --- Deciles with the paper's recommended methods ---------------------
  Rng protocol_rng(12);
  std::unique_ptr<RangeMechanism> mech = MakeMechanism(
      MethodSpec::Hh(4, OracleKind::kOueSimulated, true), kDomain, kEpsilon);
  EncodePopulation(data, *mech, protocol_rng);
  mech->Finalize(protocol_rng);

  std::printf("\nDecile   estimate($)    truth($)   quantile-error\n");
  for (int d = 1; d <= 9; ++d) {
    double phi = d / 10.0;
    QuantileEvaluation eval = EvaluateQuantile(*mech, cdf, phi);
    std::printf("  %d0%%    %9.0f    %9.0f        %.4f\n", d,
                BucketToSalary(eval.estimated_item),
                BucketToSalary(eval.true_item), eval.quantile_error);
  }

  // --- Salary-band shares (arbitrary range queries) ---------------------
  std::printf("\nSalary band            estimate     truth\n");
  struct Band {
    const char* label;
    uint64_t lo, hi;
  } bands[] = {{"    < $40k ", 0, 79},
               {"$40k-$100k ", 80, 199},
               {"$100k-$200k", 200, 399},
               {"   >= $200k", 400, 1023}};
  for (const Band& band : bands) {
    std::printf("%s        %8.4f  %8.4f\n", band.label,
                mech->RangeQuery(band.lo, band.hi),
                data.TrueRange(band.lo, band.hi));
  }

  // --- Privacy/accuracy trade-off on the median -------------------------
  // The true median falls BETWEEN the two salary clusters, where the data
  // is sparse: dollar-value errors look large there, but the returned item
  // is distributionally within a fraction of a percent of the median —
  // the same effect the paper documents in Figure 9.
  std::printf("\nMedian vs privacy budget (truth: $%.0f)\n",
              BucketToSalary(TrueQuantile(cdf, 0.5)));
  std::printf("  eps    HHc4 median (quant-err)   HaarHRR median "
              "(quant-err)\n");
  for (double eps : {0.2, 0.5, 1.1, 2.0}) {
    std::printf("  %.1f", eps);
    for (const MethodSpec& spec :
         {MethodSpec::Hh(4, OracleKind::kOueSimulated, true),
          MethodSpec::Haar()}) {
      Rng eps_rng(13);
      std::unique_ptr<RangeMechanism> m =
          MakeMechanism(spec, kDomain, eps);
      EncodePopulation(data, *m, eps_rng);
      m->Finalize(eps_rng);
      QuantileEvaluation eval = EvaluateQuantile(*m, cdf, 0.5);
      std::printf("    $%-8.0f (%.4f)    ",
                  BucketToSalary(eval.estimated_item), eval.quantile_error);
    }
    std::printf("\n");
  }
  std::printf(
      "\nThe median lies in the sparse gap between the two clusters, so "
      "dollar errors overstate the miss: the quantile error improves "
      "monotonically with eps (to ~0.3%% at eps = 2), and the bimodal "
      "shape is preserved in the band shares.\n");
  return 0;
}
