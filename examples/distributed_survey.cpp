// Wire-protocol walkthrough: a privacy-preserving "commute time" survey
// run the way a real deployment would — clients and server share no state
// beyond public parameters, and every user contribution crosses the
// "network" as a serialized eps-LDP report framed under the versioned
// v2 wire envelope (src/protocol; 18 bytes for HaarHRR).
//
// Also demonstrates the server's robustness duties: malformed and
// out-of-range reports from buggy or malicious clients are counted and
// rejected, never crash the aggregator, and barely dent accuracy.

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "data/dataset.h"
#include "protocol/haar_protocol.h"

namespace {

using namespace ldp;  // NOLINT(build/namespaces)

// Commute minutes in [0, 256), mixture of short urban and long suburban
// commutes.
uint64_t SampleCommuteMinutes(Rng& rng) {
  double minutes = rng.Bernoulli(0.7) ? 22.0 + 8.0 * rng.Gaussian()
                                      : 55.0 + 15.0 * rng.Gaussian();
  if (minutes < 0) minutes = 0;
  if (minutes > 255) minutes = 255;
  return static_cast<uint64_t>(minutes);
}

}  // namespace

int main() {
  const uint64_t kDomain = 256;  // minutes, 1-minute buckets
  const double kEpsilon = 1.1;
  const uint64_t kRespondents = 250000;

  Rng rng(2025);
  protocol::HaarHrrClient client(kDomain, kEpsilon);   // ships on devices
  protocol::HaarHrrServer server(kDomain, kEpsilon);   // runs at the org

  std::vector<uint64_t> counts(kDomain, 0);
  uint64_t bytes_on_wire = 0;
  for (uint64_t i = 0; i < kRespondents; ++i) {
    uint64_t minutes = SampleCommuteMinutes(rng);
    ++counts[minutes];
    // Device side: one serialized report; the raw value never leaves.
    std::vector<uint8_t> report = client.EncodeSerialized(minutes, rng);
    bytes_on_wire += report.size();
    server.AbsorbSerialized(report);
    // A 0.5% minority of senders is buggy/malicious.
    if (i % 200 == 0) {
      std::vector<uint8_t> junk(18);
      for (uint8_t& b : junk) {
        b = static_cast<uint8_t>(rng.UniformInt(256));
      }
      server.AbsorbSerialized(junk);
    }
  }
  server.Finalize();
  Dataset truth = Dataset::FromCounts(counts);

  std::printf("Distributed commute survey over the wire protocol\n");
  std::printf("  respondents        : %llu\n",
              (unsigned long long)kRespondents);
  std::printf("  bytes per report   : %.1f (avg)\n",
              static_cast<double>(bytes_on_wire) / kRespondents);
  std::printf("  accepted / rejected: %llu / %llu\n",
              (unsigned long long)server.accepted_reports(),
              (unsigned long long)server.rejected_reports());

  std::printf("\n%-30s %10s %10s\n", "question", "estimate", "truth");
  struct Q {
    const char* label;
    uint64_t lo, hi;
  } questions[] = {{"commute under 15 min", 0, 14},
                   {"15-30 min", 15, 30},
                   {"30-45 min", 31, 45},
                   {"45-75 min (long)", 46, 75},
                   {"over 75 min", 76, 255}};
  for (const Q& q : questions) {
    std::printf("%-30s %10.4f %10.4f\n", q.label,
                server.RangeQuery(q.lo, q.hi), truth.TrueRange(q.lo, q.hi));
  }
  std::printf("\nmedian commute: %llu min (true %llu min)\n",
              (unsigned long long)server.QuantileQuery(0.5),
              (unsigned long long)[&] {
                std::vector<double> cdf = truth.Cdf();
                uint64_t j = 0;
                while (j + 1 < kDomain && cdf[j] < 0.5) ++j;
                return j;
              }());
  std::printf(
      "\nEverything the server ever saw per user: %.0f bytes of envelope "
      "framing plus randomized coefficient data, eps-LDP by "
      "construction.\n",
      static_cast<double>(bytes_on_wire) / kRespondents);
  return 0;
}
