// Telemetry scenario: a vendor wants request-latency percentiles (p50 /
// p90 / p95 / p99) from millions of clients WITHOUT collecting raw
// latencies — the Apple/Microsoft-style deployment the paper's
// introduction motivates.
//
// Latencies (ms, bucketed into [0, 4096)) follow a right-skewed log-normal
// shape with a slow-path second mode. We compare the flat baseline against
// the paper's hierarchical (HHc4) and wavelet (HaarHRR) mechanisms on
// tail-percentile accuracy at the same privacy budget.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/method.h"
#include "core/quantile.h"
#include "data/dataset.h"
#include "eval/experiment.h"

namespace {

using namespace ldp;  // NOLINT(build/namespaces)

// Log-normal-ish latency with a 5% slow-path mode near 2 s.
uint64_t SampleLatencyMs(Rng& rng, uint64_t domain) {
  double ms = 0.0;
  if (rng.Bernoulli(0.05)) {
    ms = 2000.0 + 300.0 * rng.Gaussian();  // slow path (cache miss / retry)
  } else {
    ms = std::exp(4.0 + 0.8 * rng.Gaussian());  // ~55 ms median fast path
  }
  if (ms < 0) ms = 0;
  uint64_t bucket = static_cast<uint64_t>(ms);
  return bucket >= domain ? domain - 1 : bucket;
}

}  // namespace

int main() {
  const uint64_t kDomain = 4096;  // 1 ms buckets up to ~4.1 s
  const uint64_t kClients = 500000;
  const double kEpsilon = 1.1;
  const std::vector<double> kPercentiles = {0.5, 0.9, 0.95, 0.99};

  Rng rng(7);
  std::vector<uint64_t> counts(kDomain, 0);
  for (uint64_t i = 0; i < kClients; ++i) {
    ++counts[SampleLatencyMs(rng, kDomain)];
  }
  Dataset data = Dataset::FromCounts(counts);
  std::vector<double> cdf = data.Cdf();

  std::printf("Private latency percentiles: %llu clients, eps = %.1f\n\n",
              (unsigned long long)kClients, kEpsilon);
  std::printf("%-12s", "method");
  for (double p : kPercentiles) {
    std::printf("   p%-4.0f(ms)", p * 100);
  }
  std::printf("   report-bits\n");

  std::printf("%-12s", "TRUE");
  for (double p : kPercentiles) {
    std::printf("   %8llu",
                (unsigned long long)TrueQuantile(cdf, p));
  }
  std::printf("   %11s\n", "-");

  for (const MethodSpec& spec :
       {MethodSpec::Flat(OracleKind::kOueSimulated),
        MethodSpec::Hh(4, OracleKind::kOueSimulated, true),
        MethodSpec::Haar()}) {
    Rng protocol_rng(99);
    std::unique_ptr<RangeMechanism> mech =
        MakeMechanism(spec, kDomain, kEpsilon);
    EncodePopulation(data, *mech, protocol_rng);
    mech->Finalize(protocol_rng);
    std::printf("%-12s", spec.Name().c_str());
    for (double p : kPercentiles) {
      std::printf("   %8llu",
                  (unsigned long long)mech->QuantileQuery(p));
    }
    std::printf("   %11.0f\n", mech->ReportBits());
  }

  std::printf(
      "\nExpected: HHc4 / HaarHRR percentiles land within a few ms of "
      "truth even at p99; the flat method drifts on the sparse tail. "
      "HaarHRR needs only ~tens of bits per client vs %llu for flat "
      "OUE.\n",
      (unsigned long long)kDomain);
  return 0;
}
