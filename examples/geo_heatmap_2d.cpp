// Spatial analytics scenario (paper Section 6, multidimensional
// extension): a mobility provider wants ride-demand density over a city
// grid without tracking anyone's location. Each rider's pickup cell is a
// point in a 64 x 64 grid; the provider answers arbitrary rectangle
// queries ("how much demand downtown vs the airport corridor?") under
// eps-LDP using the 2-D hierarchical decomposition.
//
// This is the full deployment shape, not an in-process simulation: riders
// randomize locally (MultiDimClient, sharded across cores and
// bit-identical for any thread count), reports travel as framed
// kMultiDimReportBatch chunks through a streaming ingestion session into
// the aggregator service, and every rectangle query goes over the wire as
// a kMultiDimQuery message answered with an (estimate, variance) pair.

#include <algorithm>
#include <cstdio>
#include <span>
#include <utility>
#include <vector>

#include "common/random.h"
#include "protocol/multidim_protocol.h"
#include "service/aggregator_service.h"
#include "service/server_factory.h"
#include "service/stream_wire.h"

namespace {

using namespace ldp;  // NOLINT(build/namespaces)

struct Hotspot {
  double cx, cy, scale, weight;
};

}  // namespace

int main() {
  const uint64_t kGrid = 64;       // 64 x 64 city grid
  const uint64_t kRiders = 400000;
  const double kEpsilon = 1.1;

  // Demand concentrates downtown (40, 24) with a secondary airport
  // hotspot (8, 52) and a uniform background.
  const std::vector<Hotspot> hotspots = {
      {40, 24, 4.0, 0.55}, {8, 52, 3.0, 0.25}};

  Rng rng(21);
  std::vector<uint64_t> pickups;  // row-major (x, y) per rider
  pickups.reserve(2 * kRiders);
  std::vector<std::vector<uint64_t>> truth(kGrid,
                                           std::vector<uint64_t>(kGrid, 0));
  for (uint64_t i = 0; i < kRiders; ++i) {
    double u = rng.UniformDouble();
    uint64_t x = 0;
    uint64_t y = 0;
    double acc = 0.0;
    bool placed = false;
    for (const Hotspot& h : hotspots) {
      acc += h.weight;
      if (u < acc) {
        for (;;) {
          double sx = h.cx + h.scale * rng.Gaussian();
          double sy = h.cy + h.scale * rng.Gaussian();
          if (sx >= 0 && sx < kGrid && sy >= 0 && sy < kGrid) {
            x = static_cast<uint64_t>(sx);
            y = static_cast<uint64_t>(sy);
            break;
          }
        }
        placed = true;
        break;
      }
    }
    if (!placed) {  // background
      x = rng.UniformInt(kGrid);
      y = rng.UniformInt(kGrid);
    }
    pickups.push_back(x);
    pickups.push_back(y);
    ++truth[x][y];
  }

  // Aggregator side: the service hosts a 2-D grid server.
  service::AggregatorService service(/*worker_threads=*/2);
  service::ServerSpec spec;
  spec.kind = service::ServerKind::kGrid;
  spec.domain = kGrid;
  spec.eps = kEpsilon;
  spec.fanout = 2;
  spec.dimensions = 2;
  const uint64_t server_id =
      service.AddServer(service::MakeAggregatorServer(spec));

  // Client side: every rider's point is eps-LDP randomized before any
  // byte leaves the device; the simulation driver encodes the whole
  // population sharded across cores.
  protocol::MultiDimClient client(kGrid, /*dimensions=*/2, kEpsilon,
                                  /*fanout=*/2);
  std::vector<protocol::MultiDimReport> reports =
      client.EncodeUsersSharded(pickups, /*seed=*/17);

  // Stream the reports in as a chunked ingestion session; the end message
  // finalizes the server once every chunk has been absorbed.
  const uint64_t kSession = 7001;
  service.HandleMessage(
      service::SerializeStreamBegin({kSession, server_id}));
  const size_t kReportsPerChunk = 100000;
  uint64_t sequence = 0;
  for (size_t begin = 0; begin < reports.size(); begin += kReportsPerChunk) {
    size_t count = std::min(kReportsPerChunk, reports.size() - begin);
    std::vector<uint8_t> batch = protocol::SerializeMultiDimReportBatch(
        2, std::span<const protocol::MultiDimReport>(reports)
               .subspan(begin, count));
    service.HandleMessage(
        service::SerializeStreamChunk(kSession, sequence++, batch));
  }
  service.HandleMessage(service::SerializeStreamEnd(
      {kSession, sequence, service::kStreamFlagFinalize}));
  service.Drain();
  if (!service.server_finalized(server_id)) {
    std::fprintf(stderr, "ingestion session failed to finalize\n");
    return 1;
  }

  // Query side: each rectangle goes over the wire as a kMultiDimQuery.
  uint64_t next_query_id = 1;
  auto wire_rect = [&](uint64_t ax, uint64_t bx, uint64_t ay, uint64_t by,
                       service::IntervalEstimate* out) {
    service::MultiDimQueryRequest request;
    request.query_id = next_query_id++;
    request.server_id = server_id;
    request.dimensions = 2;
    service::QueryBox box;
    box.axes = {{ax, bx}, {ay, by}};
    request.boxes.push_back(std::move(box));
    std::vector<uint8_t> answer =
        service.HandleMessage(SerializeMultiDimQueryRequest(request));
    service::MultiDimQueryResponse response;
    if (ParseMultiDimQueryResponse(answer, &response) !=
            protocol::ParseError::kOk ||
        response.status != service::QueryStatus::kOk) {
      return false;
    }
    *out = response.estimates[0];
    return true;
  };

  auto true_rect = [&](uint64_t ax, uint64_t bx, uint64_t ay, uint64_t by) {
    uint64_t count = 0;
    for (uint64_t x = ax; x <= bx; ++x) {
      for (uint64_t y = ay; y <= by; ++y) {
        count += truth[x][y];
      }
    }
    return static_cast<double>(count) / kRiders;
  };

  const auto& server = service.server(server_id);
  std::printf("Private ride-demand heatmap: %llu riders on a %llux%llu "
              "grid, eps = %.1f (%s over the wire)\n\n",
              (unsigned long long)kRiders, (unsigned long long)kGrid,
              (unsigned long long)kGrid, kEpsilon, server.Name().c_str());
  std::printf("%-28s %10s %10s\n", "rectangle query", "estimate", "truth");
  struct Rect {
    const char* label;
    uint64_t ax, bx, ay, by;
  } rects[] = {{"downtown core (8x8)", 36, 43, 20, 27},
               {"downtown wide (16x16)", 32, 47, 16, 31},
               {"airport corridor", 4, 15, 44, 59},
               {"river district (empty)", 56, 63, 0, 15},
               {"west half", 0, 31, 0, 63},
               {"whole city", 0, 63, 0, 63}};
  for (const Rect& r : rects) {
    service::IntervalEstimate estimate;
    if (!wire_rect(r.ax, r.bx, r.ay, r.by, &estimate)) {
      std::fprintf(stderr, "wire query failed for %s\n", r.label);
      return 1;
    }
    std::printf("%-28s %10.4f %10.4f\n", r.label, estimate.estimate,
                true_rect(r.ax, r.bx, r.ay, r.by));
  }

  std::printf(
      "\nThe provider can rank neighborhoods by demand and spot the two "
      "hotspots while every individual pickup stays private — and no "
      "unrandomized coordinate ever crossed the wire.\n");
  return 0;
}
