// Spatial analytics scenario (paper Section 6, multidimensional
// extension): a mobility provider wants ride-demand density over a city
// grid without tracking anyone's location. Each rider's pickup cell is a
// point in a 64 x 64 grid; the provider answers arbitrary rectangle
// queries ("how much demand downtown vs the airport corridor?") under
// eps-LDP using the 2-D hierarchical decomposition.

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/multidim.h"
#include "data/dataset.h"

namespace {

using namespace ldp;  // NOLINT(build/namespaces)

struct Hotspot {
  double cx, cy, scale, weight;
};

}  // namespace

int main() {
  const uint64_t kGrid = 64;       // 64 x 64 city grid
  const uint64_t kRiders = 400000;
  const double kEpsilon = 1.1;

  // Demand concentrates downtown (40, 24) with a secondary airport
  // hotspot (8, 52) and a uniform background.
  const std::vector<Hotspot> hotspots = {
      {40, 24, 4.0, 0.55}, {8, 52, 3.0, 0.25}};

  Rng rng(21);
  std::vector<std::pair<uint64_t, uint64_t>> pickups;
  std::vector<std::vector<uint64_t>> truth(kGrid,
                                           std::vector<uint64_t>(kGrid, 0));
  for (uint64_t i = 0; i < kRiders; ++i) {
    double u = rng.UniformDouble();
    uint64_t x = 0;
    uint64_t y = 0;
    double acc = 0.0;
    bool placed = false;
    for (const Hotspot& h : hotspots) {
      acc += h.weight;
      if (u < acc) {
        for (;;) {
          double sx = h.cx + h.scale * rng.Gaussian();
          double sy = h.cy + h.scale * rng.Gaussian();
          if (sx >= 0 && sx < kGrid && sy >= 0 && sy < kGrid) {
            x = static_cast<uint64_t>(sx);
            y = static_cast<uint64_t>(sy);
            break;
          }
        }
        placed = true;
        break;
      }
    }
    if (!placed) {  // background
      x = rng.UniformInt(kGrid);
      y = rng.UniformInt(kGrid);
    }
    pickups.emplace_back(x, y);
    ++truth[x][y];
  }

  // Client side: each rider reports one eps-LDP randomized cell view.
  Hierarchical2DConfig config;
  config.fanout = 2;
  config.oracle = OracleKind::kOueSimulated;
  Hierarchical2D mech(kGrid, kEpsilon, config);
  for (const auto& [x, y] : pickups) {
    mech.EncodeUser(x, y, rng);
  }
  mech.Finalize(rng);

  auto true_rect = [&](uint64_t ax, uint64_t bx, uint64_t ay, uint64_t by) {
    uint64_t count = 0;
    for (uint64_t x = ax; x <= bx; ++x) {
      for (uint64_t y = ay; y <= by; ++y) {
        count += truth[x][y];
      }
    }
    return static_cast<double>(count) / kRiders;
  };

  std::printf("Private ride-demand heatmap: %llu riders on a %llux%llu "
              "grid, eps = %.1f (%s)\n\n",
              (unsigned long long)kRiders, (unsigned long long)kGrid,
              (unsigned long long)kGrid, kEpsilon, mech.Name().c_str());
  std::printf("%-28s %10s %10s\n", "rectangle query", "estimate", "truth");
  struct Rect {
    const char* label;
    uint64_t ax, bx, ay, by;
  } rects[] = {{"downtown core (8x8)", 36, 43, 20, 27},
               {"downtown wide (16x16)", 32, 47, 16, 31},
               {"airport corridor", 4, 15, 44, 59},
               {"river district (empty)", 56, 63, 0, 15},
               {"west half", 0, 31, 0, 63},
               {"whole city", 0, 63, 0, 63}};
  for (const Rect& r : rects) {
    std::printf("%-28s %10.4f %10.4f\n", r.label,
                mech.RangeQuery(r.ax, r.bx, r.ay, r.by),
                true_rect(r.ax, r.bx, r.ay, r.by));
  }

  std::printf(
      "\nThe provider can rank neighborhoods by demand and spot the two "
      "hotspots while every individual pickup stays private.\n");
  return 0;
}
