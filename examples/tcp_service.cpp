// The aggregator service behind a real TCP socket: a TcpFrontEnd on an
// ephemeral loopback port, a TcpClient streaming an LDP population in
// chunked sessions over the wire, and range queries answered as framed
// kRangeQueryResponse messages on the same connection — the complete
// networked deployment flow, in one process for the demo.
//
// The wire bytes are exactly the ones streaming_service.cpp feeds to
// HandleMessage in process; the TCP transport frames them with nothing
// extra, because the v2 envelope is already self-delimiting.

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <vector>

#include "ldp.h"
#include "net/tcp_client.h"
#include "net/tcp_front_end.h"
#include "protocol/haar_protocol.h"
#include "service/aggregator_service.h"
#include "service/server_factory.h"
#include "service/stream_wire.h"

using namespace ldp;  // NOLINT(build/namespaces)

namespace {

constexpr uint64_t kDomain = 256;
constexpr double kEps = 1.2;
constexpr uint64_t kUsers = 20000;
constexpr int kChunks = 4;

}  // namespace

int main() {
  // Aggregator side: one HaarHRR server behind a service, the service
  // behind a TCP front-end on an ephemeral loopback port.
  service::AggregatorService svc(/*worker_threads=*/2);
  service::ServerSpec spec;
  spec.kind = service::ServerKind::kHaar;
  spec.domain = kDomain;
  spec.eps = kEps;
  const uint64_t server_id = svc.AddServer(MakeAggregatorServer(spec));
  net::TcpFrontEnd front(svc);
  if (!front.Start()) {
    std::fprintf(stderr, "failed to start TCP front-end\n");
    return 1;
  }
  std::printf("aggregator listening on 127.0.0.1:%u\n", front.port());

  // Client side: draw a skewed population, encode it under the local
  // model, and stream the chunks over a real socket.
  Rng rng(0x7C95EA);
  std::vector<uint64_t> values;
  values.reserve(kUsers);
  for (uint64_t i = 0; i < kUsers; ++i) {
    values.push_back(rng.Bernoulli(0.7) ? rng.UniformInt(kDomain / 8)
                                        : rng.UniformInt(kDomain));
  }
  protocol::HaarHrrClient encoder(kDomain, kEps);
  net::TcpClient client;
  if (!client.Connect("127.0.0.1", front.port())) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }
  const uint64_t session_id = 42;
  client.Send(service::SerializeStreamBegin({session_id, server_id}));
  const uint64_t per_chunk = (kUsers + kChunks - 1) / kChunks;
  for (int c = 0; c < kChunks; ++c) {
    const uint64_t begin = c * per_chunk;
    const uint64_t end = std::min<uint64_t>(kUsers, begin + per_chunk);
    std::span<const uint64_t> slice(values.data() + begin, end - begin);
    client.Send(service::SerializeStreamChunk(
        session_id, c, encoder.EncodeUsersSerialized(slice, rng)));
  }
  service::StreamEnd end;
  end.session_id = session_id;
  end.chunk_count = kChunks;
  end.flags = service::kStreamFlagFinalize;
  client.Send(service::SerializeStreamEnd(end));
  std::printf("streamed %" PRIu64 " users in %d chunks over TCP\n", kUsers,
              kChunks);

  // Query over the same connection. Finalize is asynchronous, so retry
  // while the server still answers kNotFinalized.
  service::RangeQueryRequest request;
  request.query_id = 1;
  request.server_id = server_id;
  request.intervals = {{0, kDomain / 8 - 1},
                       {0, kDomain / 2 - 1},
                       {kDomain / 2, kDomain - 1}};
  service::RangeQueryResponse response;
  for (int attempt = 0; attempt < 5000; ++attempt) {
    const std::vector<uint8_t> reply =
        client.Call(service::SerializeRangeQueryRequest(request));
    if (service::ParseRangeQueryResponse(reply, &response) !=
        protocol::ParseError::kOk) {
      std::fprintf(stderr, "query failed on the wire\n");
      return 1;
    }
    if (response.status != service::QueryStatus::kNotFinalized) break;
  }
  if (response.status != service::QueryStatus::kOk) {
    std::fprintf(stderr, "query status: %s\n",
                 service::QueryStatusName(response.status).c_str());
    return 1;
  }
  const char* labels[] = {"low eighth ", "lower half ", "upper half "};
  for (size_t i = 0; i < response.estimates.size(); ++i) {
    std::printf("%s estimate %7.4f  (stddev %.4f)\n", labels[i],
                response.estimates[i].estimate,
                std::sqrt(response.estimates[i].variance));
  }

  client.ShutdownWrite();
  std::vector<uint8_t> eof_probe;
  client.ReceiveMessage(&eof_probe);  // graceful EOF from the server
  client.Close();
  front.Stop();
  const net::TcpFrontEndStats stats = front.stats();
  std::printf(
      "front-end: %" PRIu64 " connection(s), %" PRIu64 " messages routed, "
      "%" PRIu64 " bytes in, %" PRIu64 " bytes out, %" PRIu64
      " protocol errors\n",
      stats.connections_accepted, stats.messages_routed,
      stats.bytes_received, stats.bytes_sent, stats.protocol_errors);
  return stats.protocol_errors == 0 ? 0 : 1;
}
