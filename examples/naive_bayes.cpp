// "Advanced data analysis" (paper Section 6): build a Naive Bayes
// classifier for a PUBLIC class label from PRIVATE numerical attributes,
// using only LDP range queries — the paper's closing example of range
// queries as a modeling primitive.
//
// Setup: predict whether a loan application defaults (public outcome) from
// two private attributes — income bucket and debt bucket. For each class
// we run one range mechanism per attribute over the users of that class;
// classification evaluates P(class) * prod_attr P(attr-window | class)
// with the class-conditional densities answered privately.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/method.h"
#include "eval/experiment.h"

namespace {

using namespace ldp;  // NOLINT(build/namespaces)

constexpr uint64_t kDomain = 512;   // bucketed attribute range
constexpr double kEpsilon = 1.1;    // per-attribute budget
constexpr uint64_t kTrain = 200000;
constexpr uint64_t kTest = 4000;
constexpr uint64_t kWindow = 16;    // density window half-width

struct Person {
  uint64_t income;
  uint64_t debt;
  int label;  // 1 = default
};

// Class-conditional generator: defaulters skew low-income / high-debt.
Person SamplePerson(Rng& rng) {
  Person p;
  p.label = rng.Bernoulli(0.3) ? 1 : 0;
  auto clamp = [](double v) {
    if (v < 0) v = 0;
    if (v > kDomain - 1) v = kDomain - 1;
    return static_cast<uint64_t>(v);
  };
  if (p.label == 1) {
    p.income = clamp(140 + 55 * rng.Gaussian());
    p.debt = clamp(330 + 70 * rng.Gaussian());
  } else {
    p.income = clamp(290 + 70 * rng.Gaussian());
    p.debt = clamp(160 + 60 * rng.Gaussian());
  }
  return p;
}

// One private density model per (class, attribute).
struct ClassModel {
  std::unique_ptr<RangeMechanism> income;
  std::unique_ptr<RangeMechanism> debt;
  uint64_t count = 0;
};

double WindowDensity(const RangeMechanism& mech, uint64_t center) {
  uint64_t lo = center > kWindow ? center - kWindow : 0;
  uint64_t hi = center + kWindow < kDomain ? center + kWindow : kDomain - 1;
  double mass = mech.RangeQuery(lo, hi);
  // Clamp: LDP estimates can dip below zero; densities must stay positive
  // for the log-likelihood sum.
  return mass > 1e-6 ? mass : 1e-6;
}

}  // namespace

int main() {
  Rng rng(31);
  std::vector<ClassModel> models(2);
  for (ClassModel& model : models) {
    model.income = MakeMechanism(
        MethodSpec::Hh(4, OracleKind::kOueSimulated, true), kDomain,
        kEpsilon);
    model.debt = MakeMechanism(
        MethodSpec::Hh(4, OracleKind::kOueSimulated, true), kDomain,
        kEpsilon);
  }

  // Training: every user reports each private attribute once through the
  // mechanism belonging to their (public) class.
  for (uint64_t i = 0; i < kTrain; ++i) {
    Person p = SamplePerson(rng);
    models[p.label].income->EncodeUser(p.income, rng);
    models[p.label].debt->EncodeUser(p.debt, rng);
    ++models[p.label].count;
  }
  for (ClassModel& model : models) {
    model.income->Finalize(rng);
    model.debt->Finalize(rng);
  }
  double prior1 =
      static_cast<double>(models[1].count) / (models[0].count +
                                              models[1].count);

  // Evaluation against the non-private Bayes rule on fresh samples.
  uint64_t correct = 0;
  uint64_t baseline_correct = 0;
  for (uint64_t i = 0; i < kTest; ++i) {
    Person p = SamplePerson(rng);
    double score[2];
    for (int c = 0; c < 2; ++c) {
      double prior = c == 1 ? prior1 : 1 - prior1;
      score[c] = std::log(prior) +
                 std::log(WindowDensity(*models[c].income, p.income)) +
                 std::log(WindowDensity(*models[c].debt, p.debt));
    }
    int predicted = score[1] > score[0] ? 1 : 0;
    if (predicted == p.label) ++correct;
    // Plug-in baseline using the true generative parameters.
    auto loglik = [](double x, double mu, double sigma) {
      double z = (x - mu) / sigma;
      return -0.5 * z * z - std::log(sigma);
    };
    double s0 = std::log(0.7) + loglik(p.income, 290, 70) +
                loglik(p.debt, 160, 60);
    double s1 = std::log(0.3) + loglik(p.income, 140, 55) +
                loglik(p.debt, 330, 70);
    if ((s1 > s0 ? 1 : 0) == p.label) ++baseline_correct;
  }

  std::printf("Naive Bayes from private attributes (paper Section 6)\n");
  std::printf("  training users : %llu   attributes: 2 private, label "
              "public\n",
              (unsigned long long)kTrain);
  std::printf("  mechanism      : HHc4, eps = %.1f per attribute\n",
              kEpsilon);
  std::printf("  test accuracy  : %.1f%% (LDP model)  vs  %.1f%% "
              "(non-private Bayes-optimal)\n",
              100.0 * correct / kTest, 100.0 * baseline_correct / kTest);
  std::printf(
      "\nExpected: the LDP classifier lands within a few points of the "
      "non-private optimum — range queries are accurate enough to drive "
      "downstream models.\n");
  return 0;
}
