// Quickstart: answer range queries over private data in ~30 lines of API.
//
//   1. Pick a mechanism (HaarHRR here — the paper's "always a good
//      compromise" choice).
//   2. Each user calls EncodeUser() once with their private value; this is
//      the only step that touches raw data, and it is eps-LDP.
//   3. The aggregator calls Finalize() and then answers any number of
//      range / prefix / quantile queries.
//
// Build: cmake --build build && ./build/examples/example_quickstart

#include <cstdio>

#include "common/random.h"
#include "core/haar_hrr.h"
#include "data/dataset.h"
#include "data/distributions.h"

int main() {
  const uint64_t kDomain = 1024;   // values live in [0, 1024)
  const uint64_t kUsers = 200000;  // population size
  const double kEpsilon = 1.1;     // the paper's default (e^eps = 3)

  // Simulate a population: ages-like values concentrated around 0.4 * D.
  ldp::Rng rng(2024);
  ldp::CauchyDistribution population(kDomain, /*center_fraction=*/0.4);
  ldp::Dataset data = ldp::Dataset::FromDistribution(population, kUsers, rng);

  // Client side: every user randomizes their own value locally.
  ldp::HaarHrrMechanism mechanism(kDomain, kEpsilon);
  for (uint64_t value = 0; value < data.domain(); ++value) {
    for (uint64_t i = 0; i < data.counts()[value]; ++i) {
      mechanism.EncodeUser(value, rng);  // eps-LDP randomized report
    }
  }

  // Server side: debias once, then query freely (post-processing is free).
  mechanism.Finalize(rng);

  std::printf("LDP range queries over %llu users, D = %llu, eps = %.1f\n",
              (unsigned long long)kUsers, (unsigned long long)kDomain,
              kEpsilon);
  std::printf("%-22s %12s %12s\n", "query", "estimate", "truth");
  struct {
    uint64_t a, b;
  } queries[] = {{0, 255}, {256, 511}, {384, 447}, {400, 400}, {512, 1023}};
  for (const auto& q : queries) {
    std::printf("R[%4llu, %4llu]        %12.5f %12.5f\n",
                (unsigned long long)q.a, (unsigned long long)q.b,
                mechanism.RangeQuery(q.a, q.b), data.TrueRange(q.a, q.b));
  }

  // Quantiles come free via binary search over prefix queries.
  std::printf("\n%-22s %12s %12s\n", "quantile", "estimate", "truth");
  std::vector<double> cdf = data.Cdf();
  for (double phi : {0.25, 0.5, 0.75}) {
    uint64_t est = mechanism.QuantileQuery(phi);
    uint64_t truth = 0;
    while (truth + 1 < kDomain && cdf[truth] < phi) ++truth;
    std::printf("phi = %.2f             %12llu %12llu\n", phi,
                (unsigned long long)est, (unsigned long long)truth);
  }
  std::printf(
      "\nEach user sent about %.0f bits; nobody revealed their value.\n",
      mechanism.ReportBits());
  return 0;
}
