// The multidimensional wire path end to end: report/batch encodings are
// total over adversarial bytes, the sharded client encoder is
// bit-identical for every thread count, and a rectangle query answered
// over the wire (streamed batches -> kMultiDimQuery) matches the
// in-process aggregate bit for bit.

#include "protocol/multidim_protocol.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/random.h"
#include "protocol/envelope.h"
#include "service/aggregator_service.h"
#include "service/server_factory.h"
#include "service/stream_wire.h"

namespace ldp {
namespace {

using protocol::MultiDimClient;
using protocol::MultiDimReport;
using protocol::MultiDimServer;
using protocol::ParseError;
using service::AggregatorService;
using service::MakeAggregatorServer;
using service::QueryBox;
using service::QueryStatus;
using service::ServerKind;
using service::ServerSpec;

MultiDimReport Report(std::vector<uint8_t> levels, uint64_t seed,
                      uint32_t cell) {
  MultiDimReport report;
  report.levels = std::move(levels);
  report.seed = seed;
  report.cell = cell;
  return report;
}

// --- Single-report wire format ------------------------------------------

TEST(MultiDimReportWire, RoundTrips) {
  const MultiDimReport report = Report({3, 0, 5}, 0x1122334455667788ULL, 41);
  std::vector<uint8_t> bytes = SerializeMultiDimReport(report);
  MultiDimReport back;
  ASSERT_EQ(ParseMultiDimReport(bytes, &back), ParseError::kOk);
  EXPECT_EQ(back, report);
}

TEST(MultiDimReportWire, TruncationAtEveryOffsetIsRejected) {
  std::vector<uint8_t> bytes =
      SerializeMultiDimReport(Report({1, 2}, 99, 3));
  MultiDimReport out;
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_NE(ParseMultiDimReport(
                  std::span<const uint8_t>(bytes.data(), len), &out),
              ParseError::kOk)
        << "accepted a " << len << "-byte prefix";
  }
}

TEST(MultiDimReportWire, RejectsForgedDimsAndAllRootTuple) {
  std::vector<uint8_t> bytes = SerializeMultiDimReport(Report({1, 2}, 7, 0));
  const size_t payload = protocol::kEnvelopeHeaderSize;
  MultiDimReport out;

  std::vector<uint8_t> zero_dims = bytes;
  zero_dims[payload] = 0;
  EXPECT_EQ(ParseMultiDimReport(zero_dims, &out), ParseError::kBadPayload);

  std::vector<uint8_t> too_many = bytes;
  too_many[payload] = protocol::kMaxWireDimensions + 1;
  EXPECT_EQ(ParseMultiDimReport(too_many, &out), ParseError::kBadPayload);

  // The all-root tuple carries no report by construction.
  std::vector<uint8_t> all_root = bytes;
  all_root[payload + 1] = 0;
  all_root[payload + 2] = 0;
  EXPECT_EQ(ParseMultiDimReport(all_root, &out), ParseError::kBadPayload);

  // Wrong tag for this parser.
  EXPECT_EQ(ParseMultiDimReport(
                SerializeMultiDimReportBatch(
                    2, std::vector<MultiDimReport>{Report({1, 2}, 7, 0)}),
                &out),
            ParseError::kBadPayload);
}

// --- Batch wire format --------------------------------------------------

TEST(MultiDimBatchWire, RoundTripsIncludingEmpty) {
  const std::vector<MultiDimReport> reports = {
      Report({1, 0}, 11, 0), Report({0, 4}, 22, 9),
      Report({2, 2}, 0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFu)};
  std::vector<uint8_t> bytes = SerializeMultiDimReportBatch(2, reports);
  std::vector<MultiDimReport> back;
  uint64_t malformed = 5;
  ASSERT_EQ(ParseMultiDimReportBatch(bytes, &back, &malformed),
            ParseError::kOk);
  EXPECT_EQ(back, reports);
  EXPECT_EQ(malformed, 0u);

  std::vector<uint8_t> empty =
      SerializeMultiDimReportBatch(3, std::span<const MultiDimReport>());
  ASSERT_EQ(ParseMultiDimReportBatch(empty, &back, &malformed),
            ParseError::kOk);
  EXPECT_TRUE(back.empty());
}

TEST(MultiDimBatchWire, SkipsAndCountsMalformedItems) {
  // Corrupt the middle item's levels to the all-root tuple: the batch
  // still parses, the bad slot is counted, and the parser stays aligned
  // on the items after it.
  const std::vector<MultiDimReport> reports = {
      Report({1, 0}, 11, 1), Report({0, 4}, 22, 2), Report({3, 3}, 33, 3)};
  std::vector<uint8_t> bytes = SerializeMultiDimReportBatch(2, reports);
  // Header, dims byte, count varint (1 byte for 3), then item 0 (2 + 12
  // bytes); item 1's levels start right after.
  const size_t item1_levels = protocol::kEnvelopeHeaderSize + 2 + 14;
  bytes[item1_levels] = 0;
  bytes[item1_levels + 1] = 0;
  std::vector<MultiDimReport> back;
  uint64_t malformed = 0;
  ASSERT_EQ(ParseMultiDimReportBatch(bytes, &back, &malformed),
            ParseError::kOk);
  EXPECT_EQ(malformed, 1u);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], reports[0]);
  EXPECT_EQ(back[1], reports[2]);
}

TEST(MultiDimBatchWire, RejectsForgedCountsAndTruncation) {
  const std::vector<MultiDimReport> reports = {Report({1, 1}, 5, 0)};
  std::vector<uint8_t> bytes = SerializeMultiDimReportBatch(2, reports);
  std::vector<MultiDimReport> back;

  // A count that promises more items than the bytes can hold.
  std::vector<uint8_t> forged = bytes;
  forged[protocol::kEnvelopeHeaderSize + 1] = 200;
  EXPECT_EQ(ParseMultiDimReportBatch(forged, &back, nullptr),
            ParseError::kBadPayload);

  // Trailing garbage after the declared items.
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_NE(ParseMultiDimReportBatch(padded, &back, nullptr), ParseError::kOk);

  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_NE(ParseMultiDimReportBatch(
                  std::span<const uint8_t>(bytes.data(), len), &back, nullptr),
              ParseError::kOk)
        << "accepted a " << len << "-byte prefix";
  }
}

// --- Client <-> server --------------------------------------------------

TEST(MultiDimClientServer, RecoversRectangleMass) {
  const uint64_t kDomain = 32;
  const double kEps = 60.0;  // near-noiseless
  MultiDimClient client(kDomain, 2, kEps);
  MultiDimServer server(kDomain, 2, kEps);
  ASSERT_EQ(client.hash_range(), server.hash_range());
  Rng rng(31);
  const int n = 150000;
  std::vector<uint64_t> coords;
  coords.reserve(2 * n);
  for (int i = 0; i < n; ++i) {
    // Half at (5, 9), half uniform in [16, 31] x [0, 15].
    if (i % 2 == 0) {
      coords.insert(coords.end(), {5, 9});
    } else {
      coords.insert(coords.end(),
                    {16 + static_cast<uint64_t>((i / 2) % 16),
                     static_cast<uint64_t>((i / 2) % 16)});
    }
  }
  EXPECT_EQ(server.AbsorbBatch(client.EncodeUsers(coords, rng)),
            static_cast<uint64_t>(n));
  server.Finalize();
  const AxisInterval point[2] = {{5, 5}, {9, 9}};
  const AxisInterval quadrant[2] = {{16, 31}, {0, 15}};
  const AxisInterval all[2] = {{0, 31}, {0, 31}};
  EXPECT_NEAR(server.BoxQuery(point), 0.5, 0.05);
  EXPECT_NEAR(server.BoxQuery(quadrant), 0.5, 0.05);
  EXPECT_NEAR(server.BoxQuery(all), 1.0, 1e-9);
  RangeEstimate est = server.BoxQueryWithUncertainty(quadrant);
  EXPECT_EQ(est.value, server.BoxQuery(quadrant));
  EXPECT_GT(est.stddev, 0.0);
}

TEST(MultiDimClientServer, ShardedEncodeBitIdenticalAcrossThreads) {
  MultiDimClient client(64, 2, 1.1);
  std::vector<uint64_t> coords;
  for (int i = 0; i < 40000; ++i) {
    coords.push_back(static_cast<uint64_t>((i * 7) % 64));
    coords.push_back(static_cast<uint64_t>((i * 13) % 64));
  }
  const std::vector<MultiDimReport> reference =
      client.EncodeUsersSharded(coords, /*seed=*/55, /*threads=*/1);
  ASSERT_EQ(reference.size(), 40000u);
  for (unsigned threads : {0u, 3u, 8u}) {
    EXPECT_EQ(client.EncodeUsersSharded(coords, 55, threads), reference)
        << threads << " threads";
  }
}

TEST(MultiDimClientServer, RejectsInvalidReportsWithAccounting) {
  MultiDimServer server(16, 2, 1.0);
  const uint64_t g = server.hash_range();
  EXPECT_TRUE(server.Absorb(Report({1, 0}, 7, 0)));
  // Wrong arity, all-root tuple, level past the tree height, cell >= g.
  EXPECT_FALSE(server.Absorb(Report({1}, 7, 0)));
  EXPECT_FALSE(server.Absorb(Report({1, 0, 2}, 7, 0)));
  EXPECT_FALSE(server.Absorb(Report({0, 0}, 7, 0)));
  EXPECT_FALSE(server.Absorb(Report({200, 0}, 7, 0)));
  EXPECT_FALSE(server.Absorb(Report({1, 0}, 7, static_cast<uint32_t>(g))));
  EXPECT_EQ(server.accepted_reports(), 1u);
  EXPECT_EQ(server.rejected_reports(), 5u);

  // Serialized single-report path: garbage bytes are a counted reject.
  EXPECT_FALSE(server.AbsorbSerialized(std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(server.rejected_reports(), 6u);
}

TEST(MultiDimClientServer, ServerIsV2Only) {
  MultiDimServer server(16, 2, 1.0);
  std::span<const uint8_t> versions = server.AcceptedWireVersions();
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0], protocol::kWireVersionV2);
}

// --- Query plane wire structs -------------------------------------------

TEST(MultiDimQueryWire, RequestRoundTrips) {
  service::MultiDimQueryRequest request;
  request.query_id = 0xFEDCBA9876543210ULL;
  request.server_id = 2;
  request.dimensions = 3;
  QueryBox a;
  a.axes = {{0, 0}, {17, 4095}, {uint64_t{1} << 40, (uint64_t{1} << 40) + 5}};
  QueryBox b;
  b.axes = {{1, 2}, {3, 4}, {5, 6}};
  request.boxes = {a, b};
  std::vector<uint8_t> bytes = SerializeMultiDimQueryRequest(request);
  service::MultiDimQueryRequest back;
  ASSERT_EQ(ParseMultiDimQueryRequest(bytes, &back), ParseError::kOk);
  EXPECT_EQ(back, request);

  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_NE(ParseMultiDimQueryRequest(
                  std::span<const uint8_t>(bytes.data(), len), &back),
              ParseError::kOk);
  }
}

TEST(MultiDimQueryWire, ResponseRoundTrips) {
  service::MultiDimQueryResponse response;
  response.query_id = 77;
  response.status = QueryStatus::kDimensionMismatch;
  response.estimates = {{0.25, 0.0009765625}, {-0.01, 0.5}};
  std::vector<uint8_t> bytes = SerializeMultiDimQueryResponse(response);
  service::MultiDimQueryResponse back;
  ASSERT_EQ(ParseMultiDimQueryResponse(bytes, &back), ParseError::kOk);
  EXPECT_EQ(back, response);
}

// --- The full wire path -------------------------------------------------

ServerSpec GridSpec(uint64_t domain, uint32_t dims, double eps) {
  ServerSpec spec;
  spec.kind = ServerKind::kGrid;
  spec.domain = domain;
  spec.eps = eps;
  spec.fanout = 2;
  spec.dimensions = dims;
  return spec;
}

service::MultiDimQueryResponse AskBox(AggregatorService& svc,
                                      uint64_t server_id, uint64_t query_id,
                                      std::vector<QueryBox> boxes,
                                      uint32_t dims = 2) {
  service::MultiDimQueryRequest request;
  request.query_id = query_id;
  request.server_id = server_id;
  request.dimensions = dims;
  request.boxes = std::move(boxes);
  std::vector<uint8_t> bytes =
      svc.HandleMessage(SerializeMultiDimQueryRequest(request));
  service::MultiDimQueryResponse response;
  EXPECT_EQ(ParseMultiDimQueryResponse(bytes, &response), ParseError::kOk);
  EXPECT_EQ(response.query_id, query_id);
  return response;
}

TEST(MultiDimService, StreamedIngestMatchesInProcessBitForBit) {
  // The acceptance flow: one sharded encode, absorbed once in process and
  // once as streamed kMultiDimReportBatch chunks through the service;
  // every rectangle answered over the wire must match the in-process
  // estimate bit for bit, at every worker count.
  const uint64_t kDomain = 64;
  const double kEps = 1.1;
  MultiDimClient client(kDomain, 2, kEps);
  std::vector<uint64_t> coords;
  for (int i = 0; i < 30000; ++i) {
    coords.push_back(static_cast<uint64_t>((i * 11) % 64));
    coords.push_back(static_cast<uint64_t>((i * 5) % 64));
  }
  const std::vector<MultiDimReport> reports =
      client.EncodeUsersSharded(coords, /*seed=*/17);

  MultiDimServer in_process(kDomain, 2, kEps);
  EXPECT_EQ(in_process.AbsorbBatch(reports), reports.size());
  in_process.Finalize();

  const std::vector<std::pair<AxisInterval, AxisInterval>> rects = {
      {{0, 63}, {0, 63}}, {{10, 37}, {22, 41}}, {{0, 0}, {63, 63}}};

  for (unsigned workers : {0u, 2u}) {
    AggregatorService service(workers);
    const uint64_t server_id =
        service.AddServer(MakeAggregatorServer(GridSpec(kDomain, 2, kEps)));
    const uint64_t kSession = 4242;
    service.HandleMessage(service::SerializeStreamBegin({kSession, server_id}));
    const size_t kPerChunk = 7000;
    uint64_t sequence = 0;
    for (size_t begin = 0; begin < reports.size(); begin += kPerChunk) {
      const size_t count = std::min(kPerChunk, reports.size() - begin);
      service.HandleMessage(service::SerializeStreamChunk(
          kSession, sequence++,
          SerializeMultiDimReportBatch(
              2, std::span<const MultiDimReport>(reports).subspan(begin,
                                                                  count))));
    }
    service.HandleMessage(service::SerializeStreamEnd(
        {kSession, sequence, service::kStreamFlagFinalize}));
    service.Drain();
    ASSERT_TRUE(service.server_finalized(server_id));
    EXPECT_EQ(service.server(server_id).accepted_reports(), reports.size());

    for (size_t r = 0; r < rects.size(); ++r) {
      QueryBox box;
      box.axes = {{rects[r].first.lo, rects[r].first.hi},
                  {rects[r].second.lo, rects[r].second.hi}};
      service::MultiDimQueryResponse response =
          AskBox(service, server_id, r + 1, {box});
      ASSERT_EQ(response.status, QueryStatus::kOk);
      ASSERT_EQ(response.estimates.size(), 1u);
      const AxisInterval direct[2] = {rects[r].first, rects[r].second};
      RangeEstimate expected = in_process.BoxQueryWithUncertainty(direct);
      EXPECT_EQ(response.estimates[0].estimate, expected.value)
          << "rect " << r << " at " << workers << " workers";
      EXPECT_EQ(response.estimates[0].variance,
                expected.stddev * expected.stddev);
    }
  }
}

TEST(MultiDimService, QueryErrorLadder) {
  AggregatorService service(0);
  const uint64_t grid_id =
      service.AddServer(MakeAggregatorServer(GridSpec(16, 2, 1.0)));
  ServerSpec flat;
  flat.kind = ServerKind::kFlat;
  flat.domain = 16;
  flat.eps = 1.0;
  const uint64_t flat_id = service.AddServer(MakeAggregatorServer(flat));

  QueryBox box2d;
  box2d.axes = {{0, 3}, {0, 3}};
  QueryBox box1d;
  box1d.axes = {{0, 3}};

  // Not finalized yet.
  EXPECT_EQ(AskBox(service, grid_id, 1, {box2d}).status,
            QueryStatus::kNotFinalized);
  // Unknown server id.
  EXPECT_EQ(AskBox(service, 99, 2, {box2d}).status,
            QueryStatus::kUnknownServer);

  ASSERT_TRUE(service.FinalizeServer(grid_id));
  ASSERT_TRUE(service.FinalizeServer(flat_id));

  // Dimension mismatches both ways.
  EXPECT_EQ(AskBox(service, grid_id, 3, {box1d}, /*dims=*/1).status,
            QueryStatus::kDimensionMismatch);
  EXPECT_EQ(AskBox(service, flat_id, 4, {box2d}, /*dims=*/2).status,
            QueryStatus::kDimensionMismatch);

  // A dims == 1 box query to a classic 1-D server works (the BoxQuery
  // default forwards it to RangeQuery).
  service::MultiDimQueryResponse flat_ok =
      AskBox(service, flat_id, 5, {box1d}, /*dims=*/1);
  EXPECT_EQ(flat_ok.status, QueryStatus::kOk);
  ASSERT_EQ(flat_ok.estimates.size(), 1u);

  // Empty box list, reversed interval, out-of-domain interval.
  EXPECT_EQ(AskBox(service, grid_id, 6, {}).status,
            QueryStatus::kEmptyIntervalList);
  QueryBox reversed;
  reversed.axes = {{3, 1}, {0, 3}};
  EXPECT_EQ(AskBox(service, grid_id, 7, {reversed}).status,
            QueryStatus::kIntervalReversed);
  QueryBox oob;
  oob.axes = {{0, 3}, {0, 16}};
  EXPECT_EQ(AskBox(service, grid_id, 8, {oob}).status,
            QueryStatus::kIntervalOutOfDomain);

  // A well-formed query still succeeds after the failures.
  service::MultiDimQueryResponse ok = AskBox(service, grid_id, 9, {box2d});
  EXPECT_EQ(ok.status, QueryStatus::kOk);
  EXPECT_EQ(ok.estimates.size(), 1u);

  // Malformed request bytes get a parseable kMalformedRequest response.
  std::vector<uint8_t> garbage = SerializeMultiDimQueryRequest([] {
    service::MultiDimQueryRequest r;
    r.query_id = 10;
    r.server_id = 0;
    r.dimensions = 2;
    QueryBox b;
    b.axes = {{0, 1}, {0, 1}};
    r.boxes = {b};
    return r;
  }());
  std::vector<uint8_t> payload(
      garbage.begin() + protocol::kEnvelopeHeaderSize, garbage.end() - 1);
  std::vector<uint8_t> reply = service.HandleMessage(protocol::EncodeEnvelope(
      protocol::MechanismTag::kMultiDimQuery, payload));
  service::MultiDimQueryResponse malformed;
  ASSERT_EQ(ParseMultiDimQueryResponse(reply, &malformed), ParseError::kOk);
  EXPECT_EQ(malformed.status, QueryStatus::kMalformedRequest);
}

}  // namespace
}  // namespace ldp
