// AHEAD adaptive hierarchical decomposition (core/ahead.h): tree-shape
// invariants, the degenerate full-split equivalence with fixed-fanout
// HH_B, unbiasedness of range estimates, and the PR 2 batch/shard
// ingestion contracts (EncodeUsers bit-identity, thread-count-invariant
// EncodeUsersSharded, MergeFrom compatibility).

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "core/ahead.h"
#include "core/hierarchical.h"
#include "core/method.h"
#include "data/distributions.h"
#include "data/workload.h"
#include "eval/experiment.h"

namespace ldp {
namespace {

std::vector<uint64_t> SampleValues(const ValueDistribution& dist, uint64_t n,
                                   uint64_t seed) {
  std::vector<uint64_t> values(n);
  Rng rng(seed);
  for (uint64_t& v : values) v = dist.Sample(rng);
  return values;
}

// --- AdaptiveTree shape ---------------------------------------------------

TEST(AdaptiveTree, FullSplitMatchesCompleteTree) {
  TreeShape shape(64, 4);  // height 3
  AdaptiveTree tree = AdaptiveTree::Grow(
      shape, 0, [](const TreeNode&) { return true; });
  EXPECT_EQ(tree.nodes().size(), shape.TotalNodes());
  EXPECT_EQ(tree.num_levels(), shape.height());
  for (uint32_t l = 1; l <= shape.height(); ++l) {
    EXPECT_EQ(tree.FrontierSize(l), shape.NodesAtLevel(l));
    // On a complete tree, frontier position == complete-tree node index.
    for (uint64_t z = 0; z < shape.padded_domain(); z += 7) {
      EXPECT_EQ(tree.FrontierIndex(l, z), shape.NodeContaining(l, z));
    }
  }
}

TEST(AdaptiveTree, FrontiersPartitionTheDomain) {
  TreeShape shape(100, 2);  // padded to 128, height 7
  // Split only the left spine: node (l, 0) for every level.
  AdaptiveTree tree = AdaptiveTree::Grow(
      shape, 0, [](const TreeNode& n) { return n.index == 0; });
  EXPECT_EQ(tree.num_levels(), shape.height());
  for (uint32_t l = 1; l <= tree.num_levels(); ++l) {
    uint64_t covered = 0;
    uint64_t expect_start = 0;
    for (uint64_t j = 0; j < tree.FrontierSize(l); ++j) {
      const AdaptiveNode& n = tree.nodes()[tree.FrontierNode(l, j)];
      EXPECT_EQ(n.block_start, expect_start);  // contiguous, left to right
      covered += n.block_length();
      expect_start = n.block_end;
    }
    EXPECT_EQ(covered, shape.padded_domain());
    // Every value maps into the frontier element that contains it.
    for (uint64_t z = 0; z < shape.padded_domain(); z += 11) {
      uint64_t j = tree.FrontierIndex(l, z);
      const AdaptiveNode& n = tree.nodes()[tree.FrontierNode(l, j)];
      EXPECT_GE(z, n.block_start);
      EXPECT_LT(z, n.block_end);
    }
  }
}

TEST(AdaptiveTree, MaxDepthCapsTheSplit) {
  TreeShape shape(256, 4);  // height 4
  AdaptiveTree tree = AdaptiveTree::Grow(
      shape, 2, [](const TreeNode&) { return true; });
  EXPECT_EQ(tree.num_levels(), 2u);
  for (const AdaptiveNode& n : tree.nodes()) {
    EXPECT_LE(n.node.level, 2u);
    if (n.node.level == 2) {
      EXPECT_TRUE(n.is_leaf());
    }
  }
}

TEST(AdaptiveTree, SplitNodesRoundTripsThroughTryFromSplits) {
  TreeShape shape(64, 2);
  AdaptiveTree tree = AdaptiveTree::Grow(
      shape, 0, [](const TreeNode& n) { return (n.index & 1) == 0; });
  std::vector<TreeNode> splits = tree.SplitNodes();
  auto rebuilt = AdaptiveTree::TryFromSplits(shape, splits);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(rebuilt->SplitNodes(), splits);
  EXPECT_EQ(rebuilt->nodes().size(), tree.nodes().size());
  EXPECT_EQ(rebuilt->num_levels(), tree.num_levels());
}

TEST(AdaptiveTree, TryFromSplitsRejectsMalformedSets) {
  TreeShape shape(64, 2);
  const TreeNode root{0, 0};
  // Empty, missing root, orphan (parent not split), duplicate / unsorted,
  // out-of-range coordinates.
  EXPECT_FALSE(AdaptiveTree::TryFromSplits(shape, {}).has_value());
  {
    std::vector<TreeNode> s = {{1, 0}};
    EXPECT_FALSE(AdaptiveTree::TryFromSplits(shape, s).has_value());
  }
  {
    std::vector<TreeNode> s = {root, {2, 1}};  // (1, 0) missing
    EXPECT_FALSE(AdaptiveTree::TryFromSplits(shape, s).has_value());
  }
  {
    std::vector<TreeNode> s = {root, {1, 0}, {1, 0}};
    EXPECT_FALSE(AdaptiveTree::TryFromSplits(shape, s).has_value());
  }
  {
    std::vector<TreeNode> s = {root, {1, 1}, {1, 0}};
    EXPECT_FALSE(AdaptiveTree::TryFromSplits(shape, s).has_value());
  }
  {
    std::vector<TreeNode> s = {root, {1, 2}};  // index out of range
    EXPECT_FALSE(AdaptiveTree::TryFromSplits(shape, s).has_value());
  }
  {
    std::vector<TreeNode> s = {root, {6, 0}};  // leaf level cannot split
    EXPECT_FALSE(AdaptiveTree::TryFromSplits(shape, s).has_value());
  }
  {
    std::vector<TreeNode> s = {root, {1, 0}};
    EXPECT_TRUE(AdaptiveTree::TryFromSplits(shape, s).has_value());
  }
}

// --- Mechanism: degenerate equivalence ------------------------------------

TEST(Ahead, ForcedFullSplitBuildsTheCompleteTree) {
  AheadConfig config;
  config.fanout = 4;
  config.threshold_scale = -1.0;  // <= 0: split unconditionally
  AheadMechanism mech(256, 1.0, config);
  std::vector<uint64_t> values(5000);
  Rng vrng(3);
  for (uint64_t& v : values) v = vrng.UniformInt(256);
  Rng rng(7);
  mech.EncodeUsers(values, rng);
  Rng fin(11);
  mech.Finalize(fin);
  EXPECT_EQ(mech.tree().nodes().size(), mech.shape().TotalNodes());
  EXPECT_EQ(mech.tree().num_levels(), mech.shape().height());
}

TEST(Ahead, DegenerateFullSplitAgreesWithFixedFanoutWithinNoise) {
  // When the threshold forces a full split the AHEAD tree IS the complete
  // B-ary tree, so AHEAD and HHc_B estimate the same node masses — AHEAD
  // with fewer phase-2 users and an extra carried-leaf average at the leaf
  // level, hence agreement within the combined noise, not bitwise.
  const uint64_t d = 1024;
  const double eps = 1.0;
  const uint64_t n = 120000;
  ZipfDistribution dist(d, 1.1);
  std::vector<uint64_t> values = SampleValues(dist, n, 21);

  AheadConfig config;
  config.fanout = 4;
  config.threshold_scale = -1.0;
  config.nonnegativity = false;  // keep both pipelines linear/unbiased
  AheadMechanism ahead(d, eps, config);
  Rng arng(31);
  ahead.EncodeUsers(values, arng);
  Rng afin(41);
  ahead.Finalize(afin);

  HierarchicalConfig hh_config;
  hh_config.fanout = 4;
  hh_config.consistency = true;
  HierarchicalMechanism hh(d, eps, hh_config);
  Rng hrng(32);
  hh.EncodeUsers(values, hrng);
  Rng hfin(42);
  hh.Finalize(hfin);

  std::vector<double> truth(d, 0.0);
  for (uint64_t v : values) truth[v] += 1.0 / static_cast<double>(n);

  QueryWorkload::Random(60, 5).Visit(d, [&](uint64_t a, uint64_t b) {
    double t = std::accumulate(truth.begin() + a, truth.begin() + b + 1, 0.0);
    RangeEstimate ae = ahead.RangeQueryWithUncertainty(a, b);
    RangeEstimate he = hh.RangeQueryWithUncertainty(a, b);
    double tol = 5.0 * std::sqrt(ae.stddev * ae.stddev +
                                 he.stddev * he.stddev) +
                 1e-9;
    EXPECT_NEAR(ae.value, he.value, tol) << "[" << a << ", " << b << "]";
    EXPECT_NEAR(ae.value, t, 5.0 * ae.stddev + 1e-9);
  });
}

// --- Mechanism: unbiasedness ----------------------------------------------

TEST(Ahead, RangeEstimatesAreUnbiasedOverTrials) {
  // Uniform data (so the uniform-within-leaf assumption is exact), the
  // linear post-processing only (nonnegativity clamping is the one biased
  // step and is switched off): the mean error over independent trials
  // must be statistically indistinguishable from zero.
  const uint64_t d = 256;
  const double eps = 1.0;
  const uint64_t n = 20000;
  const int trials = 30;
  UniformDistribution dist(d);
  struct Range {
    uint64_t a, b;
  };
  const std::vector<Range> ranges = {{0, 63}, {10, 200}, {128, 255}, {7, 7}};

  std::vector<double> mean_err(ranges.size(), 0.0);
  std::vector<double> mean_var(ranges.size(), 0.0);
  for (int t = 0; t < trials; ++t) {
    std::vector<uint64_t> values = SampleValues(dist, n, 1000 + t);
    std::vector<double> truth(d, 0.0);
    for (uint64_t v : values) truth[v] += 1.0 / static_cast<double>(n);
    AheadConfig config;
    config.fanout = 4;
    config.nonnegativity = false;
    AheadMechanism mech(d, eps, config);
    Rng rng(2000 + t);
    mech.EncodeUsers(values, rng);
    Rng fin(3000 + t);
    mech.Finalize(fin);
    for (size_t q = 0; q < ranges.size(); ++q) {
      double truth_q = std::accumulate(truth.begin() + ranges[q].a,
                                       truth.begin() + ranges[q].b + 1, 0.0);
      RangeEstimate est =
          mech.RangeQueryWithUncertainty(ranges[q].a, ranges[q].b);
      mean_err[q] += (est.value - truth_q) / trials;
      mean_var[q] += est.stddev * est.stddev / trials;
    }
  }
  for (size_t q = 0; q < ranges.size(); ++q) {
    // Std error of the trial mean; 4 sigma keeps the flake rate negligible.
    double se = std::sqrt(mean_var[q] / trials);
    EXPECT_LE(std::abs(mean_err[q]), 4.0 * se)
        << "range [" << ranges[q].a << ", " << ranges[q].b << "]";
  }
}

TEST(Ahead, EstimateFrequenciesSumsToOne) {
  AheadMechanism mech(128, 1.0, AheadConfig{});
  ZipfDistribution dist(128, 1.2);
  std::vector<uint64_t> values = SampleValues(dist, 30000, 5);
  Rng rng(6);
  mech.EncodeUsers(values, rng);
  Rng fin(7);
  mech.Finalize(fin);
  std::vector<double> freqs = mech.EstimateFrequencies();
  ASSERT_EQ(freqs.size(), 128u);
  double total = std::accumulate(freqs.begin(), freqs.end(), 0.0);
  // Consistency pins the root to 1; the padded cells outside the domain
  // carry only noise mass, clamped non-negative.
  EXPECT_NEAR(total, 1.0, 0.05);
  for (double f : freqs) EXPECT_GE(f, 0.0);  // nonnegativity (default on)
}

// --- Batch / shard ingestion contracts ------------------------------------

TEST(Ahead, EncodeUsersMatchesEncodeUserLoop) {
  const uint64_t d = 128;
  std::vector<uint64_t> values = SampleValues(UniformDistribution(d), 3000, 9);
  AheadMechanism loop(d, 1.1, AheadConfig{});
  AheadMechanism batch(d, 1.1, AheadConfig{});
  Rng rng_l(17);
  Rng rng_b(17);
  for (uint64_t v : values) loop.EncodeUser(v, rng_l);
  batch.EncodeUsers(values, rng_b);
  EXPECT_EQ(batch.user_count(), loop.user_count());
  EXPECT_EQ(batch.phase1_user_count(), loop.phase1_user_count());
  Rng fin_l(99);
  Rng fin_b(99);
  loop.Finalize(fin_l);
  batch.Finalize(fin_b);
  EXPECT_EQ(batch.EstimateFrequencies(), loop.EstimateFrequencies());
}

TEST(Ahead, ShardedIngestionIsThreadCountInvariant) {
  // The acceptance bar: 1, 4 and 8 worker threads must produce
  // bit-identical aggregates (and therefore bit-identical estimates given
  // the same Finalize Rng).
  const uint64_t d = 256;
  ZipfDistribution dist(d, 1.1);
  std::vector<uint64_t> values = SampleValues(dist, 50000, 13);
  std::vector<std::vector<double>> freqs;
  std::vector<uint64_t> phase1_counts;
  for (unsigned threads : {1u, 4u, 8u}) {
    AheadMechanism mech(d, 1.0, AheadConfig{});
    EncodeUsersSharded(mech, values, /*seed=*/2026, threads);
    EXPECT_EQ(mech.user_count(), values.size());
    phase1_counts.push_back(mech.phase1_user_count());
    Rng fin(7);
    mech.Finalize(fin);
    freqs.push_back(mech.EstimateFrequencies());
  }
  EXPECT_EQ(phase1_counts[0], phase1_counts[1]);
  EXPECT_EQ(phase1_counts[0], phase1_counts[2]);
  EXPECT_EQ(freqs[0], freqs[1]);
  EXPECT_EQ(freqs[0], freqs[2]);
}

TEST(Ahead, MergeFromRejectsIncompatibleMechanisms) {
  AheadConfig config;
  AheadMechanism a(64, 1.0, config);
  config.fanout = 2;
  AheadMechanism b(64, 1.0, config);
  EXPECT_DEATH(a.MergeFrom(b), "fanout");
  HierarchicalConfig hh_config;
  HierarchicalMechanism hh(64, 1.0, hh_config);
  EXPECT_DEATH(a.MergeFrom(hh), "AheadMechanism");
}

// --- Integration ----------------------------------------------------------

TEST(Ahead, AdaptiveTreeIsCoarserOnSkewedData) {
  // Zipf mass concentrates near 0; the threshold should refuse to split
  // the noise-level right side of the domain, making the adaptive tree
  // strictly smaller than the complete tree.
  const uint64_t d = 4096;
  ZipfDistribution dist(d, 1.3);
  std::vector<uint64_t> values = SampleValues(dist, 100000, 17);
  AheadConfig config;
  config.fanout = 4;
  AheadMechanism mech(d, 1.0, config);
  Rng rng(19);
  mech.EncodeUsers(values, rng);
  Rng fin(23);
  mech.Finalize(fin);
  EXPECT_LT(mech.tree().nodes().size(), mech.shape().TotalNodes() / 2);
  EXPECT_GE(mech.tree().num_levels(), 1u);
}

TEST(Ahead, RunsThroughTheExperimentHarness) {
  ExperimentConfig config;
  config.domain = 256;
  config.population = 30000;
  config.epsilon = 1.1;
  config.method = MethodSpec::Ahead(4);
  config.trials = 2;
  config.threads = 1;
  config.encode_threads = 4;  // exercise the sharded path end to end
  ZipfDistribution dist(config.domain, 1.1);
  ExperimentResult result =
      RunRangeExperiment(config, dist, QueryWorkload::Random(50, 3));
  EXPECT_TRUE(std::isfinite(result.mean_mse()));
  EXPECT_LT(result.mean_mse(), 0.05);
  EXPECT_EQ(config.method.Name(), "AHEAD4");
}

TEST(Ahead, BeatsFixedFanoutOnSkewedDataAtScale) {
  // A deterministic miniature of the bench acceptance bar (full scale —
  // D = 2^16, 200k users — lives in bench_micro_ahead): on Zipf-skewed
  // data the adaptive tree spends its phase-2 budget on the populated
  // region and answers sparse ranges with single carried leaves.
  const uint64_t d = 1 << 12;
  const double eps = 1.0;
  const uint64_t n = 150000;
  ZipfDistribution dist(d, 1.1);
  std::vector<uint64_t> values = SampleValues(dist, n, 77);
  std::vector<double> truth(d, 0.0);
  for (uint64_t v : values) truth[v] += 1.0 / static_cast<double>(n);

  auto mse_for = [&](RangeMechanism& mech, uint64_t seed) {
    Rng rng(seed);
    mech.EncodeUsers(values, rng);
    Rng fin(seed + 1);
    mech.Finalize(fin);
    double se = 0.0;
    uint64_t count = 0;
    QueryWorkload::Random(200, 9).Visit(d, [&](uint64_t a, uint64_t b) {
      double t =
          std::accumulate(truth.begin() + a, truth.begin() + b + 1, 0.0);
      double e = mech.RangeQuery(a, b) - t;
      se += e * e;
      ++count;
    });
    return se / static_cast<double>(count);
  };

  AheadMechanism ahead(d, eps, AheadConfig{});
  HierarchicalConfig hh_config;
  hh_config.fanout = 4;
  HierarchicalMechanism hh(d, eps, hh_config);
  double ahead_mse = mse_for(ahead, 101);
  double hh_mse = mse_for(hh, 103);
  EXPECT_LT(ahead_mse, hh_mse);
}

}  // namespace
}  // namespace ldp
