// Validation of RangeQueryWithUncertainty: the reported stddev must match
// (or conservatively bound) the empirical spread of the estimates, and
// standard Gaussian coverage must hold.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "core/method.h"
#include "eval/experiment.h"

namespace ldp {
namespace {

struct UncertaintyCase {
  MethodSpec spec;
  // Whether the predicted stddev is exact (flat/Haar) or an upper bound
  // with slack (consistent HH applies the Lemma 4.6 node factor, an
  // upper bound per node).
  bool exact;
};

class UncertaintyTest : public ::testing::TestWithParam<UncertaintyCase> {};

TEST_P(UncertaintyTest, PredictedStddevMatchesEmpirical) {
  const uint64_t d = 256;
  const double eps = 1.1;
  const int n = 2000;
  const int trials = 300;
  const uint64_t qa = 37;
  const uint64_t qb = 171;
  RunningStat estimates;
  RunningStat predicted;
  for (int t = 0; t < trials; ++t) {
    Rng rng(900 + t);
    auto mech = MakeMechanism(GetParam().spec, d, eps);
    for (int i = 0; i < n; ++i) {
      mech->EncodeUser(static_cast<uint64_t>(i) % d, rng);
    }
    mech->Finalize(rng);
    RangeEstimate est = mech->RangeQueryWithUncertainty(qa, qb);
    EXPECT_DOUBLE_EQ(est.value, mech->RangeQuery(qa, qb));
    estimates.Add(est.value);
    predicted.Add(est.stddev);
  }
  double empirical_sd = estimates.sample_stddev();
  double mean_predicted = predicted.mean();
  if (GetParam().exact) {
    EXPECT_NEAR(mean_predicted, empirical_sd, 0.25 * empirical_sd)
        << GetParam().spec.Name();
  } else {
    // Upper bound, but not vacuous: within 3x.
    EXPECT_GE(mean_predicted, empirical_sd * 0.75)
        << GetParam().spec.Name();
    EXPECT_LE(mean_predicted, empirical_sd * 3.0)
        << GetParam().spec.Name();
  }
}

TEST_P(UncertaintyTest, ThreeSigmaCoverage) {
  const uint64_t d = 128;
  const double eps = 0.8;
  const int n = 1500;
  const int trials = 200;
  int covered = 0;
  for (int t = 0; t < trials; ++t) {
    Rng rng(4000 + t);
    auto mech = MakeMechanism(GetParam().spec, d, eps);
    for (int i = 0; i < n; ++i) {
      mech->EncodeUser(static_cast<uint64_t>(i) % d, rng);
    }
    mech->Finalize(rng);
    double truth = 48.0 / d;  // uniform data, range of 48 items
    RangeEstimate est = mech->RangeQueryWithUncertainty(40, 87);
    if (std::abs(est.value - truth) <= 3.0 * est.stddev) {
      ++covered;
    }
  }
  // 3-sigma Gaussian coverage is 99.7%; demand >= 97% to absorb noise.
  EXPECT_GE(covered, trials * 97 / 100) << GetParam().spec.Name();
}

std::string CaseName(const ::testing::TestParamInfo<UncertaintyCase>& info) {
  std::string name = info.param.spec.Name();
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) out += c;
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, UncertaintyTest,
    ::testing::Values(
        UncertaintyCase{MethodSpec::Flat(OracleKind::kOueSimulated), true},
        UncertaintyCase{MethodSpec::Haar(), true},
        UncertaintyCase{MethodSpec::Hh(4, OracleKind::kOueSimulated, false),
                        true},
        UncertaintyCase{MethodSpec::Hh(4, OracleKind::kOueSimulated, true),
                        false},
        UncertaintyCase{MethodSpec::Hh(8, OracleKind::kSueSimulated, true),
                        false}),
    CaseName);

TEST(Uncertainty, LongerRangesWiderIntervalsForFlat) {
  Rng rng(5);
  auto mech = MakeMechanism(MethodSpec::Flat(OracleKind::kOueSimulated),
                            256, 1.1);
  for (int i = 0; i < 5000; ++i) {
    mech->EncodeUser(i % 256, rng);
  }
  mech->Finalize(rng);
  double sd_short = mech->RangeQueryWithUncertainty(0, 3).stddev;
  double sd_long = mech->RangeQueryWithUncertainty(0, 255).stddev;
  EXPECT_NEAR(sd_long / sd_short, std::sqrt(256.0 / 4.0), 0.01);
}

TEST(Uncertainty, HaarStddevInsensitiveToRangeLength) {
  Rng rng(6);
  auto mech = MakeMechanism(MethodSpec::Haar(), 256, 1.1);
  for (int i = 0; i < 5000; ++i) {
    mech->EncodeUser(i % 256, rng);
  }
  mech->Finalize(rng);
  double sd_short = mech->RangeQueryWithUncertainty(100, 107).stddev;
  double sd_long = mech->RangeQueryWithUncertainty(3, 220).stddev;
  EXPECT_LT(sd_long / sd_short, 2.0);
  EXPECT_GT(sd_long / sd_short, 0.5);
}

TEST(Uncertainty, FullDomainHaarQueryIsCertain) {
  Rng rng(7);
  auto mech = MakeMechanism(MethodSpec::Haar(), 128, 0.5);
  for (int i = 0; i < 1000; ++i) {
    mech->EncodeUser(i % 128, rng);
  }
  mech->Finalize(rng);
  RangeEstimate est = mech->RangeQueryWithUncertainty(0, 127);
  EXPECT_NEAR(est.value, 1.0, 1e-12);
  EXPECT_NEAR(est.stddev, 0.0, 1e-12);
}

}  // namespace
}  // namespace ldp
