// Property tests for the v2 wire protocol: Encode -> Serialize ->
// Parse identity must hold for every report shape — the three deployable
// protocols (flat/haar/tree HRR) and the four plain oracle report
// formats (GRR, OUE, SUE, OLH) — across randomized (eps, D, seed) drawn
// from a seeded generator, in both wire versions where both exist.
// Extends the oracle_property_test.cc style to the serialization layer.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "protocol/envelope.h"
#include "protocol/flat_protocol.h"
#include "protocol/haar_protocol.h"
#include "protocol/oracle_wire.h"
#include "protocol/tree_protocol.h"
#include "protocol/wire.h"

namespace ldp {
namespace {

using protocol::kWireVersionV1;
using protocol::kWireVersionV2;
using protocol::MechanismTag;
using protocol::ParseError;

constexpr int kTrials = 200;

// Random protocol parameters with wide dynamic range: D in [2, 2^20],
// eps in (0, ~8].
struct RandomParams {
  uint64_t domain;
  double eps;
};

RandomParams DrawParams(Rng& rng) {
  uint64_t domain = 2 + rng.UniformInt((uint64_t{1} << 20) - 2);
  double eps = 0.05 + 8.0 * rng.UniformDouble();
  return {domain, eps};
}

TEST(WireProperty, FlatHrrRoundTripIdentity) {
  Rng rng(1001);
  for (int t = 0; t < kTrials; ++t) {
    RandomParams p = DrawParams(rng);
    protocol::FlatHrrClient client(p.domain, p.eps);
    uint64_t value = rng.UniformInt(p.domain);
    HrrReport report = client.Encode(value, rng);
    for (uint8_t version : {kWireVersionV1, kWireVersionV2}) {
      std::vector<uint8_t> bytes =
          protocol::SerializeHrrReport(report, version);
      HrrReport back;
      ASSERT_EQ(protocol::ParseHrrReportDetailed(bytes, &back),
                ParseError::kOk)
          << "trial " << t << " version " << int(version);
      EXPECT_EQ(back.coefficient_index, report.coefficient_index);
      EXPECT_EQ(back.sign, report.sign);
    }
  }
}

TEST(WireProperty, HaarHrrRoundTripIdentity) {
  Rng rng(1002);
  for (int t = 0; t < kTrials; ++t) {
    RandomParams p = DrawParams(rng);
    protocol::HaarHrrClient client(p.domain, p.eps);
    uint64_t value = rng.UniformInt(p.domain);
    protocol::HaarHrrReport report = client.Encode(value, rng);
    for (uint8_t version : {kWireVersionV1, kWireVersionV2}) {
      std::vector<uint8_t> bytes =
          protocol::SerializeHaarHrrReport(report, version);
      protocol::HaarHrrReport back;
      ASSERT_EQ(protocol::ParseHaarHrrReportDetailed(bytes, &back),
                ParseError::kOk)
          << "trial " << t << " version " << int(version);
      EXPECT_EQ(back.level, report.level);
      EXPECT_EQ(back.inner.coefficient_index,
                report.inner.coefficient_index);
      EXPECT_EQ(back.inner.sign, report.inner.sign);
    }
  }
}

TEST(WireProperty, TreeHrrRoundTripIdentity) {
  Rng rng(1003);
  for (int t = 0; t < kTrials; ++t) {
    RandomParams p = DrawParams(rng);
    uint64_t fanout = 2 + rng.UniformInt(15);
    protocol::TreeHrrClient client(p.domain, fanout, p.eps);
    uint64_t value = rng.UniformInt(p.domain);
    protocol::TreeHrrReport report = client.Encode(value, rng);
    for (uint8_t version : {kWireVersionV1, kWireVersionV2}) {
      std::vector<uint8_t> bytes =
          protocol::SerializeTreeHrrReport(report, version);
      protocol::TreeHrrReport back;
      ASSERT_EQ(protocol::ParseTreeHrrReportDetailed(bytes, &back),
                ParseError::kOk)
          << "trial " << t << " version " << int(version);
      EXPECT_EQ(back.level, report.level);
      EXPECT_EQ(back.inner.coefficient_index,
                report.inner.coefficient_index);
      EXPECT_EQ(back.inner.sign, report.inner.sign);
    }
  }
}

TEST(WireProperty, GrrRoundTripIdentity) {
  Rng rng(2001);
  for (int t = 0; t < kTrials; ++t) {
    RandomParams p = DrawParams(rng);
    uint64_t value = rng.UniformInt(p.domain);
    protocol::GrrWireReport report =
        protocol::EncodeGrrReport(p.domain, p.eps, value, rng);
    EXPECT_LT(report.value, p.domain);
    protocol::GrrWireReport back;
    ASSERT_EQ(protocol::ParseGrrReport(protocol::SerializeGrrReport(report),
                                       &back),
              ParseError::kOk)
        << "trial " << t;
    EXPECT_EQ(back, report);
  }
}

TEST(WireProperty, OueRoundTripIdentity) {
  Rng rng(2002);
  for (int t = 0; t < kTrials; ++t) {
    // Smaller domains: OUE reports are D bits each.
    uint64_t domain = 1 + rng.UniformInt(uint64_t{1} << 12);
    double eps = 0.05 + 8.0 * rng.UniformDouble();
    uint64_t value = rng.UniformInt(domain);
    protocol::UnaryWireReport report =
        protocol::EncodeOueReport(domain, eps, value, rng);
    EXPECT_EQ(report.num_bits, domain);
    protocol::UnaryWireReport back;
    ASSERT_EQ(protocol::ParseUnaryReport(
                  MechanismTag::kOue,
                  protocol::SerializeUnaryReport(MechanismTag::kOue, report),
                  &back),
              ParseError::kOk)
        << "trial " << t;
    EXPECT_EQ(back, report);
  }
}

TEST(WireProperty, SueRoundTripIdentity) {
  Rng rng(2003);
  for (int t = 0; t < kTrials; ++t) {
    uint64_t domain = 1 + rng.UniformInt(uint64_t{1} << 12);
    double eps = 0.05 + 8.0 * rng.UniformDouble();
    uint64_t value = rng.UniformInt(domain);
    protocol::UnaryWireReport report =
        protocol::EncodeSueReport(domain, eps, value, rng);
    protocol::UnaryWireReport back;
    ASSERT_EQ(protocol::ParseUnaryReport(
                  MechanismTag::kSue,
                  protocol::SerializeUnaryReport(MechanismTag::kSue, report),
                  &back),
              ParseError::kOk)
        << "trial " << t;
    EXPECT_EQ(back, report);
  }
}

TEST(WireProperty, OueAndSueEnvelopesDoNotCrossParse) {
  Rng rng(2004);
  protocol::UnaryWireReport report =
      protocol::EncodeOueReport(64, 1.0, 7, rng);
  std::vector<uint8_t> bytes =
      protocol::SerializeUnaryReport(MechanismTag::kOue, report);
  protocol::UnaryWireReport back;
  EXPECT_EQ(protocol::ParseUnaryReport(MechanismTag::kSue, bytes, &back),
            ParseError::kBadPayload);
}

TEST(WireProperty, OlhRoundTripIdentity) {
  Rng rng(2005);
  for (int t = 0; t < kTrials; ++t) {
    RandomParams p = DrawParams(rng);
    uint64_t value = rng.UniformInt(p.domain);
    protocol::OlhWireReport report =
        protocol::EncodeOlhReport(p.domain, p.eps, value, rng);
    protocol::OlhWireReport back;
    ASSERT_EQ(protocol::ParseOlhReport(protocol::SerializeOlhReport(report),
                                       &back),
              ParseError::kOk)
        << "trial " << t;
    EXPECT_EQ(back, report);
  }
}

TEST(WireProperty, VarintRoundTripIdentity) {
  Rng rng(3001);
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                  (uint64_t{1} << 63) - 1,
                                  uint64_t{1} << 63, UINT64_MAX};
  for (int t = 0; t < 500; ++t) {
    // Bias toward small values but cover the full width.
    int shift = static_cast<int>(rng.UniformInt(64));
    values.push_back(rng.Next() >> shift);
  }
  for (uint64_t v : values) {
    std::vector<uint8_t> buf;
    protocol::AppendVarU64(buf, v);
    EXPECT_LE(buf.size(), 10u);
    protocol::WireReader reader(buf);
    uint64_t back = 0;
    ASSERT_TRUE(reader.ReadVarU64(&back)) << v;
    EXPECT_TRUE(reader.AtEnd()) << v;
    EXPECT_EQ(back, v);
  }
}

// Batch framing: the serialized batch must decode to exactly the reports
// the unserialized EncodeUsers path produces for the same Rng stream,
// and a server fed the framed bytes must end up in a bit-identical state
// to one fed the structs.
TEST(WireProperty, FlatBatchRoundTripMatchesEncodeUsers) {
  Rng rng_a(4001);
  Rng rng_b(4001);
  protocol::FlatHrrClient client(300, 1.1);
  std::vector<uint64_t> values;
  Rng vals(1);
  for (int i = 0; i < 500; ++i) values.push_back(vals.UniformInt(300));

  std::vector<HrrReport> direct = client.EncodeUsers(values, rng_a);
  std::vector<uint8_t> framed = client.EncodeUsersSerialized(values, rng_b);

  std::vector<HrrReport> parsed;
  uint64_t malformed = 7;
  ASSERT_EQ(protocol::ParseHrrReportBatch(framed, &parsed, &malformed),
            ParseError::kOk);
  EXPECT_EQ(malformed, 0u);
  ASSERT_EQ(parsed.size(), direct.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].coefficient_index, direct[i].coefficient_index);
    EXPECT_EQ(parsed[i].sign, direct[i].sign);
  }

  protocol::FlatHrrServer from_structs(300, 1.1);
  protocol::FlatHrrServer from_wire(300, 1.1);
  EXPECT_EQ(from_structs.AbsorbBatch(direct), direct.size());
  uint64_t accepted = 0;
  ASSERT_EQ(from_wire.AbsorbBatchSerialized(framed, &accepted),
            ParseError::kOk);
  EXPECT_EQ(accepted, direct.size());
  from_structs.Finalize();
  from_wire.Finalize();
  for (uint64_t a = 0; a < 300; a += 37) {
    EXPECT_DOUBLE_EQ(from_wire.RangeQuery(a, 299),
                     from_structs.RangeQuery(a, 299));
  }
}

TEST(WireProperty, HaarBatchRoundTripMatchesEncodeUsers) {
  Rng rng_a(4002);
  Rng rng_b(4002);
  protocol::HaarHrrClient client(256, 0.8);
  std::vector<uint64_t> values;
  Rng vals(2);
  for (int i = 0; i < 500; ++i) values.push_back(vals.UniformInt(256));

  std::vector<protocol::HaarHrrReport> direct =
      client.EncodeUsers(values, rng_a);
  std::vector<uint8_t> framed = client.EncodeUsersSerialized(values, rng_b);

  protocol::HaarHrrServer from_structs(256, 0.8);
  protocol::HaarHrrServer from_wire(256, 0.8);
  EXPECT_EQ(from_structs.AbsorbBatch(direct), direct.size());
  uint64_t accepted = 0;
  ASSERT_EQ(from_wire.AbsorbBatchSerialized(framed, &accepted),
            ParseError::kOk);
  EXPECT_EQ(accepted, direct.size());
  from_structs.Finalize();
  from_wire.Finalize();
  for (uint64_t a = 0; a < 256; a += 31) {
    EXPECT_DOUBLE_EQ(from_wire.RangeQuery(a, 255),
                     from_structs.RangeQuery(a, 255));
  }
}

TEST(WireProperty, TreeBatchRoundTripMatchesEncodeUsers) {
  Rng rng_a(4003);
  Rng rng_b(4003);
  protocol::TreeHrrClient client(256, 4, 1.1);
  std::vector<uint64_t> values;
  Rng vals(3);
  for (int i = 0; i < 500; ++i) values.push_back(vals.UniformInt(256));

  std::vector<protocol::TreeHrrReport> direct =
      client.EncodeUsers(values, rng_a);
  std::vector<uint8_t> framed = client.EncodeUsersSerialized(values, rng_b);

  protocol::TreeHrrServer from_structs(256, 4, 1.1);
  protocol::TreeHrrServer from_wire(256, 4, 1.1);
  EXPECT_EQ(from_structs.AbsorbBatch(direct), direct.size());
  uint64_t accepted = 0;
  ASSERT_EQ(from_wire.AbsorbBatchSerialized(framed, &accepted),
            ParseError::kOk);
  EXPECT_EQ(accepted, direct.size());
  from_structs.Finalize();
  from_wire.Finalize();
  for (uint64_t a = 0; a < 256; a += 31) {
    EXPECT_DOUBLE_EQ(from_wire.RangeQuery(a, 255),
                     from_structs.RangeQuery(a, 255));
  }
}

// Version negotiation: a v2 client downgrades to a v1-only server and
// its reports still land; disjoint version sets fail loudly.
TEST(WireProperty, VersionNegotiationDowngradesAndRefuses) {
  protocol::FlatHrrClient client(64, 1.0);
  EXPECT_EQ(client.wire_version(), kWireVersionV2);

  // Default negotiation against this build's servers picks v2.
  protocol::FlatHrrServer version_probe(64, 1.0);
  ASSERT_TRUE(client.NegotiateWireVersion(version_probe.AcceptedWireVersions()));
  EXPECT_EQ(client.wire_version(), kWireVersionV2);

  // Old server that only accepts v1: downgrade.
  const uint8_t v1_only[] = {kWireVersionV1};
  ASSERT_TRUE(client.NegotiateWireVersion(v1_only));
  EXPECT_EQ(client.wire_version(), kWireVersionV1);
  Rng rng(7);
  protocol::FlatHrrServer server(64, 1.0);
  std::vector<uint8_t> report = client.EncodeSerialized(9, rng);
  EXPECT_EQ(report.size(), 10u);  // legacy framing
  EXPECT_TRUE(server.AbsorbSerialized(report));

  // Hypothetical future server that dropped every version we speak.
  const uint8_t v9_only[] = {9};
  EXPECT_FALSE(client.NegotiateWireVersion(v9_only));
  EXPECT_EQ(client.wire_version(), kWireVersionV1);  // unchanged

  const uint8_t kNegotiable[] = {kWireVersionV1, kWireVersionV2};
  EXPECT_EQ(protocol::NegotiateWireVersion(kNegotiable, v9_only), 0);
  EXPECT_EQ(protocol::NegotiateWireVersion(kNegotiable, kNegotiable),
            kWireVersionV2);
}

TEST(WireProperty, TreeAndHaarClientsNegotiateToo) {
  const uint8_t v1_only[] = {kWireVersionV1};
  protocol::TreeHrrClient tree(64, 2, 1.0);
  ASSERT_TRUE(tree.NegotiateWireVersion(v1_only));
  EXPECT_EQ(tree.wire_version(), kWireVersionV1);
  protocol::HaarHrrClient haar(64, 1.0);
  ASSERT_TRUE(haar.NegotiateWireVersion(v1_only));
  EXPECT_EQ(haar.wire_version(), kWireVersionV1);
  Rng rng(8);
  EXPECT_EQ(tree.EncodeSerialized(1, rng).size(), 11u);
  EXPECT_EQ(haar.EncodeSerialized(1, rng).size(), 11u);
}

}  // namespace
}  // namespace ldp
