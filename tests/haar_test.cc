#include "core/haar.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "common/random.h"

namespace ldp {
namespace {

TEST(Haar, ForwardOfConstantVectorHasOnlyAverage) {
  std::vector<double> x(8, 0.125);
  HaarCoefficients c = HaarForward(x);
  EXPECT_EQ(c.height, 3u);
  EXPECT_NEAR(c.average, 1.0 / std::sqrt(8.0), 1e-12);
  for (const auto& level : c.detail) {
    for (double d : level) {
      EXPECT_NEAR(d, 0.0, 1e-12);
    }
  }
}

TEST(Haar, MatchesPaperScalingForOneHot) {
  // For e_z the level-l coefficient is +/- 2^{-l/2} at block z >> l
  // (paper Section 4.6: "exactly one non-zero haar coefficient at each
  // level l with value +/- 1/2^{l/2}").
  const size_t d = 16;
  for (uint64_t z = 0; z < d; ++z) {
    std::vector<double> x(d, 0.0);
    x[z] = 1.0;
    HaarCoefficients c = HaarForward(x);
    for (uint32_t l = 1; l <= c.height; ++l) {
      HaarUserCoefficient view = HaarUserView(z, l);
      for (size_t k = 0; k < c.detail[l - 1].size(); ++k) {
        double expected = 0.0;
        if (k == view.block) {
          expected = view.sign * std::exp2(-0.5 * static_cast<double>(l));
        }
        EXPECT_NEAR(c.detail[l - 1][k], expected, 1e-12)
            << "z=" << z << " l=" << l << " k=" << k;
      }
    }
  }
}

TEST(Haar, RoundTripIsIdentity) {
  Rng rng(1);
  for (size_t d : {1ull, 2ull, 8ull, 64ull, 256ull}) {
    std::vector<double> x(d);
    for (double& v : x) {
      v = rng.Gaussian();
    }
    std::vector<double> back = HaarInverse(HaarForward(x));
    ASSERT_EQ(back.size(), d);
    for (size_t i = 0; i < d; ++i) {
      EXPECT_NEAR(back[i], x[i], 1e-10);
    }
  }
}

TEST(Haar, OrthonormalEnergyPreservation) {
  Rng rng(2);
  const size_t d = 64;
  std::vector<double> x(d);
  double energy = 0.0;
  for (double& v : x) {
    v = rng.Gaussian();
    energy += v * v;
  }
  HaarCoefficients c = HaarForward(x);
  double spectral = c.average * c.average;
  for (const auto& level : c.detail) {
    for (double v : level) {
      spectral += v * v;
    }
  }
  EXPECT_NEAR(spectral, energy, 1e-9 * energy);
}

TEST(Haar, UserViewSignsSplitBlocksInHalf) {
  // At level l the block of z has length 2^l; the left half is +1.
  EXPECT_EQ(HaarUserView(0, 1).sign, +1);
  EXPECT_EQ(HaarUserView(1, 1).sign, -1);
  EXPECT_EQ(HaarUserView(0, 1).block, 0u);
  EXPECT_EQ(HaarUserView(5, 1).block, 2u);
  EXPECT_EQ(HaarUserView(5, 2).sign, +1);  // block [4,7], 5 in left half
  EXPECT_EQ(HaarUserView(6, 2).sign, -1);  // block [4,7], 6 in right half
  EXPECT_EQ(HaarUserView(4, 3).sign, -1);
  EXPECT_EQ(HaarUserView(3, 3).sign, +1);
}

TEST(Haar, RangeWeightViaBruteForce) {
  // The weight of coefficient (l,k) in range [a,b] must equal the sum over
  // leaves z in [a,b] of that coefficient's contribution to e_z.
  const size_t d = 32;
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    uint64_t x = rng.UniformInt(d);
    uint64_t y = rng.UniformInt(d);
    uint64_t a = std::min(x, y);
    uint64_t b = std::max(x, y);
    // Brute force: sum Haar forward transforms of each basis vector.
    std::vector<double> indicator(d, 0.0);
    for (uint64_t z = a; z <= b; ++z) {
      indicator[z] = 1.0;
    }
    HaarCoefficients truth = HaarForward(indicator);
    for (uint32_t l = 1; l <= truth.height; ++l) {
      for (uint64_t k = 0; k < truth.detail[l - 1].size(); ++k) {
        EXPECT_NEAR(HaarRangeWeight(l, k, a, b), truth.detail[l - 1][k],
                    1e-10)
            << "l=" << l << " k=" << k << " [" << a << "," << b << "]";
      }
    }
  }
}

TEST(Haar, RangeWeightZeroForContainedOrDisjointBlocks) {
  // Fully covered and fully disjoint blocks contribute nothing — the
  // sparsity that bounds HaarHRR's query cost at 2 coefficients per level.
  EXPECT_DOUBLE_EQ(HaarRangeWeight(2, 0, 0, 3), 0.0);   // block [0,3] inside
  EXPECT_DOUBLE_EQ(HaarRangeWeight(2, 1, 0, 3), 0.0);   // block [4,7] outside
  EXPECT_NE(HaarRangeWeight(2, 0, 0, 2), 0.0);          // cut block
}

TEST(Haar, SingleElementTransform) {
  std::vector<double> x = {0.75};
  HaarCoefficients c = HaarForward(x);
  EXPECT_EQ(c.height, 0u);
  EXPECT_DOUBLE_EQ(c.average, 0.75);
  std::vector<double> back = HaarInverse(c);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_DOUBLE_EQ(back[0], 0.75);
}

}  // namespace
}  // namespace ldp
