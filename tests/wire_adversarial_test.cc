// Adversarial parser tests: the decode path must be *total* — for every
// prefix truncation, every single-bit corruption, and forged lengths up
// to UINT32_MAX, each parser returns a clean ParseError (or a valid
// in-spec report) and never reads out of bounds. The asan CTest preset
// runs this suite under ASan+UBSan, which is what turns "never reads
// OOB" from a comment into a checked property.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "protocol/envelope.h"
#include "protocol/flat_protocol.h"
#include "protocol/haar_protocol.h"
#include "protocol/oracle_wire.h"
#include "protocol/tree_protocol.h"
#include "protocol/wire.h"

namespace ldp {
namespace {

using protocol::Envelope;
using protocol::MechanismTag;
using protocol::ParseError;

// One parser under attack: returns kOk/err and, via `validate`, asserts
// the parsed result is in-spec whenever it claims kOk.
struct ParserUnderTest {
  std::string name;
  std::vector<uint8_t> valid_message;
  std::function<ParseError(std::span<const uint8_t>)> parse;
};

std::vector<ParserUnderTest> AllParsers() {
  std::vector<ParserUnderTest> parsers;
  Rng rng(42);

  protocol::FlatHrrClient flat(64, 1.0);
  parsers.push_back(
      {"flat_v2", flat.EncodeSerialized(7, rng),
       [](std::span<const uint8_t> bytes) {
         HrrReport r;
         ParseError err = protocol::ParseHrrReportDetailed(bytes, &r);
         if (err == ParseError::kOk) {
           EXPECT_TRUE(r.sign == 1 || r.sign == -1);
         }
         return err;
       }});
  flat.set_wire_version(protocol::kWireVersionV1);
  parsers.push_back(
      {"flat_v1", flat.EncodeSerialized(7, rng),
       [](std::span<const uint8_t> bytes) {
         HrrReport r;
         return protocol::ParseHrrReportDetailed(bytes, &r);
       }});

  protocol::HaarHrrClient haar(64, 1.0);
  parsers.push_back(
      {"haar_v2", haar.EncodeSerialized(20, rng),
       [](std::span<const uint8_t> bytes) {
         protocol::HaarHrrReport r;
         ParseError err = protocol::ParseHaarHrrReportDetailed(bytes, &r);
         if (err == ParseError::kOk) {
           EXPECT_GE(r.level, 1u);
           EXPECT_TRUE(r.inner.sign == 1 || r.inner.sign == -1);
         }
         return err;
       }});

  protocol::TreeHrrClient tree(128, 4, 1.0);
  parsers.push_back(
      {"tree_v2", tree.EncodeSerialized(100, rng),
       [](std::span<const uint8_t> bytes) {
         protocol::TreeHrrReport r;
         ParseError err = protocol::ParseTreeHrrReportDetailed(bytes, &r);
         if (err == ParseError::kOk) {
           EXPECT_GE(r.level, 1u);
         }
         return err;
       }});

  std::vector<uint64_t> values = {1, 5, 60, 33, 2};
  parsers.push_back(
      {"flat_batch",
       protocol::FlatHrrClient(64, 1.0).EncodeUsersSerialized(values, rng),
       [](std::span<const uint8_t> bytes) {
         std::vector<HrrReport> rs;
         uint64_t malformed = 0;
         ParseError err =
             protocol::ParseHrrReportBatch(bytes, &rs, &malformed);
         if (err == ParseError::kOk) {
           for (const HrrReport& r : rs) {
             EXPECT_TRUE(r.sign == 1 || r.sign == -1);
           }
         }
         return err;
       }});
  parsers.push_back(
      {"tree_batch",
       protocol::TreeHrrClient(128, 4, 1.0)
           .EncodeUsersSerialized(values, rng),
       [](std::span<const uint8_t> bytes) {
         std::vector<protocol::TreeHrrReport> rs;
         return protocol::ParseTreeHrrReportBatch(bytes, &rs);
       }});
  parsers.push_back(
      {"haar_batch",
       protocol::HaarHrrClient(64, 1.0).EncodeUsersSerialized(values, rng),
       [](std::span<const uint8_t> bytes) {
         std::vector<protocol::HaarHrrReport> rs;
         return protocol::ParseHaarHrrReportBatch(bytes, &rs);
       }});

  parsers.push_back(
      {"grr",
       protocol::SerializeGrrReport(
           protocol::EncodeGrrReport(256, 1.0, 37, rng)),
       [](std::span<const uint8_t> bytes) {
         protocol::GrrWireReport r;
         return protocol::ParseGrrReport(bytes, &r);
       }});
  parsers.push_back(
      {"oue",
       protocol::SerializeUnaryReport(
           MechanismTag::kOue, protocol::EncodeOueReport(100, 1.0, 42, rng)),
       [](std::span<const uint8_t> bytes) {
         protocol::UnaryWireReport r;
         ParseError err =
             protocol::ParseUnaryReport(MechanismTag::kOue, bytes, &r);
         if (err == ParseError::kOk) {
           EXPECT_EQ(r.packed.size(), (r.num_bits + 7) / 8);
         }
         return err;
       }});
  parsers.push_back(
      {"sue",
       protocol::SerializeUnaryReport(
           MechanismTag::kSue, protocol::EncodeSueReport(100, 1.0, 17, rng)),
       [](std::span<const uint8_t> bytes) {
         protocol::UnaryWireReport r;
         return protocol::ParseUnaryReport(MechanismTag::kSue, bytes, &r);
       }});
  parsers.push_back(
      {"olh",
       protocol::SerializeOlhReport(
           protocol::EncodeOlhReport(256, 1.0, 99, rng)),
       [](std::span<const uint8_t> bytes) {
         protocol::OlhWireReport r;
         return protocol::ParseOlhReport(bytes, &r);
       }});
  return parsers;
}

TEST(WireAdversarial, ValidMessagesParse) {
  for (const ParserUnderTest& p : AllParsers()) {
    EXPECT_EQ(p.parse(p.valid_message), ParseError::kOk) << p.name;
  }
}

TEST(WireAdversarial, TruncationAtEveryByteOffsetFailsCleanly) {
  for (const ParserUnderTest& p : AllParsers()) {
    for (size_t len = 0; len < p.valid_message.size(); ++len) {
      std::vector<uint8_t> cut(p.valid_message.begin(),
                               p.valid_message.begin() + len);
      EXPECT_NE(p.parse(cut), ParseError::kOk)
          << p.name << " truncated to " << len;
    }
  }
}

TEST(WireAdversarial, BitFlipSweepNeverCrashesOrEmitsOutOfSpec) {
  // Every single-bit corruption of every valid message either still
  // parses (to an in-spec report — the lambdas assert that) or fails
  // with a clean error. Under ASan this also proves no flip drives an
  // OOB read.
  for (const ParserUnderTest& p : AllParsers()) {
    for (size_t byte = 0; byte < p.valid_message.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<uint8_t> mutated = p.valid_message;
        mutated[byte] ^= uint8_t{1} << bit;
        (void)p.parse(mutated);
      }
    }
  }
}

TEST(WireAdversarial, ForgedPayloadLengthsNearUint32MaxFailCleanly) {
  // An 8-byte header claiming up to 4 GiB of payload, followed by almost
  // nothing: must return kLengthMismatch without touching (or
  // allocating) the claimed length.
  for (uint32_t claimed :
       {UINT32_MAX, UINT32_MAX - 1, UINT32_MAX - 7, UINT32_MAX / 2,
        uint32_t{1} << 24}) {
    std::vector<uint8_t> msg;
    protocol::AppendEnvelopeHeader(msg, MechanismTag::kFlatHrr, claimed);
    msg.push_back(0xAB);  // 1 byte present vs ~4 GiB claimed
    Envelope env;
    EXPECT_EQ(protocol::DecodeEnvelope(msg, &env),
              ParseError::kLengthMismatch)
        << claimed;
    for (const ParserUnderTest& p : AllParsers()) {
      std::vector<uint8_t> retagged = msg;
      retagged[3] = p.valid_message.size() > 3 ? p.valid_message[3]
                                               : retagged[3];
      EXPECT_NE(p.parse(retagged), ParseError::kOk) << p.name;
    }
  }
}

TEST(WireAdversarial, BatchCountCannotBeInflated) {
  // count varint claims 2^61 items (so count * item_size wraps around
  // 2^64): the overflow guard must reject before any reserve happens.
  std::vector<uint8_t> payload;
  protocol::AppendVarU64(payload, uint64_t{1} << 61);
  for (int i = 0; i < 32; ++i) payload.push_back(0);
  std::vector<uint8_t> msg =
      protocol::EncodeEnvelope(MechanismTag::kFlatHrrBatch, payload);
  std::vector<HrrReport> reports;
  EXPECT_EQ(protocol::ParseHrrReportBatch(msg, &reports),
            ParseError::kBadPayload);
  EXPECT_TRUE(reports.empty());
}

TEST(WireAdversarial, BatchWithMalformedItemsSkipsAndCounts) {
  Rng rng(5);
  protocol::FlatHrrClient client(64, 1.0);
  std::vector<uint64_t> values = {1, 2, 3, 4};
  std::vector<uint8_t> msg = client.EncodeUsersSerialized(values, rng);
  // Corrupt the sign byte of the second item: varint count "4" is 1
  // byte, items are 9 bytes each, sign is each item's last byte.
  size_t second_sign = protocol::kEnvelopeHeaderSize + 1 + 2 * 9 - 1;
  msg[second_sign] = 0x55;
  std::vector<HrrReport> reports;
  uint64_t malformed = 0;
  ASSERT_EQ(protocol::ParseHrrReportBatch(msg, &reports, &malformed),
            ParseError::kOk);
  EXPECT_EQ(reports.size(), 3u);
  EXPECT_EQ(malformed, 1u);

  protocol::FlatHrrServer server(64, 1.0);
  uint64_t accepted = 0;
  ASSERT_EQ(server.AbsorbBatchSerialized(msg, &accepted), ParseError::kOk);
  EXPECT_EQ(accepted, 3u);
  EXPECT_EQ(server.accepted_reports(), 3u);
  EXPECT_EQ(server.rejected_reports(), 1u);
}

TEST(WireAdversarial, UnaryBitCountMustMatchPackedBytes) {
  // num_bits inconsistent with the packed length (including values that
  // make num_bits + 7 wrap) must be kBadPayload.
  for (uint64_t claimed_bits :
       {uint64_t{9}, uint64_t{0}, UINT64_MAX, UINT64_MAX - 6}) {
    std::vector<uint8_t> payload;
    protocol::AppendVarU64(payload, claimed_bits);
    std::vector<uint8_t> packed = {0xFF};  // 1 byte = at most 8 bits
    protocol::AppendLengthPrefixedBytes(payload, packed);
    std::vector<uint8_t> msg =
        protocol::EncodeEnvelope(MechanismTag::kOue, payload);
    protocol::UnaryWireReport report;
    EXPECT_EQ(protocol::ParseUnaryReport(MechanismTag::kOue, msg, &report),
              ParseError::kBadPayload)
        << claimed_bits;
  }
}

TEST(WireAdversarial, UnaryPaddingBitsMustBeZero) {
  std::vector<uint8_t> payload;
  protocol::AppendVarU64(payload, 5);       // 5 bits
  std::vector<uint8_t> packed = {0xE5};     // bits 5..7 nonzero
  protocol::AppendLengthPrefixedBytes(payload, packed);
  std::vector<uint8_t> msg =
      protocol::EncodeEnvelope(MechanismTag::kOue, payload);
  protocol::UnaryWireReport report;
  EXPECT_EQ(protocol::ParseUnaryReport(MechanismTag::kOue, msg, &report),
            ParseError::kBadPayload);
}

TEST(WireAdversarial, ServersSurviveRandomJunkStorm) {
  // End-to-end robustness: ~50k junk buffers of every length through the
  // full absorb path (both single and batch) — rejection counts move,
  // nothing crashes, service continues.
  Rng rng(99);
  protocol::FlatHrrServer flat(64, 1.0);
  protocol::HaarHrrServer haar(64, 1.0);
  protocol::TreeHrrServer tree(128, 4, 1.0);
  for (int i = 0; i < 50000; ++i) {
    size_t len = rng.UniformInt(64);
    std::vector<uint8_t> junk(len);
    for (uint8_t& b : junk) {
      b = static_cast<uint8_t>(rng.UniformInt(256));
    }
    // Half the storm gets a valid-looking envelope head so it reaches
    // the payload parsers instead of dying on the magic check.
    if (i % 2 == 0 && junk.size() >= 4) {
      junk[0] = protocol::kEnvelopeMagic0;
      junk[1] = protocol::kEnvelopeMagic1;
      junk[2] = protocol::kWireVersionV2;
    }
    flat.AbsorbSerialized(junk);
    haar.AbsorbSerialized(junk);
    tree.AbsorbSerialized(junk);
    flat.AbsorbBatchSerialized(junk);
    haar.AbsorbBatchSerialized(junk);
    tree.AbsorbBatchSerialized(junk);
  }
  EXPECT_GT(flat.rejected_reports(), 0u);
  flat.Finalize();
  haar.Finalize();
  tree.Finalize();
  EXPECT_TRUE(std::isfinite(flat.RangeQuery(0, 63)));
  EXPECT_TRUE(std::isfinite(haar.RangeQuery(0, 63)));
  EXPECT_TRUE(std::isfinite(tree.RangeQuery(0, 127)));
}

TEST(WireAdversarial, EnvelopeErrorCodesAreSpecific) {
  Rng rng(3);
  protocol::FlatHrrClient client(64, 1.0);
  std::vector<uint8_t> good = client.EncodeSerialized(7, rng);
  Envelope env;

  std::vector<uint8_t> short_header(good.begin(), good.begin() + 5);
  EXPECT_EQ(protocol::DecodeEnvelope(short_header, &env),
            ParseError::kTruncated);

  std::vector<uint8_t> bad_magic = good;
  bad_magic[1] = 0x00;
  EXPECT_EQ(protocol::DecodeEnvelope(bad_magic, &env),
            ParseError::kBadMagic);

  std::vector<uint8_t> future = good;
  future[2] = 9;
  EXPECT_EQ(protocol::DecodeEnvelope(future, &env),
            ParseError::kUnsupportedVersion);

  std::vector<uint8_t> unknown = good;
  unknown[3] = 0x6E;
  EXPECT_EQ(protocol::DecodeEnvelope(unknown, &env),
            ParseError::kUnknownMechanism);

  std::vector<uint8_t> trailing = good;
  trailing.push_back(0);
  EXPECT_EQ(protocol::DecodeEnvelope(trailing, &env),
            ParseError::kTrailingJunk);

  std::vector<uint8_t> shortened = good;
  shortened.pop_back();
  EXPECT_EQ(protocol::DecodeEnvelope(shortened, &env),
            ParseError::kLengthMismatch);

  EXPECT_EQ(protocol::DecodeEnvelope(good, &env), ParseError::kOk);
  EXPECT_EQ(env.mechanism, MechanismTag::kFlatHrr);
  EXPECT_EQ(env.payload.size(), 9u);

  // Names are stable identifiers for logs.
  EXPECT_EQ(protocol::ParseErrorName(ParseError::kOk), "ok");
  EXPECT_EQ(protocol::ParseErrorName(ParseError::kBadMagic), "bad_magic");
  EXPECT_EQ(protocol::ParseErrorName(ParseError::kTrailingJunk),
            "trailing_junk");
  EXPECT_EQ(protocol::MechanismTagName(MechanismTag::kFlatHrrBatch),
            "FlatHrrBatch");
}

}  // namespace
}  // namespace ldp
