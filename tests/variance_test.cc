#include "core/variance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "frequency/frequency_oracle.h"

namespace ldp {
namespace {

constexpr double kEps = 1.1;
constexpr double kN = 1 << 20;

TEST(Variance, FlatBoundsMatchFormulas) {
  double vf = OracleVariance(kEps, kN);
  EXPECT_DOUBLE_EQ(FlatRangeVarianceBound(1, kEps, kN), vf);
  EXPECT_DOUBLE_EQ(FlatRangeVarianceBound(100, kEps, kN), 100 * vf);
  EXPECT_DOUBLE_EQ(FlatAverageVarianceBound(256, kEps, kN),
                   (256.0 + 2.0) / 3.0 * vf);
}

TEST(Variance, HhBoundMatchesEq1) {
  // (2B-1) * h * (ceil(log_B r) + 1) * V_F for D=2^16, B=4, r=256:
  // h = 8, alpha = 4 + 1.
  double vf = OracleVariance(kEps, kN);
  EXPECT_NEAR(HhRangeVarianceBound(1 << 16, 4, 256, kEps, kN),
              7.0 * 8.0 * 5.0 * vf, 1e-9 * vf);
}

TEST(Variance, HhConsistentBoundMatchesEq2) {
  // Eq. (2): with B = 8 the bound collapses to
  // (1/2) V_F log2(r) log2(D).
  double vf = OracleVariance(kEps, kN);
  uint64_t d = 1 << 16;
  uint64_t r = 1 << 10;
  double expected = 0.5 * vf * 10.0 * 16.0;
  EXPECT_NEAR(HhConsistentRangeVarianceBound(d, 8, r, kEps, kN), expected,
              1e-9 * expected);
}

TEST(Variance, HaarBoundMatchesEq3) {
  double vf = OracleVariance(kEps, kN);
  uint64_t d = 1 << 16;
  EXPECT_NEAR(HaarRangeVarianceBound(d, kEps, kN), 0.5 * 256.0 * vf,
              1e-9 * vf);
}

TEST(Variance, Eq2AndEq3CoincideForLongQueries) {
  // The paper: "for long range queries where r is close to D, (3) will be
  // close to (2)" — with B = 8 and r = D they are equal.
  double vf = OracleVariance(kEps, kN);
  uint64_t d = 1 << 16;
  double hh = HhConsistentRangeVarianceBound(d, 8, d, kEps, kN);
  double haar = HaarRangeVarianceBound(d, kEps, kN);
  EXPECT_NEAR(hh / haar, 1.0, 1e-9);
  (void)vf;
}

TEST(Variance, PrefixFactorIsHalf) {
  EXPECT_DOUBLE_EQ(PrefixVarianceFactor(), 0.5);
}

TEST(Variance, OptimalBranchingFactorsMatchPaper) {
  // Section 4.4: B ~ 4.922 without consistency; Section 4.5: B ~ 9.18
  // with consistency.
  EXPECT_NEAR(OptimalBranchingFactor(false), 4.922, 0.005);
  EXPECT_NEAR(OptimalBranchingFactor(true), 9.18, 0.01);
}

TEST(Variance, OptimalBranchingFactorsAreStationaryPoints) {
  // The derivative factors from the paper: B ln B - 2B + 2 (no CI) and
  // B ln B - 2B - 2 (CI) must vanish at the returned optimum.
  double b0 = OptimalBranchingFactor(false);
  EXPECT_NEAR(b0 * std::log(b0) - 2 * b0 + 2, 0.0, 1e-9);
  double b1 = OptimalBranchingFactor(true);
  EXPECT_NEAR(b1 * std::log(b1) - 2 * b1 - 2, 0.0, 1e-9);
}

TEST(Variance, HierarchicalBeatsFlatForLongRanges) {
  // Paper Section 4.4: HH wins when r > 2 B log_B^2 D. Check both sides
  // of that threshold at D = 2^16, B = 4.
  uint64_t d = 1 << 16;
  uint64_t threshold_r = 1 << 11;  // comfortably above 2*4*8^2 = 512
  EXPECT_LT(HhRangeVarianceBound(d, 4, threshold_r, kEps, kN),
            FlatRangeVarianceBound(threshold_r, kEps, kN));
  // Point queries: flat wins.
  EXPECT_GT(HhRangeVarianceBound(d, 4, 1, kEps, kN),
            FlatRangeVarianceBound(1, kEps, kN));
}

TEST(Variance, BoundsScaleInverselyWithPopulation) {
  double small_n = HaarRangeVarianceBound(256, kEps, 1000);
  double big_n = HaarRangeVarianceBound(256, kEps, 2000);
  EXPECT_NEAR(small_n / big_n, 2.0, 1e-9);
}

}  // namespace
}  // namespace ldp
