#include "frequency/sue.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "frequency/frequency_oracle.h"

namespace ldp {
namespace {

TEST(Sue, KeepProbabilityUsesHalfEpsilon) {
  SueOracle oracle(4, 2.0 * std::log(3.0), SueOracle::Mode::kExact);
  // e^{eps/2} = 3 -> p = 3/4.
  EXPECT_NEAR(oracle.KeepProbability(), 0.75, 1e-12);
}

TEST(Sue, PerBitLdpRatioBounded) {
  // Changing the input flips the roles of two positions; symmetric RR on
  // both gives worst-case ratio (p/(1-p))^2 = e^eps exactly.
  const double eps = 1.2;
  SueOracle oracle(2, eps, SueOracle::Mode::kExact);
  double p = oracle.KeepProbability();
  double ratio = (p / (1 - p)) * (p / (1 - p));
  EXPECT_NEAR(ratio, std::exp(eps), 1e-9);
}

TEST(Sue, EstimatesAreUnbiased) {
  const uint64_t d = 8;
  const double eps = 1.1;
  const int trials = 200;
  const int n = 800;
  std::vector<double> mean(d, 0.0);
  Rng rng(1);
  for (int t = 0; t < trials; ++t) {
    SueOracle oracle(d, eps, SueOracle::Mode::kExact);
    for (int i = 0; i < n; ++i) {
      oracle.SubmitValue(i % 4 == 0 ? 2 : 6, rng);
    }
    oracle.Finalize(rng);
    std::vector<double> est = oracle.EstimateFractions();
    for (uint64_t z = 0; z < d; ++z) {
      mean[z] += est[z] / trials;
    }
  }
  EXPECT_NEAR(mean[2], 0.25, 0.03);
  EXPECT_NEAR(mean[6], 0.75, 0.03);
  EXPECT_NEAR(mean[0], 0.0, 0.03);
}

TEST(Sue, SimulatedMatchesExactDistribution) {
  const uint64_t d = 4;
  const double eps = 1.0;
  const int trials = 300;
  const int n = 500;
  RunningStat exact_cold;
  RunningStat sim_cold;
  Rng rng(2);
  for (int t = 0; t < trials; ++t) {
    SueOracle exact(d, eps, SueOracle::Mode::kExact);
    SueOracle sim(d, eps, SueOracle::Mode::kSimulated);
    for (int i = 0; i < n; ++i) {
      exact.SubmitValue(1, rng);
      sim.SubmitValue(1, rng);
    }
    exact.Finalize(rng);
    sim.Finalize(rng);
    exact_cold.Add(exact.EstimateFractions()[3]);
    sim_cold.Add(sim.EstimateFractions()[3]);
  }
  EXPECT_NEAR(exact_cold.mean(), 0.0, 0.03);
  EXPECT_NEAR(sim_cold.mean(), 0.0, 0.03);
  EXPECT_NEAR(sim_cold.variance(), exact_cold.variance(),
              0.5 * exact_cold.variance());
}

TEST(Sue, VarianceMatchesFormulaAndExceedsOue) {
  const double eps = 1.1;
  const int trials = 500;
  const int n = 400;
  RunningStat cold;
  Rng rng(3);
  for (int t = 0; t < trials; ++t) {
    SueOracle oracle(4, eps, SueOracle::Mode::kSimulated);
    for (int i = 0; i < n; ++i) {
      oracle.SubmitValue(0, rng);
    }
    oracle.Finalize(rng);
    cold.Add(oracle.EstimateFractions()[2]);
  }
  double expected = SueVariance(eps, n);
  EXPECT_NEAR(cold.variance(), expected, 0.25 * expected);
  // The whole point of OUE: strictly smaller variance than SUE.
  EXPECT_GT(SueVariance(eps, n), OracleVariance(eps, n));
  EXPECT_GT(SueVariance(3.0, n) / OracleVariance(3.0, n),
            SueVariance(0.5, n) / OracleVariance(0.5, n));  // gap grows
}

TEST(Sue, FactoryIntegration) {
  Rng rng(4);
  auto oracle = MakeOracle(OracleKind::kSueSimulated, 8, 1.0);
  EXPECT_EQ(OracleKindName(OracleKind::kSue), "SUE");
  EXPECT_EQ(OracleKindName(OracleKind::kSueSimulated), "SUE(sim)");
  for (int i = 0; i < 100; ++i) {
    oracle->SubmitValue(i % 8, rng);
  }
  oracle->Finalize(rng);
  EXPECT_EQ(oracle->report_count(), 100u);
  EXPECT_EQ(oracle->EstimateFractions().size(), 8u);
}

TEST(Sue, MergePreservesState) {
  Rng rng(5);
  SueOracle a(4, 1.0, SueOracle::Mode::kSimulated);
  SueOracle b(4, 1.0, SueOracle::Mode::kSimulated);
  for (int i = 0; i < 50; ++i) a.SubmitValue(0, rng);
  for (int i = 0; i < 50; ++i) b.SubmitValue(3, rng);
  a.MergeFrom(b);
  EXPECT_EQ(a.report_count(), 100u);
  a.Finalize(rng);
  std::vector<double> est = a.EstimateFractions();
  EXPECT_NEAR(est[0], 0.5, 0.4);
  EXPECT_NEAR(est[3], 0.5, 0.4);
}

}  // namespace
}  // namespace ldp
