#include "protocol/tree_protocol.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "core/hierarchical.h"

namespace ldp {
namespace {

using protocol::ParseTreeHrrReport;
using protocol::SerializeTreeHrrReport;
using protocol::TreeHrrClient;
using protocol::TreeHrrReport;
using protocol::TreeHrrServer;

TEST(TreeProtocol, SerializationRoundTrip) {
  TreeHrrReport report;
  report.level = 5;
  report.inner = {1234, -1};
  TreeHrrReport back;
  ASSERT_TRUE(ParseTreeHrrReport(SerializeTreeHrrReport(report), &back));
  EXPECT_EQ(back.level, 5u);
  EXPECT_EQ(back.inner.coefficient_index, 1234u);
  EXPECT_EQ(back.inner.sign, -1);
}

TEST(TreeProtocol, SerializationRejectsTagsOfOtherProtocols) {
  TreeHrrReport report;
  report.level = 1;
  report.inner = {0, +1};
  TreeHrrReport out;
  // v2: the mechanism tag lives at offset 3 of the envelope header.
  std::vector<uint8_t> v2 = SerializeTreeHrrReport(report);
  for (uint8_t tag : {0x01, 0x02, 0x00, 0xFF}) {
    v2[3] = tag;
    EXPECT_FALSE(ParseTreeHrrReport(v2, &out)) << "v2 tag " << int(tag);
  }
  // v1: the tag is the leading byte.
  std::vector<uint8_t> v1 =
      SerializeTreeHrrReport(report, ldp::protocol::kWireVersionV1);
  for (uint8_t tag : {0x01, 0x02, 0x00, 0xFF}) {
    v1[0] = tag;
    EXPECT_FALSE(ParseTreeHrrReport(v1, &out)) << "v1 tag " << int(tag);
  }
}

TEST(TreeProtocol, EndToEndMatchesInProcessTreeHrr) {
  // Same RNG stream and submission order: the wire path must agree with
  // HierarchicalMechanism configured for HRR + consistency.
  const uint64_t d = 64;
  const uint64_t fanout = 4;
  const double eps = 1.1;
  Rng rng_wire(3);
  Rng rng_mech(3);
  TreeHrrClient client(d, fanout, eps);
  TreeHrrServer server(d, fanout, eps, /*consistency=*/true);
  HierarchicalConfig config;
  config.fanout = fanout;
  config.oracle = OracleKind::kHrr;
  config.consistency = true;
  HierarchicalMechanism mech(d, eps, config);
  for (int i = 0; i < 30000; ++i) {
    uint64_t value = (i * 11) % d;
    ASSERT_TRUE(server.AbsorbSerialized(
        client.EncodeSerialized(value, rng_wire)));
    mech.EncodeUser(value, rng_mech);
  }
  server.Finalize();
  Rng finalize_rng(1);
  mech.Finalize(finalize_rng);
  for (uint64_t a = 0; a < d; a += 7) {
    for (uint64_t b = a; b < d; b += 6) {
      EXPECT_NEAR(server.RangeQuery(a, b), mech.RangeQuery(a, b), 1e-9)
          << "[" << a << "," << b << "]";
    }
  }
}

TEST(TreeProtocol, NoiselessAccuracy) {
  const uint64_t d = 256;
  Rng rng(4);
  TreeHrrClient client(d, 4, 60.0);
  TreeHrrServer server(d, 4, 60.0);
  for (int i = 0; i < 120000; ++i) {
    server.AbsorbSerialized(
        client.EncodeSerialized(i % 2 == 0 ? 17 : 200, rng));
  }
  server.Finalize();
  EXPECT_NEAR(server.RangeQuery(0, 63), 0.5, 0.03);
  EXPECT_NEAR(server.RangeQuery(192, 255), 0.5, 0.03);
  EXPECT_NEAR(server.RangeQuery(0, 255), 1.0, 1e-9);
  EXPECT_NEAR(server.RangeQuery(64, 191), 0.0, 0.03);
  EXPECT_EQ(server.QuantileQuery(0.25), 17u);
}

TEST(TreeProtocol, RejectsOutOfRangeLevelsAndIndices) {
  TreeHrrServer server(256, 4, 1.0);  // height 4; level l has 4^l nodes
  TreeHrrReport report;
  report.level = 5;
  report.inner = {0, +1};
  EXPECT_FALSE(server.Absorb(report));
  report.level = 2;                // 16 nodes, HRR pads to 16
  report.inner = {16, +1};
  EXPECT_FALSE(server.Absorb(report));
  report.inner = {15, +1};
  EXPECT_TRUE(server.Absorb(report));
  EXPECT_EQ(server.rejected_reports(), 2u);
  EXPECT_EQ(server.accepted_reports(), 1u);
}

TEST(TreeProtocol, ConsistencyTogglesParentChildAgreement) {
  Rng rng(5);
  const uint64_t d = 64;
  TreeHrrClient client(d, 2, 1.0);
  TreeHrrServer with_ci(d, 2, 1.0, /*consistency=*/true);
  for (int i = 0; i < 20000; ++i) {
    with_ci.AbsorbSerialized(client.EncodeSerialized(i % d, rng));
  }
  with_ci.Finalize();
  // After CI any assembly of the same range agrees: compare B-adic path
  // with leaf sums.
  std::vector<double> leaves = with_ci.EstimateFrequencies();
  double leaf_sum = 0.0;
  for (uint64_t z = 10; z <= 42; ++z) {
    leaf_sum += leaves[z];
  }
  EXPECT_NEAR(with_ci.RangeQuery(10, 42), leaf_sum, 1e-9);
}

TEST(TreeProtocol, FuzzedBytesNeverCrashServer) {
  Rng rng(6);
  TreeHrrServer server(128, 2, 1.0);
  for (int i = 0; i < 5000; ++i) {
    size_t len = rng.UniformInt(16);
    std::vector<uint8_t> junk(len);
    for (uint8_t& b : junk) {
      b = static_cast<uint8_t>(rng.UniformInt(256));
    }
    server.AbsorbSerialized(junk);
  }
  server.Finalize();
  // Whatever was accepted, the server still serves queries.
  double answer = server.RangeQuery(0, 127);
  EXPECT_TRUE(std::isfinite(answer));
}

}  // namespace
}  // namespace ldp
