// Deterministic corpus replay: every file checked into fuzz/corpus/ runs
// through its fuzz target on every CTest invocation, so each corpus seed
// — and every minimized crash-file a fuzzing campaign adds — becomes a
// permanent regression, even on toolchains without libFuzzer. A bug here
// crashes the test binary (that is the fuzz-target contract), which
// CTest reports as a failure.
//
// LDP_FUZZ_CORPUS_DIR is injected by tests/CMakeLists.txt and points at
// the source tree's fuzz/corpus.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "fuzz_targets.h"

namespace ldp {
namespace {

namespace fs = std::filesystem;

using FuzzTarget = std::function<int(const uint8_t*, size_t)>;

const std::map<std::string, FuzzTarget>& TargetsByDirectory() {
  static const std::map<std::string, FuzzTarget> kTargets = {
      {"decode_envelope", fuzz::FuzzDecodeEnvelope},
      {"flat_absorb", fuzz::FuzzFlatAbsorb},
      {"haar_absorb", fuzz::FuzzHaarAbsorb},
      {"tree_absorb", fuzz::FuzzTreeAbsorb},
      {"ahead_absorb", fuzz::FuzzAheadAbsorb},
      {"multidim_absorb", fuzz::FuzzMultiDimAbsorb},
      {"stream_session", fuzz::FuzzStreamSession},
  };
  return kTargets;
}

std::vector<uint8_t> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

TEST(FuzzRegression, CorpusDirectoryIsCheckedIn) {
  fs::path root(LDP_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(root)) << root;
  for (const auto& [dir, target] : TargetsByDirectory()) {
    (void)target;
    EXPECT_TRUE(fs::is_directory(root / dir))
        << "missing seed corpus for fuzz target " << dir;
  }
}

TEST(FuzzRegression, ReplayEntireCorpus) {
  fs::path root(LDP_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(root)) << root;
  size_t files = 0;
  for (const auto& [dir, target] : TargetsByDirectory()) {
    if (!fs::is_directory(root / dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(root / dir)) {
      if (!entry.is_regular_file()) continue;
      std::vector<uint8_t> bytes = ReadFile(entry.path());
      SCOPED_TRACE(entry.path().string());
      EXPECT_EQ(target(bytes.data(), bytes.size()), 0);
      ++files;
    }
  }
  // The corpus ships a double-digit seed set; an empty replay means the
  // corpus went missing, not that everything passed.
  EXPECT_GE(files, 20u);
}

TEST(FuzzRegression, EveryTargetHandlesEmptyAndTinyInputs) {
  const uint8_t byte = 0x4C;  // first magic byte alone
  for (const auto& [dir, target] : TargetsByDirectory()) {
    SCOPED_TRACE(dir);
    EXPECT_EQ(target(nullptr, 0), 0);
    EXPECT_EQ(target(&byte, 1), 0);
  }
}

}  // namespace
}  // namespace ldp
