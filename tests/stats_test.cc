#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ldp {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sample_variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);        // population
  EXPECT_DOUBLE_EQ(s.sample_variance(), 32.0 / 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(std::sin(i) * 10 + i * 0.1);
  }
  RunningStat all;
  RunningStat left;
  RunningStat right;
  for (size_t i = 0; i < xs.size(); ++i) {
    all.Add(xs[i]);
    (i < 50 ? left : right).Add(xs[i]);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  a.Add(1.0);
  a.Add(2.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  RunningStat b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStat, NumericallyStableForLargeOffsets) {
  // Welford should not catastrophically cancel with a large common offset.
  RunningStat s;
  const double offset = 1e12;
  for (double x : {1.0, 2.0, 3.0}) {
    s.Add(offset + x);
  }
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-3);
}

TEST(ErrorStat, MseAndMae) {
  ErrorStat e;
  e.Add(1.0, 0.0);   // err 1
  e.Add(0.0, 2.0);   // err -2
  e.Add(5.0, 5.0);   // err 0
  EXPECT_EQ(e.count(), 3);
  EXPECT_DOUBLE_EQ(e.mse(), (1.0 + 4.0 + 0.0) / 3.0);
  EXPECT_DOUBLE_EQ(e.mae(), (1.0 + 2.0 + 0.0) / 3.0);
  EXPECT_DOUBLE_EQ(e.max_abs_error(), 2.0);
}

TEST(ErrorStat, MergeMatchesPooled) {
  ErrorStat a;
  ErrorStat b;
  ErrorStat pooled;
  for (int i = 0; i < 10; ++i) {
    double est = i * 0.5;
    double truth = i * 0.4;
    pooled.Add(est, truth);
    (i % 2 == 0 ? a : b).Add(est, truth);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mse(), pooled.mse(), 1e-12);
  EXPECT_NEAR(a.mae(), pooled.mae(), 1e-12);
}

}  // namespace
}  // namespace ldp
