// Reference check for Section 4.5: Hay et al.'s two linear passes must
// compute EXACTLY the least-squares solution of the constrained system.
// We verify by solving the normal equations directly on small trees.
//
// Formulation: unknowns are the leaf fractions x (length D). Every tree
// node contributes one observation: (sum of x over its block) = noisy node
// value, all with equal weight (equal variances — the paper's argument for
// invoking Gauss–Markov). With the root pinned to 1, the root row becomes
// a hard constraint, which we fold in by eliminating it with a Lagrange
// term; equivalently we solve min ||H x - y||^2 s.t. sum(x) = 1. The
// two-pass result's leaves must match that solution, and the internal
// nodes must equal their block sums.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/bit_util.h"
#include "common/check.h"
#include "common/random.h"
#include "core/badic.h"
#include "core/consistency.h"

namespace ldp {
namespace {

// Dense solver for symmetric positive-definite systems (Gaussian
// elimination with partial pivoting; fine at test sizes).
std::vector<double> SolveLinearSystem(std::vector<std::vector<double>> a,
                                      std::vector<double> b) {
  const size_t n = b.size();
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) {
        pivot = row;
      }
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    LDP_CHECK(std::abs(a[col][col]) > 1e-12);
    for (size_t row = col + 1; row < n; ++row) {
      double factor = a[row][col] / a[col][col];
      for (size_t k = col; k < n; ++k) {
        a[row][k] -= factor * a[col][k];
      }
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t row = n; row-- > 0;) {
    double acc = b[row];
    for (size_t k = row + 1; k < n; ++k) {
      acc -= a[row][k] * x[k];
    }
    x[row] = acc / a[row][row];
  }
  return x;
}

// Solves min ||H x - y||^2 subject to 1^T x = root_value via the KKT
// system [2 H^T H, 1; 1^T, 0] [x; lambda] = [2 H^T y; root_value].
// H excludes the root row (it becomes the constraint).
std::vector<double> ConstrainedLeastSquares(
    const std::vector<std::vector<double>>& h, const std::vector<double>& y,
    size_t num_leaves, double root_value) {
  size_t n = num_leaves + 1;  // leaves + lambda
  std::vector<std::vector<double>> kkt(n, std::vector<double>(n, 0.0));
  std::vector<double> rhs(n, 0.0);
  for (size_t i = 0; i < num_leaves; ++i) {
    for (size_t j = 0; j < num_leaves; ++j) {
      double acc = 0.0;
      for (size_t row = 0; row < h.size(); ++row) {
        acc += h[row][i] * h[row][j];
      }
      kkt[i][j] = 2.0 * acc;
    }
    double acc = 0.0;
    for (size_t row = 0; row < h.size(); ++row) {
      acc += h[row][i] * y[row];
    }
    rhs[i] = 2.0 * acc;
    kkt[i][num_leaves] = 1.0;
    kkt[num_leaves][i] = 1.0;
  }
  rhs[num_leaves] = root_value;
  std::vector<double> solution = SolveLinearSystem(kkt, rhs);
  solution.resize(num_leaves);
  return solution;
}

class ConsistencyLsqTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(ConsistencyLsqTest, TwoPassEqualsNormalEquations) {
  auto [fanout, height] = GetParam();
  TreeShape shape(IntPow(fanout, height), fanout);
  ASSERT_EQ(shape.height(), height);
  const uint64_t leaves = shape.padded_domain();
  Rng rng(fanout * 1000 + height);

  // Random noisy observations for all NON-ROOT nodes; root pinned to 1.
  std::vector<std::vector<double>> levels(height + 1);
  levels[0] = {1.0};
  for (uint32_t l = 1; l <= height; ++l) {
    levels[l].resize(shape.NodesAtLevel(l));
    for (double& v : levels[l]) {
      v = rng.UniformDouble();
    }
  }

  // Build H (one row per non-root node, columns = leaves) and y.
  std::vector<std::vector<double>> h;
  std::vector<double> y;
  for (uint32_t l = 1; l <= height; ++l) {
    for (uint64_t k = 0; k < shape.NodesAtLevel(l); ++k) {
      std::vector<double> row(leaves, 0.0);
      TreeNode node{l, k};
      for (uint64_t z = shape.BlockStart(node); z <= shape.BlockEnd(node);
           ++z) {
        row[z] = 1.0;
      }
      h.push_back(std::move(row));
      y.push_back(levels[l][k]);
    }
  }
  std::vector<double> expected =
      ConstrainedLeastSquares(h, y, leaves, /*root_value=*/1.0);

  EnforceHierarchicalConsistency(levels, fanout, /*root_pin=*/1.0);

  for (uint64_t z = 0; z < leaves; ++z) {
    EXPECT_NEAR(levels[height][z], expected[z], 1e-8)
        << "leaf " << z << " (B=" << fanout << ", h=" << height << ")";
  }
  // Internal nodes must equal their children's sums (and therefore their
  // block sums of the LSQ leaves).
  for (uint32_t l = 0; l < height; ++l) {
    for (uint64_t k = 0; k < shape.NodesAtLevel(l); ++k) {
      TreeNode node{l, k};
      double block_sum = 0.0;
      for (uint64_t z = shape.BlockStart(node); z <= shape.BlockEnd(node);
           ++z) {
        block_sum += expected[z];
      }
      EXPECT_NEAR(levels[l][k], block_sum, 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallTrees, ConsistencyLsqTest,
    ::testing::Values(std::make_tuple(uint64_t{2}, uint32_t{2}),
                      std::make_tuple(uint64_t{2}, uint32_t{3}),
                      std::make_tuple(uint64_t{2}, uint32_t{4}),
                      std::make_tuple(uint64_t{3}, uint32_t{2}),
                      std::make_tuple(uint64_t{3}, uint32_t{3}),
                      std::make_tuple(uint64_t{4}, uint32_t{2}),
                      std::make_tuple(uint64_t{5}, uint32_t{2})));

TEST(ConsistencyLsqTest, UnpinnedRootAlsoMatchesFreeLeastSquares) {
  // Without the root pin (the centralized variant), the solution is the
  // unconstrained LSQ over ALL node observations including the root's.
  const uint64_t fanout = 2;
  const uint32_t height = 3;
  TreeShape shape(IntPow(fanout, height), fanout);
  const uint64_t leaves = shape.padded_domain();
  Rng rng(77);
  std::vector<std::vector<double>> levels(height + 1);
  std::vector<std::vector<double>> h;
  std::vector<double> y;
  for (uint32_t l = 0; l <= height; ++l) {
    levels[l].resize(shape.NodesAtLevel(l));
    for (uint64_t k = 0; k < shape.NodesAtLevel(l); ++k) {
      levels[l][k] = rng.UniformDouble();
      std::vector<double> row(leaves, 0.0);
      TreeNode node{l, k};
      for (uint64_t z = shape.BlockStart(node); z <= shape.BlockEnd(node);
           ++z) {
        row[z] = 1.0;
      }
      h.push_back(std::move(row));
      y.push_back(levels[l][k]);
    }
  }
  // Unconstrained normal equations: (H^T H) x = H^T y.
  std::vector<std::vector<double>> hth(leaves,
                                       std::vector<double>(leaves, 0.0));
  std::vector<double> hty(leaves, 0.0);
  for (size_t i = 0; i < leaves; ++i) {
    for (size_t j = 0; j < leaves; ++j) {
      for (size_t row = 0; row < h.size(); ++row) {
        hth[i][j] += h[row][i] * h[row][j];
      }
    }
    for (size_t row = 0; row < h.size(); ++row) {
      hty[i] += h[row][i] * y[row];
    }
  }
  std::vector<double> expected = SolveLinearSystem(hth, hty);

  EnforceHierarchicalConsistency(levels, fanout, /*root_pin=*/std::nullopt);
  for (uint64_t z = 0; z < leaves; ++z) {
    EXPECT_NEAR(levels[height][z], expected[z], 1e-8) << "leaf " << z;
  }
}

}  // namespace
}  // namespace ldp
