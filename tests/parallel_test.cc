#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

namespace ldp {
namespace {

TEST(Parallel, HardwareThreadsPositive) { EXPECT_GE(HardwareThreads(), 1u); }

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 3u, 8u}) {
    for (uint64_t total : {0ull, 1ull, 7ull, 100ull, 1000ull}) {
      std::vector<std::atomic<int>> hits(total);
      ParallelFor(total, threads,
                  [&](unsigned, uint64_t begin, uint64_t end) {
                    for (uint64_t i = begin; i < end; ++i) {
                      hits[i].fetch_add(1);
                    }
                  });
      for (uint64_t i = 0; i < total; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
      }
    }
  }
}

TEST(Parallel, ChunksAreDisjointAndOrdered) {
  std::mutex mu;
  std::vector<std::pair<uint64_t, uint64_t>> chunks;
  ParallelFor(103, 4, [&](unsigned, uint64_t begin, uint64_t end) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(begin, end);
  });
  EXPECT_EQ(chunks.size(), 4u);
  uint64_t covered = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_LT(b, e);
    covered += e - b;
  }
  EXPECT_EQ(covered, 103u);
}

TEST(Parallel, MoreThreadsThanWork) {
  std::atomic<int> calls{0};
  ParallelFor(3, 16, [&](unsigned, uint64_t begin, uint64_t end) {
    calls.fetch_add(1);
    EXPECT_EQ(end - begin, 1u);
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(Parallel, ZeroWorkDoesNothing) {
  std::atomic<int> calls{0};
  ParallelFor(0, 4, [&](unsigned, uint64_t, uint64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(Parallel, ChunkIdsAreDistinct) {
  std::mutex mu;
  std::set<unsigned> ids;
  ParallelFor(100, 4, [&](unsigned chunk, uint64_t, uint64_t) {
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(chunk);
  });
  EXPECT_EQ(ids.size(), 4u);
}

TEST(Numa, ParseCpuListHandlesRangesAndSingles) {
  using internal::ParseCpuList;
  EXPECT_EQ(ParseCpuList("0-3,7,9-10"),
            (std::vector<unsigned>{0, 1, 2, 3, 7, 9, 10}));
  EXPECT_EQ(ParseCpuList("5"), (std::vector<unsigned>{5}));
  EXPECT_EQ(ParseCpuList("0-0"), (std::vector<unsigned>{0}));
  EXPECT_EQ(ParseCpuList("  2 , 4-5 \n"), (std::vector<unsigned>{2, 4, 5}));
  EXPECT_EQ(ParseCpuList(""), std::vector<unsigned>{});
  EXPECT_EQ(ParseCpuList("\n"), std::vector<unsigned>{});
}

TEST(Numa, ParseCpuListSkipsMalformedPieces) {
  using internal::ParseCpuList;
  // Inverted range dropped, valid tail kept.
  EXPECT_EQ(ParseCpuList("9-2,4"), (std::vector<unsigned>{4}));
  // Garbage stops the parse without crashing.
  EXPECT_TRUE(ParseCpuList("abc").empty());
}

TEST(Numa, SysfsTopologyHasAtLeastOneNodeWithCpus) {
  NumaTopology topology = internal::ReadSysfsTopology();
  ASSERT_GE(topology.nodes.size(), 1u);
  for (const NumaNode& node : topology.nodes) {
    EXPECT_FALSE(node.cpus.empty()) << "node" << node.id;
  }
  // Single-node machines must not pay pinning syscalls.
  if (!topology.multi_node()) {
    EXPECT_FALSE(topology.pinning_enabled);
  }
}

TEST(Numa, SingleModeCollapsesToOneNode) {
  // Build a synthetic two-node topology and force the fallback the ASan CI
  // lane uses — this must work identically on genuinely multi-node boxes.
  NumaTopology multi;
  multi.nodes.push_back({0, {0, 1}});
  multi.nodes.push_back({1, {2, 3}});
  multi.pinning_enabled = true;

  NumaTopology single = internal::ApplyNumaMode(multi, "single");
  ASSERT_EQ(single.nodes.size(), 1u);
  EXPECT_EQ(single.nodes[0].cpus, (std::vector<unsigned>{0, 1, 2, 3}));
  EXPECT_FALSE(single.pinning_enabled);

  NumaTopology off = internal::ApplyNumaMode(multi, "off");
  EXPECT_EQ(off.nodes.size(), 2u);
  EXPECT_FALSE(off.pinning_enabled);

  NumaTopology autod = internal::ApplyNumaMode(multi, "auto");
  EXPECT_TRUE(autod.pinning_enabled);
}

TEST(Numa, PinThreadToCpusIsBestEffort) {
  // Pinning to the CPUs we are already allowed on must succeed silently;
  // empty and out-of-range sets are no-ops.
  internal::PinThreadToCpus(SystemNumaTopology().nodes[0].cpus);
  internal::PinThreadToCpus({});
  internal::PinThreadToCpus({1u << 20});
  SUCCEED();
}

// Pinning must never change which chunk computes what: the reduction over
// a fixed chunk count is bit-identical whatever the topology does.
TEST(Numa, ParallelForResultsUnaffectedByPlacement) {
  auto run = [](unsigned threads) {
    std::vector<uint64_t> partial(threads, 0);
    ParallelFor(100000, threads, [&](unsigned c, uint64_t b, uint64_t e) {
      uint64_t sum = 0;
      for (uint64_t i = b; i < e; ++i) sum += i * i;
      partial[c] = sum;
    });
    uint64_t total = 0;
    for (uint64_t s : partial) total += s;
    return total;
  };
  uint64_t reference = run(1);
  for (unsigned threads : {2u, 4u, 8u}) {
    EXPECT_EQ(run(threads), reference) << threads;
  }
}

}  // namespace
}  // namespace ldp
