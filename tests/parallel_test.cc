#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

namespace ldp {
namespace {

TEST(Parallel, HardwareThreadsPositive) { EXPECT_GE(HardwareThreads(), 1u); }

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 3u, 8u}) {
    for (uint64_t total : {0ull, 1ull, 7ull, 100ull, 1000ull}) {
      std::vector<std::atomic<int>> hits(total);
      ParallelFor(total, threads,
                  [&](unsigned, uint64_t begin, uint64_t end) {
                    for (uint64_t i = begin; i < end; ++i) {
                      hits[i].fetch_add(1);
                    }
                  });
      for (uint64_t i = 0; i < total; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
      }
    }
  }
}

TEST(Parallel, ChunksAreDisjointAndOrdered) {
  std::mutex mu;
  std::vector<std::pair<uint64_t, uint64_t>> chunks;
  ParallelFor(103, 4, [&](unsigned, uint64_t begin, uint64_t end) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(begin, end);
  });
  EXPECT_EQ(chunks.size(), 4u);
  uint64_t covered = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_LT(b, e);
    covered += e - b;
  }
  EXPECT_EQ(covered, 103u);
}

TEST(Parallel, MoreThreadsThanWork) {
  std::atomic<int> calls{0};
  ParallelFor(3, 16, [&](unsigned, uint64_t begin, uint64_t end) {
    calls.fetch_add(1);
    EXPECT_EQ(end - begin, 1u);
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(Parallel, ZeroWorkDoesNothing) {
  std::atomic<int> calls{0};
  ParallelFor(0, 4, [&](unsigned, uint64_t, uint64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(Parallel, ChunkIdsAreDistinct) {
  std::mutex mu;
  std::set<unsigned> ids;
  ParallelFor(100, 4, [&](unsigned chunk, uint64_t, uint64_t) {
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(chunk);
  });
  EXPECT_EQ(ids.size(), 4u);
}

}  // namespace
}  // namespace ldp
