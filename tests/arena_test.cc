#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

namespace ldp {
namespace {

TEST(Arena, AllocationsDoNotRelocate) {
  Arena arena(64);
  std::vector<uint64_t*> ptrs;
  for (int i = 0; i < 1000; ++i) {
    auto* p = static_cast<uint64_t*>(
        arena.Allocate(sizeof(uint64_t), alignof(uint64_t)));
    *p = static_cast<uint64_t>(i);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(*ptrs[i], static_cast<uint64_t>(i));
  }
}

TEST(Arena, RespectsAlignment) {
  Arena arena(64);
  arena.Allocate(1, 1);
  for (size_t align : {2, 4, 8, 16, 64}) {
    void* p = arena.Allocate(3, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u) << align;
    arena.Allocate(1, 1);  // de-align the cursor again
  }
}

TEST(Arena, ResetReusesBlocksWithoutNewAllocations) {
  Arena arena(1 << 10);
  auto fill = [&] {
    for (int i = 0; i < 4096; ++i) {
      arena.Allocate(16, 8);
    }
  };
  fill();
  uint64_t allocs = arena.block_allocations();
  EXPECT_GT(allocs, 0u);
  for (int round = 0; round < 5; ++round) {
    arena.Reset();
    fill();
    EXPECT_EQ(arena.block_allocations(), allocs) << "round " << round;
  }
}

TEST(Arena, OversizedRequestGetsDedicatedBlock) {
  Arena arena(64);
  void* p = arena.Allocate(1 << 20, 8);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(arena.bytes_reserved(), size_t{1} << 20);
}

TEST(Arena, AdoptBlocksKeepsDataAliveAndEmptiesSource) {
  Arena source(128);
  auto* p = static_cast<uint64_t*>(source.Allocate(sizeof(uint64_t), 8));
  *p = 0xDEADBEEFu;
  uint64_t source_allocs = source.block_allocations();

  Arena target(128);
  target.Allocate(24, 8);
  uint64_t target_allocs = target.block_allocations();
  target.AdoptBlocks(std::move(source));

  EXPECT_EQ(*p, 0xDEADBEEFu);
  EXPECT_EQ(target.block_allocations(), source_allocs + target_allocs);
  EXPECT_EQ(source.bytes_reserved(), 0u);
  EXPECT_EQ(source.block_count(), 0u);
  // Adopted blocks are consumed until Reset, after which they are reusable.
  uint64_t before = target.block_allocations();
  target.Reset();
  for (int i = 0; i < 4; ++i) target.Allocate(16, 8);
  EXPECT_EQ(target.block_allocations(), before);
}

TEST(ArenaColumn, PushBackAndIterateInOrder) {
  ArenaColumn<uint32_t> column;
  constexpr uint64_t kCount = 100000;
  for (uint64_t i = 0; i < kCount; ++i) {
    column.PushBack(static_cast<uint32_t>(i * 7));
  }
  ASSERT_EQ(column.size(), kCount);
  uint64_t next = 0;
  column.ForEachChunk([&](ArenaColumn<uint32_t>::Chunk chunk) {
    for (uint64_t i = 0; i < chunk.size; ++i, ++next) {
      ASSERT_EQ(chunk.data[i], static_cast<uint32_t>(next * 7));
    }
  });
  EXPECT_EQ(next, kCount);
}

TEST(ArenaColumn, AppendMatchesPushBack) {
  std::vector<uint64_t> values(50000);
  std::iota(values.begin(), values.end(), 17);
  ArenaColumn<uint64_t> pushed;
  ArenaColumn<uint64_t> appended;
  for (uint64_t v : values) pushed.PushBack(v);
  appended.Append(values.data(), values.size());
  ASSERT_EQ(pushed.size(), appended.size());
  std::vector<uint64_t> a, b;
  pushed.ForEachChunk([&](ArenaColumn<uint64_t>::Chunk c) {
    a.insert(a.end(), c.data, c.data + c.size);
  });
  appended.ForEachChunk([&](ArenaColumn<uint64_t>::Chunk c) {
    b.insert(b.end(), c.data, c.data + c.size);
  });
  EXPECT_EQ(a, values);
  EXPECT_EQ(b, values);
}

// Two columns driven by the same append sequence must expose identical
// chunk boundaries — the decode kernels zip structure-of-arrays columns
// chunk by chunk.
TEST(ArenaColumn, ParallelColumnsShareChunkBoundaries) {
  ArenaColumn<uint64_t> seeds;
  ArenaColumn<uint32_t> cells;
  for (uint64_t i = 0; i < 70000; ++i) {
    seeds.PushBack(i);
    cells.PushBack(static_cast<uint32_t>(i));
  }
  auto a = seeds.Chunks();
  auto b = cells.Chunks();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].size, b[i].size) << i;
  }
}

// The session-reuse contract: Clear() keeps the blocks, so refilling to the
// same size performs no further system allocations.
TEST(ArenaColumn, ClearRetainsMemoryAcrossSessions) {
  ArenaColumn<uint64_t> column;
  auto fill = [&] {
    for (uint64_t i = 0; i < 200000; ++i) column.PushBack(i);
  };
  fill();
  uint64_t allocs = column.allocation_count();
  for (int session = 0; session < 3; ++session) {
    column.Clear();
    EXPECT_EQ(column.size(), 0u);
    fill();
    EXPECT_EQ(column.size(), 200000u);
    EXPECT_EQ(column.allocation_count(), allocs) << "session " << session;
  }
}

TEST(ArenaColumn, AdoptSplicesElementsInOrder) {
  ArenaColumn<uint32_t> left;
  ArenaColumn<uint32_t> right;
  for (uint32_t i = 0; i < 5000; ++i) left.PushBack(i);
  for (uint32_t i = 5000; i < 12000; ++i) right.PushBack(i);
  left.Adopt(std::move(right));
  ASSERT_EQ(left.size(), 12000u);
  EXPECT_EQ(right.size(), 0u);
  uint32_t next = 0;
  left.ForEachChunk([&](ArenaColumn<uint32_t>::Chunk chunk) {
    for (uint64_t i = 0; i < chunk.size; ++i, ++next) {
      ASSERT_EQ(chunk.data[i], next);
    }
  });
  EXPECT_EQ(next, 12000u);
  // Appending after an adopt keeps working and stays ordered.
  left.PushBack(12000);
  EXPECT_EQ(left.size(), 12001u);
}

TEST(ArenaColumn, AdoptIsAllocationFree) {
  ArenaColumn<uint64_t> target;
  ArenaColumn<uint64_t> shard;
  for (uint64_t i = 0; i < 100000; ++i) shard.PushBack(i);
  uint64_t total = target.allocation_count() + shard.allocation_count();
  target.Adopt(std::move(shard));
  // Block allocations transfer; none are added by the splice itself.
  EXPECT_EQ(target.allocation_count(), total);
}

TEST(ArenaColumn, ReserveSkipsDoublingRamp) {
  ArenaColumn<uint64_t> column;
  column.Reserve(300000);
  for (uint64_t i = 0; i < 300000; ++i) column.PushBack(i);
  // One block for the reserved chunk (kMaxChunkElems caps a chunk at 2^20
  // elements, so 300k fits in one).
  EXPECT_LE(column.allocation_count(), 2u);
}

}  // namespace
}  // namespace ldp
