#include "data/workload.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ldp {
namespace {

using RangeList = std::vector<std::pair<uint64_t, uint64_t>>;

RangeList Collect(const QueryWorkload& workload, uint64_t domain) {
  RangeList out;
  workload.Visit(domain,
                 [&](uint64_t a, uint64_t b) { out.emplace_back(a, b); });
  return out;
}

TEST(Workload, AllRangesEnumeratesEveryPair) {
  const uint64_t d = 16;
  RangeList ranges = Collect(QueryWorkload::AllRanges(), d);
  EXPECT_EQ(ranges.size(), d * (d + 1) / 2);
  EXPECT_EQ(ranges.size(), QueryWorkload::AllRanges().CountQueries(d));
  std::set<std::pair<uint64_t, uint64_t>> unique(ranges.begin(),
                                                 ranges.end());
  EXPECT_EQ(unique.size(), ranges.size());
  for (const auto& [a, b] : ranges) {
    EXPECT_LE(a, b);
    EXPECT_LT(b, d);
  }
}

TEST(Workload, FixedLengthProducesAllStarts) {
  const uint64_t d = 32;
  const uint64_t r = 5;
  RangeList ranges = Collect(QueryWorkload::FixedLength(r), d);
  EXPECT_EQ(ranges.size(), d - r + 1);
  for (const auto& [a, b] : ranges) {
    EXPECT_EQ(b - a + 1, r);
  }
  EXPECT_EQ(ranges.front().first, 0u);
  EXPECT_EQ(ranges.back().second, d - 1);
}

TEST(Workload, FixedLengthFullDomain) {
  RangeList ranges = Collect(QueryWorkload::FixedLength(16), 16);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], std::make_pair(uint64_t{0}, uint64_t{15}));
}

TEST(Workload, StridedMatchesPaperSampling) {
  // Starts at multiples of the start stride; all ends from each start.
  const uint64_t d = 64;
  RangeList ranges = Collect(QueryWorkload::Strided(16, 1), d);
  EXPECT_EQ(ranges.size(), QueryWorkload::Strided(16, 1).CountQueries(d));
  // Starts: 0, 16, 32, 48 with 64, 48, 32, 16 ends respectively.
  EXPECT_EQ(ranges.size(), 64u + 48 + 32 + 16);
  for (const auto& [a, b] : ranges) {
    EXPECT_EQ(a % 16, 0u);
    EXPECT_GE(b, a);
  }
}

TEST(Workload, StridedLengthSubsampling) {
  RangeList ranges = Collect(QueryWorkload::Strided(32, 8), 64);
  for (const auto& [a, b] : ranges) {
    EXPECT_EQ((b - a) % 8, 0u);
  }
  EXPECT_EQ(ranges.size(), QueryWorkload::Strided(32, 8).CountQueries(64));
}

TEST(Workload, PrefixesAreAllPrefixes) {
  RangeList ranges = Collect(QueryWorkload::Prefixes(), 16);
  EXPECT_EQ(ranges.size(), 16u);
  for (uint64_t b = 0; b < 16; ++b) {
    EXPECT_EQ(ranges[b], std::make_pair(uint64_t{0}, b));
  }
}

TEST(Workload, RandomIsDeterministicPerSeed) {
  RangeList a = Collect(QueryWorkload::Random(100, 7), 1024);
  RangeList b = Collect(QueryWorkload::Random(100, 7), 1024);
  RangeList c = Collect(QueryWorkload::Random(100, 8), 1024);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 100u);
  for (const auto& [lo, hi] : a) {
    EXPECT_LE(lo, hi);
    EXPECT_LT(hi, 1024u);
  }
}

TEST(Workload, NamesAreDescriptive) {
  EXPECT_EQ(QueryWorkload::AllRanges().Name(), "all-ranges");
  EXPECT_EQ(QueryWorkload::FixedLength(7).Name(), "length-7");
  EXPECT_EQ(QueryWorkload::Strided(32768, 1).Name(), "strided-32768x1");
  EXPECT_EQ(QueryWorkload::Prefixes().Name(), "prefixes");
  EXPECT_EQ(QueryWorkload::Random(5, 1).Name(), "random-5");
}

TEST(Workload, CountQueriesMatchesVisitForAllKinds) {
  const uint64_t d = 100;
  for (const QueryWorkload& w :
       {QueryWorkload::AllRanges(), QueryWorkload::FixedLength(13),
        QueryWorkload::Strided(7, 3), QueryWorkload::Prefixes(),
        QueryWorkload::Random(42, 9)}) {
    EXPECT_EQ(Collect(w, d).size(), w.CountQueries(d)) << w.Name();
  }
}

}  // namespace
}  // namespace ldp
