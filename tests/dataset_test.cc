#include "data/dataset.h"

#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <vector>

#include "common/random.h"

namespace ldp {
namespace {

TEST(Dataset, FromValuesCounts) {
  Dataset data = Dataset::FromValues({0, 1, 1, 3, 3, 3}, 4);
  EXPECT_EQ(data.domain(), 4u);
  EXPECT_EQ(data.size(), 6u);
  EXPECT_EQ(data.counts()[0], 1u);
  EXPECT_EQ(data.counts()[1], 2u);
  EXPECT_EQ(data.counts()[2], 0u);
  EXPECT_EQ(data.counts()[3], 3u);
}

TEST(Dataset, FrequenciesSumToOne) {
  Dataset data = Dataset::FromValues({0, 1, 1, 3, 3, 3}, 4);
  std::vector<double> freq = data.Frequencies();
  EXPECT_DOUBLE_EQ(freq[0], 1.0 / 6);
  EXPECT_DOUBLE_EQ(freq[1], 2.0 / 6);
  EXPECT_DOUBLE_EQ(freq[3], 3.0 / 6);
  double sum = 0.0;
  for (double f : freq) sum += f;
  EXPECT_DOUBLE_EQ(sum, 1.0);
}

TEST(Dataset, CdfIsMonotoneEndingAtOne) {
  Rng rng(1);
  CauchyDistribution dist(256);
  Dataset data = Dataset::FromDistribution(dist, 10000, rng);
  std::vector<double> cdf = data.Cdf();
  EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i], cdf[i - 1]);
  }
}

TEST(Dataset, TrueRangeMatchesManualSum) {
  Dataset data = Dataset::FromValues({0, 1, 1, 3, 3, 3, 2}, 5);
  EXPECT_DOUBLE_EQ(data.TrueRange(0, 4), 1.0);
  EXPECT_DOUBLE_EQ(data.TrueRange(1, 2), 3.0 / 7);
  EXPECT_DOUBLE_EQ(data.TrueRange(3, 3), 3.0 / 7);
  EXPECT_DOUBLE_EQ(data.TrueRange(4, 4), 0.0);
  EXPECT_DOUBLE_EQ(data.TruePrefix(1), 3.0 / 7);
}

TEST(Dataset, FromDistributionHasExactPopulation) {
  Rng rng(2);
  UniformDistribution dist(64);
  Dataset data = Dataset::FromDistribution(dist, 12345, rng);
  EXPECT_EQ(data.size(), 12345u);
  EXPECT_EQ(data.domain(), 64u);
}

TEST(Dataset, FromCountsRoundTrip) {
  std::vector<uint64_t> counts = {5, 0, 3, 2};
  Dataset data = Dataset::FromCounts(counts);
  EXPECT_EQ(data.size(), 10u);
  EXPECT_EQ(data.counts(), counts);
}

TEST(Dataset, EmptyPopulationIsAllZero) {
  Dataset data = Dataset::FromCounts(std::vector<uint64_t>(8, 0));
  EXPECT_EQ(data.size(), 0u);
  EXPECT_DOUBLE_EQ(data.TrueRange(0, 7), 0.0);
  for (double f : data.Frequencies()) {
    EXPECT_DOUBLE_EQ(f, 0.0);
  }
}

TEST(Dataset, FileRoundTrip) {
  Dataset data = Dataset::FromValues({0, 1, 1, 3, 3, 3, 7}, 8);
  std::string path = ::testing::TempDir() + "/ldp_dataset_roundtrip.txt";
  ASSERT_TRUE(data.ToFile(path));
  std::optional<Dataset> loaded = Dataset::FromFile(path, 8);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->counts(), data.counts());
  EXPECT_EQ(loaded->size(), data.size());
}

TEST(Dataset, FromFileSkipsCommentsAndBlanks) {
  std::string path = ::testing::TempDir() + "/ldp_dataset_comments.txt";
  {
    std::ofstream out(path);
    out << "# header\n\n2\n 3 \n\n# trailing comment\n2\n";
  }
  std::optional<Dataset> loaded = Dataset::FromFile(path, 4);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->counts()[2], 2u);
  EXPECT_EQ(loaded->counts()[3], 1u);
  EXPECT_EQ(loaded->size(), 3u);
}

TEST(Dataset, FromFileRejectsBadInput) {
  std::string dir = ::testing::TempDir();
  EXPECT_FALSE(Dataset::FromFile(dir + "/does_not_exist.txt", 8).has_value());
  {
    std::ofstream out(dir + "/ldp_bad_token.txt");
    out << "1\nnot_a_number\n";
  }
  EXPECT_FALSE(Dataset::FromFile(dir + "/ldp_bad_token.txt", 8).has_value());
  {
    std::ofstream out(dir + "/ldp_out_of_range.txt");
    out << "1\n8\n";
  }
  EXPECT_FALSE(
      Dataset::FromFile(dir + "/ldp_out_of_range.txt", 8).has_value());
  {
    std::ofstream out(dir + "/ldp_two_tokens.txt");
    out << "1 2\n";
  }
  EXPECT_FALSE(
      Dataset::FromFile(dir + "/ldp_two_tokens.txt", 8).has_value());
}

TEST(Dataset, RejectsOutOfDomainValue) {
  EXPECT_DEATH(Dataset::FromValues({0, 4}, 4), "");
}

TEST(Dataset, RejectsBadRange) {
  Dataset data = Dataset::FromValues({0, 1}, 4);
  EXPECT_DEATH(data.TrueRange(2, 1), "");
  EXPECT_DEATH(data.TrueRange(0, 4), "");
}

}  // namespace
}  // namespace ldp
