#include "frequency/grr.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace ldp {
namespace {

TEST(GrrPerturb, TruthProbabilityFormula) {
  // p = e^eps / (e^eps + k - 1).
  EXPECT_NEAR(GrrTruthProbability(2, std::log(3.0)), 0.75, 1e-12);
  EXPECT_NEAR(GrrTruthProbability(4, std::log(3.0)), 0.5, 1e-12);
  EXPECT_NEAR(GrrTruthProbability(2, 50.0), 1.0, 1e-9);
}

TEST(GrrPerturb, OutputAlwaysInDomain) {
  Rng rng(1);
  for (uint64_t k : {2ull, 3ull, 10ull}) {
    for (uint64_t v = 0; v < k; ++v) {
      for (int i = 0; i < 200; ++i) {
        EXPECT_LT(GrrPerturb(v, k, 1.0, rng), k);
      }
    }
  }
}

TEST(GrrPerturb, HighEpsilonIsIdentity) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(GrrPerturb(3, 10, 60.0, rng), 3u);
  }
}

TEST(GrrPerturb, EmpiricalProbabilitiesMatch) {
  Rng rng(3);
  const uint64_t k = 5;
  const double eps = 1.1;
  const int n = 200000;
  std::vector<int> hist(k, 0);
  for (int i = 0; i < n; ++i) {
    ++hist[GrrPerturb(2, k, eps, rng)];
  }
  double p = GrrTruthProbability(k, eps);
  double q = (1.0 - p) / (k - 1);
  EXPECT_NEAR(static_cast<double>(hist[2]) / n, p, 0.01);
  for (uint64_t j = 0; j < k; ++j) {
    if (j == 2) continue;
    EXPECT_NEAR(static_cast<double>(hist[j]) / n, q, 0.01) << "j=" << j;
  }
}

TEST(GrrPerturb, SatisfiesLdpBound) {
  // For all outputs o and inputs v != v', Pr[o|v] / Pr[o|v'] <= e^eps.
  const uint64_t k = 6;
  const double eps = 0.8;
  double p = GrrTruthProbability(k, eps);
  double q = (1.0 - p) / (k - 1);
  double worst = p / q;
  EXPECT_LE(worst, std::exp(eps) * (1 + 1e-12));
  // GRR is tight: the bound is met with equality.
  EXPECT_NEAR(worst, std::exp(eps), 1e-9);
}

TEST(GrrOracle, NoiselessRecoversExactFrequencies) {
  Rng rng(4);
  GrrOracle oracle(8, 60.0);  // e^60: flips essentially never happen
  for (int i = 0; i < 100; ++i) {
    oracle.SubmitValue(i % 4, rng);
  }
  std::vector<double> est = oracle.EstimateFractions();
  for (uint64_t z = 0; z < 4; ++z) {
    EXPECT_NEAR(est[z], 0.25, 1e-9);
  }
  for (uint64_t z = 4; z < 8; ++z) {
    EXPECT_NEAR(est[z], 0.0, 1e-9);
  }
}

TEST(GrrOracle, EstimatesAreUnbiased) {
  const uint64_t d = 4;
  const double eps = 1.0;
  const int trials = 300;
  const int n = 2000;
  std::vector<double> mean(d, 0.0);
  Rng rng(5);
  for (int t = 0; t < trials; ++t) {
    GrrOracle oracle(d, eps);
    for (int i = 0; i < n; ++i) {
      oracle.SubmitValue(i % 2, rng);  // true distribution: (.5,.5,0,0)
    }
    std::vector<double> est = oracle.EstimateFractions();
    for (uint64_t z = 0; z < d; ++z) {
      mean[z] += est[z] / trials;
    }
  }
  EXPECT_NEAR(mean[0], 0.5, 0.02);
  EXPECT_NEAR(mean[1], 0.5, 0.02);
  EXPECT_NEAR(mean[2], 0.0, 0.02);
  EXPECT_NEAR(mean[3], 0.0, 0.02);
}

TEST(GrrOracle, MergeMatchesSequential) {
  Rng rng1(7);
  Rng rng2(7);
  GrrOracle sequential(4, 1.0);
  GrrOracle shard_a(4, 1.0);
  GrrOracle shard_b(4, 1.0);
  for (int i = 0; i < 100; ++i) {
    sequential.SubmitValue(i % 4, rng1);
  }
  for (int i = 0; i < 100; ++i) {
    (i < 50 ? shard_a : shard_b).SubmitValue(i % 4, rng2);
  }
  shard_a.MergeFrom(shard_b);
  EXPECT_EQ(shard_a.report_count(), sequential.report_count());
  // Same RNG stream split at user 50, consumed in the same order: the
  // merged aggregate must match exactly.
  std::vector<double> a = shard_a.EstimateFractions();
  std::vector<double> s = sequential.EstimateFractions();
  for (uint64_t z = 0; z < 4; ++z) {
    EXPECT_DOUBLE_EQ(a[z], s[z]);
  }
}

TEST(GrrOracle, ReportBitsIsLogD) {
  GrrOracle oracle(256, 1.0);
  EXPECT_DOUBLE_EQ(oracle.ReportBits(), 8.0);
}

}  // namespace
}  // namespace ldp
