// Smoke test: the umbrella header is self-contained and exposes the full
// public surface.

#include "ldp.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ldp {
namespace {

TEST(Umbrella, PublicApiIsReachable) {
  Rng rng(1);
  auto mech = MakeMechanism(MethodSpec::Haar(), 64, 1.0);
  mech->EncodeUser(10, rng);
  mech->Finalize(rng);
  EXPECT_TRUE(std::isfinite(mech->RangeQuery(0, 63)));
  EXPECT_GT(OracleVariance(1.0, 100), 0.0);
  EXPECT_GT(OptimalBranchingFactor(true), 9.0);
  protocol::HaarHrrClient client(64, 1.0);
  EXPECT_EQ(client.EncodeSerialized(5, rng).size(), 18u);  // v2 envelope
  CauchyDistribution dist(64);
  Dataset data = Dataset::FromDistribution(dist, 100, rng);
  EXPECT_EQ(data.size(), 100u);
}

}  // namespace
}  // namespace ldp
