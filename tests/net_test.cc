// The TCP front-end end to end on loopback: the identical framed bytes
// through a real socket must produce query responses bit-identical to
// the in-process HandleMessage path — including while the connection is
// paused by queue backpressure — plus connection lifecycle (graceful
// half-close, idle timeout, framing violations) and session-cap churn
// parity between the two paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/random.h"
#include "net/snapshot_push.h"
#include "net/tcp_client.h"
#include "net/tcp_front_end.h"
#include "protocol/envelope.h"
#include "protocol/flat_protocol.h"
#include "protocol/haar_protocol.h"
#include "protocol/tree_protocol.h"
#include "service/aggregator_service.h"
#include "service/server_factory.h"
#include "service/state_wire.h"
#include "service/stream_wire.h"

namespace ldp {
namespace {

using net::TcpClient;
using net::TcpFrontEnd;
using net::TcpFrontEndConfig;
using service::AggregatorServer;
using service::AggregatorService;
using service::MakeAggregatorServer;
using service::QueryInterval;
using service::RangeQueryRequest;
using service::ServerKind;
using service::ServerKindName;
using service::ServerSpec;
using service::StreamEnd;

constexpr uint64_t kDomain = 128;
constexpr double kEps = 1.0;
constexpr uint64_t kUsers = 1500;
constexpr int kChunks = 4;

std::vector<uint64_t> TestValues(uint64_t n, uint64_t domain) {
  std::vector<uint64_t> values;
  values.reserve(n);
  Rng rng(0xBEEF);
  for (uint64_t i = 0; i < n; ++i) {
    values.push_back(rng.Bernoulli(0.5) ? rng.UniformInt(domain / 4)
                                        : rng.UniformInt(domain));
  }
  return values;
}

std::vector<std::vector<uint8_t>> EncodeChunks(
    const ServerSpec& spec, const std::vector<uint64_t>& values,
    uint64_t seed) {
  std::vector<std::vector<uint8_t>> chunks;
  uint64_t per_chunk = (values.size() + kChunks - 1) / kChunks;
  for (int c = 0; c < kChunks; ++c) {
    uint64_t begin = c * per_chunk;
    uint64_t end = std::min<uint64_t>(values.size(), begin + per_chunk);
    if (begin >= end) break;
    std::span<const uint64_t> slice(values.data() + begin, end - begin);
    Rng rng(seed + c);
    switch (spec.kind) {
      case ServerKind::kFlat: {
        protocol::FlatHrrClient client(spec.domain, spec.eps);
        chunks.push_back(client.EncodeUsersSerialized(slice, rng));
        break;
      }
      case ServerKind::kHaar: {
        protocol::HaarHrrClient client(spec.domain, spec.eps);
        chunks.push_back(client.EncodeUsersSerialized(slice, rng));
        break;
      }
      case ServerKind::kTree: {
        protocol::TreeHrrClient client(spec.domain, spec.fanout, spec.eps);
        chunks.push_back(client.EncodeUsersSerialized(slice, rng));
        break;
      }
      default:
        ADD_FAILURE() << "unsupported kind for this test";
        break;
    }
  }
  return chunks;
}

// The full message trace of one session (begin, chunks, end) — fed
// byte-for-byte to both transport paths.
std::vector<std::vector<uint8_t>> SessionTrace(
    uint64_t session_id, uint64_t server_id,
    const std::vector<std::vector<uint8_t>>& chunks, bool finalize) {
  std::vector<std::vector<uint8_t>> trace;
  trace.push_back(service::SerializeStreamBegin({session_id, server_id}));
  for (size_t c = 0; c < chunks.size(); ++c) {
    trace.push_back(
        service::SerializeStreamChunk(session_id, c, chunks[c]));
  }
  StreamEnd end;
  end.session_id = session_id;
  end.chunk_count = chunks.size();
  end.flags = finalize ? service::kStreamFlagFinalize : 0;
  trace.push_back(service::SerializeStreamEnd(end));
  return trace;
}

std::vector<uint8_t> QueryBytes(uint64_t server_id, uint64_t domain,
                                uint64_t query_id = 7) {
  RangeQueryRequest request;
  request.query_id = query_id;
  request.server_id = server_id;
  request.intervals = {{0, domain - 1},
                       {0, domain / 2},
                       {domain / 4, domain / 2 + 3},
                       {domain - 1, domain - 1}};
  return service::SerializeRangeQueryRequest(request);
}

template <typename Pred>
bool EventuallyTrue(Pred&& pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// Same gate pattern as service_test.cc: an absorb that parks the worker
// until the test opens it, so backpressure points are reached
// deterministically instead of by racing the strand.
class GatedServer : public AggregatorServer {
 public:
  std::string Name() const override { return "Gated"; }
  uint64_t domain() const override { return 1; }
  bool AbsorbSerialized(std::span<const uint8_t>) override { return true; }
  protocol::ParseError DoAbsorbBatchSerialized(std::span<const uint8_t>,
                                             uint64_t* accepted) override {
    absorbing_.store(true, std::memory_order_release);
    std::unique_lock<std::mutex> lock(mu_);
    gate_cv_.wait(lock, [&] { return open_; });
    batches_.fetch_add(1, std::memory_order_relaxed);
    if (accepted != nullptr) *accepted = 1;
    return protocol::ParseError::kOk;
  }
  double RangeQuery(uint64_t, uint64_t) const override { return 0.0; }
  RangeEstimate RangeQueryWithUncertainty(uint64_t, uint64_t) const override {
    return {0.0, 0.0};
  }
  std::vector<double> EstimateFrequencies() const override { return {0.0}; }

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    gate_cv_.notify_all();
  }
  bool absorbing() const { return absorbing_.load(std::memory_order_acquire); }
  uint64_t batches() const {
    return batches_.load(std::memory_order_relaxed);
  }

 protected:
  void DoFinalize() override {}
  // Inert state plumbing: this double exercises backpressure, never the
  // fan-in plane.
  service::StateKind state_kind() const override {
    return service::StateKind::kFlat;
  }
  double state_epsilon() const override { return 1.0; }
  void AppendStateBody(std::vector<uint8_t>&) const override {}
  bool RestoreStateBody(std::span<const uint8_t>) override { return true; }
  std::unique_ptr<AggregatorServer> DoCloneEmpty() const override {
    return nullptr;
  }
  service::MergeStatus DoMergeFrom(AggregatorServer&) override {
    return service::MergeStatus::kOk;
  }

 private:
  std::mutex mu_;
  std::condition_variable gate_cv_;
  bool open_ = false;
  std::atomic<bool> absorbing_{false};
  std::atomic<uint64_t> batches_{0};
};

// --- Bit-identity: socket path vs in-process path --------------------

TEST(NetLoopback, QueryResponsesBitIdenticalToInProcess) {
  // Every 1-D mechanism family: stream the identical session bytes (a)
  // through HandleMessage in process and (b) through a real loopback
  // socket, then compare the raw query-response bytes. The service's
  // determinism contract says they must match bit for bit.
  const std::vector<uint64_t> values = TestValues(kUsers, kDomain);
  for (const ServerSpec& spec : service::AllServerSpecs(kDomain, kEps)) {
    if (spec.kind == ServerKind::kAhead) continue;  // two-phase driver
    SCOPED_TRACE(ServerKindName(spec.kind));
    const auto chunks = EncodeChunks(spec, values, /*seed=*/0x51D);

    AggregatorService reference(/*worker_threads=*/2);
    const uint64_t ref_id = reference.AddServer(MakeAggregatorServer(spec));
    const auto trace = SessionTrace(11, ref_id, chunks, /*finalize=*/true);
    for (const auto& msg : trace) reference.HandleMessage(msg);
    ASSERT_TRUE(
        EventuallyTrue([&] { return reference.server_finalized(ref_id); }));
    const std::vector<uint8_t> expected =
        reference.HandleMessage(QueryBytes(ref_id, spec.domain));

    AggregatorService svc(/*worker_threads=*/2);
    const uint64_t server_id = svc.AddServer(MakeAggregatorServer(spec));
    ASSERT_EQ(server_id, ref_id);
    TcpFrontEnd front(svc);
    ASSERT_TRUE(front.Start());
    TcpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", front.port()));
    for (const auto& msg : trace) ASSERT_TRUE(client.Send(msg));
    // Stream messages are fire-and-forget; the query is the sync point,
    // but finalize is asynchronous, so poll until the server reports
    // ready before the authoritative comparison.
    ASSERT_TRUE(
        EventuallyTrue([&] { return svc.server_finalized(server_id); }));
    const std::vector<uint8_t> actual =
        client.Call(QueryBytes(server_id, spec.domain));
    EXPECT_EQ(actual, expected);
    client.Close();
    front.Stop();
    EXPECT_EQ(front.stats().protocol_errors, 0u);
  }
}

TEST(NetLoopback, MultipleConnectionsOneSessionEach) {
  // Chunks of one logical population split across several sessions and
  // connections still aggregate to the same final state: sessions are
  // independent, aggregation is commutative.
  const ServerSpec spec{ServerKind::kHaar, kDomain, kEps};
  const std::vector<uint64_t> values = TestValues(kUsers, kDomain);
  const auto chunks = EncodeChunks(spec, values, /*seed=*/0xA11);

  AggregatorService reference(/*worker_threads=*/0);
  const uint64_t ref_id = reference.AddServer(MakeAggregatorServer(spec));
  for (size_t c = 0; c < chunks.size(); ++c) {
    const auto trace = SessionTrace(100 + c, ref_id, {chunks[c]},
                                    /*finalize=*/c + 1 == chunks.size());
    for (const auto& msg : trace) reference.HandleMessage(msg);
  }
  ASSERT_TRUE(reference.server_finalized(ref_id));
  const std::vector<uint8_t> expected =
      reference.HandleMessage(QueryBytes(ref_id, spec.domain));

  AggregatorService svc(/*worker_threads=*/3);
  const uint64_t server_id = svc.AddServer(MakeAggregatorServer(spec));
  TcpFrontEnd front(svc);
  ASSERT_TRUE(front.Start());
  {
    // All sessions but the last stream concurrently, one connection
    // each; the finalizing session goes last so no chunk is late.
    std::vector<std::thread> streams;
    for (size_t c = 0; c + 1 < chunks.size(); ++c) {
      streams.emplace_back([&, c] {
        TcpClient client;
        ASSERT_TRUE(client.Connect("127.0.0.1", front.port()));
        for (const auto& msg :
             SessionTrace(100 + c, server_id, {chunks[c]}, false)) {
          ASSERT_TRUE(client.Send(msg));
        }
        client.ShutdownWrite();
        std::vector<uint8_t> eof_probe;
        EXPECT_FALSE(client.ReceiveMessage(&eof_probe));  // graceful EOF
      });
    }
    for (auto& t : streams) t.join();
    svc.Drain();  // every concurrent chunk admitted before the finalize
  }
  TcpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", front.port()));
  const size_t last = chunks.size() - 1;
  for (const auto& msg :
       SessionTrace(100 + last, server_id, {chunks[last]}, true)) {
    ASSERT_TRUE(client.Send(msg));
  }
  ASSERT_TRUE(
      EventuallyTrue([&] { return svc.server_finalized(server_id); }));
  EXPECT_EQ(client.Call(QueryBytes(server_id, spec.domain)), expected);
  front.Stop();
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.incomplete_streams, 0u);
  EXPECT_EQ(stats.duplicate_chunks, 0u);
}

// --- Backpressure: socket pause instead of a blocked thread ----------

TEST(NetBackpressure, ForcedSocketPauseStillBitIdentical) {
  // Two servers, one worker each: the gated server's strand is held
  // shut, its 1-chunk queue fills, and the connection's third gated
  // chunk forces a socket pause (TryHandleMessage would-block →
  // EPOLLIN deregistered). The haar session's bytes are already queued
  // BEHIND the pause on the same connection, so nothing of it may be
  // processed early; once the gate opens, the drain hook re-arms the
  // read, the parked chunk is re-presented (exactly once), and the
  // remaining bytes replay — query responses must still be
  // bit-identical to the in-process path.
  const ServerSpec spec{ServerKind::kHaar, kDomain, kEps};
  const std::vector<uint64_t> values = TestValues(kUsers, kDomain);
  const auto chunks = EncodeChunks(spec, values, /*seed=*/0xFACE);

  AggregatorService reference(/*worker_threads=*/0);
  const uint64_t ref_gated = reference.AddServer(
      [] {
        auto owned = std::make_unique<GatedServer>();
        owned->Open();
        return owned;
      }());
  const uint64_t ref_haar = reference.AddServer(MakeAggregatorServer(spec));
  (void)ref_gated;
  const auto haar_trace = SessionTrace(21, ref_haar, chunks, true);
  for (const auto& msg : haar_trace) reference.HandleMessage(msg);
  ASSERT_TRUE(reference.server_finalized(ref_haar));
  const std::vector<uint8_t> expected =
      reference.HandleMessage(QueryBytes(ref_haar, spec.domain));

  auto owned = std::make_unique<GatedServer>();
  GatedServer* gated = owned.get();
  AggregatorService svc(/*worker_threads=*/2, /*queue_high_water=*/1);
  const uint64_t gated_id = svc.AddServer(std::move(owned));
  const uint64_t haar_id = svc.AddServer(MakeAggregatorServer(spec));
  ASSERT_EQ(haar_id, ref_haar);
  TcpFrontEnd front(svc);
  ASSERT_TRUE(front.Start());

  TcpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", front.port()));
  // Gated session: chunk 0 parks a worker inside the gate, chunk 1
  // fills the 1-slot queue, chunk 2 must pause the connection.
  const std::vector<uint8_t> tiny = {0xAB};
  ASSERT_TRUE(
      client.Send(service::SerializeStreamBegin({20, gated_id})));
  ASSERT_TRUE(client.Send(service::SerializeStreamChunk(20, 0, tiny)));
  ASSERT_TRUE(EventuallyTrue([&] { return gated->absorbing(); }));
  ASSERT_TRUE(client.Send(service::SerializeStreamChunk(20, 1, tiny)));
  ASSERT_TRUE(client.Send(service::SerializeStreamChunk(20, 2, tiny)));
  ASSERT_TRUE(
      EventuallyTrue([&] { return svc.stats().socket_pauses >= 1; }));
  EXPECT_GE(front.stats().read_pauses, 1u);
  // The haar session rides the same (paused) connection.
  for (const auto& msg : haar_trace) ASSERT_TRUE(client.Send(msg));
  StreamEnd gated_end;
  gated_end.session_id = 20;
  gated_end.chunk_count = 3;
  ASSERT_TRUE(client.Send(service::SerializeStreamEnd(gated_end)));
  // Paused means parked: the haar bytes sit in buffers, unprocessed.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(svc.server_finalized(haar_id));

  gated->Open();
  ASSERT_TRUE(
      EventuallyTrue([&] { return svc.server_finalized(haar_id); }));
  ASSERT_TRUE(EventuallyTrue([&] { return front.stats().read_resumes >= 1; }));
  EXPECT_EQ(client.Call(QueryBytes(haar_id, spec.domain)), expected);
  svc.Drain();
  front.Stop();

  const service::ServiceStats stats = svc.stats();
  EXPECT_GE(stats.socket_pauses, 1u);
  EXPECT_EQ(stats.backpressure_waits, 0u);  // no thread ever blocked
  EXPECT_EQ(stats.duplicate_chunks, 0u);    // re-present admitted once
  EXPECT_EQ(stats.incomplete_streams, 0u);
  EXPECT_EQ(gated->batches(), 3u);  // every gated chunk absorbed once
}

// --- Session-cap churn: TCP path vs in-process path ------------------

TEST(NetChurn, SessionCapRejectionsMatchInProcessBitForBit) {
  // A tiny session cap, begins past it, and a full data session: both
  // transport paths must land on identical rejection accounting and
  // identical query bytes.
  const ServerSpec spec{ServerKind::kFlat, kDomain, kEps};
  const std::vector<uint64_t> values = TestValues(kUsers / 2, kDomain);
  const auto chunks = EncodeChunks(spec, values, /*seed=*/0xCA9);
  constexpr size_t kCap = 4;
  constexpr size_t kExtra = 5;

  // One message trace drives both services: kCap - 1 empty sessions,
  // the data session (which finalizes), then kExtra doomed begins.
  std::vector<std::vector<uint8_t>> trace;
  for (size_t s = 0; s + 1 < kCap; ++s) {
    trace.push_back(service::SerializeStreamBegin({500 + s, 0}));
    StreamEnd end;
    end.session_id = 500 + s;
    end.chunk_count = 0;
    trace.push_back(service::SerializeStreamEnd(end));
  }
  for (const auto& msg : SessionTrace(900, 0, chunks, true)) {
    trace.push_back(msg);
  }
  for (size_t s = 0; s < kExtra; ++s) {
    trace.push_back(service::SerializeStreamBegin({600 + s, 0}));
  }

  AggregatorService reference(/*worker_threads=*/0,
                              AggregatorService::kDefaultQueueHighWater,
                              /*max_sessions=*/kCap);
  reference.AddServer(MakeAggregatorServer(spec));
  for (const auto& msg : trace) reference.HandleMessage(msg);
  ASSERT_TRUE(reference.server_finalized(0));
  const std::vector<uint8_t> expected =
      reference.HandleMessage(QueryBytes(0, spec.domain));
  const service::ServiceStats ref_stats = reference.stats();
  ASSERT_EQ(ref_stats.rejected_sessions, kExtra);

  AggregatorService svc(/*worker_threads=*/2,
                        AggregatorService::kDefaultQueueHighWater,
                        /*max_sessions=*/kCap);
  svc.AddServer(MakeAggregatorServer(spec));
  TcpFrontEnd front(svc);
  ASSERT_TRUE(front.Start());
  TcpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", front.port()));
  for (const auto& msg : trace) ASSERT_TRUE(client.Send(msg));
  ASSERT_TRUE(EventuallyTrue([&] { return svc.server_finalized(0); }));
  // The query response doubles as the sync point for the trailing
  // (fire-and-forget) rejected begins.
  ASSERT_TRUE(EventuallyTrue(
      [&] { return svc.stats().rejected_sessions == kExtra; }));
  EXPECT_EQ(client.Call(QueryBytes(0, spec.domain)), expected);
  svc.Drain();
  front.Stop();

  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.rejected_sessions, ref_stats.rejected_sessions);
  EXPECT_EQ(stats.duplicate_sessions, ref_stats.duplicate_sessions);
  EXPECT_EQ(stats.incomplete_streams, ref_stats.incomplete_streams);
  EXPECT_EQ(stats.unknown_sessions, ref_stats.unknown_sessions);
  EXPECT_EQ(stats.chunks_absorbed, ref_stats.chunks_absorbed);
  EXPECT_EQ(stats.queries_answered, ref_stats.queries_answered);
}

// --- Connection lifecycle --------------------------------------------

TEST(NetLifecycle, GracefulHalfCloseFlushesResponses) {
  // "Send everything, shutdown(SHUT_WR), read answers" is a correct
  // client: the front-end processes the buffered messages and flushes
  // every response before closing.
  const ServerSpec spec{ServerKind::kHaar, kDomain, kEps};
  const std::vector<uint64_t> values = TestValues(kUsers / 4, kDomain);
  const auto chunks = EncodeChunks(spec, values, /*seed=*/0x7A);
  AggregatorService svc(/*worker_threads=*/0);
  const uint64_t server_id = svc.AddServer(MakeAggregatorServer(spec));
  TcpFrontEnd front(svc);
  ASSERT_TRUE(front.Start());

  TcpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", front.port()));
  for (const auto& msg : SessionTrace(31, server_id, chunks, true)) {
    ASSERT_TRUE(client.Send(msg));
  }
  ASSERT_TRUE(client.Send(QueryBytes(server_id, spec.domain, 41)));
  ASSERT_TRUE(client.Send(QueryBytes(server_id, spec.domain, 42)));
  client.ShutdownWrite();
  std::vector<uint8_t> first, second, eof_probe;
  ASSERT_TRUE(client.ReceiveMessage(&first));
  ASSERT_TRUE(client.ReceiveMessage(&second));
  EXPECT_FALSE(client.ReceiveMessage(&eof_probe));  // then clean EOF
  EXPECT_NE(first, second);  // distinct query ids echo back
  ASSERT_TRUE(
      EventuallyTrue([&] { return front.stats().connections_closed >= 1; }));
  EXPECT_EQ(front.stats().protocol_errors, 0u);
  EXPECT_EQ(front.stats().responses_sent, 2u);
}

TEST(NetLifecycle, IdleConnectionIsClosed) {
  AggregatorService svc(/*worker_threads=*/0);
  TcpFrontEndConfig config;
  config.idle_timeout_ms = 100;
  TcpFrontEnd front(svc, config);
  ASSERT_TRUE(front.Start());
  TcpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", front.port()));
  ASSERT_TRUE(EventuallyTrue(
      [&] { return front.stats().connections_accepted >= 1; }));
  ASSERT_TRUE(
      EventuallyTrue([&] { return front.stats().idle_closes >= 1; }));
  std::vector<uint8_t> eof_probe;
  EXPECT_FALSE(client.ReceiveMessage(&eof_probe));
  front.Stop();
}

TEST(NetLifecycle, MaxConnectionsRejectsTheOverflow) {
  AggregatorService svc(/*worker_threads=*/0);
  TcpFrontEndConfig config;
  config.max_connections = 2;
  TcpFrontEnd front(svc, config);
  ASSERT_TRUE(front.Start());
  TcpClient a, b, c;
  ASSERT_TRUE(a.Connect("127.0.0.1", front.port()));
  ASSERT_TRUE(b.Connect("127.0.0.1", front.port()));
  ASSERT_TRUE(EventuallyTrue(
      [&] { return front.stats().connections_accepted >= 2; }));
  // The third connect() succeeds at TCP level but is closed on accept.
  ASSERT_TRUE(c.Connect("127.0.0.1", front.port()));
  ASSERT_TRUE(EventuallyTrue(
      [&] { return front.stats().connections_rejected >= 1; }));
  std::vector<uint8_t> eof_probe;
  EXPECT_FALSE(c.ReceiveMessage(&eof_probe));
  front.Stop();
}

// --- Framing discipline ----------------------------------------------

TEST(NetProtocol, BadMagicClosesTheConnection) {
  AggregatorService svc(/*worker_threads=*/0);
  TcpFrontEnd front(svc);
  ASSERT_TRUE(front.Start());
  TcpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", front.port()));
  const std::vector<uint8_t> junk = {0xDE, 0xAD, 0xBE, 0xEF,
                                     0x00, 0x00, 0x00, 0x00};
  ASSERT_TRUE(client.Send(junk));
  ASSERT_TRUE(
      EventuallyTrue([&] { return front.stats().protocol_errors >= 1; }));
  std::vector<uint8_t> eof_probe;
  EXPECT_FALSE(client.ReceiveMessage(&eof_probe));
  front.Stop();
}

TEST(NetProtocol, OversizedDeclaredLengthClosesTheConnection) {
  AggregatorService svc(/*worker_threads=*/0);
  TcpFrontEndConfig config;
  config.max_message_bytes = 1024;
  TcpFrontEnd front(svc, config);
  ASSERT_TRUE(front.Start());
  TcpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", front.port()));
  std::vector<uint8_t> header = {
      protocol::kEnvelopeMagic0, protocol::kEnvelopeMagic1,
      protocol::kWireVersionV2,  0x11,
      0xFF,                      0xFF,
      0xFF,                      0x7F};  // ~2 GiB declared payload
  ASSERT_TRUE(client.Send(header));
  ASSERT_TRUE(
      EventuallyTrue([&] { return front.stats().protocol_errors >= 1; }));
  std::vector<uint8_t> eof_probe;
  EXPECT_FALSE(client.ReceiveMessage(&eof_probe));
  front.Stop();
}

TEST(NetProtocol, TruncatedFinalMessageIsAProtocolError) {
  AggregatorService svc(/*worker_threads=*/0);
  TcpFrontEnd front(svc);
  ASSERT_TRUE(front.Start());
  TcpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", front.port()));
  std::vector<uint8_t> begin = service::SerializeStreamBegin({1, 0});
  begin.pop_back();  // hang up one byte short of a complete frame
  ASSERT_TRUE(client.Send(begin));
  client.ShutdownWrite();
  ASSERT_TRUE(
      EventuallyTrue([&] { return front.stats().protocol_errors >= 1; }));
  EXPECT_EQ(front.stats().messages_routed, 0u);
  front.Stop();
}

// --- Receive deadlines ------------------------------------------------

TEST(NetTimeout, ReceiveDeadlineSurfacesTypedTimeout) {
  // Stream messages are fire-and-forget: the front-end never writes
  // back, so a timed receive after one is the cleanest "server accepts,
  // never replies" scenario.
  AggregatorService svc(/*worker_threads=*/0);
  svc.AddServer(MakeAggregatorServer({ServerKind::kFlat, kDomain, kEps}));
  TcpFrontEnd front(svc);
  ASSERT_TRUE(front.Start());
  TcpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", front.port()));

  client.set_receive_timeout_ms(50);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(client.Call(service::SerializeStreamBegin({1, 0})).empty());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(client.last_receive_status(), net::RecvStatus::kTimeout);
  EXPECT_EQ(net::RecvStatusName(client.last_receive_status()), "timeout");
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            50);

  // The connection survives the timeout: with the deadline cleared, a
  // real request/response round trip still works.
  client.set_receive_timeout_ms(0);
  EXPECT_FALSE(client.Call(QueryBytes(0, kDomain)).empty());
  EXPECT_EQ(client.last_receive_status(), net::RecvStatus::kOk);
  front.Stop();
}

// --- The distributed fan-in plane over real sockets -------------------

TEST(NetFanIn, TwoShardSnapshotPushMatchesSingleProcess) {
  // The headline path: two shard-local servers ingest disjoint halves,
  // push their serialized state over TCP with the finalize flag, and
  // the query node's response bytes must equal the single-process
  // reference — the wire-level form of the merge determinism contract.
  const ServerSpec spec{ServerKind::kTree, kDomain, kEps};
  const std::vector<uint64_t> values = TestValues(kUsers, kDomain);
  const auto chunks = EncodeChunks(spec, values, /*seed=*/0xFA11);
  ASSERT_GE(chunks.size(), 2u);

  AggregatorService reference(/*worker_threads=*/0);
  const uint64_t ref_id = reference.AddServer(MakeAggregatorServer(spec));
  const auto trace = SessionTrace(61, ref_id, chunks, /*finalize=*/true);
  for (const auto& msg : trace) reference.HandleMessage(msg);
  ASSERT_TRUE(reference.server_finalized(ref_id));
  const std::vector<uint8_t> expected =
      reference.HandleMessage(QueryBytes(ref_id, spec.domain));

  // Shard servers: the same chunk bytes, split between two "processes".
  std::vector<std::unique_ptr<AggregatorServer>> shards;
  for (int s = 0; s < 2; ++s) shards.push_back(MakeAggregatorServer(spec));
  for (size_t c = 0; c < chunks.size(); ++c) {
    ASSERT_EQ(shards[c % 2]->AbsorbBatchSerialized(chunks[c]),
              protocol::ParseError::kOk);
  }

  AggregatorService svc(/*worker_threads=*/2);
  const uint64_t server_id = svc.AddServer(MakeAggregatorServer(spec));
  TcpFrontEnd front(svc);
  ASSERT_TRUE(front.Start());
  for (int s = 0; s < 2; ++s) {
    TcpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", front.port()));
    net::SnapshotPushOptions options;
    options.receive_timeout_ms = 10'000;
    net::SnapshotPushResult result = net::PushStateSnapshot(
        client, /*merge_id=*/77, server_id, /*shard_index=*/s,
        /*shard_count=*/2, service::kMergeFlagFinalize,
        shards[s]->SerializeState(), options);
    ASSERT_FALSE(result.transport_error)
        << net::RecvStatusName(client.last_receive_status());
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.shards_received, static_cast<uint64_t>(s) + 1);
  }
  ASSERT_TRUE(svc.server_finalized(server_id));
  TcpClient query;
  ASSERT_TRUE(query.Connect("127.0.0.1", front.port()));
  EXPECT_EQ(query.Call(QueryBytes(server_id, spec.domain)), expected);
  front.Stop();

  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.merge_requests, 2u);
  EXPECT_EQ(stats.merges_completed, 1u);
  EXPECT_EQ(stats.merge_rejects, 0u);
  EXPECT_EQ(stats.merge_would_block, 0u);
  EXPECT_EQ(svc.registry().GetHistogram("merge.absorb_ns").Snapshot().count,
            2u);
  EXPECT_EQ(svc.registry().GetHistogram("merge.fan_in_ns").Snapshot().count,
            1u);
}

TEST(NetFanIn, WouldBlockRetriesReconcileWithServiceCounters) {
  // A 1-slot snapshot buffer and two interleaved fan-in groups: group
  // B's first push keeps bouncing off the cap until group A completes
  // and frees the buffer. The pusher's retry count must reconcile
  // exactly with the service's merge_would_block counter — the same
  // invariant loadgen asserts after a fan-in run.
  const ServerSpec spec{ServerKind::kFlat, kDomain, kEps};
  const std::vector<uint64_t> values = TestValues(kUsers / 4, kDomain);
  const auto chunks = EncodeChunks(spec, values, /*seed=*/0xB10C);
  auto shard_snapshot = [&](size_t chunk) {
    std::unique_ptr<AggregatorServer> shard = MakeAggregatorServer(spec);
    EXPECT_EQ(shard->AbsorbBatchSerialized(chunks[chunk]),
              protocol::ParseError::kOk);
    return shard->SerializeState();
  };

  AggregatorService svc(/*worker_threads=*/0);
  svc.set_merge_buffer_limit(1);
  const uint64_t id_a = svc.AddServer(MakeAggregatorServer(spec));
  const uint64_t id_b = svc.AddServer(MakeAggregatorServer(spec));
  TcpFrontEnd front(svc);
  ASSERT_TRUE(front.Start());

  TcpClient pusher;
  ASSERT_TRUE(pusher.Connect("127.0.0.1", front.port()));
  // Group A, shard 0: fills the 1-slot buffer (not completing: 1 of 2).
  net::SnapshotPushResult a0 = net::PushStateSnapshot(
      pusher, /*merge_id=*/1, id_a, 0, 2, 0, shard_snapshot(0));
  ASSERT_TRUE(a0.ok);
  // Group B, shard 0, from a second connection: bounces until A drains.
  net::SnapshotPushResult b0;
  std::thread blocked([&] {
    TcpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", front.port()));
    net::SnapshotPushOptions options;
    options.max_retries = 200;
    options.initial_backoff_us = 1000;
    options.max_backoff_us = 4000;
    options.jitter_seed = 0xB0;
    b0 = net::PushStateSnapshot(client, /*merge_id=*/2, id_b, 0, 2, 0,
                                shard_snapshot(2), options);
  });
  ASSERT_TRUE(EventuallyTrue(
      [&] { return svc.stats().merge_would_block >= 1; }));
  // Group A's completing push bypasses the cap, completes, and frees
  // the slot for group B's next retry.
  net::SnapshotPushResult a1 = net::PushStateSnapshot(
      pusher, /*merge_id=*/1, id_a, 1, 2, 0, shard_snapshot(1));
  ASSERT_TRUE(a1.ok);
  blocked.join();
  ASSERT_TRUE(b0.ok);
  EXPECT_GE(b0.retries, 1u);
  // Finish group B (completing push: exempt from the cap).
  net::SnapshotPushResult b1 = net::PushStateSnapshot(
      pusher, /*merge_id=*/2, id_b, 1, 2, 0, shard_snapshot(3));
  ASSERT_TRUE(b1.ok);
  front.Stop();

  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.merge_would_block, b0.retries);
  EXPECT_EQ(stats.merges_completed, 2u);
  EXPECT_EQ(stats.merge_rejects, 0u);
  EXPECT_EQ(stats.merge_requests, 4u + b0.retries);
}

TEST(NetProtocol, MalformedButFramedMessageSurvivesTheConnection) {
  // A well-framed message the service cannot route (unknown mechanism
  // tag) is the SERVICE's problem: counted malformed, skipped, and the
  // connection keeps answering.
  const ServerSpec spec{ServerKind::kFlat, kDomain, kEps};
  AggregatorService svc(/*worker_threads=*/0);
  const uint64_t server_id = svc.AddServer(MakeAggregatorServer(spec));
  svc.FinalizeServer(server_id);
  TcpFrontEnd front(svc);
  ASSERT_TRUE(front.Start());
  TcpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", front.port()));
  const std::vector<uint8_t> framed_junk = {
      protocol::kEnvelopeMagic0, protocol::kEnvelopeMagic1,
      protocol::kWireVersionV2,  0x7E /* unknown tag */,
      0x02,                      0x00,
      0x00,                      0x00,
      0xAA,                      0xBB};
  ASSERT_TRUE(client.Send(framed_junk));
  const std::vector<uint8_t> response =
      client.Call(QueryBytes(server_id, spec.domain));
  EXPECT_FALSE(response.empty());
  EXPECT_EQ(front.stats().protocol_errors, 0u);
  EXPECT_EQ(svc.stats().malformed_messages, 1u);
  front.Stop();
}

}  // namespace
}  // namespace ldp
