// End-to-end integration tests stitching every module together the way the
// paper's evaluation does: sample a Cauchy population, run the full client/
// aggregator protocol for several methods, and check the paper's *ordering*
// claims (who beats whom) plus absolute accuracy envelopes at small scale.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "core/method.h"
#include "core/variance.h"
#include "data/distributions.h"
#include "data/workload.h"
#include "eval/experiment.h"
#include "frequency/frequency_oracle.h"

namespace ldp {
namespace {

ExperimentConfig BaseConfig(uint64_t domain, uint64_t population) {
  ExperimentConfig config;
  config.domain = domain;
  config.population = population;
  config.epsilon = 1.1;  // the paper's e^eps = 3 default
  config.trials = 3;
  config.seed = 1234;
  config.threads = 2;
  return config;
}

double MseFor(const MethodSpec& method, uint64_t domain, uint64_t population,
              const QueryWorkload& workload, double eps = 1.1,
              uint64_t seed = 1234) {
  ExperimentConfig config = BaseConfig(domain, population);
  config.method = method;
  config.epsilon = eps;
  config.seed = seed;
  CauchyDistribution dist(domain);
  return RunRangeExperiment(config, dist, workload).mean_mse();
}

TEST(Integration, StructuredMethodsBeatFlatOnLongRanges) {
  // Paper: "for larger domain sizes and queries, our methods outperform
  // the flat method by a high margin".
  const uint64_t d = 1 << 10;
  const uint64_t n = 100000;
  QueryWorkload longs = QueryWorkload::FixedLength(d / 2);
  double flat = MseFor(MethodSpec::Flat(OracleKind::kOueSimulated), d, n,
                       longs);
  double hh = MseFor(MethodSpec::Hh(4, OracleKind::kOueSimulated, true), d,
                     n, longs);
  double haar = MseFor(MethodSpec::Haar(), d, n, longs);
  EXPECT_LT(hh * 2, flat);
  EXPECT_LT(haar * 2, flat);
}

TEST(Integration, FlatWinsPointQueries) {
  // Paper Figure 4, r = 1 column: flat is competitive/best at points.
  const uint64_t d = 256;
  const uint64_t n = 60000;
  QueryWorkload points = QueryWorkload::FixedLength(1);
  double flat = MseFor(MethodSpec::Flat(OracleKind::kOueSimulated), d, n,
                       points);
  double hh2 = MseFor(MethodSpec::Hh(2, OracleKind::kOueSimulated, true), d,
                      n, points);
  double haar = MseFor(MethodSpec::Haar(), d, n, points);
  EXPECT_LT(flat, hh2);
  EXPECT_LT(flat, haar);
}

TEST(Integration, ConsistencyImprovesHierarchies) {
  const uint64_t d = 1 << 10;
  const uint64_t n = 60000;
  QueryWorkload mixed = QueryWorkload::Random(400, 99);
  double raw = MseFor(MethodSpec::Hh(8, OracleKind::kOueSimulated, false),
                      d, n, mixed);
  double ci = MseFor(MethodSpec::Hh(8, OracleKind::kOueSimulated, true), d,
                     n, mixed);
  EXPECT_LT(ci, raw);
}

TEST(Integration, HaarAndConsistentHhAreComparable) {
  // Paper Section 5.6: "the regret for choosing a wrong method is low" —
  // HHc4 and HaarHRR land within a small factor of each other.
  const uint64_t d = 1 << 10;
  const uint64_t n = 100000;
  QueryWorkload mixed = QueryWorkload::Random(400, 7);
  double hh = MseFor(MethodSpec::Hh(4, OracleKind::kOueSimulated, true), d,
                     n, mixed);
  double haar = MseFor(MethodSpec::Haar(), d, n, mixed);
  double ratio = hh / haar;
  EXPECT_GT(ratio, 1.0 / 3.0);
  EXPECT_LT(ratio, 3.0);
}

TEST(Integration, ErrorDecreasesWithEpsilon) {
  // Tables 5/6 trend: MSE falls monotonically (within noise) as eps grows.
  const uint64_t d = 256;
  const uint64_t n = 50000;
  QueryWorkload mixed = QueryWorkload::Random(300, 11);
  double mse_02 =
      MseFor(MethodSpec::Haar(), d, n, mixed, /*eps=*/0.2);
  double mse_06 =
      MseFor(MethodSpec::Haar(), d, n, mixed, /*eps=*/0.6);
  double mse_14 =
      MseFor(MethodSpec::Haar(), d, n, mixed, /*eps=*/1.4);
  EXPECT_GT(mse_02, mse_06);
  EXPECT_GT(mse_06, mse_14);
}

TEST(Integration, PrefixQueriesBeatArbitraryRanges) {
  // Section 4.7: prefix queries touch one fringe, roughly halving the
  // variance. Compare prefix workload MSE against same-length arbitrary
  // ranges for HHc.
  const uint64_t d = 1 << 10;
  const uint64_t n = 100000;
  double prefix = MseFor(MethodSpec::Hh(4, OracleKind::kOueSimulated, true),
                         d, n, QueryWorkload::Prefixes());
  double arbitrary =
      MseFor(MethodSpec::Hh(4, OracleKind::kOueSimulated, true), d, n,
             QueryWorkload::Random(1024, 13));
  EXPECT_LT(prefix, arbitrary * 1.2);
}

TEST(Integration, MseWithinTheoreticalEnvelope) {
  // Pooled MSE for HHc must respect the Eq. 2 worst-case bound, and should
  // not be suspiciously far below it either (sanity of the simulation).
  const uint64_t d = 256;
  const uint64_t n = 20000;
  const double eps = 1.1;
  QueryWorkload longs = QueryWorkload::FixedLength(128);
  double mse = MseFor(MethodSpec::Hh(8, OracleKind::kOueSimulated, true), d,
                      n, longs, eps);
  double bound = HhConsistentRangeVarianceBound(d, 8, 128, eps, n);
  EXPECT_LT(mse, bound * 1.2);
  EXPECT_GT(mse, bound / 100.0);
}

TEST(Integration, RobustAcrossDistributions) {
  // Paper Section 5.4: accuracy does not depend much on the data shape.
  const uint64_t d = 256;
  const uint64_t n = 50000;
  QueryWorkload mixed = QueryWorkload::Random(300, 17);
  ExperimentConfig config = BaseConfig(d, n);
  config.method = MethodSpec::Haar();
  std::vector<double> mses;
  CauchyDistribution cauchy(d);
  ZipfDistribution zipf(d);
  UniformDistribution uniform(d);
  BimodalGaussianDistribution bimodal(d);
  for (const ValueDistribution* dist :
       std::vector<const ValueDistribution*>{&cauchy, &zipf, &uniform,
                                             &bimodal}) {
    mses.push_back(RunRangeExperiment(config, *dist, mixed).mean_mse());
  }
  double lo = *std::min_element(mses.begin(), mses.end());
  double hi = *std::max_element(mses.begin(), mses.end());
  EXPECT_LT(hi / lo, 4.0);
}

TEST(Integration, CommunicationCostsMatchPaperClaims) {
  // HaarHRR and HH-HRR reports are tens of bits; HH-OUE(sim) models the
  // D-bit OUE protocol. (Claim: wavelet/HRR methods are "practical to
  // deploy at scale".)
  auto haar = MakeMechanism(MethodSpec::Haar(), 1 << 20, 1.1);
  EXPECT_LT(haar->ReportBits(), 40.0);
  auto hh_hrr =
      MakeMechanism(MethodSpec::Hh(2, OracleKind::kHrr, true), 1 << 20, 1.1);
  EXPECT_LT(hh_hrr->ReportBits(), 40.0);
  auto flat_oue =
      MakeMechanism(MethodSpec::Flat(OracleKind::kOue), 1 << 20, 1.1);
  EXPECT_GT(flat_oue->ReportBits(), 1e5);
}

}  // namespace
}  // namespace ldp
