#include "eval/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ldp {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"eps", "HHc2", "HaarHRR"});
  table.AddRow({"0.2", "4.269", "3.684"});
  table.AddRow({"1.4", "0.571", "0.601"});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("eps"), std::string::npos);
  EXPECT_NE(out.find("HaarHRR"), std::string::npos);
  EXPECT_NE(out.find("4.269"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
  // All lines after padding should share the header's column offsets:
  // check that the second column starts at the same index in each row.
  std::istringstream is(out);
  std::string header;
  std::getline(is, header);
  size_t col = header.find("HHc2");
  std::string sep;
  std::getline(is, sep);
  std::string row;
  while (std::getline(is, row)) {
    ASSERT_GE(row.size(), col);
    EXPECT_NE(row[col], ' ');
  }
}

TEST(TablePrinter, RejectsWrongArity) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "");
}

TEST(FormatScaled, PaperStyleTimes1000) {
  // The paper's tables multiply MSE by 1000 and print 3 decimals.
  EXPECT_EQ(FormatScaled(0.004269, 1000.0, 3), "4.269");
  EXPECT_EQ(FormatScaled(0.000601, 1000.0, 3), "0.601");
  EXPECT_EQ(FormatScaled(0.5, 1.0, 2), "0.50");
}

TEST(MarkRowMinimum, MarksSmallestCell) {
  std::vector<double> values = {4.2, 3.6, 5.0};
  std::vector<std::string> cells = {"4.2", "3.6", "5.0"};
  MarkRowMinimum(values, cells);
  EXPECT_EQ(cells[0], "4.2");
  EXPECT_EQ(cells[1], "3.6*");
  EXPECT_EQ(cells[2], "5.0");
}

TEST(MarkRowMinimum, EmptyIsNoOp) {
  std::vector<double> values;
  std::vector<std::string> cells;
  MarkRowMinimum(values, cells);
  EXPECT_TRUE(cells.empty());
}

}  // namespace
}  // namespace ldp
