#include "core/consistency.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "common/stats.h"

namespace ldp {
namespace {

// Builds a random "noisy tree" around a ground-truth distribution:
// truth[l][k] is the exact fraction, noise sigma per node.
std::vector<std::vector<double>> NoisyTree(
    const std::vector<std::vector<double>>& truth, double sigma, Rng& rng) {
  std::vector<std::vector<double>> levels = truth;
  for (auto& level : levels) {
    for (double& v : level) {
      v += sigma * rng.Gaussian();
    }
  }
  return levels;
}

// Exact fractions for a simple skewed distribution on B^h leaves.
std::vector<std::vector<double>> ExactTree(uint64_t fanout, uint32_t height) {
  uint64_t leaves = 1;
  for (uint32_t l = 0; l < height; ++l) leaves *= fanout;
  std::vector<double> leaf(leaves);
  double total = 0.0;
  for (uint64_t z = 0; z < leaves; ++z) {
    leaf[z] = 1.0 / static_cast<double>(z + 1);
    total += leaf[z];
  }
  for (double& v : leaf) v /= total;
  std::vector<std::vector<double>> levels(height + 1);
  levels[height] = leaf;
  for (uint32_t l = height; l-- > 0;) {
    levels[l].assign(levels[l + 1].size() / fanout, 0.0);
    for (size_t k = 0; k < levels[l].size(); ++k) {
      for (uint64_t c = 0; c < fanout; ++c) {
        levels[l][k] += levels[l + 1][k * fanout + c];
      }
    }
  }
  return levels;
}

TEST(Consistency, NoOpOnAlreadyConsistentTree) {
  auto levels = ExactTree(2, 4);
  auto copy = levels;
  EnforceHierarchicalConsistency(levels, 2);
  for (size_t l = 0; l < levels.size(); ++l) {
    for (size_t k = 0; k < levels[l].size(); ++k) {
      EXPECT_NEAR(levels[l][k], copy[l][k], 1e-12) << "l=" << l << " k=" << k;
    }
  }
}

class ConsistencyPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(ConsistencyPropertyTest, ParentsEqualChildSumsAfterwards) {
  auto [fanout, height] = GetParam();
  Rng rng(fanout * 100 + height);
  auto levels = NoisyTree(ExactTree(fanout, height), 0.05, rng);
  EnforceHierarchicalConsistency(levels, fanout);
  EXPECT_DOUBLE_EQ(levels[0][0], 1.0);
  for (size_t l = 0; l + 1 < levels.size(); ++l) {
    for (size_t k = 0; k < levels[l].size(); ++k) {
      double child_sum = 0.0;
      for (uint64_t c = 0; c < fanout; ++c) {
        child_sum += levels[l + 1][k * fanout + c];
      }
      EXPECT_NEAR(levels[l][k], child_sum, 1e-9) << "l=" << l << " k=" << k;
    }
  }
}

TEST_P(ConsistencyPropertyTest, UnbiasedAroundTruth) {
  auto [fanout, height] = GetParam();
  auto truth = ExactTree(fanout, height);
  Rng rng(999 + fanout);
  const int trials = 400;
  // Average the post-processed leaf 0 estimate over noise draws.
  RunningStat leaf0;
  for (int t = 0; t < trials; ++t) {
    auto levels = NoisyTree(truth, 0.05, rng);
    EnforceHierarchicalConsistency(levels, fanout);
    leaf0.Add(levels[height][0]);
  }
  EXPECT_NEAR(leaf0.mean(), truth[height][0], 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConsistencyPropertyTest,
    ::testing::Values(std::make_tuple(uint64_t{2}, uint32_t{3}),
                      std::make_tuple(uint64_t{2}, uint32_t{6}),
                      std::make_tuple(uint64_t{4}, uint32_t{3}),
                      std::make_tuple(uint64_t{8}, uint32_t{2}),
                      std::make_tuple(uint64_t{16}, uint32_t{2})));

TEST(Consistency, ReducesLeafVarianceByLemma46Factor) {
  // Lemma 4.6: least-squares estimates cut per-node variance to at most
  // B/(B+1) of the raw variance. Measure on i.i.d. unit noise.
  const uint64_t fanout = 4;
  const uint32_t height = 3;
  auto truth = ExactTree(fanout, height);
  Rng rng(12345);
  const double sigma = 1.0;
  const int trials = 800;
  RunningStat raw_err;
  RunningStat ci_err;
  for (int t = 0; t < trials; ++t) {
    auto levels = NoisyTree(truth, sigma, rng);
    raw_err.Add(levels[height][5] - truth[height][5]);
    EnforceHierarchicalConsistency(levels, fanout);
    ci_err.Add(levels[height][5] - truth[height][5]);
  }
  double bound = static_cast<double>(fanout) / (fanout + 1.0);
  EXPECT_LT(ci_err.variance(), bound * sigma * sigma * 1.1);
  EXPECT_LT(ci_err.variance(), raw_err.variance());
}

TEST(Consistency, RootPinOverridesEstimate) {
  auto levels = ExactTree(2, 2);
  levels[0][0] = 0.7;  // corrupt the root
  EnforceHierarchicalConsistency(levels, 2, /*root_pin=*/1.0);
  EXPECT_DOUBLE_EQ(levels[0][0], 1.0);
  double leaf_sum = 0.0;
  for (double v : levels[2]) leaf_sum += v;
  EXPECT_NEAR(leaf_sum, 1.0, 1e-12);
}

TEST(Consistency, UnpinnedRootKeepsWeightedAverage) {
  Rng rng(5);
  auto levels = NoisyTree(ExactTree(2, 3), 0.1, rng);
  auto stage1 = levels;
  WeightedAverageBottomUp(stage1, 2);
  double averaged_root = stage1[0][0];
  EnforceHierarchicalConsistency(levels, 2, /*root_pin=*/std::nullopt);
  EXPECT_NEAR(levels[0][0], averaged_root, 1e-12);
}

TEST(Consistency, MeanConsistencyDistributesResidualEqually) {
  // One parent (=1), two children summing to 0.5: each child gains 0.25.
  std::vector<std::vector<double>> levels = {{1.0}, {0.3, 0.2}};
  MeanConsistencyTopDown(levels, 2);
  EXPECT_NEAR(levels[1][0], 0.3 + 0.25, 1e-12);
  EXPECT_NEAR(levels[1][1], 0.2 + 0.25, 1e-12);
}

TEST(Consistency, WeightedAverageLeavesLeavesUntouched) {
  Rng rng(6);
  auto levels = NoisyTree(ExactTree(4, 2), 0.1, rng);
  auto leaves_before = levels[2];
  WeightedAverageBottomUp(levels, 4);
  EXPECT_EQ(levels[2], leaves_before);
}

TEST(Consistency, RejectsMalformedShape) {
  std::vector<std::vector<double>> bad = {{1.0}, {0.5, 0.5, 0.5}};
  EXPECT_DEATH(EnforceHierarchicalConsistency(bad, 2), "");
}

}  // namespace
}  // namespace ldp
