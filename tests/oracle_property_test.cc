// Cross-oracle property tests: every frequency oracle implementation must
// (a) be unbiased, (b) match the shared variance bound V_F within Monte
// Carlo tolerance, and (c) round-trip through the factory. Parameterized
// over oracle kind and epsilon.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "frequency/frequency_oracle.h"

namespace ldp {
namespace {

struct OracleCase {
  OracleKind kind;
  double eps;
};

std::string CaseName(const ::testing::TestParamInfo<OracleCase>& info) {
  std::string name = OracleKindName(info.param.kind);
  for (char& c : name) {
    if (c == '(' || c == ')') c = '_';
  }
  return name + "_eps" + std::to_string(static_cast<int>(info.param.eps * 10));
}

class OraclePropertyTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(OraclePropertyTest, FactoryProducesWorkingOracle) {
  auto oracle = MakeOracle(GetParam().kind, 8, GetParam().eps);
  ASSERT_NE(oracle, nullptr);
  EXPECT_EQ(oracle->domain_size(), 8u);
  EXPECT_DOUBLE_EQ(oracle->epsilon(), GetParam().eps);
  EXPECT_EQ(oracle->report_count(), 0u);
  Rng rng(1);
  oracle->SubmitValue(3, rng);
  EXPECT_EQ(oracle->report_count(), 1u);
}

TEST_P(OraclePropertyTest, EstimatesSumNearOne) {
  // Unbiasedness implies the estimate vector sums to ~1 (exactly 1 for
  // some mechanisms) once enough users report.
  auto oracle = MakeOracle(GetParam().kind, 16, GetParam().eps);
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    oracle->SubmitValue(i % 16, rng);
  }
  oracle->Finalize(rng);
  std::vector<double> est = oracle->EstimateFractions();
  double sum = 0.0;
  for (double v : est) sum += v;
  EXPECT_NEAR(sum, 1.0, 0.25);
}

TEST_P(OraclePropertyTest, UnbiasedOnSkewedInput) {
  const uint64_t d = 8;
  const int trials = 150;
  const int n = 600;
  std::vector<double> mean(d, 0.0);
  Rng rng(3);
  for (int t = 0; t < trials; ++t) {
    auto oracle = MakeOracle(GetParam().kind, d, GetParam().eps);
    for (int i = 0; i < n; ++i) {
      oracle->SubmitValue(i % 8 < 6 ? 1 : 4, rng);  // 0.75 / 0.25 split
    }
    oracle->Finalize(rng);
    std::vector<double> est = oracle->EstimateFractions();
    for (uint64_t z = 0; z < d; ++z) {
      mean[z] += est[z] / trials;
    }
  }
  double tol = 4.0 * std::sqrt(OracleVariance(GetParam().eps, n) / trials);
  EXPECT_NEAR(mean[1], 0.75, tol);
  EXPECT_NEAR(mean[4], 0.25, tol);
  EXPECT_NEAR(mean[7], 0.0, tol);
}

TEST_P(OraclePropertyTest, VarianceWithinTheoryEnvelope) {
  const uint64_t d = 8;
  const int trials = 400;
  const int n = 300;
  RunningStat cold;
  Rng rng(4);
  for (int t = 0; t < trials; ++t) {
    auto oracle = MakeOracle(GetParam().kind, d, GetParam().eps);
    for (int i = 0; i < n; ++i) {
      oracle->SubmitValue(0, rng);
    }
    oracle->Finalize(rng);
    cold.Add(oracle->EstimateFractions()[6]);
  }
  double vf = OracleVariance(GetParam().eps, n);
  // GRR's variance depends on D and is not exactly V_F; every other
  // oracle should be within Monte-Carlo noise of V_F. Allow all of them a
  // generous envelope: no oracle may be wildly better (that would signal a
  // broken estimator) nor worse than ~2x the bound.
  EXPECT_GT(cold.variance(), 0.2 * vf);
  EXPECT_LT(cold.variance(), 2.5 * vf);
}

INSTANTIATE_TEST_SUITE_P(
    AllOracles, OraclePropertyTest,
    ::testing::Values(OracleCase{OracleKind::kGrr, 1.1},
                      OracleCase{OracleKind::kOue, 1.1},
                      OracleCase{OracleKind::kOueSimulated, 1.1},
                      OracleCase{OracleKind::kOlh, 1.1},
                      OracleCase{OracleKind::kHrr, 1.1},
                      OracleCase{OracleKind::kOue, 0.4},
                      OracleCase{OracleKind::kOueSimulated, 0.4},
                      OracleCase{OracleKind::kHrr, 0.4}),
    CaseName);

TEST(OracleFactory, NamesAreStable) {
  EXPECT_EQ(OracleKindName(OracleKind::kGrr), "GRR");
  EXPECT_EQ(OracleKindName(OracleKind::kOue), "OUE");
  EXPECT_EQ(OracleKindName(OracleKind::kOueSimulated), "OUE(sim)");
  EXPECT_EQ(OracleKindName(OracleKind::kOlh), "OLH");
  EXPECT_EQ(OracleKindName(OracleKind::kHrr), "HRR");
}

TEST(OracleVarianceFormula, MatchesPaperExpression) {
  // V_F = 4 e^eps / (N (e^eps-1)^2); at eps = ln 3, N = 1000:
  // 12 / (1000 * 4) = 0.003.
  EXPECT_NEAR(OracleVariance(std::log(3.0), 1000), 0.003, 1e-12);
  // Decreases in both eps and N.
  EXPECT_GT(OracleVariance(0.5, 1000), OracleVariance(1.0, 1000));
  EXPECT_GT(OracleVariance(1.0, 1000), OracleVariance(1.0, 2000));
}

TEST(OracleInterface, UnsignedOraclesRejectSignedValues) {
  Rng rng(5);
  auto oue = MakeOracle(OracleKind::kOue, 8, 1.0);
  EXPECT_FALSE(oue->SupportsSignedValues());
  EXPECT_DEATH(oue->SubmitSignedValue(1, -1, rng), "signed");
  auto hrr = MakeOracle(OracleKind::kHrr, 8, 1.0);
  EXPECT_TRUE(hrr->SupportsSignedValues());
}

TEST(OracleInterface, RejectsOutOfDomainValue) {
  Rng rng(6);
  auto oracle = MakeOracle(OracleKind::kOue, 8, 1.0);
  EXPECT_DEATH(oracle->SubmitValue(8, rng), "");
}

TEST(OracleInterface, MergeRejectsMismatchedParameters) {
  auto a = MakeOracle(OracleKind::kHrr, 8, 1.0);
  auto b = MakeOracle(OracleKind::kHrr, 16, 1.0);
  EXPECT_DEATH(a->MergeFrom(*b), "");
  auto c = MakeOracle(OracleKind::kOue, 8, 1.0);
  EXPECT_DEATH(a->MergeFrom(*c), "");
}

}  // namespace
}  // namespace ldp
