#include "common/bit_util.h"

#include <gtest/gtest.h>

namespace ldp {
namespace {

TEST(BitUtil, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(4));
  EXPECT_FALSE(IsPowerOfTwo(6));
  EXPECT_TRUE(IsPowerOfTwo(uint64_t{1} << 62));
  EXPECT_FALSE(IsPowerOfTwo((uint64_t{1} << 62) + 1));
}

TEST(BitUtil, Log2Floor) {
  EXPECT_EQ(Log2Floor(1), 0u);
  EXPECT_EQ(Log2Floor(2), 1u);
  EXPECT_EQ(Log2Floor(3), 1u);
  EXPECT_EQ(Log2Floor(4), 2u);
  EXPECT_EQ(Log2Floor(255), 7u);
  EXPECT_EQ(Log2Floor(256), 8u);
  EXPECT_EQ(Log2Floor(uint64_t{1} << 63), 63u);
}

TEST(BitUtil, Log2Ceil) {
  EXPECT_EQ(Log2Ceil(1), 0u);
  EXPECT_EQ(Log2Ceil(2), 1u);
  EXPECT_EQ(Log2Ceil(3), 2u);
  EXPECT_EQ(Log2Ceil(4), 2u);
  EXPECT_EQ(Log2Ceil(5), 3u);
  EXPECT_EQ(Log2Ceil(255), 8u);
  EXPECT_EQ(Log2Ceil(257), 9u);
}

TEST(BitUtil, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(5), 8u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
}

TEST(BitUtil, HadamardSignMatchesPopcountParity) {
  // Paper Figure 1: phi[i][j] = (-1)^{<i,j>} where <i,j> is the count of
  // shared 1-bits. Spot-check the D=8 matrix's first rows.
  EXPECT_EQ(HadamardSign(0, 5), +1);   // row 0 is all ones
  EXPECT_EQ(HadamardSign(1, 1), -1);   // one shared bit
  EXPECT_EQ(HadamardSign(3, 3), +1);   // two shared bits
  EXPECT_EQ(HadamardSign(7, 7), -1);   // three shared bits
  EXPECT_EQ(HadamardSign(2, 1), +1);   // disjoint bits
}

TEST(BitUtil, HadamardSignSymmetric) {
  for (uint64_t i = 0; i < 16; ++i) {
    for (uint64_t j = 0; j < 16; ++j) {
      EXPECT_EQ(HadamardSign(i, j), HadamardSign(j, i));
    }
  }
}

TEST(BitUtil, IntPow) {
  EXPECT_EQ(IntPow(2, 0), 1u);
  EXPECT_EQ(IntPow(2, 10), 1024u);
  EXPECT_EQ(IntPow(3, 4), 81u);
  EXPECT_EQ(IntPow(16, 5), uint64_t{1} << 20);
}

TEST(BitUtil, TreeHeight) {
  EXPECT_EQ(TreeHeight(2, 2), 1u);
  EXPECT_EQ(TreeHeight(256, 2), 8u);
  EXPECT_EQ(TreeHeight(256, 4), 4u);
  EXPECT_EQ(TreeHeight(256, 16), 2u);
  EXPECT_EQ(TreeHeight(257, 2), 9u);   // padding rounds up
  EXPECT_EQ(TreeHeight(100, 10), 2u);
  EXPECT_EQ(TreeHeight(101, 10), 3u);
}

}  // namespace
}  // namespace ldp
