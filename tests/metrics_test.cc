// Unit tests for the obs/ telemetry primitives: log2 histogram bucket
// geometry, quantiles against a sorted reference, snapshot merge
// algebra (associativity across shardings), registry semantics, the
// text renderers, ScopedTimer, the leveled logger, and trace capture.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"

namespace ldp::obs {
namespace {

// --- bucket geometry -----------------------------------------------------

TEST(HistogramBuckets, PowersOfTwoAreBucketBoundaries) {
  // Bucket 0 = {0}; bucket b >= 1 = [2^(b-1), 2^b). So every power of
  // two opens a new bucket and the value just below it closes the
  // previous one.
  EXPECT_EQ(HistogramBucketIndex(0), 0u);
  EXPECT_EQ(HistogramBucketIndex(1), 1u);
  for (size_t b = 1; b < 63; ++b) {
    const uint64_t lo = uint64_t{1} << (b - 1);
    EXPECT_EQ(HistogramBucketIndex(lo), b) << "lo of bucket " << b;
    EXPECT_EQ(HistogramBucketIndex(2 * lo - 1), b) << "hi of bucket " << b;
    EXPECT_EQ(HistogramBucketIndex(2 * lo), b + 1) << "first past " << b;
  }
  EXPECT_EQ(HistogramBucketIndex(uint64_t{1} << 62), 63u);
  EXPECT_EQ(HistogramBucketIndex(UINT64_MAX), 63u);
}

TEST(HistogramBuckets, BoundsInvertIndex) {
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    uint64_t lo = 0, hi = 0;
    HistogramBucketBounds(b, &lo, &hi);
    EXPECT_EQ(HistogramBucketIndex(lo), b);
    EXPECT_EQ(HistogramBucketIndex(hi), b);
    if (b + 1 < kHistogramBuckets) {
      EXPECT_EQ(HistogramBucketIndex(hi + 1), b + 1);
    } else {
      EXPECT_EQ(hi, UINT64_MAX);
    }
  }
}

TEST(HistogramBuckets, EveryValueLandsInExactlyOneBucket) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Next();
    const size_t b = HistogramBucketIndex(v);
    ASSERT_LT(b, kHistogramBuckets);
    uint64_t lo = 0, hi = 0;
    HistogramBucketBounds(b, &lo, &hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

// --- recording and quantiles ---------------------------------------------

TEST(LatencyHistogram, SnapshotTracksExactAggregates) {
  LatencyHistogram h;
  const std::vector<uint64_t> values = {0, 1, 1, 7, 100, 1023, 1024, 65536};
  uint64_t sum = 0;
  for (uint64_t v : values) {
    h.Record(v);
    sum += v;
  }
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, values.size());
  EXPECT_EQ(snap.sum, sum);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 65536u);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, values.size());
  EXPECT_EQ(snap.buckets[0], 1u);   // the one zero
  EXPECT_EQ(snap.buckets[1], 2u);   // the two ones
  EXPECT_EQ(snap.buckets[10], 1u);  // 1023 in [512, 1024)
  EXPECT_EQ(snap.buckets[11], 1u);  // 1024 in [1024, 2048)
}

TEST(LatencyHistogram, EmptySnapshotIsIdentityAndQuantileZero) {
  LatencyHistogram h;
  const HistogramSnapshot empty = h.Snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.min, 0u);  // normalized from the UINT64_MAX sentinel
  EXPECT_EQ(empty.Quantile(0.5), 0u);
  EXPECT_EQ(empty.Mean(), 0.0);
  HistogramSnapshot other = empty;
  other.MergeFrom(empty);
  EXPECT_EQ(other, empty);
}

// The log2 sketch promises: exact at q=0 and q=1, and within one bucket
// (a factor of 2, plus the interpolation's clamp to [min, max]) of the
// true order statistic elsewhere.
TEST(LatencyHistogram, QuantilesTrackSortedReferenceWithinOneBucket) {
  Rng rng(1234);
  LatencyHistogram h;
  std::vector<uint64_t> reference;
  for (int i = 0; i < 20000; ++i) {
    // Long-tailed, like real latencies: exponent-uniform over ~6 decades.
    const uint64_t v = rng.UniformInt(uint64_t{1} << rng.UniformInt(20));
    h.Record(v);
    reference.push_back(v);
  }
  std::sort(reference.begin(), reference.end());
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.Quantile(0.0), reference.front());
  EXPECT_EQ(snap.Quantile(1.0), reference.back());
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    const uint64_t est = snap.Quantile(q);
    const uint64_t exact =
        reference[static_cast<size_t>(q * (reference.size() - 1))];
    // Same bucket or a neighbor boundary: est in [exact/2, 2*exact].
    EXPECT_LE(est, std::max<uint64_t>(2 * exact, 1)) << "q=" << q;
    EXPECT_GE(2 * est + 1, exact) << "q=" << q;
  }
}

TEST(LatencyHistogram, QuantileIsMonotoneInQ) {
  Rng rng(99);
  LatencyHistogram h;
  for (int i = 0; i < 5000; ++i) h.Record(rng.UniformInt(1 << 22));
  const HistogramSnapshot snap = h.Snapshot();
  uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const uint64_t cur = snap.Quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

// --- merge algebra (satellite: associativity across shardings) -----------

HistogramSnapshot RecordRange(const std::vector<uint64_t>& values,
                              size_t begin, size_t end) {
  LatencyHistogram h;
  for (size_t i = begin; i < end; ++i) h.Record(values[i]);
  return h.Snapshot();
}

TEST(LatencyHistogram, MergeIsAssociativeAcrossShardings) {
  Rng rng(4321);
  std::vector<uint64_t> values(8192);
  for (uint64_t& v : values) v = rng.UniformInt(uint64_t{1} << 30);

  // One-shot reference vs the same stream split 4 ways and 8 ways, each
  // merged in a different association order. All three snapshots must be
  // bit-identical — the property that lets shard-local histograms fan in
  // to one truth in any combination tree.
  const HistogramSnapshot whole = RecordRange(values, 0, values.size());

  for (size_t shards : {4u, 8u}) {
    std::vector<HistogramSnapshot> parts;
    const size_t per = values.size() / shards;
    for (size_t s = 0; s < shards; ++s) {
      parts.push_back(RecordRange(values, s * per, (s + 1) * per));
    }
    // Left fold: ((a + b) + c) + ...
    HistogramSnapshot left;
    for (const HistogramSnapshot& p : parts) left.MergeFrom(p);
    // Pairwise tree fold: (a + b) + (c + d), ...
    std::vector<HistogramSnapshot> layer = parts;
    while (layer.size() > 1) {
      std::vector<HistogramSnapshot> next;
      for (size_t i = 0; i + 1 < layer.size(); i += 2) {
        HistogramSnapshot merged = layer[i];
        merged.MergeFrom(layer[i + 1]);
        next.push_back(merged);
      }
      if (layer.size() % 2 == 1) next.push_back(layer.back());
      layer = std::move(next);
    }
    EXPECT_EQ(left, whole) << shards << "-way left fold";
    EXPECT_EQ(layer[0], whole) << shards << "-way tree fold";
  }
}

TEST(LatencyHistogram, MergeFromFoldsSnapshotIntoLiveHistogram) {
  LatencyHistogram a, b;
  a.Record(10);
  a.Record(1000);
  b.Record(1);
  b.Record(100000);
  a.MergeFrom(b.Snapshot());
  const HistogramSnapshot merged = a.Snapshot();
  EXPECT_EQ(merged.count, 4u);
  EXPECT_EQ(merged.min, 1u);
  EXPECT_EQ(merged.max, 100000u);
  EXPECT_EQ(merged.sum, 10u + 1000u + 1u + 100000u);
}

TEST(MetricsSnapshot, MergeByNameAddsAndUnions) {
  MetricsRegistry r1, r2;
  r1.GetCounter("a").Add(5);
  r1.GetCounter("shared").Add(7);
  r1.GetGauge("depth").Add(3);
  r1.GetHistogram("lat").Record(100);
  r2.GetCounter("shared").Add(13);
  r2.GetCounter("z").Add(1);
  r2.GetGauge("depth").Sub(1);
  r2.GetHistogram("lat").Record(200);

  MetricsSnapshot merged = r1.Snapshot();
  merged.MergeFrom(r2.Snapshot());
  EXPECT_EQ(merged.CounterOr("a"), 5u);
  EXPECT_EQ(merged.CounterOr("shared"), 20u);
  EXPECT_EQ(merged.CounterOr("z"), 1u);
  EXPECT_EQ(merged.CounterOr("absent", 42), 42u);
  ASSERT_NE(merged.FindGauge("depth"), nullptr);
  EXPECT_EQ(merged.FindGauge("depth")->value, 2);
  ASSERT_NE(merged.FindHistogram("lat"), nullptr);
  EXPECT_EQ(merged.FindHistogram("lat")->histogram.count, 2u);
  // Merged output stays sorted (the canonical wire order).
  for (size_t i = 1; i < merged.counters.size(); ++i) {
    EXPECT_LT(merged.counters[i - 1].name, merged.counters[i].name);
  }
}

// --- registry ------------------------------------------------------------

TEST(MetricsRegistry, GetIsIdempotentAndAddressStable) {
  MetricsRegistry registry;
  Counter& c1 = registry.GetCounter("x");
  Counter& c2 = registry.GetCounter("x");
  EXPECT_EQ(&c1, &c2);
  c1.Increment();
  EXPECT_EQ(c2.value(), 1u);
  EXPECT_EQ(&registry.GetHistogram("h"), &registry.GetHistogram("h"));
  EXPECT_EQ(&registry.GetGauge("g"), &registry.GetGauge("g"));
}

TEST(MetricsRegistry, ConcurrentGetAndRecordIsSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.GetCounter("hits").Increment();
        registry.GetHistogram("lat").Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterOr("hits"), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(snap.FindHistogram("lat")->histogram.count,
            uint64_t{kThreads} * kPerThread);
}

TEST(MetricsRegistry, GlobalIsAProcessSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

// --- renderers -----------------------------------------------------------

TEST(Renderers, PrometheusTextHasTerminalInfBucketEqualToCount) {
  MetricsRegistry registry;
  registry.GetCounter("net.bytes").Add(10);
  registry.GetHistogram("lat-ns").Record(5);
  registry.GetHistogram("lat-ns").Record(500);
  const std::string text = RenderPrometheusText(registry.Snapshot());
  // Names sanitized to the Prometheus charset.
  EXPECT_NE(text.find("net_bytes 10"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE net_bytes counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_count 2"), std::string::npos);
  // The +Inf bucket is mandatory and cumulative: equal to _count.
  EXPECT_NE(text.find("lat_ns_bucket{le=\"+Inf\"} 2"), std::string::npos)
      << text;
}

TEST(Renderers, JsonRoundTripsThroughNonzeroBucketsAndQuantiles) {
  MetricsRegistry registry;
  registry.GetGauge("depth").Set(-4);
  registry.GetHistogram("h").Record(1024);
  const std::string json = RenderJson(registry.Snapshot());
  EXPECT_NE(json.find("\"depth\": -4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// --- scoped timer and tracing --------------------------------------------

TEST(ScopedTimer, RecordsOneSampleIntoHistogram) {
  LatencyHistogram h;
  {
    ScopedTimer timer(&h);
    // Any work; the elapsed value only needs to be recorded, not big.
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(ScopedTimer, NullHistogramWithoutTracingIsInert) {
  StopTracing();
  ScopedTimer timer(nullptr, "inert.span");
  EXPECT_EQ(timer.ElapsedNanos(), 0u);  // never armed
}

TEST(Trace, CapturesSpansWhileEnabledOnly) {
  StopTracing();
  ClearTrace();
  {
    LatencyHistogram h;
    ScopedTimer timer(&h, "span.off");
  }
  EXPECT_EQ(CapturedTraceEventCount(), 0u);

  StartTracing();
  {
    LatencyHistogram h;
    ScopedTimer t1(&h, "span.a");
    ScopedTimer t2(nullptr, "span.b");  // trace-only span
  }
  StopTracing();
  EXPECT_EQ(CapturedTraceEventCount(), 2u);

  const std::string json = ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"span.a\""), std::string::npos);
  EXPECT_NE(json.find("\"span.b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  ClearTrace();
  EXPECT_EQ(CapturedTraceEventCount(), 0u);
}

TEST(Trace, MultiThreadedSpansGetDistinctTids) {
  StopTracing();
  ClearTrace();
  StartTracing();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back(
        [] { RecordTraceEvent("worker.span", /*start_ns=*/100, 50); });
  }
  for (std::thread& t : threads) t.join();
  StopTracing();
  EXPECT_EQ(CapturedTraceEventCount(), 4u);
  EXPECT_EQ(DroppedTraceEventCount(), 0u);
  const std::string json = ChromeTraceJson();
  // Four spans on four threads; exact tid values depend on registration
  // order across the whole process, so count distinct ones instead.
  std::set<std::string> tids;
  for (size_t pos = json.find("\"tid\":"); pos != std::string::npos;
       pos = json.find("\"tid\":", pos + 1)) {
    size_t end = json.find(',', pos);
    ASSERT_NE(end, std::string::npos);
    tids.insert(json.substr(pos, end - pos));
  }
  EXPECT_GE(tids.size(), 4u) << json;
  ClearTrace();
}

// --- leveled logger ------------------------------------------------------

TEST(Log, ParseLogLevelUnderstandsNamesAndRejectsJunk) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
}

TEST(Log, SetLogLevelGatesEnabledChecks) {
  const LogLevel original = CurrentLogLevel();
  SetLogLevel(LogLevel::kWarn);
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
  EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));
  SetLogLevel(LogLevel::kOff);
  EXPECT_FALSE(LogEnabled(LogLevel::kError));
  SetLogLevel(original);
}

}  // namespace
}  // namespace ldp::obs
