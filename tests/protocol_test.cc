#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "core/haar_hrr.h"
#include "protocol/flat_protocol.h"
#include "protocol/haar_protocol.h"
#include "protocol/wire.h"

namespace ldp {
namespace {

using protocol::FlatHrrClient;
using protocol::FlatHrrServer;
using protocol::HaarHrrClient;
using protocol::HaarHrrReport;
using protocol::HaarHrrServer;
using protocol::ParseHaarHrrReport;
using protocol::ParseHrrReport;
using protocol::SerializeHaarHrrReport;
using protocol::SerializeHrrReport;
using protocol::WireReader;

TEST(Wire, RoundTripIntegers) {
  std::vector<uint8_t> buf;
  protocol::AppendU8(buf, 0xAB);
  protocol::AppendU32(buf, 0xDEADBEEF);
  protocol::AppendU64(buf, 0x0123456789ABCDEFULL);
  WireReader reader(buf);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  EXPECT_TRUE(reader.ReadU8(&u8));
  EXPECT_TRUE(reader.ReadU32(&u32));
  EXPECT_TRUE(reader.ReadU64(&u64));
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
}

TEST(Wire, ReaderRejectsShortBuffers) {
  std::vector<uint8_t> buf = {1, 2, 3};
  WireReader reader(buf);
  uint64_t v = 0;
  EXPECT_FALSE(reader.ReadU64(&v));
  EXPECT_FALSE(reader.AtEnd());
  // A failed reader stays failed.
  uint8_t b = 0;
  EXPECT_FALSE(reader.ReadU8(&b));
}

TEST(Wire, TrailingBytesFailAtEnd) {
  std::vector<uint8_t> buf = {1, 2};
  WireReader reader(buf);
  uint8_t b = 0;
  EXPECT_TRUE(reader.ReadU8(&b));
  EXPECT_FALSE(reader.AtEnd());
}

TEST(Wire, RemainingTracksConsumption) {
  std::vector<uint8_t> buf(13, 0);
  WireReader reader(buf);
  EXPECT_EQ(reader.Remaining(), 13u);
  uint32_t u32 = 0;
  EXPECT_TRUE(reader.ReadU32(&u32));
  EXPECT_EQ(reader.Remaining(), 9u);
  uint64_t u64 = 0;
  EXPECT_TRUE(reader.ReadU64(&u64));
  EXPECT_EQ(reader.Remaining(), 1u);
  EXPECT_FALSE(reader.AtEnd());
  uint8_t u8 = 0;
  EXPECT_TRUE(reader.ReadU8(&u8));
  EXPECT_EQ(reader.Remaining(), 0u);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(Wire, FailedReaderStaysFailedAndFreezesPosition) {
  // The AtEnd() footgun this pins: a failed reader must never "recover"
  // — every later read of any width fails, ok() stays false, Remaining()
  // is frozen at the failure point, and AtEnd() can never become true.
  std::vector<uint8_t> buf = {1, 2, 3};
  WireReader reader(buf);
  EXPECT_TRUE(reader.ok());
  uint64_t v = 0;
  EXPECT_FALSE(reader.ReadU64(&v));  // 8 > 3: fails without consuming
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.Remaining(), 3u);
  uint8_t b = 0;
  EXPECT_FALSE(reader.ReadU8(&b));  // would fit, but the reader is dead
  uint32_t u32 = 0;
  EXPECT_FALSE(reader.ReadU32(&u32));
  std::span<const uint8_t> bytes;
  EXPECT_FALSE(reader.ReadBytes(1, &bytes));
  EXPECT_FALSE(reader.ReadVarU64(&v));
  EXPECT_EQ(reader.Remaining(), 3u);
  EXPECT_FALSE(reader.AtEnd());
}

TEST(Wire, ReadBytesBorrowsAndBoundsChecks) {
  std::vector<uint8_t> buf = {10, 20, 30, 40};
  WireReader reader(buf);
  std::span<const uint8_t> head;
  ASSERT_TRUE(reader.ReadBytes(3, &head));
  ASSERT_EQ(head.size(), 3u);
  EXPECT_EQ(head[0], 10);
  EXPECT_EQ(head[2], 30);
  std::span<const uint8_t> tail;
  EXPECT_FALSE(reader.ReadBytes(2, &tail));  // only 1 left
  EXPECT_FALSE(reader.ok());
}

TEST(Wire, LengthPrefixedBytesRejectForgedLengths) {
  std::vector<uint8_t> buf;
  std::vector<uint8_t> payload = {7, 8, 9};
  protocol::AppendLengthPrefixedBytes(buf, payload);
  {
    WireReader reader(buf);
    std::span<const uint8_t> out;
    ASSERT_TRUE(reader.ReadLengthPrefixedBytes(&out));
    EXPECT_TRUE(reader.AtEnd());
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[1], 8);
  }
  // Forge the length field up to UINT32_MAX: must fail cleanly.
  std::vector<uint8_t> forged = buf;
  forged[0] = 0xFF;
  forged[1] = 0xFF;
  forged[2] = 0xFF;
  forged[3] = 0xFF;
  WireReader reader(forged);
  std::span<const uint8_t> out;
  EXPECT_FALSE(reader.ReadLengthPrefixedBytes(&out));
  EXPECT_FALSE(reader.ok());
}

TEST(Wire, VarintRejectsOverflowAndUnterminated) {
  // 11 continuation bytes: unterminated.
  std::vector<uint8_t> unterminated(11, 0x80);
  {
    WireReader reader(unterminated);
    uint64_t v = 0;
    EXPECT_FALSE(reader.ReadVarU64(&v));
  }
  // 10th byte carrying bits above 2^64.
  std::vector<uint8_t> overflow(9, 0x80);
  overflow.push_back(0x02);
  {
    WireReader reader(overflow);
    uint64_t v = 0;
    EXPECT_FALSE(reader.ReadVarU64(&v));
  }
  // UINT64_MAX itself is fine: 9 x 0xFF then 0x01.
  std::vector<uint8_t> max_bytes(9, 0xFF);
  max_bytes.push_back(0x01);
  WireReader reader(max_bytes);
  uint64_t v = 0;
  ASSERT_TRUE(reader.ReadVarU64(&v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ProtocolSerialization, HrrReportRoundTrip) {
  for (int sign : {-1, +1}) {
    HrrReport report{123456789ULL, static_cast<int8_t>(sign)};
    HrrReport back;
    ASSERT_TRUE(ParseHrrReport(SerializeHrrReport(report), &back));
    EXPECT_EQ(back.coefficient_index, report.coefficient_index);
    EXPECT_EQ(back.sign, report.sign);
  }
}

TEST(ProtocolSerialization, HaarReportRoundTrip) {
  HaarHrrReport report;
  report.level = 7;
  report.inner = {42, -1};
  HaarHrrReport back;
  ASSERT_TRUE(ParseHaarHrrReport(SerializeHaarHrrReport(report), &back));
  EXPECT_EQ(back.level, 7u);
  EXPECT_EQ(back.inner.coefficient_index, 42u);
  EXPECT_EQ(back.inner.sign, -1);
}

TEST(ProtocolSerialization, RejectsMalformedBuffers) {
  HaarHrrReport report;
  report.level = 3;
  report.inner = {5, +1};
  HaarHrrReport out;
  for (uint8_t version :
       {protocol::kWireVersionV1, protocol::kWireVersionV2}) {
    SCOPED_TRACE(int(version));
    std::vector<uint8_t> good = SerializeHaarHrrReport(report, version);
    // v2 payload starts after the 8-byte envelope header; v1 after the
    // 1-byte tag.
    size_t body = version == protocol::kWireVersionV2 ? 8 : 1;
    // Truncations at every length.
    for (size_t len = 0; len < good.size(); ++len) {
      std::vector<uint8_t> cut(good.begin(), good.begin() + len);
      EXPECT_FALSE(ParseHaarHrrReport(cut, &out)) << "len=" << len;
    }
    // Trailing garbage.
    std::vector<uint8_t> extended = good;
    extended.push_back(0);
    EXPECT_FALSE(ParseHaarHrrReport(extended, &out));
    // Wrong leading byte (magic in v2, tag in v1).
    std::vector<uint8_t> wrong_tag = good;
    wrong_tag[0] = 0x7F;
    EXPECT_FALSE(ParseHaarHrrReport(wrong_tag, &out));
    // Bad sign byte.
    std::vector<uint8_t> bad_sign = good;
    bad_sign.back() = 2;
    EXPECT_FALSE(ParseHaarHrrReport(bad_sign, &out));
    // Level zero is invalid.
    std::vector<uint8_t> bad_level = good;
    bad_level[body] = 0;
    EXPECT_FALSE(ParseHaarHrrReport(bad_level, &out));
  }
}

TEST(ProtocolSerialization, FuzzedBuffersNeverCrash) {
  // Random byte soup must be parsed or rejected, never crash; and
  // byte-flipped valid reports must never produce an out-of-spec report.
  Rng rng(99);
  HrrReport flat_out;
  HaarHrrReport haar_out;
  for (int i = 0; i < 3000; ++i) {
    size_t len = rng.UniformInt(16);
    std::vector<uint8_t> junk(len);
    for (uint8_t& b : junk) {
      b = static_cast<uint8_t>(rng.UniformInt(256));
    }
    if (ParseHrrReport(junk, &flat_out)) {
      EXPECT_TRUE(flat_out.sign == 1 || flat_out.sign == -1);
    }
    if (ParseHaarHrrReport(junk, &haar_out)) {
      EXPECT_GE(haar_out.level, 1u);
      EXPECT_TRUE(haar_out.inner.sign == 1 || haar_out.inner.sign == -1);
    }
  }
}

TEST(HaarProtocol, EndToEndMatchesInProcessMechanism) {
  // Same seed, same submission order: the wire path and the in-process
  // mechanism must produce bit-identical estimates.
  const uint64_t d = 64;
  const double eps = 1.1;
  Rng rng_wire(7);
  Rng rng_mech(7);
  HaarHrrClient client(d, eps);
  HaarHrrServer server(d, eps);
  HaarHrrMechanism mech(d, eps);
  for (int i = 0; i < 20000; ++i) {
    uint64_t value = (i * 13) % d;
    ASSERT_TRUE(server.AbsorbSerialized(
        client.EncodeSerialized(value, rng_wire)));
    mech.EncodeUser(value, rng_mech);
  }
  server.Finalize();
  Rng finalize_rng(1);
  mech.Finalize(finalize_rng);
  EXPECT_EQ(server.accepted_reports(), 20000u);
  EXPECT_EQ(server.rejected_reports(), 0u);
  for (uint64_t a = 0; a < d; a += 5) {
    for (uint64_t b = a; b < d; b += 9) {
      EXPECT_DOUBLE_EQ(server.RangeQuery(a, b), mech.RangeQuery(a, b))
          << "[" << a << "," << b << "]";
    }
  }
  EXPECT_EQ(server.QuantileQuery(0.5), mech.QuantileQuery(0.5));
}

TEST(HaarProtocol, ServerRejectsOutOfRangeReports) {
  HaarHrrServer server(64, 1.0);  // height 6
  HaarHrrReport report;
  report.level = 7;  // too deep
  report.inner = {0, +1};
  EXPECT_FALSE(server.Absorb(report));
  report.level = 2;
  report.inner = {16, +1};  // level 2 has 64/4 = 16 coefficients: 0..15
  EXPECT_FALSE(server.Absorb(report));
  report.inner = {15, +1};
  EXPECT_TRUE(server.Absorb(report));
  EXPECT_EQ(server.rejected_reports(), 2u);
  EXPECT_EQ(server.accepted_reports(), 1u);
}

TEST(HaarProtocol, PoisonedStreamDoesNotPreventService) {
  // A malicious or buggy minority of clients sends garbage; the server
  // keeps serving and the honest majority's signal survives.
  const uint64_t d = 64;
  const double eps = 60.0;  // near-noiseless honest reports
  Rng rng(11);
  HaarHrrClient client(d, eps);
  HaarHrrServer server(d, eps);
  for (int i = 0; i < 30000; ++i) {
    if (i % 10 == 0) {
      std::vector<uint8_t> junk(11);
      for (uint8_t& b : junk) {
        b = static_cast<uint8_t>(rng.UniformInt(256));
      }
      server.AbsorbSerialized(junk);  // mostly rejected
    }
    server.AbsorbSerialized(client.EncodeSerialized(20, rng));
  }
  server.Finalize();
  EXPECT_GT(server.rejected_reports(), 0u);
  // Honest mass sits at item 20; estimate should be near 1 despite the
  // few accepted-but-random forged reports.
  EXPECT_NEAR(server.RangeQuery(16, 23), 1.0, 0.1);
}

TEST(FlatProtocol, EndToEndAccuracy) {
  const uint64_t d = 32;
  const double eps = 60.0;
  Rng rng(13);
  FlatHrrClient client(d, eps);
  FlatHrrServer server(d, eps);
  for (int i = 0; i < 60000; ++i) {
    ASSERT_TRUE(server.AbsorbSerialized(
        client.EncodeSerialized(i % 2 == 0 ? 3 : 28, rng)));
  }
  server.Finalize();
  EXPECT_NEAR(server.RangeQuery(3, 3), 0.5, 0.03);
  EXPECT_NEAR(server.RangeQuery(28, 28), 0.5, 0.03);
  EXPECT_NEAR(server.RangeQuery(0, 31), 1.0, 0.05);
  EXPECT_NEAR(server.RangeQuery(8, 20), 0.0, 0.03);
}

TEST(FlatProtocol, ReportSizesArePinnedPerVersion) {
  Rng rng(17);
  FlatHrrClient client(1 << 20, 1.0);
  HaarHrrClient haar_client(1 << 20, 1.0);
  // v2 (default): 8-byte envelope + fixed payload.
  EXPECT_EQ(client.EncodeSerialized(12345, rng).size(), 17u);
  EXPECT_EQ(haar_client.EncodeSerialized(12345, rng).size(), 18u);
  // Legacy v1 framing after a downgrade: the seed's 10/11 bytes.
  client.set_wire_version(protocol::kWireVersionV1);
  haar_client.set_wire_version(protocol::kWireVersionV1);
  EXPECT_EQ(client.EncodeSerialized(12345, rng).size(), 10u);
  EXPECT_EQ(haar_client.EncodeSerialized(12345, rng).size(), 11u);
  // Batch framing amortizes the envelope: header + count varint + 9
  // bytes per report.
  client.set_wire_version(protocol::kWireVersionV2);
  std::vector<uint64_t> values(200, 5);
  EXPECT_EQ(client.EncodeUsersSerialized(values, rng).size(),
            8u + 2u + 200u * 9u);  // count 200 is a 2-byte varint
}

TEST(FlatProtocol, ServerCountsRejections) {
  FlatHrrServer server(16, 1.0);
  std::vector<uint8_t> junk = {1, 2, 3};
  EXPECT_FALSE(server.AbsorbSerialized(junk));
  HrrReport out_of_range{999, +1};
  EXPECT_FALSE(server.Absorb(out_of_range));
  EXPECT_EQ(server.rejected_reports(), 2u);
}

TEST(ProtocolLdp, ClientReportIsEpsLdp) {
  // For any two inputs and any concrete report, the likelihood ratio of a
  // HaarHRR client report is bounded by e^eps: the level and coefficient
  // index are sampled independently of the value, and the sign bit is
  // binary RR with p/(1-p) = e^eps.
  const double eps = 0.7;
  const uint64_t d = 16;
  HaarHrrClient client(d, eps);
  // Empirically: fix the report (level, index, sign) and compare the
  // frequency it is emitted under two different inputs.
  Rng rng(19);
  const int n = 400000;
  auto count_report = [&](uint64_t value) {
    int hits = 0;
    for (int i = 0; i < n; ++i) {
      HaarHrrReport r = client.Encode(value, rng);
      if (r.level == 1 && r.inner.coefficient_index == 0 &&
          r.inner.sign == +1) {
        ++hits;
      }
    }
    return static_cast<double>(hits) / n;
  };
  double p0 = count_report(0);   // value 0: coefficient (1,0) is +1
  double p1 = count_report(1);   // value 1: coefficient (1,0) is -1
  ASSERT_GT(p1, 0.0);
  EXPECT_LE(p0 / p1, std::exp(eps) * 1.15);  // 15% Monte-Carlo slack
  EXPECT_GE(p0 / p1, std::exp(eps) * 0.85);  // GRR-style: bound is tight
}

}  // namespace
}  // namespace ldp
