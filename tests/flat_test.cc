#include "core/flat.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/stats.h"
#include "core/variance.h"
#include "frequency/frequency_oracle.h"

namespace ldp {
namespace {

TEST(Flat, NoiselessExactRecoveryWithGrr) {
  // GRR at huge eps is truly deterministic (report = value), so recovery
  // is exact. (OUE keeps its 1-bit with probability 1/2 regardless of eps,
  // so it always carries binomial noise — covered by the next test.)
  Rng rng(1);
  FlatMechanism mech(32, 60.0, OracleKind::kGrr);
  for (int i = 0; i < 3200; ++i) {
    mech.EncodeUser(i % 32, rng);
  }
  mech.Finalize(rng);
  EXPECT_NEAR(mech.RangeQuery(0, 31), 1.0, 1e-9);
  EXPECT_NEAR(mech.RangeQuery(0, 15), 0.5, 1e-9);
  EXPECT_NEAR(mech.PointQuery(7), 1.0 / 32, 1e-9);
}

TEST(Flat, HighEpsilonOueRecoversWithinSamplingNoise) {
  Rng rng(1);
  FlatMechanism mech(32, 60.0, OracleKind::kOueSimulated);
  for (int i = 0; i < 32000; ++i) {
    mech.EncodeUser(i % 32, rng);
  }
  mech.Finalize(rng);
  EXPECT_NEAR(mech.RangeQuery(0, 31), 1.0, 0.02);
  EXPECT_NEAR(mech.RangeQuery(0, 15), 0.5, 0.02);
  EXPECT_NEAR(mech.PointQuery(7), 1.0 / 32, 0.01);
}

TEST(Flat, RangeIsSumOfPointEstimates) {
  Rng rng(2);
  FlatMechanism mech(16, 1.0, OracleKind::kOueSimulated);
  for (int i = 0; i < 1000; ++i) {
    mech.EncodeUser(i % 16, rng);
  }
  mech.Finalize(rng);
  std::vector<double> freq = mech.EstimateFrequencies();
  double sum = 0.0;
  for (uint64_t z = 3; z <= 11; ++z) {
    sum += freq[z];
  }
  EXPECT_NEAR(mech.RangeQuery(3, 11), sum, 1e-12);
}

TEST(Flat, VarianceGrowsLinearlyWithRangeLength) {
  // Fact 1: Var = r * V_F. Compare r=4 and r=64: ratio should be ~16.
  const uint64_t d = 128;
  const double eps = 1.1;
  const int n = 1500;
  const int trials = 400;
  RunningStat short_r;
  RunningStat long_r;
  Rng rng(3);
  for (int t = 0; t < trials; ++t) {
    FlatMechanism mech(d, eps, OracleKind::kOueSimulated);
    for (int i = 0; i < n; ++i) {
      mech.EncodeUser(i % d, rng);
    }
    mech.Finalize(rng);
    short_r.Add(mech.RangeQuery(10, 13));    // r = 4
    long_r.Add(mech.RangeQuery(10, 73));     // r = 64
  }
  double ratio = long_r.variance() / short_r.variance();
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 32.0);
  // And each is near its Fact 1 prediction.
  EXPECT_NEAR(short_r.variance(), FlatRangeVarianceBound(4, eps, n),
              0.5 * FlatRangeVarianceBound(4, eps, n));
  EXPECT_NEAR(long_r.variance(), FlatRangeVarianceBound(64, eps, n),
              0.5 * FlatRangeVarianceBound(64, eps, n));
}

TEST(Flat, WorksWithEveryOracle) {
  for (OracleKind kind :
       {OracleKind::kGrr, OracleKind::kOue, OracleKind::kOueSimulated,
        OracleKind::kOlh, OracleKind::kHrr}) {
    Rng rng(4);
    FlatMechanism mech(16, 60.0, kind);
    for (int i = 0; i < 32000; ++i) {
      mech.EncodeUser(i % 4, rng);
    }
    mech.Finalize(rng);
    EXPECT_NEAR(mech.RangeQuery(0, 3), 1.0, 0.05)
        << OracleKindName(kind);
    EXPECT_NEAR(mech.RangeQuery(8, 15), 0.0, 0.05)
        << OracleKindName(kind);
  }
}

TEST(Flat, UserCountTracksEncodes) {
  Rng rng(5);
  FlatMechanism mech(8, 1.0, OracleKind::kOueSimulated);
  EXPECT_EQ(mech.user_count(), 0u);
  for (int i = 0; i < 17; ++i) {
    mech.EncodeUser(0, rng);
  }
  EXPECT_EQ(mech.user_count(), 17u);
}

TEST(Flat, GuardsAgainstMisuse) {
  Rng rng(6);
  FlatMechanism mech(8, 1.0, OracleKind::kOueSimulated);
  EXPECT_DEATH(mech.RangeQuery(0, 3), "Finalize");
  mech.EncodeUser(2, rng);
  mech.Finalize(rng);
  EXPECT_DEATH(mech.Finalize(rng), "twice");
  EXPECT_DEATH(mech.RangeQuery(5, 2), "");
}

}  // namespace
}  // namespace ldp
