// The query plane's wire formats and every typed error path: a client
// must get a parseable kRangeQueryResponse naming what went wrong —
// never a crash, never silence — for each failure it can provoke.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/random.h"
#include "protocol/flat_protocol.h"
#include "service/aggregator_service.h"
#include "service/server_factory.h"
#include "service/stream_wire.h"

namespace ldp {
namespace {

using protocol::ParseError;
using service::AggregatorService;
using service::IntervalEstimate;
using service::MakeAggregatorServer;
using service::QueryInterval;
using service::QueryStatus;
using service::RangeQueryRequest;
using service::RangeQueryResponse;
using service::ServerKind;
using service::ServerSpec;

ServerSpec FlatSpec(uint64_t domain = 64) {
  ServerSpec spec;
  spec.kind = ServerKind::kFlat;
  spec.domain = domain;
  spec.eps = 1.0;
  return spec;
}

RangeQueryResponse Ask(AggregatorService& svc, RangeQueryRequest request) {
  std::vector<uint8_t> bytes =
      svc.HandleMessage(SerializeRangeQueryRequest(request));
  RangeQueryResponse response;
  EXPECT_EQ(service::ParseRangeQueryResponse(bytes, &response),
            ParseError::kOk);
  return response;
}

// --- Wire round trips ---------------------------------------------------

TEST(QueryPlaneWire, RequestRoundTripsThroughBytes) {
  RangeQueryRequest request;
  request.query_id = 0xABCDEF0123456789ULL;
  request.server_id = 3;
  request.intervals = {{0, 0}, {17, 4095}, {uint64_t{1} << 40, (uint64_t{1} << 40) + 5}};
  std::vector<uint8_t> bytes = SerializeRangeQueryRequest(request);
  RangeQueryRequest back;
  ASSERT_EQ(service::ParseRangeQueryRequest(bytes, &back), ParseError::kOk);
  EXPECT_EQ(back, request);
}

TEST(QueryPlaneWire, ResponseRoundTripsIncludingSpecials) {
  RangeQueryResponse response;
  response.query_id = 42;
  response.status = QueryStatus::kOk;
  response.estimates = {
      {0.25, 0.0009765625},
      {-0.037, std::numeric_limits<double>::infinity()},
      {0.0, 0.0},
  };
  std::vector<uint8_t> bytes = SerializeRangeQueryResponse(response);
  RangeQueryResponse back;
  ASSERT_EQ(service::ParseRangeQueryResponse(bytes, &back), ParseError::kOk);
  EXPECT_EQ(back, response);  // f64 bit patterns survive exactly
}

TEST(QueryPlaneWire, TruncationAtEveryOffsetIsRejected) {
  RangeQueryRequest request;
  request.query_id = 9;
  request.server_id = 0;
  request.intervals = {{1, 5}, {7, 9}};
  std::vector<uint8_t> bytes = SerializeRangeQueryRequest(request);
  for (size_t len = 0; len < bytes.size(); ++len) {
    RangeQueryRequest out;
    EXPECT_NE(service::ParseRangeQueryRequest(
                  std::span<const uint8_t>(bytes.data(), len), &out),
              ParseError::kOk)
        << len;
  }
  RangeQueryResponse response;
  response.query_id = 9;
  response.estimates = {{0.5, 0.25}};
  std::vector<uint8_t> rbytes = SerializeRangeQueryResponse(response);
  for (size_t len = 0; len < rbytes.size(); ++len) {
    RangeQueryResponse out;
    EXPECT_NE(service::ParseRangeQueryResponse(
                  std::span<const uint8_t>(rbytes.data(), len), &out),
              ParseError::kOk)
        << len;
  }
}

TEST(QueryPlaneWire, ForgedCountsAndBadStatusAreRejected) {
  // A count far beyond the bytes present must fail before allocation.
  RangeQueryRequest request;
  request.query_id = 1;
  request.server_id = 0;
  request.intervals = {{1, 2}};
  std::vector<uint8_t> bytes = SerializeRangeQueryRequest(request);
  bytes[8 + 16] = 0xFF;  // the interval-count varint, now huge
  bytes[8 + 17] = 0x7F;
  RangeQueryRequest out;
  EXPECT_EQ(service::ParseRangeQueryRequest(bytes, &out),
            ParseError::kBadPayload);

  RangeQueryResponse response;
  response.query_id = 1;
  std::vector<uint8_t> rbytes = SerializeRangeQueryResponse(response);
  rbytes[8 + 8] = 99;  // unknown status byte
  RangeQueryResponse rout;
  EXPECT_EQ(service::ParseRangeQueryResponse(rbytes, &rout),
            ParseError::kBadPayload);
}

// --- Typed error paths over the live service ---------------------------

class QueryErrorPaths : public ::testing::Test {
 protected:
  QueryErrorPaths() : svc_(1) {
    id_ = svc_.AddServer(MakeAggregatorServer(FlatSpec()));
  }

  // Absorbs a few real reports and finalizes in-process.
  void FinalizeServer() {
    protocol::FlatHrrClient client(64, 1.0);
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
      svc_.server(id_).AbsorbSerialized(client.EncodeSerialized(5, rng));
    }
    ASSERT_TRUE(svc_.FinalizeServer(id_));
  }

  AggregatorService svc_;
  uint64_t id_ = 0;
};

TEST_F(QueryErrorPaths, QueryBeforeFinalizeReturnsNotFinalized) {
  RangeQueryRequest request;
  request.query_id = 1;
  request.server_id = id_;
  request.intervals = {{0, 10}};
  RangeQueryResponse response = Ask(svc_, request);
  EXPECT_EQ(response.status, QueryStatus::kNotFinalized);
  EXPECT_EQ(response.query_id, 1u);
  EXPECT_TRUE(response.estimates.empty());
}

TEST_F(QueryErrorPaths, UnknownServerIsTyped) {
  FinalizeServer();
  RangeQueryRequest request;
  request.query_id = 2;
  request.server_id = 55;
  request.intervals = {{0, 10}};
  EXPECT_EQ(Ask(svc_, request).status, QueryStatus::kUnknownServer);
}

TEST_F(QueryErrorPaths, EmptyIntervalListIsTyped) {
  FinalizeServer();
  RangeQueryRequest request;
  request.query_id = 3;
  request.server_id = id_;
  EXPECT_EQ(Ask(svc_, request).status, QueryStatus::kEmptyIntervalList);
}

TEST_F(QueryErrorPaths, IntervalOutOfDomainIsTyped) {
  FinalizeServer();
  RangeQueryRequest request;
  request.query_id = 4;
  request.server_id = id_;
  request.intervals = {{0, 5}, {10, 64}};  // hi == domain is out of range
  EXPECT_EQ(Ask(svc_, request).status, QueryStatus::kIntervalOutOfDomain);
}

TEST_F(QueryErrorPaths, ReversedIntervalIsTyped) {
  FinalizeServer();
  RangeQueryRequest request;
  request.query_id = 5;
  request.server_id = id_;
  request.intervals = {{9, 2}};
  EXPECT_EQ(Ask(svc_, request).status, QueryStatus::kIntervalReversed);
}

TEST_F(QueryErrorPaths, MalformedRequestBytesStillGetAResponse) {
  FinalizeServer();
  // A kRangeQueryRequest envelope whose payload is truncated mid-field.
  RangeQueryRequest request;
  request.query_id = 6;
  request.server_id = id_;
  request.intervals = {{0, 1}};
  std::vector<uint8_t> bytes = SerializeRangeQueryRequest(request);
  std::vector<uint8_t> payload(bytes.begin() + 8, bytes.end() - 1);
  std::vector<uint8_t> mangled =
      protocol::EncodeEnvelope(protocol::MechanismTag::kRangeQueryRequest,
                               payload);
  std::vector<uint8_t> reply = svc_.HandleMessage(mangled);
  RangeQueryResponse response;
  ASSERT_EQ(service::ParseRangeQueryResponse(reply, &response),
            ParseError::kOk);
  EXPECT_EQ(response.status, QueryStatus::kMalformedRequest);
}

TEST_F(QueryErrorPaths, HappyPathAnswersWithFiniteVariance) {
  FinalizeServer();
  RangeQueryRequest request;
  request.query_id = 8;
  request.server_id = id_;
  request.intervals = {{0, 63}, {5, 5}};
  RangeQueryResponse response = Ask(svc_, request);
  ASSERT_EQ(response.status, QueryStatus::kOk);
  ASSERT_EQ(response.estimates.size(), 2u);
  for (const IntervalEstimate& e : response.estimates) {
    EXPECT_TRUE(std::isfinite(e.estimate));
    EXPECT_TRUE(std::isfinite(e.variance));
    EXPECT_GE(e.variance, 0.0);
  }
  EXPECT_EQ(response.query_id, 8u);
  EXPECT_EQ(svc_.stats().queries_answered, 1u);
}

}  // namespace
}  // namespace ldp
