// The wire-scrapeable stats plane end to end: kStatsQuery/kStatsResponse
// round-trips, total parsing over truncated/adversarial bytes, the
// service's HandleStatsQuery surface (flags, malformed requests, exact
// reconciliation against ServiceStats at quiescence), a live TCP scrape
// through the front-end, and a concurrent scrape-while-ingesting hammer
// that must be race-free (run under TSan when chasing regressions).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "net/tcp_client.h"
#include "net/tcp_front_end.h"
#include "obs/metrics.h"
#include "obs/stats_wire.h"
#include "protocol/envelope.h"
#include "protocol/flat_protocol.h"
#include "service/aggregator_service.h"
#include "service/server_factory.h"
#include "service/stream_wire.h"

namespace ldp {
namespace {

using net::TcpClient;
using net::TcpFrontEnd;
using obs::kStatsFlagIncludeGlobal;
using obs::MetricsSnapshot;
using obs::ParseStatsQuery;
using obs::ParseStatsResponse;
using obs::SerializeStatsQuery;
using obs::SerializeStatsResponse;
using obs::StatsQuery;
using obs::StatsResponse;
using obs::StatsStatus;
using protocol::ParseError;
using service::AggregatorService;
using service::MakeAggregatorServer;
using service::ServerKind;
using service::ServerSpec;
using service::ServiceStats;
using service::StreamEnd;

constexpr uint64_t kDomain = 64;
constexpr double kEps = 1.0;

ServerSpec FlatSpec() {
  ServerSpec spec;
  spec.kind = ServerKind::kFlat;
  spec.domain = kDomain;
  spec.eps = kEps;
  return spec;
}

std::vector<uint8_t> EncodeBatch(uint64_t users, uint64_t seed) {
  std::vector<uint64_t> values;
  values.reserve(users);
  Rng value_rng(seed);
  for (uint64_t i = 0; i < users; ++i) {
    values.push_back(value_rng.UniformInt(kDomain));
  }
  protocol::FlatHrrClient client(kDomain, kEps);
  Rng rng(seed ^ 0x9E3779B9);
  return client.EncodeUsersSerialized(values, rng);
}

// Streams `chunks` as one finalizing session.
void StreamSession(AggregatorService& svc, uint64_t session_id,
                   uint64_t server_id,
                   const std::vector<std::vector<uint8_t>>& chunks) {
  svc.HandleMessage(service::SerializeStreamBegin({session_id, server_id}));
  for (size_t c = 0; c < chunks.size(); ++c) {
    svc.HandleMessage(
        service::SerializeStreamChunk(session_id, c, chunks[c]));
  }
  StreamEnd end;
  end.session_id = session_id;
  end.chunk_count = chunks.size();
  end.flags = service::kStreamFlagFinalize;
  svc.HandleMessage(service::SerializeStreamEnd(end));
}

// Scrapes `svc` in process and returns the parsed response.
StatsResponse Scrape(AggregatorService& svc, uint8_t flags = 0,
                     uint64_t query_id = 42) {
  std::vector<uint8_t> reply =
      svc.HandleMessage(SerializeStatsQuery({query_id, flags}));
  StatsResponse response;
  EXPECT_EQ(ParseStatsResponse(reply, &response), ParseError::kOk);
  EXPECT_EQ(response.query_id, query_id);
  EXPECT_EQ(response.status, StatsStatus::kOk);
  return response;
}

// --- wire round trips ----------------------------------------------------

TEST(StatsWire, QueryRoundTripIsByteExact) {
  StatsQuery msg{0x0123456789ABCDEFull, kStatsFlagIncludeGlobal};
  std::vector<uint8_t> bytes = SerializeStatsQuery(msg);
  StatsQuery parsed;
  ASSERT_EQ(ParseStatsQuery(bytes, &parsed), ParseError::kOk);
  EXPECT_EQ(parsed, msg);
  EXPECT_EQ(SerializeStatsQuery(parsed), bytes);
}

TEST(StatsWire, ResponseRoundTripsALiveRegistrySnapshot) {
  obs::MetricsRegistry registry;
  registry.GetCounter("alpha.count").Add(7);
  registry.GetCounter("beta.count").Add(123456789);
  registry.GetGauge("queue.depth").Add(-12);
  obs::LatencyHistogram& hist = registry.GetHistogram("lat.ns");
  for (uint64_t v : {0ull, 1ull, 17ull, 1000ull, 999999ull}) hist.Record(v);

  StatsResponse msg;
  msg.query_id = 99;
  msg.metrics = registry.Snapshot();
  std::vector<uint8_t> bytes = SerializeStatsResponse(msg);
  StatsResponse parsed;
  ASSERT_EQ(ParseStatsResponse(bytes, &parsed), ParseError::kOk);
  EXPECT_EQ(parsed, msg);
  // Canonical form: one encoding per snapshot.
  EXPECT_EQ(SerializeStatsResponse(parsed), bytes);
}

TEST(StatsWire, EmptyResponseRoundTrips) {
  StatsResponse msg;
  msg.status = StatsStatus::kMalformedRequest;
  std::vector<uint8_t> bytes = SerializeStatsResponse(msg);
  StatsResponse parsed;
  ASSERT_EQ(ParseStatsResponse(bytes, &parsed), ParseError::kOk);
  EXPECT_EQ(parsed, msg);
  EXPECT_TRUE(parsed.metrics.counters.empty());
}

// --- total parsing over adversarial bytes --------------------------------

TEST(StatsWire, EveryStrictPrefixOfAResponseIsRejected) {
  obs::MetricsRegistry registry;
  registry.GetCounter("a").Increment();
  registry.GetCounter("bb").Add(300);
  registry.GetGauge("g").Add(-5);
  obs::LatencyHistogram& hist = registry.GetHistogram("h.ns");
  hist.Record(3);
  hist.Record(70000);
  StatsResponse msg;
  msg.query_id = 7;
  msg.metrics = registry.Snapshot();
  std::vector<uint8_t> bytes = SerializeStatsResponse(msg);
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::span<const uint8_t> prefix(bytes.data(), len);
    StatsResponse out;
    EXPECT_NE(ParseStatsResponse(prefix, &out), ParseError::kOk)
        << "prefix of length " << len << " parsed";
  }
  StatsQuery query{1, 0};
  std::vector<uint8_t> query_bytes = SerializeStatsQuery(query);
  for (size_t len = 0; len < query_bytes.size(); ++len) {
    std::span<const uint8_t> prefix(query_bytes.data(), len);
    StatsQuery out;
    EXPECT_NE(ParseStatsQuery(prefix, &out), ParseError::kOk);
  }
}

TEST(StatsWire, SingleByteCorruptionNeverCrashesAndReparsesConsistently) {
  obs::MetricsRegistry registry;
  registry.GetCounter("net.bytes").Add(512);
  obs::LatencyHistogram& hist = registry.GetHistogram("lat.ns");
  hist.Record(40);
  hist.Record(41);
  StatsResponse msg;
  msg.metrics = registry.Snapshot();
  std::vector<uint8_t> bytes = SerializeStatsResponse(msg);
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> mutated = bytes;
    mutated[i] ^= 0xFF;
    StatsResponse out;
    if (ParseStatsResponse(mutated, &out) != ParseError::kOk) continue;
    // Whatever parsed must survive its own serialize -> parse cycle.
    std::vector<uint8_t> reencoded = SerializeStatsResponse(out);
    StatsResponse reparsed;
    ASSERT_EQ(ParseStatsResponse(reencoded, &reparsed), ParseError::kOk);
    EXPECT_EQ(reparsed, out) << "byte " << i;
  }
}

TEST(StatsWire, ForgedHistogramExtremesAreRejected) {
  // A histogram whose min does not land in the lowest occupied bucket
  // (or max not in the highest) is a forgery — build one by hand.
  obs::MetricsRegistry registry;
  obs::LatencyHistogram& hist = registry.GetHistogram("h");
  hist.Record(100);  // bucket 7
  StatsResponse msg;
  msg.metrics = registry.Snapshot();
  std::vector<uint8_t> good = SerializeStatsResponse(msg);
  StatsResponse parsed;
  ASSERT_EQ(ParseStatsResponse(good, &parsed), ParseError::kOk);

  msg.metrics.histograms[0].histogram.min = 1;  // bucket 1 != bucket 7
  // SerializeStatsResponse normalizes torn extremes, so a forgery has to
  // bypass it: patch the serialized min varint directly. Layout after
  // the envelope header + 8-byte query_id + status + version:
  //   counters=0 gauges=0 histograms=1, name "h" (len 1), sum varint,
  //   min varint ...
  // sum=100 encodes as 1 varint byte (0x64), min=100 likewise.
  std::vector<uint8_t> forged = good;
  size_t min_offset = protocol::kEnvelopeHeaderSize + 8 + 1 + 1 +
                      /*counts*/ 3 + /*name*/ 2 + /*sum*/ 1;
  ASSERT_EQ(forged.at(min_offset), 100);  // sanity: this is min=100
  forged[min_offset] = 1;
  StatsResponse out;
  EXPECT_NE(ParseStatsResponse(forged, &out), ParseError::kOk);
}

// --- service surface -----------------------------------------------------

TEST(StatsPlane, HandleStatsQueryServesServiceAndServerMetrics) {
  AggregatorService svc(/*worker_threads=*/0);
  uint64_t server_id = svc.AddServer(MakeAggregatorServer(FlatSpec()));
  StreamSession(svc, /*session_id=*/1, server_id,
                {EncodeBatch(200, 11), EncodeBatch(100, 12)});
  svc.Drain();

  StatsResponse response = Scrape(svc);
  const MetricsSnapshot& m = response.metrics;
  EXPECT_EQ(m.CounterOr("service.chunks_absorbed"), 2u);
  EXPECT_EQ(m.CounterOr("server0.accepted"), 300u);
  EXPECT_EQ(m.CounterOr("server0.rejected"), 0u);
  const obs::HistogramValue* absorb = m.FindHistogram("server0.absorb_batch_ns");
  ASSERT_NE(absorb, nullptr);
  EXPECT_EQ(absorb->histogram.count, 2u);
  EXPECT_GT(absorb->histogram.sum, 0u);
  const obs::HistogramValue* finalize = m.FindHistogram("server0.finalize_ns");
  ASSERT_NE(finalize, nullptr);
  EXPECT_EQ(finalize->histogram.count, 1u);
  ASSERT_NE(m.FindHistogram("service.queue_wait_ns"), nullptr);
  const obs::GaugeValue* depth = m.FindGauge("service.queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->value, 0);
}

TEST(StatsPlane, IncludeGlobalFlagMergesTheProcessRegistry) {
  AggregatorService svc(/*worker_threads=*/0);
  svc.AddServer(MakeAggregatorServer(FlatSpec()));
  // Plant a sentinel in the process-global registry; it must appear only
  // when the flag asks for it.
  obs::MetricsRegistry::Global()
      .GetCounter("test.stats_plane_sentinel")
      .Add(77);
  StatsResponse without = Scrape(svc, /*flags=*/0, /*query_id=*/1);
  EXPECT_EQ(without.metrics.FindCounter("test.stats_plane_sentinel"),
            nullptr);
  StatsResponse with = Scrape(svc, kStatsFlagIncludeGlobal, /*query_id=*/2);
  EXPECT_EQ(with.metrics.CounterOr("test.stats_plane_sentinel"), 77u);
  // The with-global response is a superset: every service-side entry
  // still present.
  for (const obs::CounterValue& c : without.metrics.counters) {
    // Counters are monotone, so the later scrape dominates everywhere.
    EXPECT_GE(with.metrics.CounterOr(c.name), c.value) << c.name;
  }
}

TEST(StatsPlane, MalformedStatsQueryGetsTypedRejection) {
  AggregatorService svc(/*worker_threads=*/0);
  // A kStatsQuery envelope whose payload is one byte short: re-frame a
  // truncated payload through the envelope encoder.
  std::vector<uint8_t> good = SerializeStatsQuery({5, 0});
  protocol::Envelope env;
  ASSERT_EQ(protocol::DecodeEnvelope(good, &env), ParseError::kOk);
  std::vector<uint8_t> short_payload(env.payload.begin(),
                                     env.payload.end() - 1);
  std::vector<uint8_t> bad = protocol::EncodeEnvelope(
      protocol::MechanismTag::kStatsQuery, short_payload);
  std::vector<uint8_t> reply = svc.HandleMessage(bad);
  StatsResponse response;
  ASSERT_EQ(ParseStatsResponse(reply, &response), ParseError::kOk);
  EXPECT_EQ(response.status, StatsStatus::kMalformedRequest);
  EXPECT_TRUE(response.metrics.counters.empty());
  ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.malformed_messages, 1u);
  EXPECT_EQ(stats.queries_answered, 1u);
}

// The scrape counts itself (queries_answered and messages are bumped
// before the snapshot), so a scrape at quiescence must reconcile
// EXACTLY with a ServiceStats read taken right after it.
TEST(StatsPlane, ScrapeReconcilesExactlyWithServiceStats) {
  AggregatorService svc(/*worker_threads=*/2);
  uint64_t server_id = svc.AddServer(MakeAggregatorServer(FlatSpec()));
  StreamSession(svc, 1, server_id,
                {EncodeBatch(100, 1), EncodeBatch(100, 2)});
  // A second session with one duplicate chunk and a stray unknown-session
  // chunk so the hygiene counters are non-zero.
  svc.HandleMessage(service::SerializeStreamBegin({2, server_id}));
  std::vector<uint8_t> chunk = EncodeBatch(50, 3);
  svc.HandleMessage(service::SerializeStreamChunk(2, 0, chunk));
  svc.HandleMessage(service::SerializeStreamChunk(2, 0, chunk));   // dup
  svc.HandleMessage(service::SerializeStreamChunk(999, 0, chunk)); // unknown
  StreamEnd end;
  end.session_id = 2;
  end.chunk_count = 1;
  svc.HandleMessage(service::SerializeStreamEnd(end));
  svc.Drain();

  StatsResponse response = Scrape(svc);
  ServiceStats stats = svc.stats();
  const MetricsSnapshot& m = response.metrics;
  EXPECT_EQ(m.CounterOr("service.messages"), stats.messages);
  EXPECT_EQ(m.CounterOr("service.malformed_messages"),
            stats.malformed_messages);
  EXPECT_EQ(m.CounterOr("service.duplicate_sessions"),
            stats.duplicate_sessions);
  EXPECT_EQ(m.CounterOr("service.rejected_sessions"),
            stats.rejected_sessions);
  EXPECT_EQ(m.CounterOr("service.unknown_sessions"), stats.unknown_sessions);
  EXPECT_EQ(m.CounterOr("service.duplicate_chunks"), stats.duplicate_chunks);
  EXPECT_EQ(m.CounterOr("service.late_chunks"), stats.late_chunks);
  EXPECT_EQ(m.CounterOr("service.incomplete_streams"),
            stats.incomplete_streams);
  EXPECT_EQ(m.CounterOr("service.oversized_declarations"),
            stats.oversized_declarations);
  EXPECT_EQ(m.CounterOr("service.chunks_enqueued"), stats.chunks_enqueued);
  EXPECT_EQ(m.CounterOr("service.chunks_absorbed"), stats.chunks_absorbed);
  EXPECT_EQ(m.CounterOr("service.backpressure_waits"),
            stats.backpressure_waits);
  EXPECT_EQ(m.CounterOr("service.socket_pauses"), stats.socket_pauses);
  EXPECT_EQ(m.CounterOr("service.queries_answered"),
            stats.queries_answered);
  // Cross-counter invariants at quiescence.
  EXPECT_EQ(m.CounterOr("service.unknown_sessions"), 1u);
  EXPECT_EQ(m.CounterOr("service.duplicate_chunks"), 1u);
  EXPECT_EQ(m.CounterOr("service.chunks_enqueued"),
            m.CounterOr("service.chunks_absorbed"));
  EXPECT_EQ(m.CounterOr("service.sessions_begun"), 2u);
  EXPECT_EQ(m.CounterOr("service.sessions_completed"), 2u);
  // 100 + 100 from session 1 plus 50 from session 2; the duplicate and
  // unknown-session chunks were dropped before ingestion.
  EXPECT_EQ(m.CounterOr("server0.accepted") +
                m.CounterOr("server0.rejected"),
            250u);
}

// --- TCP scrape (the ISSUE acceptance criterion) -------------------------

TEST(StatsPlane, LiveTcpScrapeReturnsNonZeroIngestHistograms) {
  AggregatorService svc(/*worker_threads=*/2);
  uint64_t server_id = svc.AddServer(MakeAggregatorServer(FlatSpec()));
  TcpFrontEnd front(svc);
  ASSERT_TRUE(front.Start());
  TcpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", front.port()));
  // Stream messages are fire-and-forget: Send, not Call (no response
  // ever comes back for them).
  ASSERT_TRUE(client.Send(service::SerializeStreamBegin({1, server_id})));
  ASSERT_TRUE(client.Send(
      service::SerializeStreamChunk(1, 0, EncodeBatch(300, 21))));
  StreamEnd end;
  end.session_id = 1;
  end.chunk_count = 1;
  ASSERT_TRUE(client.Send(service::SerializeStreamEnd(end)));
  // A Call on the same connection synchronizes: its response proves
  // every prior message was routed (per-connection FIFO), after which
  // Drain() flushes the ingestion queues.
  std::vector<uint8_t> sync =
      client.Call(SerializeStatsQuery({1, 0}));
  ASSERT_FALSE(sync.empty());
  svc.Drain();

  std::vector<uint8_t> reply =
      client.Call(SerializeStatsQuery({0xBEEF, kStatsFlagIncludeGlobal}));
  StatsResponse response;
  ASSERT_EQ(ParseStatsResponse(reply, &response), ParseError::kOk);
  EXPECT_EQ(response.status, StatsStatus::kOk);
  EXPECT_EQ(response.query_id, 0xBEEFu);
  const MetricsSnapshot& m = response.metrics;
  const obs::HistogramValue* absorb =
      m.FindHistogram("server0.absorb_batch_ns");
  ASSERT_NE(absorb, nullptr);
  EXPECT_GT(absorb->histogram.count, 0u);
  EXPECT_GT(absorb->histogram.sum, 0u);
  EXPECT_EQ(m.CounterOr("server0.accepted"), 300u);
  // The front-end's own counters ride in the same response.
  EXPECT_GT(m.CounterOr("net.bytes_received"), 0u);
  EXPECT_GT(m.CounterOr("net.messages_routed"), 0u);
  EXPECT_GT(m.CounterOr("net.connections_accepted"), 0u);
  EXPECT_EQ(m.CounterOr("net.read_pauses"), m.CounterOr("net.read_resumes"));
  front.Stop();
}

// --- satellite 2: scrape-while-ingesting must be race-free ---------------

TEST(StatsPlane, ConcurrentScrapesDuringIngestAreCoherent) {
  AggregatorService svc(/*worker_threads=*/4, /*queue_high_water=*/4);
  uint64_t server_id = svc.AddServer(MakeAggregatorServer(FlatSpec()));
  constexpr int kProducers = 3;
  constexpr int kChunksPerProducer = 8;
  std::vector<std::vector<uint8_t>> batches;
  for (int i = 0; i < kProducers * kChunksPerProducer; ++i) {
    batches.push_back(EncodeBatch(40, 100 + i));
  }
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    uint64_t scrapes = 0;
    while (!stop.load(std::memory_order_acquire)) {
      // Wire scrape and both in-process snapshot paths, concurrently
      // with ingestion: must be data-race-free, and every intermediate
      // snapshot must hold monotone partial-progress invariants.
      std::vector<uint8_t> reply =
          svc.HandleMessage(SerializeStatsQuery({scrapes, 0}));
      StatsResponse response;
      ASSERT_EQ(ParseStatsResponse(reply, &response), ParseError::kOk);
      ServiceStats stats = svc.stats();
      EXPECT_GE(stats.chunks_enqueued, stats.chunks_absorbed);
      (void)svc.registry().Snapshot();
      ++scrapes;
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      uint64_t session_id = 10 + p;
      svc.HandleMessage(
          service::SerializeStreamBegin({session_id, server_id}));
      for (int c = 0; c < kChunksPerProducer; ++c) {
        svc.HandleMessage(service::SerializeStreamChunk(
            session_id, c, batches[p * kChunksPerProducer + c]));
      }
      StreamEnd end;
      end.session_id = session_id;
      end.chunk_count = kChunksPerProducer;
      svc.HandleMessage(service::SerializeStreamEnd(end));
    });
  }
  for (std::thread& t : producers) t.join();
  svc.Drain();
  stop.store(true, std::memory_order_release);
  scraper.join();

  // Quiesced: the final scrape is exact.
  StatsResponse response = Scrape(svc);
  ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.chunks_absorbed,
            uint64_t{kProducers} * kChunksPerProducer);
  EXPECT_EQ(response.metrics.CounterOr("service.chunks_absorbed"),
            stats.chunks_absorbed);
  EXPECT_EQ(response.metrics.CounterOr("server0.accepted"),
            uint64_t{kProducers} * kChunksPerProducer * 40);
  const obs::GaugeValue* depth =
      response.metrics.FindGauge("service.queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->value, 0);
}

}  // namespace
}  // namespace ldp
