#include "frequency/hadamard.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace ldp {
namespace {

TEST(Hadamard, MatchesPaperFigure1ForD8) {
  // Paper Figure 1 lists the (scaled) D=8 Hadamard matrix; verify the
  // distinctive rows.
  const int expected[8][8] = {
      {1, 1, 1, 1, 1, 1, 1, 1},   {1, -1, 1, -1, 1, -1, 1, -1},
      {1, 1, -1, -1, 1, 1, -1, -1}, {1, -1, -1, 1, 1, -1, -1, 1},
      {1, 1, 1, 1, -1, -1, -1, -1}, {1, -1, 1, -1, -1, 1, -1, 1},
      {1, 1, -1, -1, -1, -1, 1, 1}, {1, -1, -1, 1, -1, 1, 1, -1}};
  for (uint64_t i = 0; i < 8; ++i) {
    for (uint64_t j = 0; j < 8; ++j) {
      EXPECT_EQ(HadamardEntry(i, j), expected[i][j])
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(Hadamard, TransformOfBasisVectorIsMatrixColumn) {
  const size_t d = 16;
  for (uint64_t v = 0; v < d; ++v) {
    std::vector<double> x(d, 0.0);
    x[v] = 1.0;
    FastWalshHadamard(x);
    for (uint64_t j = 0; j < d; ++j) {
      EXPECT_DOUBLE_EQ(x[j], HadamardEntry(v, j));
    }
  }
}

TEST(Hadamard, InvolutionUpToD) {
  Rng rng(5);
  const size_t d = 64;
  std::vector<double> x(d);
  for (double& v : x) {
    v = rng.UniformDouble() - 0.5;
  }
  std::vector<double> original = x;
  FastWalshHadamard(x);
  FastWalshHadamard(x);
  for (size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(x[i], static_cast<double>(d) * original[i], 1e-9);
  }
}

TEST(Hadamard, ParsevalEnergyConservation) {
  Rng rng(6);
  const size_t d = 32;
  std::vector<double> x(d);
  double energy = 0.0;
  for (double& v : x) {
    v = rng.Gaussian();
    energy += v * v;
  }
  FastWalshHadamard(x);
  double spectral = 0.0;
  for (double v : x) {
    spectral += v * v;
  }
  // Unnormalized transform scales energy by D.
  EXPECT_NEAR(spectral, static_cast<double>(d) * energy, 1e-8 * spectral);
}

TEST(Hadamard, SizeOneIsIdentity) {
  std::vector<double> x = {3.25};
  FastWalshHadamard(x);
  EXPECT_DOUBLE_EQ(x[0], 3.25);
}

TEST(Hadamard, RowsAreOrthogonal) {
  const uint64_t d = 16;
  for (uint64_t i = 0; i < d; ++i) {
    for (uint64_t j = 0; j < d; ++j) {
      int dot = 0;
      for (uint64_t k = 0; k < d; ++k) {
        dot += HadamardEntry(i, k) * HadamardEntry(j, k);
      }
      EXPECT_EQ(dot, i == j ? static_cast<int>(d) : 0);
    }
  }
}

}  // namespace
}  // namespace ldp
