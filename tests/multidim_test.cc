#include "core/multidim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "core/hierarchical.h"

namespace ldp {
namespace {

HierarchicalGridConfig Config(uint64_t fanout) {
  HierarchicalGridConfig config;
  config.fanout = fanout;
  config.oracle = OracleKind::kOueSimulated;
  return config;
}

// Encodes row-major points through the batched MechanismBase path.
void EncodeAll(MechanismBase& mech, const std::vector<uint64_t>& coords,
               Rng& rng) {
  mech.EncodePoints(coords, rng);
}

TEST(Hierarchical2D, NameAndGeometry) {
  Hierarchical2D mech(16, 1.0, Config(2));
  EXPECT_EQ(mech.Name(), "HH2D2-OUE(sim)");
  EXPECT_EQ(mech.domain_per_dim(), 16u);
  EXPECT_EQ(mech.dimensions(), 2u);
}

TEST(Hierarchical2D, NoiselessRecoversRectangles) {
  Rng rng(1);
  Hierarchical2D mech(16, 60.0, Config(2));
  const int n = 200000;
  // Half the users at (3, 12), half uniform over the x=8..15, y=0..7
  // quadrant corner cells.
  for (int i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      mech.EncodeUser(3, 12, rng);
    } else {
      mech.EncodeUser(8 + (i / 2) % 8, (i / 2) % 8, rng);
    }
  }
  mech.Finalize(rng);
  EXPECT_NEAR(mech.RangeQuery(3, 3, 12, 12), 0.5, 0.03);
  EXPECT_NEAR(mech.RangeQuery(8, 15, 0, 7), 0.5, 0.03);
  EXPECT_NEAR(mech.RangeQuery(0, 15, 0, 15), 1.0, 1e-9);
  EXPECT_NEAR(mech.RangeQuery(0, 2, 0, 11), 0.0, 0.03);
}

TEST(Hierarchical2D, FullPlaneIsExact) {
  Rng rng(2);
  Hierarchical2D mech(8, 0.5, Config(2));
  for (int i = 0; i < 500; ++i) {
    mech.EncodeUser(i % 8, (i * 3) % 8, rng);
  }
  mech.Finalize(rng);
  // The (root, root) pair is known exactly.
  EXPECT_DOUBLE_EQ(mech.RangeQuery(0, 7, 0, 7), 1.0);
}

TEST(Hierarchical2D, MarginalStripsUseMixedLevelPairs) {
  // A full-width strip in x exercises (level-0, ly) pairs.
  Rng rng(3);
  Hierarchical2D mech(16, 60.0, Config(4));
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    mech.EncodeUser(i % 16, i % 4, rng);  // y concentrated in [0, 3]
  }
  mech.Finalize(rng);
  EXPECT_NEAR(mech.RangeQuery(0, 15, 0, 3), 1.0, 0.03);
  EXPECT_NEAR(mech.RangeQuery(0, 15, 8, 15), 0.0, 0.03);
}

TEST(Hierarchical2D, RectangleEstimatesUnbiased) {
  const int trials = 100;
  const int n = 3000;
  RunningStat est;
  Rng rng(4);
  for (int t = 0; t < trials; ++t) {
    Hierarchical2D mech(16, 1.1, Config(2));
    for (int i = 0; i < n; ++i) {
      mech.EncodeUser(i % 16, (i / 16) % 16, rng);
    }
    mech.Finalize(rng);
    est.Add(mech.RangeQuery(4, 11, 4, 11));  // truth: (8/16)^2 = 0.25
  }
  EXPECT_NEAR(est.mean(), 0.25,
              5 * std::sqrt(est.sample_variance() / trials) + 0.02);
}

TEST(HierarchicalGrid, BatchMatchesPerPointEncoding) {
  // EncodePoints must consume the identical Rng stream as the per-point
  // loop — the batched path is a hoist, not a different mechanism.
  std::vector<uint64_t> coords;
  for (int i = 0; i < 4000; ++i) {
    coords.push_back(static_cast<uint64_t>(i % 16));
    coords.push_back(static_cast<uint64_t>((i * 5) % 16));
  }
  HierarchicalGrid batched(16, 2, 1.1, Config(2));
  HierarchicalGrid looped(16, 2, 1.1, Config(2));
  Rng rng_batched(11);
  Rng rng_looped(11);
  batched.EncodePoints(coords, rng_batched);
  for (size_t i = 0; i < coords.size(); i += 2) {
    looped.EncodePoint(coords.data() + i, rng_looped);
  }
  Rng fin1(12);
  Rng fin2(12);
  batched.Finalize(fin1);
  looped.Finalize(fin2);
  const AxisInterval box[2] = {{2, 13}, {5, 9}};
  EXPECT_EQ(batched.BoxQuery(box), looped.BoxQuery(box));
  EXPECT_EQ(batched.user_count(), looped.user_count());
}

TEST(HierarchicalGrid, ShardedEncodeBitIdenticalAcrossThreads) {
  // The CloneEmptyBase/MergeFromBase sharding contract: the aggregate
  // must be bit-identical for every worker count.
  std::vector<uint64_t> coords;
  for (int i = 0; i < 50000; ++i) {
    coords.push_back(static_cast<uint64_t>((i * 7) % 16));
    coords.push_back(static_cast<uint64_t>((i * 3) % 16));
  }
  const AxisInterval boxes[][2] = {
      {{0, 15}, {0, 15}}, {{4, 11}, {4, 11}}, {{0, 0}, {15, 15}},
      {{2, 13}, {7, 8}}};
  std::vector<double> reference;
  for (unsigned threads : {1u, 4u, 8u}) {
    HierarchicalGrid grid(16, 2, 1.1, Config(2));
    EncodePointsSharded(grid, coords, /*seed=*/99, threads);
    Rng fin(7);
    grid.Finalize(fin);
    EXPECT_EQ(grid.user_count(), 50000u);
    std::vector<double> answers;
    for (const auto& box : boxes) {
      answers.push_back(grid.BoxQuery(box));
    }
    if (reference.empty()) {
      reference = answers;
    } else {
      for (size_t q = 0; q < answers.size(); ++q) {
        EXPECT_EQ(answers[q], reference[q]) << "query " << q << " at "
                                            << threads << " threads";
      }
    }
  }
}

TEST(HierarchicalGrid, OneDimensionMatchesHierarchicalMechanism) {
  // With d = 1 the grid's level-tuple sampling degenerates to exactly the
  // 1-D HH level sampling (uniform over levels 1..h), so the two
  // mechanisms are the same estimator; their means must agree within
  // sampling error on the same workload.
  const int trials = 40;
  const int n = 4000;
  const uint64_t kDomain = 64;
  HierarchicalConfig config_1d;
  config_1d.fanout = 4;
  config_1d.oracle = OracleKind::kOueSimulated;
  config_1d.consistency = false;  // the grid applies no CI either
  RunningStat grid_est;
  RunningStat hier_est;
  Rng rng(13);
  for (int t = 0; t < trials; ++t) {
    HierarchicalGrid grid(kDomain, 1, 1.1, Config(4));
    HierarchicalMechanism hier(kDomain, 1.1, config_1d);
    for (int i = 0; i < n; ++i) {
      const uint64_t v = static_cast<uint64_t>(i % 32);
      grid.EncodePoint(&v, rng);
      hier.EncodeUser(v, rng);
    }
    grid.Finalize(rng);
    hier.Finalize(rng);
    const AxisInterval box[1] = {{8, 23}};
    grid_est.Add(grid.BoxQuery(box));
    hier_est.Add(hier.RangeQuery(8, 23));  // truth 0.5
  }
  const double sigma =
      std::sqrt((grid_est.sample_variance() + hier_est.sample_variance()) /
                trials);
  EXPECT_NEAR(grid_est.mean(), 0.5, 5 * sigma + 0.02);
  EXPECT_NEAR(hier_est.mean(), 0.5, 5 * sigma + 0.02);
  EXPECT_NEAR(grid_est.mean(), hier_est.mean(), 5 * sigma + 0.02);
}

TEST(HierarchicalGrid, ThreeDimensionalBoxes) {
  Rng rng(7);
  HierarchicalGrid grid(8, 3, 60.0, Config(2));
  const int n = 200000;
  // Mass at the corner cube [0,3]^3 and the opposite corner point.
  std::vector<uint64_t> coords;
  coords.reserve(3 * n);
  for (int i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      coords.push_back(static_cast<uint64_t>(i % 4));
      coords.push_back(static_cast<uint64_t>((i / 2) % 4));
      coords.push_back(static_cast<uint64_t>((i / 8) % 4));
    } else {
      coords.insert(coords.end(), {7, 7, 7});
    }
  }
  EncodeAll(grid, coords, rng);
  grid.Finalize(rng);
  const AxisInterval corner[3] = {{0, 3}, {0, 3}, {0, 3}};
  const AxisInterval point[3] = {{7, 7}, {7, 7}, {7, 7}};
  const AxisInterval all[3] = {{0, 7}, {0, 7}, {0, 7}};
  const AxisInterval empty[3] = {{4, 6}, {0, 7}, {0, 7}};
  EXPECT_NEAR(grid.BoxQuery(corner), 0.5, 0.05);
  EXPECT_NEAR(grid.BoxQuery(point), 0.5, 0.05);
  EXPECT_NEAR(grid.BoxQuery(all), 1.0, 1e-9);
  EXPECT_NEAR(grid.BoxQuery(empty), 0.0, 0.05);
}

TEST(HierarchicalGrid, UncertaintyEnvelopeCoversNoise) {
  Rng rng(14);
  HierarchicalGrid grid(16, 2, 1.1, Config(2));
  std::vector<uint64_t> coords;
  for (int i = 0; i < 20000; ++i) {
    coords.push_back(static_cast<uint64_t>(i % 16));
    coords.push_back(static_cast<uint64_t>((i / 16) % 16));
  }
  EncodeAll(grid, coords, rng);
  grid.Finalize(rng);
  const AxisInterval box[2] = {{4, 11}, {4, 11}};
  RangeEstimate est = grid.BoxQueryWithUncertainty(box);
  EXPECT_EQ(est.value, grid.BoxQuery(box));
  EXPECT_GT(est.stddev, 0.0);
  EXPECT_LT(est.stddev, 1.0);
  // The analytic envelope should cover the realized error generously.
  EXPECT_LT(std::abs(est.value - 0.25), 6 * est.stddev + 0.01);
}

TEST(HierarchicalGrid, CreateRejectsOverBudgetWithTypedError) {
  // D = 16, d = 2, B = 2: per-axis node counts {1, 2, 4, 8, 16} sum to
  // 31, so the non-trivial tuples need 31^2 - 1 = 960 cells in total.
  std::string error;
  auto exact = HierarchicalGrid::Create(16, 2, 1.0, Config(2),
                                        /*max_total_cells=*/960, &error);
  ASSERT_NE(exact, nullptr) << error;
  EXPECT_EQ(exact->total_cells(), 960u);

  auto over = HierarchicalGrid::Create(16, 2, 1.0, Config(2),
                                       /*max_total_cells=*/959, &error);
  EXPECT_EQ(over, nullptr);
  EXPECT_NE(error.find("budget"), std::string::npos) << error;

  // Huge configurations must fail cleanly (overflow-safe accounting),
  // not wrap around into a spurious small total.
  auto huge = HierarchicalGrid::Create(uint64_t{1} << 40, 16, 1.0,
                                       Config(2), HierarchicalGrid::
                                           kDefaultCellBudget, &error);
  EXPECT_EQ(huge, nullptr);

  // Invalid parameters get their own messages.
  EXPECT_EQ(HierarchicalGrid::Create(1, 2, 1.0, Config(2),
                                     HierarchicalGrid::kDefaultCellBudget,
                                     &error),
            nullptr);
  EXPECT_EQ(HierarchicalGrid::Create(16, 2, -1.0, Config(2),
                                     HierarchicalGrid::kDefaultCellBudget,
                                     &error),
            nullptr);
}

TEST(HierarchicalGrid, CellBudgetGuardDeathInConstructor) {
  // The constructor keeps the CHECK for callers that bypass Create().
  EXPECT_DEATH(HierarchicalGrid(1 << 10, 3, 1.0, Config(2),
                                /*max_total_cells=*/1 << 16),
               "budget");
}

TEST(HierarchicalGrid, GuardsAgainstMisuse) {
  Rng rng(10);
  HierarchicalGrid grid(8, 2, 1.0, Config(2));
  const uint64_t out_of_range[2] = {1, 8};
  EXPECT_DEATH(grid.EncodePoint(out_of_range, rng), "");
  const std::vector<uint64_t> wrong_arity = {1, 2, 3};
  EXPECT_DEATH(grid.EncodePoints(wrong_arity, rng), "");
  const uint64_t ok[2] = {1, 2};
  grid.EncodePoint(ok, rng);
  grid.Finalize(rng);
  EXPECT_DEATH(grid.EncodePoint(ok, rng), "Finalize");
  const AxisInterval short_box[1] = {{0, 3}};
  EXPECT_DEATH(grid.BoxQuery(short_box), "");  // wrong arity
  const AxisInterval inverted[2] = {{3, 1}, {0, 1}};
  EXPECT_DEATH(grid.BoxQuery(inverted), "");  // inverted range
}

TEST(Hierarchical2D, GuardsAgainstMisuse) {
  Rng rng(5);
  Hierarchical2D mech(8, 1.0, Config(2));
  EXPECT_DEATH(mech.RangeQuery(0, 1, 0, 1), "Finalize");
  mech.EncodeUser(0, 0, rng);
  mech.Finalize(rng);
  EXPECT_DEATH(mech.EncodeUser(0, 0, rng), "Finalize");
  EXPECT_DEATH(mech.RangeQuery(0, 8, 0, 1), "");
}

HierarchicalGridConfig KindConfig(OracleKind kind, GridDecode decode) {
  HierarchicalGridConfig config;
  config.fanout = 2;
  config.oracle = kind;
  config.decode = decode;
  return config;
}

std::vector<uint64_t> TestPoints(int n, uint64_t domain) {
  std::vector<uint64_t> coords;
  coords.reserve(2 * n);
  Rng rng(404);
  for (int i = 0; i < n; ++i) {
    uint64_t x = rng.UniformInt(domain);
    coords.push_back(x);
    coords.push_back(std::min(x + rng.UniformInt(4), domain - 1));
  }
  return coords;
}

TEST(HierarchicalGrid, DeferredMatchesEagerBitIdentical) {
  // The tentpole contract: both decode strategies consume identical
  // client-side Rng streams at ingest and fork identical per-tuple decode
  // streams at Finalize, so every estimate (and its uncertainty) must be
  // BIT-identical — not merely statistically close — for every deferrable
  // oracle kind.
  const std::vector<uint64_t> coords = TestPoints(20000, 16);
  const AxisInterval boxes[][2] = {
      {{0, 15}, {0, 15}}, {{4, 11}, {4, 11}}, {{0, 0}, {15, 15}},
      {{2, 13}, {7, 8}},  {{5, 5}, {5, 5}}};
  for (OracleKind kind :
       {OracleKind::kOueSimulated, OracleKind::kSueSimulated, OracleKind::kGrr,
        OracleKind::kOlh}) {
    ASSERT_TRUE(GridOracleDeferrable(kind));
    HierarchicalGrid deferred(16, 2, 1.1, KindConfig(kind, GridDecode::kDeferred));
    HierarchicalGrid eager(16, 2, 1.1, KindConfig(kind, GridDecode::kEager));
    ASSERT_EQ(deferred.decode_mode(), GridDecode::kDeferred);
    ASSERT_EQ(eager.decode_mode(), GridDecode::kEager);
    EXPECT_EQ(deferred.ReportBits(), eager.ReportBits());
    Rng enc_d(31), enc_e(31);
    deferred.EncodePoints(coords, enc_d);
    eager.EncodePoints(coords, enc_e);
    // Ingest must consume the SAME client stream in both modes.
    EXPECT_EQ(enc_d.Next(), enc_e.Next());
    Rng fin_d(57), fin_e(57);
    deferred.Finalize(fin_d);
    eager.Finalize(fin_e);
    for (const auto& box : boxes) {
      RangeEstimate d = deferred.BoxQueryWithUncertainty(box);
      RangeEstimate e = eager.BoxQueryWithUncertainty(box);
      EXPECT_EQ(d.value, e.value) << "kind " << static_cast<int>(kind);
      EXPECT_EQ(d.stddev, e.stddev) << "kind " << static_cast<int>(kind);
    }
  }
}

TEST(HierarchicalGrid, NonDeferrableKindsFallBackToEager) {
  for (OracleKind kind :
       {OracleKind::kOue, OracleKind::kSue, OracleKind::kHrr}) {
    EXPECT_FALSE(GridOracleDeferrable(kind));
    HierarchicalGrid grid(8, 2, 1.0, KindConfig(kind, GridDecode::kDeferred));
    EXPECT_EQ(grid.decode_mode(), GridDecode::kEager);
    Rng rng(3);
    const uint64_t point[2] = {2, 5};
    grid.EncodePoint(point, rng);
    grid.Finalize(rng);
    const AxisInterval all[2] = {{0, 7}, {0, 7}};
    EXPECT_NEAR(grid.BoxQuery(all), 1.0, 1e-9);
  }
}

TEST(HierarchicalGrid, FinalizeThreadCountBitIdentical) {
  // Finalize fans out over tuples; per-tuple forked Rng streams make the
  // result independent of the worker count in BOTH decode modes.
  const std::vector<uint64_t> coords = TestPoints(20000, 16);
  const AxisInterval boxes[][2] = {
      {{0, 15}, {0, 15}}, {{4, 11}, {4, 11}}, {{2, 13}, {7, 8}}};
  for (GridDecode decode : {GridDecode::kDeferred, GridDecode::kEager}) {
    std::vector<double> reference;
    for (unsigned threads : {1u, 4u, 8u}) {
      HierarchicalGrid grid(16, 2, 1.1,
                            KindConfig(OracleKind::kOlh, decode));
      grid.set_finalize_threads(threads);
      Rng enc(88);
      grid.EncodePoints(coords, enc);
      Rng fin(21);
      grid.Finalize(fin);
      std::vector<double> answers;
      for (const auto& box : boxes) {
        answers.push_back(grid.BoxQuery(box));
      }
      if (reference.empty()) {
        reference = answers;
      } else {
        for (size_t q = 0; q < answers.size(); ++q) {
          EXPECT_EQ(answers[q], reference[q])
              << "query " << q << " at " << threads << " threads";
        }
      }
    }
  }
}

TEST(HierarchicalGrid, MergeAdoptsRecordsWithoutCopying) {
  // Deferred-mode MergeFromBase splices the shard's arena blocks: no new
  // system allocations, and the merged record sequence (shard records
  // appended after the target's) decodes bit-identically to one grid that
  // ingested both halves through the same two streams.
  const std::vector<uint64_t> coords = TestPoints(10000, 16);
  const size_t half = coords.size() / 2;
  const std::vector<uint64_t> first(coords.begin(), coords.begin() + half);
  const std::vector<uint64_t> second(coords.begin() + half, coords.end());

  HierarchicalGrid target(16, 2, 1.0, Config(2));
  Rng enc_a(1);
  target.EncodePoints(first, enc_a);
  auto shard = target.CloneEmptyBase();
  Rng enc_b(2);
  shard->EncodePoints(second, enc_b);

  HierarchicalGrid reference(16, 2, 1.0, Config(2));
  Rng ref_a(1), ref_b(2);
  reference.EncodePoints(first, ref_a);
  reference.EncodePoints(second, ref_b);

  const uint64_t alloc_target = target.record_allocation_count();
  const auto* shard_grid = dynamic_cast<const HierarchicalGrid*>(shard.get());
  ASSERT_NE(shard_grid, nullptr);
  const uint64_t alloc_shard = shard_grid->record_allocation_count();
  target.MergeFromBase(*shard);
  // Adoption moves the shard's blocks (and their allocation tally) across;
  // the merge itself allocates nothing.
  EXPECT_EQ(target.record_allocation_count(), alloc_target + alloc_shard);
  EXPECT_EQ(target.user_count(), reference.user_count());

  Rng fin_a(9), fin_b(9);
  target.Finalize(fin_a);
  reference.Finalize(fin_b);
  const AxisInterval boxes[][2] = {
      {{4, 11}, {4, 11}}, {{0, 0}, {15, 15}}, {{2, 13}, {7, 8}}};
  for (const auto& box : boxes) {
    RangeEstimate merged = target.BoxQueryWithUncertainty(box);
    RangeEstimate ref = reference.BoxQueryWithUncertainty(box);
    EXPECT_EQ(merged.value, ref.value);
    EXPECT_EQ(merged.stddev, ref.stddev);
  }
}

TEST(HierarchicalGrid, RecordColumnsRetainBlocksAcrossFinalize) {
  // The arena contract at the grid level: ingest ramps the chunk schedule
  // once, and Finalize consumes the records while RETAINING the blocks —
  // no allocation happens at decode time.
  const std::vector<uint64_t> coords = TestPoints(4096, 16);
  HierarchicalGrid grid(16, 2, 1.0, Config(2));
  Rng rng(12);
  grid.EncodePoints(coords, rng);
  const uint64_t after_ingest = grid.record_allocation_count();
  EXPECT_GT(after_ingest, 0u);
  Rng fin(1);
  grid.Finalize(fin);
  EXPECT_EQ(grid.record_allocation_count(), after_ingest);
}

}  // namespace
}  // namespace ldp
