#include "core/multidim.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "common/stats.h"

namespace ldp {
namespace {

Hierarchical2DConfig Config(uint64_t fanout) {
  Hierarchical2DConfig config;
  config.fanout = fanout;
  config.oracle = OracleKind::kOueSimulated;
  return config;
}

TEST(Hierarchical2D, NameAndGeometry) {
  Hierarchical2D mech(16, 1.0, Config(2));
  EXPECT_EQ(mech.Name(), "HH2D2-OUE(sim)");
  EXPECT_EQ(mech.domain_per_dim(), 16u);
}

TEST(Hierarchical2D, NoiselessRecoversRectangles) {
  Rng rng(1);
  Hierarchical2D mech(16, 60.0, Config(2));
  const int n = 200000;
  // Half the users at (3, 12), half uniform over the x=8..15, y=0..7
  // quadrant corner cells.
  for (int i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      mech.EncodeUser(3, 12, rng);
    } else {
      mech.EncodeUser(8 + (i / 2) % 8, (i / 2) % 8, rng);
    }
  }
  mech.Finalize(rng);
  EXPECT_NEAR(mech.RangeQuery(3, 3, 12, 12), 0.5, 0.03);
  EXPECT_NEAR(mech.RangeQuery(8, 15, 0, 7), 0.5, 0.03);
  EXPECT_NEAR(mech.RangeQuery(0, 15, 0, 15), 1.0, 1e-9);
  EXPECT_NEAR(mech.RangeQuery(0, 2, 0, 11), 0.0, 0.03);
}

TEST(Hierarchical2D, FullPlaneIsExact) {
  Rng rng(2);
  Hierarchical2D mech(8, 0.5, Config(2));
  for (int i = 0; i < 500; ++i) {
    mech.EncodeUser(i % 8, (i * 3) % 8, rng);
  }
  mech.Finalize(rng);
  // The (root, root) pair is known exactly.
  EXPECT_DOUBLE_EQ(mech.RangeQuery(0, 7, 0, 7), 1.0);
}

TEST(Hierarchical2D, MarginalStripsUseMixedLevelPairs) {
  // A full-width strip in x exercises (level-0, ly) pairs.
  Rng rng(3);
  Hierarchical2D mech(16, 60.0, Config(4));
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    mech.EncodeUser(i % 16, i % 4, rng);  // y concentrated in [0, 3]
  }
  mech.Finalize(rng);
  EXPECT_NEAR(mech.RangeQuery(0, 15, 0, 3), 1.0, 0.03);
  EXPECT_NEAR(mech.RangeQuery(0, 15, 8, 15), 0.0, 0.03);
}

TEST(Hierarchical2D, RectangleEstimatesUnbiased) {
  const int trials = 100;
  const int n = 3000;
  RunningStat est;
  Rng rng(4);
  for (int t = 0; t < trials; ++t) {
    Hierarchical2D mech(16, 1.1, Config(2));
    for (int i = 0; i < n; ++i) {
      mech.EncodeUser(i % 16, (i / 16) % 16, rng);
    }
    mech.Finalize(rng);
    est.Add(mech.RangeQuery(4, 11, 4, 11));  // truth: (8/16)^2 = 0.25
  }
  EXPECT_NEAR(est.mean(), 0.25,
              5 * std::sqrt(est.sample_variance() / trials) + 0.02);
}

TEST(HierarchicalGrid, MatchesHierarchical2DSemantics) {
  // d = 2 grid answers must agree in distribution with Hierarchical2D;
  // with a shared RNG stream and identical tuple enumeration they agree
  // statistically (same estimator), so compare noiseless recoveries.
  Rng rng(6);
  HierarchicalGrid grid(16, 2, 60.0, Config(2));
  const int n = 150000;
  for (int i = 0; i < n; ++i) {
    grid.EncodeUser({static_cast<uint64_t>(i % 16),
                     static_cast<uint64_t>((i * 5) % 16)},
                    rng);
  }
  grid.Finalize(rng);
  EXPECT_NEAR(grid.RangeQuery({{0, 15}, {0, 15}}), 1.0, 1e-9);
  EXPECT_NEAR(grid.RangeQuery({{0, 7}, {0, 15}}), 0.5, 0.03);
  EXPECT_NEAR(grid.RangeQuery({{4, 11}, {4, 11}}), 0.25, 0.03);
}

TEST(HierarchicalGrid, ThreeDimensionalBoxes) {
  Rng rng(7);
  HierarchicalGrid grid(8, 3, 60.0, Config(2));
  const int n = 200000;
  // Mass at the corner cube [0,3]^3 and the opposite corner point.
  for (int i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      grid.EncodeUser({static_cast<uint64_t>(i % 4),
                       static_cast<uint64_t>((i / 2) % 4),
                       static_cast<uint64_t>((i / 8) % 4)},
                      rng);
    } else {
      grid.EncodeUser({7, 7, 7}, rng);
    }
  }
  grid.Finalize(rng);
  EXPECT_NEAR(grid.RangeQuery({{0, 3}, {0, 3}, {0, 3}}), 0.5, 0.05);
  EXPECT_NEAR(grid.RangeQuery({{7, 7}, {7, 7}, {7, 7}}), 0.5, 0.05);
  EXPECT_NEAR(grid.RangeQuery({{0, 7}, {0, 7}, {0, 7}}), 1.0, 1e-9);
  EXPECT_NEAR(grid.RangeQuery({{4, 6}, {0, 7}, {0, 7}}), 0.0, 0.05);
}

TEST(HierarchicalGrid, OneDimensionDegeneratesToHierarchy) {
  Rng rng(8);
  HierarchicalGrid grid(64, 1, 60.0, Config(4));
  for (int i = 0; i < 100000; ++i) {
    grid.EncodeUser({static_cast<uint64_t>(i % 32)}, rng);
  }
  grid.Finalize(rng);
  EXPECT_NEAR(grid.RangeQuery({{0, 31}}), 1.0, 0.02);
  EXPECT_NEAR(grid.RangeQuery({{8, 23}}), 0.5, 0.02);
}

TEST(HierarchicalGrid, UnbiasedBoxEstimates) {
  const int trials = 60;
  const int n = 4000;
  RunningStat est;
  Rng rng(9);
  for (int t = 0; t < trials; ++t) {
    HierarchicalGrid grid(8, 2, 1.1, Config(2));
    for (int i = 0; i < n; ++i) {
      grid.EncodeUser({static_cast<uint64_t>(i % 8),
                       static_cast<uint64_t>((i / 8) % 8)},
                      rng);
    }
    grid.Finalize(rng);
    est.Add(grid.RangeQuery({{2, 5}, {2, 5}}));  // truth (4/8)^2 = 0.25
  }
  EXPECT_NEAR(est.mean(), 0.25,
              5 * std::sqrt(est.sample_variance() / trials) + 0.02);
}

TEST(HierarchicalGrid, CellBudgetGuard) {
  // 3 dims over a large domain exceeds a small explicit budget.
  EXPECT_DEATH(HierarchicalGrid(1 << 10, 3, 1.0, Config(2),
                                /*max_total_cells=*/1 << 16),
               "budget");
}

TEST(HierarchicalGrid, GuardsAgainstMisuse) {
  Rng rng(10);
  HierarchicalGrid grid(8, 2, 1.0, Config(2));
  EXPECT_DEATH(grid.EncodeUser({1}, rng), "");            // wrong arity
  EXPECT_DEATH(grid.EncodeUser({1, 8}, rng), "");         // out of range
  grid.EncodeUser({1, 2}, rng);
  grid.Finalize(rng);
  EXPECT_DEATH(grid.RangeQuery({{0, 3}}), "");            // wrong arity
  EXPECT_DEATH(grid.RangeQuery({{3, 1}, {0, 1}}), "");    // inverted range
}

TEST(Hierarchical2D, GuardsAgainstMisuse) {
  Rng rng(5);
  Hierarchical2D mech(8, 1.0, Config(2));
  EXPECT_DEATH(mech.RangeQuery(0, 1, 0, 1), "Finalize");
  mech.EncodeUser(0, 0, rng);
  mech.Finalize(rng);
  EXPECT_DEATH(mech.EncodeUser(0, 0, rng), "Finalize");
  EXPECT_DEATH(mech.RangeQuery(0, 8, 0, 1), "");
}

}  // namespace
}  // namespace ldp
