// Golden wire captures: byte-exact pins of both wire versions.
//
// The v1 arrays below are captures of the seed's serializer (PR 0-2
// era); they must decode through the legacy path byte-identically
// forever — a change here is a wire break for every deployed client.
// The v2 arrays pin the envelope layout documented in envelope.h so a
// refactor cannot silently shift a field.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/ahead.h"
#include "obs/stats_wire.h"
#include "protocol/ahead_protocol.h"
#include "protocol/envelope.h"
#include "protocol/flat_protocol.h"
#include "protocol/haar_protocol.h"
#include "protocol/multidim_protocol.h"
#include "protocol/oracle_wire.h"
#include "protocol/tree_protocol.h"
#include "service/state_wire.h"
#include "service/stream_wire.h"

namespace ldp {
namespace {

using protocol::kWireVersionV1;
using protocol::MechanismTag;
using protocol::ParseError;

// --- v1 captures (legacy, unframed) --------------------------------------

TEST(WireGolden, V1FlatCaptureDecodesByteIdentically) {
  // FlatHRR v1: [tag 0x01][index u64 LE][sign u8];
  // index = 0x0123456789ABCDEF, sign = +1.
  const std::vector<uint8_t> capture = {0x01, 0xEF, 0xCD, 0xAB, 0x89,
                                        0x67, 0x45, 0x23, 0x01, 0x01};
  HrrReport report;
  ASSERT_EQ(protocol::ParseHrrReportDetailed(capture, &report),
            ParseError::kOk);
  EXPECT_EQ(report.coefficient_index, 0x0123456789ABCDEFULL);
  EXPECT_EQ(report.sign, +1);
  EXPECT_EQ(protocol::SerializeHrrReport(report, kWireVersionV1), capture);
}

TEST(WireGolden, V1HaarCaptureDecodesByteIdentically) {
  // HaarHRR v1: [tag 0x02][level u8][index u64 LE][sign u8];
  // level = 7, index = 42, sign = -1.
  const std::vector<uint8_t> capture = {0x02, 0x07, 0x2A, 0x00, 0x00, 0x00,
                                        0x00, 0x00, 0x00, 0x00, 0x00};
  protocol::HaarHrrReport report;
  ASSERT_EQ(protocol::ParseHaarHrrReportDetailed(capture, &report),
            ParseError::kOk);
  EXPECT_EQ(report.level, 7u);
  EXPECT_EQ(report.inner.coefficient_index, 42u);
  EXPECT_EQ(report.inner.sign, -1);
  EXPECT_EQ(protocol::SerializeHaarHrrReport(report, kWireVersionV1),
            capture);
}

TEST(WireGolden, V1TreeCaptureDecodesByteIdentically) {
  // TreeHRR v1: [tag 0x03][level u8][index u64 LE][sign u8];
  // level = 3, index = 0x04D2 (= 1234), sign = +1.
  const std::vector<uint8_t> capture = {0x03, 0x03, 0xD2, 0x04, 0x00, 0x00,
                                        0x00, 0x00, 0x00, 0x00, 0x01};
  protocol::TreeHrrReport report;
  ASSERT_EQ(protocol::ParseTreeHrrReportDetailed(capture, &report),
            ParseError::kOk);
  EXPECT_EQ(report.level, 3u);
  EXPECT_EQ(report.inner.coefficient_index, 1234u);
  EXPECT_EQ(report.inner.sign, +1);
  EXPECT_EQ(protocol::SerializeTreeHrrReport(report, kWireVersionV1),
            capture);
}

// --- v2 layout pins (framed) ---------------------------------------------

TEST(WireGolden, V2FlatLayoutIsPinned) {
  // "LR" | version 2 | tag 0x01 | payload_len 9 | index | sign(-1 -> 0).
  const std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x02, 0x01, 0x09, 0x00, 0x00, 0x00,
      0xEF, 0xCD, 0xAB, 0x89, 0x67, 0x45, 0x23, 0x01, 0x00};
  HrrReport report{0x0123456789ABCDEFULL, -1};
  EXPECT_EQ(protocol::SerializeHrrReport(report), expected);
  HrrReport back;
  ASSERT_EQ(protocol::ParseHrrReportDetailed(expected, &back),
            ParseError::kOk);
  EXPECT_EQ(back.coefficient_index, report.coefficient_index);
  EXPECT_EQ(back.sign, -1);
}

TEST(WireGolden, V2TreeLayoutIsPinned) {
  // "LR" | version 2 | tag 0x03 | payload_len 10 | level | index | sign.
  const std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x02, 0x03, 0x0A, 0x00, 0x00, 0x00,
      0x05, 0xD2, 0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01};
  protocol::TreeHrrReport report;
  report.level = 5;
  report.inner = {1234, +1};
  EXPECT_EQ(protocol::SerializeTreeHrrReport(report), expected);
}

TEST(WireGolden, V2GrrLayoutIsPinned) {
  // Value 300 -> varint AC 02; payload_len 2.
  const std::vector<uint8_t> expected = {0x4C, 0x52, 0x02, 0x04, 0x02,
                                         0x00, 0x00, 0x00, 0xAC, 0x02};
  EXPECT_EQ(protocol::SerializeGrrReport({300}), expected);
  protocol::GrrWireReport back;
  ASSERT_EQ(protocol::ParseGrrReport(expected, &back), ParseError::kOk);
  EXPECT_EQ(back.value, 300u);
}

TEST(WireGolden, V2OlhLayoutIsPinned) {
  // seed u64 LE then cell varint; payload_len 9.
  const std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x02, 0x07, 0x09, 0x00, 0x00, 0x00,
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, 0x05};
  protocol::OlhWireReport report{0x1122334455667788ULL, 5};
  EXPECT_EQ(protocol::SerializeOlhReport(report), expected);
}

TEST(WireGolden, V2OueLayoutIsPinned) {
  // 5-bit vector 0b10011 -> num_bits varint 05, packed len u32 = 1,
  // packed byte 0x13; payload_len 6.
  const std::vector<uint8_t> expected = {0x4C, 0x52, 0x02, 0x05,
                                         0x06, 0x00, 0x00, 0x00,
                                         0x05, 0x01, 0x00, 0x00, 0x00, 0x13};
  protocol::UnaryWireReport report;
  report.num_bits = 5;
  report.packed = {0x13};
  EXPECT_EQ(protocol::SerializeUnaryReport(MechanismTag::kOue, report),
            expected);
  protocol::UnaryWireReport back;
  ASSERT_EQ(protocol::ParseUnaryReport(MechanismTag::kOue, expected, &back),
            ParseError::kOk);
  EXPECT_TRUE(back.Bit(0));
  EXPECT_FALSE(back.Bit(2));
  EXPECT_TRUE(back.Bit(4));
}

TEST(WireGolden, V2BatchLayoutIsPinned) {
  // FlatHrrBatch of two reports: payload = count varint 02 then two
  // 9-byte items; payload_len 19.
  const std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x02, 0x81, 0x13, 0x00, 0x00, 0x00,
      0x02,
      0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01,
      0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  std::vector<HrrReport> reports = {{1, +1}, {2, -1}};
  EXPECT_EQ(protocol::SerializeHrrReportBatch(reports), expected);
  std::vector<HrrReport> back;
  ASSERT_EQ(protocol::ParseHrrReportBatch(expected, &back), ParseError::kOk);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].coefficient_index, 1u);
  EXPECT_EQ(back[1].sign, -1);
}

TEST(WireGolden, V2SueLayoutIsPinned) {
  // Same unary payload shape as OUE under tag 0x06: 5-bit vector 0b01010
  // -> num_bits varint 05, packed len u32 = 1, packed byte 0x0A.
  const std::vector<uint8_t> expected = {0x4C, 0x52, 0x02, 0x06,
                                         0x06, 0x00, 0x00, 0x00,
                                         0x05, 0x01, 0x00, 0x00, 0x00, 0x0A};
  protocol::UnaryWireReport report;
  report.num_bits = 5;
  report.packed = {0x0A};
  EXPECT_EQ(protocol::SerializeUnaryReport(MechanismTag::kSue, report),
            expected);
  protocol::UnaryWireReport back;
  ASSERT_EQ(protocol::ParseUnaryReport(MechanismTag::kSue, expected, &back),
            ParseError::kOk);
  EXPECT_FALSE(back.Bit(0));
  EXPECT_TRUE(back.Bit(1));
  EXPECT_TRUE(back.Bit(3));
}

TEST(WireGolden, V2AheadReportLayoutIsPinned) {
  // "LR" | version 2 | tag 0x08 | payload_len 10 | phase | level | node.
  const std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x02, 0x08, 0x0A, 0x00, 0x00, 0x00,
      0x02, 0x03, 0xD2, 0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  protocol::AheadWireReport report{2, 3, 1234};
  EXPECT_EQ(protocol::SerializeAheadReport(report), expected);
  protocol::AheadWireReport back;
  ASSERT_EQ(protocol::ParseAheadReportDetailed(expected, &back),
            ParseError::kOk);
  EXPECT_EQ(back, report);
}

TEST(WireGolden, V2AheadBatchLayoutIsPinned) {
  // AheadReportBatch of a phase-1 and a phase-2 report: payload = count
  // varint 02 then two 10-byte items; payload_len 21.
  const std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x02, 0x88, 0x15, 0x00, 0x00, 0x00,
      0x02,
      0x01, 0x02, 0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x02, 0x01, 0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  std::vector<protocol::AheadWireReport> reports = {{1, 2, 7}, {2, 1, 5}};
  EXPECT_EQ(protocol::SerializeAheadReportBatch(reports), expected);
  std::vector<protocol::AheadWireReport> back;
  ASSERT_EQ(protocol::ParseAheadReportBatch(expected, &back),
            ParseError::kOk);
  EXPECT_EQ(back, reports);
}

TEST(WireGolden, V2AheadTreeLayoutIsPinned) {
  // Tree over domain 64, fanout 4, with only the root split: payload =
  // domain varint 0x40, fanout varint 0x04, count varint 0x01, one
  // (depth u8 = 0, index varint = 0) entry; tag 0x09, payload_len 5.
  const std::vector<uint8_t> expected = {0x4C, 0x52, 0x02, 0x09,
                                         0x05, 0x00, 0x00, 0x00,
                                         0x40, 0x04, 0x01, 0x00, 0x00};
  TreeShape shape(64, 4);
  AdaptiveTree tree =
      AdaptiveTree::Grow(shape, 0, [](const TreeNode&) { return false; });
  EXPECT_EQ(protocol::SerializeAheadTree(64, 4, tree), expected);
  uint64_t domain = 0;
  uint64_t fanout = 0;
  std::optional<AdaptiveTree> back;
  ASSERT_EQ(protocol::ParseAheadTree(expected, &domain, &fanout, &back),
            ParseError::kOk);
  EXPECT_EQ(domain, 64u);
  EXPECT_EQ(fanout, 4u);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_levels(), 1u);
  EXPECT_EQ(back->FrontierSize(1), 4u);
}

// A v1 capture can never be mistaken for v2 (and vice versa): the v1
// tag range 0x01..0x03 differs from the magic byte 0x4C.
TEST(WireGolden, VersionsAreUnambiguousOnTheWire) {
  const std::vector<uint8_t> v1 = {0x01, 0xEF, 0xCD, 0xAB, 0x89,
                                   0x67, 0x45, 0x23, 0x01, 0x01};
  EXPECT_FALSE(protocol::LooksLikeEnvelope(v1));
  HrrReport report{7, +1};
  EXPECT_TRUE(protocol::LooksLikeEnvelope(protocol::SerializeHrrReport(report)));
}

// --- Stream framing + query plane pins (PR 5) -----------------------------

TEST(WireGolden, V2StreamBeginLayoutIsPinned) {
  // "LR" | v2 | tag 0x10 | payload_len 16 | session u64 | server u64.
  const std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x02, 0x10, 0x10, 0x00, 0x00, 0x00,
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,
      0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  service::StreamBegin msg{0x0102030405060708ULL, 1};
  EXPECT_EQ(service::SerializeStreamBegin(msg), expected);
  service::StreamBegin back;
  ASSERT_EQ(service::ParseStreamBegin(expected, &back), ParseError::kOk);
  EXPECT_EQ(back, msg);
}

TEST(WireGolden, V2StreamChunkLayoutIsPinned) {
  // "LR" | v2 | tag 0x11 | payload_len 11 | session u64 | seq varint |
  // nested bytes (here an opaque 2-byte stand-in).
  const std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x02, 0x11, 0x0B, 0x00, 0x00, 0x00,
      0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x02, 0xAA, 0xBB};
  const std::vector<uint8_t> nested = {0xAA, 0xBB};
  EXPECT_EQ(service::SerializeStreamChunk(7, 2, nested), expected);
  service::StreamChunk back;
  ASSERT_EQ(service::ParseStreamChunk(expected, &back), ParseError::kOk);
  EXPECT_EQ(back.session_id, 7u);
  EXPECT_EQ(back.sequence, 2u);
  EXPECT_EQ(std::vector<uint8_t>(back.payload.begin(), back.payload.end()),
            nested);
}

TEST(WireGolden, V2StreamEndLayoutIsPinned) {
  // "LR" | v2 | tag 0x12 | payload_len 10 | session u64 |
  // chunk_count varint | flags u8 (bit0 = finalize).
  const std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x02, 0x12, 0x0A, 0x00, 0x00, 0x00,
      0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x03, 0x01};
  service::StreamEnd msg{7, 3, service::kStreamFlagFinalize};
  EXPECT_EQ(service::SerializeStreamEnd(msg), expected);
  service::StreamEnd back;
  ASSERT_EQ(service::ParseStreamEnd(expected, &back), ParseError::kOk);
  EXPECT_EQ(back, msg);
}

TEST(WireGolden, V2RangeQueryRequestLayoutIsPinned) {
  // "LR" | v2 | tag 0x20 | payload_len 22 | query u64 | server u64 |
  // count varint | count x (lo varint, hi varint); 300 = 0xAC 0x02.
  const std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x02, 0x20, 0x16, 0x00, 0x00, 0x00,
      0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x02, 0x02, 0x05, 0x00, 0xAC, 0x02};
  service::RangeQueryRequest msg;
  msg.query_id = 9;
  msg.server_id = 0;
  msg.intervals = {{2, 5}, {0, 300}};
  EXPECT_EQ(service::SerializeRangeQueryRequest(msg), expected);
  service::RangeQueryRequest back;
  ASSERT_EQ(service::ParseRangeQueryRequest(expected, &back),
            ParseError::kOk);
  EXPECT_EQ(back, msg);
}

TEST(WireGolden, V2RangeQueryResponseLayoutIsPinned) {
  // "LR" | v2 | tag 0x21 | payload_len 26 | query u64 | status u8 |
  // count varint | count x (estimate f64 LE, variance f64 LE);
  // 0.5 = 0x3FE0000000000000, 0.25 = 0x3FD0000000000000.
  const std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x02, 0x21, 0x1A, 0x00, 0x00, 0x00,
      0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x01,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xE0, 0x3F,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xD0, 0x3F};
  service::RangeQueryResponse msg;
  msg.query_id = 9;
  msg.status = service::QueryStatus::kOk;
  msg.estimates = {{0.5, 0.25}};
  EXPECT_EQ(service::SerializeRangeQueryResponse(msg), expected);
  service::RangeQueryResponse back;
  ASSERT_EQ(service::ParseRangeQueryResponse(expected, &back),
            ParseError::kOk);
  EXPECT_EQ(back, msg);
}

// --- Multidimensional wire pins (PR 6) -------------------------------------

TEST(WireGolden, V2MultiDimReportLayoutIsPinned) {
  // "LR" | v2 | tag 0x0A | payload_len 15 | dims u8 | dims x level u8 |
  // seed u64 LE | cell u32 LE.
  const std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x02, 0x0A, 0x0F, 0x00, 0x00, 0x00,
      0x02, 0x03, 0x00,
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,
      0x05, 0x00, 0x00, 0x00};
  protocol::MultiDimReport report;
  report.levels = {3, 0};
  report.seed = 0x0102030405060708ULL;
  report.cell = 5;
  EXPECT_EQ(protocol::SerializeMultiDimReport(report), expected);
  protocol::MultiDimReport back;
  ASSERT_EQ(protocol::ParseMultiDimReport(expected, &back), ParseError::kOk);
  EXPECT_EQ(back, report);
}

TEST(WireGolden, V2MultiDimBatchLayoutIsPinned) {
  // "LR" | v2 | tag 0x8A | payload_len 30 | dims u8 | count varint |
  // count x (dims x level u8, seed u64 LE, cell u32 LE). dims is hoisted
  // to the batch header, so every item is a fixed dims + 12 bytes.
  const std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x02, 0x8A, 0x1E, 0x00, 0x00, 0x00,
      0x02, 0x02,
      0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x02, 0x00, 0x00, 0x00,
      0x00, 0x02, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x04, 0x00, 0x00, 0x00};
  std::vector<protocol::MultiDimReport> reports(2);
  reports[0].levels = {1, 0};
  reports[0].seed = 1;
  reports[0].cell = 2;
  reports[1].levels = {0, 2};
  reports[1].seed = 3;
  reports[1].cell = 4;
  EXPECT_EQ(protocol::SerializeMultiDimReportBatch(2, reports), expected);
  std::vector<protocol::MultiDimReport> back;
  ASSERT_EQ(protocol::ParseMultiDimReportBatch(expected, &back, nullptr),
            ParseError::kOk);
  EXPECT_EQ(back, reports);
}

TEST(WireGolden, V2MultiDimQueryRequestLayoutIsPinned) {
  // "LR" | v2 | tag 0x22 | payload_len 23 | query u64 | server u64 |
  // dims u8 | count varint | count x dims x (lo varint, hi varint);
  // 300 = 0xAC 0x02.
  const std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x02, 0x22, 0x17, 0x00, 0x00, 0x00,
      0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x02, 0x01, 0x02, 0x05, 0x00, 0xAC, 0x02};
  service::MultiDimQueryRequest msg;
  msg.query_id = 9;
  msg.server_id = 1;
  msg.dimensions = 2;
  service::QueryBox box;
  box.axes = {{2, 5}, {0, 300}};
  msg.boxes = {box};
  EXPECT_EQ(service::SerializeMultiDimQueryRequest(msg), expected);
  service::MultiDimQueryRequest back;
  ASSERT_EQ(service::ParseMultiDimQueryRequest(expected, &back),
            ParseError::kOk);
  EXPECT_EQ(back, msg);
}

TEST(WireGolden, V2MultiDimQueryResponseLayoutIsPinned) {
  // "LR" | v2 | tag 0x23 | payload_len 26 | query u64 | status u8 |
  // count varint | count x (estimate f64 LE, variance f64 LE) — the same
  // payload shape as kRangeQueryResponse under its own tag.
  const std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x02, 0x23, 0x1A, 0x00, 0x00, 0x00,
      0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x01,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xE0, 0x3F,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xD0, 0x3F};
  service::MultiDimQueryResponse msg;
  msg.query_id = 9;
  msg.status = service::QueryStatus::kOk;
  msg.estimates = {{0.5, 0.25}};
  EXPECT_EQ(service::SerializeMultiDimQueryResponse(msg), expected);
  service::MultiDimQueryResponse back;
  ASSERT_EQ(service::ParseMultiDimQueryResponse(expected, &back),
            ParseError::kOk);
  EXPECT_EQ(back, msg);
}

// --- Stats plane wire pins (PR 9) ------------------------------------------

TEST(WireGolden, V2StatsQueryLayoutIsPinned) {
  // "LR" | v2 | tag 0x24 | payload_len 9 | query_id u64 LE | flags u8
  // (bit0 = include process-global registry).
  const std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x02, 0x24, 0x09, 0x00, 0x00, 0x00,
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,
      0x01};
  obs::StatsQuery msg{0x0102030405060708ULL, obs::kStatsFlagIncludeGlobal};
  EXPECT_EQ(obs::SerializeStatsQuery(msg), expected);
  obs::StatsQuery back;
  ASSERT_EQ(obs::ParseStatsQuery(expected, &back), ParseError::kOk);
  EXPECT_EQ(back, msg);
}

TEST(WireGolden, V2StatsResponseLayoutIsPinned) {
  // "LR" | v2 | tag 0x25 | payload_len 29 | query_id u64 | status u8 |
  // format_version u8 | counter_count varint | (name len+bytes, value
  // varint) | gauge_count | (name, zigzag varint) | histogram_count |
  // (name, sum, min, max, occupied-bucket count, (index u8, count
  // varint)...). One counter a=5, one gauge g=-2 (zigzag 3), one
  // histogram h with values {1, 4}: buckets 1 and 3, sum 5. The
  // histogram's total count is derived, never serialized.
  const std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x02, 0x25, 0x1D, 0x00, 0x00, 0x00,
      0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // query_id = 9
      0x00, 0x01,                                      // status, version
      0x01, 0x01, 0x61, 0x05,                          // counters: a=5
      0x01, 0x01, 0x67, 0x03,                          // gauges: g=-2
      0x01, 0x01, 0x68,                                // histograms: "h"
      0x05, 0x01, 0x04,                                // sum, min, max
      0x02, 0x01, 0x01, 0x03, 0x01};                   // buckets 1+3, x1
  obs::StatsResponse msg;
  msg.query_id = 9;
  msg.metrics.counters = {{"a", 5}};
  msg.metrics.gauges = {{"g", -2}};
  obs::HistogramSnapshot h;
  h.count = 2;
  h.sum = 5;
  h.min = 1;
  h.max = 4;
  h.buckets[obs::HistogramBucketIndex(1)] = 1;
  h.buckets[obs::HistogramBucketIndex(4)] = 1;
  msg.metrics.histograms = {{"h", h}};
  EXPECT_EQ(obs::SerializeStatsResponse(msg), expected);
  obs::StatsResponse back;
  ASSERT_EQ(obs::ParseStatsResponse(expected, &back), ParseError::kOk);
  EXPECT_EQ(back, msg);
}

// --- Distributed fan-in state plane pins (PR 10) ---------------------------

TEST(WireGolden, V2StateSnapshotLayoutIsPinned) {
  // "LR" | v2 | tag 0x30 | payload_len 17 | kind u8 | dims u8 |
  // domain varint | fanout varint | eps f64 LE | accepted varint |
  // rejected varint | state body (opaque 2-byte stand-in here).
  // Flat kind over domain 64, eps 1.0 (0x3FF0000000000000), 300
  // accepted (varint AC 02), 1 rejected.
  const std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x02, 0x30, 0x11, 0x00, 0x00, 0x00,
      0x01, 0x01, 0x40, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF0, 0x3F,
      0xAC, 0x02, 0x01,
      0xAA, 0xBB};
  service::StateSnapshotHeader header;
  header.kind = service::StateKind::kFlat;
  header.dimensions = 1;
  header.domain = 64;
  header.fanout = 0;
  header.eps = 1.0;
  header.accepted = 300;
  header.rejected = 1;
  const std::vector<uint8_t> body = {0xAA, 0xBB};
  EXPECT_EQ(service::SerializeStateSnapshot(header, body), expected);
  service::StateSnapshotHeader back;
  ASSERT_EQ(service::ParseStateSnapshot(expected, &back), ParseError::kOk);
  EXPECT_EQ(back.kind, header.kind);
  EXPECT_EQ(back.dimensions, header.dimensions);
  EXPECT_EQ(back.domain, header.domain);
  EXPECT_EQ(back.fanout, header.fanout);
  EXPECT_EQ(back.eps, header.eps);
  EXPECT_EQ(back.accepted, header.accepted);
  EXPECT_EQ(back.rejected, header.rejected);
  EXPECT_EQ(std::vector<uint8_t>(back.body.begin(), back.body.end()), body);
}

TEST(WireGolden, V2StateMergeLayoutIsPinned) {
  // "LR" | v2 | tag 0x31 | payload_len 41 | merge_id u64 LE |
  // server_id u64 LE | shard_index varint | shard_count varint |
  // flags u8 (bit0 = finalize) | nested framed kStateSnapshot message
  // (here the smallest valid one: flat, domain 2, eps 1.0, empty body).
  const std::vector<uint8_t> nested = {
      0x4C, 0x52, 0x02, 0x30, 0x0E, 0x00, 0x00, 0x00,
      0x01, 0x01, 0x02, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF0, 0x3F,
      0x00, 0x00};
  std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x02, 0x31, 0x29, 0x00, 0x00, 0x00,
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,
      0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x01, 0x02, 0x01};
  expected.insert(expected.end(), nested.begin(), nested.end());
  service::StateMergeRequest request;
  request.merge_id = 0x0102030405060708ULL;
  request.server_id = 1;
  request.shard_index = 1;
  request.shard_count = 2;
  request.flags = service::kMergeFlagFinalize;
  EXPECT_EQ(service::SerializeStateMerge(request, nested), expected);
  service::StateMergeRequest back;
  ASSERT_EQ(service::ParseStateMerge(expected, &back), ParseError::kOk);
  EXPECT_EQ(back.merge_id, request.merge_id);
  EXPECT_EQ(back.server_id, request.server_id);
  EXPECT_EQ(back.shard_index, request.shard_index);
  EXPECT_EQ(back.shard_count, request.shard_count);
  EXPECT_EQ(back.flags, request.flags);
  EXPECT_EQ(std::vector<uint8_t>(back.snapshot.begin(), back.snapshot.end()),
            nested);
}

TEST(WireGolden, V2StateMergeResponseLayoutIsPinned) {
  // "LR" | v2 | tag 0x32 | payload_len 10 | merge_id u64 LE |
  // status u8 (kWouldBlock = 10) | shards_received varint.
  const std::vector<uint8_t> expected = {
      0x4C, 0x52, 0x02, 0x32, 0x0A, 0x00, 0x00, 0x00,
      0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x0A, 0x03};
  service::StateMergeResponse msg;
  msg.merge_id = 9;
  msg.status = service::MergeStatus::kWouldBlock;
  msg.shards_received = 3;
  EXPECT_EQ(service::SerializeStateMergeResponse(msg), expected);
  service::StateMergeResponse back;
  ASSERT_EQ(service::ParseStateMergeResponse(expected, &back),
            ParseError::kOk);
  EXPECT_EQ(back, msg);
}

}  // namespace
}  // namespace ldp
