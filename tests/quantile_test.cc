#include "core/quantile.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "core/flat.h"
#include "core/haar_hrr.h"
#include "core/hierarchical.h"

namespace ldp {
namespace {

TEST(TrueQuantile, StepCdf) {
  // CDF of a point mass at 2 over domain 5.
  std::vector<double> cdf = {0.0, 0.0, 1.0, 1.0, 1.0};
  EXPECT_EQ(TrueQuantile(cdf, 0.0), 0u);
  EXPECT_EQ(TrueQuantile(cdf, 0.1), 2u);
  EXPECT_EQ(TrueQuantile(cdf, 0.5), 2u);
  EXPECT_EQ(TrueQuantile(cdf, 1.0), 2u);
}

TEST(TrueQuantile, UniformCdf) {
  std::vector<double> cdf(10);
  for (int i = 0; i < 10; ++i) {
    cdf[i] = (i + 1) / 10.0;
  }
  EXPECT_EQ(TrueQuantile(cdf, 0.05), 0u);
  EXPECT_EQ(TrueQuantile(cdf, 0.5), 4u);
  EXPECT_EQ(TrueQuantile(cdf, 0.95), 9u);
}

TEST(TrueQuantile, PhiAboveMassReturnsLastItem) {
  std::vector<double> cdf = {0.2, 0.4, 0.6};  // un-normalized tail
  EXPECT_EQ(TrueQuantile(cdf, 0.9), 2u);
}

TEST(QuantileSearch, NoiselessMechanismFindsExactDeciles) {
  Rng rng(1);
  HierarchicalConfig config;
  config.fanout = 2;
  config.oracle = OracleKind::kOueSimulated;
  config.consistency = true;
  HierarchicalMechanism mech(64, 60.0, config);
  // Uniform data over [0, 64).
  const int n = 64000;
  std::vector<double> cdf(64);
  for (int z = 0; z < 64; ++z) {
    cdf[z] = (z + 1) / 64.0;
  }
  for (int i = 0; i < n; ++i) {
    mech.EncodeUser(i % 64, rng);
  }
  mech.Finalize(rng);
  for (double phi : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    QuantileEvaluation eval = EvaluateQuantile(mech, cdf, phi);
    EXPECT_LE(eval.value_error, 1.0) << "phi=" << phi;
    EXPECT_LE(eval.quantile_error, 0.03) << "phi=" << phi;
  }
}

TEST(QuantileSearch, NoisyQuantileErrorStaysSmall) {
  // Paper Figure 9's property: even when the value error is nonzero, the
  // quantile error (distributional position) stays small.
  Rng rng(2);
  HaarHrrMechanism mech(256, 1.1);
  const int n = 200000;
  std::vector<uint64_t> counts(256, 0);
  for (int i = 0; i < n; ++i) {
    uint64_t z = (i * 37) % 256;
    ++counts[z];
    mech.EncodeUser(z, rng);
  }
  mech.Finalize(rng);
  std::vector<double> cdf(256);
  double acc = 0.0;
  for (int z = 0; z < 256; ++z) {
    acc += static_cast<double>(counts[z]) / n;
    cdf[z] = acc;
  }
  for (double phi = 0.1; phi < 0.95; phi += 0.1) {
    QuantileEvaluation eval = EvaluateQuantile(mech, cdf, phi);
    EXPECT_LE(eval.quantile_error, 0.05) << "phi=" << phi;
  }
}

TEST(QuantileSearch, SkewedDataQuantiles) {
  // 90% of the mass at item 3, the rest uniform above: the median must be
  // 3 and the 0.95-quantile in the upper region.
  Rng rng(3);
  FlatMechanism mech(32, 60.0, OracleKind::kOueSimulated);
  const int n = 50000;
  std::vector<uint64_t> counts(32, 0);
  for (int i = 0; i < n; ++i) {
    uint64_t z = (i % 10 != 0) ? 3 : 16 + (i / 10) % 16;
    ++counts[z];
    mech.EncodeUser(z, rng);
  }
  mech.Finalize(rng);
  std::vector<double> cdf(32);
  double acc = 0.0;
  for (int z = 0; z < 32; ++z) {
    acc += static_cast<double>(counts[z]) / n;
    cdf[z] = acc;
  }
  EXPECT_EQ(mech.QuantileQuery(0.5), 3u);
  EXPECT_GE(mech.QuantileQuery(0.95), 16u);
}

TEST(QuantileSearch, BoundaryPhis) {
  Rng rng(4);
  FlatMechanism mech(16, 60.0, OracleKind::kOueSimulated);
  for (int i = 0; i < 16000; ++i) {
    mech.EncodeUser(i % 16, rng);
  }
  mech.Finalize(rng);
  EXPECT_EQ(mech.QuantileQuery(0.0), 0u);
  EXPECT_LE(mech.QuantileQuery(1.0), 15u);
}

}  // namespace
}  // namespace ldp
