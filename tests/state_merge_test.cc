// The distributed fan-in plane: wire-serialized aggregate-state
// snapshots, the merge algebra (associativity, canonical round trips),
// and the service merge plane — N-shard fan-in must be bit-identical to
// single-process ingestion of the union, for every mechanism family,
// push order, and worker count. Plus the typed MergeStatus error matrix.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "protocol/ahead_protocol.h"
#include "protocol/envelope.h"
#include "protocol/flat_protocol.h"
#include "protocol/haar_protocol.h"
#include "protocol/multidim_protocol.h"
#include "protocol/tree_protocol.h"
#include "service/aggregator_service.h"
#include "service/server_factory.h"
#include "service/state_wire.h"
#include "service/stream_wire.h"

namespace ldp {
namespace {

using protocol::ParseError;
using service::AggregatorServer;
using service::AggregatorService;
using service::MakeAggregatorServer;
using service::MergeStatus;
using service::QueryInterval;
using service::QueryStatus;
using service::RangeQueryRequest;
using service::RangeQueryResponse;
using service::ServerKind;
using service::ServerKindName;
using service::ServerSpec;
using service::StateMergeRequest;
using service::StateMergeResponse;

constexpr uint64_t kDomain = 64;
constexpr double kEps = 1.0;
constexpr int kShards = 3;

std::vector<uint64_t> TestValues(uint64_t n, uint64_t domain) {
  std::vector<uint64_t> values;
  values.reserve(n);
  Rng rng(0xFA111);
  for (uint64_t i = 0; i < n; ++i) {
    values.push_back(rng.Bernoulli(0.6) ? rng.UniformInt(domain / 8)
                                        : rng.UniformInt(domain));
  }
  return values;
}

// One shard's batch message for the single-session mechanisms. The same
// bytes feed both shard s and the single-process reference, so their
// union must agree bit for bit.
std::vector<uint8_t> EncodeShardBatch(const ServerSpec& spec,
                                      std::span<const uint64_t> values,
                                      uint64_t seed) {
  Rng rng(seed);
  switch (spec.kind) {
    case ServerKind::kFlat: {
      protocol::FlatHrrClient client(spec.domain, spec.eps);
      return client.EncodeUsersSerialized(values, rng);
    }
    case ServerKind::kHaar: {
      protocol::HaarHrrClient client(spec.domain, spec.eps);
      return client.EncodeUsersSerialized(values, rng);
    }
    case ServerKind::kTree: {
      protocol::TreeHrrClient client(spec.domain, spec.fanout, spec.eps);
      return client.EncodeUsersSerialized(values, rng);
    }
    case ServerKind::kGrid: {
      // `values` doubles as row-major coordinates (dimensions per point).
      protocol::MultiDimClient client(spec.domain, spec.dimensions, spec.eps,
                                      spec.fanout);
      return client.EncodeUsersSerialized(values, rng);
    }
    case ServerKind::kAhead:
      ADD_FAILURE() << "AHEAD uses the two-phase driver";
      return {};
  }
  return {};
}

// The single-session specs the matrix tests iterate: the three 1-D
// mechanisms plus the grid at two and three axes. AHEAD gets dedicated
// two-phase tests.
std::vector<ServerSpec> MatrixSpecs() {
  std::vector<ServerSpec> specs;
  for (ServerKind kind :
       {ServerKind::kFlat, ServerKind::kHaar, ServerKind::kTree}) {
    ServerSpec spec;
    spec.kind = kind;
    spec.domain = kDomain;
    spec.eps = kEps;
    specs.push_back(spec);
  }
  for (uint32_t dims : {2u, 3u}) {
    ServerSpec spec;
    spec.kind = ServerKind::kGrid;
    spec.domain = 16;
    spec.eps = kEps;
    spec.fanout = 2;
    spec.dimensions = dims;
    specs.push_back(spec);
  }
  return specs;
}

// Per-shard share of the workload for `spec`: kShards batch messages
// with globally distinct encode seeds, so shard ingestion partitions
// exactly what the reference ingests whole.
std::vector<std::vector<uint8_t>> ShardBatches(const ServerSpec& spec) {
  const uint64_t points = spec.kind == ServerKind::kGrid ? 300 : 900;
  const uint64_t stride =
      spec.kind == ServerKind::kGrid ? spec.dimensions : 1;
  std::vector<uint64_t> values = TestValues(points * stride, spec.domain);
  std::vector<std::vector<uint8_t>> batches;
  const uint64_t per_shard = points / kShards;
  for (int s = 0; s < kShards; ++s) {
    std::span<const uint64_t> slice(values.data() + s * per_shard * stride,
                                    per_shard * stride);
    batches.push_back(EncodeShardBatch(spec, slice, /*seed=*/0x51AB + s));
  }
  return batches;
}

std::unique_ptr<AggregatorServer> IngestedServer(
    const ServerSpec& spec, std::span<const std::vector<uint8_t>> batches) {
  std::unique_ptr<AggregatorServer> server = MakeAggregatorServer(spec);
  for (const std::vector<uint8_t>& batch : batches) {
    EXPECT_EQ(server->AbsorbBatchSerialized(batch), ParseError::kOk);
  }
  return server;
}

// --- The merge algebra, via the public serialized-state API ------------

TEST(StateSnapshot, RestoredStateReserializesCanonically) {
  for (const ServerSpec& spec : MatrixSpecs()) {
    SCOPED_TRACE(ServerKindName(spec.kind) + "/d" +
                 std::to_string(spec.kind == ServerKind::kGrid
                                    ? spec.dimensions
                                    : 1));
    std::vector<std::vector<uint8_t>> batches = ShardBatches(spec);
    std::unique_ptr<AggregatorServer> source = IngestedServer(spec, batches);
    std::vector<uint8_t> snapshot = source->SerializeState();

    std::unique_ptr<AggregatorServer> restored = MakeAggregatorServer(spec);
    ASSERT_EQ(restored->MergeSerializedState(snapshot), MergeStatus::kOk);
    // Canonical: the restored aggregate re-serializes to the same bytes,
    // and carries the same ingestion accounting.
    EXPECT_EQ(restored->SerializeState(), snapshot);
    EXPECT_EQ(restored->stats(), source->stats());

    // And the restored state answers queries identically.
    source->Finalize();
    restored->Finalize();
    EXPECT_EQ(restored->EstimateFrequencies(), source->EstimateFrequencies());
  }
}

TEST(StateSnapshot, MergeIsAssociativeAndMatchesSingleProcess) {
  for (const ServerSpec& spec : MatrixSpecs()) {
    SCOPED_TRACE(ServerKindName(spec.kind) + "/d" +
                 std::to_string(spec.kind == ServerKind::kGrid
                                    ? spec.dimensions
                                    : 1));
    std::vector<std::vector<uint8_t>> batches = ShardBatches(spec);
    // Reference: every shard's bytes into one server, in shard order.
    std::unique_ptr<AggregatorServer> reference =
        IngestedServer(spec, batches);
    const std::vector<uint8_t> expected = reference->SerializeState();

    std::vector<std::vector<uint8_t>> snaps;
    for (int s = 0; s < kShards; ++s) {
      snaps.push_back(
          IngestedServer(spec, {&batches[s], 1})->SerializeState());
    }

    // (A . B) . C — with the intermediate re-serialized and restored, so
    // the associativity claim covers the wire form, not just in-memory
    // objects.
    std::unique_ptr<AggregatorServer> left = MakeAggregatorServer(spec);
    ASSERT_EQ(left->MergeSerializedState(snaps[0]), MergeStatus::kOk);
    ASSERT_EQ(left->MergeSerializedState(snaps[1]), MergeStatus::kOk);
    std::vector<uint8_t> left_snapshot = left->SerializeState();
    std::unique_ptr<AggregatorServer> left_total = MakeAggregatorServer(spec);
    ASSERT_EQ(left_total->MergeSerializedState(left_snapshot),
              MergeStatus::kOk);
    ASSERT_EQ(left_total->MergeSerializedState(snaps[2]), MergeStatus::kOk);

    // A . (B . C)
    std::unique_ptr<AggregatorServer> right = MakeAggregatorServer(spec);
    ASSERT_EQ(right->MergeSerializedState(snaps[1]), MergeStatus::kOk);
    ASSERT_EQ(right->MergeSerializedState(snaps[2]), MergeStatus::kOk);
    std::vector<uint8_t> right_snapshot = right->SerializeState();
    std::unique_ptr<AggregatorServer> right_total =
        MakeAggregatorServer(spec);
    ASSERT_EQ(right_total->MergeSerializedState(snaps[0]), MergeStatus::kOk);
    ASSERT_EQ(right_total->MergeSerializedState(right_snapshot),
              MergeStatus::kOk);

    EXPECT_EQ(left_total->SerializeState(), expected);
    EXPECT_EQ(right_total->SerializeState(), expected);

    reference->Finalize();
    left_total->Finalize();
    EXPECT_EQ(left_total->EstimateFrequencies(),
              reference->EstimateFrequencies());
  }
}

// --- AHEAD: the distributed two-phase protocol -------------------------
//
//  shard s: phase-1 ingest -> snapshot push ---.
//                                              +-> coordinator merges,
//  shard s: InstallTree(tree) <--- broadcast <-+   builds the tree
//  shard s: phase-2 ingest -> FULL snapshot --> fresh query node merges
//                                               all shards, finalizes.
// The phase-1 coordinator is a throwaway: its merged state exists only
// to derive the tree, so nothing is double counted.
TEST(StateSnapshot, AheadDistributedTwoPhaseMatchesSingleProcess) {
  ServerSpec spec;
  spec.kind = ServerKind::kAhead;
  spec.domain = kDomain;
  spec.eps = kEps;
  std::vector<uint64_t> values = TestValues(900, kDomain);
  const size_t half = values.size() / 2;
  std::span<const uint64_t> phase1(values.data(), half);
  std::span<const uint64_t> phase2(values.data() + half,
                                   values.size() - half);
  protocol::AheadClient client(kDomain, spec.fanout, kEps);

  auto encode_phase1_batch = [&](std::span<const uint64_t> share,
                                 uint64_t seed) {
    Rng rng(seed);
    std::vector<protocol::AheadWireReport> reports;
    for (uint64_t v : share) reports.push_back(client.EncodePhase1(v, rng));
    return protocol::SerializeAheadReportBatch(reports);
  };

  const uint64_t p1_share = phase1.size() / kShards;
  const uint64_t p2_share = phase2.size() / kShards;

  // Single-process reference.
  protocol::AheadServer reference(kDomain, spec.fanout, kEps);
  for (int s = 0; s < kShards; ++s) {
    ASSERT_EQ(reference.AbsorbBatchSerialized(encode_phase1_batch(
                  phase1.subspan(s * p1_share, p1_share), 0xAA + s)),
              ParseError::kOk);
  }
  std::vector<uint8_t> reference_tree = reference.BuildTree();
  ASSERT_TRUE(client.AbsorbTreeDescription(reference_tree));
  std::vector<std::vector<uint8_t>> phase2_batches;
  for (int s = 0; s < kShards; ++s) {
    Rng rng(0xBB + s);
    std::vector<protocol::AheadWireReport> reports =
        client.EncodePhase2Users(phase2.subspan(s * p2_share, p2_share), rng);
    phase2_batches.push_back(protocol::SerializeAheadReportBatch(reports));
  }
  for (const auto& batch : phase2_batches) {
    ASSERT_EQ(reference.AbsorbBatchSerialized(batch), ParseError::kOk);
  }

  // Distributed: shard-local phase 1...
  std::vector<std::unique_ptr<AggregatorServer>> shards;
  for (int s = 0; s < kShards; ++s) {
    shards.push_back(MakeAggregatorServer(spec));
    ASSERT_EQ(shards[s]->AbsorbBatchSerialized(encode_phase1_batch(
                  phase1.subspan(s * p1_share, p1_share), 0xAA + s)),
              ParseError::kOk);
  }
  // ...phase-1 fan-in on a throwaway coordinator, tree derivation...
  std::unique_ptr<AggregatorServer> coordinator = MakeAggregatorServer(spec);
  for (const auto& shard : shards) {
    ASSERT_EQ(coordinator->MergeSerializedState(shard->SerializeState()),
              MergeStatus::kOk);
  }
  std::vector<uint8_t> tree =
      dynamic_cast<protocol::AheadServer&>(*coordinator).BuildTree();
  // Merged phase-1 counts equal the total counts, so the distributed
  // decomposition is the single-process one.
  EXPECT_EQ(tree, reference_tree);
  // ...tree broadcast + shard-local phase 2...
  for (int s = 0; s < kShards; ++s) {
    ASSERT_TRUE(
        dynamic_cast<protocol::AheadServer&>(*shards[s]).InstallTree(tree));
    ASSERT_EQ(shards[s]->AbsorbBatchSerialized(phase2_batches[s]),
              ParseError::kOk);
  }
  // ...and the final full-state fan-in on a fresh query node.
  std::unique_ptr<AggregatorServer> query_node = MakeAggregatorServer(spec);
  for (const auto& shard : shards) {
    ASSERT_EQ(query_node->MergeSerializedState(shard->SerializeState()),
              MergeStatus::kOk);
  }
  EXPECT_EQ(query_node->SerializeState(), reference.SerializeState());
  reference.Finalize();
  query_node->Finalize();
  EXPECT_EQ(query_node->EstimateFrequencies(),
            reference.EstimateFrequencies());
}

TEST(StateSnapshot, AheadTwoDifferentTreesRefuseToMerge) {
  ServerSpec spec;
  spec.kind = ServerKind::kAhead;
  spec.domain = kDomain;
  spec.eps = kEps;
  protocol::AheadClient client(kDomain, spec.fanout, kEps);

  // Two servers with very different phase-1 mass: their adaptive
  // decompositions disagree, so their phase-2 counts are not summable.
  auto build = [&](uint64_t seed, bool lumpy) {
    std::unique_ptr<AggregatorServer> server = MakeAggregatorServer(spec);
    Rng rng(seed);
    std::vector<protocol::AheadWireReport> reports;
    for (int i = 0; i < 600; ++i) {
      uint64_t v = lumpy ? 0 : rng.UniformInt(kDomain);
      reports.push_back(client.EncodePhase1(v, rng));
    }
    EXPECT_EQ(server->AbsorbBatchSerialized(
                  protocol::SerializeAheadReportBatch(reports)),
              ParseError::kOk);
    dynamic_cast<protocol::AheadServer&>(*server).BuildTree();
    return server;
  };
  std::unique_ptr<AggregatorServer> lumpy = build(1, true);
  std::unique_ptr<AggregatorServer> uniform = build(2, false);
  ASSERT_NE(lumpy->SerializeState(), uniform->SerializeState());
  EXPECT_EQ(lumpy->MergeSerializedState(uniform->SerializeState()),
            MergeStatus::kStateMismatch);
}

// --- The service merge plane, over serialized kStateMerge messages -----

std::vector<uint8_t> MergePush(AggregatorService& svc, uint64_t merge_id,
                               uint64_t server_id, uint64_t shard_index,
                               uint64_t shard_count, uint8_t flags,
                               std::span<const uint8_t> snapshot) {
  StateMergeRequest request;
  request.merge_id = merge_id;
  request.server_id = server_id;
  request.shard_index = shard_index;
  request.shard_count = shard_count;
  request.flags = flags;
  return svc.HandleMessage(service::SerializeStateMerge(request, snapshot));
}

StateMergeResponse MustParseAck(std::span<const uint8_t> bytes) {
  StateMergeResponse response;
  EXPECT_EQ(service::ParseStateMergeResponse(bytes, &response),
            ParseError::kOk);
  return response;
}

TEST(ServiceMergePlane, FanInBitIdenticalAcrossWorkersAndPushOrder) {
  for (const ServerSpec& spec : MatrixSpecs()) {
    SCOPED_TRACE(ServerKindName(spec.kind) + "/d" +
                 std::to_string(spec.kind == ServerKind::kGrid
                                    ? spec.dimensions
                                    : 1));
    std::vector<std::vector<uint8_t>> batches = ShardBatches(spec);
    std::vector<std::vector<uint8_t>> snaps;
    for (int s = 0; s < kShards; ++s) {
      snaps.push_back(
          IngestedServer(spec, {&batches[s], 1})->SerializeState());
    }
    // Expected response bytes, from the single-process reference — the
    // exact math HandleRangeQuery runs on a finalized server.
    std::unique_ptr<AggregatorServer> reference =
        IngestedServer(spec, batches);
    reference->Finalize();
    const std::vector<QueryInterval> intervals = {
        {0, spec.domain - 1}, {3, spec.domain / 2}, {7, 7}};
    RangeQueryResponse expected;
    expected.query_id = 42;
    for (const QueryInterval& interval : intervals) {
      RangeEstimate estimate =
          reference->RangeQueryWithUncertainty(interval.lo, interval.hi);
      expected.estimates.push_back(service::IntervalEstimate{
          estimate.value, estimate.stddev * estimate.stddev});
    }
    const std::vector<uint8_t> expected_bytes =
        service::SerializeRangeQueryResponse(expected);

    for (unsigned workers : {0u, 1u, 4u, 8u}) {
      for (bool reversed : {false, true}) {
        SCOPED_TRACE(std::to_string(workers) +
                     (reversed ? " reversed" : " in order"));
        AggregatorService svc(workers);
        uint64_t id = svc.AddServer(MakeAggregatorServer(spec));
        uint64_t pushed = 0;
        for (int i = 0; i < kShards; ++i) {
          const int s = reversed ? kShards - 1 - i : i;
          StateMergeResponse ack = MustParseAck(
              MergePush(svc, /*merge_id=*/9, id, s, kShards,
                        service::kMergeFlagFinalize, snaps[s]));
          EXPECT_EQ(ack.merge_id, 9u);
          ASSERT_EQ(ack.status, MergeStatus::kOk);
          EXPECT_EQ(ack.shards_received, ++pushed);
        }
        ASSERT_TRUE(svc.server_finalized(id));

        RangeQueryRequest request;
        request.query_id = 42;
        request.server_id = id;
        request.intervals = intervals;
        EXPECT_EQ(
            svc.HandleMessage(service::SerializeRangeQueryRequest(request)),
            expected_bytes);

        service::ServiceStats stats = svc.stats();
        EXPECT_EQ(stats.merge_requests, 3u);
        EXPECT_EQ(stats.merges_completed, 1u);
        EXPECT_EQ(stats.merge_rejects, 0u);
        EXPECT_EQ(stats.merge_would_block, 0u);
        EXPECT_EQ(
            svc.registry().GetHistogram("merge.absorb_ns").Snapshot().count,
            3u);
        EXPECT_EQ(
            svc.registry().GetHistogram("merge.fan_in_ns").Snapshot().count,
            1u);
      }
    }
  }
}

TEST(ServiceMergePlane, TypedErrorMatrix) {
  ServerSpec flat;
  flat.kind = ServerKind::kFlat;
  flat.domain = kDomain;
  flat.eps = kEps;
  ServerSpec haar = flat;
  haar.kind = ServerKind::kHaar;

  std::vector<uint64_t> values = TestValues(60, kDomain);
  const std::vector<uint8_t> flat_batch =
      EncodeShardBatch(flat, values, /*seed=*/1);
  const std::vector<uint8_t> flat_snapshot =
      IngestedServer(flat, {&flat_batch, 1})->SerializeState();

  AggregatorService svc(/*worker_threads=*/0);
  uint64_t flat_id = svc.AddServer(MakeAggregatorServer(flat));
  uint64_t haar_id = svc.AddServer(MakeAggregatorServer(haar));

  // Unroutable shard geometry or bytes: typed, never silent.
  {
    std::vector<uint8_t> junk = protocol::EncodeEnvelope(
        protocol::MechanismTag::kStateMerge, {{0x01, 0x02}});
    StateMergeResponse ack = MustParseAck(svc.HandleMessage(junk));
    EXPECT_EQ(ack.status, MergeStatus::kMalformedRequest);
  }
  EXPECT_EQ(MustParseAck(MergePush(svc, 1, /*server_id=*/99, 0, 1, 0,
                                   flat_snapshot))
                .status,
            MergeStatus::kUnknownServer);
  // A flat snapshot pushed at a haar server: kind mismatch.
  EXPECT_EQ(
      MustParseAck(MergePush(svc, 2, haar_id, 0, 1, 0, flat_snapshot)).status,
      MergeStatus::kMechanismMismatch);
  // Same kind, different budget: config mismatch.
  {
    ServerSpec other_eps = flat;
    other_eps.eps = 2.0;
    std::vector<uint8_t> batch = EncodeShardBatch(other_eps, values, 1);
    std::vector<uint8_t> snapshot =
        IngestedServer(other_eps, {&batch, 1})->SerializeState();
    EXPECT_EQ(
        MustParseAck(MergePush(svc, 3, flat_id, 0, 1, 0, snapshot)).status,
        MergeStatus::kConfigMismatch);
  }
  // A well-framed snapshot whose state body is garbage.
  {
    service::StateSnapshotHeader header;
    header.kind = service::StateKind::kFlat;
    header.dimensions = 1;
    header.domain = kDomain;
    header.fanout = 0;
    header.eps = kEps;
    const uint8_t bad_body[] = {0xFF};  // truncated varint
    std::vector<uint8_t> forged =
        service::SerializeStateSnapshot(header, bad_body);
    EXPECT_EQ(
        MustParseAck(MergePush(svc, 4, flat_id, 0, 1, 0, forged)).status,
        MergeStatus::kMalformedSnapshot);
  }
  // Fan-in group hygiene: replayed shard, disagreeing geometry.
  EXPECT_EQ(MustParseAck(MergePush(svc, 5, flat_id, 0, 3, 0, flat_snapshot))
                .status,
            MergeStatus::kOk);
  EXPECT_EQ(MustParseAck(MergePush(svc, 5, flat_id, 0, 3, 0, flat_snapshot))
                .status,
            MergeStatus::kDuplicateShard);
  EXPECT_EQ(MustParseAck(MergePush(svc, 5, flat_id, 1, 4, 0, flat_snapshot))
                .status,
            MergeStatus::kInconsistentFanIn);
  // The buffer cap: an over-cap push is deferred, not rejected, and NOT
  // recorded — the identical retry succeeds once space frees up.
  svc.set_merge_buffer_limit(1);  // merge 5 already buffers one shard
  {
    StateMergeResponse ack = MustParseAck(
        MergePush(svc, 5, flat_id, 1, 3, 0, flat_snapshot));
    EXPECT_EQ(ack.status, MergeStatus::kWouldBlock);
    EXPECT_EQ(ack.shards_received, 1u);
  }
  svc.set_merge_buffer_limit(256);
  EXPECT_EQ(MustParseAck(MergePush(svc, 5, flat_id, 1, 3, 0, flat_snapshot))
                .status,
            MergeStatus::kOk);
  // A push at a finalized server.
  ASSERT_TRUE(svc.FinalizeServer(haar_id));
  EXPECT_EQ(MustParseAck(MergePush(svc, 6, haar_id, 0, 1, 0, flat_snapshot))
                .status,
            MergeStatus::kAlreadyFinalized);

  service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.merge_would_block, 1u);
  EXPECT_EQ(stats.merges_completed, 0u);
  // Every non-transient failure above, including the malformed request.
  EXPECT_EQ(stats.merge_rejects, 8u);
  EXPECT_EQ(stats.merge_requests, 11u);
}

TEST(ServiceMergePlane, StreamedAndMergedIngestCompose) {
  // Half the users stream into the hosted server directly, half arrive
  // as a shard snapshot: the composed aggregate must equal one server
  // that ingested everything.
  ServerSpec spec;
  spec.kind = ServerKind::kTree;
  spec.domain = kDomain;
  spec.eps = kEps;
  std::vector<std::vector<uint8_t>> batches = ShardBatches(spec);

  std::unique_ptr<AggregatorServer> reference = IngestedServer(spec, batches);
  reference->Finalize();

  AggregatorService svc(/*worker_threads=*/2);
  uint64_t id = svc.AddServer(MakeAggregatorServer(spec));
  svc.HandleMessage(service::SerializeStreamBegin({1, id}));
  svc.HandleMessage(service::SerializeStreamChunk(1, 0, batches[0]));
  svc.HandleMessage(service::SerializeStreamEnd({1, 1, 0}));
  svc.Drain();

  std::unique_ptr<AggregatorServer> shard = MakeAggregatorServer(spec);
  ASSERT_EQ(shard->AbsorbBatchSerialized(batches[1]), ParseError::kOk);
  ASSERT_EQ(shard->AbsorbBatchSerialized(batches[2]), ParseError::kOk);
  StateMergeResponse ack = MustParseAck(
      MergePush(svc, 8, id, 0, 1, service::kMergeFlagFinalize,
                shard->SerializeState()));
  ASSERT_EQ(ack.status, MergeStatus::kOk);
  ASSERT_TRUE(svc.server_finalized(id));
  EXPECT_EQ(svc.server(id).EstimateFrequencies(),
            reference->EstimateFrequencies());
  EXPECT_EQ(svc.server(id).stats(), reference->stats());
}

// --- Direct-API lifecycle errors ---------------------------------------

TEST(StateMergeApi, FinalizedServersRefuseInEitherDirection) {
  ServerSpec spec;
  spec.kind = ServerKind::kFlat;
  spec.domain = kDomain;
  spec.eps = kEps;
  std::vector<uint64_t> values = TestValues(40, kDomain);
  std::vector<uint8_t> batch = EncodeShardBatch(spec, values, 1);

  std::unique_ptr<AggregatorServer> finalized =
      IngestedServer(spec, {&batch, 1});
  std::vector<uint8_t> snapshot = finalized->SerializeState();
  finalized->Finalize();
  EXPECT_EQ(finalized->MergeSerializedState(snapshot),
            MergeStatus::kAlreadyFinalized);

  std::unique_ptr<AggregatorServer> live = MakeAggregatorServer(spec);
  EXPECT_EQ(live->MergeFrom(*finalized), MergeStatus::kAlreadyFinalized);
}

}  // namespace
}  // namespace ldp
