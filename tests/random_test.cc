#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.h"

namespace ldp {
namespace {

TEST(SplitMix64, KnownSequence) {
  // Reference values for seed 0 from the splitmix64 reference
  // implementation (Vigna).
  uint64_t state = 0;
  EXPECT_EQ(SplitMix64(state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(SplitMix64(state), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(SplitMix64(state), 0x06C45D188009454FULL);
}

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformIntStaysInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng(99);
  const uint64_t bound = 8;
  const int n = 80000;
  std::vector<int> hist(bound, 0);
  for (int i = 0; i < n; ++i) {
    ++hist[rng.UniformInt(bound)];
  }
  double expected = static_cast<double>(n) / static_cast<double>(bound);
  for (uint64_t k = 0; k < bound; ++k) {
    EXPECT_NEAR(hist[k], expected, 5 * std::sqrt(expected));
  }
}

TEST(Rng, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformIntInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.UniformIntInRange(7, 7), 7);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(11);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) {
    double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stat.Add(u);
  }
  EXPECT_NEAR(stat.mean(), 0.5, 0.01);
  EXPECT_NEAR(stat.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  for (double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    int ones = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
      if (rng.Bernoulli(p)) ++ones;
    }
    EXPECT_NEAR(static_cast<double>(ones) / n, p, 0.02) << "p=" << p;
  }
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  std::vector<int> hist(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++hist[rng.Discrete(weights)];
  }
  for (size_t k = 0; k < weights.size(); ++k) {
    double expected = weights[k] / 10.0;
    EXPECT_NEAR(static_cast<double>(hist[k]) / n, expected, 0.01);
  }
}

TEST(Rng, DiscreteSingleOutcome) {
  Rng rng(19);
  std::vector<double> weights = {0.0, 5.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Discrete(weights), 1u);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(23);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) {
    stat.Add(rng.Gaussian());
  }
  EXPECT_NEAR(stat.mean(), 0.0, 0.02);
  EXPECT_NEAR(stat.variance(), 1.0, 0.03);
}

TEST(Rng, CauchyMedianAndSymmetry) {
  // A Cauchy has no mean; check the median and quartiles instead
  // (quartiles of standard Cauchy are at +/-1).
  Rng rng(29);
  const int n = 100000;
  int below0 = 0;
  int below_neg1 = 0;
  int below_pos1 = 0;
  for (int i = 0; i < n; ++i) {
    double c = rng.Cauchy();
    if (c < 0) ++below0;
    if (c < -1) ++below_neg1;
    if (c < 1) ++below_pos1;
  }
  EXPECT_NEAR(static_cast<double>(below0) / n, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(below_neg1) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(below_pos1) / n, 0.75, 0.01);
}

TEST(Rng, LaplaceMomentsMatchScale) {
  Rng rng(31);
  for (double scale : {0.5, 1.0, 3.0}) {
    RunningStat stat;
    for (int i = 0; i < 100000; ++i) {
      stat.Add(rng.Laplace(scale));
    }
    EXPECT_NEAR(stat.mean(), 0.0, 0.05 * scale) << "scale=" << scale;
    // Var[Laplace(b)] = 2 b^2.
    EXPECT_NEAR(stat.variance(), 2.0 * scale * scale, 0.1 * scale * scale)
        << "scale=" << scale;
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace ldp
