#include "core/badic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/random.h"

namespace ldp {
namespace {

TEST(TreeShape, BasicGeometry) {
  TreeShape shape(256, 4);
  EXPECT_EQ(shape.domain(), 256u);
  EXPECT_EQ(shape.fanout(), 4u);
  EXPECT_EQ(shape.height(), 4u);
  EXPECT_EQ(shape.padded_domain(), 256u);
  EXPECT_EQ(shape.NodesAtLevel(0), 1u);
  EXPECT_EQ(shape.NodesAtLevel(4), 256u);
  EXPECT_EQ(shape.BlockLength(0), 256u);
  EXPECT_EQ(shape.BlockLength(4), 1u);
  EXPECT_EQ(shape.TotalNodes(), 1u + 4u + 16u + 64u + 256u);
}

TEST(TreeShape, PadsNonPowerDomains) {
  TreeShape shape(100, 4);
  EXPECT_EQ(shape.height(), 4u);  // 4^4 = 256 >= 100
  EXPECT_EQ(shape.padded_domain(), 256u);
}

TEST(TreeShape, BlockBoundaries) {
  TreeShape shape(64, 2);
  TreeNode node{3, 5};  // level 3 has 8 nodes of 8 leaves each
  EXPECT_EQ(shape.BlockStart(node), 40u);
  EXPECT_EQ(shape.BlockEnd(node), 47u);
  EXPECT_EQ(shape.NodeContaining(3, 40), 5u);
  EXPECT_EQ(shape.NodeContaining(3, 47), 5u);
  EXPECT_EQ(shape.NodeContaining(3, 48), 6u);
  EXPECT_EQ(shape.NodeContaining(0, 63), 0u);
}

TEST(TreeShape, PaperDecompositionExample) {
  // Paper Fact 3 example: D = 32, B = 2, [2, 22] decomposes into
  // [2,3] ∪ [4,7] ∪ [8,15] ∪ [16,19] ∪ [20,21] ∪ [22,22].
  TreeShape shape(32, 2);
  std::vector<TreeNode> nodes = shape.Decompose(2, 22);
  ASSERT_EQ(nodes.size(), 6u);
  std::vector<std::pair<uint64_t, uint64_t>> blocks;
  for (const TreeNode& node : nodes) {
    blocks.emplace_back(shape.BlockStart(node), shape.BlockEnd(node));
  }
  std::vector<std::pair<uint64_t, uint64_t>> expected = {
      {2, 3}, {4, 7}, {8, 15}, {16, 19}, {20, 21}, {22, 22}};
  EXPECT_EQ(blocks, expected);
}

TEST(TreeShape, DecomposeFullDomainIsRoot) {
  TreeShape shape(64, 4);
  std::vector<TreeNode> nodes = shape.Decompose(0, 63);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0].level, 0u);
  EXPECT_EQ(nodes[0].index, 0u);
}

TEST(TreeShape, DecomposeSingleLeaf) {
  TreeShape shape(64, 4);
  std::vector<TreeNode> nodes = shape.Decompose(17, 17);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0].level, shape.height());
  EXPECT_EQ(nodes[0].index, 17u);
}

// Property sweep over (domain, fanout): every decomposition must exactly
// tile the requested range with disjoint blocks and satisfy Fact 3's bound.
class DecomposePropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

TEST_P(DecomposePropertyTest, TilesExactlyAndWithinFact3Bound) {
  auto [domain, fanout] = GetParam();
  TreeShape shape(domain, fanout);
  Rng rng(domain * 31 + fanout);
  for (int trial = 0; trial < 300; ++trial) {
    uint64_t x = rng.UniformInt(shape.padded_domain());
    uint64_t y = rng.UniformInt(shape.padded_domain());
    uint64_t a = std::min(x, y);
    uint64_t b = std::max(x, y);
    std::vector<TreeNode> nodes = shape.Decompose(a, b);
    // Exact disjoint cover, left to right.
    uint64_t cursor = a;
    for (const TreeNode& node : nodes) {
      ASSERT_EQ(shape.BlockStart(node), cursor)
          << "gap/overlap at [" << a << "," << b << "]";
      cursor = shape.BlockEnd(node) + 1;
    }
    ASSERT_EQ(cursor, b + 1);
    // Fact 3: at most (B-1)(2 log_B r + 1) pieces.
    double r = static_cast<double>(b - a + 1);
    double log_b_r = std::log(r) / std::log(static_cast<double>(fanout));
    double bound = (static_cast<double>(fanout) - 1.0) *
                   (2.0 * std::max(0.0, log_b_r) + 1.0);
    EXPECT_LE(static_cast<double>(nodes.size()), bound + 1e-9)
        << "range [" << a << "," << b << "] r=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DecomposePropertyTest,
    ::testing::Values(std::make_tuple(uint64_t{64}, uint64_t{2}),
                      std::make_tuple(uint64_t{256}, uint64_t{2}),
                      std::make_tuple(uint64_t{256}, uint64_t{4}),
                      std::make_tuple(uint64_t{256}, uint64_t{8}),
                      std::make_tuple(uint64_t{256}, uint64_t{16}),
                      std::make_tuple(uint64_t{100}, uint64_t{3}),
                      std::make_tuple(uint64_t{1000}, uint64_t{5}),
                      std::make_tuple(uint64_t{4096}, uint64_t{16})));

TEST(TreeShape, DecomposeUsesMaximalBlocks) {
  // A decomposition is minimal iff no B consecutive siblings appear; spot
  // check with exhaustive enumeration on a small tree.
  TreeShape shape(16, 2);
  for (uint64_t a = 0; a < 16; ++a) {
    for (uint64_t b = a; b < 16; ++b) {
      std::vector<TreeNode> nodes = shape.Decompose(a, b);
      for (size_t i = 0; i + 1 < nodes.size(); ++i) {
        bool same_level = nodes[i].level == nodes[i + 1].level;
        bool siblings = same_level &&
                        nodes[i].index / 2 == nodes[i + 1].index / 2 &&
                        nodes[i].index % 2 == 0;
        EXPECT_FALSE(siblings)
            << "mergeable pair in [" << a << "," << b << "]";
      }
    }
  }
}

TEST(TreeShape, WorstCaseNodeCountBound) {
  // Paper: a range needs at most 2(B-1)(log_B D + 1/2) - 1 nodes in the
  // worst case; verify empirically for a full enumeration of a small tree.
  for (uint64_t fanout : {2ull, 4ull}) {
    TreeShape shape(256, fanout);
    size_t worst = 0;
    for (uint64_t a = 0; a < 256; ++a) {
      for (uint64_t b = a; b < 256; ++b) {
        worst = std::max(worst, shape.Decompose(a, b).size());
      }
    }
    double h = static_cast<double>(shape.height());
    double bound = 2.0 * (static_cast<double>(fanout) - 1.0) * (h + 0.5) - 1.0;
    EXPECT_LE(static_cast<double>(worst), bound);
  }
}

}  // namespace
}  // namespace ldp
