#include "core/hierarchical.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "core/variance.h"
#include "frequency/frequency_oracle.h"

namespace ldp {
namespace {

HierarchicalConfig Config(uint64_t fanout, OracleKind oracle,
                          bool consistency) {
  HierarchicalConfig config;
  config.fanout = fanout;
  config.oracle = oracle;
  config.consistency = consistency;
  return config;
}

TEST(Hierarchical, NameEncodesConfiguration) {
  HierarchicalMechanism a(256, 1.0,
                          Config(8, OracleKind::kOueSimulated, true));
  EXPECT_EQ(a.Name(), "HHc8-OUE(sim)");
  HierarchicalMechanism b(256, 1.0, Config(4, OracleKind::kHrr, false));
  EXPECT_EQ(b.Name(), "HH4-HRR");
}

TEST(Hierarchical, NoiselessExactRecovery) {
  // With a huge eps the whole pipeline (level sampling + oracle +
  // consistency) must recover range answers up to level-sampling noise;
  // with enough users per level that noise is tiny.
  Rng rng(1);
  HierarchicalMechanism mech(64, 60.0,
                             Config(4, OracleKind::kOueSimulated, true));
  const int n = 120000;
  for (int i = 0; i < n; ++i) {
    mech.EncodeUser(i % 64 < 16 ? (i % 16) : 32, rng);
  }
  mech.Finalize(rng);
  // True distribution: values 0..15 each 1/256 of 1/4... compute directly:
  // i%64<16 happens 16/64 = 1/4 of the time, spread over 0..15; else 32.
  EXPECT_NEAR(mech.RangeQuery(0, 15), 0.25, 0.02);
  EXPECT_NEAR(mech.RangeQuery(32, 32), 0.75, 0.02);
  EXPECT_NEAR(mech.RangeQuery(0, 63), 1.0, 1e-9);  // consistency pins root
  EXPECT_NEAR(mech.RangeQuery(48, 63), 0.0, 0.02);
}

TEST(Hierarchical, LevelSamplingIsUniform) {
  Rng rng(2);
  HierarchicalMechanism mech(256, 1.0,
                             Config(2, OracleKind::kOueSimulated, false));
  const int n = 80000;
  for (int i = 0; i < n; ++i) {
    mech.EncodeUser(i % 256, rng);
  }
  const uint32_t h = mech.shape().height();
  double expected = static_cast<double>(n) / h;
  for (uint32_t l = 1; l <= h; ++l) {
    EXPECT_NEAR(mech.LevelReportCount(l), expected,
                6 * std::sqrt(expected))
        << "level " << l;
  }
}

TEST(Hierarchical, CustomLevelWeights) {
  HierarchicalConfig config = Config(2, OracleKind::kOueSimulated, false);
  config.level_weights = {1.0, 0.0, 0.0, 0.0};  // only the coarsest level
  Rng rng(3);
  HierarchicalMechanism mech(16, 1.0, config);
  for (int i = 0; i < 1000; ++i) {
    mech.EncodeUser(i % 16, rng);
  }
  EXPECT_EQ(mech.LevelReportCount(1), 1000u);
  EXPECT_EQ(mech.LevelReportCount(2), 0u);
}

TEST(Hierarchical, RangeEstimatesUnbiased) {
  const uint64_t d = 64;
  const double eps = 1.1;
  const int trials = 120;
  const int n = 3000;
  RunningStat mid_range;
  Rng rng(4);
  for (int t = 0; t < trials; ++t) {
    HierarchicalMechanism mech(d, eps,
                               Config(4, OracleKind::kOueSimulated, false));
    for (int i = 0; i < n; ++i) {
      mech.EncodeUser(i % 32, rng);  // uniform over first half
    }
    mech.Finalize(rng);
    mid_range.Add(mech.RangeQuery(8, 23));  // true answer: 16/32 = 0.5
  }
  EXPECT_NEAR(mid_range.mean(), 0.5,
              5 * std::sqrt(mid_range.sample_variance() / trials) + 0.01);
}

TEST(Hierarchical, ConsistencyNeverHurtsAndUsuallyHelps) {
  // Paper Figure 4's headline: the CI step reliably reduces MSE. Run the
  // same reports through both paths via a fixed seed.
  const uint64_t d = 256;
  const double eps = 1.1;
  const int n = 20000;
  const int trials = 30;
  double mse_raw = 0.0;
  double mse_ci = 0.0;
  for (int t = 0; t < trials; ++t) {
    for (bool ci : {false, true}) {
      Rng rng(100 + t);  // identical stream for both variants
      HierarchicalMechanism mech(d, eps,
                                 Config(4, OracleKind::kOueSimulated, ci));
      for (int i = 0; i < n; ++i) {
        mech.EncodeUser(i % d, rng);
      }
      mech.Finalize(rng);
      double err = 0.0;
      int queries = 0;
      for (uint64_t a = 0; a < d; a += 16) {
        for (uint64_t b = a; b < d; b += 16) {
          double truth =
              static_cast<double>(b - a + 1) / static_cast<double>(d);
          double e = mech.RangeQuery(a, b) - truth;
          err += e * e;
          ++queries;
        }
      }
      (ci ? mse_ci : mse_raw) += err / queries / trials;
    }
  }
  EXPECT_LT(mse_ci, mse_raw);
}

TEST(Hierarchical, ConsistentTreeAnswersAgreeHoweverAssembled) {
  // After CI, parent == sum(children): any way to assemble a range gives
  // the same answer. Compare the B-adic path with a leaf-sum path.
  Rng rng(5);
  HierarchicalMechanism mech(64, 1.0,
                             Config(2, OracleKind::kOueSimulated, true));
  for (int i = 0; i < 5000; ++i) {
    mech.EncodeUser(i % 64, rng);
  }
  mech.Finalize(rng);
  std::vector<double> leaves = mech.EstimateFrequencies();
  for (uint64_t a = 0; a < 64; a += 7) {
    for (uint64_t b = a; b < 64; b += 5) {
      double leaf_sum = 0.0;
      for (uint64_t z = a; z <= b; ++z) {
        leaf_sum += leaves[z];
      }
      EXPECT_NEAR(mech.RangeQuery(a, b), leaf_sum, 1e-9)
          << "[" << a << "," << b << "]";
    }
  }
}

TEST(Hierarchical, VarianceWithinTheorem43Envelope) {
  // Empirical variance of a fixed range must stay below the Theorem 4.3
  // bound (it is a worst-case bound, so only the upper check is strict).
  const uint64_t d = 256;
  const uint64_t fanout = 4;
  const double eps = 1.1;
  const int n = 2000;
  const int trials = 250;
  RunningStat est;
  Rng rng(6);
  for (int t = 0; t < trials; ++t) {
    HierarchicalMechanism mech(
        d, eps, Config(fanout, OracleKind::kOueSimulated, false));
    for (int i = 0; i < n; ++i) {
      mech.EncodeUser(i % d, rng);
    }
    mech.Finalize(rng);
    est.Add(mech.RangeQuery(13, 77));  // r = 65
  }
  double bound = HhRangeVarianceBound(d, fanout, 65, eps, n);
  EXPECT_LT(est.variance(), bound);
  // And the bound should not be vacuous: within ~20x.
  EXPECT_GT(est.variance(), bound / 20.0);
}

TEST(Hierarchical, PointQueryUsesLeafLevel) {
  Rng rng(7);
  HierarchicalMechanism mech(16, 60.0,
                             Config(2, OracleKind::kOueSimulated, true));
  for (int i = 0; i < 40000; ++i) {
    mech.EncodeUser(i % 4, rng);
  }
  mech.Finalize(rng);
  EXPECT_NEAR(mech.PointQuery(0), 0.25, 0.02);
  EXPECT_NEAR(mech.PointQuery(9), 0.0, 0.02);
}

TEST(Hierarchical, NonPowerDomainIsPadded) {
  Rng rng(8);
  HierarchicalMechanism mech(100, 60.0,
                             Config(4, OracleKind::kOueSimulated, true));
  EXPECT_EQ(mech.shape().padded_domain(), 256u);
  for (int i = 0; i < 50000; ++i) {
    mech.EncodeUser(i % 100, rng);
  }
  mech.Finalize(rng);
  EXPECT_NEAR(mech.RangeQuery(0, 99), 1.0, 0.02);
  EXPECT_NEAR(mech.RangeQuery(50, 99), 0.5, 0.02);
}

TEST(Hierarchical, GuardsAgainstMisuse) {
  Rng rng(9);
  HierarchicalMechanism mech(16, 1.0,
                             Config(2, OracleKind::kOueSimulated, true));
  EXPECT_DEATH(mech.RangeQuery(0, 3), "Finalize");
  mech.EncodeUser(1, rng);
  mech.Finalize(rng);
  EXPECT_DEATH(mech.EncodeUser(1, rng), "Finalize");
  EXPECT_DEATH(mech.RangeQuery(3, 1), "");
  EXPECT_DEATH(mech.RangeQuery(0, 16), "");
}

TEST(Hierarchical, SamplingBeatsSplitting) {
  // Paper Section 4.4 "Key difference": splitting eps across levels costs
  // ~h^2 versus sampling's ~h. At D=256, B=2 (h=8) the gap is large.
  const uint64_t d = 256;
  const double eps = 1.1;
  const int n = 20000;
  const int trials = 15;
  double mse_sample = 0.0;
  double mse_split = 0.0;
  for (int t = 0; t < trials; ++t) {
    for (BudgetStrategy strategy :
         {BudgetStrategy::kSampling, BudgetStrategy::kSplitting}) {
      HierarchicalConfig config = Config(2, OracleKind::kOueSimulated, true);
      config.budget = strategy;
      Rng rng(500 + t);
      HierarchicalMechanism mech(d, eps, config);
      for (int i = 0; i < n; ++i) {
        mech.EncodeUser(i % d, rng);
      }
      mech.Finalize(rng);
      double err = 0.0;
      int queries = 0;
      for (uint64_t a = 0; a < d - 64; a += 8) {
        double truth = 64.0 / d;
        double e = mech.RangeQuery(a, a + 63) - truth;
        err += e * e;
        ++queries;
      }
      double mse = err / queries / trials;
      (strategy == BudgetStrategy::kSampling ? mse_sample : mse_split) += mse;
    }
  }
  EXPECT_LT(mse_sample * 2, mse_split);
}

TEST(Hierarchical, SplittingSubmitsEveryLevel) {
  HierarchicalConfig config = Config(2, OracleKind::kOueSimulated, false);
  config.budget = BudgetStrategy::kSplitting;
  Rng rng(10);
  HierarchicalMechanism mech(16, 1.0, config);
  EXPECT_EQ(mech.Name(), "HH2-OUE(sim)-split");
  for (int i = 0; i < 100; ++i) {
    mech.EncodeUser(i % 16, rng);
  }
  for (uint32_t l = 1; l <= mech.shape().height(); ++l) {
    EXPECT_EQ(mech.LevelReportCount(l), 100u);
  }
}

TEST(Hierarchical, ReportBitsReflectsLevelMix) {
  HierarchicalMechanism mech(256, 1.0,
                             Config(2, OracleKind::kHrr, false));
  // HRR at level l costs log2(2^l) + 1 bits; average over 8 levels is
  // (1+2+...+8)/8 + 1 = 5.5, plus 3 bits of level id.
  EXPECT_NEAR(mech.ReportBits(), 3.0 + 5.5, 1e-9);
}

}  // namespace
}  // namespace ldp
