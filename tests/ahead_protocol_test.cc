// AHEAD wire protocol (protocol/ahead_protocol.h): report and tree
// serialization totality, the two-phase client/server exchange end to
// end, phase-era enforcement, forged node-id rejection, and batch
// accounting.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/ahead.h"
#include "data/distributions.h"
#include "protocol/ahead_protocol.h"
#include "protocol/envelope.h"
#include "protocol/wire.h"

namespace ldp {
namespace {

using protocol::AheadClient;
using protocol::AheadServer;
using protocol::AheadServerConfig;
using protocol::AheadWireReport;
using protocol::MechanismTag;
using protocol::ParseError;

TEST(AheadWire, SingleReportRoundTrips) {
  for (const AheadWireReport report :
       {AheadWireReport{1, 2, 37}, AheadWireReport{2, 3, 12345}}) {
    std::vector<uint8_t> bytes = protocol::SerializeAheadReport(report);
    AheadWireReport back;
    ASSERT_EQ(protocol::ParseAheadReportDetailed(bytes, &back),
              ParseError::kOk);
    EXPECT_EQ(back, report);
  }
}

TEST(AheadWire, ParserRejectsStructurallyInvalidReports) {
  // Both phases carry a 1-based level; level 0 or an unknown phase is
  // malformed at the parser, before the server sees it.
  AheadWireReport back;
  for (uint8_t phase : {uint8_t{1}, uint8_t{2}}) {
    std::vector<uint8_t> bytes =
        protocol::SerializeAheadReport(AheadWireReport{phase, 1, 5});
    bytes[protocol::kEnvelopeHeaderSize + 1] = 0;  // level 0
    EXPECT_EQ(protocol::ParseAheadReportDetailed(bytes, &back),
              ParseError::kBadPayload);
  }
  std::vector<uint8_t> bad_phase =
      protocol::SerializeAheadReport(AheadWireReport{2, 1, 5});
  bad_phase[protocol::kEnvelopeHeaderSize] = 7;  // unknown phase
  EXPECT_EQ(protocol::ParseAheadReportDetailed(bad_phase, &back),
            ParseError::kBadPayload);
}

TEST(AheadWire, TruncationAtEveryOffsetIsRejected) {
  std::vector<uint8_t> bytes =
      protocol::SerializeAheadReport(AheadWireReport{2, 2, 99});
  AheadWireReport back;
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
    EXPECT_NE(protocol::ParseAheadReportDetailed(prefix, &back),
              ParseError::kOk)
        << "cut at " << cut;
  }
}

TEST(AheadWire, BatchRoundTripsAndCountsMalformedItems) {
  std::vector<AheadWireReport> reports = {
      {1, 3, 1}, {2, 1, 2}, {2, 2, 3}};
  std::vector<uint8_t> bytes = protocol::SerializeAheadReportBatch(reports);
  std::vector<AheadWireReport> back;
  uint64_t malformed = 7;
  ASSERT_EQ(protocol::ParseAheadReportBatch(bytes, &back, &malformed),
            ParseError::kOk);
  EXPECT_EQ(back, reports);
  EXPECT_EQ(malformed, 0u);

  // Corrupt the middle item's phase byte: it must be skipped and counted
  // while the items around it still parse.
  std::vector<uint8_t> corrupt = bytes;
  size_t item1 = protocol::kEnvelopeHeaderSize + 1 + 10;  // count + item 0
  corrupt[item1] = 9;
  ASSERT_EQ(protocol::ParseAheadReportBatch(corrupt, &back, &malformed),
            ParseError::kOk);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], reports[0]);
  EXPECT_EQ(back[1], reports[2]);
  EXPECT_EQ(malformed, 1u);
}

TEST(AheadWire, TreeDescriptionRoundTrips) {
  TreeShape shape(100, 2);
  AdaptiveTree tree = AdaptiveTree::Grow(
      shape, 0, [](const TreeNode& n) { return n.index % 3 == 0; });
  std::vector<uint8_t> bytes = protocol::SerializeAheadTree(100, 2, tree);
  uint64_t domain = 0;
  uint64_t fanout = 0;
  std::optional<AdaptiveTree> back;
  ASSERT_EQ(protocol::ParseAheadTree(bytes, &domain, &fanout, &back),
            ParseError::kOk);
  EXPECT_EQ(domain, 100u);
  EXPECT_EQ(fanout, 2u);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->SplitNodes(), tree.SplitNodes());
  EXPECT_EQ(back->num_levels(), tree.num_levels());
}

TEST(AheadWire, TreeParserRejectsForgeries) {
  TreeShape shape(64, 4);
  AdaptiveTree tree =
      AdaptiveTree::Grow(shape, 0, [](const TreeNode&) { return true; });
  std::vector<uint8_t> good = protocol::SerializeAheadTree(64, 4, tree);
  uint64_t domain = 0;
  uint64_t fanout = 0;
  std::optional<AdaptiveTree> out;

  // Truncations at every offset.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    std::vector<uint8_t> prefix(good.begin(), good.begin() + cut);
    EXPECT_NE(protocol::ParseAheadTree(prefix, &domain, &fanout, &out),
              ParseError::kOk);
  }
  // A fanout beyond the hard cap must be rejected before any
  // reconstruction work.
  {
    std::vector<uint8_t> payload;
    protocol::AppendVarU64(payload, 64);       // domain
    protocol::AppendVarU64(payload, 1 << 20);  // absurd fanout
    protocol::AppendVarU64(payload, 0);
    std::vector<uint8_t> bytes =
        protocol::EncodeEnvelope(MechanismTag::kAheadTree, payload);
    EXPECT_EQ(protocol::ParseAheadTree(bytes, &domain, &fanout, &out),
              ParseError::kBadPayload);
  }
  // An orphan split (parent absent) must be rejected.
  {
    std::vector<uint8_t> payload;
    protocol::AppendVarU64(payload, 64);
    protocol::AppendVarU64(payload, 4);
    protocol::AppendVarU64(payload, 2);
    protocol::AppendU8(payload, 0);  // root
    protocol::AppendVarU64(payload, 0);
    protocol::AppendU8(payload, 2);  // depth-2 split, depth-1 parent absent
    protocol::AppendVarU64(payload, 5);
    std::vector<uint8_t> bytes =
        protocol::EncodeEnvelope(MechanismTag::kAheadTree, payload);
    EXPECT_EQ(protocol::ParseAheadTree(bytes, &domain, &fanout, &out),
              ParseError::kBadPayload);
  }
}

TEST(AheadWire, ServerEnforcesPhaseEras) {
  AheadServer server(64, 4, 1.0);
  Rng rng(1);
  AheadClient client(64, 4, 1.0);

  // Phase-2 reports before the tree broadcast are rejected and counted.
  EXPECT_FALSE(server.Absorb(AheadWireReport{2, 1, 0}));
  EXPECT_EQ(server.rejected_reports(), 1u);

  EXPECT_TRUE(server.Absorb(client.EncodePhase1(7, rng)));
  std::vector<uint8_t> tree_msg = server.BuildTree();
  ASSERT_TRUE(client.AbsorbTreeDescription(tree_msg));

  // Phase-1 reports after the broadcast are stale and rejected.
  EXPECT_FALSE(server.Absorb(client.EncodePhase1(7, rng)));
  EXPECT_TRUE(server.Absorb(client.EncodePhase2(7, rng)));
  EXPECT_EQ(server.accepted_reports(), 2u);
  EXPECT_EQ(server.rejected_reports(), 2u);
  EXPECT_EQ(server.phase1_reports(), 1u);
  EXPECT_EQ(server.phase2_reports(), 1u);
}

TEST(AheadWire, ServerRejectsForgedNodeIds) {
  AheadServer server(64, 4, 1.0);  // complete-tree height 3
  // Phase 1: level beyond the tree, node beyond its level's domain.
  EXPECT_FALSE(server.Absorb(AheadWireReport{1, 4, 0}));
  EXPECT_FALSE(server.Absorb(AheadWireReport{1, 1, 4}));
  EXPECT_TRUE(server.Absorb(AheadWireReport{1, 3, 63}));
  server.BuildTree();
  const AdaptiveTree& tree = server.tree();
  // Phase 2: level beyond the tree, node beyond the frontier.
  EXPECT_FALSE(server.Absorb(
      AheadWireReport{2, tree.num_levels() + 1, 0}));
  EXPECT_FALSE(
      server.Absorb(AheadWireReport{2, 1, tree.FrontierSize(1)}));
  EXPECT_TRUE(server.Absorb(
      AheadWireReport{2, 1, tree.FrontierSize(1) - 1}));
  EXPECT_EQ(server.accepted_reports(), 2u);
  EXPECT_EQ(server.rejected_reports(), 4u);
}

TEST(AheadWire, ClientRejectsMismatchedTreeBroadcast) {
  AheadServer server(64, 4, 1.0);
  server.Absorb(AheadWireReport{1, 1, 3});
  std::vector<uint8_t> tree_msg = server.BuildTree();
  AheadClient wrong_domain(128, 4, 1.0);
  EXPECT_FALSE(wrong_domain.AbsorbTreeDescription(tree_msg));
  AheadClient wrong_fanout(64, 2, 1.0);
  EXPECT_FALSE(wrong_fanout.AbsorbTreeDescription(tree_msg));
  AheadClient right(64, 4, 1.0);
  EXPECT_TRUE(right.AbsorbTreeDescription(tree_msg));
  EXPECT_TRUE(right.has_tree());
}

TEST(AheadWire, BatchAbsorbMatchesLoopAndAccounts) {
  const uint64_t d = 256;
  const double eps = 1.0;
  std::vector<uint64_t> values(500);
  Rng vrng(5);
  for (uint64_t& v : values) v = vrng.UniformInt(d);

  AheadServer loop_server(d, 4, eps);
  AheadServer batch_server(d, 4, eps);
  AheadClient client(d, 4, eps);
  Rng rng1(9);
  for (uint64_t v : values) {
    AheadWireReport r = client.EncodePhase1(v, rng1);
    loop_server.Absorb(r);
    batch_server.Absorb(r);
  }
  ASSERT_TRUE(client.AbsorbTreeDescription(loop_server.BuildTree()));
  batch_server.BuildTree();  // same aggregates -> identical tree
  ASSERT_EQ(batch_server.tree().SplitNodes(),
            loop_server.tree().SplitNodes());

  Rng rng_l(13);
  for (uint64_t v : values) {
    loop_server.Absorb(client.EncodePhase2(v, rng_l));
  }
  Rng rng_b(13);
  std::vector<uint8_t> batch =
      client.EncodePhase2UsersSerialized(values, rng_b);
  uint64_t accepted = 0;
  ASSERT_EQ(batch_server.AbsorbBatchSerialized(batch, &accepted),
            ParseError::kOk);
  EXPECT_EQ(accepted, values.size());

  loop_server.Finalize();
  batch_server.Finalize();
  EXPECT_EQ(batch_server.accepted_reports(), loop_server.accepted_reports());
  EXPECT_EQ(batch_server.EstimateFrequencies(),
            loop_server.EstimateFrequencies());
}

TEST(AheadWire, TwoPhaseExchangeRecoversTheDistribution) {
  // Full deployment shape: phase-1 cohort -> tree broadcast -> phase-2
  // cohort -> queries, everything crossing the wire as serialized bytes.
  const uint64_t d = 64;
  const double eps = 2.0;
  const uint64_t n = 60000;
  AheadServer server(d, 4, eps);
  AheadClient client(d, 4, eps);
  ZipfDistribution dist(d, 1.2);
  Rng rng(31);

  std::vector<uint64_t> all_values(n);
  for (uint64_t& v : all_values) v = dist.Sample(rng);
  const uint64_t n1 = n / 5;
  for (uint64_t i = 0; i < n1; ++i) {
    ASSERT_TRUE(server.AbsorbSerialized(
        client.EncodePhase1Serialized(all_values[i], rng)));
  }
  ASSERT_TRUE(client.AbsorbTreeDescription(server.BuildTree()));
  std::span<const uint64_t> phase2(all_values.begin() + n1,
                                   all_values.end());
  uint64_t accepted = 0;
  ASSERT_EQ(server.AbsorbBatchSerialized(
                client.EncodePhase2UsersSerialized(phase2, rng), &accepted),
            ParseError::kOk);
  EXPECT_EQ(accepted, phase2.size());
  server.Finalize();

  std::vector<double> truth(d, 0.0);
  for (uint64_t v : all_values) truth[v] += 1.0 / static_cast<double>(n);
  for (auto [a, b] : std::vector<std::pair<uint64_t, uint64_t>>{
           {0, 15}, {0, 63}, {10, 40}, {32, 63}}) {
    double t = std::accumulate(truth.begin() + a, truth.begin() + b + 1,
                               0.0);
    EXPECT_NEAR(server.RangeQuery(a, b), t, 0.1)
        << "[" << a << ", " << b << "]";
  }
  uint64_t median = server.QuantileQuery(0.5);
  double cdf = std::accumulate(truth.begin(), truth.begin() + median + 1,
                               0.0);
  EXPECT_NEAR(cdf, 0.5, 0.15);
}

TEST(AheadWire, FinalizeWithoutReportsStaysFinite) {
  AheadServer server(64, 4, 1.0);
  server.Finalize();  // auto-builds a tree from zero phase-1 signal
  double total = server.RangeQuery(0, 63);
  EXPECT_TRUE(std::isfinite(total));
  std::vector<double> freqs = server.EstimateFrequencies();
  for (double f : freqs) EXPECT_TRUE(std::isfinite(f));
}

}  // namespace
}  // namespace ldp
