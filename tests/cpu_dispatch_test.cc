#include "common/cpu_dispatch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "frequency/olh.h"

namespace ldp {
namespace {

bool Contains(std::span<const SimdTier> tiers, SimdTier tier) {
  return std::find(tiers.begin(), tiers.end(), tier) != tiers.end();
}

// Restores auto-detection however a test exits.
struct OverrideGuard {
  ~OverrideGuard() { SetSimdTierOverride("auto"); }
};

TEST(CpuDispatch, CompiledTiersContainBaseline) {
  auto tiers = CompiledSimdTiers();
  ASSERT_FALSE(tiers.empty());
  // Ascending and starting at the platform baseline.
  for (size_t i = 1; i < tiers.size(); ++i) {
    EXPECT_LT(static_cast<int>(tiers[i - 1]), static_cast<int>(tiers[i]));
  }
}

// The satellite pin: whatever detection and overrides do, the resolved
// tier must be one of the declared (compiled) set.
TEST(CpuDispatch, ResolvedTierIsInDeclaredSet) {
  OverrideGuard guard;
  EXPECT_TRUE(Contains(CompiledSimdTiers(), DetectedSimdTier()));
  EXPECT_TRUE(Contains(CompiledSimdTiers(), ResolvedSimdTier()));
  // Every accepted override still resolves within the declared set.
  for (SimdTier tier : CompiledSimdTiers()) {
    ASSERT_TRUE(SetSimdTierOverride(SimdTierName(tier)));
    EXPECT_TRUE(Contains(CompiledSimdTiers(), ResolvedSimdTier()))
        << SimdTierName(tier);
  }
}

TEST(CpuDispatch, TierNamesRoundTrip) {
  for (SimdTier tier :
       {SimdTier::kScalar, SimdTier::kAvx2, SimdTier::kAvx512,
        SimdTier::kNeon, SimdTier::kSve}) {
    EXPECT_FALSE(SimdTierName(tier).empty());
  }
}

TEST(CpuDispatch, OverrideLowersAndAutoRestores) {
  OverrideGuard guard;
  SimdTier baseline = CompiledSimdTiers().front();
  ASSERT_TRUE(SetSimdTierOverride(SimdTierName(baseline)));
  EXPECT_EQ(ResolvedSimdTier(), baseline);
  ASSERT_TRUE(SetSimdTierOverride("auto"));
  EXPECT_EQ(ResolvedSimdTier(), DetectedSimdTier());
}

TEST(CpuDispatch, OverrideAboveDetectedClamps) {
  OverrideGuard guard;
  for (SimdTier tier : CompiledSimdTiers()) {
    ASSERT_TRUE(SetSimdTierOverride(SimdTierName(tier)));
    SimdTier resolved = ResolvedSimdTier();
    SimdTier expected =
        static_cast<int>(tier) > static_cast<int>(DetectedSimdTier())
            ? DetectedSimdTier()
            : tier;
    EXPECT_EQ(resolved, expected) << SimdTierName(tier);
  }
}

TEST(CpuDispatch, RejectsUnknownAndForeignTiers) {
  OverrideGuard guard;
  EXPECT_FALSE(SetSimdTierOverride("quantum"));
  EXPECT_FALSE(SetSimdTierOverride(""));
  // Tiers of the other ISA family are not compiled into this binary.
  for (std::string name : {"scalar", "avx2", "avx512", "neon", "sve"}) {
    bool compiled = false;
    for (SimdTier t : CompiledSimdTiers()) {
      if (SimdTierName(t) == name) compiled = true;
    }
    EXPECT_EQ(SetSimdTierOverride(name), compiled) << name;
  }
}

// Every compiled tier's support-scan variant must produce bit-identical
// counts: decode the same deferred OLH reports under each tier and compare
// against the eager reference.
TEST(CpuDispatch, SupportScanIsTierInvariant) {
  OverrideGuard guard;
  constexpr uint64_t kDomain = 4096 + 37;  // straddle a stripe boundary
  constexpr double kEps = 1.0;
  constexpr uint64_t kReports = 3000;

  OlhOracle eager(kDomain, kEps, 0, OlhDecode::kEager);
  {
    Rng rng(2024);
    for (uint64_t i = 0; i < kReports; ++i) {
      eager.SubmitValue(i % kDomain, rng);
    }
  }
  const std::vector<uint64_t>& reference = eager.SupportCounts();

  for (SimdTier tier : CompiledSimdTiers()) {
    ASSERT_TRUE(SetSimdTierOverride(SimdTierName(tier)));
    OlhOracle deferred(kDomain, kEps, 0, OlhDecode::kDeferred);
    Rng rng(2024);
    for (uint64_t i = 0; i < kReports; ++i) {
      deferred.SubmitValue(i % kDomain, rng);
    }
    EXPECT_EQ(deferred.SupportCounts(), reference)
        << "tier=" << SimdTierName(tier);
  }
}

}  // namespace
}  // namespace ldp
