#include "frequency/hrr.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "frequency/frequency_oracle.h"

namespace ldp {
namespace {

TEST(Hrr, KeepProbability) {
  HrrOracle oracle(8, std::log(3.0));
  EXPECT_NEAR(oracle.KeepProbability(), 0.75, 1e-12);
}

TEST(Hrr, PadsToNextPowerOfTwo) {
  HrrOracle oracle(100, 1.0);
  EXPECT_EQ(oracle.padded_domain(), 128u);
  EXPECT_EQ(oracle.domain_size(), 100u);
  EXPECT_EQ(oracle.EstimateFractions().size(), 100u);
}

TEST(Hrr, NoiselessRecoversDistribution) {
  // Huge eps: the reported coefficient is never flipped. With many users
  // the sampled-coefficient average converges to the true spectrum.
  Rng rng(1);
  HrrOracle oracle(8, 60.0);
  for (int i = 0; i < 60000; ++i) {
    oracle.SubmitValue(i % 2 == 0 ? 1 : 6, rng);
  }
  std::vector<double> est = oracle.EstimateFractions();
  EXPECT_NEAR(est[1], 0.5, 0.03);
  EXPECT_NEAR(est[6], 0.5, 0.03);
  EXPECT_NEAR(est[0], 0.0, 0.03);
  EXPECT_NEAR(est[4], 0.0, 0.03);
}

TEST(Hrr, EstimatesAreUnbiased) {
  const uint64_t d = 16;
  const double eps = 1.1;
  const int trials = 250;
  const int n = 2000;
  std::vector<double> mean(d, 0.0);
  Rng rng(2);
  for (int t = 0; t < trials; ++t) {
    HrrOracle oracle(d, eps);
    for (int i = 0; i < n; ++i) {
      oracle.SubmitValue(i % 4 == 0 ? 3 : 12, rng);
    }
    std::vector<double> est = oracle.EstimateFractions();
    for (uint64_t z = 0; z < d; ++z) {
      mean[z] += est[z] / trials;
    }
  }
  EXPECT_NEAR(mean[3], 0.25, 0.03);
  EXPECT_NEAR(mean[12], 0.75, 0.03);
  EXPECT_NEAR(mean[7], 0.0, 0.03);
}

TEST(Hrr, EmpiricalVarianceMatchesExactFormula) {
  // HRR's exact per-item variance is (e^eps+1)^2 / (N (e^eps-1)^2): the
  // perturbation variance the paper analyzes plus the coefficient-index
  // sampling term. Verify the exact formula, and that it sits within a
  // constant of the paper's shared bound V_F.
  const uint64_t d = 16;
  const double eps = 1.1;
  const int trials = 500;
  const int n = 500;
  RunningStat est_cold;
  Rng rng(3);
  for (int t = 0; t < trials; ++t) {
    HrrOracle oracle(d, eps);
    for (int i = 0; i < n; ++i) {
      oracle.SubmitValue(2, rng);
    }
    est_cold.Add(oracle.EstimateFractions()[9]);
  }
  double exact = HrrExactVariance(eps, n);
  EXPECT_NEAR(est_cold.variance(), exact, 0.2 * exact);
  double vf = OracleVariance(eps, n);
  EXPECT_GT(est_cold.variance(), vf);        // strictly above the bound
  EXPECT_LT(est_cold.variance(), 1.6 * vf);  // ... but by < 2x at eps=1.1
}

TEST(Hrr, ExactVarianceConvergesToSharedBoundAtSmallEps) {
  double ratio_small = HrrExactVariance(0.05, 1000) /
                       OracleVariance(0.05, 1000);
  double ratio_large = HrrExactVariance(2.0, 1000) /
                       OracleVariance(2.0, 1000);
  EXPECT_NEAR(ratio_small, 1.0, 0.01);
  EXPECT_GT(ratio_large, 1.5);
}

TEST(Hrr, SignedSubmissionsEstimateSignedHistogram) {
  // Mixing +e_1 and -e_3 with equal mass: the estimated "fractions" should
  // be +0.5 at 1 and -0.5 at 3 — exactly what HaarHRR's levels need.
  Rng rng(4);
  HrrOracle oracle(8, 60.0);
  for (int i = 0; i < 60000; ++i) {
    if (i % 2 == 0) {
      oracle.SubmitSignedValue(1, +1, rng);
    } else {
      oracle.SubmitSignedValue(3, -1, rng);
    }
  }
  std::vector<double> est = oracle.EstimateFractions();
  EXPECT_NEAR(est[1], 0.5, 0.03);
  EXPECT_NEAR(est[3], -0.5, 0.03);
  EXPECT_NEAR(est[0], 0.0, 0.03);
}

TEST(Hrr, DomainOneIsBinaryRandomizedResponse) {
  // The top Haar level has a single coefficient; HRR over a domain of one
  // item degenerates to 1-bit RR on the sign, as the paper notes.
  Rng rng(5);
  HrrOracle oracle(1, 1.0);
  EXPECT_EQ(oracle.padded_domain(), 1u);
  for (int i = 0; i < 3000; ++i) {
    oracle.SubmitSignedValue(0, (i % 4 == 0) ? -1 : +1, rng);
  }
  // True signed mean: 0.75 * (+1) + 0.25 * (-1) = 0.5.
  EXPECT_NEAR(oracle.EstimateFractions()[0], 0.5, 0.1);
}

TEST(Hrr, ReportLdpRatioIsExactlyExpEps) {
  // Any report (j, s) has probability p or (1-p) of matching the true
  // coefficient sign; the likelihood ratio between any two inputs is at
  // most p/(1-p) = e^eps.
  const double eps = 1.3;
  HrrOracle oracle(8, eps);
  double p = oracle.KeepProbability();
  EXPECT_NEAR(p / (1 - p), std::exp(eps), 1e-9);
}

TEST(Hrr, MergeMatchesSequential) {
  Rng rng1(6);
  Rng rng2(6);
  HrrOracle sequential(8, 1.0);
  HrrOracle shard_a(8, 1.0);
  HrrOracle shard_b(8, 1.0);
  for (int i = 0; i < 200; ++i) {
    sequential.SubmitValue(i % 8, rng1);
  }
  for (int i = 0; i < 200; ++i) {
    (i < 100 ? shard_a : shard_b).SubmitValue(i % 8, rng2);
  }
  shard_a.MergeFrom(shard_b);
  std::vector<double> a = shard_a.EstimateFractions();
  std::vector<double> s = sequential.EstimateFractions();
  for (uint64_t z = 0; z < 8; ++z) {
    EXPECT_DOUBLE_EQ(a[z], s[z]);
  }
}

TEST(Hrr, ReportBitsIsLogDPlusOne) {
  HrrOracle oracle(1 << 16, 1.0);
  EXPECT_DOUBLE_EQ(oracle.ReportBits(), 17.0);
}

}  // namespace
}  // namespace ldp
