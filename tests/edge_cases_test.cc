// Edge-case and failure-injection coverage across the stack: degenerate
// populations (empty, single user), minimal domains, extreme privacy
// budgets, starved tree levels, and adversarially concentrated inputs.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/hierarchical.h"
#include "core/method.h"
#include "core/postprocess.h"
#include "data/dataset.h"
#include "eval/experiment.h"

namespace ldp {
namespace {

std::vector<MethodSpec> AllMethods() {
  return {MethodSpec::Flat(OracleKind::kOueSimulated),
          MethodSpec::Hh(2, OracleKind::kOueSimulated, true),
          MethodSpec::Hh(4, OracleKind::kOueSimulated, false),
          MethodSpec::Hh(2, OracleKind::kHrr, true),
          MethodSpec::Haar()};
}

TEST(EdgeCases, ZeroUsersStillServesFiniteAnswers) {
  for (const MethodSpec& spec : AllMethods()) {
    Rng rng(1);
    auto mech = MakeMechanism(spec, 64, 1.0);
    mech->Finalize(rng);
    double answer = mech->RangeQuery(5, 40);
    EXPECT_TRUE(std::isfinite(answer)) << spec.Name();
    // Quantile search must terminate and return a valid item.
    EXPECT_LT(mech->QuantileQuery(0.5), 64u) << spec.Name();
  }
}

TEST(EdgeCases, SingleUserPopulation) {
  for (const MethodSpec& spec : AllMethods()) {
    Rng rng(2);
    auto mech = MakeMechanism(spec, 64, 60.0);
    mech->EncodeUser(37, rng);
    mech->Finalize(rng);
    EXPECT_EQ(mech->user_count(), 1u) << spec.Name();
    EXPECT_TRUE(std::isfinite(mech->RangeQuery(0, 63))) << spec.Name();
  }
}

TEST(EdgeCases, StarvedTreeLevels) {
  // With D = 1024, B = 2 (h = 10) and only 5 users, most levels receive
  // zero reports; those levels estimate zero everywhere and queries must
  // remain finite and unbiased-ish at the touched levels.
  Rng rng(3);
  HierarchicalConfig config;
  config.fanout = 2;
  config.oracle = OracleKind::kOueSimulated;
  config.consistency = true;
  HierarchicalMechanism mech(1024, 1.0, config);
  for (int i = 0; i < 5; ++i) {
    mech.EncodeUser(100, rng);
  }
  mech.Finalize(rng);
  for (uint64_t a = 0; a < 1024; a += 111) {
    ASSERT_TRUE(std::isfinite(mech.RangeQuery(a, 1023)));
  }
  // The consistency invariant must hold even with empty levels.
  EXPECT_NEAR(mech.RangeQuery(0, 1023), 1.0, 1e-9);
}

TEST(EdgeCases, MinimalDomainTwo) {
  for (const MethodSpec& spec : AllMethods()) {
    Rng rng(4);
    auto mech = MakeMechanism(spec, 2, 60.0);
    for (int i = 0; i < 3000; ++i) {
      mech->EncodeUser(i % 3 == 0 ? 0 : 1, rng);
    }
    mech->Finalize(rng);
    EXPECT_NEAR(mech->PointQuery(0), 1.0 / 3, 0.1) << spec.Name();
    EXPECT_NEAR(mech->PointQuery(1), 2.0 / 3, 0.1) << spec.Name();
    EXPECT_NEAR(mech->RangeQuery(0, 1), 1.0, 0.1) << spec.Name();
  }
}

TEST(EdgeCases, TinyEpsilonRemainsFiniteAndUnbiased) {
  // eps = 0.01: near-total randomization. Estimates are extremely noisy
  // but must stay finite, and full-domain queries still anchor at 1 for
  // mechanisms with exact roots.
  Rng rng(5);
  auto haar = MakeMechanism(MethodSpec::Haar(), 256, 0.01);
  auto hh = MakeMechanism(MethodSpec::Hh(4, OracleKind::kOueSimulated, true),
                          256, 0.01);
  for (int i = 0; i < 20000; ++i) {
    haar->EncodeUser(i % 256, rng);
    hh->EncodeUser(i % 256, rng);
  }
  haar->Finalize(rng);
  hh->Finalize(rng);
  EXPECT_NEAR(haar->RangeQuery(0, 255), 1.0, 1e-9);
  EXPECT_NEAR(hh->RangeQuery(0, 255), 1.0, 1e-9);
  EXPECT_TRUE(std::isfinite(haar->RangeQuery(10, 99)));
  EXPECT_TRUE(std::isfinite(hh->RangeQuery(10, 99)));
}

TEST(EdgeCases, HugeEpsilonDoesNotOverflow) {
  // eps = 50: e^eps ~ 5e21 must not break any estimator arithmetic.
  for (const MethodSpec& spec : AllMethods()) {
    Rng rng(6);
    auto mech = MakeMechanism(spec, 32, 50.0);
    for (int i = 0; i < 3200; ++i) {
      mech->EncodeUser(i % 32, rng);
    }
    mech->Finalize(rng);
    EXPECT_NEAR(mech->RangeQuery(8, 23), 0.5, 0.1) << spec.Name();
  }
}

TEST(EdgeCases, PointMassPopulation) {
  // Every user holds the same value: point query ~1 there, ~0 elsewhere,
  // and quantiles all collapse to that item.
  Rng rng(7);
  auto mech = MakeMechanism(MethodSpec::Haar(), 128, 60.0);
  for (int i = 0; i < 50000; ++i) {
    mech->EncodeUser(77, rng);
  }
  mech->Finalize(rng);
  EXPECT_NEAR(mech->PointQuery(77), 1.0, 0.05);
  EXPECT_NEAR(mech->PointQuery(78), 0.0, 0.05);
  for (double phi : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(static_cast<double>(mech->QuantileQuery(phi)), 77.0, 2.0);
  }
}

TEST(EdgeCases, MassAtDomainBoundaries) {
  // Half the mass at item 0, half at D-1: the worst case for B-adic
  // fringes and Haar boundary blocks.
  Rng rng(8);
  auto mech = MakeMechanism(MethodSpec::Hh(4, OracleKind::kOueSimulated, true),
                            256, 60.0);
  for (int i = 0; i < 60000; ++i) {
    mech->EncodeUser(i % 2 == 0 ? 0 : 255, rng);
  }
  mech->Finalize(rng);
  EXPECT_NEAR(mech->PointQuery(0), 0.5, 0.03);
  EXPECT_NEAR(mech->PointQuery(255), 0.5, 0.03);
  EXPECT_NEAR(mech->RangeQuery(1, 254), 0.0, 0.03);
}

TEST(EdgeCases, NormSubOnDegenerateEstimates) {
  // Post-processing must survive what a starved mechanism produces.
  Rng rng(9);
  auto mech = MakeMechanism(MethodSpec::Haar(), 64, 0.05);
  for (int i = 0; i < 50; ++i) {
    mech->EncodeUser(3, rng);
  }
  mech->Finalize(rng);
  std::vector<double> freq = mech->EstimateFrequencies();
  NormSubProjection(freq);
  double sum = 0.0;
  for (double f : freq) {
    ASSERT_GE(f, 0.0);
    sum += f;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(EdgeCases, ExperimentRunnerWithOneTrialOneQuery) {
  ExperimentConfig config;
  config.domain = 16;
  config.population = 100;
  config.epsilon = 1.0;
  config.method = MethodSpec::Haar();
  config.trials = 1;
  config.seed = 1;
  UniformDistribution dist(16);
  ExperimentResult result =
      RunRangeExperiment(config, dist, QueryWorkload::FixedLength(16));
  EXPECT_EQ(result.per_trial_mse.count(), 1);
  EXPECT_EQ(result.pooled.count(), 1);
}

TEST(EdgeCases, DomainOneBelowAndAbovePowers) {
  // Padding boundaries: D = 2^k - 1 and 2^k + 1 for both mechanisms.
  for (uint64_t d : {255ull, 257ull}) {
    Rng rng(10 + d);
    auto haar = MakeMechanism(MethodSpec::Haar(), d, 60.0);
    auto hh = MakeMechanism(
        MethodSpec::Hh(4, OracleKind::kOueSimulated, true), d, 60.0);
    for (uint64_t i = 0; i < 30000; ++i) {
      haar->EncodeUser(i % d, rng);
      hh->EncodeUser(i % d, rng);
    }
    haar->Finalize(rng);
    hh->Finalize(rng);
    EXPECT_NEAR(haar->RangeQuery(0, d - 1), 1.0, 0.03) << d;
    EXPECT_NEAR(hh->RangeQuery(0, d - 1), 1.0, 0.03) << d;
    EXPECT_NEAR(haar->RangeQuery(0, d / 2), 0.5, 0.05) << d;
  }
}

}  // namespace
}  // namespace ldp
