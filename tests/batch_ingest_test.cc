// Batched/sharded ingestion pipeline: SubmitBatch and EncodeUsers must be
// bit-identical to their per-report loops for the same Rng stream, and the
// EncodeUsersSharded driver must be thread-count invariant for a fixed seed
// (its determinism contract) while agreeing statistically with the
// sequential path.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/flat.h"
#include "core/haar_hrr.h"
#include "core/hierarchical.h"
#include "core/method.h"
#include "data/dataset.h"
#include "data/distributions.h"
#include "data/workload.h"
#include "eval/experiment.h"
#include "frequency/hrr.h"
#include "protocol/tree_protocol.h"

namespace ldp {
namespace {

std::vector<uint64_t> TestValues(uint64_t n, uint64_t d) {
  std::vector<uint64_t> values(n);
  Rng rng(123);
  for (uint64_t& v : values) v = rng.UniformInt(d);
  return values;
}

std::vector<std::unique_ptr<RangeMechanism>> AllMechanisms(uint64_t d,
                                                           double eps) {
  std::vector<std::unique_ptr<RangeMechanism>> mechs;
  mechs.push_back(MakeMechanism(MethodSpec::Flat(OracleKind::kOueSimulated),
                                d, eps));
  mechs.push_back(MakeMechanism(MethodSpec::Flat(OracleKind::kOlh), d, eps));
  mechs.push_back(
      MakeMechanism(MethodSpec::Hh(4, OracleKind::kOueSimulated, true), d,
                    eps));
  mechs.push_back(MakeMechanism(MethodSpec::Haar(), d, eps));
  return mechs;
}

TEST(BatchIngest, SubmitBatchDefaultMatchesLoop) {
  // HRR has no SubmitBatch override: the base-class default must still
  // consume the identical Rng stream as the hand-written loop.
  const uint64_t d = 60;
  std::vector<uint64_t> values = TestValues(500, d);
  HrrOracle loop(d, 1.1);
  HrrOracle batch(d, 1.1);
  Rng rng_l(5);
  Rng rng_b(5);
  for (uint64_t v : values) loop.SubmitValue(v, rng_l);
  batch.SubmitBatch(values, rng_b);
  EXPECT_EQ(batch.report_count(), loop.report_count());
  EXPECT_EQ(batch.EstimateFractions(), loop.EstimateFractions());
}

TEST(BatchIngest, EncodeUsersMatchesEncodeUserLoop) {
  // Every mechanism override must draw exactly like the per-user loop.
  const uint64_t d = 128;
  const double eps = 1.1;
  std::vector<uint64_t> values = TestValues(2000, d);
  auto loop_mechs = AllMechanisms(d, eps);
  auto batch_mechs = AllMechanisms(d, eps);
  for (size_t m = 0; m < loop_mechs.size(); ++m) {
    Rng rng_l(17);
    Rng rng_b(17);
    for (uint64_t v : values) loop_mechs[m]->EncodeUser(v, rng_l);
    batch_mechs[m]->EncodeUsers(values, rng_b);
    Rng fin_l(99);
    Rng fin_b(99);
    loop_mechs[m]->Finalize(fin_l);
    batch_mechs[m]->Finalize(fin_b);
    EXPECT_EQ(batch_mechs[m]->user_count(), loop_mechs[m]->user_count());
    EXPECT_EQ(batch_mechs[m]->EstimateFrequencies(),
              loop_mechs[m]->EstimateFrequencies())
        << loop_mechs[m]->Name();
  }
}

TEST(BatchIngest, ShardedIngestionIsThreadCountInvariant) {
  // Fixed (seed); 1, 2 and 8 worker threads must produce bit-identical
  // estimates — the chunked Rng streams do not depend on the partitioning.
  const uint64_t d = 64;
  const double eps = 1.1;
  // Spans three logical chunks (chunk = 2^14), with a ragged tail.
  std::vector<uint64_t> values = TestValues(40000, d);
  for (size_t m = 0; m < AllMechanisms(d, eps).size(); ++m) {
    std::vector<std::vector<double>> freqs;
    std::string name;
    for (unsigned threads : {1u, 2u, 8u}) {
      auto mechs = AllMechanisms(d, eps);
      auto& mech = *mechs[m];
      name = mech.Name();
      EncodeUsersSharded(mech, values, /*seed=*/2024, threads);
      EXPECT_EQ(mech.user_count(), values.size());
      Rng fin(7);
      mech.Finalize(fin);
      freqs.push_back(mech.EstimateFrequencies());
    }
    EXPECT_EQ(freqs[0], freqs[1]) << name;
    EXPECT_EQ(freqs[0], freqs[2]) << name;
  }
}

TEST(BatchIngest, ShardedIngestionHandlesSmallAndEmptyInputs) {
  const uint64_t d = 16;
  FlatMechanism empty(d, 1.0, OracleKind::kOueSimulated);
  EncodeUsersSharded(empty, {}, 1, 4);
  EXPECT_EQ(empty.user_count(), 0u);

  std::vector<uint64_t> tiny = TestValues(10, d);  // single logical chunk
  FlatMechanism small(d, 1.0, OracleKind::kOueSimulated);
  EncodeUsersSharded(small, tiny, 1, 4);
  EXPECT_EQ(small.user_count(), tiny.size());
}

TEST(BatchIngest, ShardedEstimatesAgreeWithSequentialStatistically) {
  // The sharded stream differs from the sequential one, so estimates agree
  // only in distribution: both must land within a few predicted stddevs of
  // the truth.
  const uint64_t d = 64;
  const double eps = 1.1;
  const uint64_t n = 60000;
  std::vector<uint64_t> values(n, 10);  // point mass at 10
  for (uint64_t i = 0; i < n / 2; ++i) values[i] = 42;

  FlatMechanism sequential(d, eps, OracleKind::kOueSimulated);
  Rng rng(31);
  sequential.EncodeUsers(values, rng);
  Rng fin1(8);
  sequential.Finalize(fin1);

  FlatMechanism sharded(d, eps, OracleKind::kOueSimulated);
  EncodeUsersSharded(sharded, values, /*seed=*/31, /*threads=*/4);
  Rng fin2(8);
  sharded.Finalize(fin2);

  double sigma = std::sqrt(OracleVariance(eps, static_cast<double>(n)));
  EXPECT_NEAR(sequential.PointQuery(10), 0.5, 5 * sigma);
  EXPECT_NEAR(sharded.PointQuery(10), 0.5, 5 * sigma);
  EXPECT_NEAR(sequential.PointQuery(42), 0.5, 5 * sigma);
  EXPECT_NEAR(sharded.PointQuery(42), 0.5, 5 * sigma);
  EXPECT_NEAR(sharded.PointQuery(0), 0.0, 5 * sigma);
}

TEST(BatchIngest, ProtocolBatchRoundTripMatchesLoop) {
  // Wire-protocol layer: client EncodeUsers + server AbsorbBatch must be
  // indistinguishable from the per-report Encode/Absorb loop.
  const uint64_t d = 100;
  const uint64_t fanout = 4;
  const double eps = 1.1;
  std::vector<uint64_t> values = TestValues(800, d);

  protocol::TreeHrrClient client(d, fanout, eps);
  protocol::TreeHrrServer loop_server(d, fanout, eps);
  protocol::TreeHrrServer batch_server(d, fanout, eps);

  Rng rng_l(13);
  for (uint64_t v : values) {
    loop_server.Absorb(client.Encode(v, rng_l));
  }
  Rng rng_b(13);
  std::vector<protocol::TreeHrrReport> reports = client.EncodeUsers(values,
                                                                    rng_b);
  EXPECT_EQ(batch_server.AbsorbBatch(reports), values.size());

  loop_server.Finalize();
  batch_server.Finalize();
  EXPECT_EQ(batch_server.accepted_reports(), loop_server.accepted_reports());
  EXPECT_EQ(batch_server.EstimateFrequencies(),
            loop_server.EstimateFrequencies());
}

TEST(BatchIngest, MergeFromRejectsIncompatibleMechanisms) {
  FlatMechanism flat(32, 1.0, OracleKind::kOueSimulated);
  HaarHrrMechanism haar(32, 1.0);
  EXPECT_DEATH(flat.MergeFrom(haar), "FlatMechanism");
}

TEST(BatchIngest, ExperimentRunsWithShardedEncoding) {
  // encode_threads > 1 routes trials through EncodeUsersSharded; the
  // experiment must stay well-behaved end to end.
  ExperimentConfig config;
  config.domain = 64;
  config.population = 20000;
  config.epsilon = 1.1;
  config.method = MethodSpec::Hh(4, OracleKind::kOueSimulated, true);
  config.trials = 2;
  config.threads = 1;
  config.encode_threads = 4;
  ZipfDistribution dist(config.domain, 1.1);
  ExperimentResult result =
      RunRangeExperiment(config, dist, QueryWorkload::Random(50, 3));
  EXPECT_TRUE(std::isfinite(result.mean_mse()));
  EXPECT_LT(result.mean_mse(), 0.05);
}

}  // namespace
}  // namespace ldp
