#include "data/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace ldp {
namespace {

TEST(Cauchy, SamplesStayInDomain) {
  Rng rng(1);
  CauchyDistribution dist(1024, 0.4);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(dist.Sample(rng), 1024u);
  }
}

TEST(Cauchy, DefaultParametersMatchPaper) {
  // Paper Section 5: center at P*D with P = 0.4, height D/10.
  CauchyDistribution dist(1000);
  EXPECT_DOUBLE_EQ(dist.center(), 400.0);
  EXPECT_DOUBLE_EQ(dist.scale(), 100.0);
}

TEST(Cauchy, MassConcentratesAroundCenter) {
  Rng rng(2);
  const uint64_t d = 1 << 12;
  CauchyDistribution dist(d, 0.4);
  const int n = 50000;
  int near_center = 0;
  for (int i = 0; i < n; ++i) {
    uint64_t z = dist.Sample(rng);
    // Half-width = scale: a Cauchy puts 50% of its mass within +/- scale.
    if (z >= d * 0.4 - d / 10.0 && z <= d * 0.4 + d / 10.0) {
      ++near_center;
    }
  }
  double frac = static_cast<double>(near_center) / n;
  EXPECT_GT(frac, 0.45);  // slightly above 1/2 due to truncation
  EXPECT_LT(frac, 0.75);
}

TEST(Cauchy, CenterShiftMovesMedian) {
  Rng rng(3);
  const uint64_t d = 1 << 10;
  for (double p : {0.1, 0.5, 0.9}) {
    CauchyDistribution dist(d, p);
    std::vector<uint64_t> samples;
    for (int i = 0; i < 20001; ++i) {
      samples.push_back(dist.Sample(rng));
    }
    std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                     samples.end());
    double median = static_cast<double>(samples[samples.size() / 2]);
    // The truncation pulls the median toward the domain interior, so allow
    // a wide band around p * d.
    EXPECT_NEAR(median, p * d, 0.1 * d) << "p=" << p;
  }
}

TEST(Zipf, HeadHeavierThanTail) {
  Rng rng(4);
  ZipfDistribution dist(1024, 1.2);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (dist.Sample(rng) < 10) ++head;
  }
  EXPECT_GT(static_cast<double>(head) / n, 0.5);
}

TEST(Zipf, SamplesCoverDomainBounds) {
  Rng rng(5);
  ZipfDistribution dist(16, 0.5);
  std::vector<int> hist(16, 0);
  for (int i = 0; i < 50000; ++i) {
    ++hist[dist.Sample(rng)];
  }
  for (int z = 0; z < 16; ++z) {
    EXPECT_GT(hist[z], 0) << "z=" << z;
  }
  // Monotone non-increasing frequencies (within noise).
  EXPECT_GT(hist[0], hist[15]);
}

TEST(Uniform, IsFlat) {
  Rng rng(6);
  UniformDistribution dist(64);
  std::vector<int> hist(64, 0);
  const int n = 128000;
  for (int i = 0; i < n; ++i) {
    ++hist[dist.Sample(rng)];
  }
  double expected = static_cast<double>(n) / 64;
  for (int z = 0; z < 64; ++z) {
    EXPECT_NEAR(hist[z], expected, 6 * std::sqrt(expected));
  }
}

TEST(Bimodal, HasTwoModes) {
  Rng rng(7);
  BimodalGaussianDistribution dist(1000, 0.25, 0.75, 0.05);
  int low = 0;
  int high = 0;
  int middle = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    uint64_t z = dist.Sample(rng);
    if (z < 400) {
      ++low;
    } else if (z >= 600) {
      ++high;
    } else {
      ++middle;
    }
  }
  EXPECT_GT(low, n / 3);
  EXPECT_GT(high, n / 3);
  EXPECT_LT(middle, n / 10);
}

TEST(Distributions, NamesAreInformative) {
  EXPECT_NE(CauchyDistribution(100).Name().find("Cauchy"), std::string::npos);
  EXPECT_NE(ZipfDistribution(100).Name().find("Zipf"), std::string::npos);
  EXPECT_EQ(UniformDistribution(100).Name(), "Uniform");
  EXPECT_EQ(BimodalGaussianDistribution(100).Name(), "Bimodal");
}

}  // namespace
}  // namespace ldp
