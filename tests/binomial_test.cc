#include "common/binomial.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/stats.h"

namespace ldp {
namespace {

TEST(Binomial, EdgeCases) {
  Rng rng(1);
  EXPECT_EQ(SampleBinomial(0, 0.5, rng), 0);
  EXPECT_EQ(SampleBinomial(100, 0.0, rng), 0);
  EXPECT_EQ(SampleBinomial(100, 1.0, rng), 100);
  EXPECT_EQ(SampleBinomial(100, -0.5, rng), 0);
  EXPECT_EQ(SampleBinomial(100, 1.5, rng), 100);
}

TEST(Binomial, AlwaysInRange) {
  Rng rng(2);
  for (int64_t n : {1, 5, 100, 100000}) {
    for (double p : {0.001, 0.3, 0.5, 0.7, 0.999}) {
      for (int i = 0; i < 100; ++i) {
        int64_t k = SampleBinomial(n, p, rng);
        ASSERT_GE(k, 0) << "n=" << n << " p=" << p;
        ASSERT_LE(k, n) << "n=" << n << " p=" << p;
      }
    }
  }
}

// Parameterized moment test: mean and variance must match n*p and n*p*(1-p)
// across both sampler regimes (inversion for small n*p, BTRS for large).
class BinomialMomentsTest
    : public ::testing::TestWithParam<std::tuple<int64_t, double>> {};

TEST_P(BinomialMomentsTest, MeanAndVarianceMatch) {
  auto [n, p] = GetParam();
  Rng rng(42 + n);
  RunningStat stat;
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) {
    stat.Add(static_cast<double>(SampleBinomial(n, p, rng)));
  }
  double nd = static_cast<double>(n);
  double mean = nd * p;
  double var = nd * p * (1 - p);
  double mean_tol = 6 * std::sqrt(var / trials) + 1e-9;
  EXPECT_NEAR(stat.mean(), mean, mean_tol) << "n=" << n << " p=" << p;
  // Variance of the sample variance ~ 2 var^2 / trials for near-normal
  // summaries; use a generous 8-sigma band plus slack for skew.
  double var_tol = 8 * var * std::sqrt(2.0 / trials) + 0.05 * var + 1e-9;
  EXPECT_NEAR(stat.variance(), var, var_tol) << "n=" << n << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, BinomialMomentsTest,
    ::testing::Values(
        std::make_tuple(int64_t{10}, 0.3),        // inversion
        std::make_tuple(int64_t{50}, 0.01),       // inversion, tiny p
        std::make_tuple(int64_t{100}, 0.5),       // BTRS
        std::make_tuple(int64_t{1000}, 0.25),     // BTRS
        std::make_tuple(int64_t{100000}, 0.001),  // BTRS boundary (np=100)
        std::make_tuple(int64_t{1 << 20}, 0.25),  // paper-scale counts
        std::make_tuple(int64_t{500}, 0.9)));     // complement path (p>1/2)

TEST(Binomial, InversionAndBtrsAgreeInDistribution) {
  // Both internal samplers target the same law; compare empirical CDFs at
  // a parameter point valid for both (n*p >= 10, p <= 0.5).
  const int64_t n = 200;
  const double p = 0.2;
  const int trials = 60000;
  Rng rng_a(7);
  Rng rng_b(8);
  std::vector<int> hist_a(n + 1, 0);
  std::vector<int> hist_b(n + 1, 0);
  for (int i = 0; i < trials; ++i) {
    ++hist_a[internal::BinomialInversion(n, p, rng_a)];
    ++hist_b[internal::BinomialBtrs(n, p, rng_b)];
  }
  // Two-sample Kolmogorov-Smirnov statistic with a conservative threshold.
  double max_gap = 0.0;
  double ca = 0.0;
  double cb = 0.0;
  for (int64_t k = 0; k <= n; ++k) {
    ca += static_cast<double>(hist_a[k]) / trials;
    cb += static_cast<double>(hist_b[k]) / trials;
    max_gap = std::max(max_gap, std::abs(ca - cb));
  }
  // KS 99.9% critical value ~ 1.95 * sqrt(2/trials) ~ 0.0113.
  EXPECT_LT(max_gap, 0.015);
}

TEST(Binomial, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SampleBinomial(1000, 0.37, a), SampleBinomial(1000, 0.37, b));
  }
}

TEST(BinomialSampler, MethodSelection) {
  EXPECT_EQ(BinomialSampler(0, 0.5).method(),
            BinomialSampler::Method::kDegenerate);
  EXPECT_EQ(BinomialSampler(100, 0.0).method(),
            BinomialSampler::Method::kDegenerate);
  EXPECT_EQ(BinomialSampler(100, 1.0).method(),
            BinomialSampler::Method::kDegenerate);
  EXPECT_EQ(BinomialSampler(1000, 0.3).method(),
            BinomialSampler::Method::kAlias);
  EXPECT_EQ(BinomialSampler(BinomialSampler::kAliasMaxN, 0.5).method(),
            BinomialSampler::Method::kAlias);
  EXPECT_EQ(BinomialSampler(int64_t{1} << 26, 1e-8).method(),
            BinomialSampler::Method::kInversion);
  EXPECT_EQ(BinomialSampler(int64_t{1} << 26, 0.3).method(),
            BinomialSampler::Method::kBtrs);
}

TEST(BinomialSampler, DegenerateValues) {
  Rng rng(5);
  EXPECT_EQ(BinomialSampler(0, 0.5).Sample(rng), 0);
  EXPECT_EQ(BinomialSampler(42, 0.0).Sample(rng), 0);
  EXPECT_EQ(BinomialSampler(42, 1.0).Sample(rng), 42);
}

// The alias table must reproduce the exact pmf: compare the empirical
// distribution of a small-n sampler against the closed-form binomial pmf.
TEST(BinomialSampler, AliasMatchesExactPmf) {
  const int64_t n = 8;
  const double p = 0.35;
  BinomialSampler sampler(n, p);
  ASSERT_EQ(sampler.method(), BinomialSampler::Method::kAlias);
  Rng rng(99);
  const int trials = 400000;
  std::vector<int> hist(n + 1, 0);
  for (int i = 0; i < trials; ++i) {
    int64_t k = sampler.Sample(rng);
    ASSERT_GE(k, 0);
    ASSERT_LE(k, n);
    ++hist[k];
  }
  for (int64_t k = 0; k <= n; ++k) {
    double pmf = std::exp(std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
                          std::lgamma(n - k + 1.0)) *
                 std::pow(p, k) * std::pow(1 - p, n - k);
    double se = std::sqrt(pmf * (1 - pmf) / trials);
    EXPECT_NEAR(static_cast<double>(hist[k]) / trials, pmf, 5 * se + 1e-4)
        << "k=" << k;
  }
}

class BinomialSamplerMomentsTest
    : public ::testing::TestWithParam<std::tuple<int64_t, double>> {};

TEST_P(BinomialSamplerMomentsTest, MeanAndVarianceMatch) {
  auto [n, p] = GetParam();
  BinomialSampler sampler(n, p);
  Rng rng(1000 + n);
  RunningStat stat;
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) {
    int64_t k = sampler.Sample(rng);
    ASSERT_GE(k, 0);
    ASSERT_LE(k, n);
    stat.Add(static_cast<double>(k));
  }
  double nd = static_cast<double>(n);
  double mean = nd * p;
  double var = nd * p * (1 - p);
  double mean_tol = 6 * std::sqrt(var / trials) + 1e-9;
  EXPECT_NEAR(stat.mean(), mean, mean_tol) << "n=" << n << " p=" << p;
  double var_tol = 8 * var * std::sqrt(2.0 / trials) + 0.05 * var + 1e-9;
  EXPECT_NEAR(stat.variance(), var, var_tol) << "n=" << n << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, BinomialSamplerMomentsTest,
    ::testing::Values(
        std::make_tuple(int64_t{100}, 0.269),             // alias
        std::make_tuple(int64_t{100000}, 0.269),          // alias, OUE's q
        std::make_tuple(int64_t{1 << 20}, 0.5),           // alias ceiling
        std::make_tuple(int64_t{1000}, 0.9),              // alias, mirrored
        std::make_tuple(int64_t{1} << 22, 1e-7),          // cached inversion
        std::make_tuple(int64_t{1} << 22, 0.269),         // cached BTRS
        std::make_tuple(int64_t{1} << 22, 0.731)));       // BTRS, mirrored

TEST(BinomialSampler, DeterministicGivenSeed) {
  BinomialSampler sampler(100000, 0.269);
  Rng a(77);
  Rng b(77);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(sampler.Sample(a), sampler.Sample(b));
  }
}

}  // namespace
}  // namespace ldp
