#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "central/average_variance.h"
#include "central/central_hierarchical.h"
#include "central/central_wavelet.h"
#include "common/random.h"
#include "common/stats.h"

namespace ldp {
namespace {

std::vector<double> SkewedCounts(uint64_t domain, double total) {
  std::vector<double> counts(domain);
  double mass = 0.0;
  for (uint64_t z = 0; z < domain; ++z) {
    counts[z] = 1.0 / (1.0 + static_cast<double>(z));
    mass += counts[z];
  }
  for (double& c : counts) {
    c *= total / mass;
  }
  return counts;
}

TEST(CentralHierarchical, UnbiasedRangeAnswers) {
  const uint64_t d = 64;
  std::vector<double> counts = SkewedCounts(d, 10000.0);
  double truth = 0.0;
  for (uint64_t z = 5; z <= 40; ++z) {
    truth += counts[z];
  }
  Rng rng(1);
  RunningStat est;
  for (int t = 0; t < 300; ++t) {
    CentralHierarchical mech(d, 1.0, 4, /*consistency=*/true);
    mech.Fit(counts, rng);
    est.Add(mech.RangeQuery(5, 40));
  }
  EXPECT_NEAR(est.mean(), truth,
              5 * std::sqrt(est.sample_variance() / 300) + 1.0);
}

TEST(CentralHierarchical, NoiseScaleIsHeightOverEps) {
  CentralHierarchical mech(256, 0.5, 2, true);
  EXPECT_DOUBLE_EQ(mech.NoiseScale(), 8.0 / 0.5);
}

TEST(CentralHierarchical, ConsistencyReducesError) {
  const uint64_t d = 256;
  std::vector<double> counts = SkewedCounts(d, 100000.0);
  double err_raw = 0.0;
  double err_ci = 0.0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    for (bool ci : {false, true}) {
      Rng rng(200 + t);
      CentralHierarchical mech(d, 1.0, 4, ci);
      mech.Fit(counts, rng);
      for (uint64_t a = 0; a < d; a += 32) {
        double truth = 0.0;
        uint64_t b = std::min<uint64_t>(a + 97, d - 1);
        for (uint64_t z = a; z <= b; ++z) {
          truth += counts[z];
        }
        double e = mech.RangeQuery(a, b) - truth;
        (ci ? err_ci : err_raw) += e * e;
      }
    }
  }
  EXPECT_LT(err_ci, err_raw);
}

TEST(CentralWavelet, UnbiasedAndMatchesAnalyticVariance) {
  const uint64_t d = 64;
  std::vector<double> counts = SkewedCounts(d, 10000.0);
  double truth = 0.0;
  for (uint64_t z = 10; z <= 53; ++z) {
    truth += counts[z];
  }
  Rng rng(2);
  RunningStat est;
  CentralWavelet probe(d, 1.0);
  for (int t = 0; t < 400; ++t) {
    CentralWavelet mech(d, 1.0);
    mech.Fit(counts, rng);
    est.Add(mech.RangeQuery(10, 53));
  }
  double analytic = probe.RangeVariance(10, 53);
  EXPECT_NEAR(est.mean(), truth,
              5 * std::sqrt(analytic / 400) + 1.0);
  EXPECT_NEAR(est.variance(), analytic, 0.25 * analytic);
}

TEST(CentralWavelet, FullRangeVarianceComesOnlyFromAverageCoefficient) {
  CentralWavelet mech(128, 1.0);
  double full = mech.RangeVariance(0, 127);
  double s0 = mech.AverageNoiseScale();
  // w0 = D / sqrt(D) = sqrt(D); var = w0^2 * 2 s0^2.
  EXPECT_NEAR(full, 128.0 * 2.0 * s0 * s0, 1e-9);
}

TEST(CentralAverageVariance, WaveletAnalyticVsMonteCarloAgree) {
  const uint64_t d = 64;
  const double eps = 1.0;
  double analytic = CentralWaveletAverageVariance(d, eps);
  // Monte Carlo on the zero dataset.
  Rng rng(3);
  double total = 0.0;
  uint64_t queries = 0;
  std::vector<double> zero(d, 0.0);
  for (int t = 0; t < 200; ++t) {
    CentralWavelet mech(d, eps);
    mech.Fit(zero, rng);
    for (uint64_t a = 0; a < d; a += 3) {
      for (uint64_t b = a; b < d; b += 3) {
        double e = mech.RangeQuery(a, b);
        total += e * e;
        ++queries;
      }
    }
  }
  double mc = total / static_cast<double>(queries);
  // The subsampled query grid differs slightly from the full average;
  // agreement within 20% confirms both paths.
  EXPECT_NEAR(mc, analytic, 0.2 * analytic);
}

TEST(CentralAverageVariance, HierarchyMonteCarloStable) {
  Rng rng_a(4);
  Rng rng_b(5);
  const uint64_t d = 128;
  double a = CentralHierarchicalConsistentAverageVariance(d, 1.0, 16, 40,
                                                          rng_a);
  double b = CentralHierarchicalConsistentAverageVariance(d, 1.0, 16, 40,
                                                          rng_b);
  EXPECT_NEAR(a, b, 0.25 * a);
}

TEST(CentralAverageVariance, ConsistencyHelpsHierarchy) {
  Rng rng(6);
  const uint64_t d = 256;
  double raw = CentralHierarchicalAverageVariance(d, 1.0, 16);
  double ci =
      CentralHierarchicalConsistentAverageVariance(d, 1.0, 16, 30, rng);
  EXPECT_LT(ci, raw);
}

TEST(CentralAverageVariance, ReproducesQardajiOrdering) {
  // The Figure 7 shape: centrally, the wavelet is roughly 2-3x worse than
  // the consistent B=16 hierarchy, and HHc2 tracks the wavelet closely.
  Rng rng(7);
  const uint64_t d = 256;
  const double eps = 1.0;
  double wavelet = CentralWaveletAverageVariance(d, eps);
  double hhc16 =
      CentralHierarchicalConsistentAverageVariance(d, eps, 16, 30, rng);
  double hhc2 =
      CentralHierarchicalConsistentAverageVariance(d, eps, 2, 30, rng);
  EXPECT_GT(wavelet / hhc16, 1.5);
  EXPECT_LT(wavelet / hhc16, 5.0);
  EXPECT_GT(hhc2 / hhc16, 1.5);
}

}  // namespace
}  // namespace ldp
