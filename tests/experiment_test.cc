#include "eval/experiment.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/variance.h"
#include "frequency/frequency_oracle.h"

namespace ldp {
namespace {

ExperimentConfig SmallConfig(MethodSpec method) {
  ExperimentConfig config;
  config.domain = 64;
  config.population = 4000;
  config.epsilon = 1.1;
  config.method = method;
  config.trials = 4;
  config.seed = 42;
  config.threads = 2;
  return config;
}

TEST(Experiment, RunsEndToEnd) {
  ExperimentConfig config =
      SmallConfig(MethodSpec::Hh(4, OracleKind::kOueSimulated, true));
  CauchyDistribution dist(config.domain);
  ExperimentResult result =
      RunRangeExperiment(config, dist, QueryWorkload::FixedLength(16));
  EXPECT_EQ(result.per_trial_mse.count(), 4);
  EXPECT_GT(result.mean_mse(), 0.0);
  EXPECT_LT(result.mean_mse(), 0.1);  // sane absolute accuracy
  EXPECT_EQ(result.pooled.count(),
            static_cast<int64_t>(4 * (config.domain - 16 + 1)));
}

TEST(Experiment, DeterministicForFixedSeed) {
  ExperimentConfig config = SmallConfig(MethodSpec::Haar());
  CauchyDistribution dist(config.domain);
  ExperimentResult a =
      RunRangeExperiment(config, dist, QueryWorkload::FixedLength(8));
  ExperimentResult b =
      RunRangeExperiment(config, dist, QueryWorkload::FixedLength(8));
  EXPECT_DOUBLE_EQ(a.mean_mse(), b.mean_mse());
  EXPECT_DOUBLE_EQ(a.stddev_mse(), b.stddev_mse());
}

TEST(Experiment, SeedChangesResults) {
  ExperimentConfig config = SmallConfig(MethodSpec::Haar());
  CauchyDistribution dist(config.domain);
  ExperimentResult a =
      RunRangeExperiment(config, dist, QueryWorkload::FixedLength(8));
  config.seed = 43;
  ExperimentResult b =
      RunRangeExperiment(config, dist, QueryWorkload::FixedLength(8));
  EXPECT_NE(a.mean_mse(), b.mean_mse());
}

TEST(Experiment, ThreadCountDoesNotChangeResults) {
  // Trials are seeded independently (seed + t), so the schedule across
  // threads must not matter.
  ExperimentConfig config =
      SmallConfig(MethodSpec::Hh(2, OracleKind::kOueSimulated, true));
  CauchyDistribution dist(config.domain);
  config.threads = 1;
  ExperimentResult serial =
      RunRangeExperiment(config, dist, QueryWorkload::FixedLength(8));
  config.threads = 4;
  ExperimentResult parallel =
      RunRangeExperiment(config, dist, QueryWorkload::FixedLength(8));
  EXPECT_DOUBLE_EQ(serial.mean_mse(), parallel.mean_mse());
}

TEST(Experiment, MsePooledConsistentWithPerTrial) {
  ExperimentConfig config = SmallConfig(MethodSpec::Haar());
  CauchyDistribution dist(config.domain);
  ExperimentResult result =
      RunRangeExperiment(config, dist, QueryWorkload::FixedLength(16));
  // Equal query counts per trial: pooled MSE == mean of per-trial MSEs.
  EXPECT_NEAR(result.pooled.mse(), result.per_trial_mse.mean(), 1e-12);
}

TEST(Experiment, ErrorScalesInverselyWithPopulation) {
  ExperimentConfig config =
      SmallConfig(MethodSpec::Hh(4, OracleKind::kOueSimulated, true));
  config.trials = 6;
  CauchyDistribution dist(config.domain);
  config.population = 2000;
  double small_n =
      RunRangeExperiment(config, dist, QueryWorkload::FixedLength(16))
          .mean_mse();
  config.population = 32000;
  double large_n =
      RunRangeExperiment(config, dist, QueryWorkload::FixedLength(16))
          .mean_mse();
  // V_F ~ 1/N: a 16x population increase should cut MSE by ~16 (allow wide
  // Monte-Carlo slack, but at least 4x).
  EXPECT_LT(large_n * 4, small_n);
}

TEST(Experiment, EncodePopulationFeedsEveryUser) {
  Rng rng(1);
  Dataset data = Dataset::FromValues({0, 0, 1, 5, 9}, 16);
  auto mech = MakeMechanism(MethodSpec::Haar(), 16, 1.0);
  EncodePopulation(data, *mech, rng);
  EXPECT_EQ(mech->user_count(), 5u);
}

TEST(Experiment, QuantileExperimentShapes) {
  ExperimentConfig config = SmallConfig(MethodSpec::Haar());
  config.population = 20000;
  CauchyDistribution dist(config.domain);
  std::vector<double> phis = {0.25, 0.5, 0.75};
  QuantileExperimentResult result =
      RunQuantileExperiment(config, dist, phis);
  ASSERT_EQ(result.value_error.size(), 3u);
  ASSERT_EQ(result.quantile_error.size(), 3u);
  for (size_t i = 0; i < phis.size(); ++i) {
    EXPECT_EQ(result.value_error[i].count(),
              static_cast<int64_t>(config.trials));
    // Quantile error is a fraction in [0, 1]; with 20k users it is small.
    EXPECT_LT(result.quantile_error[i].mean(), 0.2) << "phi=" << phis[i];
  }
}

TEST(Experiment, RejectsMismatchedDomain) {
  ExperimentConfig config = SmallConfig(MethodSpec::Haar());
  CauchyDistribution wrong(128);
  EXPECT_DEATH(
      RunRangeExperiment(config, wrong, QueryWorkload::FixedLength(4)), "");
}

}  // namespace
}  // namespace ldp
