#include "core/haar_hrr.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "core/variance.h"
#include "frequency/frequency_oracle.h"

namespace ldp {
namespace {

TEST(HaarHrr, GeometryAndName) {
  HaarHrrMechanism mech(256, 1.0);
  EXPECT_EQ(mech.Name(), "HaarHRR");
  EXPECT_EQ(mech.padded_domain(), 256u);
  EXPECT_EQ(mech.height(), 8u);
  HaarHrrMechanism padded(100, 1.0);
  EXPECT_EQ(padded.padded_domain(), 128u);
}

TEST(HaarHrr, NoiselessRecoversRangeAnswers) {
  Rng rng(1);
  HaarHrrMechanism mech(64, 60.0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    mech.EncodeUser(i % 4 == 0 ? 10 : 40, rng);
  }
  mech.Finalize(rng);
  EXPECT_NEAR(mech.RangeQuery(0, 31), 0.25, 0.02);
  EXPECT_NEAR(mech.RangeQuery(32, 63), 0.75, 0.02);
  EXPECT_NEAR(mech.RangeQuery(10, 10), 0.25, 0.02);
  EXPECT_NEAR(mech.RangeQuery(40, 40), 0.75, 0.02);
  EXPECT_NEAR(mech.RangeQuery(0, 63), 1.0, 1e-9);  // c0 is exact
}

TEST(HaarHrr, FullDomainQueryIsExactlyOne) {
  // Every detail coefficient has zero weight for the full range and c0 is
  // hardcoded: the answer must be exactly 1 regardless of noise.
  Rng rng(2);
  HaarHrrMechanism mech(128, 0.2);  // very noisy
  for (int i = 0; i < 1000; ++i) {
    mech.EncodeUser(i % 128, rng);
  }
  mech.Finalize(rng);
  EXPECT_NEAR(mech.RangeQuery(0, 127), 1.0, 1e-12);
}

TEST(HaarHrr, EstimatesUnbiased) {
  const uint64_t d = 64;
  const double eps = 1.1;
  const int trials = 150;
  const int n = 4000;
  RunningStat range_est;
  Rng rng(3);
  for (int t = 0; t < trials; ++t) {
    HaarHrrMechanism mech(d, eps);
    for (int i = 0; i < n; ++i) {
      mech.EncodeUser(i % 32, rng);
    }
    mech.Finalize(rng);
    range_est.Add(mech.RangeQuery(8, 23));  // truth 0.5
  }
  EXPECT_NEAR(range_est.mean(), 0.5,
              5 * std::sqrt(range_est.sample_variance() / trials) + 0.01);
}

TEST(HaarHrr, CoefficientEstimatesMatchTrueSpectrum) {
  Rng rng(4);
  const uint64_t d = 32;
  HaarHrrMechanism mech(d, 60.0);
  const int n = 300000;
  std::vector<double> freq(d, 0.0);
  for (int i = 0; i < n; ++i) {
    uint64_t z = (i * 7) % d;
    freq[z] += 1.0 / n;
    mech.EncodeUser(z, rng);
  }
  mech.Finalize(rng);
  HaarCoefficients truth = HaarForward(freq);
  const HaarCoefficients& est = mech.coefficients();
  EXPECT_NEAR(est.average, truth.average, 1e-12);
  for (uint32_t l = 1; l <= est.height; ++l) {
    for (size_t k = 0; k < est.detail[l - 1].size(); ++k) {
      EXPECT_NEAR(est.detail[l - 1][k], truth.detail[l - 1][k], 0.02)
          << "l=" << l << " k=" << k;
    }
  }
}

TEST(HaarHrr, VarianceWithinEq3Envelope) {
  // Eq. 3: Vr <= (1/2) log2(D)^2 V_F for any range — check a worst-ish
  // case range against the bound (using HRR's exact V_F).
  const uint64_t d = 256;
  const double eps = 1.1;
  const int n = 2000;
  const int trials = 250;
  RunningStat est;
  Rng rng(5);
  for (int t = 0; t < trials; ++t) {
    HaarHrrMechanism mech(d, eps);
    for (int i = 0; i < n; ++i) {
      mech.EncodeUser(i % d, rng);
    }
    mech.Finalize(rng);
    est.Add(mech.RangeQuery(13, 201));
  }
  double e = std::exp(eps);
  double exact_vf = (e + 1) * (e + 1) / (n * (e - 1) * (e - 1));
  double h = std::log2(static_cast<double>(d));
  double bound = 0.5 * h * h * exact_vf;
  EXPECT_LT(est.variance(), bound);
  EXPECT_GT(est.variance(), bound / 30.0);
}

TEST(HaarHrr, VarianceIndependentOfRangeLength) {
  // The Eq. 3 bound does not depend on r; short and long ranges should
  // have variances within a small constant of each other (unlike flat).
  const uint64_t d = 256;
  const double eps = 1.1;
  const int n = 2000;
  const int trials = 300;
  RunningStat short_range;
  RunningStat long_range;
  Rng rng(6);
  for (int t = 0; t < trials; ++t) {
    HaarHrrMechanism mech(d, eps);
    for (int i = 0; i < n; ++i) {
      mech.EncodeUser(i % d, rng);
    }
    mech.Finalize(rng);
    short_range.Add(mech.RangeQuery(100, 107));   // r = 8
    long_range.Add(mech.RangeQuery(3, 220));      // r = 218
  }
  EXPECT_LT(long_range.variance() / short_range.variance(), 3.0);
  EXPECT_GT(long_range.variance() / short_range.variance(), 1.0 / 3.0);
}

TEST(HaarHrr, EstimateFrequenciesMatchesInverseTransform) {
  Rng rng(7);
  HaarHrrMechanism mech(32, 1.0);
  for (int i = 0; i < 5000; ++i) {
    mech.EncodeUser(i % 32, rng);
  }
  mech.Finalize(rng);
  std::vector<double> freq = mech.EstimateFrequencies();
  ASSERT_EQ(freq.size(), 32u);
  // Point queries must agree with the frequency vector.
  for (uint64_t z = 0; z < 32; z += 5) {
    EXPECT_NEAR(mech.PointQuery(z), freq[z], 1e-9);
  }
  // And the frequency vector sums to 1 exactly (c0 pinned).
  double sum = 0.0;
  for (double f : freq) {
    sum += f;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(HaarHrr, ReportIsAFewBits) {
  HaarHrrMechanism mech(1 << 16, 1.0);
  // Level id (4 bits) + average over levels of (log2(D/2^l) + 1) bits.
  EXPECT_LT(mech.ReportBits(), 24.0);
  EXPECT_GT(mech.ReportBits(), 4.0);
}

TEST(HaarHrr, GuardsAgainstMisuse) {
  Rng rng(8);
  HaarHrrMechanism mech(16, 1.0);
  EXPECT_DEATH(mech.RangeQuery(0, 3), "Finalize");
  EXPECT_DEATH(mech.coefficients(), "Finalize");
  mech.EncodeUser(3, rng);
  mech.Finalize(rng);
  EXPECT_DEATH(mech.Finalize(rng), "twice");
  EXPECT_DEATH(mech.EncodeUser(3, rng), "Finalize");
}

}  // namespace
}  // namespace ldp
