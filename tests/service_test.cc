// The aggregator service end to end: every mechanism family streamed
// through the identical bytes-in -> query-response-bytes-out path, with
// the in-process batch path as the bit-for-bit reference; plus the
// shared ServerStats accounting, session hygiene (duplicates,
// reordering, incompleteness), and worker-count determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/random.h"
#include "protocol/ahead_protocol.h"
#include "protocol/flat_protocol.h"
#include "protocol/haar_protocol.h"
#include "protocol/tree_protocol.h"
#include "service/aggregator_service.h"
#include "service/server_factory.h"
#include "service/stream_wire.h"

namespace ldp {
namespace {

using protocol::ParseError;
using service::AggregatorServer;
using service::AggregatorService;
using service::AllServerSpecs;
using service::IntervalEstimate;
using service::MakeAggregatorServer;
using service::QueryInterval;
using service::QueryStatus;
using service::RangeQueryRequest;
using service::RangeQueryResponse;
using service::ServerKind;
using service::ServerKindName;
using service::ServerSpec;
using service::StreamBegin;
using service::StreamEnd;

constexpr uint64_t kDomain = 256;
constexpr double kEps = 1.0;
constexpr uint64_t kUsers = 4000;
constexpr int kChunks = 5;

std::vector<uint64_t> TestValues(uint64_t n, uint64_t domain) {
  std::vector<uint64_t> values;
  values.reserve(n);
  Rng rng(0xC0FFEE);
  for (uint64_t i = 0; i < n; ++i) {
    // A lumpy distribution so range estimates are far from uniform.
    values.push_back(rng.Bernoulli(0.6) ? rng.UniformInt(domain / 8)
                                        : rng.UniformInt(domain));
  }
  return values;
}

// Splits `values` into kChunks batch messages for one non-AHEAD
// mechanism. The same bytes feed both the reference server and the
// streamed service, so their aggregates must agree bit for bit.
std::vector<std::vector<uint8_t>> EncodeChunks(
    const ServerSpec& spec, const std::vector<uint64_t>& values,
    uint64_t seed) {
  std::vector<std::vector<uint8_t>> chunks;
  uint64_t per_chunk = (values.size() + kChunks - 1) / kChunks;
  for (int c = 0; c < kChunks; ++c) {
    uint64_t begin = c * per_chunk;
    uint64_t end = std::min<uint64_t>(values.size(), begin + per_chunk);
    if (begin >= end) break;
    std::span<const uint64_t> slice(values.data() + begin, end - begin);
    Rng rng(seed + c);
    switch (spec.kind) {
      case ServerKind::kFlat: {
        protocol::FlatHrrClient client(spec.domain, spec.eps);
        chunks.push_back(client.EncodeUsersSerialized(slice, rng));
        break;
      }
      case ServerKind::kHaar: {
        protocol::HaarHrrClient client(spec.domain, spec.eps);
        chunks.push_back(client.EncodeUsersSerialized(slice, rng));
        break;
      }
      case ServerKind::kTree: {
        protocol::TreeHrrClient client(spec.domain, spec.fanout, spec.eps);
        chunks.push_back(client.EncodeUsersSerialized(slice, rng));
        break;
      }
      case ServerKind::kAhead:
        ADD_FAILURE() << "AHEAD uses the two-phase driver";
        break;
      case ServerKind::kGrid:
        ADD_FAILURE() << "the grid streams multidim batches, not 1-D";
        break;
    }
  }
  return chunks;
}

// Streams `chunks` as one session (sequences in send order) and
// finalizes via the kStreamEnd flag.
void StreamSession(AggregatorService& svc, uint64_t session_id,
                   uint64_t server_id,
                   const std::vector<std::vector<uint8_t>>& chunks,
                   bool finalize) {
  svc.HandleMessage(service::SerializeStreamBegin({session_id, server_id}));
  for (size_t c = 0; c < chunks.size(); ++c) {
    svc.HandleMessage(service::SerializeStreamChunk(session_id, c,
                                                    chunks[c]));
  }
  StreamEnd end;
  end.session_id = session_id;
  end.chunk_count = chunks.size();
  end.flags = finalize ? service::kStreamFlagFinalize : 0;
  svc.HandleMessage(service::SerializeStreamEnd(end));
}

RangeQueryResponse QueryOverWire(AggregatorService& svc, uint64_t server_id,
                                 std::vector<QueryInterval> intervals,
                                 uint64_t query_id = 7) {
  RangeQueryRequest request;
  request.query_id = query_id;
  request.server_id = server_id;
  request.intervals = std::move(intervals);
  std::vector<uint8_t> bytes =
      svc.HandleMessage(service::SerializeRangeQueryRequest(request));
  RangeQueryResponse response;
  EXPECT_EQ(service::ParseRangeQueryResponse(bytes, &response),
            ParseError::kOk);
  return response;
}

// --- ServerStats: one shared accounting struct for all four servers ----

TEST(ServerStats, AllServersReportThroughTheSharedStruct) {
  for (const ServerSpec& spec : AllServerSpecs(64, 1.0)) {
    SCOPED_TRACE(ServerKindName(spec.kind));
    std::unique_ptr<AggregatorServer> server = MakeAggregatorServer(spec);
    EXPECT_EQ(server->stats().ingested(), 0u);

    // One garbage buffer: exactly one rejection, through the base-class
    // interface, visible in both the struct and the legacy accessors.
    const uint8_t junk[] = {0xDE, 0xAD, 0xBE, 0xEF};
    EXPECT_FALSE(server->AbsorbSerialized(junk));
    EXPECT_EQ(server->stats().rejected, 1u);
    EXPECT_EQ(server->rejected_reports(), server->stats().rejected);
    EXPECT_EQ(server->accepted_reports(), server->stats().accepted);
    EXPECT_EQ(server->stats().ingested(), 1u);

    // A structurally-broken batch message counts one more rejection.
    std::vector<uint8_t> truncated = {0x4C, 0x52, 0x02};
    uint64_t accepted = 1234;
    EXPECT_NE(server->AbsorbBatchSerialized(truncated, &accepted),
              ParseError::kOk);
    EXPECT_EQ(accepted, 0u);
    EXPECT_EQ(server->stats().rejected, 2u);
    EXPECT_EQ(server->stats().accepted, 0u);
  }
}

TEST(ServerStats, AcceptedReportsFlowThroughTheStruct) {
  ServerSpec spec;
  spec.kind = ServerKind::kHaar;
  spec.domain = 64;
  spec.eps = 1.0;
  std::unique_ptr<AggregatorServer> server = MakeAggregatorServer(spec);
  protocol::HaarHrrClient client(64, 1.0);
  Rng rng(11);
  std::vector<uint64_t> values(100, 3);
  std::vector<uint8_t> batch = client.EncodeUsersSerialized(values, rng);
  uint64_t accepted = 0;
  ASSERT_EQ(server->AbsorbBatchSerialized(batch, &accepted), ParseError::kOk);
  EXPECT_EQ(accepted, 100u);
  EXPECT_EQ(server->stats().accepted, 100u);
  EXPECT_EQ(server->stats().rejected, 0u);
}

// --- End to end: streamed bytes in, query-response bytes out -----------

class ServiceEndToEnd : public ::testing::TestWithParam<ServerKind> {};

INSTANTIATE_TEST_SUITE_P(AllKinds, ServiceEndToEnd,
                         ::testing::Values(ServerKind::kFlat,
                                           ServerKind::kHaar,
                                           ServerKind::kTree),
                         [](const auto& info) {
                           return ServerKindName(info.param);
                         });

TEST_P(ServiceEndToEnd, StreamedMatchesInProcessBitForBit) {
  ServerSpec spec;
  spec.kind = GetParam();
  spec.domain = kDomain;
  spec.eps = kEps;
  std::vector<uint64_t> values = TestValues(kUsers, kDomain);
  std::vector<std::vector<uint8_t>> chunks =
      EncodeChunks(spec, values, /*seed=*/42);

  // Reference: the one-shot in-process batch path.
  std::unique_ptr<AggregatorServer> reference = MakeAggregatorServer(spec);
  for (const std::vector<uint8_t>& chunk : chunks) {
    ASSERT_EQ(reference->AbsorbBatchSerialized(chunk), ParseError::kOk);
  }
  reference->Finalize();

  // Streamed: the same bytes through the service.
  AggregatorService svc(/*worker_threads=*/3);
  uint64_t id = svc.AddServer(MakeAggregatorServer(spec));
  StreamSession(svc, /*session_id=*/1, id, chunks, /*finalize=*/true);
  svc.Drain();
  ASSERT_TRUE(svc.server_finalized(id));
  EXPECT_EQ(svc.server(id).stats(), reference->stats());
  EXPECT_EQ(svc.server(id).EstimateFrequencies(),
            reference->EstimateFrequencies());

  // Query over the wire; answers must equal the in-process estimates
  // exactly (same finalized state, same query math).
  std::vector<QueryInterval> intervals = {
      {0, kDomain - 1}, {3, 17}, {100, 200}, {31, 31}};
  RangeQueryResponse response = QueryOverWire(svc, id, intervals);
  ASSERT_EQ(response.status, QueryStatus::kOk);
  ASSERT_EQ(response.estimates.size(), intervals.size());
  for (size_t i = 0; i < intervals.size(); ++i) {
    RangeEstimate expected = reference->RangeQueryWithUncertainty(
        intervals[i].lo, intervals[i].hi);
    EXPECT_EQ(response.estimates[i].estimate, expected.value) << i;
    EXPECT_EQ(response.estimates[i].variance,
              expected.stddev * expected.stddev)
        << i;
  }
}

TEST(ServiceEndToEnd, AheadTwoPhaseStreamedMatchesInProcess) {
  ServerSpec spec;
  spec.kind = ServerKind::kAhead;
  spec.domain = kDomain;
  spec.eps = kEps;
  std::vector<uint64_t> values = TestValues(kUsers, kDomain);
  std::span<const uint64_t> phase1(values.data(), values.size() / 2);
  std::span<const uint64_t> phase2(values.data() + values.size() / 2,
                                   values.size() - values.size() / 2);

  protocol::AheadClient client(kDomain, spec.fanout, kEps);
  std::vector<std::vector<uint8_t>> phase1_chunks;
  {
    Rng rng(5);
    std::vector<protocol::AheadWireReport> reports;
    for (uint64_t v : phase1) reports.push_back(client.EncodePhase1(v, rng));
    size_t half = reports.size() / 2;
    phase1_chunks.push_back(protocol::SerializeAheadReportBatch(
        std::span<const protocol::AheadWireReport>(reports.data(), half)));
    phase1_chunks.push_back(protocol::SerializeAheadReportBatch(
        std::span<const protocol::AheadWireReport>(reports.data() + half,
                                                   reports.size() - half)));
  }

  // Reference server: phase 1, tree, phase 2, finalize — all in-process.
  protocol::AheadServer reference(kDomain, spec.fanout, kEps);
  for (const auto& chunk : phase1_chunks) {
    ASSERT_EQ(reference.AbsorbBatchSerialized(chunk), ParseError::kOk);
  }
  std::vector<uint8_t> tree_msg = reference.BuildTree();
  ASSERT_TRUE(client.AbsorbTreeDescription(tree_msg));
  std::vector<std::vector<uint8_t>> phase2_chunks;
  {
    Rng rng(6);
    std::vector<protocol::AheadWireReport> reports =
        client.EncodePhase2Users(phase2, rng);
    size_t half = reports.size() / 2;
    phase2_chunks.push_back(protocol::SerializeAheadReportBatch(
        std::span<const protocol::AheadWireReport>(reports.data(), half)));
    phase2_chunks.push_back(protocol::SerializeAheadReportBatch(
        std::span<const protocol::AheadWireReport>(reports.data() + half,
                                                   reports.size() - half)));
  }
  for (const auto& chunk : phase2_chunks) {
    ASSERT_EQ(reference.AbsorbBatchSerialized(chunk), ParseError::kOk);
  }
  reference.Finalize();

  // Streamed: phase-1 session, tree broadcast, phase-2 session with the
  // finalize flag — the full protocol over serialized bytes.
  AggregatorService svc(/*worker_threads=*/2);
  uint64_t id = svc.AddServer(MakeAggregatorServer(spec));
  StreamSession(svc, /*session_id=*/1, id, phase1_chunks,
                /*finalize=*/false);
  svc.Drain();
  auto& streamed = dynamic_cast<protocol::AheadServer&>(svc.server(id));
  EXPECT_EQ(streamed.BuildTree(), tree_msg);  // identical decomposition
  StreamSession(svc, /*session_id=*/2, id, phase2_chunks,
                /*finalize=*/true);
  svc.Drain();
  ASSERT_TRUE(svc.server_finalized(id));

  EXPECT_EQ(streamed.stats(), reference.stats());
  EXPECT_EQ(streamed.EstimateFrequencies(), reference.EstimateFrequencies());
  RangeQueryResponse response =
      QueryOverWire(svc, id, {{0, 63}, {10, 250}});
  ASSERT_EQ(response.status, QueryStatus::kOk);
  EXPECT_EQ(response.estimates[0].estimate, reference.RangeQuery(0, 63));
  EXPECT_EQ(response.estimates[1].estimate, reference.RangeQuery(10, 250));
}

// --- Determinism and session hygiene -----------------------------------

TEST(ServiceDeterminism, FinalStateIsInvariantAcrossWorkerCounts) {
  ServerSpec spec;
  spec.kind = ServerKind::kTree;
  spec.domain = kDomain;
  spec.eps = kEps;
  std::vector<uint64_t> values = TestValues(kUsers, kDomain);
  std::vector<std::vector<uint8_t>> chunks = EncodeChunks(spec, values, 9);

  std::vector<double> reference_frequencies;
  // 0 = inline mode (no pool); the pooled counts must match it bitwise.
  for (unsigned workers : {0u, 1u, 3u, 8u}) {
    SCOPED_TRACE(workers);
    AggregatorService svc(workers);
    uint64_t id = svc.AddServer(MakeAggregatorServer(spec));
    // Two concurrent mechanism instances so the pool actually
    // interleaves strands; the second is a bystander whose presence must
    // not perturb the first.
    uint64_t other = svc.AddServer(MakeAggregatorServer(spec));
    svc.HandleMessage(service::SerializeStreamBegin({77, other}));
    svc.HandleMessage(
        service::SerializeStreamChunk(77, 0, chunks.front()));
    StreamSession(svc, /*session_id=*/1, id, chunks, /*finalize=*/true);
    svc.Drain();
    std::vector<double> frequencies = svc.server(id).EstimateFrequencies();
    if (reference_frequencies.empty()) {
      reference_frequencies = frequencies;
    } else {
      EXPECT_EQ(frequencies, reference_frequencies);  // bit-identical
    }
  }
}

TEST(ServiceSessions, OutOfOrderAndDuplicateChunksAreHandled) {
  ServerSpec spec;
  spec.kind = ServerKind::kHaar;
  spec.domain = kDomain;
  spec.eps = kEps;
  std::vector<uint64_t> values = TestValues(kUsers, kDomain);
  std::vector<std::vector<uint8_t>> chunks = EncodeChunks(spec, values, 3);
  ASSERT_GE(chunks.size(), 3u);

  std::unique_ptr<AggregatorServer> reference = MakeAggregatorServer(spec);
  for (const auto& chunk : chunks) {
    ASSERT_EQ(reference->AbsorbBatchSerialized(chunk), ParseError::kOk);
  }
  reference->Finalize();

  AggregatorService svc(/*worker_threads=*/2);
  uint64_t id = svc.AddServer(MakeAggregatorServer(spec));
  svc.HandleMessage(service::SerializeStreamBegin({1, id}));
  // Reversed order, with sequence 0 replayed twice.
  for (size_t c = chunks.size(); c-- > 0;) {
    svc.HandleMessage(service::SerializeStreamChunk(1, c, chunks[c]));
  }
  svc.HandleMessage(service::SerializeStreamChunk(1, 0, chunks[0]));
  StreamEnd end;
  end.session_id = 1;
  end.chunk_count = chunks.size();
  end.flags = service::kStreamFlagFinalize;
  svc.HandleMessage(service::SerializeStreamEnd(end));
  svc.Drain();

  EXPECT_EQ(svc.stats().duplicate_chunks, 1u);
  ASSERT_TRUE(svc.server_finalized(id));
  // Counter aggregates commute: reordering cannot change the state.
  EXPECT_EQ(svc.server(id).EstimateFrequencies(),
            reference->EstimateFrequencies());
}

TEST(ServiceSessions, IncompleteStreamDoesNotFinalize) {
  ServerSpec spec;
  spec.kind = ServerKind::kFlat;
  spec.domain = 64;
  spec.eps = kEps;
  AggregatorService svc(1);
  uint64_t id = svc.AddServer(MakeAggregatorServer(spec));
  svc.HandleMessage(service::SerializeStreamBegin({1, id}));
  // Declares two chunks but only one was sent.
  std::vector<uint64_t> values(50, 7);
  std::vector<std::vector<uint8_t>> chunks =
      EncodeChunks(spec, values, /*seed=*/1);
  svc.HandleMessage(service::SerializeStreamChunk(1, 0, chunks[0]));
  StreamEnd end;
  end.session_id = 1;
  end.chunk_count = 2;
  end.flags = service::kStreamFlagFinalize;
  svc.HandleMessage(service::SerializeStreamEnd(end));
  svc.Drain();
  EXPECT_EQ(svc.stats().incomplete_streams, 1u);
  EXPECT_FALSE(svc.server_finalized(id));
  // The typed error surfaces on the query plane.
  RangeQueryResponse response = QueryOverWire(svc, id, {{0, 10}});
  EXPECT_EQ(response.status, QueryStatus::kNotFinalized);
  EXPECT_TRUE(response.estimates.empty());
}

TEST(ServiceSessions, DuplicateAndUnknownSessionsAreCounted) {
  ServerSpec spec;
  spec.kind = ServerKind::kFlat;
  spec.domain = 64;
  spec.eps = kEps;
  AggregatorService svc(1);
  uint64_t id = svc.AddServer(MakeAggregatorServer(spec));
  svc.HandleMessage(service::SerializeStreamBegin({5, id}));
  svc.HandleMessage(service::SerializeStreamBegin({5, id}));  // duplicate
  EXPECT_EQ(svc.stats().duplicate_sessions, 1u);
  // Chunk and end for a session that never began.
  std::vector<uint64_t> values(10, 1);
  std::vector<std::vector<uint8_t>> chunks = EncodeChunks(spec, values, 2);
  svc.HandleMessage(service::SerializeStreamChunk(999, 0, chunks[0]));
  svc.HandleMessage(service::SerializeStreamEnd({999, 1, 0}));
  EXPECT_EQ(svc.stats().unknown_sessions, 2u);
  // A chunk after the session ended is late, not absorbed; a replayed
  // end is a retry, counted with the other duplicates.
  svc.HandleMessage(service::SerializeStreamEnd({5, 0, 0}));
  svc.HandleMessage(service::SerializeStreamChunk(5, 0, chunks[0]));
  EXPECT_EQ(svc.stats().late_chunks, 1u);
  svc.HandleMessage(service::SerializeStreamEnd({5, 0, 0}));
  EXPECT_EQ(svc.stats().duplicate_sessions, 2u);
  EXPECT_EQ(svc.stats().malformed_messages, 0u);
  svc.Drain();
  EXPECT_EQ(svc.server(id).stats().ingested(), 0u);
}

TEST(ServiceRouting, UnroutableMessagesAreCountedNotCrashed) {
  AggregatorService svc(1);
  ServerSpec spec;
  spec.kind = ServerKind::kFlat;
  spec.domain = 64;
  spec.eps = kEps;
  svc.AddServer(MakeAggregatorServer(spec));
  // Garbage, then a well-formed but unroutable bare report.
  const uint8_t junk[] = {0x00, 0x01, 0x02};
  EXPECT_TRUE(svc.HandleMessage(junk).empty());
  HrrReport report{3, +1};
  EXPECT_TRUE(
      svc.HandleMessage(protocol::SerializeHrrReport(report)).empty());
  EXPECT_EQ(svc.stats().malformed_messages, 2u);
}

// A server whose batch absorb blocks on an external gate, so a test can
// hold the (single) worker inside the strand while chunks pile up behind
// it. Queries are inert; only the ingestion path matters here.
class GatedServer : public AggregatorServer {
 public:
  std::string Name() const override { return "Gated"; }
  uint64_t domain() const override { return 1; }
  bool AbsorbSerialized(std::span<const uint8_t>) override { return true; }
  ParseError DoAbsorbBatchSerialized(std::span<const uint8_t>,
                                   uint64_t* accepted) override {
    absorbing_.store(true, std::memory_order_release);
    std::unique_lock<std::mutex> lock(mu_);
    gate_cv_.wait(lock, [&] { return open_; });
    batches_.fetch_add(1, std::memory_order_relaxed);
    if (accepted != nullptr) *accepted = 1;
    return ParseError::kOk;
  }
  double RangeQuery(uint64_t, uint64_t) const override { return 0.0; }
  RangeEstimate RangeQueryWithUncertainty(uint64_t, uint64_t) const override {
    return {0.0, 0.0};
  }
  std::vector<double> EstimateFrequencies() const override { return {0.0}; }

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    gate_cv_.notify_all();
  }
  bool absorbing() const { return absorbing_.load(std::memory_order_acquire); }
  uint64_t batches() const {
    return batches_.load(std::memory_order_relaxed);
  }

 protected:
  void DoFinalize() override {}
  // Inert state plumbing: this double exercises the strand, never the
  // fan-in plane.
  service::StateKind state_kind() const override {
    return service::StateKind::kFlat;
  }
  double state_epsilon() const override { return 1.0; }
  void AppendStateBody(std::vector<uint8_t>&) const override {}
  bool RestoreStateBody(std::span<const uint8_t>) override { return true; }
  std::unique_ptr<AggregatorServer> DoCloneEmpty() const override {
    return nullptr;
  }
  service::MergeStatus DoMergeFrom(AggregatorServer&) override {
    return service::MergeStatus::kOk;
  }

 private:
  std::mutex mu_;
  std::condition_variable gate_cv_;
  bool open_ = false;
  std::atomic<bool> absorbing_{false};
  std::atomic<uint64_t> batches_{0};
};

// Polls `pred` until it holds or a generous deadline passes. The waits in
// this test are all bounded by worker progress, not wall-clock sleeps.
template <typename Pred>
bool EventuallyTrue(Pred&& pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(ServiceBackpressure, FullQueueBlocksProducerUntilDrain) {
  // One worker, queue bound of 2: with the worker held inside an absorb,
  // two more chunks fill the queue and the next enqueue must BLOCK (not
  // drop) until the strand drains — and every admitted chunk must still
  // be absorbed exactly once.
  auto owned = std::make_unique<GatedServer>();
  GatedServer* gated = owned.get();
  AggregatorService svc(/*worker_threads=*/1, /*queue_high_water=*/2);
  const uint64_t server_id = svc.AddServer(std::move(owned));
  const uint64_t session_id = 77;
  svc.HandleMessage(service::SerializeStreamBegin({session_id, server_id}));

  const std::vector<uint8_t> payload = {0xAB};
  // Chunk 0 is claimed by the worker, which then parks inside the gate.
  svc.HandleMessage(service::SerializeStreamChunk(session_id, 0, payload));
  ASSERT_TRUE(EventuallyTrue([&] { return gated->absorbing(); }));
  // Chunks 1 and 2 queue up behind the held strand (bound not yet hit).
  svc.HandleMessage(service::SerializeStreamChunk(session_id, 1, payload));
  svc.HandleMessage(service::SerializeStreamChunk(session_id, 2, payload));
  EXPECT_EQ(svc.stats().chunks_enqueued, 3u);
  EXPECT_EQ(svc.stats().backpressure_waits, 0u);

  // Chunk 3 hits the high-water mark: the producer thread must block
  // inside HandleMessage until the worker drains the queue.
  std::thread producer([&] {
    svc.HandleMessage(service::SerializeStreamChunk(session_id, 3, payload));
  });
  ASSERT_TRUE(
      EventuallyTrue([&] { return svc.stats().backpressure_waits >= 1; }));
  // Still blocked: the fourth chunk has not been admitted to the queue.
  EXPECT_EQ(svc.stats().chunks_enqueued, 3u);

  gated->Open();
  producer.join();
  svc.Drain();
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.chunks_enqueued, 4u);
  EXPECT_EQ(stats.chunks_absorbed, 4u);
  EXPECT_EQ(stats.backpressure_waits, 1u);
  EXPECT_EQ(gated->batches(), 4u);
  EXPECT_TRUE(svc.FinalizeServer(server_id));
}

TEST(ServiceBackpressure, BlockedProducerDoesNotStallOtherServers) {
  // Regression for a blocking-producer hazard: a producer blocked on one
  // server's full queue waits on queue_space_ with the service mutex
  // RELEASED — it must not hold the session map hostage. With a second
  // worker free, a session against a different server must begin,
  // stream, end and finalize to completion while the first producer is
  // still blocked.
  auto owned_gated = std::make_unique<GatedServer>();
  GatedServer* gated = owned_gated.get();
  auto owned_free = std::make_unique<GatedServer>();
  GatedServer* free_server = owned_free.get();
  free_server->Open();  // never parks
  AggregatorService svc(/*worker_threads=*/2, /*queue_high_water=*/1);
  const uint64_t gated_id = svc.AddServer(std::move(owned_gated));
  const uint64_t free_id = svc.AddServer(std::move(owned_free));

  const std::vector<uint8_t> payload = {0xEE};
  svc.HandleMessage(service::SerializeStreamBegin({1, gated_id}));
  // Chunk 0 parks worker 1 inside the gate; chunk 1 fills the queue.
  svc.HandleMessage(service::SerializeStreamChunk(1, 0, payload));
  ASSERT_TRUE(EventuallyTrue([&] { return gated->absorbing(); }));
  svc.HandleMessage(service::SerializeStreamChunk(1, 1, payload));
  std::thread producer([&] {
    svc.HandleMessage(service::SerializeStreamChunk(1, 2, payload));
  });
  ASSERT_TRUE(
      EventuallyTrue([&] { return svc.stats().backpressure_waits >= 1; }));

  // The free server's whole lifecycle completes under the blockade.
  svc.HandleMessage(service::SerializeStreamBegin({2, free_id}));
  svc.HandleMessage(service::SerializeStreamChunk(2, 0, payload));
  StreamEnd end;
  end.session_id = 2;
  end.chunk_count = 1;
  end.flags = service::kStreamFlagFinalize;
  svc.HandleMessage(service::SerializeStreamEnd(end));
  ASSERT_TRUE(EventuallyTrue([&] { return svc.server_finalized(free_id); }));
  EXPECT_EQ(free_server->batches(), 1u);
  // The gated producer is still blocked the whole time.
  EXPECT_EQ(svc.stats().chunks_enqueued, 3u);

  gated->Open();
  producer.join();
  svc.Drain();
  EXPECT_EQ(gated->batches(), 3u);
  EXPECT_EQ(svc.stats().chunks_absorbed, 4u);
}

TEST(ServiceSessions, OversizedEndDeclarationRejectedSessionStaysLive) {
  // kStreamEnd declaring more chunks than a session can ever admit is
  // rejected with its own counter — NOT silently filed as incomplete —
  // and the session stays live so a corrected declaration still lands.
  ServerSpec spec;
  spec.kind = ServerKind::kHaar;
  spec.domain = kDomain;
  spec.eps = kEps;
  AggregatorService svc(/*worker_threads=*/0);
  const uint64_t server_id = svc.AddServer(MakeAggregatorServer(spec));
  const auto chunks =
      EncodeChunks(spec, TestValues(200, kDomain), /*seed=*/0x0E);
  svc.HandleMessage(service::SerializeStreamBegin({9, server_id}));
  svc.HandleMessage(service::SerializeStreamChunk(9, 0, chunks[0]));

  StreamEnd bogus;
  bogus.session_id = 9;
  bogus.chunk_count = service::IngestSession::kMaxSequences + 1;
  bogus.flags = service::kStreamFlagFinalize;
  svc.HandleMessage(service::SerializeStreamEnd(bogus));
  EXPECT_EQ(svc.stats().oversized_declarations, 1u);
  EXPECT_EQ(svc.stats().incomplete_streams, 0u);
  EXPECT_FALSE(svc.server_finalized(server_id));

  // Still live: another chunk and an honest end complete the session.
  svc.HandleMessage(service::SerializeStreamChunk(9, 1, chunks[1]));
  StreamEnd honest;
  honest.session_id = 9;
  honest.chunk_count = 2;
  honest.flags = service::kStreamFlagFinalize;
  svc.HandleMessage(service::SerializeStreamEnd(honest));
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.oversized_declarations, 1u);
  EXPECT_EQ(stats.incomplete_streams, 0u);
  EXPECT_EQ(stats.late_chunks, 0u);
  EXPECT_EQ(stats.chunks_absorbed, 2u);
  EXPECT_TRUE(svc.server_finalized(server_id));
}

TEST(ServiceBackpressure, InlineModeNeverQueuesOrWaits) {
  // 0 workers absorbs synchronously inside HandleMessage — the bound is
  // irrelevant and nothing ever blocks, even with a 1-chunk high water.
  auto owned = std::make_unique<GatedServer>();
  GatedServer* gated = owned.get();
  gated->Open();  // inline absorb must not park the caller
  AggregatorService svc(/*worker_threads=*/0, /*queue_high_water=*/1);
  const uint64_t server_id = svc.AddServer(std::move(owned));
  svc.HandleMessage(service::SerializeStreamBegin({5, server_id}));
  const std::vector<uint8_t> payload = {0xCD};
  for (uint64_t c = 0; c < 6; ++c) {
    svc.HandleMessage(service::SerializeStreamChunk(5, c, payload));
  }
  EXPECT_EQ(svc.stats().chunks_absorbed, 6u);
  EXPECT_EQ(svc.stats().backpressure_waits, 0u);
  EXPECT_EQ(gated->batches(), 6u);
}

}  // namespace
}  // namespace ldp
