#include "core/method.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace ldp {
namespace {

TEST(MethodSpec, NamesMatchPaperLabels) {
  EXPECT_EQ(MethodSpec::Flat(OracleKind::kOue).Name(), "Flat-OUE");
  EXPECT_EQ(MethodSpec::Hh(2, OracleKind::kOueSimulated, true).Name(),
            "HHc2");
  EXPECT_EQ(MethodSpec::Hh(16, OracleKind::kOueSimulated, false).Name(),
            "HH16");
  EXPECT_EQ(MethodSpec::Hh(4, OracleKind::kHrr, true).Name(), "HHc4-HRR");
  EXPECT_EQ(MethodSpec::Haar().Name(), "HaarHRR");
}

TEST(MethodSpec, FactoryInstantiatesEveryFamily) {
  Rng rng(1);
  for (const MethodSpec& spec :
       {MethodSpec::Flat(OracleKind::kOueSimulated),
        MethodSpec::Hh(4, OracleKind::kOueSimulated, true),
        MethodSpec::Hh(2, OracleKind::kHrr, false), MethodSpec::Haar()}) {
    auto mech = MakeMechanism(spec, 64, 1.0);
    ASSERT_NE(mech, nullptr) << spec.Name();
    EXPECT_EQ(mech->domain_size(), 64u);
    EXPECT_DOUBLE_EQ(mech->epsilon(), 1.0);
    for (int i = 0; i < 4000; ++i) {
      mech->EncodeUser(i % 64, rng);
    }
    mech->Finalize(rng);
    double answer = mech->RangeQuery(0, 63);
    EXPECT_NEAR(answer, 1.0, 0.75) << spec.Name();
  }
}

TEST(MethodSpec, EndToEndAccuracyRanking) {
  // Sanity ranking at the paper's defaults on a mid-length query: both
  // structured methods should beat flat by a clear margin for long ranges.
  const uint64_t d = 256;
  const double eps = 1.1;
  const int n = 30000;
  const int trials = 25;
  double mse_flat = 0.0;
  double mse_hh = 0.0;
  double mse_haar = 0.0;
  for (int t = 0; t < trials; ++t) {
    for (int which = 0; which < 3; ++which) {
      MethodSpec spec =
          which == 0 ? MethodSpec::Flat(OracleKind::kOueSimulated)
          : which == 1 ? MethodSpec::Hh(4, OracleKind::kOueSimulated, true)
                       : MethodSpec::Haar();
      Rng rng(7000 + t);
      auto mech = MakeMechanism(spec, d, eps);
      for (int i = 0; i < n; ++i) {
        mech->EncodeUser(i % d, rng);
      }
      mech->Finalize(rng);
      double err = 0.0;
      int queries = 0;
      for (uint64_t a = 0; a < d - 128; a += 16) {
        double truth = 128.0 / d;
        double e = mech->RangeQuery(a, a + 127) - truth;
        err += e * e;
        ++queries;
      }
      double mse = err / queries / trials;
      (which == 0 ? mse_flat : which == 1 ? mse_hh : mse_haar) += mse;
    }
  }
  EXPECT_LT(mse_hh, mse_flat);
  EXPECT_LT(mse_haar, mse_flat);
}

}  // namespace
}  // namespace ldp
