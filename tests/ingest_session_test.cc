// IngestSession edge cases: sequence-policy boundaries, the max-sequence
// bookkeeping under adversarial admit orders, and kStreamEnd
// declarations no stream can satisfy.

#include <gtest/gtest.h>

#include <cstdint>

#include "service/ingest_session.h"

namespace ldp {
namespace {

using service::EndResult;
using service::IngestSession;

constexpr uint64_t kMax = IngestSession::kMaxSequences;

TEST(IngestSession, HappyPathInOrder) {
  IngestSession s(1, 0);
  for (uint64_t seq = 0; seq < 5; ++seq) {
    EXPECT_TRUE(s.CanAdmit(seq));
    EXPECT_TRUE(s.AdmitChunk(seq));
  }
  EXPECT_EQ(s.chunks_admitted(), 5u);
  EXPECT_EQ(s.End(5, 0), EndResult::kOk);
  EXPECT_TRUE(s.complete());
}

TEST(IngestSession, RejectedMaxSequenceThenZeroIsStillComplete) {
  // Regression: admit {kMaxSequences, 0} in that order. The first is out
  // of policy and must leave NO trace in the max-sequence bookkeeping —
  // the old seen_.size()-based special case conflated "first admitted
  // chunk" with "first AdmitChunk call". After admitting only sequence
  // 0, End(1) must report a complete session.
  IngestSession s(1, 0);
  EXPECT_FALSE(s.CanAdmit(kMax));
  EXPECT_FALSE(s.AdmitChunk(kMax));
  EXPECT_TRUE(s.AdmitChunk(0));
  EXPECT_EQ(s.chunks_admitted(), 1u);
  EXPECT_EQ(s.End(1, 0), EndResult::kOk);
  EXPECT_TRUE(s.complete());
}

TEST(IngestSession, OutOfOrderAdmitTracksTrueMaximum) {
  // {5, 0, 3}: max admitted sequence is 5, so declaring 3 chunks is
  // incomplete (sequences are not {0, 1, 2}) even though the count
  // matches.
  IngestSession s(1, 0);
  EXPECT_TRUE(s.AdmitChunk(5));
  EXPECT_TRUE(s.AdmitChunk(0));
  EXPECT_TRUE(s.AdmitChunk(3));
  EXPECT_EQ(s.End(3, 0), EndResult::kOk);
  EXPECT_FALSE(s.complete());
}

TEST(IngestSession, DuplicatesAndPostEndChunksRejected) {
  IngestSession s(1, 0);
  EXPECT_TRUE(s.AdmitChunk(0));
  EXPECT_FALSE(s.CanAdmit(0));
  EXPECT_FALSE(s.AdmitChunk(0));  // duplicate
  EXPECT_EQ(s.End(1, 0), EndResult::kOk);
  EXPECT_FALSE(s.CanAdmit(1));
  EXPECT_FALSE(s.AdmitChunk(1));  // after end
  EXPECT_TRUE(s.complete());
}

TEST(IngestSession, OversizedDeclarationRejectedSessionStaysLive) {
  // A kStreamEnd declaring more chunks than AdmitChunk will ever accept
  // can never be satisfied; it must be rejected as a typed status — not
  // land the session in the incomplete bucket — and the session must
  // stay live so a corrected retry can still end it.
  IngestSession s(1, 0);
  EXPECT_TRUE(s.AdmitChunk(0));
  EXPECT_EQ(s.End(kMax + 1, 0), EndResult::kOversizedDeclaration);
  EXPECT_FALSE(s.ended());
  EXPECT_TRUE(s.AdmitChunk(1));  // still live, still admitting
  EXPECT_EQ(s.End(2, 0), EndResult::kOk);
  EXPECT_TRUE(s.complete());
}

TEST(IngestSession, DeclarationAtExactlyMaxSequencesIsAllowed) {
  // chunk_count == kMaxSequences is satisfiable (sequences
  // 0..kMaxSequences-1 are all in policy), so the boundary must pass.
  IngestSession s(1, 0);
  EXPECT_EQ(s.End(kMax, 0), EndResult::kOk);
  EXPECT_FALSE(s.complete());  // nothing was admitted
}

TEST(IngestSession, ReplayedEndKeepsFirstDeclaration) {
  IngestSession s(1, 0);
  EXPECT_TRUE(s.AdmitChunk(0));
  EXPECT_EQ(s.End(1, 0), EndResult::kOk);
  EXPECT_EQ(s.End(99, 0), EndResult::kAlreadyEnded);
  EXPECT_EQ(s.declared_chunks(), 1u);
  EXPECT_TRUE(s.complete());
}

TEST(IngestSession, CanAdmitIsAPureMirrorOfAdmitChunk) {
  IngestSession s(1, 0);
  const uint64_t probes[] = {0, 1, kMax - 1, kMax, kMax + 17};
  for (uint64_t seq : probes) {
    const bool peek = s.CanAdmit(seq);
    EXPECT_EQ(s.AdmitChunk(seq), peek) << "sequence " << seq;
  }
}

}  // namespace
}  // namespace ldp
