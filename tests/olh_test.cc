#include "frequency/olh.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "frequency/frequency_oracle.h"

namespace ldp {
namespace {

TEST(Olh, OptimalHashRange) {
  // g = round(e^eps) + 1, minimum 2.
  EXPECT_EQ(OlhOptimalHashRange(std::log(3.0)), 4u);   // e^eps = 3
  EXPECT_EQ(OlhOptimalHashRange(std::log(2.0)), 3u);
  EXPECT_EQ(OlhOptimalHashRange(0.1), 2u);
  OlhOracle oracle(16, std::log(3.0));
  EXPECT_EQ(oracle.hash_range(), 4u);
}

TEST(Olh, HashRangeOverride) {
  OlhOracle oracle(16, 1.0, /*g_override=*/7);
  EXPECT_EQ(oracle.hash_range(), 7u);
}

TEST(Olh, OptimalHashRangeClampsForLargeEps) {
  // Regression: llround(exp(eps)) overflows long long for eps >~ 44 (UB).
  // The range must saturate at the documented ceiling instead.
  EXPECT_EQ(OlhOptimalHashRange(44.0), kOlhMaxHashRange);
  EXPECT_EQ(OlhOptimalHashRange(100.0), kOlhMaxHashRange);
  EXPECT_EQ(OlhOptimalHashRange(1e6), kOlhMaxHashRange);
  // Rounding edge: e^eps just below the cap must not round + 1 past it.
  EXPECT_LE(OlhOptimalHashRange(std::log(16777215.75)), kOlhMaxHashRange);
  // Just below the cap the exact formula still applies.
  EXPECT_EQ(OlhOptimalHashRange(std::log(3.0)), 4u);
  // And an oracle at extreme eps constructs and ingests without issue.
  OlhOracle oracle(8, 64.0);
  EXPECT_EQ(oracle.hash_range(), kOlhMaxHashRange);
  Rng rng(1);
  oracle.SubmitValue(3, rng);
  EXPECT_EQ(oracle.report_count(), 1u);
}

TEST(Olh, DeferredMatchesEagerSupportBitExact) {
  // The deferred cache-blocked decode must reproduce the eager per-report
  // scan exactly — same Rng stream, bit-identical support counts. This also
  // pins the decode kernel's inlined hash to common/hash.cc's SeededHash.
  for (uint64_t d : {2ull, 16ull, 100ull, 1ull << 12}) {
    const int n = 300;
    OlhOracle eager(d, 1.1, 0, OlhDecode::kEager);
    OlhOracle deferred(d, 1.1, 0, OlhDecode::kDeferred);
    Rng rng_e(7);
    Rng rng_d(7);
    for (int i = 0; i < n; ++i) {
      eager.SubmitValue(i % d, rng_e);
      deferred.SubmitValue(i % d, rng_d);
    }
    EXPECT_EQ(deferred.pending_reports(), static_cast<uint64_t>(n));
    EXPECT_EQ(deferred.SupportCounts(), eager.SupportCounts()) << "d=" << d;
    EXPECT_EQ(deferred.pending_reports(), 0u);  // decode consumed the queue
  }
}

TEST(Olh, DeferredDecodeIsThreadCountInvariant) {
  const uint64_t d = 500;
  // Enough reports that the decode genuinely fans out (it stays
  // single-chunk below ~4k reports per thread).
  const int n = 40000;
  std::vector<std::vector<uint64_t>> results;
  for (unsigned threads : {1u, 2u, 8u}) {
    OlhOracle oracle(d, 1.1);
    oracle.set_decode_threads(threads);
    Rng rng(11);
    for (int i = 0; i < n; ++i) {
      oracle.SubmitValue(i % d, rng);
    }
    results.push_back(oracle.SupportCounts());
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(Olh, SubmitBatchMatchesSubmitValueLoop) {
  const uint64_t d = 64;
  std::vector<uint64_t> values(257);
  for (size_t i = 0; i < values.size(); ++i) values[i] = (i * 7) % d;
  OlhOracle loop(d, 1.1);
  OlhOracle batch(d, 1.1);
  Rng rng_l(3);
  Rng rng_b(3);
  for (uint64_t v : values) loop.SubmitValue(v, rng_l);
  batch.SubmitBatch(values, rng_b);
  EXPECT_EQ(batch.report_count(), loop.report_count());
  EXPECT_EQ(batch.SupportCounts(), loop.SupportCounts());
}

TEST(Olh, MergePropagatesPendingReports) {
  // Shards merged before any decode must aggregate exactly like one oracle
  // that saw every report.
  const uint64_t d = 32;
  Rng rng1(9);
  Rng rng2(9);
  OlhOracle sequential(d, 1.0);
  OlhOracle shard_a(d, 1.0);
  OlhOracle shard_b(d, 1.0);
  for (int i = 0; i < 120; ++i) sequential.SubmitValue(i % d, rng1);
  for (int i = 0; i < 120; ++i) {
    (i < 60 ? shard_a : shard_b).SubmitValue(i % d, rng2);
  }
  // Decode one shard early to also exercise the mixed decoded+pending case.
  shard_a.SupportCounts();
  shard_a.MergeFrom(shard_b);
  EXPECT_EQ(shard_a.report_count(), sequential.report_count());
  EXPECT_EQ(shard_a.SupportCounts(), sequential.SupportCounts());
}

TEST(Olh, EstimatesAreUnbiased) {
  const uint64_t d = 16;
  const double eps = 1.1;
  const int trials = 250;
  const int n = 800;
  std::vector<double> mean(d, 0.0);
  Rng rng(1);
  for (int t = 0; t < trials; ++t) {
    OlhOracle oracle(d, eps);
    for (int i = 0; i < n; ++i) {
      oracle.SubmitValue(i % 4 == 0 ? 2 : 9, rng);
    }
    std::vector<double> est = oracle.EstimateFractions();
    for (uint64_t z = 0; z < d; ++z) {
      mean[z] += est[z] / trials;
    }
  }
  EXPECT_NEAR(mean[2], 0.25, 0.03);
  EXPECT_NEAR(mean[9], 0.75, 0.03);
  EXPECT_NEAR(mean[0], 0.0, 0.03);
  EXPECT_NEAR(mean[15], 0.0, 0.03);
}

TEST(Olh, EmpiricalVarianceNearTheory) {
  // OLH achieves the shared V_F bound when g = e^eps + 1.
  const uint64_t d = 8;
  const double eps = 1.1;
  const int trials = 500;
  const int n = 300;
  RunningStat est_cold;
  Rng rng(2);
  for (int t = 0; t < trials; ++t) {
    OlhOracle oracle(d, eps);
    for (int i = 0; i < n; ++i) {
      oracle.SubmitValue(0, rng);
    }
    est_cold.Add(oracle.EstimateFractions()[5]);
  }
  double expected = OracleVariance(eps, n);
  // g is rounded to an integer, so allow a wider band than OUE's.
  EXPECT_NEAR(est_cold.variance(), expected, 0.35 * expected);
}

TEST(Olh, InnerGrrSatisfiesLdp) {
  // Conditioned on the public hash seed, the report is GRR over [g]
  // with p = e^eps/(e^eps+g-1): likelihood ratio exactly e^eps.
  const double eps = 1.0;
  uint64_t g = OlhOptimalHashRange(eps);
  double e = std::exp(eps);
  double p = e / (e + static_cast<double>(g) - 1.0);
  double q = (1.0 - p) / (static_cast<double>(g) - 1.0);
  EXPECT_NEAR(p / q, e, 1e-9);
}

TEST(Olh, MergeMatchesSequential) {
  Rng rng1(3);
  Rng rng2(3);
  OlhOracle sequential(8, 1.0);
  OlhOracle shard_a(8, 1.0);
  OlhOracle shard_b(8, 1.0);
  for (int i = 0; i < 80; ++i) {
    sequential.SubmitValue(i % 8, rng1);
  }
  for (int i = 0; i < 80; ++i) {
    (i < 40 ? shard_a : shard_b).SubmitValue(i % 8, rng2);
  }
  shard_a.MergeFrom(shard_b);
  std::vector<double> a = shard_a.EstimateFractions();
  std::vector<double> s = sequential.EstimateFractions();
  for (uint64_t z = 0; z < 8; ++z) {
    EXPECT_DOUBLE_EQ(a[z], s[z]);
  }
}

TEST(Olh, ReportIsSeedPlusCell) {
  OlhOracle oracle(1 << 20, std::log(3.0));
  // 64-bit seed + ceil(log2 g) bits — tiny compared to OUE's D bits.
  EXPECT_DOUBLE_EQ(oracle.ReportBits(), 64.0 + 2.0);
}

TEST(Olh, PendingArenasReusedAcrossIngestDecodeSessions) {
  // Decode Clear()s the pending columns but RETAINS their arena blocks:
  // after the first ingest/decode cycle sizes the arenas, later cycles of
  // the same (or smaller) size must cause zero system allocations.
  const uint64_t d = 64;
  const int n = 3000;
  OlhOracle oracle(d, 1.0, 0, OlhDecode::kDeferred);
  Rng rng(5);
  for (int i = 0; i < n; ++i) oracle.SubmitValue(i % d, rng);
  (void)oracle.SupportCounts();  // decode session 1
  const uint64_t steady = oracle.pending_allocation_count();
  EXPECT_GT(steady, 0u);
  for (int session = 0; session < 3; ++session) {
    for (int i = 0; i < n; ++i) oracle.SubmitValue(i % d, rng);
    EXPECT_EQ(oracle.pending_allocation_count(), steady)
        << "ingest of session " << session;
    (void)oracle.SupportCounts();
    EXPECT_EQ(oracle.pending_allocation_count(), steady)
        << "decode of session " << session;
  }
}

}  // namespace
}  // namespace ldp
