#include "frequency/olh.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "frequency/frequency_oracle.h"

namespace ldp {
namespace {

TEST(Olh, OptimalHashRange) {
  // g = round(e^eps) + 1, minimum 2.
  EXPECT_EQ(OlhOptimalHashRange(std::log(3.0)), 4u);   // e^eps = 3
  EXPECT_EQ(OlhOptimalHashRange(std::log(2.0)), 3u);
  EXPECT_EQ(OlhOptimalHashRange(0.1), 2u);
  OlhOracle oracle(16, std::log(3.0));
  EXPECT_EQ(oracle.hash_range(), 4u);
}

TEST(Olh, HashRangeOverride) {
  OlhOracle oracle(16, 1.0, /*g_override=*/7);
  EXPECT_EQ(oracle.hash_range(), 7u);
}

TEST(Olh, EstimatesAreUnbiased) {
  const uint64_t d = 16;
  const double eps = 1.1;
  const int trials = 250;
  const int n = 800;
  std::vector<double> mean(d, 0.0);
  Rng rng(1);
  for (int t = 0; t < trials; ++t) {
    OlhOracle oracle(d, eps);
    for (int i = 0; i < n; ++i) {
      oracle.SubmitValue(i % 4 == 0 ? 2 : 9, rng);
    }
    std::vector<double> est = oracle.EstimateFractions();
    for (uint64_t z = 0; z < d; ++z) {
      mean[z] += est[z] / trials;
    }
  }
  EXPECT_NEAR(mean[2], 0.25, 0.03);
  EXPECT_NEAR(mean[9], 0.75, 0.03);
  EXPECT_NEAR(mean[0], 0.0, 0.03);
  EXPECT_NEAR(mean[15], 0.0, 0.03);
}

TEST(Olh, EmpiricalVarianceNearTheory) {
  // OLH achieves the shared V_F bound when g = e^eps + 1.
  const uint64_t d = 8;
  const double eps = 1.1;
  const int trials = 500;
  const int n = 300;
  RunningStat est_cold;
  Rng rng(2);
  for (int t = 0; t < trials; ++t) {
    OlhOracle oracle(d, eps);
    for (int i = 0; i < n; ++i) {
      oracle.SubmitValue(0, rng);
    }
    est_cold.Add(oracle.EstimateFractions()[5]);
  }
  double expected = OracleVariance(eps, n);
  // g is rounded to an integer, so allow a wider band than OUE's.
  EXPECT_NEAR(est_cold.variance(), expected, 0.35 * expected);
}

TEST(Olh, InnerGrrSatisfiesLdp) {
  // Conditioned on the public hash seed, the report is GRR over [g]
  // with p = e^eps/(e^eps+g-1): likelihood ratio exactly e^eps.
  const double eps = 1.0;
  uint64_t g = OlhOptimalHashRange(eps);
  double e = std::exp(eps);
  double p = e / (e + static_cast<double>(g) - 1.0);
  double q = (1.0 - p) / (static_cast<double>(g) - 1.0);
  EXPECT_NEAR(p / q, e, 1e-9);
}

TEST(Olh, MergeMatchesSequential) {
  Rng rng1(3);
  Rng rng2(3);
  OlhOracle sequential(8, 1.0);
  OlhOracle shard_a(8, 1.0);
  OlhOracle shard_b(8, 1.0);
  for (int i = 0; i < 80; ++i) {
    sequential.SubmitValue(i % 8, rng1);
  }
  for (int i = 0; i < 80; ++i) {
    (i < 40 ? shard_a : shard_b).SubmitValue(i % 8, rng2);
  }
  shard_a.MergeFrom(shard_b);
  std::vector<double> a = shard_a.EstimateFractions();
  std::vector<double> s = sequential.EstimateFractions();
  for (uint64_t z = 0; z < 8; ++z) {
    EXPECT_DOUBLE_EQ(a[z], s[z]);
  }
}

TEST(Olh, ReportIsSeedPlusCell) {
  OlhOracle oracle(1 << 20, std::log(3.0));
  // 64-bit seed + ceil(log2 g) bits — tiny compared to OUE's D bits.
  EXPECT_DOUBLE_EQ(oracle.ReportBits(), 64.0 + 2.0);
}

}  // namespace
}  // namespace ldp
