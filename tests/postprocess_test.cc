#include "core/postprocess.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "core/haar_hrr.h"
#include "core/quantile.h"

namespace ldp {
namespace {

double Sum(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

TEST(NormSub, ProducesSimplexVector) {
  std::vector<double> freq = {0.5, -0.2, 0.4, 0.6, -0.1};
  NormSubProjection(freq);
  EXPECT_NEAR(Sum(freq), 1.0, 1e-12);
  for (double f : freq) {
    EXPECT_GE(f, 0.0);
  }
}

TEST(NormSub, NoOpOnValidDistribution) {
  std::vector<double> freq = {0.25, 0.25, 0.5};
  std::vector<double> copy = freq;
  NormSubProjection(freq);
  for (size_t i = 0; i < freq.size(); ++i) {
    EXPECT_NEAR(freq[i], copy[i], 1e-12);
  }
}

TEST(NormSub, KillsSmallNegativesKeepsOrder) {
  std::vector<double> freq = {0.9, -0.05, 0.3, -0.02};
  NormSubProjection(freq);
  EXPECT_GT(freq[0], freq[2]);   // order of positives preserved
  EXPECT_EQ(freq[1], 0.0);
  EXPECT_EQ(freq[3], 0.0);
  EXPECT_NEAR(Sum(freq), 1.0, 1e-12);
}

TEST(NormSub, AllNegativeFallsBackToUniform) {
  std::vector<double> freq = {-0.1, -0.5, -0.2, -0.2};
  NormSubProjection(freq);
  for (double f : freq) {
    EXPECT_NEAR(f, 0.25, 1e-12);
  }
}

TEST(NormSub, RandomizedInputsAlwaysValid) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    size_t n = 1 + rng.UniformInt(64);
    std::vector<double> freq(n);
    for (double& f : freq) {
      f = rng.Gaussian() * 0.3 + 0.02;
    }
    NormSubProjection(freq);
    EXPECT_NEAR(Sum(freq), 1.0, 1e-9) << "trial " << trial;
    for (double f : freq) {
      ASSERT_GE(f, 0.0) << "trial " << trial;
    }
  }
}

TEST(Isotonic, IdentityOnMonotoneInput) {
  std::vector<double> y = {0.1, 0.2, 0.2, 0.5, 0.9};
  std::vector<double> fit = IsotonicRegression(y);
  for (size_t i = 0; i < y.size(); ++i) {
    EXPECT_DOUBLE_EQ(fit[i], y[i]);
  }
}

TEST(Isotonic, PoolsSimpleViolation) {
  // Classic example: {3, 1} pools to {2, 2}.
  std::vector<double> fit = IsotonicRegression({3.0, 1.0});
  EXPECT_DOUBLE_EQ(fit[0], 2.0);
  EXPECT_DOUBLE_EQ(fit[1], 2.0);
}

TEST(Isotonic, KnownTextbookCase) {
  std::vector<double> fit =
      IsotonicRegression({1.0, 3.0, 2.0, 4.0, 3.0, 5.0});
  std::vector<double> expected = {1.0, 2.5, 2.5, 3.5, 3.5, 5.0};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(fit[i], expected[i], 1e-12) << "i=" << i;
  }
}

TEST(Isotonic, OutputIsMonotoneAndMeanPreserving) {
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    size_t n = 2 + rng.UniformInt(100);
    std::vector<double> y(n);
    for (double& v : y) {
      v = rng.Gaussian();
    }
    std::vector<double> fit = IsotonicRegression(y);
    ASSERT_EQ(fit.size(), n);
    for (size_t i = 1; i < n; ++i) {
      ASSERT_LE(fit[i - 1], fit[i] + 1e-12);
    }
    EXPECT_NEAR(Sum(fit), Sum(y), 1e-9);  // PAV preserves the total
  }
}

TEST(Isotonic, LeastSquaresOptimalOnSmallInputs) {
  // Brute-force check on length-4 inputs over a coarse grid: no monotone
  // vector from the grid beats PAV's squared error.
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> y(4);
    for (double& v : y) {
      v = static_cast<double>(rng.UniformInt(9)) / 2.0;  // 0, .5, ..., 4
    }
    std::vector<double> fit = IsotonicRegression(y);
    double fit_err = 0.0;
    for (size_t i = 0; i < 4; ++i) {
      fit_err += (fit[i] - y[i]) * (fit[i] - y[i]);
    }
    const int kGrid = 17;  // values 0, 0.25, ..., 4
    for (int a = 0; a < kGrid; ++a) {
      for (int b = a; b < kGrid; ++b) {
        for (int c = b; c < kGrid; ++c) {
          for (int d = c; d < kGrid; ++d) {
            double cand[4] = {a / 4.0, b / 4.0, c / 4.0, d / 4.0};
            double err = 0.0;
            for (size_t i = 0; i < 4; ++i) {
              err += (cand[i] - y[i]) * (cand[i] - y[i]);
            }
            ASSERT_GE(err + 1e-9, fit_err)
                << "PAV beaten at trial " << trial;
          }
        }
      }
    }
  }
}

TEST(SmoothedCdf, MonotoneClampedAndCloseToTruth) {
  Rng rng(4);
  const uint64_t d = 256;
  HaarHrrMechanism mech(d, 1.1);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    mech.EncodeUser(i % d, rng);
  }
  mech.Finalize(rng);
  std::vector<double> cdf = SmoothedCdf(mech);
  ASSERT_EQ(cdf.size(), d);
  for (uint64_t b = 1; b < d; ++b) {
    ASSERT_LE(cdf[b - 1], cdf[b] + 1e-12);
  }
  for (double v : cdf) {
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 1.0);
  }
  // Uniform data: cdf[b] ~ (b+1)/d.
  for (uint64_t b = 15; b < d; b += 32) {
    EXPECT_NEAR(cdf[b], static_cast<double>(b + 1) / d, 0.05);
  }
}

TEST(SmoothedCdf, ImprovesOrMatchesQuantileError) {
  // Statistical comparison: PAV-smoothed quantiles should on average be at
  // least as accurate as raw binary search over the noisy prefixes.
  const uint64_t d = 256;
  const double eps = 0.4;  // noisy regime where smoothing matters
  const int trials = 40;
  double raw_err = 0.0;
  double smooth_err = 0.0;
  for (int t = 0; t < trials; ++t) {
    Rng rng(500 + t);
    HaarHrrMechanism mech(d, eps);
    std::vector<uint64_t> counts(d, 0);
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
      uint64_t z = (i * 31) % d;
      ++counts[z];
      mech.EncodeUser(z, rng);
    }
    mech.Finalize(rng);
    std::vector<double> true_cdf(d);
    double acc = 0.0;
    for (uint64_t z = 0; z < d; ++z) {
      acc += static_cast<double>(counts[z]) / n;
      true_cdf[z] = acc;
    }
    std::vector<double> smooth = SmoothedCdf(mech);
    for (double phi = 0.1; phi < 0.95; phi += 0.2) {
      uint64_t raw = mech.QuantileQuery(phi);
      uint64_t smoothed = QuantileFromCdf(smooth, phi);
      raw_err += std::abs(true_cdf[raw] - phi);
      smooth_err += std::abs(true_cdf[smoothed] - phi);
    }
  }
  EXPECT_LE(smooth_err, raw_err * 1.05);
}

TEST(QuantileFromCdf, BinarySearchSemantics) {
  std::vector<double> cdf = {0.1, 0.3, 0.3, 0.8, 1.0};
  EXPECT_EQ(QuantileFromCdf(cdf, 0.05), 0u);
  EXPECT_EQ(QuantileFromCdf(cdf, 0.3), 1u);
  EXPECT_EQ(QuantileFromCdf(cdf, 0.5), 3u);
  EXPECT_EQ(QuantileFromCdf(cdf, 1.0), 4u);
}

}  // namespace
}  // namespace ldp
