#include "common/hash.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace ldp {
namespace {

TEST(Hash, Mix64IsDeterministicAndNontrivial) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
  EXPECT_NE(Mix64(0), 0u);
}

TEST(Hash, StaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    uint64_t seed = rng.Next();
    uint64_t x = rng.UniformInt(1 << 20);
    for (uint64_t range : {2ull, 3ull, 7ull, 16ull, 1000ull}) {
      EXPECT_LT(SeededHash(seed, x, range), range);
    }
  }
}

TEST(Hash, DifferentSeedsGiveDifferentFunctions) {
  // For two random seeds, the maps should agree on roughly a 1/range
  // fraction of inputs, not everywhere.
  const uint64_t range = 16;
  int agreements = 0;
  const int n = 4096;
  for (int x = 0; x < n; ++x) {
    if (SeededHash(111, x, range) == SeededHash(222, x, range)) {
      ++agreements;
    }
  }
  double frac = static_cast<double>(agreements) / n;
  EXPECT_NEAR(frac, 1.0 / range, 0.03);
}

// The OLH analysis needs collisions to behave like a universal family:
// Pr[H(x) == H(y)] ~ 1/g over the choice of hash function.
class HashCollisionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HashCollisionTest, CollisionRateNearOneOverG) {
  const uint64_t g = GetParam();
  Rng rng(77);
  const int pairs = 200;
  const int seeds = 500;
  double total_rate = 0.0;
  for (int i = 0; i < pairs; ++i) {
    uint64_t x = rng.UniformInt(1 << 16);
    uint64_t y = rng.UniformInt(1 << 16);
    if (x == y) continue;
    int collisions = 0;
    for (int s = 0; s < seeds; ++s) {
      uint64_t seed = rng.Next();
      if (SeededHash(seed, x, g) == SeededHash(seed, y, g)) {
        ++collisions;
      }
    }
    total_rate += static_cast<double>(collisions) / seeds;
  }
  double avg_rate = total_rate / pairs;
  double expected = 1.0 / static_cast<double>(g);
  EXPECT_NEAR(avg_rate, expected, 0.25 * expected + 0.002);
}

INSTANTIATE_TEST_SUITE_P(Ranges, HashCollisionTest,
                         ::testing::Values(2, 4, 5, 16, 64));

TEST(Hash, MarginalUniformity) {
  // For a fixed random seed, hashing a contiguous domain should spread
  // evenly over [0, g).
  const uint64_t g = 8;
  const int n = 64000;
  Rng rng(123);
  uint64_t seed = rng.Next();
  std::vector<int> hist(g, 0);
  for (int x = 0; x < n; ++x) {
    ++hist[SeededHash(seed, x, g)];
  }
  double expected = static_cast<double>(n) / g;
  for (uint64_t c = 0; c < g; ++c) {
    EXPECT_NEAR(hist[c], expected, 6 * std::sqrt(expected));
  }
}

}  // namespace
}  // namespace ldp
