#include "frequency/oue.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "frequency/frequency_oracle.h"

namespace ldp {
namespace {

TEST(Oue, FlipProbabilityFormula) {
  OueOracle oracle(4, std::log(3.0), OueOracle::Mode::kExact);
  EXPECT_DOUBLE_EQ(oracle.KeepProbability(), 0.5);
  EXPECT_NEAR(oracle.FlipProbability(), 0.25, 1e-12);
}

TEST(Oue, NoiselessZeroBitsStayZero) {
  // With huge eps the 0->1 flip probability vanishes; the kept 1-bit still
  // fires only half the time, and the estimator corrects for that.
  Rng rng(1);
  OueOracle oracle(8, 60.0, OueOracle::Mode::kExact);
  for (int i = 0; i < 20000; ++i) {
    oracle.SubmitValue(3, rng);
  }
  oracle.Finalize(rng);
  std::vector<double> est = oracle.EstimateFractions();
  EXPECT_NEAR(est[3], 1.0, 0.02);
  for (uint64_t z = 0; z < 8; ++z) {
    if (z != 3) {
      EXPECT_NEAR(est[z], 0.0, 1e-9) << "z=" << z;
    }
  }
}

TEST(Oue, ExactModeUnbiased) {
  const uint64_t d = 8;
  const double eps = 1.1;
  const int trials = 200;
  const int n = 1000;
  std::vector<double> mean(d, 0.0);
  Rng rng(2);
  for (int t = 0; t < trials; ++t) {
    OueOracle oracle(d, eps, OueOracle::Mode::kExact);
    for (int i = 0; i < n; ++i) {
      oracle.SubmitValue(i % 4 == 0 ? 0 : 5, rng);  // (.25 at 0, .75 at 5)
    }
    oracle.Finalize(rng);
    std::vector<double> est = oracle.EstimateFractions();
    for (uint64_t z = 0; z < d; ++z) {
      mean[z] += est[z] / trials;
    }
  }
  EXPECT_NEAR(mean[0], 0.25, 0.025);
  EXPECT_NEAR(mean[5], 0.75, 0.025);
  EXPECT_NEAR(mean[3], 0.0, 0.025);
}

// The paper's §5 simulation claim: the binomial-shortcut aggregate is
// statistically equivalent to per-user bit flipping. Compare the mean and
// variance of the estimator for a zero-frequency and a hot item.
TEST(Oue, SimulatedModeMatchesExactModeDistribution) {
  const uint64_t d = 4;
  const double eps = 1.0;
  const int trials = 400;
  const int n = 500;
  RunningStat exact_hot;
  RunningStat exact_cold;
  RunningStat sim_hot;
  RunningStat sim_cold;
  Rng rng(3);
  for (int t = 0; t < trials; ++t) {
    OueOracle exact(d, eps, OueOracle::Mode::kExact);
    OueOracle sim(d, eps, OueOracle::Mode::kSimulated);
    for (int i = 0; i < n; ++i) {
      exact.SubmitValue(1, rng);
      sim.SubmitValue(1, rng);
    }
    exact.Finalize(rng);
    sim.Finalize(rng);
    exact_hot.Add(exact.EstimateFractions()[1]);
    exact_cold.Add(exact.EstimateFractions()[2]);
    sim_hot.Add(sim.EstimateFractions()[1]);
    sim_cold.Add(sim.EstimateFractions()[2]);
  }
  EXPECT_NEAR(exact_hot.mean(), 1.0, 0.03);
  EXPECT_NEAR(sim_hot.mean(), 1.0, 0.03);
  EXPECT_NEAR(exact_cold.mean(), 0.0, 0.03);
  EXPECT_NEAR(sim_cold.mean(), 0.0, 0.03);
  // Variances agree within Monte-Carlo noise.
  EXPECT_NEAR(sim_cold.variance(), exact_cold.variance(),
              0.5 * exact_cold.variance());
}

TEST(Oue, EmpiricalVarianceMatchesTheory) {
  // For a zero-frequency item the estimator variance should be V_F =
  // 4 e^eps / (N (e^eps - 1)^2) (paper Section 3.2).
  const uint64_t d = 4;
  const double eps = 1.1;
  const int trials = 600;
  const int n = 400;
  RunningStat est_at_zero_item;
  Rng rng(4);
  for (int t = 0; t < trials; ++t) {
    OueOracle oracle(d, eps, OueOracle::Mode::kSimulated);
    for (int i = 0; i < n; ++i) {
      oracle.SubmitValue(0, rng);
    }
    oracle.Finalize(rng);
    est_at_zero_item.Add(oracle.EstimateFractions()[3]);
  }
  double expected = OracleVariance(eps, n);
  EXPECT_NEAR(est_at_zero_item.variance(), expected, 0.25 * expected);
}

TEST(Oue, PerBitLdpRatioBounded) {
  // Changing the input moves exactly two bit positions; the worst-case
  // likelihood ratio across those two independent bits must not exceed
  // e^eps. Enumerate all four (old-bit, new-bit) output combinations.
  const double eps = 0.9;
  OueOracle oracle(2, eps, OueOracle::Mode::kExact);
  double p = oracle.KeepProbability();   // P[1 -> 1]
  double q = oracle.FlipProbability();   // P[0 -> 1]
  double worst = 0.0;
  for (int bit_a : {0, 1}) {
    for (int bit_b : {0, 1}) {
      // Input v=0: position a is the 1-bit, position b a 0-bit.
      double pr_v0 = (bit_a == 1 ? p : 1 - p) * (bit_b == 1 ? q : 1 - q);
      // Input v=1: roles swapped.
      double pr_v1 = (bit_a == 1 ? q : 1 - q) * (bit_b == 1 ? p : 1 - p);
      worst = std::max(worst, pr_v0 / pr_v1);
    }
  }
  EXPECT_LE(worst, std::exp(eps) * (1 + 1e-9));
}

TEST(Oue, SimulatedRequiresFinalize) {
  Rng rng(5);
  OueOracle oracle(4, 1.0, OueOracle::Mode::kSimulated);
  oracle.SubmitValue(0, rng);
  EXPECT_DEATH(oracle.EstimateFractions(), "Finalize");
}

TEST(Oue, MergePreservesCounts) {
  Rng rng(6);
  OueOracle a(4, 1.0, OueOracle::Mode::kSimulated);
  OueOracle b(4, 1.0, OueOracle::Mode::kSimulated);
  for (int i = 0; i < 60; ++i) a.SubmitValue(1, rng);
  for (int i = 0; i < 40; ++i) b.SubmitValue(2, rng);
  a.MergeFrom(b);
  EXPECT_EQ(a.report_count(), 100u);
  a.Finalize(rng);
  std::vector<double> est = a.EstimateFractions();
  EXPECT_NEAR(est[1], 0.6, 0.35);
  EXPECT_NEAR(est[2], 0.4, 0.35);
}

TEST(Oue, ReportBitsIsD) {
  OueOracle oracle(1024, 1.0, OueOracle::Mode::kExact);
  EXPECT_DOUBLE_EQ(oracle.ReportBits(), 1024.0);
}

}  // namespace
}  // namespace ldp
