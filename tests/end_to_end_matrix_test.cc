// Broad end-to-end coverage matrix: every mechanism family × epsilon ×
// domain cell must (a) be deterministic under a fixed seed, (b) produce a
// pooled MSE inside its theoretical worst-case envelope, and (c) improve
// when epsilon grows. One parameterized suite covers the grid the paper's
// evaluation spans.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/badic.h"
#include "core/method.h"
#include "core/variance.h"
#include "data/distributions.h"
#include "data/workload.h"
#include "eval/experiment.h"
#include "frequency/frequency_oracle.h"

namespace ldp {
namespace {

struct MatrixCase {
  MethodSpec spec;
  uint64_t domain;
  double eps;
};

std::string CaseName(const ::testing::TestParamInfo<MatrixCase>& info) {
  std::string out;
  for (char c : info.param.spec.Name()) {
    if (std::isalnum(static_cast<unsigned char>(c))) out += c;
  }
  out += "_D" + std::to_string(info.param.domain);
  out += "_e" + std::to_string(static_cast<int>(info.param.eps * 10));
  return out;
}

class EndToEndMatrixTest : public ::testing::TestWithParam<MatrixCase> {
 protected:
  ExperimentResult Run(uint64_t seed) const {
    ExperimentConfig config;
    config.domain = GetParam().domain;
    config.population = 30000;
    config.epsilon = GetParam().eps;
    config.method = GetParam().spec;
    config.trials = 3;
    config.seed = seed;
    config.threads = 2;
    CauchyDistribution dist(config.domain);
    return RunRangeExperiment(config, dist,
                              QueryWorkload::Random(200, 7));
  }
};

TEST_P(EndToEndMatrixTest, DeterministicAcrossRuns) {
  EXPECT_DOUBLE_EQ(Run(11).mean_mse(), Run(11).mean_mse());
}

TEST_P(EndToEndMatrixTest, MseWithinWorstCaseEnvelope) {
  const MatrixCase& c = GetParam();
  double mse = Run(13).mean_mse();
  // Envelope: the loosest applicable worst-case bound for the family (a
  // full-domain-length range), with slack for HRR's exact variance being
  // (e^eps+1)^2/4e^eps above V_F.
  double n = 30000;
  double bound = 0.0;
  switch (c.spec.family) {
    case MethodFamily::kFlat:
      bound = FlatRangeVarianceBound(c.domain, c.eps, n);
      break;
    case MethodFamily::kHierarchical:
      bound = HhRangeVarianceBound(c.domain, c.spec.fanout, c.domain,
                                   c.eps, n);
      break;
    case MethodFamily::kHaar:
      bound = HaarRangeVarianceBound(c.domain, c.eps, n) *
              HrrExactVariance(c.eps, n) / OracleVariance(c.eps, n);
      break;
    case MethodFamily::kAhead:
      // The degenerate (full-split) AHEAD tree is the HH_B tree over the
      // phase-2 cohort; the adaptive tree only prunes it. Double the HH
      // envelope to absorb the uniform-within-leaf bias term.
      bound = 2.0 * HhRangeVarianceBound(
                        c.domain, c.spec.ahead.fanout, c.domain, c.eps,
                        n * (1.0 - c.spec.ahead.phase1_fraction));
      break;
    case MethodFamily::kHier2D:
    case MethodFamily::kGrid: {
      // The 1-D harness drives the grid's axis-0 marginal: the box
      // [a, b] x [0, D)^{d-1} decomposes into at most 2(B-1)h covering
      // cells (the other axes contribute a single root node each), and
      // every cell's oracle serves n / ((h+1)^d - 1) sampled users.
      TreeShape shape(c.domain, c.spec.fanout);
      const double h = shape.height();
      const double tuples =
          std::pow(h + 1.0, static_cast<double>(c.spec.dimensions)) - 1.0;
      bound = 2.0 * static_cast<double>(c.spec.fanout - 1) * h * tuples *
              OracleVariance(c.eps, n);
      break;
    }
  }
  EXPECT_LT(mse, bound * 1.5) << c.spec.Name();
  EXPECT_GT(mse, 0.0);
}

TEST_P(EndToEndMatrixTest, MoreBudgetNeverHurtsMuch) {
  const MatrixCase& c = GetParam();
  if (c.eps > 1.0) GTEST_SKIP() << "only for the low-eps cells";
  ExperimentConfig config;
  config.domain = c.domain;
  config.population = 30000;
  config.method = c.spec;
  config.trials = 3;
  config.seed = 17;
  config.threads = 2;
  CauchyDistribution dist(c.domain);
  QueryWorkload workload = QueryWorkload::Random(200, 7);
  config.epsilon = c.eps;
  double low = RunRangeExperiment(config, dist, workload).mean_mse();
  config.epsilon = c.eps * 3.0;
  double high = RunRangeExperiment(config, dist, workload).mean_mse();
  EXPECT_LT(high, low * 1.25) << c.spec.Name();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EndToEndMatrixTest,
    ::testing::Values(
        MatrixCase{MethodSpec::Flat(OracleKind::kOueSimulated), 256, 1.1},
        MatrixCase{MethodSpec::Flat(OracleKind::kGrr), 64, 1.1},
        MatrixCase{MethodSpec::Hh(2, OracleKind::kOueSimulated, true), 256,
                   0.4},
        MatrixCase{MethodSpec::Hh(2, OracleKind::kOueSimulated, true), 256,
                   1.1},
        MatrixCase{MethodSpec::Hh(4, OracleKind::kOueSimulated, true), 1024,
                   1.1},
        MatrixCase{MethodSpec::Hh(4, OracleKind::kOueSimulated, false),
                   1024, 1.1},
        MatrixCase{MethodSpec::Hh(16, OracleKind::kOueSimulated, true),
                   1024, 0.8},
        MatrixCase{MethodSpec::Hh(2, OracleKind::kHrr, true), 256, 1.1},
        MatrixCase{MethodSpec::Hh(4, OracleKind::kSueSimulated, true), 256,
                   1.1},
        MatrixCase{MethodSpec::Haar(), 256, 0.4},
        MatrixCase{MethodSpec::Haar(), 256, 1.1},
        MatrixCase{MethodSpec::Haar(), 4096, 1.1},
        MatrixCase{MethodSpec::Ahead(4), 256, 1.1},
        MatrixCase{MethodSpec::Ahead(4), 1024, 0.8},
        MatrixCase{MethodSpec::Ahead(2, OracleKind::kOueSimulated), 256,
                   1.1},
        MatrixCase{MethodSpec::Hier2D(2), 64, 1.1},
        MatrixCase{MethodSpec::Hier2D(2), 64, 0.8},
        MatrixCase{MethodSpec::Hier2D(4), 256, 1.1},
        MatrixCase{MethodSpec::Grid(3, 2), 32, 1.1}),
    CaseName);

}  // namespace
}  // namespace ldp
