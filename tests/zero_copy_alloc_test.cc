// The zero-copy ingestion contract, asserted at the allocator: absorbing a
// streamed report chunk into a MultiDimServer parses the wire bytes in
// place and appends straight into the per-tuple arena columns, so at
// steady state (arenas warmed by earlier chunks) a chunk's absorption
// performs ZERO heap allocations — no staging std::vector of decoded
// reports, no second copy of the chunk payload.
//
// This file overrides the global operator new/delete to count allocations,
// so it deliberately contains ONLY this test. The override is disabled
// under AddressSanitizer (it would bypass ASan's allocator instrumentation);
// the test skips itself there — the equivalent arena-level assertions run
// in every build via multidim_test and olh_test.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "protocol/multidim_protocol.h"

#if defined(__SANITIZE_ADDRESS__)
#define LDP_ALLOC_COUNTING 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LDP_ALLOC_COUNTING 0
#else
#define LDP_ALLOC_COUNTING 1
#endif
#else
#define LDP_ALLOC_COUNTING 1
#endif

#if LDP_ALLOC_COUNTING

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // LDP_ALLOC_COUNTING

namespace ldp {
namespace {

using protocol::MultiDimReport;
using protocol::MultiDimServer;
using protocol::ParseError;

TEST(ZeroCopyIngestion, SteadyStateChunkAbsorbIsAllocationFree) {
#if !LDP_ALLOC_COUNTING
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#else
  MultiDimServer server(/*domain_per_dim=*/8, /*dimensions=*/2, /*eps=*/1.0);
  // One chunk: 64 reports, all for level tuple (1, 0) so the arena ramp is
  // confined to one oracle's columns and warms up quickly.
  std::vector<MultiDimReport> reports(64);
  for (size_t i = 0; i < reports.size(); ++i) {
    reports[i].levels = {1, 0};
    reports[i].seed = 0x9E3779B97F4A7C15ULL * (i + 1);
    reports[i].cell = static_cast<uint32_t>(i % server.hash_range());
  }
  const std::vector<uint8_t> chunk =
      protocol::SerializeMultiDimReportBatch(2, reports);

  // Warmup: the first chunks carve the oracle's first arena blocks.
  for (int i = 0; i < 2; ++i) {
    uint64_t accepted = 0;
    ASSERT_EQ(server.AbsorbBatchSerialized(chunk, &accepted), ParseError::kOk);
    ASSERT_EQ(accepted, reports.size());
  }
  const uint64_t arena_allocs = server.report_allocation_count();

  // Steady state: 8 more chunks (512 reports, well inside the first
  // 1024-element chunk pair) must not allocate AT ALL.
  const uint64_t heap_before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 8; ++i) {
    uint64_t accepted = 0;
    ASSERT_EQ(server.AbsorbBatchSerialized(chunk, &accepted), ParseError::kOk);
    ASSERT_EQ(accepted, reports.size());
  }
  const uint64_t heap_after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(heap_after - heap_before, 0u)
      << "absorbing a streamed chunk allocated on the heap: the zero-copy "
         "wire -> arena path must not stage or copy reports";
  EXPECT_EQ(server.report_allocation_count(), arena_allocs);
#endif
}

}  // namespace
}  // namespace ldp
