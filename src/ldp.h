// Umbrella header: the library's public API in one include.
//
//   #include "ldp.h"
//
// pulls in the range-query mechanisms (flat, hierarchical, HaarHRR), the
// frequency oracles they build on, quantile and post-processing helpers,
// the multidimensional grids, synthetic data + workload generators, the
// experiment harness, and the wire protocol. Individual headers remain
// includable on their own (each is self-contained); this header is for
// application code that just wants the toolbox.

#ifndef LDPRANGE_LDP_H_
#define LDPRANGE_LDP_H_

#include "common/random.h"
#include "common/stats.h"
#include "core/badic.h"
#include "core/consistency.h"
#include "core/flat.h"
#include "core/haar.h"
#include "core/haar_hrr.h"
#include "core/hierarchical.h"
#include "core/method.h"
#include "core/multidim.h"
#include "core/postprocess.h"
#include "core/quantile.h"
#include "core/range_mechanism.h"
#include "core/variance.h"
#include "data/dataset.h"
#include "data/distributions.h"
#include "data/workload.h"
#include "eval/experiment.h"
#include "eval/table_printer.h"
#include "frequency/frequency_oracle.h"
#include "frequency/grr.h"
#include "frequency/hrr.h"
#include "frequency/olh.h"
#include "frequency/oue.h"
#include "frequency/sue.h"
#include "net/tcp_client.h"
#include "net/tcp_front_end.h"
#include "protocol/ahead_protocol.h"
#include "protocol/envelope.h"
#include "protocol/flat_protocol.h"
#include "protocol/haar_protocol.h"
#include "protocol/multidim_protocol.h"
#include "protocol/oracle_wire.h"
#include "protocol/tree_protocol.h"
#include "service/aggregator_server.h"
#include "service/aggregator_service.h"
#include "service/server_factory.h"
#include "service/stream_wire.h"

#endif  // LDPRANGE_LDP_H_
