#include "eval/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace ldp {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  LDP_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  LDP_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << "\n";
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

std::string FormatScaled(double value, double scale, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value * scale);
  return std::string(buf);
}

void MarkRowMinimum(const std::vector<double>& values,
                    std::vector<std::string>& cells) {
  LDP_CHECK_EQ(values.size(), cells.size());
  if (values.empty()) return;
  size_t best =
      std::min_element(values.begin(), values.end()) - values.begin();
  cells[best] += "*";
}

}  // namespace ldp
