// Fixed-width console tables replicating the paper's presentation: MSE
// values scaled by 1000, the per-row minimum marked with '*' (the paper uses
// bold), and prefix-table entries that improve on the range table marked
// with '_' (the paper underlines).

#ifndef LDPRANGE_EVAL_TABLE_PRINTER_H_
#define LDPRANGE_EVAL_TABLE_PRINTER_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace ldp {

/// Column-aligned plain-text table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Writes the aligned table to `os`.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value * scale` with `precision` digits after the point (the
/// paper's tables multiply MSE by 1000).
std::string FormatScaled(double value, double scale, int precision);

/// Marks the minimum entry of `values` in the formatted `cells` (appends
/// '*'), mirroring the paper's bold row minima. `cells` and `values` must
/// be parallel arrays.
void MarkRowMinimum(const std::vector<double>& values,
                    std::vector<std::string>& cells);

}  // namespace ldp

#endif  // LDPRANGE_EVAL_TABLE_PRINTER_H_
