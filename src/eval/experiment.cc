#include "eval/experiment.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "common/check.h"
#include "common/parallel.h"
#include "core/quantile.h"

namespace ldp {

void EncodePopulation(const Dataset& data, RangeMechanism& mechanism,
                      Rng& rng) {
  LDP_CHECK_EQ(data.domain(), mechanism.domain_size());
  // Stream the ascending expansion through the batch path in fixed-size
  // blocks: same value order and Rng draws as one big EncodeUsers call
  // (bit-identical), but O(block) transient memory instead of O(N) — at
  // paper scale (N = 2^26) a full expansion costs 512 MiB per concurrent
  // trial.
  constexpr uint64_t kBlock = uint64_t{1} << 16;
  std::vector<uint64_t> block;
  block.reserve(std::min<uint64_t>(kBlock, data.size()));
  const std::vector<uint64_t>& counts = data.counts();
  for (uint64_t z = 0; z < counts.size(); ++z) {
    uint64_t remaining = counts[z];
    while (remaining > 0) {
      uint64_t take = std::min<uint64_t>(remaining, kBlock - block.size());
      block.insert(block.end(), take, z);
      remaining -= take;
      if (block.size() == kBlock) {
        mechanism.EncodeUsers(block, rng);
        block.clear();
      }
    }
  }
  if (!block.empty()) {
    mechanism.EncodeUsers(block, rng);
  }
}

void EncodePopulationSharded(const Dataset& data, RangeMechanism& mechanism,
                             uint64_t seed, unsigned threads) {
  LDP_CHECK_EQ(data.domain(), mechanism.domain_size());
  std::vector<uint64_t> values = data.ExpandValues();
  EncodeUsersSharded(mechanism, values, seed, threads);
}

namespace {

struct TrialOutcome {
  ErrorStat errors;
};

// Ingests the trial population through the batch path: sequential stream
// when config.encode_threads == 1 (bit-identical to the historical
// per-user loop), sharded clones otherwise.
void EncodeTrialPopulation(const ExperimentConfig& config, const Dataset& data,
                           RangeMechanism& mechanism, Rng& rng) {
  if (config.encode_threads == 1) {
    EncodePopulation(data, mechanism, rng);
  } else {
    EncodePopulationSharded(data, mechanism, rng.Next(),
                            config.encode_threads);
  }
}

TrialOutcome RunRangeTrial(const ExperimentConfig& config,
                           const ValueDistribution& distribution,
                           const QueryWorkload& workload, uint64_t seed) {
  Rng rng(seed);
  Dataset data =
      Dataset::FromDistribution(distribution, config.population, rng);
  std::unique_ptr<RangeMechanism> mechanism =
      MakeMechanism(config.method, config.domain, config.epsilon);
  EncodeTrialPopulation(config, data, *mechanism, rng);
  mechanism->Finalize(rng);
  TrialOutcome outcome;
  workload.Visit(config.domain, [&](uint64_t a, uint64_t b) {
    outcome.errors.Add(mechanism->RangeQuery(a, b), data.TrueRange(a, b));
  });
  return outcome;
}

}  // namespace

ExperimentResult RunRangeExperiment(const ExperimentConfig& config,
                                    const ValueDistribution& distribution,
                                    const QueryWorkload& workload) {
  LDP_CHECK_EQ(distribution.domain(), config.domain);
  LDP_CHECK_GE(config.trials, 1u);
  unsigned threads =
      config.threads != 0 ? config.threads : HardwareThreads();
  ExperimentResult result;
  std::mutex mu;
  ParallelFor(config.trials, threads,
              [&](unsigned /*chunk*/, uint64_t begin, uint64_t end) {
                for (uint64_t t = begin; t < end; ++t) {
                  TrialOutcome outcome = RunRangeTrial(
                      config, distribution, workload, config.seed + t);
                  std::lock_guard<std::mutex> lock(mu);
                  result.per_trial_mse.Add(outcome.errors.mse());
                  result.per_trial_mae.Add(outcome.errors.mae());
                  result.pooled.Merge(outcome.errors);
                }
              });
  return result;
}

QuantileExperimentResult RunQuantileExperiment(
    const ExperimentConfig& config, const ValueDistribution& distribution,
    const std::vector<double>& phis) {
  LDP_CHECK_EQ(distribution.domain(), config.domain);
  LDP_CHECK(!phis.empty());
  unsigned threads =
      config.threads != 0 ? config.threads : HardwareThreads();
  QuantileExperimentResult result;
  result.phis = phis;
  result.value_error.resize(phis.size());
  result.quantile_error.resize(phis.size());
  std::mutex mu;
  ParallelFor(config.trials, threads,
              [&](unsigned /*chunk*/, uint64_t begin, uint64_t end) {
                for (uint64_t t = begin; t < end; ++t) {
                  Rng rng(config.seed + t);
                  Dataset data = Dataset::FromDistribution(
                      distribution, config.population, rng);
                  std::unique_ptr<RangeMechanism> mechanism = MakeMechanism(
                      config.method, config.domain, config.epsilon);
                  EncodeTrialPopulation(config, data, *mechanism, rng);
                  mechanism->Finalize(rng);
                  std::vector<double> cdf = data.Cdf();
                  for (size_t i = 0; i < phis.size(); ++i) {
                    QuantileEvaluation eval =
                        EvaluateQuantile(*mechanism, cdf, phis[i]);
                    std::lock_guard<std::mutex> lock(mu);
                    result.value_error[i].Add(eval.value_error);
                    result.quantile_error[i].Add(eval.quantile_error);
                  }
                }
              });
  return result;
}

}  // namespace ldp
