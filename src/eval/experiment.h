// End-to-end experiment runner (paper Section 5 methodology).
//
// One *trial* is a full protocol simulation: sample a fresh population from
// the input distribution, run every user's client-side encoder, finalize the
// aggregator, then score a query workload against ground truth. Experiments
// repeat trials with independent seeds and report the mean and standard
// deviation of the per-trial MSE — exactly how the paper's bars and tables
// are produced ("each bar plot is the mean of 5 repetitions ... error bars
// capture the observed standard deviation").

#ifndef LDPRANGE_EVAL_EXPERIMENT_H_
#define LDPRANGE_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "core/method.h"
#include "data/dataset.h"
#include "data/distributions.h"
#include "data/workload.h"

namespace ldp {

/// Parameters of one experiment cell.
struct ExperimentConfig {
  uint64_t domain = 256;           ///< D
  uint64_t population = 1 << 20;   ///< N
  double epsilon = 1.1;            ///< the paper's default e^eps = 3
  MethodSpec method;               ///< which mechanism to run
  uint64_t trials = 5;             ///< repetitions (paper: 5)
  uint64_t seed = 42;              ///< master seed; trial t uses seed + t
  unsigned threads = 0;            ///< 0 = one thread per hardware core
  /// Worker threads for ingestion *within* one trial (EncodeUsersSharded).
  /// 1 (default) keeps the sequential single-Rng stream — bit-identical to
  /// the historical per-user path; >1 (or 0 = hardware threads) shards the
  /// user stream across clones, useful when trials alone cannot saturate
  /// the machine (few trials, huge N).
  unsigned encode_threads = 1;
};

/// Aggregated outcome over all trials.
struct ExperimentResult {
  /// Distribution of per-trial MSE values (the paper's bar + error bar).
  RunningStat per_trial_mse;
  /// Distribution of per-trial mean absolute error.
  RunningStat per_trial_mae;
  /// Pooled per-query error stats across every query of every trial.
  ErrorStat pooled;

  double mean_mse() const { return per_trial_mse.mean(); }
  double stddev_mse() const { return per_trial_mse.sample_stddev(); }
};

/// Per-quantile outcome of a quantile experiment (paper Figure 9).
struct QuantileExperimentResult {
  std::vector<double> phis;
  /// value_error[i]: |returned item - true item| stats across trials.
  std::vector<RunningStat> value_error;
  /// quantile_error[i]: |CDF(returned) - phi| stats across trials.
  std::vector<RunningStat> quantile_error;
};

/// Runs the range-query experiment described by `config` over `workload`.
ExperimentResult RunRangeExperiment(const ExperimentConfig& config,
                                    const ValueDistribution& distribution,
                                    const QueryWorkload& workload);

/// Runs the quantile experiment for the given quantile fractions.
QuantileExperimentResult RunQuantileExperiment(
    const ExperimentConfig& config, const ValueDistribution& distribution,
    const std::vector<double>& phis);

/// Feeds every user of `data` through the mechanism's client-side encoder
/// via the batched EncodeUsers path (one sequential Rng stream — the draws
/// are bit-identical to the historical per-user loop). Exposed for examples
/// and tests building custom pipelines.
void EncodePopulation(const Dataset& data, RangeMechanism& mechanism,
                      Rng& rng);

/// Sharded variant: splits the population across up to `threads` mechanism
/// clones (0 = one per hardware core) with deterministic per-chunk Rng
/// streams derived from `seed`; see EncodeUsersSharded for the determinism
/// contract.
void EncodePopulationSharded(const Dataset& data, RangeMechanism& mechanism,
                             uint64_t seed, unsigned threads = 0);

}  // namespace ldp

#endif  // LDPRANGE_EVAL_EXPERIMENT_H_
