#include "service/aggregator_server.h"

#include "common/check.h"
#include "obs/scoped_timer.h"

namespace ldp::service {

std::span<const uint8_t> AggregatorServer::AcceptedWireVersions() const {
  return protocol::ServerAcceptedVersions();
}

double AggregatorServer::BoxQuery(std::span<const AxisInterval> box) const {
  LDP_CHECK_EQ(box.size(), size_t{1});
  return RangeQuery(box[0].lo, box[0].hi);
}

RangeEstimate AggregatorServer::BoxQueryWithUncertainty(
    std::span<const AxisInterval> box) const {
  LDP_CHECK_EQ(box.size(), size_t{1});
  return RangeQueryWithUncertainty(box[0].lo, box[0].hi);
}

protocol::ParseError AggregatorServer::AbsorbBatchSerialized(
    std::span<const uint8_t> bytes, uint64_t* accepted) {
  obs::ScopedTimer timer(&absorb_batch_ns_, "server.absorb_batch");
  return DoAbsorbBatchSerialized(bytes, accepted);
}

void AggregatorServer::Finalize() {
  LDP_CHECK_MSG(!finalized_, "Finalize called twice");
  {
    obs::ScopedTimer timer(&finalize_ns_, "server.finalize");
    DoFinalize();
  }
  finalized_ = true;
}

uint64_t AggregatorServer::QuantileQuery(double phi) const {
  LDP_CHECK_MSG(finalized_, "QuantileQuery before Finalize");
  LDP_CHECK(phi >= 0.0 && phi <= 1.0);
  // Prefix estimates are noisy and need not be monotone; the search still
  // terminates and lands within the noise envelope of the true quantile
  // (paper Section 4.7 evaluates exactly this procedure).
  uint64_t lo = 0;
  uint64_t hi = domain() - 1;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (RangeQuery(0, mid) >= phi) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace ldp::service
