#include "service/aggregator_server.h"

#include <bit>

#include "common/check.h"
#include "obs/scoped_timer.h"

namespace ldp::service {

namespace {

// Epsilon equality for merge compatibility: exact bit pattern, so two
// servers whose budgets differ in the last ulp never silently mix.
bool SameEpsilonBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

}  // namespace

std::span<const uint8_t> AggregatorServer::AcceptedWireVersions() const {
  return protocol::ServerAcceptedVersions();
}

double AggregatorServer::BoxQuery(std::span<const AxisInterval> box) const {
  LDP_CHECK_EQ(box.size(), size_t{1});
  return RangeQuery(box[0].lo, box[0].hi);
}

RangeEstimate AggregatorServer::BoxQueryWithUncertainty(
    std::span<const AxisInterval> box) const {
  LDP_CHECK_EQ(box.size(), size_t{1});
  return RangeQueryWithUncertainty(box[0].lo, box[0].hi);
}

protocol::ParseError AggregatorServer::AbsorbBatchSerialized(
    std::span<const uint8_t> bytes, uint64_t* accepted) {
  obs::ScopedTimer timer(&absorb_batch_ns_, "server.absorb_batch");
  return DoAbsorbBatchSerialized(bytes, accepted);
}

void AggregatorServer::Finalize() {
  LDP_CHECK_MSG(!finalized_, "Finalize called twice");
  {
    obs::ScopedTimer timer(&finalize_ns_, "server.finalize");
    DoFinalize();
  }
  finalized_ = true;
}

std::vector<uint8_t> AggregatorServer::SerializeState() const {
  StateSnapshotHeader header;
  header.kind = state_kind();
  header.dimensions = dimensions();
  header.domain = domain();
  header.fanout = state_fanout();
  header.eps = state_epsilon();
  ServerStats counts = stats();
  header.accepted = counts.accepted;
  header.rejected = counts.rejected;
  std::vector<uint8_t> body;
  AppendStateBody(body);
  return SerializeStateSnapshot(header, body);
}

MergeStatus AggregatorServer::MergeSerializedState(
    std::span<const uint8_t> snapshot) {
  if (finalized_) return MergeStatus::kAlreadyFinalized;
  std::unique_ptr<AggregatorServer> shard;
  MergeStatus status = RestoreShardFromSnapshot(snapshot, &shard);
  if (status != MergeStatus::kOk) return status;
  return MergeFrom(*shard);
}

MergeStatus AggregatorServer::RestoreShardFromSnapshot(
    std::span<const uint8_t> snapshot,
    std::unique_ptr<AggregatorServer>* shard) const {
  StateSnapshotHeader header;
  if (ParseStateSnapshot(snapshot, &header) != protocol::ParseError::kOk) {
    return MergeStatus::kMalformedSnapshot;
  }
  if (header.kind != state_kind()) return MergeStatus::kMechanismMismatch;
  if (header.dimensions != dimensions() || header.domain != domain() ||
      header.fanout != state_fanout() ||
      !SameEpsilonBits(header.eps, state_epsilon())) {
    return MergeStatus::kConfigMismatch;
  }
  // Restore into a fresh clone, not into *this: a body that fails
  // mid-restore is discarded with the clone and this server's aggregate
  // stays untouched.
  std::unique_ptr<AggregatorServer> restored = DoCloneEmpty();
  if (!restored->RestoreStateBody(header.body)) {
    return MergeStatus::kMalformedSnapshot;
  }
  restored->stats_.CountAccepted(header.accepted);
  restored->stats_.CountRejected(header.rejected);
  *shard = std::move(restored);
  return MergeStatus::kOk;
}

MergeStatus AggregatorServer::MergeFrom(AggregatorServer& other) {
  if (finalized_ || other.finalized_) return MergeStatus::kAlreadyFinalized;
  if (other.state_kind() != state_kind()) {
    return MergeStatus::kMechanismMismatch;
  }
  if (other.dimensions() != dimensions() || other.domain() != domain() ||
      other.state_fanout() != state_fanout() ||
      !SameEpsilonBits(other.state_epsilon(), state_epsilon())) {
    return MergeStatus::kConfigMismatch;
  }
  MergeStatus status = DoMergeFrom(other);
  if (status != MergeStatus::kOk) return status;
  ServerStats counts = other.stats();
  stats_.CountAccepted(counts.accepted);
  stats_.CountRejected(counts.rejected);
  return MergeStatus::kOk;
}

uint64_t AggregatorServer::QuantileQuery(double phi) const {
  LDP_CHECK_MSG(finalized_, "QuantileQuery before Finalize");
  LDP_CHECK(phi >= 0.0 && phi <= 1.0);
  // Prefix estimates are noisy and need not be monotone; the search still
  // terminates and lands within the noise envelope of the true quantile
  // (paper Section 4.7 evaluates exactly this procedure).
  uint64_t lo = 0;
  uint64_t hi = domain() - 1;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (RangeQuery(0, mid) >= phi) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace ldp::service
