// Wire formats of the aggregator service's two new message planes.
//
// Streaming ingestion framing — a session of chunked report batches:
//
//   kStreamBegin  [session_id u64][server_id u64]
//   kStreamChunk  [session_id u64][sequence varint][nested bytes ...]
//   kStreamEnd    [session_id u64][chunk_count varint][flags u8]
//
// A chunk's nested bytes are themselves one complete framed v2 batch
// message (kFlatHrrBatch, kAheadReportBatch, ...), so the service can
// hand them straight to AggregatorServer::AbsorbBatchSerialized without
// re-framing. Sequence numbers start at 0 and make chunks idempotent:
// duplicates are dropped, out-of-order arrival is fine (every server
// aggregate is a commutative counter, so absorb order cannot change the
// final state). kStreamEnd declares how many distinct chunks the client
// sent; a session whose seen-set does not cover [0, chunk_count) is
// incomplete and will not trigger the finalize flag.
//
// Query plane — the protocol's first server -> client result messages:
//
//   kRangeQueryRequest   [query_id u64][server_id u64][count varint]
//                          [count x (lo varint, hi varint)]
//   kRangeQueryResponse  [query_id u64][status u8][count varint]
//                          [count x (estimate f64, variance f64)]
//
// and their multidim analogues, where each of the count boxes carries
// one inclusive interval per axis:
//
//   kMultiDimQuery          [query_id u64][server_id u64][dims u8]
//                             [count varint]
//                             [count x dims x (lo varint, hi varint)]
//   kMultiDimQueryResponse  [query_id u64][status u8][count varint]
//                             [count x (estimate f64, variance f64)]
//
// Intervals are inclusive [lo, hi] over the server's value domain. Every
// failure a client can provoke — unknown server, querying before the
// session finalized, an empty interval list, an interval outside the
// domain — comes back as a typed QueryStatus in the response, never a
// crash and never silence. All parsers here are total over adversarial
// bytes, same discipline as protocol/envelope.h.

#ifndef LDPRANGE_SERVICE_STREAM_WIRE_H_
#define LDPRANGE_SERVICE_STREAM_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "protocol/envelope.h"

namespace ldp::service {

using protocol::ParseError;

/// kStreamEnd flag bit: finalize the target server once the session has
/// drained completely (all declared chunks absorbed).
inline constexpr uint8_t kStreamFlagFinalize = 0x01;

/// Opens a streaming session `session_id` against hosted server
/// `server_id`.
struct StreamBegin {
  uint64_t session_id = 0;
  uint64_t server_id = 0;

  bool operator==(const StreamBegin&) const = default;
};

/// One chunk of a session: a sequence number and a nested framed batch
/// message. `payload` borrows from the parsed buffer — the caller's
/// bytes must outlive it.
struct StreamChunk {
  uint64_t session_id = 0;
  uint64_t sequence = 0;
  std::span<const uint8_t> payload;
};

/// Closes a session, declaring the number of distinct chunks sent.
struct StreamEnd {
  uint64_t session_id = 0;
  uint64_t chunk_count = 0;
  uint8_t flags = 0;

  bool operator==(const StreamEnd&) const = default;
};

std::vector<uint8_t> SerializeStreamBegin(const StreamBegin& msg);
std::vector<uint8_t> SerializeStreamChunk(uint64_t session_id,
                                          uint64_t sequence,
                                          std::span<const uint8_t> payload);
std::vector<uint8_t> SerializeStreamEnd(const StreamEnd& msg);

ParseError ParseStreamBegin(std::span<const uint8_t> bytes, StreamBegin* out);
ParseError ParseStreamChunk(std::span<const uint8_t> bytes, StreamChunk* out);
ParseError ParseStreamEnd(std::span<const uint8_t> bytes, StreamEnd* out);

/// One inclusive query interval [lo, hi].
struct QueryInterval {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const QueryInterval&) const = default;
};

/// A batch of range queries against hosted server `server_id`.
struct RangeQueryRequest {
  uint64_t query_id = 0;
  uint64_t server_id = 0;
  std::vector<QueryInterval> intervals;

  bool operator==(const RangeQueryRequest&) const = default;
};

/// Typed outcome of a range-query request. Values are wire format —
/// never renumber.
enum class QueryStatus : uint8_t {
  kOk = 0,
  kMalformedRequest = 1,   // request bytes did not parse
  kUnknownServer = 2,      // server_id not hosted by this service
  kNotFinalized = 3,       // session not finalized; estimates not ready
  kEmptyIntervalList = 4,  // request carried zero intervals
  kIntervalOutOfDomain = 5,  // some hi >= domain
  kIntervalReversed = 6,     // some lo > hi
  kDimensionMismatch = 7,    // box dimensionality != server dimensions()
};

/// Stable identifier for logs and tests ("ok", "not_finalized", ...).
std::string QueryStatusName(QueryStatus status);

/// One interval's answer: the debiased estimate and the mechanism's
/// analytic variance for that interval (stddev squared).
struct IntervalEstimate {
  double estimate = 0.0;
  double variance = 0.0;

  bool operator==(const IntervalEstimate&) const = default;
};

/// Answer to a RangeQueryRequest. On any non-kOk status `estimates` is
/// empty; on kOk it has one entry per requested interval, in order.
struct RangeQueryResponse {
  uint64_t query_id = 0;
  QueryStatus status = QueryStatus::kOk;
  std::vector<IntervalEstimate> estimates;

  bool operator==(const RangeQueryResponse&) const = default;
};

std::vector<uint8_t> SerializeRangeQueryRequest(const RangeQueryRequest& msg);
std::vector<uint8_t> SerializeRangeQueryResponse(
    const RangeQueryResponse& msg);

ParseError ParseRangeQueryRequest(std::span<const uint8_t> bytes,
                                  RangeQueryRequest* out);
ParseError ParseRangeQueryResponse(std::span<const uint8_t> bytes,
                                   RangeQueryResponse* out);

/// One axis-aligned query box: an inclusive interval per axis (axes[0]
/// is dimension 0; every box in a request carries the same axis count).
struct QueryBox {
  std::vector<QueryInterval> axes;

  bool operator==(const QueryBox&) const = default;
};

/// A batch of box queries against hosted server `server_id` —
/// kMultiDimQuery, the multidim analogue of RangeQueryRequest.
/// `dimensions` must match the target server's dimensions() or the
/// response comes back kDimensionMismatch; a 1-D server answers
/// dimensions == 1 requests through the BoxQuery default.
struct MultiDimQueryRequest {
  uint64_t query_id = 0;
  uint64_t server_id = 0;
  uint32_t dimensions = 1;
  std::vector<QueryBox> boxes;

  bool operator==(const MultiDimQueryRequest&) const = default;
};

/// Answer to a MultiDimQueryRequest. On any non-kOk status `estimates`
/// is empty; on kOk it has one (estimate, variance) entry per requested
/// box, in order.
struct MultiDimQueryResponse {
  uint64_t query_id = 0;
  QueryStatus status = QueryStatus::kOk;
  std::vector<IntervalEstimate> estimates;

  bool operator==(const MultiDimQueryResponse&) const = default;
};

std::vector<uint8_t> SerializeMultiDimQueryRequest(
    const MultiDimQueryRequest& msg);
std::vector<uint8_t> SerializeMultiDimQueryResponse(
    const MultiDimQueryResponse& msg);

ParseError ParseMultiDimQueryRequest(std::span<const uint8_t> bytes,
                                     MultiDimQueryRequest* out);
ParseError ParseMultiDimQueryResponse(std::span<const uint8_t> bytes,
                                      MultiDimQueryResponse* out);

}  // namespace ldp::service

#endif  // LDPRANGE_SERVICE_STREAM_WIRE_H_
