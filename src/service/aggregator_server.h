// The one server interface behind every LDP aggregator in this repo.
//
// The paper's aggregator is a single logical service: it absorbs noisy
// reports off the wire and answers range queries. This interface is that
// shape, extracted from the four mechanism servers that used to be
// copy-alike siblings (FlatHrrServer, HaarHrrServer, TreeHrrServer,
// AheadServer). Everything a deployment routes by — serialized ingestion,
// accept/reject accounting, wire-version acceptance, finalize-once
// discipline, range/frequency/quantile queries — lives here; subclasses
// only supply the mechanism-specific decode + aggregate + estimate math.
//
// The streaming service (service/aggregator_service.h) hosts any number
// of AggregatorServer instances and drives them entirely through this
// interface, which is what lets one ingestion/query plane serve all four
// mechanism families (and the next one) without per-mechanism plumbing.

#ifndef LDPRANGE_SERVICE_AGGREGATOR_SERVER_H_
#define LDPRANGE_SERVICE_AGGREGATOR_SERVER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/range_mechanism.h"
#include "obs/metrics.h"
#include "protocol/envelope.h"
#include "service/server_stats.h"
#include "service/state_wire.h"

namespace ldp::service {

/// Abstract wire-facing LDP aggregator: serialized reports in, range
/// estimates out. Lifecycle: any number of Absorb* calls, exactly one
/// Finalize(), then any number of queries (pure post-processing).
class AggregatorServer {
 public:
  virtual ~AggregatorServer() = default;

  AggregatorServer(const AggregatorServer&) = delete;
  AggregatorServer& operator=(const AggregatorServer&) = delete;

  /// Short mechanism identifier for logs and bench tables ("FlatHrr",
  /// "HaarHrr", "TreeHrr", "Ahead").
  virtual std::string Name() const = 0;

  /// Domain size D; queries address values in [0, D). Per-axis for
  /// multidim servers (dimensions() > 1).
  virtual uint64_t domain() const = 0;

  /// Number of axes the server's mechanism covers; 1 for the classic 1-D
  /// servers. Boxes handed to BoxQuery* carry dimensions() intervals.
  virtual uint32_t dimensions() const { return 1; }

  /// Wire versions this server's ingestion path accepts (newest last).
  /// Defaults to the build-wide set; v2-only mechanisms override.
  virtual std::span<const uint8_t> AcceptedWireVersions() const;

  /// Parses + ingests one serialized report; false (counted as a
  /// rejection) on any parse or range failure. Total over arbitrary
  /// bytes — a server must reject garbage, never crash on it.
  virtual bool AbsorbSerialized(std::span<const uint8_t> bytes) = 0;

  /// Parses + ingests one framed v2 batch message. On kOk, per-item
  /// malformed/out-of-range reports are counted as rejections and
  /// `accepted` (may be null) receives the number absorbed; a structural
  /// failure counts one rejection for the whole message. Non-virtual:
  /// the base times every call into absorb_batch_latency() around the
  /// mechanism-specific DoAbsorbBatchSerialized.
  protocol::ParseError AbsorbBatchSerialized(std::span<const uint8_t> bytes,
                                             uint64_t* accepted = nullptr);

  /// Debiases the aggregate and builds the query structure. Must be
  /// called exactly once, after all reports and before any query.
  void Finalize();
  bool finalized() const { return finalized_; }

  /// Estimated fraction of users with value in the inclusive range
  /// [a, b]; requires a <= b < domain() and a finalized server.
  virtual double RangeQuery(uint64_t a, uint64_t b) const = 0;

  /// RangeQuery plus the mechanism's analytic uncertainty for that range
  /// (worst-case variance envelope for the fixed-shape mechanisms, the
  /// exact per-node accounting for AHEAD). The wire query plane ships
  /// this as (estimate, variance) pairs. Pure virtual on purpose: a
  /// defaulted 0 (or even +inf) here would let a new mechanism silently
  /// ship a wrong confidence bound — deciding the envelope is part of
  /// implementing a server.
  virtual RangeEstimate RangeQueryWithUncertainty(uint64_t a,
                                                  uint64_t b) const = 0;

  /// Axis-aligned box query (box.size() == dimensions(), inclusive
  /// per-axis bounds). The default forwards 1-axis boxes to RangeQuery,
  /// so every 1-D server answers dimensions() == 1 box queries; multidim
  /// servers override.
  virtual double BoxQuery(std::span<const AxisInterval> box) const;
  virtual RangeEstimate BoxQueryWithUncertainty(
      std::span<const AxisInterval> box) const;

  /// Estimated per-item frequency vector (length = domain()).
  virtual std::vector<double> EstimateFrequencies() const = 0;

  /// Serializes this server's complete partial-aggregate state as one
  /// framed kStateSnapshot message (service/state_wire.h): configuration
  /// header + canonical mechanism state body. Call on a quiesced,
  /// *unfinalized* server — the snapshot is the shard's hand-off to a
  /// query node, taken after ingestion drains and instead of finalizing
  /// locally. Canonical: a restored snapshot re-serializes to the same
  /// bytes.
  std::vector<uint8_t> SerializeState() const;

  /// Merges one serialized kStateSnapshot into this server. Total over
  /// adversarial bytes: parses + validates the snapshot against this
  /// server's kind and exact configuration (eps by f64 bit pattern),
  /// restores the body into a fresh empty clone, and folds the clone in
  /// via MergeFrom — so a snapshot that fails mid-restore never leaves
  /// partial state behind. Returns a typed MergeStatus; kOk means the
  /// state and its accept/reject accounting were absorbed.
  MergeStatus MergeSerializedState(std::span<const uint8_t> snapshot);

  /// The validate-and-clone half of MergeSerializedState: parses the
  /// snapshot, checks it against this server's kind and exact
  /// configuration, and restores the body (plus its accept/reject
  /// accounting) into a fresh empty clone WITHOUT touching this server.
  /// On kOk `*shard` owns the restored clone. The service merge plane
  /// buffers these per fan-in group, then reduces them pairwise once
  /// every shard has arrived.
  MergeStatus RestoreShardFromSnapshot(
      std::span<const uint8_t> snapshot,
      std::unique_ptr<AggregatorServer>* shard) const;

  /// A fresh, empty server with this server's exact configuration — the
  /// merge-shard contract (mirrors FrequencyOracle::CloneEmpty).
  std::unique_ptr<AggregatorServer> CloneEmpty() const { return DoCloneEmpty(); }

  /// Folds `other`'s aggregate state and ingestion accounting into this
  /// server. Both must be unfinalized and identically configured. May
  /// consume `other` (OLH pending queues splice in O(1)) — merge a shard
  /// once, then discard it. Aggregates are integer sums, so the result is
  /// bit-identical for every merge order and pairing.
  MergeStatus MergeFrom(AggregatorServer& other);

  /// Smallest item whose estimated prefix mass reaches phi — the binary
  /// search every server used to reimplement (paper Section 4.7).
  uint64_t QuantileQuery(double phi) const;

  /// Shared ingestion accounting. accepted_reports()/rejected_reports()
  /// are the historical accessors; stats() is a coherent value snapshot
  /// of the live counters (lock-free — safe to call while another thread
  /// is absorbing; exact once ingestion for this server quiesces).
  ServerStats stats() const { return stats_.Snapshot(); }
  uint64_t accepted_reports() const { return stats_.accepted(); }
  uint64_t rejected_reports() const { return stats_.rejected(); }

  /// Stage latency histograms, recorded by the base around every
  /// AbsorbBatchSerialized call and the one DoFinalize — nanoseconds,
  /// snapshotted lock-free for the service's stats plane.
  obs::HistogramSnapshot absorb_batch_latency() const {
    return absorb_batch_ns_.Snapshot();
  }
  obs::HistogramSnapshot finalize_latency() const {
    return finalize_ns_.Snapshot();
  }

 protected:
  AggregatorServer() = default;

  /// Mechanism-specific finalize body; the base enforces the once-only
  /// discipline around it.
  virtual void DoFinalize() = 0;

  /// Mechanism-specific batch ingestion body behind AbsorbBatchSerialized
  /// (which documents the contract and owns the timing).
  virtual protocol::ParseError DoAbsorbBatchSerialized(
      std::span<const uint8_t> bytes, uint64_t* accepted) = 0;

  /// Which StateKind this server's snapshots carry.
  virtual StateKind state_kind() const = 0;

  /// The tree fanout named in the snapshot header; 0 for mechanisms
  /// without one (flat, haar — whose dyadic structure is implied by the
  /// domain).
  virtual uint64_t state_fanout() const { return 0; }

  /// The privacy budget named in the snapshot header. Compared by f64 bit
  /// pattern on merge: servers that disagree in the last ulp ran
  /// different mechanisms.
  virtual double state_epsilon() const = 0;

  /// Appends the mechanism-specific state body (everything beyond the
  /// snapshot header) in its canonical form.
  virtual void AppendStateBody(std::vector<uint8_t>& out) const = 0;

  /// Restores a state body into this (freshly cloned, empty) server.
  /// Total over adversarial bytes: false on any truncation, forged
  /// count, or cross-check failure — the caller discards the clone then,
  /// so partially-written state never escapes.
  virtual bool RestoreStateBody(std::span<const uint8_t> body) = 0;

  /// CloneEmpty body: a fresh default-state instance of the concrete
  /// class with identical configuration.
  virtual std::unique_ptr<AggregatorServer> DoCloneEmpty() const = 0;

  /// MergeFrom body: fold `other`'s aggregate (already validated to be
  /// the same concrete class and configuration; may consume it). Returns
  /// kStateMismatch when the states themselves disagree (two different
  /// AHEAD trees); the base handles the accept/reject accounting.
  virtual MergeStatus DoMergeFrom(AggregatorServer& other) = 0;

  /// The batch-absorb accounting loop all four servers used to duplicate:
  /// parse with `parse_batch` (signature of Parse*ReportBatch), reject the
  /// whole message on a structural failure, otherwise count per-item
  /// malformed slots as rejections and absorb the rest via `absorb_batch`.
  template <typename Report, typename ParseBatchFn, typename AbsorbBatchFn>
  protocol::ParseError IngestBatchMessage(std::span<const uint8_t> bytes,
                                          ParseBatchFn&& parse_batch,
                                          AbsorbBatchFn&& absorb_batch,
                                          uint64_t* accepted) {
    std::vector<Report> reports;
    uint64_t malformed = 0;
    protocol::ParseError err =
        std::forward<ParseBatchFn>(parse_batch)(bytes, &reports, &malformed);
    if (err != protocol::ParseError::kOk) {
      stats_.CountRejected();
      if (accepted != nullptr) *accepted = 0;
      return err;
    }
    stats_.CountRejected(malformed);
    uint64_t ok = std::forward<AbsorbBatchFn>(absorb_batch)(
        std::span<const Report>(reports));
    if (accepted != nullptr) *accepted = ok;
    return protocol::ParseError::kOk;
  }

  ServerCounters stats_;
  bool finalized_ = false;

 private:
  obs::LatencyHistogram absorb_batch_ns_;
  obs::LatencyHistogram finalize_ns_;
};

}  // namespace ldp::service

#endif  // LDPRANGE_SERVICE_AGGREGATOR_SERVER_H_
