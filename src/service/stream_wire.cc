#include "service/stream_wire.h"

#include <utility>

#include "common/check.h"
#include "protocol/wire.h"

namespace ldp::service {

using protocol::AppendEnvelopeHeader;
using protocol::AppendF64;
using protocol::AppendU64;
using protocol::AppendU8;
using protocol::AppendVarU64;
using protocol::DecodeEnvelope;
using protocol::EncodeEnvelope;
using protocol::Envelope;
using protocol::MechanismTag;
using protocol::WireReader;

namespace {

// Decodes the envelope and checks the expected tag; kBadPayload on a tag
// mismatch (the bytes are a valid message of some other kind).
ParseError OpenEnvelope(std::span<const uint8_t> bytes, MechanismTag expected,
                        Envelope* env) {
  ParseError err = DecodeEnvelope(bytes, env);
  if (err != ParseError::kOk) return err;
  if (env->mechanism != expected) return ParseError::kBadPayload;
  return ParseError::kOk;
}

bool IsKnownQueryStatus(uint8_t status) {
  return status <= static_cast<uint8_t>(QueryStatus::kDimensionMismatch);
}

// The two query-response messages share one payload shape:
// [query u64][status u8][count varint][count x (estimate f64,
// variance f64)] — only the tag differs.
std::vector<uint8_t> SerializeEstimateResponse(
    MechanismTag tag, uint64_t query_id, QueryStatus status,
    std::span<const IntervalEstimate> estimates) {
  std::vector<uint8_t> payload;
  payload.reserve(18 + estimates.size() * 16);
  AppendU64(payload, query_id);
  AppendU8(payload, static_cast<uint8_t>(status));
  AppendVarU64(payload, estimates.size());
  for (const IntervalEstimate& e : estimates) {
    AppendF64(payload, e.estimate);
    AppendF64(payload, e.variance);
  }
  return EncodeEnvelope(tag, payload);
}

ParseError ParseEstimateResponse(MechanismTag tag,
                                 std::span<const uint8_t> bytes,
                                 uint64_t* query_id, QueryStatus* status,
                                 std::vector<IntervalEstimate>* estimates) {
  Envelope env;
  ParseError err = OpenEnvelope(bytes, tag, &env);
  if (err != ParseError::kOk) return err;
  WireReader reader(env.payload);
  uint8_t raw_status = 0;
  uint64_t count = 0;
  if (!reader.ReadU64(query_id) || !reader.ReadU8(&raw_status) ||
      !reader.ReadVarU64(&count)) {
    return ParseError::kBadPayload;
  }
  if (!IsKnownQueryStatus(raw_status)) return ParseError::kBadPayload;
  *status = static_cast<QueryStatus>(raw_status);
  // Fixed 16 bytes per estimate pair: exact-size check before reserve.
  if (count > reader.Remaining() / 16 ||
      reader.Remaining() != count * 16) {
    return ParseError::kBadPayload;
  }
  estimates->clear();
  estimates->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    IntervalEstimate e;
    if (!reader.ReadF64(&e.estimate) || !reader.ReadF64(&e.variance)) {
      return ParseError::kBadPayload;
    }
    estimates->push_back(e);
  }
  return ParseError::kOk;
}

}  // namespace

std::vector<uint8_t> SerializeStreamBegin(const StreamBegin& msg) {
  std::vector<uint8_t> payload;
  payload.reserve(16);
  AppendU64(payload, msg.session_id);
  AppendU64(payload, msg.server_id);
  return EncodeEnvelope(MechanismTag::kStreamBegin, payload);
}

std::vector<uint8_t> SerializeStreamChunk(uint64_t session_id,
                                          uint64_t sequence,
                                          std::span<const uint8_t> payload) {
  // Chunks carry whole report batches; build the envelope in place so
  // the (potentially large) nested bytes are copied exactly once.
  std::vector<uint8_t> prefix;
  prefix.reserve(18);
  AppendU64(prefix, session_id);
  AppendVarU64(prefix, sequence);
  std::vector<uint8_t> out;
  out.reserve(protocol::kEnvelopeHeaderSize + prefix.size() +
              payload.size());
  AppendEnvelopeHeader(out, MechanismTag::kStreamChunk,
                       static_cast<uint32_t>(prefix.size() + payload.size()));
  out.insert(out.end(), prefix.begin(), prefix.end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<uint8_t> SerializeStreamEnd(const StreamEnd& msg) {
  std::vector<uint8_t> payload;
  payload.reserve(19);
  AppendU64(payload, msg.session_id);
  AppendVarU64(payload, msg.chunk_count);
  AppendU8(payload, msg.flags);
  return EncodeEnvelope(MechanismTag::kStreamEnd, payload);
}

ParseError ParseStreamBegin(std::span<const uint8_t> bytes,
                            StreamBegin* out) {
  Envelope env;
  ParseError err = OpenEnvelope(bytes, MechanismTag::kStreamBegin, &env);
  if (err != ParseError::kOk) return err;
  WireReader reader(env.payload);
  StreamBegin msg;
  if (!reader.ReadU64(&msg.session_id) || !reader.ReadU64(&msg.server_id) ||
      !reader.AtEnd()) {
    return ParseError::kBadPayload;
  }
  *out = msg;
  return ParseError::kOk;
}

ParseError ParseStreamChunk(std::span<const uint8_t> bytes,
                            StreamChunk* out) {
  Envelope env;
  ParseError err = OpenEnvelope(bytes, MechanismTag::kStreamChunk, &env);
  if (err != ParseError::kOk) return err;
  WireReader reader(env.payload);
  StreamChunk msg;
  if (!reader.ReadU64(&msg.session_id) ||
      !reader.ReadVarU64(&msg.sequence)) {
    return ParseError::kBadPayload;
  }
  // The remainder is the nested batch message, borrowed as-is; its own
  // envelope is validated when the chunk is absorbed. An empty nested
  // message is structurally fine (it will be rejected at absorb time).
  if (!reader.ReadBytes(reader.Remaining(), &msg.payload)) {
    return ParseError::kBadPayload;
  }
  *out = msg;
  return ParseError::kOk;
}

ParseError ParseStreamEnd(std::span<const uint8_t> bytes, StreamEnd* out) {
  Envelope env;
  ParseError err = OpenEnvelope(bytes, MechanismTag::kStreamEnd, &env);
  if (err != ParseError::kOk) return err;
  WireReader reader(env.payload);
  StreamEnd msg;
  if (!reader.ReadU64(&msg.session_id) ||
      !reader.ReadVarU64(&msg.chunk_count) || !reader.ReadU8(&msg.flags) ||
      !reader.AtEnd()) {
    return ParseError::kBadPayload;
  }
  *out = msg;
  return ParseError::kOk;
}

std::string QueryStatusName(QueryStatus status) {
  switch (status) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kMalformedRequest: return "malformed_request";
    case QueryStatus::kUnknownServer: return "unknown_server";
    case QueryStatus::kNotFinalized: return "not_finalized";
    case QueryStatus::kEmptyIntervalList: return "empty_interval_list";
    case QueryStatus::kIntervalOutOfDomain: return "interval_out_of_domain";
    case QueryStatus::kIntervalReversed: return "interval_reversed";
    case QueryStatus::kDimensionMismatch: return "dimension_mismatch";
  }
  return "?";
}

std::vector<uint8_t> SerializeRangeQueryRequest(const RangeQueryRequest& msg) {
  std::vector<uint8_t> payload;
  payload.reserve(26 + msg.intervals.size() * 4);
  AppendU64(payload, msg.query_id);
  AppendU64(payload, msg.server_id);
  AppendVarU64(payload, msg.intervals.size());
  for (const QueryInterval& interval : msg.intervals) {
    AppendVarU64(payload, interval.lo);
    AppendVarU64(payload, interval.hi);
  }
  return EncodeEnvelope(MechanismTag::kRangeQueryRequest, payload);
}

std::vector<uint8_t> SerializeRangeQueryResponse(
    const RangeQueryResponse& msg) {
  return SerializeEstimateResponse(MechanismTag::kRangeQueryResponse,
                                   msg.query_id, msg.status, msg.estimates);
}

ParseError ParseRangeQueryRequest(std::span<const uint8_t> bytes,
                                  RangeQueryRequest* out) {
  Envelope env;
  ParseError err =
      OpenEnvelope(bytes, MechanismTag::kRangeQueryRequest, &env);
  if (err != ParseError::kOk) return err;
  WireReader reader(env.payload);
  RangeQueryRequest msg;
  uint64_t count = 0;
  if (!reader.ReadU64(&msg.query_id) || !reader.ReadU64(&msg.server_id) ||
      !reader.ReadVarU64(&count)) {
    return ParseError::kBadPayload;
  }
  // Two varints minimum per interval bounds the count by bytes actually
  // present before any allocation is sized by it.
  if (count > reader.Remaining() / 2) return ParseError::kBadPayload;
  msg.intervals.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    QueryInterval interval;
    if (!reader.ReadVarU64(&interval.lo) ||
        !reader.ReadVarU64(&interval.hi)) {
      return ParseError::kBadPayload;
    }
    msg.intervals.push_back(interval);
  }
  if (!reader.AtEnd()) return ParseError::kBadPayload;
  *out = std::move(msg);
  return ParseError::kOk;
}

ParseError ParseRangeQueryResponse(std::span<const uint8_t> bytes,
                                   RangeQueryResponse* out) {
  RangeQueryResponse msg;
  ParseError err =
      ParseEstimateResponse(MechanismTag::kRangeQueryResponse, bytes,
                            &msg.query_id, &msg.status, &msg.estimates);
  if (err != ParseError::kOk) return err;
  *out = std::move(msg);
  return ParseError::kOk;
}

std::vector<uint8_t> SerializeMultiDimQueryRequest(
    const MultiDimQueryRequest& msg) {
  LDP_CHECK_GE(msg.dimensions, 1u);
  LDP_CHECK_LE(msg.dimensions, protocol::kMaxWireDimensions);
  std::vector<uint8_t> payload;
  payload.reserve(27 + msg.boxes.size() * msg.dimensions * 4);
  AppendU64(payload, msg.query_id);
  AppendU64(payload, msg.server_id);
  AppendU8(payload, static_cast<uint8_t>(msg.dimensions));
  AppendVarU64(payload, msg.boxes.size());
  for (const QueryBox& box : msg.boxes) {
    LDP_CHECK_EQ(box.axes.size(), static_cast<size_t>(msg.dimensions));
    for (const QueryInterval& interval : box.axes) {
      AppendVarU64(payload, interval.lo);
      AppendVarU64(payload, interval.hi);
    }
  }
  return EncodeEnvelope(MechanismTag::kMultiDimQuery, payload);
}

std::vector<uint8_t> SerializeMultiDimQueryResponse(
    const MultiDimQueryResponse& msg) {
  return SerializeEstimateResponse(MechanismTag::kMultiDimQueryResponse,
                                   msg.query_id, msg.status, msg.estimates);
}

ParseError ParseMultiDimQueryRequest(std::span<const uint8_t> bytes,
                                     MultiDimQueryRequest* out) {
  Envelope env;
  ParseError err = OpenEnvelope(bytes, MechanismTag::kMultiDimQuery, &env);
  if (err != ParseError::kOk) return err;
  WireReader reader(env.payload);
  MultiDimQueryRequest msg;
  uint8_t dims = 0;
  uint64_t count = 0;
  if (!reader.ReadU64(&msg.query_id) || !reader.ReadU64(&msg.server_id) ||
      !reader.ReadU8(&dims) || !reader.ReadVarU64(&count)) {
    return ParseError::kBadPayload;
  }
  if (dims == 0 || dims > protocol::kMaxWireDimensions) {
    return ParseError::kBadPayload;
  }
  msg.dimensions = dims;
  // Two varints minimum per axis bounds the count by bytes actually
  // present before any allocation is sized by it.
  if (count > reader.Remaining() / (uint64_t{2} * dims)) {
    return ParseError::kBadPayload;
  }
  msg.boxes.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    QueryBox box;
    box.axes.resize(dims);
    for (uint32_t dim = 0; dim < dims; ++dim) {
      if (!reader.ReadVarU64(&box.axes[dim].lo) ||
          !reader.ReadVarU64(&box.axes[dim].hi)) {
        return ParseError::kBadPayload;
      }
    }
    msg.boxes.push_back(std::move(box));
  }
  if (!reader.AtEnd()) return ParseError::kBadPayload;
  *out = std::move(msg);
  return ParseError::kOk;
}

ParseError ParseMultiDimQueryResponse(std::span<const uint8_t> bytes,
                                      MultiDimQueryResponse* out) {
  MultiDimQueryResponse msg;
  ParseError err =
      ParseEstimateResponse(MechanismTag::kMultiDimQueryResponse, bytes,
                            &msg.query_id, &msg.status, &msg.estimates);
  if (err != ParseError::kOk) return err;
  *out = std::move(msg);
  return ParseError::kOk;
}

}  // namespace ldp::service
