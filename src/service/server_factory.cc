#include "service/server_factory.h"

#include "common/check.h"
#include "protocol/flat_protocol.h"
#include "protocol/haar_protocol.h"
#include "protocol/multidim_protocol.h"
#include "protocol/tree_protocol.h"

namespace ldp::service {

std::string ServerKindName(ServerKind kind) {
  switch (kind) {
    case ServerKind::kFlat: return "flat";
    case ServerKind::kHaar: return "haar";
    case ServerKind::kTree: return "tree";
    case ServerKind::kAhead: return "ahead";
    case ServerKind::kGrid: return "grid";
  }
  return "?";
}

std::unique_ptr<AggregatorServer> MakeAggregatorServer(
    const ServerSpec& spec) {
  switch (spec.kind) {
    case ServerKind::kFlat:
      return std::make_unique<protocol::FlatHrrServer>(spec.domain, spec.eps);
    case ServerKind::kHaar:
      return std::make_unique<protocol::HaarHrrServer>(spec.domain, spec.eps);
    case ServerKind::kTree:
      return std::make_unique<protocol::TreeHrrServer>(
          spec.domain, spec.fanout, spec.eps, spec.consistency);
    case ServerKind::kAhead:
      return std::make_unique<protocol::AheadServer>(
          spec.domain, spec.fanout, spec.eps, spec.ahead);
    case ServerKind::kGrid:
      return std::make_unique<protocol::MultiDimServer>(
          spec.domain, spec.dimensions, spec.eps, spec.fanout,
          spec.max_total_cells);
  }
  LDP_CHECK_MSG(false, "unknown ServerKind");
  return nullptr;
}

std::vector<ServerSpec> AllServerSpecs(uint64_t domain, double eps,
                                       uint64_t fanout) {
  std::vector<ServerSpec> specs;
  for (ServerKind kind : {ServerKind::kFlat, ServerKind::kHaar,
                          ServerKind::kTree, ServerKind::kAhead}) {
    ServerSpec spec;
    spec.kind = kind;
    spec.domain = domain;
    spec.eps = eps;
    spec.fanout = fanout;
    specs.push_back(spec);
  }
  return specs;
}

}  // namespace ldp::service
