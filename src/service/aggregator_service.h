// The session-oriented aggregator service: one entry point for every
// client -> aggregator message, across every hosted mechanism instance.
//
//            client                      AggregatorService
//   reports --batch--> kStreamChunk --> session admit (dedupe) --+
//                                                                |
//                      worker pool: one strand per hosted server |
//                        drains chunks -> AbsorbBatchSerialized <+
//                                                                |
//   answer <-- kRangeQueryResponse <-- query plane <- Finalize --+
//
// Ingestion is streaming and concurrent: chunks are enqueued per target
// server and drained by a fixed worker pool, with at most one worker
// inside any given server at a time (a strand), so multiple mechanism
// instances ingest in parallel with no locking inside the mechanisms.
// Because every server aggregate is a commutative integer counter, the
// final state is bit-identical for every worker-thread count and for any
// chunk arrival order — the same determinism contract as
// EncodeUsersSharded on the client side.
//
// Per-server queues are BOUNDED: past the configured high-water mark the
// producer blocks inside HandleMessage until the strand drains (counted
// in stats().backpressure_waits). Memory is then bounded by
// servers x high_water x chunk size regardless of how fast clients push,
// and no admitted chunk is ever dropped — backpressure, not load shed.
//
// HandleMessage is safe to call from multiple threads; stream messages
// return an empty vector (fire-and-forget, failures are counted in
// stats()), query requests always return a serialized
// kRangeQueryResponse whose typed QueryStatus names what went wrong.
//
// The service is also one node of the distributed fan-in plane: N
// shard-local ingest processes each push their partial aggregate as a
// kStateMerge message (state_wire.h), and the query node buffers the
// validated shard clones until the group is complete, then reduces them
// pairwise — a fixed pairing, ParallelFor over each round — into the
// hosted server under the same strand discipline as ingestion. Because
// every mechanism's aggregate is a commutative integer sum, the merged
// state is bit-identical to single-process ingestion of the union, for
// every shard count, push order, and worker count. A full snapshot
// buffer acks kWouldBlock (push NOT recorded): the shard backs off and
// retries, mirroring ingestion backpressure.

#ifndef LDPRANGE_SERVICE_AGGREGATOR_SERVICE_H_
#define LDPRANGE_SERVICE_AGGREGATOR_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "service/aggregator_server.h"
#include "service/ingest_session.h"
#include "service/stream_wire.h"

namespace ldp::service {

/// Service-level counters (message routing, session hygiene) as a plain
/// value snapshot. Per-report accept/reject accounting stays on each
/// server's ServerStats. The live counts are lock-free "service.*"
/// entries in the service's MetricsRegistry; stats() snapshots them
/// without taking the service lock — coherent by the registry's read
/// protocol (relaxed atomics, exact once traffic quiesces, e.g. after
/// Drain()).
struct ServiceStats {
  uint64_t messages = 0;            // HandleMessage calls
  uint64_t malformed_messages = 0;  // undecodable or unroutable bytes
  uint64_t duplicate_sessions = 0;  // replayed kStreamBegin or kStreamEnd
  uint64_t rejected_sessions = 0;   // kStreamBegin past the session cap
  uint64_t unknown_sessions = 0;    // chunk/end for a session never begun
  uint64_t duplicate_chunks = 0;    // replayed or out-of-policy sequence
  uint64_t late_chunks = 0;         // after kStreamEnd or after finalize
  uint64_t incomplete_streams = 0;  // ended with declared chunks missing
  // kStreamEnd declaring more chunks than a session can ever admit
  // (> IngestSession::kMaxSequences): rejected, the session stays live.
  uint64_t oversized_declarations = 0;
  uint64_t chunks_enqueued = 0;
  uint64_t chunks_absorbed = 0;
  uint64_t backpressure_waits = 0;  // producer blocks on a full queue
  // Non-blocking admits deferred because the target queue was at its
  // high-water mark — each is one socket front-end read pause.
  uint64_t socket_pauses = 0;
  uint64_t queries_answered = 0;    // responses returned (any status)
  // Distributed fan-in plane (kStateMerge pushes).
  uint64_t merge_requests = 0;      // kStateMerge messages received
  uint64_t merge_rejects = 0;       // pushes acked with a non-transient error
  uint64_t merge_would_block = 0;   // pushes deferred: snapshot buffer full
  uint64_t merges_completed = 0;    // fan-in groups fully merged

  bool operator==(const ServiceStats&) const = default;
};

class AggregatorService {
 public:
  /// Default hard cap on tracked sessions (live + ended). Session ids
  /// are remembered for the service's lifetime so a replayed session
  /// cannot re-ingest its chunks; the cap bounds what kStreamBegin spam
  /// can allocate (ended sessions have released their sequence sets, so
  /// the worst case is ~100 bytes per id). Begins past it are rejected
  /// and counted in stats().rejected_sessions.
  static constexpr size_t kMaxSessions = size_t{1} << 20;

  /// Default per-server ingestion queue bound, in chunks (see the file
  /// comment on backpressure).
  static constexpr size_t kDefaultQueueHighWater = 1024;

  /// Default cap on buffered merge shards (restored clones waiting for
  /// their fan-in group to complete), across all in-flight merge groups.
  /// A push past the cap is acked kWouldBlock and NOT recorded — the
  /// shard backs off and retries (net/snapshot_push.h), the merge-plane
  /// analogue of ingestion backpressure. A push that completes its group
  /// bypasses the cap (completion frees buffer space, so refusing it
  /// could deadlock the buffer against its own drain).
  static constexpr size_t kDefaultMergeBufferShards = 256;

  /// `worker_threads` sizes the ingestion pool; it exists for the
  /// service's whole lifetime. 0 selects inline mode: chunks are
  /// absorbed synchronously inside HandleMessage (no pool, no handoff) —
  /// the right choice on small machines and in deterministic tests,
  /// and bit-identical to every pooled configuration.
  /// `queue_high_water` caps each server's pending-chunk queue: an
  /// enqueue at the cap blocks until a worker drains the strand (clamped
  /// to >= 1; irrelevant in inline mode, where nothing ever queues).
  /// `max_sessions` caps tracked sessions (clamped to >= 1); the default
  /// is the production bound, tests shrink it to drive cap churn cheaply.
  explicit AggregatorService(unsigned worker_threads = 1,
                             size_t queue_high_water = kDefaultQueueHighWater,
                             size_t max_sessions = kMaxSessions);
  ~AggregatorService();

  AggregatorService(const AggregatorService&) = delete;
  AggregatorService& operator=(const AggregatorService&) = delete;

  /// Hosts a mechanism server; returns the server id streaming sessions
  /// and query requests address it by. Not thread-safe against
  /// HandleMessage — register servers before serving traffic.
  uint64_t AddServer(std::unique_ptr<AggregatorServer> server);

  size_t server_count() const { return entries_.size(); }

  /// Direct handle on a hosted server (e.g. for the AHEAD tree
  /// broadcast between phases). Call Drain() first if ingestion for it
  /// may still be in flight.
  AggregatorServer& server(uint64_t server_id);
  const AggregatorServer& server(uint64_t server_id) const;

  /// Routes one serialized message. kStreamBegin/Chunk/End return an
  /// empty vector; kRangeQueryRequest returns a serialized
  /// kRangeQueryResponse; kMultiDimQuery returns a serialized
  /// kMultiDimQueryResponse; kStatsQuery returns a serialized
  /// kStatsResponse; kStateMerge returns a serialized
  /// kStateMergeResponse; anything else is counted as malformed and
  /// returns an empty vector.
  std::vector<uint8_t> HandleMessage(std::span<const uint8_t> bytes);

  /// Same routing, taking ownership of the buffer: a chunk's nested
  /// batch is kept (not copied) on the ingestion queue — the fast path
  /// for callers that materialize each message anyway.
  std::vector<uint8_t> HandleMessage(std::vector<uint8_t>&& bytes);

  /// Outcome of TryHandleMessage. kHandled covers every terminal result
  /// (routed, rejected, counted) — the caller is done with the message.
  enum class AdmitResult : uint8_t { kHandled, kWouldBlock };

  /// Non-blocking HandleMessage for socket front-ends: identical routing
  /// except that a stream chunk whose target server queue is at its
  /// high-water mark is NOT admitted. On kWouldBlock nothing has been
  /// recorded for the chunk, `bytes` is left untouched, `*blocked_server`
  /// names the congested server, and stats().socket_pauses is
  /// incremented — the caller should stop reading its input source and
  /// re-present the SAME bytes after a queue-drain notification for that
  /// server. On kHandled the buffer has been consumed and `*response`
  /// holds whatever HandleMessage would have returned.
  AdmitResult TryHandleMessage(std::vector<uint8_t>& bytes,
                               std::vector<uint8_t>* response,
                               uint64_t* blocked_server);

  /// Registers a hook invoked whenever a server's ingestion queue drains
  /// (drops from possibly-full to empty) or the server leaves the live
  /// state — the signal a paused socket front-end uses to re-arm
  /// connections. Called with the service lock NOT held, from a worker
  /// (or finalizing) thread; the hook must be fast and must not call
  /// back into blocking service methods. Invocations are serialized
  /// against SetQueueDrainHook itself: once SetQueueDrainHook(nullptr)
  /// returns, no in-flight invocation remains and none can start — the
  /// guarantee a front-end's teardown depends on.
  void SetQueueDrainHook(std::function<void(uint64_t server_id)> hook);

  /// Blocks until every enqueued chunk has been absorbed (and any
  /// in-flight finalize finished).
  void Drain();

  /// In-process control: drain, then finalize `server_id` if it is not
  /// already. Returns false for an unknown or already-finalized server.
  bool FinalizeServer(uint64_t server_id);

  /// True once `server_id` finalized (via kStreamFlagFinalize or
  /// FinalizeServer).
  bool server_finalized(uint64_t server_id);

  /// Caps buffered merge shards (clamped to >= 1). Not thread-safe
  /// against HandleMessage — configure before serving merge traffic;
  /// tests shrink it to drive the kWouldBlock path cheaply.
  void set_merge_buffer_limit(size_t shards) {
    merge_buffer_limit_ = shards == 0 ? 1 : shards;
  }

  ServiceStats stats() const;

  /// The service's metrics registry: every "service.*" counter behind
  /// stats(), plus whatever front-ends and tests hang on it ("net.*").
  /// Snapshots of it — merged with per-server stage latencies and,
  /// on request, the process-global registry — are what kStatsQuery
  /// serves over the wire.
  obs::MetricsRegistry& registry() { return registry_; }
  const obs::MetricsRegistry& registry() const { return registry_; }

 private:
  enum class EntryState : uint8_t { kLive, kFinalizing, kFinalized };

  /// One queued chunk: the owning buffer plus the offset of the nested
  /// batch message inside it (0 when the buffer is the batch itself).
  /// `enqueue_ns` is the admit timestamp feeding the queue-wait
  /// histogram when a worker picks the chunk up.
  struct QueuedChunk {
    std::vector<uint8_t> buffer;
    size_t nested_offset = 0;
    uint64_t enqueue_ns = 0;
  };

  /// Live handle on one registry counter. The wrapper keeps the
  /// historical `++stats_.field` / `stats_.field += n` accounting sites
  /// compiling verbatim against lock-free registry-backed atomics.
  struct CounterRef {
    obs::Counter* counter = nullptr;
    void operator++() { counter->Increment(); }
    void operator+=(uint64_t n) { counter->Add(n); }
    uint64_t value() const { return counter->value(); }
  };

  /// Every ServiceStats field, live, named "service.<field>" in the
  /// registry. Mutations are safe with or without mu_ held; reads are
  /// the registry's relaxed-atomic protocol.
  struct ServiceCounters {
    explicit ServiceCounters(obs::MetricsRegistry& registry);

    CounterRef messages;
    CounterRef malformed_messages;
    CounterRef duplicate_sessions;
    CounterRef rejected_sessions;
    CounterRef unknown_sessions;
    CounterRef duplicate_chunks;
    CounterRef late_chunks;
    CounterRef incomplete_streams;
    CounterRef oversized_declarations;
    CounterRef chunks_enqueued;
    CounterRef chunks_absorbed;
    CounterRef backpressure_waits;
    CounterRef socket_pauses;
    CounterRef queries_answered;
    CounterRef merge_requests;
    CounterRef merge_rejects;
    CounterRef merge_would_block;
    CounterRef merges_completed;
    // Session lifecycle (registry-only; not part of legacy ServiceStats).
    CounterRef sessions_begun;
    CounterRef sessions_completed;
    CounterRef finalizes;
  };

  struct ServerEntry {
    std::unique_ptr<AggregatorServer> server;
    std::deque<QueuedChunk> queue;  // FIFO
    bool scheduled = false;  // claimed by the ready list or a worker
    bool finalize_pending = false;
    EntryState state = EntryState::kLive;
  };

  /// One in-flight fan-in group, keyed by merge_id: shard clones are
  /// validated + restored eagerly at push time (so a malformed snapshot
  /// is rejected on ITS push, with its shard's ack) and buffered here
  /// until every declared shard has arrived. A nullptr slot is a
  /// reservation: that shard was admitted and its clone is still being
  /// restored outside the lock. std::map (ordered by shard_index) so the
  /// reduction pairing is deterministic.
  struct MergeSession {
    uint64_t server_id = 0;
    uint64_t shard_count = 0;  // 0 only before first admit (wire min is 1)
    uint8_t flags = 0;
    std::map<uint64_t, std::unique_ptr<AggregatorServer>> shards;
    size_t filled = 0;  // non-nullptr slots; == shard_count triggers merge
  };

  void WorkerLoop();
  void ScheduleLocked(std::unique_lock<std::mutex>& lock,
                      size_t entry_index);
  void ProcessEntry(std::unique_lock<std::mutex>& lock, size_t entry_index);
  void HandleStreamBegin(std::span<const uint8_t> bytes);
  void EnqueueChunk(uint64_t session_id, uint64_t sequence,
                    QueuedChunk chunk);
  void HandleStreamEnd(std::span<const uint8_t> bytes);
  /// Fires the registered drain hook for `server_id` (no-op when none).
  /// Must be called with mu_ NOT held.
  void NotifyQueueDrain(uint64_t server_id);
  std::vector<uint8_t> HandleRangeQuery(std::span<const uint8_t> bytes);
  std::vector<uint8_t> HandleMultiDimQuery(std::span<const uint8_t> bytes);
  std::vector<uint8_t> HandleStatsQuery(std::span<const uint8_t> bytes);
  std::vector<uint8_t> HandleStateMerge(std::span<const uint8_t> bytes);
  /// The completed-group reduction: claims the target server's strand
  /// (FinalizeServer's drain-and-claim idiom), merges the group's clones
  /// pairwise — adjacent shard indices, ParallelFor over the pairs of
  /// each round, so the result is bit-identical for every worker count
  /// and push order — folds the survivor into the hosted server, and
  /// finalizes it when the group asked (kMergeFlagFinalize). Enters and
  /// leaves with `lock` held; the reduction itself runs unlocked under
  /// the claim.
  MergeStatus RunFanInMergeLocked(std::unique_lock<std::mutex>& lock,
                                  uint64_t server_id, MergeSession group);

  // Declared before every member that binds metrics out of it.
  obs::MetricsRegistry registry_;
  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  // Signaled whenever a server queue drains or its entry leaves kLive:
  // wakes producers blocked on a full queue.
  std::condition_variable queue_space_;
  size_t queue_high_water_;
  size_t max_sessions_;
  // Socket-front-end drain notifications. hook_mu_ is held across every
  // invocation (never while mu_ is held), so SetQueueDrainHook(nullptr)
  // synchronizes with in-flight calls; it also serializes notifications,
  // which fire at most once per strand drain — far off the hot path.
  std::mutex hook_mu_;
  std::function<void(uint64_t)> queue_drain_hook_;
  std::vector<std::unique_ptr<ServerEntry>> entries_;
  std::unordered_map<uint64_t, IngestSession> sessions_;  // by session_id
  // In-flight fan-in groups, by merge_id. Guarded by mu_; the buffered
  // count feeds the kWouldBlock backpressure decision (reservations
  // count too, so concurrent restores cannot overshoot the cap).
  std::unordered_map<uint64_t, MergeSession> merge_sessions_;
  size_t buffered_merge_shards_ = 0;
  size_t merge_buffer_limit_ = kDefaultMergeBufferShards;
  std::deque<size_t> ready_;  // entry indices with claimed work
  size_t busy_entries_ = 0;
  bool stopping_ = false;
  ServiceCounters stats_{registry_};
  // Ingestion-plane instrumentation: chunks pending across all strands,
  // admit-to-absorb wait, and end-to-end query handling latency.
  obs::Gauge* queue_depth_ = &registry_.GetGauge("service.queue_depth");
  obs::LatencyHistogram* queue_wait_ns_ =
      &registry_.GetHistogram("service.queue_wait_ns");
  obs::LatencyHistogram* query_ns_ =
      &registry_.GetHistogram("service.query_ns");
  // Merge-plane instrumentation: per-shard snapshot validate+restore,
  // and the whole completed-group reduction (including the hosted fold
  // and any requested finalize).
  obs::LatencyHistogram* merge_absorb_ns_ =
      &registry_.GetHistogram("merge.absorb_ns");
  obs::LatencyHistogram* merge_fan_in_ns_ =
      &registry_.GetHistogram("merge.fan_in_ns");
  std::vector<std::thread> workers_;
};

}  // namespace ldp::service

#endif  // LDPRANGE_SERVICE_AGGREGATOR_SERVICE_H_
