// Constructs any of the mechanism servers behind the one
// AggregatorServer interface — the service-layer analogue of
// core/method.h's MakeMechanism. Callers (tests, benches, examples,
// deployments) pick a mechanism by spec instead of naming concrete
// protocol classes.

#ifndef LDPRANGE_SERVICE_SERVER_FACTORY_H_
#define LDPRANGE_SERVICE_SERVER_FACTORY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "protocol/ahead_protocol.h"
#include "service/aggregator_server.h"

namespace ldp::service {

/// Which mechanism family a server runs. kGrid is the multidimensional
/// hierarchical grid (protocol::MultiDimServer); everything else is 1-D.
enum class ServerKind : uint8_t { kFlat, kHaar, kTree, kAhead, kGrid };

std::string ServerKindName(ServerKind kind);

/// Parameters of one hosted aggregator server. `fanout`, `consistency`,
/// `ahead`, `dimensions` and `max_total_cells` only apply to the kinds
/// that use them. For kGrid, `domain` is the per-axis domain.
struct ServerSpec {
  ServerKind kind = ServerKind::kHaar;
  uint64_t domain = 0;
  double eps = 1.0;
  uint64_t fanout = 4;       // tree + AHEAD + grid
  bool consistency = true;   // tree
  protocol::AheadServerConfig ahead = {};  // AHEAD post-processing knobs
  uint32_t dimensions = 2;   // grid
  uint64_t max_total_cells = uint64_t{1} << 26;  // grid memory guard
};

/// Builds the concrete server for `spec`.
std::unique_ptr<AggregatorServer> MakeAggregatorServer(const ServerSpec& spec);

/// One spec per 1-D mechanism family at shared (domain, eps, fanout) —
/// the matrix tests and benches iterate. kGrid is excluded (its domain
/// is per-axis, so the shared-domain comparison would be apples to
/// oranges); multidim coverage builds its specs explicitly.
std::vector<ServerSpec> AllServerSpecs(uint64_t domain, double eps,
                                       uint64_t fanout = 4);

}  // namespace ldp::service

#endif  // LDPRANGE_SERVICE_SERVER_FACTORY_H_
