#include "service/aggregator_service.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "obs/scoped_timer.h"
#include "obs/stats_wire.h"
#include "protocol/envelope.h"
#include "service/state_wire.h"

namespace ldp::service {

using protocol::DecodeEnvelope;
using protocol::Envelope;
using protocol::MechanismTag;

AggregatorService::ServiceCounters::ServiceCounters(
    obs::MetricsRegistry& registry)
    : messages{&registry.GetCounter("service.messages")},
      malformed_messages{&registry.GetCounter("service.malformed_messages")},
      duplicate_sessions{&registry.GetCounter("service.duplicate_sessions")},
      rejected_sessions{&registry.GetCounter("service.rejected_sessions")},
      unknown_sessions{&registry.GetCounter("service.unknown_sessions")},
      duplicate_chunks{&registry.GetCounter("service.duplicate_chunks")},
      late_chunks{&registry.GetCounter("service.late_chunks")},
      incomplete_streams{&registry.GetCounter("service.incomplete_streams")},
      oversized_declarations{
          &registry.GetCounter("service.oversized_declarations")},
      chunks_enqueued{&registry.GetCounter("service.chunks_enqueued")},
      chunks_absorbed{&registry.GetCounter("service.chunks_absorbed")},
      backpressure_waits{&registry.GetCounter("service.backpressure_waits")},
      socket_pauses{&registry.GetCounter("service.socket_pauses")},
      queries_answered{&registry.GetCounter("service.queries_answered")},
      merge_requests{&registry.GetCounter("service.merge_requests")},
      merge_rejects{&registry.GetCounter("service.merge_rejects")},
      merge_would_block{&registry.GetCounter("service.merge_would_block")},
      merges_completed{&registry.GetCounter("service.merges_completed")},
      sessions_begun{&registry.GetCounter("service.sessions_begun")},
      sessions_completed{&registry.GetCounter("service.sessions_completed")},
      finalizes{&registry.GetCounter("service.finalizes")} {}

AggregatorService::AggregatorService(unsigned worker_threads,
                                     size_t queue_high_water,
                                     size_t max_sessions)
    : queue_high_water_(queue_high_water == 0 ? 1 : queue_high_water),
      max_sessions_(max_sessions == 0 ? 1 : max_sessions) {
  // worker_threads == 0 is inline mode: no pool, chunks absorbed on the
  // caller's thread inside HandleMessage.
  workers_.reserve(worker_threads);
  for (unsigned i = 0; i < worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AggregatorService::~AggregatorService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  queue_space_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

uint64_t AggregatorService::AddServer(
    std::unique_ptr<AggregatorServer> server) {
  LDP_CHECK(server != nullptr);
  auto entry = std::make_unique<ServerEntry>();
  entry->server = std::move(server);
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

AggregatorServer& AggregatorService::server(uint64_t server_id) {
  LDP_CHECK_LT(server_id, entries_.size());
  return *entries_[server_id]->server;
}

const AggregatorServer& AggregatorService::server(uint64_t server_id) const {
  LDP_CHECK_LT(server_id, entries_.size());
  return *entries_[server_id]->server;
}

std::vector<uint8_t> AggregatorService::HandleMessage(
    std::span<const uint8_t> bytes) {
  // Counters are registry atomics: no lock needed just to account.
  ++stats_.messages;
  Envelope env;
  if (DecodeEnvelope(bytes, &env) != protocol::ParseError::kOk) {
    ++stats_.malformed_messages;
    return {};
  }
  switch (env.mechanism) {
    case MechanismTag::kStreamBegin:
      HandleStreamBegin(bytes);
      return {};
    case MechanismTag::kStreamChunk: {
      StreamChunk msg;
      if (ParseStreamChunk(bytes, &msg) != protocol::ParseError::kOk) {
        ++stats_.malformed_messages;
        return {};
      }
      // Copy the nested batch out of the caller's buffer before it goes
      // async (the move overload keeps the whole buffer instead).
      QueuedChunk chunk;
      chunk.buffer.assign(msg.payload.begin(), msg.payload.end());
      EnqueueChunk(msg.session_id, msg.sequence, std::move(chunk));
      return {};
    }
    case MechanismTag::kStreamEnd:
      HandleStreamEnd(bytes);
      return {};
    case MechanismTag::kRangeQueryRequest:
      return HandleRangeQuery(bytes);
    case MechanismTag::kMultiDimQuery:
      return HandleMultiDimQuery(bytes);
    case MechanismTag::kStatsQuery:
      return HandleStatsQuery(bytes);
    case MechanismTag::kStateMerge:
      return HandleStateMerge(bytes);
    default: {
      // Bare reports/batches are not routable here: they carry no target
      // server id. Stream them (or ingest in-process via the server's
      // AbsorbBatchSerialized) instead.
      ++stats_.malformed_messages;
      return {};
    }
  }
}

std::vector<uint8_t> AggregatorService::HandleMessage(
    std::vector<uint8_t>&& bytes) {
  // Only the chunk path benefits from ownership (its payload outlives
  // the call on the ingestion queue); everything else reads the bytes
  // synchronously.
  Envelope env;
  if (DecodeEnvelope(bytes, &env) == protocol::ParseError::kOk &&
      env.mechanism == MechanismTag::kStreamChunk) {
    StreamChunk msg;
    ++stats_.messages;
    if (ParseStreamChunk(bytes, &msg) != protocol::ParseError::kOk) {
      ++stats_.malformed_messages;
      return {};
    }
    QueuedChunk chunk;
    chunk.nested_offset =
        static_cast<size_t>(msg.payload.data() - bytes.data());
    chunk.buffer = std::move(bytes);
    EnqueueChunk(msg.session_id, msg.sequence, std::move(chunk));
    return {};
  }
  return HandleMessage(std::span<const uint8_t>(bytes));
}

AggregatorService::AdmitResult AggregatorService::TryHandleMessage(
    std::vector<uint8_t>& bytes, std::vector<uint8_t>* response,
    uint64_t* blocked_server) {
  response->clear();
  Envelope env;
  if (DecodeEnvelope(bytes, &env) != protocol::ParseError::kOk ||
      env.mechanism != MechanismTag::kStreamChunk) {
    // Everything except a chunk is handled synchronously and can never
    // block; delegate to the owning overload.
    *response = HandleMessage(std::move(bytes));
    return AdmitResult::kHandled;
  }
  StreamChunk msg;
  if (ParseStreamChunk(bytes, &msg) != protocol::ParseError::kOk) {
    ++stats_.messages;
    ++stats_.malformed_messages;
    return AdmitResult::kHandled;
  }
  const size_t nested_offset =
      static_cast<size_t>(msg.payload.data() - bytes.data());
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sessions_.find(msg.session_id);
  if (it == sessions_.end()) {
    ++stats_.messages;
    ++stats_.unknown_sessions;
    return AdmitResult::kHandled;
  }
  IngestSession& session = it->second;
  ServerEntry& entry = *entries_[session.server_id()];
  if (entry.state != EntryState::kLive || session.ended()) {
    ++stats_.messages;
    ++stats_.late_chunks;
    return AdmitResult::kHandled;
  }
  if (!session.CanAdmit(msg.sequence)) {
    // Duplicates and out-of-policy sequences are dropped without ever
    // consulting the queue — same accounting as the blocking path, and
    // no pause for a chunk that would not be admitted anyway.
    ++stats_.messages;
    ++stats_.duplicate_chunks;
    return AdmitResult::kHandled;
  }
  if (!workers_.empty() && entry.queue.size() >= queue_high_water_) {
    // The strand is congested. Unlike EnqueueChunk this does NOT block
    // and does NOT admit the sequence: the caller pauses its input and
    // re-presents the identical bytes after the queue-drain hook fires.
    ++stats_.socket_pauses;
    if (blocked_server != nullptr) *blocked_server = session.server_id();
    return AdmitResult::kWouldBlock;
  }
  ++stats_.messages;
  LDP_CHECK(session.AdmitChunk(msg.sequence));
  const uint64_t server_id = session.server_id();
  QueuedChunk chunk;
  chunk.nested_offset = nested_offset;
  chunk.buffer = std::move(bytes);
  chunk.enqueue_ns = obs::NowNanos();
  entry.queue.push_back(std::move(chunk));
  ++stats_.chunks_enqueued;
  queue_depth_->Add(1);
  ScheduleLocked(lock, server_id);
  return AdmitResult::kHandled;
}

void AggregatorService::SetQueueDrainHook(
    std::function<void(uint64_t)> hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  queue_drain_hook_ = std::move(hook);
}

void AggregatorService::NotifyQueueDrain(uint64_t server_id) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  if (queue_drain_hook_) queue_drain_hook_(server_id);
}

void AggregatorService::HandleStreamBegin(std::span<const uint8_t> bytes) {
  StreamBegin msg;
  std::lock_guard<std::mutex> lock(mu_);
  if (ParseStreamBegin(bytes, &msg) != protocol::ParseError::kOk ||
      msg.server_id >= entries_.size()) {
    ++stats_.malformed_messages;
    return;
  }
  if (sessions_.size() >= max_sessions_ &&
      !sessions_.contains(msg.session_id)) {
    ++stats_.rejected_sessions;
    return;
  }
  if (!sessions_.try_emplace(msg.session_id, msg.session_id, msg.server_id)
           .second) {
    ++stats_.duplicate_sessions;
  } else {
    ++stats_.sessions_begun;
  }
}

void AggregatorService::EnqueueChunk(uint64_t session_id, uint64_t sequence,
                                     QueuedChunk chunk) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    ++stats_.unknown_sessions;
    return;
  }
  IngestSession& session = it->second;
  ServerEntry& entry = *entries_[session.server_id()];
  if (entry.state != EntryState::kLive) {
    ++stats_.late_chunks;
    return;
  }
  if (session.ended()) {
    ++stats_.late_chunks;
    return;
  }
  if (!session.AdmitChunk(sequence)) {
    ++stats_.duplicate_chunks;
    return;
  }
  const uint64_t server_id = session.server_id();
  // Bounded queue: at the high-water mark the producer BLOCKS until the
  // strand drains — backpressure instead of unbounded buffering or drops.
  // Inline mode never queues (ScheduleLocked absorbs synchronously), so
  // only pooled services can reach the bound. References stay valid
  // across the wait: entries_ holds pointers and sessions_ is node-based.
  if (!workers_.empty() && entry.queue.size() >= queue_high_water_) {
    ++stats_.backpressure_waits;
    queue_space_.wait(lock, [&] {
      return stopping_ || entry.state != EntryState::kLive ||
             entry.queue.size() < queue_high_water_;
    });
    if (stopping_) return;
    if (entry.state != EntryState::kLive) {
      // The server finalized while we were blocked; the chunk is late
      // exactly as if it had arrived after the transition.
      ++stats_.late_chunks;
      return;
    }
  }
  chunk.enqueue_ns = obs::NowNanos();
  entry.queue.push_back(std::move(chunk));
  ++stats_.chunks_enqueued;
  queue_depth_->Add(1);
  ScheduleLocked(lock, server_id);
}

void AggregatorService::HandleStreamEnd(std::span<const uint8_t> bytes) {
  StreamEnd msg;
  std::unique_lock<std::mutex> lock(mu_);
  if (ParseStreamEnd(bytes, &msg) != protocol::ParseError::kOk) {
    ++stats_.malformed_messages;
    return;
  }
  auto it = sessions_.find(msg.session_id);
  if (it == sessions_.end()) {
    ++stats_.unknown_sessions;
    return;
  }
  IngestSession& session = it->second;
  switch (session.End(msg.chunk_count, msg.flags)) {
    case EndResult::kOk:
      break;
    case EndResult::kAlreadyEnded:
      ++stats_.duplicate_sessions;  // replayed end — a retry, not garbage
      return;
    case EndResult::kOversizedDeclaration:
      // No stream can admit that many chunks, so completeness would be
      // silently impossible; reject the declaration (the session stays
      // live for a corrected retry) and count it apart from honest
      // incompleteness.
      ++stats_.oversized_declarations;
      return;
  }
  if (!session.complete()) {
    ++stats_.incomplete_streams;
    return;
  }
  ++stats_.sessions_completed;
  if ((msg.flags & kStreamFlagFinalize) != 0) {
    uint64_t server_id = session.server_id();
    ServerEntry& entry = *entries_[server_id];
    if (entry.state == EntryState::kLive) {
      entry.finalize_pending = true;
      ScheduleLocked(lock, server_id);
    }
  }
}

std::vector<uint8_t> AggregatorService::HandleRangeQuery(
    std::span<const uint8_t> bytes) {
  obs::ScopedTimer timer(query_ns_, "service.query");
  RangeQueryRequest request;
  RangeQueryResponse response;
  if (ParseRangeQueryRequest(bytes, &request) != protocol::ParseError::kOk) {
    ++stats_.malformed_messages;
    ++stats_.queries_answered;
    response.status = QueryStatus::kMalformedRequest;
    return SerializeRangeQueryResponse(response);
  }
  response.query_id = request.query_id;
  const AggregatorServer* target = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries_answered;
    if (request.server_id >= entries_.size()) {
      response.status = QueryStatus::kUnknownServer;
    } else if (entries_[request.server_id]->state != EntryState::kFinalized) {
      response.status = QueryStatus::kNotFinalized;
    } else {
      // A finalized server is immutable (late chunks are dropped before
      // they reach it), so queries run outside the lock.
      target = entries_[request.server_id]->server.get();
    }
  }
  if (target == nullptr) {
    return SerializeRangeQueryResponse(response);
  }
  if (request.intervals.empty()) {
    response.status = QueryStatus::kEmptyIntervalList;
    return SerializeRangeQueryResponse(response);
  }
  const uint64_t domain = target->domain();
  for (const QueryInterval& interval : request.intervals) {
    if (interval.lo > interval.hi) {
      response.status = QueryStatus::kIntervalReversed;
      return SerializeRangeQueryResponse(response);
    }
    if (interval.hi >= domain) {
      response.status = QueryStatus::kIntervalOutOfDomain;
      return SerializeRangeQueryResponse(response);
    }
  }
  response.estimates.reserve(request.intervals.size());
  for (const QueryInterval& interval : request.intervals) {
    RangeEstimate estimate =
        target->RangeQueryWithUncertainty(interval.lo, interval.hi);
    response.estimates.push_back(IntervalEstimate{
        estimate.value, estimate.stddev * estimate.stddev});
  }
  return SerializeRangeQueryResponse(response);
}

// Same error ladder as HandleRangeQuery, for axis-aligned boxes: the one
// extra rung is the dimensionality check against the target server (a
// 1-D server still answers dims == 1 requests via the BoxQuery default).
std::vector<uint8_t> AggregatorService::HandleMultiDimQuery(
    std::span<const uint8_t> bytes) {
  obs::ScopedTimer timer(query_ns_, "service.query");
  MultiDimQueryRequest request;
  MultiDimQueryResponse response;
  if (ParseMultiDimQueryRequest(bytes, &request) !=
      protocol::ParseError::kOk) {
    ++stats_.malformed_messages;
    ++stats_.queries_answered;
    response.status = QueryStatus::kMalformedRequest;
    return SerializeMultiDimQueryResponse(response);
  }
  response.query_id = request.query_id;
  const AggregatorServer* target = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries_answered;
    if (request.server_id >= entries_.size()) {
      response.status = QueryStatus::kUnknownServer;
    } else if (entries_[request.server_id]->state != EntryState::kFinalized) {
      response.status = QueryStatus::kNotFinalized;
    } else {
      // A finalized server is immutable (late chunks are dropped before
      // they reach it), so queries run outside the lock.
      target = entries_[request.server_id]->server.get();
    }
  }
  if (target == nullptr) {
    return SerializeMultiDimQueryResponse(response);
  }
  if (request.dimensions != target->dimensions()) {
    response.status = QueryStatus::kDimensionMismatch;
    return SerializeMultiDimQueryResponse(response);
  }
  if (request.boxes.empty()) {
    response.status = QueryStatus::kEmptyIntervalList;
    return SerializeMultiDimQueryResponse(response);
  }
  const uint64_t domain = target->domain();
  for (const QueryBox& box : request.boxes) {
    for (const QueryInterval& interval : box.axes) {
      if (interval.lo > interval.hi) {
        response.status = QueryStatus::kIntervalReversed;
        return SerializeMultiDimQueryResponse(response);
      }
      if (interval.hi >= domain) {
        response.status = QueryStatus::kIntervalOutOfDomain;
        return SerializeMultiDimQueryResponse(response);
      }
    }
  }
  response.estimates.reserve(request.boxes.size());
  std::vector<AxisInterval> axes(request.dimensions);
  for (const QueryBox& box : request.boxes) {
    for (uint32_t dim = 0; dim < request.dimensions; ++dim) {
      axes[dim] = AxisInterval{box.axes[dim].lo, box.axes[dim].hi};
    }
    RangeEstimate estimate = target->BoxQueryWithUncertainty(axes);
    response.estimates.push_back(IntervalEstimate{
        estimate.value, estimate.stddev * estimate.stddev});
  }
  return SerializeMultiDimQueryResponse(response);
}

// Answers kStatsQuery with a point-in-time metrics snapshot: the
// service's own registry ("service.*" and whatever front-ends added),
// per-server ingestion counts and stage latency histograms synthesized
// under "server<id>.*" names, and — when the query sets
// kStatsFlagIncludeGlobal — the process-global registry (core-layer
// stage metrics). Snapshotting never stops ingestion: every source is
// lock-free atomics; mu_ is taken only to walk entries_.
std::vector<uint8_t> AggregatorService::HandleStatsQuery(
    std::span<const uint8_t> bytes) {
  obs::ScopedTimer timer(query_ns_, "service.stats_query");
  obs::StatsQuery request;
  obs::StatsResponse response;
  if (obs::ParseStatsQuery(bytes, &request) != protocol::ParseError::kOk) {
    ++stats_.malformed_messages;
    ++stats_.queries_answered;
    response.status = obs::StatsStatus::kMalformedRequest;
    return obs::SerializeStatsResponse(response);
  }
  response.query_id = request.query_id;
  // The queries_answered bump lands before the snapshot so the response
  // always counts itself — the reconciliation tests depend on it.
  ++stats_.queries_answered;
  response.metrics = registry_.Snapshot();
  obs::MetricsSnapshot servers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < entries_.size(); ++i) {
      const AggregatorServer& server = *entries_[i]->server;
      const std::string prefix = "server" + std::to_string(i) + ".";
      const ServerStats s = server.stats();
      servers.counters.push_back({prefix + "accepted", s.accepted});
      servers.counters.push_back({prefix + "rejected", s.rejected});
      servers.histograms.push_back(
          {prefix + "absorb_batch_ns", server.absorb_batch_latency()});
      servers.histograms.push_back(
          {prefix + "finalize_ns", server.finalize_latency()});
    }
  }
  // Index order is not name order past 10 servers ("server10." sorts
  // before "server2."); MergeFrom requires sorted inputs.
  std::sort(servers.counters.begin(), servers.counters.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  std::sort(servers.histograms.begin(), servers.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  response.metrics.MergeFrom(servers);
  if ((request.flags & obs::kStatsFlagIncludeGlobal) != 0) {
    response.metrics.MergeFrom(obs::MetricsRegistry::Global().Snapshot());
  }
  return obs::SerializeStatsResponse(response);
}

// One fan-in push: admit (locked) -> validate + restore the snapshot
// into a fresh clone (UNLOCKED — the expensive part runs concurrently
// across pushes, against only immutable target configuration) -> land
// the clone (locked), and on the group's last shard run the reduction.
// Admission reserves the shard's slot before unlocking so duplicate
// detection and the buffer cap stay race-free across concurrent pushes.
std::vector<uint8_t> AggregatorService::HandleStateMerge(
    std::span<const uint8_t> bytes) {
  ++stats_.merge_requests;
  StateMergeRequest request;
  StateMergeResponse response;
  if (ParseStateMerge(bytes, &request) != protocol::ParseError::kOk) {
    ++stats_.malformed_messages;
    ++stats_.merge_rejects;
    response.status = MergeStatus::kMalformedRequest;
    return SerializeStateMergeResponse(response);
  }
  response.merge_id = request.merge_id;

  auto nack = [&](MergeStatus status, uint64_t shards_received) {
    if (status == MergeStatus::kWouldBlock) {
      ++stats_.merge_would_block;
    } else {
      ++stats_.merge_rejects;
    }
    response.status = status;
    response.shards_received = shards_received;
    return SerializeStateMergeResponse(response);
  };

  const AggregatorServer* target = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (request.server_id >= entries_.size()) {
      return nack(MergeStatus::kUnknownServer, 0);
    }
    ServerEntry& entry = *entries_[request.server_id];
    if (entry.state != EntryState::kLive) {
      return nack(MergeStatus::kAlreadyFinalized, 0);
    }
    auto it = merge_sessions_.find(request.merge_id);
    // A push that makes its group full is always admitted, cap or no
    // cap: completing a group FREES buffer space, so refusing it could
    // deadlock a saturated buffer against the one push that would drain
    // it. Every other over-cap push is deferred.
    bool completes = request.shard_count == 1;
    if (it != merge_sessions_.end()) {
      const MergeSession& session = it->second;
      if (session.server_id != request.server_id ||
          session.shard_count != request.shard_count ||
          session.flags != request.flags) {
        return nack(MergeStatus::kInconsistentFanIn, session.shards.size());
      }
      if (session.shards.contains(request.shard_index)) {
        return nack(MergeStatus::kDuplicateShard, session.shards.size());
      }
      completes = session.shards.size() + 1 == session.shard_count;
    }
    if (!completes && buffered_merge_shards_ >= merge_buffer_limit_) {
      // Nothing recorded: the identical push is welcome after a retry
      // backoff (net/snapshot_push.h drives that loop).
      return nack(MergeStatus::kWouldBlock,
                  it == merge_sessions_.end() ? 0 : it->second.shards.size());
    }
    MergeSession& session = merge_sessions_[request.merge_id];
    if (session.shard_count == 0) {  // freshly created group
      session.server_id = request.server_id;
      session.shard_count = request.shard_count;
      session.flags = request.flags;
    }
    session.shards.emplace(request.shard_index, nullptr);  // reservation
    ++buffered_merge_shards_;
    target = entry.server.get();
  }

  std::unique_ptr<AggregatorServer> shard;
  const uint64_t restore_start_ns = obs::NowNanos();
  const MergeStatus restore_status =
      target->RestoreShardFromSnapshot(request.snapshot, &shard);
  merge_absorb_ns_->Record(obs::NowNanos() - restore_start_ns);

  std::unique_lock<std::mutex> lock(mu_);
  auto it = merge_sessions_.find(request.merge_id);
  LDP_CHECK(it != merge_sessions_.end());  // the reservation pins the group
  MergeSession& session = it->second;
  if (restore_status != MergeStatus::kOk) {
    // Roll the reservation back; a group left empty disappears entirely,
    // so a later corrected push can redeclare it.
    session.shards.erase(request.shard_index);
    --buffered_merge_shards_;
    const uint64_t received = session.shards.size();
    if (session.shards.empty()) merge_sessions_.erase(it);
    return nack(restore_status, received);
  }
  session.shards[request.shard_index] = std::move(shard);
  ++session.filled;
  response.shards_received = session.shards.size();
  if (session.filled < session.shard_count) {
    response.status = MergeStatus::kOk;
    return SerializeStateMergeResponse(response);
  }
  // Last shard of the group (every slot filled: the parser bounds
  // shard_index < shard_count and duplicates never land, so filled ==
  // shard_count means no reservation is in flight).
  MergeSession group = std::move(session);
  merge_sessions_.erase(it);
  buffered_merge_shards_ -= group.shards.size();
  response.status =
      RunFanInMergeLocked(lock, request.server_id, std::move(group));
  if (response.status == MergeStatus::kOk) {
    ++stats_.merges_completed;
  } else {
    ++stats_.merge_rejects;
  }
  return SerializeStateMergeResponse(response);
}

MergeStatus AggregatorService::RunFanInMergeLocked(
    std::unique_lock<std::mutex>& lock, uint64_t server_id,
    MergeSession group) {
  // Drain-and-claim under one lock hold, exactly like FinalizeServer: no
  // worker can slip an absorb between the idle wait and the claim.
  idle_.wait(lock, [this] { return busy_entries_ == 0 && ready_.empty(); });
  ServerEntry& entry = *entries_[server_id];
  if (entry.state != EntryState::kLive) return MergeStatus::kAlreadyFinalized;
  entry.scheduled = true;
  ++busy_entries_;
  const bool finalize = (group.flags & kMergeFlagFinalize) != 0;
  lock.unlock();

  const uint64_t start_ns = obs::NowNanos();
  std::vector<std::unique_ptr<AggregatorServer>> clones;
  clones.reserve(group.shards.size());
  for (auto& [index, clone] : group.shards) {
    clones.push_back(std::move(clone));
  }
  // Pairwise reduction rounds over a FIXED pairing (adjacent shard
  // indices; odd survivor carries over). The pairing never depends on
  // scheduling and every aggregate is a commutative integer sum, so the
  // merged state is bit-identical for 0, 1, or N workers.
  MergeStatus status = MergeStatus::kOk;
  const unsigned threads =
      workers_.empty() ? 1u : static_cast<unsigned>(workers_.size());
  while (clones.size() > 1 && status == MergeStatus::kOk) {
    const size_t pairs = clones.size() / 2;
    std::vector<MergeStatus> outcomes(pairs, MergeStatus::kOk);
    ParallelFor(pairs, threads,
                [&](unsigned, uint64_t begin, uint64_t end) {
                  for (uint64_t p = begin; p < end; ++p) {
                    outcomes[p] = clones[2 * p]->MergeFrom(*clones[2 * p + 1]);
                  }
                });
    for (MergeStatus outcome : outcomes) {
      if (outcome != MergeStatus::kOk) {
        // Clones were validated against the hosted config at push time,
        // so only a body-level disagreement (kStateMismatch: two
        // different AHEAD trees) can land here.
        status = outcome;
        break;
      }
    }
    std::vector<std::unique_ptr<AggregatorServer>> next;
    next.reserve(pairs + 1);
    for (size_t p = 0; p < pairs; ++p) next.push_back(std::move(clones[2 * p]));
    if (clones.size() % 2 == 1) next.push_back(std::move(clones.back()));
    clones = std::move(next);
  }
  if (status == MergeStatus::kOk) {
    status = entry.server->MergeFrom(*clones.front());
  }
  merge_fan_in_ns_->Record(obs::NowNanos() - start_ns);

  if (status == MergeStatus::kOk && finalize) {
    // The strand is already claimed; mirror the FinalizeServer body.
    lock.lock();
    entry.state = EntryState::kFinalizing;
    queue_space_.notify_all();  // blocked producers now observe "late"
    lock.unlock();
    NotifyQueueDrain(server_id);  // paused reads re-check (now "late")
    entry.server->Finalize();
    ++stats_.finalizes;
    lock.lock();
    entry.state = EntryState::kFinalized;
  } else {
    lock.lock();
  }
  entry.scheduled = false;
  if (--busy_entries_ == 0 && ready_.empty()) {
    idle_.notify_all();
  }
  return status;
}

void AggregatorService::ScheduleLocked(std::unique_lock<std::mutex>& lock,
                                       size_t entry_index) {
  ServerEntry& entry = *entries_[entry_index];
  if (entry.scheduled) return;
  entry.scheduled = true;
  ++busy_entries_;
  if (workers_.empty()) {
    // Inline mode: the caller's thread is the worker.
    ProcessEntry(lock, entry_index);
    return;
  }
  ready_.push_back(entry_index);
  work_ready_.notify_one();
}

// Drains one claimed entry: its queue, then any pending finalize. The
// claim (`scheduled` stays true throughout) is the strand that keeps
// mechanism code single-threaded per server. Enters and leaves with
// `lock` held; absorb/finalize run unlocked.
void AggregatorService::ProcessEntry(std::unique_lock<std::mutex>& lock,
                                     size_t entry_index) {
  ServerEntry& entry = *entries_[entry_index];
  while (true) {
    if (!entry.queue.empty()) {
      std::deque<QueuedChunk> batch;
      batch.swap(entry.queue);
      queue_space_.notify_all();  // the strand drained: unblock producers
      lock.unlock();
      NotifyQueueDrain(entry_index);  // paused socket reads re-arm
      const uint64_t picked_up_ns = obs::NowNanos();
      for (const QueuedChunk& chunk : batch) {
        queue_wait_ns_->Record(picked_up_ns - chunk.enqueue_ns);
        // Parse/range rejections are counted by the server itself.
        entry.server->AbsorbBatchSerialized(
            std::span<const uint8_t>(chunk.buffer)
                .subspan(chunk.nested_offset));
      }
      queue_depth_->Sub(static_cast<int64_t>(batch.size()));
      lock.lock();
      stats_.chunks_absorbed += batch.size();
      continue;
    }
    if (entry.finalize_pending && entry.state == EntryState::kLive) {
      entry.state = EntryState::kFinalizing;
      queue_space_.notify_all();  // blocked producers now observe "late"
      lock.unlock();
      NotifyQueueDrain(entry_index);  // paused reads re-check (now "late")
      entry.server->Finalize();
      ++stats_.finalizes;
      lock.lock();
      entry.state = EntryState::kFinalized;
      entry.finalize_pending = false;
      continue;  // re-check the queue before releasing the strand
    }
    entry.finalize_pending = false;
    break;
  }
  entry.scheduled = false;
  if (--busy_entries_ == 0 && ready_.empty()) {
    idle_.notify_all();
  }
}

void AggregatorService::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_ready_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
    if (stopping_) return;
    size_t index = ready_.front();
    ready_.pop_front();
    ProcessEntry(lock, index);
  }
}

void AggregatorService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return busy_entries_ == 0 && ready_.empty(); });
}

bool AggregatorService::FinalizeServer(uint64_t server_id) {
  std::unique_lock<std::mutex> lock(mu_);
  if (server_id >= entries_.size()) return false;
  // Drain and claim under ONE lock hold: releasing between the idle
  // wait and the claim would let a concurrent chunk hand the entry to a
  // worker, and finalizing against an in-flight absorb is a data race.
  idle_.wait(lock, [this] { return busy_entries_ == 0 && ready_.empty(); });
  ServerEntry& entry = *entries_[server_id];
  if (entry.state != EntryState::kLive) return false;
  // Claim the entry like a worker would so concurrent Drain()s wait and
  // no worker can take it; kFinalizing makes new chunks late, not
  // absorbed.
  entry.scheduled = true;
  ++busy_entries_;
  entry.state = EntryState::kFinalizing;
  queue_space_.notify_all();  // blocked producers now observe "late"
  lock.unlock();
  NotifyQueueDrain(server_id);  // paused reads re-check (now "late")
  entry.server->Finalize();
  ++stats_.finalizes;
  lock.lock();
  entry.state = EntryState::kFinalized;
  entry.scheduled = false;
  if (--busy_entries_ == 0 && ready_.empty()) {
    idle_.notify_all();
  }
  return true;
}

bool AggregatorService::server_finalized(uint64_t server_id) {
  std::lock_guard<std::mutex> lock(mu_);
  LDP_CHECK_LT(server_id, entries_.size());
  return entries_[server_id]->state == EntryState::kFinalized;
}

ServiceStats AggregatorService::stats() const {
  // Lock-free snapshot of the registry counters: safe against concurrent
  // ingestion (every field is one relaxed atomic load), exact once
  // traffic quiesces — e.g. after Drain(). Taking mu_ here would buy
  // nothing: mutation sites bump counters both inside and outside the
  // lock, so the lock never defined a consistency point.
  ServiceStats s;
  s.messages = stats_.messages.value();
  s.malformed_messages = stats_.malformed_messages.value();
  s.duplicate_sessions = stats_.duplicate_sessions.value();
  s.rejected_sessions = stats_.rejected_sessions.value();
  s.unknown_sessions = stats_.unknown_sessions.value();
  s.duplicate_chunks = stats_.duplicate_chunks.value();
  s.late_chunks = stats_.late_chunks.value();
  s.incomplete_streams = stats_.incomplete_streams.value();
  s.oversized_declarations = stats_.oversized_declarations.value();
  s.chunks_enqueued = stats_.chunks_enqueued.value();
  s.chunks_absorbed = stats_.chunks_absorbed.value();
  s.backpressure_waits = stats_.backpressure_waits.value();
  s.socket_pauses = stats_.socket_pauses.value();
  s.queries_answered = stats_.queries_answered.value();
  s.merge_requests = stats_.merge_requests.value();
  s.merge_rejects = stats_.merge_rejects.value();
  s.merge_would_block = stats_.merge_would_block.value();
  s.merges_completed = stats_.merges_completed.value();
  return s;
}

}  // namespace ldp::service
