#include "service/state_wire.h"

#include <cmath>

#include "protocol/wire.h"

namespace ldp::service {

using protocol::DecodeEnvelope;
using protocol::EncodeEnvelope;
using protocol::Envelope;
using protocol::MechanismTag;
using protocol::ParseError;
using protocol::WireReader;

namespace {

// Decodes + tag-checks the envelope; the shared front half of every
// typed parser here (same shape as stream_wire.cc's OpenEnvelope).
ParseError OpenEnvelope(std::span<const uint8_t> bytes,
                        MechanismTag expected, Envelope* env) {
  ParseError err = DecodeEnvelope(bytes, env);
  if (err != ParseError::kOk) return err;
  if (env->mechanism != expected) return ParseError::kBadPayload;
  return ParseError::kOk;
}

// Does `kind` carry a tree fanout in its snapshot header?
bool KindHasFanout(StateKind kind) {
  return kind == StateKind::kTree || kind == StateKind::kAhead ||
         kind == StateKind::kGrid;
}

}  // namespace

bool IsKnownStateKind(uint8_t kind) {
  switch (static_cast<StateKind>(kind)) {
    case StateKind::kFlat:
    case StateKind::kHaar:
    case StateKind::kTree:
    case StateKind::kAhead:
    case StateKind::kGrid:
      return true;
  }
  return false;
}

std::string StateKindName(StateKind kind) {
  switch (kind) {
    case StateKind::kFlat: return "flat";
    case StateKind::kHaar: return "haar";
    case StateKind::kTree: return "tree";
    case StateKind::kAhead: return "ahead";
    case StateKind::kGrid: return "grid";
  }
  return "?";
}

std::string MergeStatusName(MergeStatus status) {
  switch (status) {
    case MergeStatus::kOk: return "ok";
    case MergeStatus::kMalformedRequest: return "malformed_request";
    case MergeStatus::kMalformedSnapshot: return "malformed_snapshot";
    case MergeStatus::kUnknownServer: return "unknown_server";
    case MergeStatus::kAlreadyFinalized: return "already_finalized";
    case MergeStatus::kMechanismMismatch: return "mechanism_mismatch";
    case MergeStatus::kConfigMismatch: return "config_mismatch";
    case MergeStatus::kStateMismatch: return "state_mismatch";
    case MergeStatus::kDuplicateShard: return "duplicate_shard";
    case MergeStatus::kInconsistentFanIn: return "inconsistent_fan_in";
    case MergeStatus::kWouldBlock: return "would_block";
  }
  return "?";
}

bool IsKnownMergeStatus(uint8_t status) {
  return status <= static_cast<uint8_t>(MergeStatus::kWouldBlock);
}

std::vector<uint8_t> SerializeStateSnapshot(const StateSnapshotHeader& header,
                                            std::span<const uint8_t> body) {
  std::vector<uint8_t> payload;
  payload.reserve(40 + body.size());
  protocol::AppendU8(payload, static_cast<uint8_t>(header.kind));
  protocol::AppendU8(payload, static_cast<uint8_t>(header.dimensions));
  protocol::AppendVarU64(payload, header.domain);
  protocol::AppendVarU64(payload, header.fanout);
  protocol::AppendF64(payload, header.eps);
  protocol::AppendVarU64(payload, header.accepted);
  protocol::AppendVarU64(payload, header.rejected);
  payload.insert(payload.end(), body.begin(), body.end());
  return EncodeEnvelope(MechanismTag::kStateSnapshot, payload);
}

ParseError ParseStateSnapshot(std::span<const uint8_t> bytes,
                              StateSnapshotHeader* header) {
  Envelope env;
  ParseError err = OpenEnvelope(bytes, MechanismTag::kStateSnapshot, &env);
  if (err != ParseError::kOk) return err;
  WireReader reader(env.payload);
  uint8_t kind = 0;
  uint8_t dims = 0;
  uint64_t domain = 0;
  uint64_t fanout = 0;
  double eps = 0.0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  if (!reader.ReadU8(&kind) || !reader.ReadU8(&dims) ||
      !reader.ReadVarU64(&domain) || !reader.ReadVarU64(&fanout) ||
      !reader.ReadF64(&eps) || !reader.ReadVarU64(&accepted) ||
      !reader.ReadVarU64(&rejected)) {
    return ParseError::kBadPayload;
  }
  if (!IsKnownStateKind(kind)) return ParseError::kBadPayload;
  StateKind k = static_cast<StateKind>(kind);
  if (k == StateKind::kGrid) {
    if (dims == 0 || dims > protocol::kMaxWireDimensions) {
      return ParseError::kBadPayload;
    }
  } else if (dims != 1) {
    return ParseError::kBadPayload;
  }
  if (domain < 2 || domain > kMaxStateDomain) return ParseError::kBadPayload;
  if (KindHasFanout(k)) {
    if (fanout < 2 || fanout > kMaxStateFanout) return ParseError::kBadPayload;
  } else if (fanout != 0) {
    return ParseError::kBadPayload;
  }
  if (!std::isfinite(eps) || eps <= 0.0) return ParseError::kBadPayload;
  std::span<const uint8_t> body;
  if (!reader.ReadBytes(reader.Remaining(), &body)) {
    return ParseError::kBadPayload;
  }
  header->kind = k;
  header->dimensions = dims;
  header->domain = domain;
  header->fanout = fanout;
  header->eps = eps;
  header->accepted = accepted;
  header->rejected = rejected;
  header->body = body;
  return ParseError::kOk;
}

std::vector<uint8_t> SerializeStateMerge(const StateMergeRequest& request,
                                         std::span<const uint8_t> snapshot) {
  std::vector<uint8_t> payload;
  payload.reserve(40 + snapshot.size());
  protocol::AppendU64(payload, request.merge_id);
  protocol::AppendU64(payload, request.server_id);
  protocol::AppendVarU64(payload, request.shard_index);
  protocol::AppendVarU64(payload, request.shard_count);
  protocol::AppendU8(payload, request.flags);
  payload.insert(payload.end(), snapshot.begin(), snapshot.end());
  return EncodeEnvelope(MechanismTag::kStateMerge, payload);
}

ParseError ParseStateMerge(std::span<const uint8_t> bytes,
                           StateMergeRequest* request) {
  Envelope env;
  ParseError err = OpenEnvelope(bytes, MechanismTag::kStateMerge, &env);
  if (err != ParseError::kOk) return err;
  WireReader reader(env.payload);
  uint64_t merge_id = 0;
  uint64_t server_id = 0;
  uint64_t shard_index = 0;
  uint64_t shard_count = 0;
  uint8_t flags = 0;
  if (!reader.ReadU64(&merge_id) || !reader.ReadU64(&server_id) ||
      !reader.ReadVarU64(&shard_index) || !reader.ReadVarU64(&shard_count) ||
      !reader.ReadU8(&flags)) {
    return ParseError::kBadPayload;
  }
  if (shard_count == 0 || shard_count > kMaxMergeShards ||
      shard_index >= shard_count) {
    return ParseError::kBadPayload;
  }
  if ((flags & ~kMergeFlagFinalize) != 0) return ParseError::kBadPayload;
  std::span<const uint8_t> snapshot;
  if (!reader.ReadBytes(reader.Remaining(), &snapshot)) {
    return ParseError::kBadPayload;
  }
  // The nested bytes must at least frame as a kStateSnapshot message;
  // its payload is parsed by the target server (ParseStateSnapshot).
  Envelope nested;
  if (DecodeEnvelope(snapshot, &nested) != ParseError::kOk ||
      nested.mechanism != MechanismTag::kStateSnapshot) {
    return ParseError::kBadPayload;
  }
  request->merge_id = merge_id;
  request->server_id = server_id;
  request->shard_index = shard_index;
  request->shard_count = shard_count;
  request->flags = flags;
  request->snapshot = snapshot;
  return ParseError::kOk;
}

std::vector<uint8_t> SerializeStateMergeResponse(
    const StateMergeResponse& response) {
  std::vector<uint8_t> payload;
  payload.reserve(19);
  protocol::AppendU64(payload, response.merge_id);
  protocol::AppendU8(payload, static_cast<uint8_t>(response.status));
  protocol::AppendVarU64(payload, response.shards_received);
  return EncodeEnvelope(MechanismTag::kStateMergeResponse, payload);
}

ParseError ParseStateMergeResponse(std::span<const uint8_t> bytes,
                                   StateMergeResponse* response) {
  Envelope env;
  ParseError err =
      OpenEnvelope(bytes, MechanismTag::kStateMergeResponse, &env);
  if (err != ParseError::kOk) return err;
  WireReader reader(env.payload);
  uint64_t merge_id = 0;
  uint8_t status = 0;
  uint64_t shards_received = 0;
  if (!reader.ReadU64(&merge_id) || !reader.ReadU8(&status) ||
      !reader.ReadVarU64(&shards_received)) {
    return ParseError::kBadPayload;
  }
  if (!IsKnownMergeStatus(status)) return ParseError::kBadPayload;
  if (!reader.AtEnd()) return ParseError::kBadPayload;
  response->merge_id = merge_id;
  response->status = static_cast<MergeStatus>(status);
  response->shards_received = shards_received;
  return ParseError::kOk;
}

}  // namespace ldp::service
