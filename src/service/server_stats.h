// Shared acceptance/rejection accounting for every aggregator server.
//
// Before the service layer existed, each of the four protocol servers
// (flat/haar/tree/AHEAD) carried its own `accepted_`/`rejected_` pair with
// subtly copy-pasted bookkeeping. ServerStats is the one struct they all
// report through now: a report (or a structurally-rejected message) is
// counted exactly once, on the ingestion call that saw it.

#ifndef LDPRANGE_SERVICE_SERVER_STATS_H_
#define LDPRANGE_SERVICE_SERVER_STATS_H_

#include <cstdint>

#include "obs/metrics.h"

namespace ldp::service {

/// Ingestion counts of one aggregator server, as a plain value snapshot.
/// `accepted` counts reports folded into the aggregate; `rejected` counts
/// everything turned away — malformed bytes, out-of-range fields,
/// wrong-phase reports, and whole structurally-invalid messages (one
/// rejection per message).
struct ServerStats {
  uint64_t accepted = 0;
  uint64_t rejected = 0;

  /// Total ingestion decisions made.
  uint64_t ingested() const { return accepted + rejected; }

  bool operator==(const ServerStats&) const = default;
};

/// The live accounting behind ServerStats: the same CountAccepted /
/// CountRejected surface the protocol servers have always reported
/// through, now on lock-free obs::Counter atomics so ingestion workers
/// and stats scrapers never race (the service snapshots these without
/// stopping ingestion).
class ServerCounters {
 public:
  void CountAccepted(uint64_t n = 1) { accepted_.Add(n); }
  void CountRejected(uint64_t n = 1) { rejected_.Add(n); }

  uint64_t accepted() const { return accepted_.value(); }
  uint64_t rejected() const { return rejected_.value(); }

  ServerStats Snapshot() const { return ServerStats{accepted(), rejected()}; }

 private:
  obs::Counter accepted_;
  obs::Counter rejected_;
};

}  // namespace ldp::service

#endif  // LDPRANGE_SERVICE_SERVER_STATS_H_
