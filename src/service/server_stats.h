// Shared acceptance/rejection accounting for every aggregator server.
//
// Before the service layer existed, each of the four protocol servers
// (flat/haar/tree/AHEAD) carried its own `accepted_`/`rejected_` pair with
// subtly copy-pasted bookkeeping. ServerStats is the one struct they all
// report through now: a report (or a structurally-rejected message) is
// counted exactly once, on the ingestion call that saw it.

#ifndef LDPRANGE_SERVICE_SERVER_STATS_H_
#define LDPRANGE_SERVICE_SERVER_STATS_H_

#include <cstdint>

namespace ldp::service {

/// Ingestion counters of one aggregator server. `accepted` counts reports
/// folded into the aggregate; `rejected` counts everything turned away —
/// malformed bytes, out-of-range fields, wrong-phase reports, and whole
/// structurally-invalid messages (one rejection per message).
struct ServerStats {
  uint64_t accepted = 0;
  uint64_t rejected = 0;

  /// Total ingestion decisions made.
  uint64_t ingested() const { return accepted + rejected; }

  void CountAccepted(uint64_t n = 1) { accepted += n; }
  void CountRejected(uint64_t n = 1) { rejected += n; }

  bool operator==(const ServerStats&) const = default;
};

}  // namespace ldp::service

#endif  // LDPRANGE_SERVICE_SERVER_STATS_H_
