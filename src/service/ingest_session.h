// Per-session stream reassembly state for the aggregator service.
//
// An IngestSession tracks which chunk sequence numbers of one streaming
// session have been admitted, so duplicate chunks (a retrying client, a
// replaying middlebox) are dropped instead of double-counted, and so the
// kStreamEnd completeness check — did every declared chunk arrive? — is
// exact even under arbitrary reordering. It holds no report bytes and no
// mechanism state; chunk payloads flow straight to the target server's
// ingestion queue.

#ifndef LDPRANGE_SERVICE_INGEST_SESSION_H_
#define LDPRANGE_SERVICE_INGEST_SESSION_H_

#include <cstdint>
#include <unordered_set>

namespace ldp::service {

/// Outcome of an IngestSession::End declaration.
enum class EndResult : uint8_t {
  kOk = 0,
  kAlreadyEnded,  // a replayed kStreamEnd; the first declaration stands
  // The declaration names more chunks than AdmitChunk will ever accept
  // (> kMaxSequences), so completeness would be silently impossible.
  // The declaration is rejected and the session stays live: a retry with
  // an honest count can still end it.
  kOversizedDeclaration,
};

class IngestSession {
 public:
  /// Hard cap on distinct chunk sequences per session. Honest streams
  /// number chunks 0..count-1, so this allows ~500M reports per session
  /// at typical chunk sizes while bounding what chunk spam on one
  /// never-ending session can pin in the dedupe set (~2.5 MB at the
  /// cap). Sequences at or past the cap are rejected, never admitted.
  static constexpr uint64_t kMaxSequences = uint64_t{1} << 16;

  IngestSession(uint64_t session_id, uint64_t server_id)
      : session_id_(session_id), server_id_(server_id) {}

  uint64_t session_id() const { return session_id_; }
  uint64_t server_id() const { return server_id_; }

  /// True when AdmitChunk(sequence) would admit: the session is live,
  /// the sequence is in policy and not yet seen. Const — the peek a
  /// non-blocking caller uses to decide whether a full queue is worth
  /// pausing for before anything is recorded.
  bool CanAdmit(uint64_t sequence) const {
    return !ended_ && sequence < kMaxSequences && !seen_.contains(sequence);
  }

  /// Admits chunk `sequence`: true when it is new (caller should enqueue
  /// its payload), false for a duplicate, an out-of-policy sequence
  /// (>= kMaxSequences), or a chunk after the session ended (caller
  /// should drop it).
  bool AdmitChunk(uint64_t sequence) {
    if (ended_ || sequence >= kMaxSequences) return false;
    if (!seen_.insert(sequence).second) return false;
    if (!has_seen_ || sequence > max_sequence_) max_sequence_ = sequence;
    has_seen_ = true;
    return true;
  }

  /// Records the kStreamEnd declaration. Completeness is decided here —
  /// the admitted sequences are exactly {0, ..., chunk_count - 1} iff
  /// the set holds `chunk_count` distinct values with maximum
  /// chunk_count - 1 — and the sequence set is then released: it exists
  /// only for pre-end dedupe, and a long-lived service holds many ended
  /// sessions. A declaration no stream can satisfy (chunk_count >
  /// kMaxSequences) is rejected with kOversizedDeclaration instead of
  /// silently landing the session in the incomplete bucket.
  EndResult End(uint64_t chunk_count, uint8_t flags) {
    if (ended_) return EndResult::kAlreadyEnded;
    if (chunk_count > kMaxSequences) return EndResult::kOversizedDeclaration;
    ended_ = true;
    declared_chunks_ = chunk_count;
    flags_ = flags;
    chunks_admitted_ = seen_.size();
    complete_ = declared_chunks_ == 0
                    ? seen_.empty()
                    : (seen_.size() == declared_chunks_ &&
                       max_sequence_ == declared_chunks_ - 1);
    std::unordered_set<uint64_t>().swap(seen_);
    return EndResult::kOk;
  }

  bool ended() const { return ended_; }
  uint8_t flags() const { return flags_; }
  uint64_t chunks_admitted() const {
    return ended_ ? chunks_admitted_ : seen_.size();
  }
  uint64_t declared_chunks() const { return declared_chunks_; }

  /// True iff the session ended with every declared chunk admitted.
  bool complete() const { return ended_ && complete_; }

 private:
  uint64_t session_id_;
  uint64_t server_id_;
  std::unordered_set<uint64_t> seen_;
  // max_sequence_ is only meaningful once a chunk has been admitted;
  // has_seen_ makes that explicit instead of special-casing set sizes.
  bool has_seen_ = false;
  uint64_t max_sequence_ = 0;
  uint64_t declared_chunks_ = 0;
  uint64_t chunks_admitted_ = 0;
  uint8_t flags_ = 0;
  bool ended_ = false;
  bool complete_ = false;
};

}  // namespace ldp::service

#endif  // LDPRANGE_SERVICE_INGEST_SESSION_H_
