// Wire form of the distributed fan-in plane: serialized aggregate-state
// snapshots and the merge request/response pair that carries them from N
// shard-local ingest nodes to one query node.
//
// Message layouts (see envelope.h for the surrounding 8-byte header):
//
//   kStateSnapshot (0x30)
//     [kind u8][dims u8][domain varint][fanout varint][eps f64]
//     [accepted varint][rejected varint][mechanism-specific state body]
//   The header names the exact server configuration the body was
//   extracted from; a receiving server only merges a snapshot whose
//   kind/dims/domain/fanout/eps match its own *bit-exactly* (eps compares
//   by f64 bit pattern — two servers that disagree in the last ulp are
//   different mechanisms). The body layout is owned by the concrete
//   server class (see AggregatorServer::SerializeState) and is canonical:
//   re-serializing restored state reproduces the same bytes.
//
//   kStateMerge (0x31)
//     [merge_id u64][server_id u64][shard_index varint][shard_count varint]
//     [flags u8][nested kStateSnapshot message = rest of payload]
//   One shard's push into a fan-in group. All pushes of a group share
//   merge_id/shard_count/flags; shard_index in [0, shard_count) must be
//   unique per group. kMergeFlagFinalize asks the receiver to finalize
//   the target server once every shard has arrived.
//
//   kStateMergeResponse (0x32)
//     [merge_id u64][status u8][shards_received varint]
//   Typed ack for one push. kWouldBlock means the merge plane's snapshot
//   buffer is full — the push was *not* recorded and the sender should
//   back off and retry (src/net/snapshot_push.h).
//
// All parsers are total over adversarial bytes: forged kinds, impossible
// shard geometry, non-finite eps and oversized declared state are
// explicit errors, never crashes, and no allocation is driven by
// attacker-controlled lengths.

#ifndef LDPRANGE_SERVICE_STATE_WIRE_H_
#define LDPRANGE_SERVICE_STATE_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "protocol/envelope.h"

namespace ldp::service {

/// Which mechanism family a snapshot's state body belongs to. Values are
/// wire format — never renumber (0 stays invalid so a zeroed byte can
/// never alias a real kind).
enum class StateKind : uint8_t {
  kFlat = 1,
  kHaar = 2,
  kTree = 3,
  kAhead = 4,
  kGrid = 5,
};

/// True for every value ParseStateSnapshot will admit.
bool IsKnownStateKind(uint8_t kind);

/// Human-readable kind name ("flat", "grid", ...); "?" for unknown.
std::string StateKindName(StateKind kind);

/// Outcome of one merge push, on the wire and in the API. Values are wire
/// format — never renumber.
enum class MergeStatus : uint8_t {
  kOk = 0,
  kMalformedRequest = 1,   // kStateMerge message did not parse
  kMalformedSnapshot = 2,  // snapshot header or state body did not parse
  kUnknownServer = 3,      // server_id does not name a hosted server
  kAlreadyFinalized = 4,   // target server no longer accepts state
  kMechanismMismatch = 5,  // snapshot kind != target server kind
  kConfigMismatch = 6,     // dims/domain/fanout/eps differ from target
  kStateMismatch = 7,      // bodies disagree (e.g. two different AHEAD trees)
  kDuplicateShard = 8,     // shard_index already pushed for this merge_id
  kInconsistentFanIn = 9,  // shard_count/flags differ across a group
  kWouldBlock = 10,        // snapshot buffer full; back off and retry
};

/// Stable identifier for logs and tests ("ok", "would_block", ...).
std::string MergeStatusName(MergeStatus status);

/// True for every value ParseStateMergeResponse will admit.
bool IsKnownMergeStatus(uint8_t status);

/// Wire ceilings, enforced before any allocation. Fan-in wider than 4096
/// shards wants a tree of query nodes, not a bigger session table; the
/// domain/fanout caps match the AHEAD tree message's.
inline constexpr uint64_t kMaxMergeShards = 4096;
inline constexpr uint64_t kMaxStateDomain = uint64_t{1} << 32;
inline constexpr uint64_t kMaxStateFanout = 1024;

/// kStateMerge flag bits.
inline constexpr uint8_t kMergeFlagFinalize = 0x01;

/// Decoded kStateSnapshot header. `body` borrows from the parsed buffer.
struct StateSnapshotHeader {
  StateKind kind = StateKind::kFlat;
  uint32_t dimensions = 1;
  uint64_t domain = 0;
  uint64_t fanout = 0;  // 0 for kinds without a tree (flat, haar)
  double eps = 0.0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  std::span<const uint8_t> body;
};

/// Decoded kStateMerge request. `snapshot` borrows the nested framed
/// kStateSnapshot message (framing validated, payload not yet parsed).
struct StateMergeRequest {
  uint64_t merge_id = 0;
  uint64_t server_id = 0;
  uint64_t shard_index = 0;
  uint64_t shard_count = 1;
  uint8_t flags = 0;
  std::span<const uint8_t> snapshot;
};

/// Decoded kStateMergeResponse.
struct StateMergeResponse {
  uint64_t merge_id = 0;
  MergeStatus status = MergeStatus::kOk;
  uint64_t shards_received = 0;

  bool operator==(const StateMergeResponse&) const = default;
};

/// Frames a snapshot header + mechanism state body as one kStateSnapshot
/// message (the AggregatorServer::SerializeState back end).
std::vector<uint8_t> SerializeStateSnapshot(const StateSnapshotHeader& header,
                                            std::span<const uint8_t> body);

/// Total parser for kStateSnapshot. Validates the header (known kind,
/// dims in [1, kMaxWireDimensions], domain in [2, kMaxStateDomain],
/// fanout 0 or [2, kMaxStateFanout] per kind, finite positive eps) and
/// hands back the raw state body for the target server to parse.
protocol::ParseError ParseStateSnapshot(std::span<const uint8_t> bytes,
                                        StateSnapshotHeader* header);

/// Frames one fan-in push. `snapshot` must be a complete framed
/// kStateSnapshot message (as produced by SerializeStateSnapshot).
std::vector<uint8_t> SerializeStateMerge(const StateMergeRequest& request,
                                         std::span<const uint8_t> snapshot);

/// Total parser for kStateMerge. Validates shard geometry (count in
/// [1, kMaxMergeShards], index < count), known flags, and that the nested
/// bytes frame as a kStateSnapshot message.
protocol::ParseError ParseStateMerge(std::span<const uint8_t> bytes,
                                     StateMergeRequest* request);

/// Frames one typed ack.
std::vector<uint8_t> SerializeStateMergeResponse(
    const StateMergeResponse& response);

/// Total parser for kStateMergeResponse.
protocol::ParseError ParseStateMergeResponse(std::span<const uint8_t> bytes,
                                             StateMergeResponse* response);

}  // namespace ldp::service

#endif  // LDPRANGE_SERVICE_STATE_WIRE_H_
