// TCP transport front-end for the aggregator service.
//
// TcpFrontEnd is the piece that finally puts AggregatorService on a
// socket: an epoll-based, single-event-loop TCP server that speaks the
// existing v2 envelope, unmodified, as its stream framing. The envelope
// header already carries an exact payload length, so a connection is
// just a concatenation of framed messages:
//
//   client                        TcpFrontEnd                 service
//   bytes --TCP--> [8-byte header | payload] split --------> TryHandleMessage
//          <-TCP-- [kRangeQueryResponse / kMultiDimQueryResponse] <- queries
//
// Stream messages (kStreamBegin/Chunk/End) are fire-and-forget exactly
// as in-process; query requests produce one framed response each, written
// back on the same connection in request order. Anything the service
// counts as malformed is counted and skipped — the connection survives,
// because framing only depends on the magic and length. Bytes that break
// the framing itself (bad magic, oversized declared length) are
// unrecoverable on a byte stream: the connection is closed and counted
// in stats().protocol_errors.
//
// Backpressure is propagated from the bounded ingestion queues to the
// socket instead of blocking a thread: a chunk whose target server queue
// is at its high-water mark makes TryHandleMessage return kWouldBlock,
// and the front-end then parks the message, deregisters the connection
// from EPOLLIN (the kernel socket buffer and ultimately the client's
// send window absorb the pressure), and re-arms when the service's
// queue-drain hook fires for that server. No service thread ever blocks
// on a socket's behalf; ServiceStats.socket_pauses counts the deferrals.
//
// Connection lifecycle: accepted connections are non-blocking and live
// until (a) the peer closes or half-closes — remaining complete messages
// are processed and pending responses flushed before the close
// (graceful, so "send session + shutdown(SHUT_WR)" is a correct client),
// (b) they sit idle past config.idle_timeout_ms (paused connections are
// exempt — they are waiting on the service, not the client), or (c) a
// framing violation. Everything runs on one event-loop thread; the only
// cross-thread touch points are the drain hook (an eventfd wakeup) and
// Stop().
//
// One front-end serves one AggregatorService (it owns the service's
// queue-drain hook); the service must outlive the front-end, and
// Stop()/the destructor detach the hook before tearing anything down.

#ifndef LDPRANGE_NET_TCP_FRONT_END_H_
#define LDPRANGE_NET_TCP_FRONT_END_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "service/aggregator_service.h"

namespace ldp::net {

struct TcpFrontEndConfig {
  /// Address to bind; the default serves loopback only (benches, tests,
  /// single-box deployments). "0.0.0.0" listens on all interfaces.
  std::string bind_address = "127.0.0.1";
  /// Port to bind; 0 picks an ephemeral port, published via port().
  uint16_t port = 0;
  int listen_backlog = 256;
  /// Upper bound on one framed message (header + payload). The envelope
  /// field allows 4 GiB; no real chunk or query comes within a mile of
  /// 64 MiB, so anything larger is treated as a framing attack.
  uint32_t max_message_bytes = uint32_t{1} << 26;
  /// Connections idle longer than this are closed (0 disables). Paused
  /// connections — waiting on a congested server queue — are exempt.
  int64_t idle_timeout_ms = 0;
  /// Accept cap; connections past it are closed immediately on accept.
  size_t max_connections = 16384;
};

/// Front-end counters. Monotonic over the front-end's lifetime; read via
/// stats() from any thread.
struct TcpFrontEndStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;   // every close, whatever the reason
  uint64_t connections_rejected = 0;  // past config.max_connections
  uint64_t idle_closes = 0;
  uint64_t protocol_errors = 0;  // framing violations (connection killed)
  uint64_t messages_routed = 0;  // complete messages handed to the service
  uint64_t responses_sent = 0;   // query responses queued for write
  uint64_t bytes_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t read_pauses = 0;   // EPOLLIN deregistrations (backpressure)
  uint64_t read_resumes = 0;  // re-arms after a queue-drain notification
};

class TcpFrontEnd {
 public:
  /// Binds nothing yet; call Start(). `service` must outlive this object.
  explicit TcpFrontEnd(service::AggregatorService& service,
                       TcpFrontEndConfig config = {});
  ~TcpFrontEnd();

  TcpFrontEnd(const TcpFrontEnd&) = delete;
  TcpFrontEnd& operator=(const TcpFrontEnd&) = delete;

  /// Binds, listens, registers the service drain hook and spawns the
  /// event loop. False (with errno intact) when the socket setup fails;
  /// a started front-end must be Stop()ped (the destructor does).
  bool Start();

  /// Detaches the drain hook, wakes the loop, closes every connection
  /// and joins the thread. Idempotent.
  void Stop();

  bool running() const { return running_; }

  /// The bound port — the ephemeral one when config.port was 0. Valid
  /// after a successful Start().
  uint16_t port() const { return port_; }

  TcpFrontEndStats stats() const;

 private:
  struct Connection {
    int fd = -1;
    // Unparsed inbound bytes; [read_pos, size) is live, the consumed
    // prefix is compacted away once it outgrows the live tail.
    std::vector<uint8_t> read_buf;
    size_t read_pos = 0;
    // Outbound: FIFO of framed responses, write_pos into the front one.
    std::deque<std::vector<uint8_t>> write_queue;
    size_t write_pos = 0;
    bool want_write = false;  // EPOLLOUT currently armed
    // Whether the fd is registered with epoll at all. An EOF'd paused
    // connection is deregistered outright: with a zero event mask the
    // kernel would still report EPOLLHUP every round and spin the loop.
    bool in_epoll = true;
    // Backpressure: a complete message the service would-blocked on,
    // re-presented verbatim when `paused_server`'s queue drains.
    bool paused = false;
    uint64_t paused_server = 0;
    std::vector<uint8_t> pending_message;
    bool peer_eof = false;  // read side done; close once drained+flushed
    std::chrono::steady_clock::time_point last_activity;
  };

  void EventLoop();
  void AcceptReady();
  void HandleReadable(Connection& conn);
  void HandleWritable(Connection& conn);
  /// Parses and routes every complete message in the read buffer; stops
  /// early when the connection pauses. Returns false when the
  /// connection was closed (framing violation).
  bool DrainReadBuffer(Connection& conn);
  /// Routes one complete message (consuming `message`); returns false
  /// when the service would-blocked and the connection paused.
  bool RouteMessage(Connection& conn, std::vector<uint8_t>&& message);
  /// Retries the parked message of every connection paused on
  /// `server_id`, then resumes parsing their read buffers.
  void ResumePaused(uint64_t server_id);
  void QueueResponse(Connection& conn, std::vector<uint8_t> response);
  void FlushWrites(Connection& conn);
  void UpdateEpoll(Connection& conn, bool want_read);
  void CloseConnection(int fd);
  /// Closes `conn` if it is fully done: peer EOF, nothing buffered,
  /// nothing pending, nothing left to write.
  void MaybeFinishClose(Connection& conn);
  void SweepIdle();

  service::AggregatorService& service_;
  const TcpFrontEndConfig config_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: drain notifications + stop
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread loop_;

  // Cross-thread mailbox: the service's drain hook (worker threads)
  // pushes server ids here and signals wake_fd_; the loop swaps the
  // vector out under the same mutex. stop_requested_ rides along.
  std::mutex mailbox_mu_;
  std::vector<uint64_t> pending_drains_;
  bool stop_requested_ = false;

  // Connection table: event-loop thread only.
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  // Front-end counters, owned by the service's metrics registry under
  // "net.*" names so one stats scrape (kStatsQuery or stats()) sees
  // transport and service in a single snapshot. Counter addresses are
  // stable for the registry's — that is, the service's — lifetime.
  struct NetCounters {
    explicit NetCounters(obs::MetricsRegistry& registry);
    obs::Counter* connections_accepted;
    obs::Counter* connections_closed;
    obs::Counter* connections_rejected;
    obs::Counter* idle_closes;
    obs::Counter* protocol_errors;
    obs::Counter* messages_routed;
    obs::Counter* responses_sent;
    obs::Counter* bytes_received;
    obs::Counter* bytes_sent;
    obs::Counter* read_pauses;
    obs::Counter* read_resumes;
  };
  NetCounters stats_{service_.registry()};
};

}  // namespace ldp::net

#endif  // LDPRANGE_NET_TCP_FRONT_END_H_
