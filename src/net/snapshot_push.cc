#include "net/snapshot_push.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "net/tcp_client.h"

namespace ldp::net {

namespace {

// xorshift64: tiny deterministic jitter stream, one state word per call
// site. Not an Rng (common/random.h) on purpose — backoff jitter needs
// no statistical quality, only decorrelation between shards.
uint64_t NextJitter(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

}  // namespace

SnapshotPushResult PushStateSnapshot(TcpClient& client, uint64_t merge_id,
                                     uint64_t server_id, uint64_t shard_index,
                                     uint64_t shard_count, uint8_t flags,
                                     std::span<const uint8_t> snapshot,
                                     const SnapshotPushOptions& options) {
  service::StateMergeRequest request;
  request.merge_id = merge_id;
  request.server_id = server_id;
  request.shard_index = shard_index;
  request.shard_count = shard_count;
  request.flags = flags;
  const std::vector<uint8_t> message =
      service::SerializeStateMerge(request, snapshot);

  const int saved_timeout = client.receive_timeout_ms();
  client.set_receive_timeout_ms(options.receive_timeout_ms);

  SnapshotPushResult result;
  uint64_t jitter_state =
      options.jitter_seed != 0 ? options.jitter_seed : 0x9E3779B97F4A7C15ULL;
  uint64_t backoff_us = std::max<uint32_t>(options.initial_backoff_us, 1);
  for (uint32_t attempt = 0;; ++attempt) {
    std::vector<uint8_t> ack = client.Call(message);
    if (ack.empty()) {
      result.transport_error = true;
      break;
    }
    service::StateMergeResponse response;
    if (service::ParseStateMergeResponse(ack, &response) !=
            protocol::ParseError::kOk ||
        response.merge_id != merge_id) {
      result.transport_error = true;
      break;
    }
    result.status = response.status;
    result.shards_received = response.shards_received;
    if (response.status != service::MergeStatus::kWouldBlock ||
        attempt >= options.max_retries) {
      result.ok = response.status == service::MergeStatus::kOk;
      break;
    }
    ++result.retries;
    // Full jitter over [backoff, 2*backoff): staggered even when every
    // shard entered the retry loop on the same ack.
    uint64_t sleep_us = backoff_us + NextJitter(&jitter_state) % backoff_us;
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    backoff_us = std::min<uint64_t>(backoff_us * 2, options.max_backoff_us);
  }

  client.set_receive_timeout_ms(saved_timeout);
  return result;
}

}  // namespace ldp::net
