#include "net/tcp_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "protocol/envelope.h"

namespace ldp::net {

TcpClient::~TcpClient() { Close(); }

TcpClient::TcpClient(TcpClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpClient& TcpClient::operator=(TcpClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool TcpClient::Connect(const std::string& host, uint16_t port) {
  Close();
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    errno = EINVAL;
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    return false;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return true;
}

bool TcpClient::Send(std::span<const uint8_t> message) {
  if (fd_ < 0) return false;
  size_t sent = 0;
  while (sent < message.size()) {
    ssize_t n = ::send(fd_, message.data() + sent, message.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool TcpClient::ReadExact(uint8_t* out, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd_, out + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF mid-message (or before one)
    got += static_cast<size_t>(r);
  }
  return true;
}

bool TcpClient::ReceiveMessage(std::vector<uint8_t>* message) {
  if (fd_ < 0) return false;
  uint8_t header[protocol::kEnvelopeHeaderSize];
  if (!ReadExact(header, sizeof(header))) return false;
  if (header[0] != protocol::kEnvelopeMagic0 ||
      header[1] != protocol::kEnvelopeMagic1) {
    return false;
  }
  uint32_t payload_len = static_cast<uint32_t>(header[4]) |
                         static_cast<uint32_t>(header[5]) << 8 |
                         static_cast<uint32_t>(header[6]) << 16 |
                         static_cast<uint32_t>(header[7]) << 24;
  message->resize(sizeof(header) + payload_len);
  std::memcpy(message->data(), header, sizeof(header));
  return ReadExact(message->data() + sizeof(header), payload_len);
}

std::vector<uint8_t> TcpClient::Call(std::span<const uint8_t> request) {
  std::vector<uint8_t> response;
  if (!Send(request) || !ReceiveMessage(&response)) return {};
  return response;
}

void TcpClient::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void TcpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace ldp::net
