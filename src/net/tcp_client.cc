#include "net/tcp_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstring>

#include "protocol/envelope.h"

namespace ldp::net {

std::string RecvStatusName(RecvStatus status) {
  switch (status) {
    case RecvStatus::kOk: return "ok";
    case RecvStatus::kClosed: return "closed";
    case RecvStatus::kTimeout: return "timeout";
    case RecvStatus::kBadFrame: return "bad_frame";
    case RecvStatus::kError: return "error";
  }
  return "?";
}

TcpClient::~TcpClient() { Close(); }

TcpClient::TcpClient(TcpClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpClient& TcpClient::operator=(TcpClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool TcpClient::Connect(const std::string& host, uint16_t port) {
  Close();
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    errno = EINVAL;
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    return false;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return true;
}

bool TcpClient::Send(std::span<const uint8_t> message) {
  if (fd_ < 0) return false;
  size_t sent = 0;
  while (sent < message.size()) {
    ssize_t n = ::send(fd_, message.data() + sent, message.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

RecvStatus TcpClient::ReadExact(
    uint8_t* out, size_t n,
    const std::chrono::steady_clock::time_point* deadline) {
  size_t got = 0;
  while (got < n) {
    if (deadline != nullptr) {
      // Round the remaining budget up to whole milliseconds so a
      // sub-millisecond remainder still polls once instead of spinning
      // or timing out early.
      auto remaining = std::chrono::ceil<std::chrono::milliseconds>(
          *deadline - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) return RecvStatus::kTimeout;
      pollfd pfd{fd_, POLLIN, 0};
      int ready = ::poll(
          &pfd, 1,
          static_cast<int>(std::min<long long>(remaining.count(), INT_MAX)));
      if (ready < 0) {
        if (errno == EINTR) continue;
        return RecvStatus::kError;
      }
      if (ready == 0) return RecvStatus::kTimeout;
    }
    ssize_t r = ::recv(fd_, out + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return RecvStatus::kError;
    }
    if (r == 0) return RecvStatus::kClosed;  // EOF mid-message (or before one)
    got += static_cast<size_t>(r);
  }
  return RecvStatus::kOk;
}

bool TcpClient::ReceiveMessage(std::vector<uint8_t>* message) {
  if (fd_ < 0) {
    last_receive_status_ = RecvStatus::kError;
    return false;
  }
  std::chrono::steady_clock::time_point deadline;
  const bool timed = receive_timeout_ms_ > 0;
  if (timed) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(receive_timeout_ms_);
  }
  const std::chrono::steady_clock::time_point* deadline_ptr =
      timed ? &deadline : nullptr;
  uint8_t header[protocol::kEnvelopeHeaderSize];
  RecvStatus status = ReadExact(header, sizeof(header), deadline_ptr);
  if (status != RecvStatus::kOk) {
    last_receive_status_ = status;
    return false;
  }
  if (header[0] != protocol::kEnvelopeMagic0 ||
      header[1] != protocol::kEnvelopeMagic1) {
    last_receive_status_ = RecvStatus::kBadFrame;
    return false;
  }
  uint32_t payload_len = static_cast<uint32_t>(header[4]) |
                         static_cast<uint32_t>(header[5]) << 8 |
                         static_cast<uint32_t>(header[6]) << 16 |
                         static_cast<uint32_t>(header[7]) << 24;
  message->resize(sizeof(header) + payload_len);
  std::memcpy(message->data(), header, sizeof(header));
  status = ReadExact(message->data() + sizeof(header), payload_len,
                     deadline_ptr);
  last_receive_status_ = status;
  return status == RecvStatus::kOk;
}

std::vector<uint8_t> TcpClient::Call(std::span<const uint8_t> request) {
  std::vector<uint8_t> response;
  if (!Send(request) || !ReceiveMessage(&response)) return {};
  return response;
}

void TcpClient::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void TcpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace ldp::net
