// Shard-side snapshot push for the distributed fan-in plane.
//
// One call pushes one serialized aggregate-state snapshot (see
// AggregatorServer::SerializeState) to a query node over an established
// TcpClient connection, framed as a kStateMerge message, and interprets
// the typed kStateMergeResponse ack. The one transient status —
// kWouldBlock, the query node's snapshot buffer is full — is retried
// here with capped exponential backoff plus deterministic xorshift
// jitter (so N shards that hit the wall together do not re-collide on
// the same schedule). Every other status is final: a config mismatch
// will not fix itself by retrying.

#ifndef LDPRANGE_NET_SNAPSHOT_PUSH_H_
#define LDPRANGE_NET_SNAPSHOT_PUSH_H_

#include <cstdint>
#include <span>

#include "service/state_wire.h"

namespace ldp::net {

class TcpClient;

/// Retry/backoff policy for PushStateSnapshot.
struct SnapshotPushOptions {
  /// Retries after a kWouldBlock ack before giving up (the final result
  /// then carries kWouldBlock). Other statuses never retry.
  uint32_t max_retries = 16;
  /// First backoff sleep; doubles per retry up to max_backoff_us.
  uint32_t initial_backoff_us = 500;
  uint32_t max_backoff_us = 64 * 1024;
  /// Seed for the jitter stream (xorshift64; 0 is remapped internally).
  /// Give each shard a distinct seed — identical seeds re-collide.
  uint64_t jitter_seed = 0x5EED;
  /// Receive deadline per ack, in ms (0 = block indefinitely). Applied
  /// to the client for the duration of the call, then restored.
  int receive_timeout_ms = 0;
};

/// Outcome of one push (including any internal retries).
struct SnapshotPushResult {
  /// True iff the query node acked kOk.
  bool ok = false;
  /// True when the transport failed — send error, receive timeout, or
  /// an unparseable/mismatched ack. `status` is meaningless then; check
  /// TcpClient::last_receive_status() for the receive-side cause.
  bool transport_error = false;
  /// The final ack's status (kWouldBlock after exhausted retries).
  service::MergeStatus status = service::MergeStatus::kOk;
  /// shards_received reported by the final ack.
  uint64_t shards_received = 0;
  /// kWouldBlock acks absorbed before the final outcome — reconciled
  /// against the service's merge_would_block counter by loadgen.
  uint32_t retries = 0;
};

/// Pushes `snapshot` (a complete framed kStateSnapshot message) as shard
/// `shard_index` of `shard_count` into merge group `merge_id` targeting
/// hosted server `server_id`. Blocking; retries only on kWouldBlock.
SnapshotPushResult PushStateSnapshot(TcpClient& client, uint64_t merge_id,
                                     uint64_t server_id, uint64_t shard_index,
                                     uint64_t shard_count, uint8_t flags,
                                     std::span<const uint8_t> snapshot,
                                     const SnapshotPushOptions& options = {});

}  // namespace ldp::net

#endif  // LDPRANGE_NET_SNAPSHOT_PUSH_H_
