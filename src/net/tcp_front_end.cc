#include "net/tcp_front_end.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "protocol/envelope.h"

namespace ldp::net {

namespace {

// Per-recv scratch size. Large enough that a bulk-streaming connection
// drains the kernel buffer in a few calls, small enough to live on the
// stack.
constexpr size_t kReadChunk = 64 * 1024;

// Events processed per epoll_wait round.
constexpr int kMaxEvents = 64;

// With idle sweeping enabled the loop must wake even when no fd fires.
constexpr int kIdleTickMs = 250;

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

TcpFrontEnd::NetCounters::NetCounters(obs::MetricsRegistry& registry)
    : connections_accepted(&registry.GetCounter("net.connections_accepted")),
      connections_closed(&registry.GetCounter("net.connections_closed")),
      connections_rejected(&registry.GetCounter("net.connections_rejected")),
      idle_closes(&registry.GetCounter("net.idle_closes")),
      protocol_errors(&registry.GetCounter("net.protocol_errors")),
      messages_routed(&registry.GetCounter("net.messages_routed")),
      responses_sent(&registry.GetCounter("net.responses_sent")),
      bytes_received(&registry.GetCounter("net.bytes_received")),
      bytes_sent(&registry.GetCounter("net.bytes_sent")),
      read_pauses(&registry.GetCounter("net.read_pauses")),
      read_resumes(&registry.GetCounter("net.read_resumes")) {}

TcpFrontEnd::TcpFrontEnd(service::AggregatorService& service,
                         TcpFrontEndConfig config)
    : service_(service), config_(std::move(config)) {}

TcpFrontEnd::~TcpFrontEnd() { Stop(); }

bool TcpFrontEnd::Start() {
  LDP_CHECK(!running_.load());
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return false;
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    CloseFd(listen_fd_);
    errno = EINVAL;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, config_.listen_backlog) < 0) {
    CloseFd(listen_fd_);
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    CloseFd(listen_fd_);
    return false;
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    CloseFd(listen_fd_);
    CloseFd(epoll_fd_);
    CloseFd(wake_fd_);
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  LDP_CHECK_EQ(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev), 0);
  ev.data.fd = wake_fd_;
  LDP_CHECK_EQ(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev), 0);

  stop_requested_ = false;
  // The drain hook runs on service worker threads: push the id into the
  // mailbox and kick the loop awake. It must never touch epoll or
  // connection state directly.
  service_.SetQueueDrainHook([this](uint64_t server_id) {
    {
      std::lock_guard<std::mutex> lock(mailbox_mu_);
      pending_drains_.push_back(server_id);
    }
    uint64_t kick = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &kick, sizeof(kick));
  });
  running_.store(true);
  loop_ = std::thread([this] { EventLoop(); });
  return true;
}

void TcpFrontEnd::Stop() {
  if (loop_.joinable()) {
    // Detach the hook first: SetQueueDrainHook serializes against any
    // in-flight invocation, so after this line no worker thread can
    // touch the mailbox or wake_fd_ again.
    service_.SetQueueDrainHook(nullptr);
    {
      std::lock_guard<std::mutex> lock(mailbox_mu_);
      stop_requested_ = true;
    }
    uint64_t kick = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &kick, sizeof(kick));
    loop_.join();
  }
  for (auto& [fd, conn] : conns_) {
    int fd_copy = fd;
    CloseFd(fd_copy);
    stats_.connections_closed->Increment();
  }
  conns_.clear();
  CloseFd(listen_fd_);
  CloseFd(epoll_fd_);
  CloseFd(wake_fd_);
  running_.store(false);
}

TcpFrontEndStats TcpFrontEnd::stats() const {
  TcpFrontEndStats out;
  out.connections_accepted =
      stats_.connections_accepted->value();
  out.connections_closed =
      stats_.connections_closed->value();
  out.connections_rejected =
      stats_.connections_rejected->value();
  out.idle_closes = stats_.idle_closes->value();
  out.protocol_errors =
      stats_.protocol_errors->value();
  out.messages_routed =
      stats_.messages_routed->value();
  out.responses_sent = stats_.responses_sent->value();
  out.bytes_received = stats_.bytes_received->value();
  out.bytes_sent = stats_.bytes_sent->value();
  out.read_pauses = stats_.read_pauses->value();
  out.read_resumes = stats_.read_resumes->value();
  return out;
}

void TcpFrontEnd::EventLoop() {
  epoll_event events[kMaxEvents];
  const int timeout_ms = config_.idle_timeout_ms > 0
                             ? static_cast<int>(std::min<int64_t>(
                                   config_.idle_timeout_ms, kIdleTickMs))
                             : -1;
  while (true) {
    int ready = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; nothing sane left to do
    }
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t mask = events[i].events;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t n =
            ::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier this round
      Connection& conn = *it->second;
      if ((mask & EPOLLOUT) != 0) {
        HandleWritable(conn);
        if (!conns_.contains(fd)) continue;
      }
      if ((mask & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        HandleReadable(conn);
      }
    }
    // Drain notifications and the stop flag arrive via the mailbox.
    std::vector<uint64_t> drains;
    bool stop = false;
    {
      std::lock_guard<std::mutex> lock(mailbox_mu_);
      drains.swap(pending_drains_);
      stop = stop_requested_;
    }
    for (uint64_t server_id : drains) ResumePaused(server_id);
    if (stop) break;
    if (config_.idle_timeout_ms > 0) SweepIdle();
  }
}

void TcpFrontEnd::AcceptReady() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept failure: try next round
    }
    if (conns_.size() >= config_.max_connections) {
      ::close(fd);
      stats_.connections_rejected->Increment();
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->last_activity = std::chrono::steady_clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
    stats_.connections_accepted->Increment();
  }
}

void TcpFrontEnd::HandleReadable(Connection& conn) {
  if (conn.peer_eof) {  // spurious HUP after EOF already observed
    MaybeFinishClose(conn);
    return;
  }
  while (true) {
    const size_t old_size = conn.read_buf.size();
    conn.read_buf.resize(old_size + kReadChunk);
    ssize_t n = ::recv(conn.fd, conn.read_buf.data() + old_size, kReadChunk,
                       0);
    if (n > 0) {
      conn.read_buf.resize(old_size + static_cast<size_t>(n));
      stats_.bytes_received->Add(static_cast<uint64_t>(n));
      conn.last_activity = std::chrono::steady_clock::now();
      if (static_cast<size_t>(n) < kReadChunk) break;  // drained
      continue;
    }
    conn.read_buf.resize(old_size);
    if (n == 0) {
      // Peer EOF (close or shutdown(SHUT_WR)): stop reading, finish
      // processing what is buffered, flush responses, then close.
      conn.peer_eof = true;
      UpdateEpoll(conn, /*want_read=*/false);
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn.fd);  // ECONNRESET and friends
    return;
  }
  if (!DrainReadBuffer(conn)) return;  // connection closed
  MaybeFinishClose(conn);
}

bool TcpFrontEnd::DrainReadBuffer(Connection& conn) {
  using protocol::kEnvelopeHeaderSize;
  while (!conn.paused) {
    const size_t available = conn.read_buf.size() - conn.read_pos;
    if (available < kEnvelopeHeaderSize) break;
    const uint8_t* head = conn.read_buf.data() + conn.read_pos;
    // Framing needs only the magic and the length; full validation is
    // the service's job (a malformed-but-framed message is counted and
    // skipped, the stream stays in sync).
    if (head[0] != protocol::kEnvelopeMagic0 ||
        head[1] != protocol::kEnvelopeMagic1) {
      stats_.protocol_errors->Increment();
      CloseConnection(conn.fd);
      return false;
    }
    const uint32_t payload_len =
        static_cast<uint32_t>(head[4]) | (static_cast<uint32_t>(head[5]) << 8) |
        (static_cast<uint32_t>(head[6]) << 16) |
        (static_cast<uint32_t>(head[7]) << 24);
    const uint64_t total =
        static_cast<uint64_t>(kEnvelopeHeaderSize) + payload_len;
    if (total > config_.max_message_bytes) {
      stats_.protocol_errors->Increment();
      CloseConnection(conn.fd);
      return false;
    }
    if (available < total) break;  // wait for the rest of the message
    std::vector<uint8_t> message(head, head + total);
    conn.read_pos += static_cast<size_t>(total);
    if (!RouteMessage(conn, std::move(message))) break;  // paused
  }
  // Compact once the consumed prefix dominates the buffer.
  if (conn.read_pos > kReadChunk &&
      conn.read_pos * 2 > conn.read_buf.size()) {
    conn.read_buf.erase(conn.read_buf.begin(),
                        conn.read_buf.begin() +
                            static_cast<ptrdiff_t>(conn.read_pos));
    conn.read_pos = 0;
  }
  if (conn.peer_eof && !conn.paused &&
      conn.read_buf.size() != conn.read_pos) {
    // Trailing bytes that can never complete a message: the peer hung
    // up mid-frame.
    stats_.protocol_errors->Increment();
    CloseConnection(conn.fd);
    return false;
  }
  return true;
}

bool TcpFrontEnd::RouteMessage(Connection& conn,
                               std::vector<uint8_t>&& message) {
  std::vector<uint8_t> response;
  uint64_t blocked_server = 0;
  service::AggregatorService::AdmitResult result =
      service_.TryHandleMessage(message, &response, &blocked_server);
  if (result == service::AggregatorService::AdmitResult::kWouldBlock) {
    // Backpressure: park the message, stop reading this connection, let
    // the kernel socket buffer (and the client's send window) absorb
    // the pressure until the server's strand drains.
    conn.pending_message = std::move(message);
    conn.paused = true;
    conn.paused_server = blocked_server;
    stats_.read_pauses->Increment();
    UpdateEpoll(conn, /*want_read=*/false);
    return false;
  }
  stats_.messages_routed->Increment();
  if (!response.empty()) QueueResponse(conn, std::move(response));
  return true;
}

void TcpFrontEnd::ResumePaused(uint64_t server_id) {
  // Snapshot first: routing can close or re-pause connections, and both
  // mutate the table we are walking.
  std::vector<int> candidates;
  candidates.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) {
    if (conn->paused && conn->paused_server == server_id) {
      candidates.push_back(fd);
    }
  }
  for (int fd : candidates) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Connection& conn = *it->second;
    if (!conn.paused || conn.paused_server != server_id) continue;
    std::vector<uint8_t> message = std::move(conn.pending_message);
    conn.pending_message.clear();
    conn.paused = false;
    if (!RouteMessage(conn, std::move(message))) continue;  // paused again
    stats_.read_resumes->Increment();
    conn.last_activity = std::chrono::steady_clock::now();
    UpdateEpoll(conn, /*want_read=*/!conn.peer_eof);
    if (!DrainReadBuffer(conn)) continue;  // closed
    MaybeFinishClose(conn);
  }
}

void TcpFrontEnd::QueueResponse(Connection& conn,
                                std::vector<uint8_t> response) {
  conn.write_queue.push_back(std::move(response));
  stats_.responses_sent->Increment();
  FlushWrites(conn);
}

void TcpFrontEnd::FlushWrites(Connection& conn) {
  while (!conn.write_queue.empty()) {
    const std::vector<uint8_t>& front = conn.write_queue.front();
    while (conn.write_pos < front.size()) {
      ssize_t n = ::send(conn.fd, front.data() + conn.write_pos,
                         front.size() - conn.write_pos, MSG_NOSIGNAL);
      if (n > 0) {
        conn.write_pos += static_cast<size_t>(n);
        stats_.bytes_sent->Add(static_cast<uint64_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!conn.want_write) {
          conn.want_write = true;
          UpdateEpoll(conn, /*want_read=*/!conn.paused && !conn.peer_eof);
        }
        return;
      }
      CloseConnection(conn.fd);  // EPIPE/ECONNRESET: peer is gone
      return;
    }
    conn.write_queue.pop_front();
    conn.write_pos = 0;
  }
  if (conn.want_write) {
    conn.want_write = false;
    UpdateEpoll(conn, /*want_read=*/!conn.paused && !conn.peer_eof);
  }
}

void TcpFrontEnd::HandleWritable(Connection& conn) {
  FlushWrites(conn);
  auto it = conns_.find(conn.fd);
  if (it == conns_.end()) return;  // FlushWrites closed it
  MaybeFinishClose(conn);
}

void TcpFrontEnd::UpdateEpoll(Connection& conn, bool want_read) {
  const uint32_t mask =
      (want_read ? EPOLLIN : 0u) | (conn.want_write ? EPOLLOUT : 0u);
  if (mask == 0 && conn.peer_eof) {
    if (conn.in_epoll) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
      conn.in_epoll = false;
    }
    return;
  }
  epoll_event ev{};
  ev.events = mask;
  ev.data.fd = conn.fd;
  if (conn.in_epoll) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  } else if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn.fd, &ev) == 0) {
    conn.in_epoll = true;
  }
}

void TcpFrontEnd::CloseConnection(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (it->second->in_epoll) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
  ::close(fd);
  conns_.erase(it);
  stats_.connections_closed->Increment();
}

void TcpFrontEnd::MaybeFinishClose(Connection& conn) {
  if (conn.peer_eof && !conn.paused &&
      conn.read_buf.size() == conn.read_pos && conn.write_queue.empty()) {
    CloseConnection(conn.fd);
  }
}

void TcpFrontEnd::SweepIdle() {
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::milliseconds(config_.idle_timeout_ms);
  std::vector<int> idle;
  for (const auto& [fd, conn] : conns_) {
    // A paused connection is waiting on the service, not the client;
    // its clock restarts when it resumes.
    if (!conn->paused && now - conn->last_activity > limit) {
      idle.push_back(fd);
    }
  }
  for (int fd : idle) {
    stats_.idle_closes->Increment();
    CloseConnection(fd);
  }
}

}  // namespace ldp::net
