// Minimal blocking TCP client for the aggregator wire protocol.
//
// The counterpart of net::TcpFrontEnd for tests, the load generator and
// examples: connect, send complete framed v2 messages, receive complete
// framed messages (the client reads the same 8-byte envelope header the
// server frames by, then exactly the declared payload). Everything
// blocks; one connection per object; not thread-safe. A deployment
// client wanting async IO would wrap its own sockets — the wire format
// is the contract, not this class.

#ifndef LDPRANGE_NET_TCP_CLIENT_H_
#define LDPRANGE_NET_TCP_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ldp::net {

class TcpClient {
 public:
  TcpClient() = default;
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;
  TcpClient(TcpClient&& other) noexcept;
  TcpClient& operator=(TcpClient&& other) noexcept;

  /// Connects to host:port (IPv4 dotted quad). False with errno intact
  /// on failure.
  bool Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }

  /// Writes one complete framed message (retrying partial writes).
  bool Send(std::span<const uint8_t> message);

  /// Reads exactly one framed message into *message: the 8-byte
  /// envelope header, then the declared payload. False on EOF, a read
  /// error, or bytes that do not start with the envelope magic.
  bool ReceiveMessage(std::vector<uint8_t>* message);

  /// Send + ReceiveMessage for request/response messages (queries).
  /// Empty vector on any failure.
  std::vector<uint8_t> Call(std::span<const uint8_t> request);

  /// Half-close: no more sends, but responses can still be read — the
  /// graceful-shutdown handshake the front-end honors.
  void ShutdownWrite();

  void Close();

 private:
  bool ReadExact(uint8_t* out, size_t n);

  int fd_ = -1;
};

}  // namespace ldp::net

#endif  // LDPRANGE_NET_TCP_CLIENT_H_
