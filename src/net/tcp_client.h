// Minimal blocking TCP client for the aggregator wire protocol.
//
// The counterpart of net::TcpFrontEnd for tests, the load generator and
// examples: connect, send complete framed v2 messages, receive complete
// framed messages (the client reads the same 8-byte envelope header the
// server frames by, then exactly the declared payload). Everything
// blocks; one connection per object; not thread-safe. A deployment
// client wanting async IO would wrap its own sockets — the wire format
// is the contract, not this class.

#ifndef LDPRANGE_NET_TCP_CLIENT_H_
#define LDPRANGE_NET_TCP_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ldp::net {

/// Why the last ReceiveMessage (or the receive half of Call) ended the
/// way it did — the typed error surface for callers that must tell a
/// dead peer from a slow one (snapshot_push.h retries on neither).
enum class RecvStatus : uint8_t {
  kOk = 0,
  kClosed,    // peer closed (EOF) before/inside the message
  kTimeout,   // receive deadline elapsed (set_receive_timeout_ms)
  kBadFrame,  // bytes did not start with the envelope magic
  kError,     // socket error, or no connection
};

/// Stable identifier for logs and tests ("ok", "timeout", ...).
std::string RecvStatusName(RecvStatus status);

class TcpClient {
 public:
  TcpClient() = default;
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;
  TcpClient(TcpClient&& other) noexcept;
  TcpClient& operator=(TcpClient&& other) noexcept;

  /// Connects to host:port (IPv4 dotted quad). False with errno intact
  /// on failure.
  bool Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }

  /// Writes one complete framed message (retrying partial writes).
  bool Send(std::span<const uint8_t> message);

  /// Deadline for receiving one complete framed message, in
  /// milliseconds; 0 (the default) blocks indefinitely. The deadline is
  /// absolute across the whole message — header and payload — so a peer
  /// trickling one byte per poll interval cannot stretch it.
  void set_receive_timeout_ms(int timeout_ms) {
    receive_timeout_ms_ = timeout_ms;
  }
  int receive_timeout_ms() const { return receive_timeout_ms_; }

  /// Typed outcome of the most recent ReceiveMessage (also set by the
  /// receive half of Call). kTimeout is the one callers retry on a
  /// slow-but-alive server; kClosed/kError mean reconnect.
  RecvStatus last_receive_status() const { return last_receive_status_; }

  /// Reads exactly one framed message into *message: the 8-byte
  /// envelope header, then the declared payload. False on EOF, a read
  /// error, an elapsed receive deadline, or bytes that do not start
  /// with the envelope magic — last_receive_status() says which.
  bool ReceiveMessage(std::vector<uint8_t>* message);

  /// Send + ReceiveMessage for request/response messages (queries).
  /// Empty vector on any failure (last_receive_status() distinguishes
  /// receive-side causes).
  std::vector<uint8_t> Call(std::span<const uint8_t> request);

  /// Half-close: no more sends, but responses can still be read — the
  /// graceful-shutdown handshake the front-end honors.
  void ShutdownWrite();

  void Close();

 private:
  /// Reads exactly n bytes; `deadline` (nullable) is the absolute
  /// steady-clock instant after which the read times out.
  RecvStatus ReadExact(uint8_t* out, size_t n,
                       const std::chrono::steady_clock::time_point* deadline);

  int fd_ = -1;
  int receive_timeout_ms_ = 0;
  RecvStatus last_receive_status_ = RecvStatus::kOk;
};

}  // namespace ldp::net

#endif  // LDPRANGE_NET_TCP_CLIENT_H_
