#include "obs/stats_wire.h"

#include <algorithm>
#include <utility>

#include "protocol/wire.h"

namespace ldp::obs {

using protocol::AppendU64;
using protocol::AppendU8;
using protocol::AppendVarU64;
using protocol::DecodeEnvelope;
using protocol::EncodeEnvelope;
using protocol::Envelope;
using protocol::MechanismTag;
using protocol::WireReader;

namespace {

// Decodes the envelope and checks the expected tag; kBadPayload on a tag
// mismatch (the bytes are a valid message of some other kind).
ParseError OpenEnvelope(std::span<const uint8_t> bytes, MechanismTag expected,
                        Envelope* env) {
  ParseError err = DecodeEnvelope(bytes, env);
  if (err != ParseError::kOk) return err;
  if (env->mechanism != expected) return ParseError::kBadPayload;
  return ParseError::kOk;
}

// ZigZag so small-magnitude negative gauge values stay short varints.
uint64_t EncodeZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
int64_t DecodeZigZag(uint64_t u) {
  return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

void AppendName(std::vector<uint8_t>& out, const std::string& name) {
  AppendVarU64(out, name.size());
  out.insert(out.end(), name.begin(), name.end());
}

// Reads a name under the length cap. Enforces the strictly-increasing
// order (and implicitly non-empty, since "" < anything fails only when
// prev is set — so the empty name is rejected explicitly).
bool ReadName(WireReader& reader, std::string* name,
              const std::string& prev) {
  uint64_t len = 0;
  if (!reader.ReadVarU64(&len)) return false;
  if (len == 0 || len > kMaxStatsNameLength) return false;
  std::span<const uint8_t> bytes;
  if (!reader.ReadBytes(static_cast<size_t>(len), &bytes)) return false;
  name->assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return *name > prev;
}

// Serializes one histogram body in canonical form. A snapshot taken
// while writers were mid-record can have min/max/sum slightly out of
// step with the buckets (the documented torn-read protocol), so the
// extremes are clamped into the occupied bucket range first — otherwise
// the serializer could emit bytes its own parser rejects. For a
// quiesced snapshot the normalization is the identity.
void AppendHistogram(std::vector<uint8_t>& out, HistogramSnapshot h) {
  size_t occupied = 0;
  size_t lowest = kHistogramBuckets;
  size_t highest = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    ++occupied;
    if (lowest == kHistogramBuckets) lowest = b;
    highest = b;
  }
  if (occupied == 0) {
    h.sum = h.min = h.max = 0;
  } else {
    uint64_t lo = 0, hi = 0;
    HistogramBucketBounds(lowest, &lo, &hi);
    h.min = std::clamp(h.min, lo, hi);
    HistogramBucketBounds(highest, &lo, &hi);
    h.max = std::clamp(h.max, lo, hi);
    if (h.min > h.max) h.min = h.max;
    if (h.sum < h.max) h.sum = h.max;
  }
  AppendVarU64(out, h.sum);
  AppendVarU64(out, h.min);
  AppendVarU64(out, h.max);
  AppendVarU64(out, occupied);
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    AppendU8(out, static_cast<uint8_t>(b));
    AppendVarU64(out, h.buckets[b]);
  }
}

// Parses one histogram body and rebuilds its derived count. The min/max
// fields must land in the lowest/highest occupied bucket and sum must be
// at least max — the cheap canonical-form checks that keep a forged
// snapshot from carrying impossible extremes into quantile math.
bool ReadHistogram(WireReader& reader, HistogramSnapshot* h) {
  *h = HistogramSnapshot{};
  uint64_t bucket_count = 0;
  if (!reader.ReadVarU64(&h->sum) || !reader.ReadVarU64(&h->min) ||
      !reader.ReadVarU64(&h->max) || !reader.ReadVarU64(&bucket_count)) {
    return false;
  }
  if (bucket_count > kHistogramBuckets) return false;
  int prev_index = -1;
  for (uint64_t i = 0; i < bucket_count; ++i) {
    uint8_t index = 0;
    uint64_t count = 0;
    if (!reader.ReadU8(&index) || !reader.ReadVarU64(&count)) return false;
    if (index >= kHistogramBuckets || static_cast<int>(index) <= prev_index ||
        count == 0) {
      return false;
    }
    prev_index = index;
    h->buckets[index] = count;
    // A sum of per-bucket counts that wraps uint64 is unrepresentable by
    // any real histogram; reject rather than wrap.
    if (h->count + count < h->count) return false;
    h->count += count;
  }
  if (h->count == 0) {
    return h->sum == 0 && h->min == 0 && h->max == 0;
  }
  if (h->min > h->max || h->sum < h->max) return false;
  size_t lowest = 0;
  while (h->buckets[lowest] == 0) ++lowest;
  if (HistogramBucketIndex(h->min) != lowest) return false;
  if (HistogramBucketIndex(h->max) != static_cast<size_t>(prev_index)) {
    return false;
  }
  return true;
}

}  // namespace

std::string StatsStatusName(StatsStatus status) {
  switch (status) {
    case StatsStatus::kOk: return "ok";
    case StatsStatus::kMalformedRequest: return "malformed_request";
  }
  return "?";
}

std::vector<uint8_t> SerializeStatsQuery(const StatsQuery& msg) {
  std::vector<uint8_t> payload;
  payload.reserve(9);
  AppendU64(payload, msg.query_id);
  AppendU8(payload, msg.flags);
  return EncodeEnvelope(MechanismTag::kStatsQuery, payload);
}

std::vector<uint8_t> SerializeStatsResponse(const StatsResponse& msg) {
  std::vector<uint8_t> payload;
  payload.reserve(64 + msg.metrics.counters.size() * 24 +
                  msg.metrics.gauges.size() * 24 +
                  msg.metrics.histograms.size() * 96);
  AppendU64(payload, msg.query_id);
  AppendU8(payload, static_cast<uint8_t>(msg.status));
  AppendU8(payload, msg.format_version);
  AppendVarU64(payload, msg.metrics.counters.size());
  for (const CounterValue& c : msg.metrics.counters) {
    AppendName(payload, c.name);
    AppendVarU64(payload, c.value);
  }
  AppendVarU64(payload, msg.metrics.gauges.size());
  for (const GaugeValue& g : msg.metrics.gauges) {
    AppendName(payload, g.name);
    AppendVarU64(payload, EncodeZigZag(g.value));
  }
  AppendVarU64(payload, msg.metrics.histograms.size());
  for (const HistogramValue& h : msg.metrics.histograms) {
    AppendName(payload, h.name);
    AppendHistogram(payload, h.histogram);
  }
  return EncodeEnvelope(MechanismTag::kStatsResponse, payload);
}

ParseError ParseStatsQuery(std::span<const uint8_t> bytes, StatsQuery* out) {
  Envelope env;
  ParseError err = OpenEnvelope(bytes, MechanismTag::kStatsQuery, &env);
  if (err != ParseError::kOk) return err;
  WireReader reader(env.payload);
  StatsQuery msg;
  if (!reader.ReadU64(&msg.query_id) || !reader.ReadU8(&msg.flags) ||
      !reader.AtEnd()) {
    return ParseError::kBadPayload;
  }
  *out = msg;
  return ParseError::kOk;
}

ParseError ParseStatsResponse(std::span<const uint8_t> bytes,
                              StatsResponse* out) {
  Envelope env;
  ParseError err = OpenEnvelope(bytes, MechanismTag::kStatsResponse, &env);
  if (err != ParseError::kOk) return err;
  WireReader reader(env.payload);
  StatsResponse msg;
  uint8_t raw_status = 0;
  if (!reader.ReadU64(&msg.query_id) || !reader.ReadU8(&raw_status) ||
      !reader.ReadU8(&msg.format_version)) {
    return ParseError::kBadPayload;
  }
  if (raw_status > static_cast<uint8_t>(StatsStatus::kMalformedRequest)) {
    return ParseError::kBadPayload;
  }
  msg.status = static_cast<StatsStatus>(raw_status);
  if (msg.format_version != kStatsFormatVersion) {
    return ParseError::kBadPayload;
  }

  uint64_t count = 0;
  std::string prev;
  // Counters: at least 3 bytes each (1-byte name length, 1 name byte,
  // 1-byte value varint) bounds the count by bytes actually present
  // before any allocation is sized by it. Same reasoning below.
  if (!reader.ReadVarU64(&count) || count > kMaxStatsEntries ||
      count > reader.Remaining() / 3) {
    return ParseError::kBadPayload;
  }
  msg.metrics.counters.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CounterValue c;
    if (!ReadName(reader, &c.name, prev) || !reader.ReadVarU64(&c.value)) {
      return ParseError::kBadPayload;
    }
    prev = c.name;
    msg.metrics.counters.push_back(std::move(c));
  }

  prev.clear();
  if (!reader.ReadVarU64(&count) || count > kMaxStatsEntries ||
      count > reader.Remaining() / 3) {
    return ParseError::kBadPayload;
  }
  msg.metrics.gauges.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    GaugeValue g;
    uint64_t zigzag = 0;
    if (!ReadName(reader, &g.name, prev) || !reader.ReadVarU64(&zigzag)) {
      return ParseError::kBadPayload;
    }
    g.value = DecodeZigZag(zigzag);
    prev = g.name;
    msg.metrics.gauges.push_back(std::move(g));
  }

  prev.clear();
  // Histograms: name (2) + sum/min/max varints (3) + bucket count (1).
  if (!reader.ReadVarU64(&count) || count > kMaxStatsEntries ||
      count > reader.Remaining() / 6) {
    return ParseError::kBadPayload;
  }
  msg.metrics.histograms.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    HistogramValue h;
    if (!ReadName(reader, &h.name, prev) ||
        !ReadHistogram(reader, &h.histogram)) {
      return ParseError::kBadPayload;
    }
    prev = h.name;
    msg.metrics.histograms.push_back(std::move(h));
  }

  if (!reader.AtEnd()) return ParseError::kBadPayload;
  *out = std::move(msg);
  return ParseError::kOk;
}

}  // namespace ldp::obs
