// Span capture for offline timeline inspection, exported as Chrome trace
// format JSON (load into chrome://tracing or https://ui.perfetto.dev).
//
// Capture is globally off by default and costs one relaxed atomic load
// per ScopedTimer when off. When on, each thread appends complete spans
// ("ph":"X") to its own preallocated buffer — no locks and no allocation
// on the record path once a thread's buffer exists (the first event a
// thread records allocates its buffer under a registration mutex; every
// later event is a bounds check plus three stores). A full buffer drops
// new events and counts the drops rather than resizing, keeping the hot
// path allocation-free under sustained load.
//
// Span names must have static storage duration (string literals): the
// buffer stores the pointer. This is what lets a span record in ~20ns
// instead of copying a string.

#ifndef LDPRANGE_OBS_TRACE_H_
#define LDPRANGE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace ldp::obs {

/// One captured span: [start_ns, start_ns + duration_ns) on the
/// recording thread. `name` borrows static storage.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
};

/// Maximum spans retained per thread; later spans are dropped (and
/// counted) once a thread's buffer fills.
inline constexpr size_t kTraceEventsPerThread = 65536;

namespace internal {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace internal

/// True while capture is on — the guard ScopedTimer reads before paying
/// for clock reads on trace-only spans.
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Starts capture. Spans recorded before StartTracing are not retained;
/// buffers from a previous capture are kept (call ClearTrace for a fresh
/// timeline).
void StartTracing();

/// Stops capture. Already-recorded spans stay readable until ClearTrace.
void StopTracing();

/// Discards all captured spans and drop counts (buffers stay allocated
/// for reuse).
void ClearTrace();

/// Appends one complete span to the calling thread's buffer. No-op when
/// tracing is off. `name` must have static storage duration.
void RecordTraceEvent(const char* name, uint64_t start_ns,
                      uint64_t duration_ns);

/// Total spans currently captured across all threads; spans dropped to
/// full buffers. Exact once recording threads quiesce.
size_t CapturedTraceEventCount();
uint64_t DroppedTraceEventCount();

/// Renders every captured span as Chrome trace format JSON — an object
/// with a "traceEvents" array of "ph":"X" complete events (ts/dur in
/// microseconds with nanosecond fractions, one tid per recording
/// thread, stable tid numbering by registration order).
std::string ChromeTraceJson();

/// ChromeTraceJson() straight to a file. False (with the trace intact)
/// when the file cannot be written.
bool WriteChromeTraceJson(const std::string& path);

}  // namespace ldp::obs

#endif  // LDPRANGE_OBS_TRACE_H_
