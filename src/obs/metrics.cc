#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace ldp::obs {

size_t HistogramBucketIndex(uint64_t value) {
  // bit_width(0) == 0 keeps the zero bucket separate; bit_width(2^63..)
  // == 64 clamps into the last bucket, whose range check below treats it
  // as [2^62, 2^64) — every uint64_t has exactly one home.
  return std::min<size_t>(std::bit_width(value), kHistogramBuckets - 1);
}

void HistogramBucketBounds(size_t index, uint64_t* lo, uint64_t* hi) {
  if (index == 0) {
    *lo = 0;
    *hi = 0;
    return;
  }
  *lo = uint64_t{1} << (index - 1);
  *hi = index == kHistogramBuckets - 1 ? UINT64_MAX
                                       : (uint64_t{1} << index) - 1;
}

void HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  min = count == 0 ? other.min : std::min(min, other.min);
  max = count == 0 ? other.max : std::max(max, other.max);
  count += other.count;
  sum += other.sum;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    buckets[b] += other.buckets[b];
  }
}

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank (1-based): the smallest recorded value whose cumulative
  // count reaches ceil(q * count); rank 0 means the minimum.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (cumulative + buckets[b] >= rank) {
      uint64_t lo = 0;
      uint64_t hi = 0;
      HistogramBucketBounds(b, &lo, &hi);
      // Clamp to the exact observed extremes so q=0 / q=1 are exact and
      // no derived quantile escapes the recorded range.
      lo = std::max(lo, min);
      hi = std::min(hi, max);
      if (lo >= hi) return lo;
      // Log-linear interpolation across the bucket: the within-bucket
      // rank fraction picks a point on the geometric ramp lo -> hi,
      // matching the buckets' own logarithmic spacing.
      double fraction =
          static_cast<double>(rank - cumulative) / static_cast<double>(buckets[b]);
      double value = static_cast<double>(lo) *
                     std::pow(static_cast<double>(hi) / static_cast<double>(lo),
                              fraction);
      return static_cast<uint64_t>(
          std::clamp(value, static_cast<double>(lo), static_cast<double>(hi)));
    }
    cumulative += buckets[b];
  }
  return max;
}

void LatencyHistogram::Record(uint64_t value) {
  buckets_[HistogramBucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::MergeFrom(const HistogramSnapshot& snapshot) {
  if (snapshot.count == 0) return;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    if (snapshot.buckets[b] != 0) {
      buckets_[b].fetch_add(snapshot.buckets[b], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(snapshot.count, std::memory_order_relaxed);
  sum_.fetch_add(snapshot.sum, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (snapshot.min < seen &&
         !min_.compare_exchange_weak(seen, snapshot.min,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (snapshot.max > seen &&
         !max_.compare_exchange_weak(seen, snapshot.max,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snapshot;
  // Buckets first, totals after: with concurrent writers the totals may
  // briefly run ahead of the buckets, never behind by more than the
  // in-flight records. Exact once writers quiesce — the read protocol.
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    snapshot.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  snapshot.count = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    snapshot.count += snapshot.buckets[b];
  }
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  uint64_t min = min_.load(std::memory_order_relaxed);
  snapshot.min = min == UINT64_MAX ? 0 : min;
  snapshot.max = max_.load(std::memory_order_relaxed);
  return snapshot;
}

namespace {

// Merge two sorted-by-name vectors, combining same-name entries.
template <typename V, typename Combine>
void MergeByName(std::vector<V>& into, const std::vector<V>& from,
                 Combine&& combine) {
  for (const V& entry : from) {
    auto it = std::lower_bound(
        into.begin(), into.end(), entry,
        [](const V& a, const V& b) { return a.name < b.name; });
    if (it != into.end() && it->name == entry.name) {
      combine(*it, entry);
    } else {
      into.insert(it, entry);
    }
  }
}

}  // namespace

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  MergeByName(counters, other.counters,
              [](CounterValue& a, const CounterValue& b) { a.value += b.value; });
  MergeByName(gauges, other.gauges,
              [](GaugeValue& a, const GaugeValue& b) { a.value += b.value; });
  MergeByName(histograms, other.histograms,
              [](HistogramValue& a, const HistogramValue& b) {
                a.histogram.MergeFrom(b.histogram);
              });
}

const CounterValue* MetricsSnapshot::FindCounter(std::string_view name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeValue* MetricsSnapshot::FindGauge(std::string_view name) const {
  for (const GaugeValue& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramValue* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::CounterOr(std::string_view name,
                                    uint64_t fallback) const {
  const CounterValue* c = FindCounter(name);
  return c == nullptr ? fallback : c->value;
}

namespace {

std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

void AppendF(std::string& out, const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

void AppendF(std::string& out, const char* fmt, ...) {
  char buffer[256];
  std::va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (n > 0) out.append(buffer, std::min<size_t>(static_cast<size_t>(n), sizeof(buffer) - 1));
}

}  // namespace

std::string RenderPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const CounterValue& c : snapshot.counters) {
    const std::string name = PrometheusName(c.name);
    AppendF(out, "# TYPE %s counter\n", name.c_str());
    AppendF(out, "%s %llu\n", name.c_str(),
            static_cast<unsigned long long>(c.value));
  }
  for (const GaugeValue& g : snapshot.gauges) {
    const std::string name = PrometheusName(g.name);
    AppendF(out, "# TYPE %s gauge\n", name.c_str());
    AppendF(out, "%s %lld\n", name.c_str(), static_cast<long long>(g.value));
  }
  for (const HistogramValue& h : snapshot.histograms) {
    const std::string name = PrometheusName(h.name);
    AppendF(out, "# TYPE %s histogram\n", name.c_str());
    uint64_t cumulative = 0;
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.histogram.buckets[b] == 0) continue;
      cumulative += h.histogram.buckets[b];
      uint64_t lo = 0;
      uint64_t hi = 0;
      HistogramBucketBounds(b, &lo, &hi);
      if (hi == UINT64_MAX) {
        AppendF(out, "%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
                static_cast<unsigned long long>(cumulative));
      } else {
        AppendF(out, "%s_bucket{le=\"%llu\"} %llu\n", name.c_str(),
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(cumulative));
      }
    }
    // Prometheus requires a terminal +Inf bucket equal to _count; the
    // loop only emitted one if the last (unbounded) bucket was occupied.
    if (h.histogram.buckets[kHistogramBuckets - 1] == 0) {
      AppendF(out, "%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
              static_cast<unsigned long long>(h.histogram.count));
    }
    AppendF(out, "%s_sum %llu\n", name.c_str(),
            static_cast<unsigned long long>(h.histogram.sum));
    AppendF(out, "%s_count %llu\n", name.c_str(),
            static_cast<unsigned long long>(h.histogram.count));
  }
  return out;
}

std::string RenderJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const CounterValue& c : snapshot.counters) {
    AppendF(out, "%s\n    \"%s\": %llu", first ? "" : ",", c.name.c_str(),
            static_cast<unsigned long long>(c.value));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const GaugeValue& g : snapshot.gauges) {
    AppendF(out, "%s\n    \"%s\": %lld", first ? "" : ",", g.name.c_str(),
            static_cast<long long>(g.value));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const HistogramValue& h : snapshot.histograms) {
    const HistogramSnapshot& s = h.histogram;
    AppendF(out,
            "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, \"min\": %llu, "
            "\"max\": %llu, \"mean\": %.1f, \"p50\": %llu, \"p95\": %llu, "
            "\"p99\": %llu, \"buckets\": {",
            first ? "" : ",", h.name.c_str(),
            static_cast<unsigned long long>(s.count),
            static_cast<unsigned long long>(s.sum),
            static_cast<unsigned long long>(s.min),
            static_cast<unsigned long long>(s.max), s.Mean(),
            static_cast<unsigned long long>(s.Quantile(0.50)),
            static_cast<unsigned long long>(s.Quantile(0.95)),
            static_cast<unsigned long long>(s.Quantile(0.99)));
    bool first_bucket = true;
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      if (s.buckets[b] == 0) continue;
      uint64_t lo = 0, hi = 0;
      HistogramBucketBounds(b, &lo, &hi);
      AppendF(out, "%s\"%llu\": %llu", first_bucket ? "" : ", ",
              static_cast<unsigned long long>(lo),
              static_cast<unsigned long long>(s.buckets[b]));
      first_bucket = false;
    }
    out += "}}";
    first = false;
  }
  out += first ? "}\n}" : "\n  }\n}";
  return out;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LatencyHistogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<LatencyHistogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back(CounterValue{name, counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back(GaugeValue{name, gauge->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back(HistogramValue{name, histogram->Snapshot()});
  }
  return snapshot;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: metrics recorded from static destructors or
  // detached threads must never touch a destroyed registry.
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

}  // namespace ldp::obs
