// Wire format of the stats plane — the scrape protocol that lets any
// client of the v2 wire pull a server's metrics as typed messages:
//
//   kStatsQuery     [query_id u64][flags u8]
//   kStatsResponse  [query_id u64][status u8][format_version u8]
//                     [counter_count varint][counter_count x
//                       (name varint-len + bytes, value varint)]
//                     [gauge_count varint][gauge_count x
//                       (name varint-len + bytes, value zigzag varint)]
//                     [histogram_count varint][histogram_count x
//                       (name varint-len + bytes, sum varint, min varint,
//                        max varint, bucket_count varint, bucket_count x
//                        (bucket_index u8, count varint))]
//
// Histograms ship sparse: only occupied buckets travel, in strictly
// increasing bucket-index order, and the total count is derived from the
// bucket counts on parse (it is redundant, so it is not serialized —
// there is exactly one encoding of a snapshot). Names within each
// section must be strictly increasing too; MetricsSnapshot keeps them
// sorted, so serialization is free and the parser gets a canonical-form
// check that also rejects duplicates.
//
// Parsers are total over adversarial bytes (protocol/envelope.h
// discipline) and cap what they will allocate for: names at
// kMaxStatsNameLength bytes, each section at kMaxStatsEntries entries —
// validated against the bytes actually present before any reserve.

#ifndef LDPRANGE_OBS_STATS_WIRE_H_
#define LDPRANGE_OBS_STATS_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "protocol/envelope.h"

namespace ldp::obs {

using protocol::ParseError;

/// Version of the kStatsResponse payload layout above. Bumped if the
/// layout ever changes shape; a parser only accepts versions it knows.
inline constexpr uint8_t kStatsFormatVersion = 1;

/// StatsQuery flag bit: also merge the process-global registry
/// (MetricsRegistry::Global() — core-layer stage metrics) into the
/// response, not just the service's own registry.
inline constexpr uint8_t kStatsFlagIncludeGlobal = 0x01;

/// Parse caps (see header comment). Generous against real snapshots —
/// the full service + per-server surface is well under 200 entries.
inline constexpr size_t kMaxStatsNameLength = 256;
inline constexpr size_t kMaxStatsEntries = 4096;

/// Asks the serving side for a metrics snapshot. Unknown flag bits are
/// ignored by the server (reserved for future format negotiation).
struct StatsQuery {
  uint64_t query_id = 0;
  uint8_t flags = 0;

  bool operator==(const StatsQuery&) const = default;
};

/// Typed outcome of a stats query. Values are wire format — never
/// renumber.
enum class StatsStatus : uint8_t {
  kOk = 0,
  kMalformedRequest = 1,  // request bytes did not parse
};

/// Stable identifier for logs and tests ("ok", "malformed_request").
std::string StatsStatusName(StatsStatus status);

/// Answer to a StatsQuery: the snapshot at response time. On any non-kOk
/// status `metrics` is empty.
struct StatsResponse {
  uint64_t query_id = 0;
  StatsStatus status = StatsStatus::kOk;
  uint8_t format_version = kStatsFormatVersion;
  MetricsSnapshot metrics;

  bool operator==(const StatsResponse&) const = default;
};

std::vector<uint8_t> SerializeStatsQuery(const StatsQuery& msg);
std::vector<uint8_t> SerializeStatsResponse(const StatsResponse& msg);

ParseError ParseStatsQuery(std::span<const uint8_t> bytes, StatsQuery* out);
ParseError ParseStatsResponse(std::span<const uint8_t> bytes,
                              StatsResponse* out);

}  // namespace ldp::obs

#endif  // LDPRANGE_OBS_STATS_WIRE_H_
