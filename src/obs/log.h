// Minimal leveled logger for operational messages.
//
// The library used to print its few diagnostics (SIMD tier selection,
// ignored environment overrides) straight to stderr with no way to
// silence or expand them. This logger is the one chokepoint those lines
// go through now: printf-style, leveled, and runtime-filtered by the
// LDP_LOG_LEVEL environment variable ("error" | "warn" | "info" |
// "debug" | "off", default "info"). It is deliberately tiny — no
// timestamps, no sinks, no formatting library — because the heavy
// observability surface is the metrics registry (obs/metrics.h), not
// prose on stderr.
//
// Thread-safe: each message is rendered into one buffer and written with
// a single fputs, so concurrent lines never interleave mid-line.

#ifndef LDPRANGE_OBS_LOG_H_
#define LDPRANGE_OBS_LOG_H_

#include <string_view>

namespace ldp::obs {

/// Severity levels, most severe first. kOff is only meaningful as a
/// filter level ("log nothing"), never as a message level.
enum class LogLevel : uint8_t { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kOff = 4 };

/// Stable lowercase name ("error", "warn", ...).
std::string_view LogLevelName(LogLevel level);

/// Parses a level name or bare digit ("0".."3"); false on anything else.
bool ParseLogLevel(std::string_view name, LogLevel* level);

/// The active filter level. Initialized from LDP_LOG_LEVEL on first use
/// (unparseable values keep the default kInfo); SetLogLevel overrides.
LogLevel CurrentLogLevel();

/// Programmatic override, e.g. from a test or a --log-level flag. Wins
/// over the environment from this call on.
void SetLogLevel(LogLevel level);

/// True when a message at `level` would be emitted — the guard for
/// callers that want to skip argument computation entirely.
bool LogEnabled(LogLevel level);

/// printf-style message to stderr, prefixed "ldp [level] ". A trailing
/// newline is appended; do not include one.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void Log(LogLevel level, const char* fmt, ...);

}  // namespace ldp::obs

/// Convenience macros: evaluate arguments only when the level is live.
#define LDP_LOG_ERROR(...) \
  do { if (::ldp::obs::LogEnabled(::ldp::obs::LogLevel::kError)) \
    ::ldp::obs::Log(::ldp::obs::LogLevel::kError, __VA_ARGS__); } while (0)
#define LDP_LOG_WARN(...) \
  do { if (::ldp::obs::LogEnabled(::ldp::obs::LogLevel::kWarn)) \
    ::ldp::obs::Log(::ldp::obs::LogLevel::kWarn, __VA_ARGS__); } while (0)
#define LDP_LOG_INFO(...) \
  do { if (::ldp::obs::LogEnabled(::ldp::obs::LogLevel::kInfo)) \
    ::ldp::obs::Log(::ldp::obs::LogLevel::kInfo, __VA_ARGS__); } while (0)
#define LDP_LOG_DEBUG(...) \
  do { if (::ldp::obs::LogEnabled(::ldp::obs::LogLevel::kDebug)) \
    ::ldp::obs::Log(::ldp::obs::LogLevel::kDebug, __VA_ARGS__); } while (0)

#endif  // LDPRANGE_OBS_LOG_H_
