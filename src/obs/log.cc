#include "obs/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ldp::obs {

namespace {

// The filter level, lazily initialized from LDP_LOG_LEVEL. Encoded +1 so
// 0 can mean "not initialized yet" without a separate flag; plain
// relaxed atomics — a torn init race at worst parses the env twice to
// the same value.
std::atomic<int> g_level{0};

int EncodeLevel(LogLevel level) { return static_cast<int>(level) + 1; }

LogLevel InitFromEnv() {
  LogLevel level = LogLevel::kInfo;
  const char* env = std::getenv("LDP_LOG_LEVEL");
  if (env != nullptr && env[0] != '\0') {
    LogLevel parsed;
    if (ParseLogLevel(env, &parsed)) {
      level = parsed;
    } else {
      std::fprintf(stderr, "ldp [warn] ignoring unknown LDP_LOG_LEVEL=%s\n",
                   env);
    }
  }
  int expected = 0;
  g_level.compare_exchange_strong(expected, EncodeLevel(level));
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed) - 1);
}

}  // namespace

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

bool ParseLogLevel(std::string_view name, LogLevel* level) {
  if (name == "error" || name == "0") *level = LogLevel::kError;
  else if (name == "warn" || name == "warning" || name == "1") *level = LogLevel::kWarn;
  else if (name == "info" || name == "2") *level = LogLevel::kInfo;
  else if (name == "debug" || name == "3") *level = LogLevel::kDebug;
  else if (name == "off" || name == "none" || name == "silent") *level = LogLevel::kOff;
  else return false;
  return true;
}

LogLevel CurrentLogLevel() {
  int encoded = g_level.load(std::memory_order_relaxed);
  if (encoded == 0) return InitFromEnv();
  return static_cast<LogLevel>(encoded - 1);
}

void SetLogLevel(LogLevel level) {
  g_level.store(EncodeLevel(level), std::memory_order_relaxed);
}

bool LogEnabled(LogLevel level) {
  LogLevel current = CurrentLogLevel();
  return current != LogLevel::kOff &&
         static_cast<int>(level) <= static_cast<int>(current);
}

void Log(LogLevel level, const char* fmt, ...) {
  if (!LogEnabled(level)) return;
  // One buffer, one fputs: concurrent messages never interleave mid-line.
  char buffer[1024];
  int prefix = std::snprintf(buffer, sizeof(buffer), "ldp [%.*s] ",
                             static_cast<int>(LogLevelName(level).size()),
                             LogLevelName(level).data());
  if (prefix < 0) return;
  size_t offset = static_cast<size_t>(prefix);
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer + offset, sizeof(buffer) - offset - 1, fmt, args);
  va_end(args);
  size_t len = 0;
  while (len < sizeof(buffer) - 1 && buffer[len] != '\0') ++len;
  buffer[len] = '\n';
  buffer[len + 1] = '\0';
  std::fputs(buffer, stderr);
}

}  // namespace ldp::obs
