// Process-wide metrics: lock-free counters, gauges and log2-bucketed
// latency histograms, collected into named registries and exported as
// mergeable snapshots.
//
// Design constraints, in order:
//
//   1. Recording must be cheap enough for the ingest hot path: every
//      mutation is a handful of relaxed atomic RMWs on a preallocated
//      metric object — no locks, no allocation, no branches on registry
//      state. A registry lock exists only on the metric-creation path
//      (GetCounter and friends), which callers hit once at wiring time.
//   2. Everything merges. HistogramSnapshot and MetricsSnapshot follow
//      the same CloneEmpty/MergeFrom discipline as the mechanism
//      aggregates: bucket-wise (and counter-wise) addition, associative
//      and commutative, so shard-local or node-local stats fan in to one
//      truth exactly like report aggregates do.
//   3. Quantiles are derived, never stored. A histogram keeps only its
//      64 fixed log2 buckets (bucket 0 holds value 0, bucket b >= 1
//      holds [2^(b-1), 2^b)); p50/p95/p99/max come out of the snapshot
//      by rank walk + log-linear interpolation, so merging histograms
//      merges their quantiles for free — the property fixed buckets buy
//      and td-digest style sketches give up.
//
// Snapshots render three ways: Prometheus text exposition,
// pretty-printed JSON, and the compact kStatsResponse wire form
// (obs/stats_wire.h) the aggregator service serves to remote scrapers.

#ifndef LDPRANGE_OBS_METRICS_H_
#define LDPRANGE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ldp::obs {

/// Monotonic event counter. All operations are relaxed atomics: counts
/// are exact once the writers quiesce (e.g. after Drain()), and torn
/// cross-counter reads are acceptable mid-flight — the documented read
/// protocol for every stats plane in this repo.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (queue depths, live connections). Signed so a
/// decrement racing ahead of its increment cannot underflow into 2^64.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Number of histogram buckets. Bucket 0 counts the value 0; bucket
/// b in [1, 63] counts values in [2^(b-1), 2^b); every uint64_t value
/// lands in exactly one bucket, so 64 covers the full range with no
/// overflow bucket.
inline constexpr size_t kHistogramBuckets = 64;

/// Bucket index for `value` (see kHistogramBuckets). Exposed for tests
/// and for the wire parser's range checks.
size_t HistogramBucketIndex(uint64_t value);

/// Inclusive value range [lo, hi] covered by bucket `index`.
void HistogramBucketBounds(size_t index, uint64_t* lo, uint64_t* hi);

/// A point-in-time copy of one histogram: plain integers, mergeable,
/// serializable. `count`/`sum` are totals over all recorded values;
/// `min`/`max` are exact recorded extremes (min is meaningless when
/// count == 0).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t buckets[kHistogramBuckets] = {};

  /// Bucket-wise (and min/max-wise) merge — associative, commutative,
  /// identity = default-constructed snapshot.
  void MergeFrom(const HistogramSnapshot& other);

  /// The q-quantile (q in [0, 1]) derived from the buckets: rank walk to
  /// the covering bucket, then log-linear interpolation inside it,
  /// clamped to the observed [min, max]. Exact for q=0 (min) and q=1
  /// (max); elsewhere within one bucket (a factor of 2) of the true
  /// order statistic. Returns 0 when count == 0.
  uint64_t Quantile(double q) const;

  /// Mean of all recorded values (0 when empty).
  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count); }

  bool operator==(const HistogramSnapshot&) const = default;
};

/// Lock-free log2-bucketed histogram, built for recording latencies in
/// nanoseconds (any uint64_t works). Record is 4 relaxed atomic ops; the
/// min/max CAS loops settle immediately outside of races.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(uint64_t value);

  /// Folds a snapshot back into the live histogram — the MergeFrom half
  /// of the shard/merge discipline for cross-thread or cross-node stats.
  void MergeFrom(const HistogramSnapshot& snapshot);

  HistogramSnapshot Snapshot() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> buckets_[kHistogramBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// One named counter/gauge/histogram value inside a snapshot.
struct CounterValue {
  std::string name;
  uint64_t value = 0;
  bool operator==(const CounterValue&) const = default;
};
struct GaugeValue {
  std::string name;
  int64_t value = 0;
  bool operator==(const GaugeValue&) const = default;
};
struct HistogramValue {
  std::string name;
  HistogramSnapshot histogram;
  bool operator==(const HistogramValue&) const = default;
};

/// A point-in-time copy of a whole registry (plus whatever synthesized
/// entries the producer appended), sorted by name within each kind.
/// Value type: copyable, mergeable, serializable.
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Merge by name: same-name counters add, gauges add, histograms
  /// bucket-merge; names unique to either side are kept. Sorted order is
  /// restored afterwards, so merging is deterministic.
  void MergeFrom(const MetricsSnapshot& other);

  /// Entry lookup by exact name; nullptr when absent.
  const CounterValue* FindCounter(std::string_view name) const;
  const GaugeValue* FindGauge(std::string_view name) const;
  const HistogramValue* FindHistogram(std::string_view name) const;

  /// Convenience: FindCounter()->value, or `fallback` when absent.
  uint64_t CounterOr(std::string_view name, uint64_t fallback = 0) const;

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Prometheus text exposition (counters as `# TYPE x counter`, gauges as
/// gauge, histograms as cumulative `_bucket{le="..."}` series plus
/// `_sum`/`_count`). Metric names are sanitized to [a-zA-Z0-9_:] on the
/// way out ('.' and '-' become '_').
std::string RenderPrometheusText(const MetricsSnapshot& snapshot);

/// Pretty JSON object: {"counters": {...}, "gauges": {...},
/// "histograms": {name: {count, sum, min, max, mean, p50, p95, p99,
/// buckets: {...nonzero...}}}}. Quantiles are derived at render time.
std::string RenderJson(const MetricsSnapshot& snapshot);

/// A named collection of metrics. Creation (GetCounter and friends) is
/// mutex-guarded and idempotent — the same name always returns the same
/// object, whose address is stable for the registry's lifetime; record
/// paths hold the returned reference and never touch the registry again.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  LatencyHistogram& GetHistogram(std::string_view name);

  /// Copies every metric into a value snapshot (sorted by name — the
  /// registry map is ordered, so renders and golden tests are stable).
  MetricsSnapshot Snapshot() const;

  /// The process-global registry: the default sink for core-layer
  /// instrumentation (OLH support scan, deferred grid decode) that has
  /// no service to hang its metrics on. Service registries merge it into
  /// their wire snapshots so remote scrapers see one stats truth.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
};

}  // namespace ldp::obs

#endif  // LDPRANGE_OBS_METRICS_H_
