// RAII latency timer feeding the metrics histograms and (optionally) the
// trace capture in obs/trace.h.
//
//   void AggregatorServer::Finalize() {
//     obs::ScopedTimer timer(&finalize_ns_, "server.finalize");
//     DoFinalize();
//   }
//
// The destructor records the elapsed steady-clock nanoseconds into the
// histogram and, when tracing is live, emits one complete-span trace
// event. Cost discipline: when the histogram pointer is null and tracing
// is disabled the constructor skips the clock read entirely, so an
// un-instrumented code path pays one predictable branch and nothing else.

#ifndef LDPRANGE_OBS_SCOPED_TIMER_H_
#define LDPRANGE_OBS_SCOPED_TIMER_H_

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ldp::obs {

/// Monotonic nanoseconds since an arbitrary epoch (steady clock — never
/// jumps with wall-time adjustments). The one timestamp source for every
/// latency measurement in this repo.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Times the enclosing scope. `histogram` may be null (trace-only span);
/// `span_name` must be a string with static storage duration — the trace
/// buffer keeps the pointer, not a copy (pass nullptr for histogram-only
/// timing). Neither moveable nor copyable: one scope, one measurement.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* histogram,
                       const char* span_name = nullptr)
      : histogram_(histogram), span_name_(span_name) {
    armed_ = histogram_ != nullptr ||
             (span_name_ != nullptr && TracingEnabled());
    if (armed_) start_ns_ = NowNanos();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (!armed_) return;
    uint64_t end_ns = NowNanos();
    uint64_t elapsed = end_ns - start_ns_;
    if (histogram_ != nullptr) histogram_->Record(elapsed);
    if (span_name_ != nullptr && TracingEnabled()) {
      RecordTraceEvent(span_name_, start_ns_, elapsed);
    }
  }

  /// Nanoseconds elapsed so far; 0 when the timer never armed.
  uint64_t ElapsedNanos() const {
    return armed_ ? NowNanos() - start_ns_ : 0;
  }

 private:
  LatencyHistogram* histogram_;
  const char* span_name_;
  uint64_t start_ns_ = 0;
  bool armed_ = false;
};

}  // namespace ldp::obs

#endif  // LDPRANGE_OBS_SCOPED_TIMER_H_
