#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace ldp::obs {

namespace internal {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace internal

namespace {

// Per-thread span buffer. Owned jointly by the thread (thread_local
// shared_ptr, releases on thread exit) and the global registry (keeps
// spans readable after the recording thread has exited). `used` is
// atomic only so the exporter can read a consistent prefix while the
// owner thread is still appending.
struct ThreadTraceBuffer {
  std::vector<TraceEvent> events;
  std::atomic<size_t> used{0};
  std::atomic<uint64_t> dropped{0};
};

std::mutex g_registry_mu;
// Registration order defines the exported tid — small and stable, unlike
// std::thread::id.
std::vector<std::shared_ptr<ThreadTraceBuffer>>& Registry() {
  static auto* registry =
      new std::vector<std::shared_ptr<ThreadTraceBuffer>>();
  return *registry;
}

ThreadTraceBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadTraceBuffer> local = [] {
    auto buffer = std::make_shared<ThreadTraceBuffer>();
    buffer->events.resize(kTraceEventsPerThread);
    std::lock_guard<std::mutex> lock(g_registry_mu);
    Registry().push_back(buffer);
    return buffer;
  }();
  return *local;
}

}  // namespace

void StartTracing() {
  internal::g_tracing_enabled.store(true, std::memory_order_relaxed);
}

void StopTracing() {
  internal::g_tracing_enabled.store(false, std::memory_order_relaxed);
}

void ClearTrace() {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  for (auto& buffer : Registry()) {
    buffer->used.store(0, std::memory_order_relaxed);
    buffer->dropped.store(0, std::memory_order_relaxed);
  }
}

void RecordTraceEvent(const char* name, uint64_t start_ns,
                      uint64_t duration_ns) {
  if (!TracingEnabled()) return;
  ThreadTraceBuffer& buffer = LocalBuffer();
  size_t slot = buffer.used.load(std::memory_order_relaxed);
  if (slot >= buffer.events.size()) {
    buffer.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.events[slot] = TraceEvent{name, start_ns, duration_ns};
  // Release-publish the slot after its fields are written, so the
  // exporter's acquire load never reads a half-filled event.
  buffer.used.store(slot + 1, std::memory_order_release);
}

size_t CapturedTraceEventCount() {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  size_t total = 0;
  for (const auto& buffer : Registry()) {
    total += buffer->used.load(std::memory_order_acquire);
  }
  return total;
}

uint64_t DroppedTraceEventCount() {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  uint64_t total = 0;
  for (const auto& buffer : Registry()) {
    total += buffer->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

namespace {

void AppendJsonEscaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

std::string ChromeTraceJson() {
  // Snapshot the shared_ptrs under the lock, then walk the buffers
  // without it — recording threads never block on the exporter.
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    buffers = Registry();
  }
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char line[256];
  for (size_t tid = 0; tid < buffers.size(); ++tid) {
    const ThreadTraceBuffer& buffer = *buffers[tid];
    size_t used = buffer.used.load(std::memory_order_acquire);
    for (size_t i = 0; i < used; ++i) {
      const TraceEvent& e = buffer.events[i];
      if (!first) out.push_back(',');
      first = false;
      out += "{\"name\":\"";
      AppendJsonEscaped(out, e.name);
      // Chrome trace ts/dur are microseconds; keep nanosecond precision
      // as a fraction.
      std::snprintf(line, sizeof(line),
                    "\",\"ph\":\"X\",\"pid\":1,\"tid\":%zu,"
                    "\"ts\":%" PRIu64 ".%03" PRIu64 ",\"dur\":%" PRIu64
                    ".%03" PRIu64 "}",
                    tid + 1, e.start_ns / 1000, e.start_ns % 1000,
                    e.duration_ns / 1000, e.duration_ns % 1000);
      out += line;
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool WriteChromeTraceJson(const std::string& path) {
  std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

}  // namespace ldp::obs
