#include "central/central_hierarchical.h"

#include "common/check.h"
#include "core/consistency.h"

namespace ldp {

CentralHierarchical::CentralHierarchical(uint64_t domain, double eps,
                                         uint64_t fanout, bool consistency)
    : eps_(eps), consistency_(consistency), shape_(domain, fanout) {
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
}

std::string CentralHierarchical::Name() const {
  return std::string("Central-HH") + (consistency_ ? "c" : "") +
         std::to_string(shape_.fanout());
}

double CentralHierarchical::NoiseScale() const {
  return static_cast<double>(shape_.height()) / eps_;
}

void CentralHierarchical::Fit(const std::vector<double>& true_counts,
                              Rng& rng) {
  LDP_CHECK_EQ(true_counts.size(), shape_.domain());
  const uint32_t h = shape_.height();
  const double scale = NoiseScale();
  levels_.assign(h + 1, {});
  // Exact leaf sums (zero-padded), then fold upward.
  std::vector<double> exact(shape_.padded_domain(), 0.0);
  for (uint64_t z = 0; z < true_counts.size(); ++z) {
    exact[z] = true_counts[z];
  }
  std::vector<std::vector<double>> exact_levels(h + 1);
  exact_levels[h] = exact;
  for (uint32_t l = h; l-- > 0;) {
    uint64_t nodes = shape_.NodesAtLevel(l);
    exact_levels[l].assign(nodes, 0.0);
    for (uint64_t k = 0; k < nodes; ++k) {
      for (uint64_t c = 0; c < shape_.fanout(); ++c) {
        exact_levels[l][k] += exact_levels[l + 1][k * shape_.fanout() + c];
      }
    }
  }
  // The root consumes no budget in the uniform split over levels 1..h;
  // give it the same per-level noise so it has a usable estimate for the
  // (unpinned) consistency step.
  for (uint32_t l = 0; l <= h; ++l) {
    levels_[l] = exact_levels[l];
    for (double& v : levels_[l]) {
      v += rng.Laplace(scale);
    }
  }
  if (consistency_) {
    EnforceHierarchicalConsistency(levels_, shape_.fanout(),
                                   /*root_pin=*/std::nullopt);
  }
  leaf_prefix_.assign(shape_.padded_domain() + 1, 0.0);
  for (uint64_t z = 0; z < shape_.padded_domain(); ++z) {
    leaf_prefix_[z + 1] = leaf_prefix_[z] + levels_[h][z];
  }
  fitted_ = true;
}

double CentralHierarchical::RangeQuery(uint64_t a, uint64_t b) const {
  LDP_CHECK_MSG(fitted_, "RangeQuery before Fit");
  LDP_CHECK_LE(a, b);
  LDP_CHECK_LT(b, shape_.domain());
  if (consistency_) {
    // Consistent trees answer identically however the range is assembled;
    // use the O(1) leaf prefix sums.
    return leaf_prefix_[b + 1] - leaf_prefix_[a];
  }
  double total = 0.0;
  for (const TreeNode& node : shape_.Decompose(a, b)) {
    total += levels_[node.level][node.index];
  }
  return total;
}

}  // namespace ldp
