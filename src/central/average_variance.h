// Average variance over all range queries for the centralized baselines —
// the quantity tabulated in Qardaji et al.'s Table 3, which the paper
// reprints as its Figure 7.
//
// Both centralized mechanisms add data-independent noise, so the expected
// squared error of a query is its analytic variance; for the
// consistency-processed hierarchy (where the closed form needs
// (H^T H)^{-1}) we estimate it by Monte Carlo on the zero dataset, which is
// exact in expectation.

#ifndef LDPRANGE_CENTRAL_AVERAGE_VARIANCE_H_
#define LDPRANGE_CENTRAL_AVERAGE_VARIANCE_H_

#include <cstdint>

#include "common/random.h"

namespace ldp {

/// Exact average variance of the centralized wavelet over all D(D+1)/2
/// range queries.
double CentralWaveletAverageVariance(uint64_t domain, double eps);

/// Exact average variance of the centralized hierarchy WITHOUT consistency:
/// each range costs |B-adic decomposition| * 2 * (h/eps)^2.
double CentralHierarchicalAverageVariance(uint64_t domain, double eps,
                                          uint64_t fanout);

/// Monte-Carlo average variance of the centralized hierarchy WITH
/// consistency, over `trials` independent noise draws (data-independent, so
/// the zero dataset suffices). Standard error shrinks as 1/sqrt(trials).
double CentralHierarchicalConsistentAverageVariance(uint64_t domain,
                                                    double eps,
                                                    uint64_t fanout,
                                                    uint64_t trials,
                                                    Rng& rng);

}  // namespace ldp

#endif  // LDPRANGE_CENTRAL_AVERAGE_VARIANCE_H_
