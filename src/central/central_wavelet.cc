#include "central/central_wavelet.h"

#include <cmath>

#include "common/bit_util.h"
#include "common/check.h"

namespace ldp {

CentralWavelet::CentralWavelet(uint64_t domain, double eps)
    : domain_(domain),
      padded_(NextPowerOfTwo(domain)),
      height_(Log2Floor(padded_)),
      eps_(eps) {
  LDP_CHECK_GE(domain, 2u);
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
}

double CentralWavelet::NoiseScale(uint32_t level) const {
  LDP_CHECK_GE(level, 1u);
  LDP_CHECK_LE(level, height_);
  double sensitivity = std::exp2(-0.5 * static_cast<double>(level));
  return sensitivity * static_cast<double>(height_ + 1) / eps_;
}

double CentralWavelet::AverageNoiseScale() const {
  double sensitivity = 1.0 / std::sqrt(static_cast<double>(padded_));
  return sensitivity * static_cast<double>(height_ + 1) / eps_;
}

void CentralWavelet::Fit(const std::vector<double>& true_counts, Rng& rng) {
  LDP_CHECK_EQ(true_counts.size(), domain_);
  std::vector<double> padded(padded_, 0.0);
  for (uint64_t z = 0; z < domain_; ++z) {
    padded[z] = true_counts[z];
  }
  noisy_ = HaarForward(padded);
  noisy_.average += rng.Laplace(AverageNoiseScale());
  for (uint32_t l = 1; l <= height_; ++l) {
    double scale = NoiseScale(l);
    for (double& c : noisy_.detail[l - 1]) {
      c += rng.Laplace(scale);
    }
  }
  fitted_ = true;
}

double CentralWavelet::RangeQuery(uint64_t a, uint64_t b) const {
  LDP_CHECK_MSG(fitted_, "RangeQuery before Fit");
  LDP_CHECK_LE(a, b);
  LDP_CHECK_LT(b, domain_);
  return HaarRangeEstimate(noisy_, padded_, a, b);
}

double CentralWavelet::RangeVariance(uint64_t a, uint64_t b) const {
  LDP_CHECK_LE(a, b);
  LDP_CHECK_LT(b, domain_);
  double r = static_cast<double>(b - a + 1);
  double w0 = r / std::sqrt(static_cast<double>(padded_));
  double s0 = AverageNoiseScale();
  double var = w0 * w0 * 2.0 * s0 * s0;  // Var[Laplace(s)] = 2 s^2
  for (uint32_t l = 1; l <= height_; ++l) {
    double s = NoiseScale(l);
    uint64_t ka = a >> l;
    uint64_t kb = b >> l;
    double wa = HaarRangeWeight(l, ka, a, b);
    var += wa * wa * 2.0 * s * s;
    if (kb != ka) {
      double wb = HaarRangeWeight(l, kb, a, b);
      var += wb * wb * 2.0 * s * s;
    }
  }
  return var;
}

}  // namespace ldp
