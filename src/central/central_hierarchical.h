// Centralized-DP hierarchical histogram baseline (Hay et al. VLDB 2010;
// Qardaji et al. VLDB 2013) — the comparator behind the paper's Figure 7.
//
// A trusted curator holds the exact counts, materializes every node of a
// complete B-ary tree, splits the privacy budget uniformly across the h
// levels below the root, and adds Laplace(h/eps) noise to each node count
// (add/remove-one-record neighboring: one user touches one node per level,
// so each level's L1 sensitivity is 1). Optional Hay-style constrained
// inference then produces the least-squares tree; unlike the local variant,
// the root is NOT pinned (the total count is itself private here).
//
// Note the centralized noise variance scales as 1/N^2 after normalizing
// counts to fractions, versus 1/N locally — the structural gap the paper
// highlights.

#ifndef LDPRANGE_CENTRAL_CENTRAL_HIERARCHICAL_H_
#define LDPRANGE_CENTRAL_CENTRAL_HIERARCHICAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/badic.h"

namespace ldp {

/// Centralized hierarchical histogram over raw counts.
class CentralHierarchical {
 public:
  /// `consistency` toggles Hay-style constrained inference.
  CentralHierarchical(uint64_t domain, double eps, uint64_t fanout,
                      bool consistency);

  const TreeShape& shape() const { return shape_; }
  std::string Name() const;

  /// Laplace scale used at every node: h / eps.
  double NoiseScale() const;

  /// Builds the noisy tree from exact counts (length = domain).
  void Fit(const std::vector<double>& true_counts, Rng& rng);

  /// Noisy count of records in [a, b] inclusive.
  double RangeQuery(uint64_t a, uint64_t b) const;

 private:
  double eps_;
  bool consistency_;
  TreeShape shape_;
  bool fitted_ = false;
  std::vector<std::vector<double>> levels_;
  // After consistency, parent == sum(children), so every range is a plain
  // sum of leaves; cache leaf prefix sums for O(1) queries in that case.
  std::vector<double> leaf_prefix_;
};

}  // namespace ldp

#endif  // LDPRANGE_CENTRAL_CENTRAL_HIERARCHICAL_H_
