#include "central/average_variance.h"

#include <vector>

#include "central/central_wavelet.h"
#include "common/check.h"
#include "core/badic.h"
#include "core/consistency.h"

namespace ldp {

double CentralWaveletAverageVariance(uint64_t domain, double eps) {
  CentralWavelet wavelet(domain, eps);
  double total = 0.0;
  uint64_t queries = 0;
  for (uint64_t a = 0; a < domain; ++a) {
    for (uint64_t b = a; b < domain; ++b) {
      total += wavelet.RangeVariance(a, b);
      ++queries;
    }
  }
  return total / static_cast<double>(queries);
}

double CentralHierarchicalAverageVariance(uint64_t domain, double eps,
                                          uint64_t fanout) {
  TreeShape shape(domain, fanout);
  double scale = static_cast<double>(shape.height()) / eps;
  double per_node = 2.0 * scale * scale;  // Var[Laplace(s)] = 2 s^2
  double total = 0.0;
  uint64_t queries = 0;
  for (uint64_t a = 0; a < domain; ++a) {
    for (uint64_t b = a; b < domain; ++b) {
      total += static_cast<double>(shape.Decompose(a, b).size()) * per_node;
      ++queries;
    }
  }
  return total / static_cast<double>(queries);
}

double CentralHierarchicalConsistentAverageVariance(uint64_t domain,
                                                    double eps,
                                                    uint64_t fanout,
                                                    uint64_t trials,
                                                    Rng& rng) {
  LDP_CHECK_GE(trials, 1u);
  TreeShape shape(domain, fanout);
  const uint32_t h = shape.height();
  const double scale = static_cast<double>(h) / eps;
  double total = 0.0;
  uint64_t queries = 0;
  for (uint64_t trial = 0; trial < trials; ++trial) {
    // Noise-only tree: the mechanism's error is additive and
    // data-independent, so the zero dataset gives the exact variance.
    std::vector<std::vector<double>> levels(h + 1);
    for (uint32_t l = 0; l <= h; ++l) {
      levels[l].resize(shape.NodesAtLevel(l));
      for (double& v : levels[l]) {
        v = rng.Laplace(scale);
      }
    }
    EnforceHierarchicalConsistency(levels, fanout, /*root_pin=*/std::nullopt);
    // Consistent trees answer ranges as plain leaf sums.
    std::vector<double> prefix(shape.padded_domain() + 1, 0.0);
    for (uint64_t z = 0; z < shape.padded_domain(); ++z) {
      prefix[z + 1] = prefix[z] + levels[h][z];
    }
    for (uint64_t a = 0; a < domain; ++a) {
      for (uint64_t b = a; b < domain; ++b) {
        double err = prefix[b + 1] - prefix[a];
        total += err * err;
        ++queries;
      }
    }
  }
  return total / static_cast<double>(queries);
}

}  // namespace ldp
