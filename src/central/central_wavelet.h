// Centralized-DP Haar wavelet baseline ("privelet"-style; Xiao, Wang &
// Gehrke, TKDE 2011) — the wavelet comparator behind the paper's Figure 7.
//
// A trusted curator computes the orthonormal Haar coefficients of the exact
// count vector and publishes each with Laplace noise. Sensitivity
// derivation (documented here because we re-derive rather than copy Xiao et
// al.'s weight system): adding or removing one record at leaf z changes
// exactly one detail coefficient per level l, by 2^{-l/2}, and the average
// coefficient by 1/sqrt(D). Splitting eps uniformly over these h+1
// "coefficient groups" and adding Laplace(Delta_l * (h+1) / eps) noise to
// group l therefore satisfies eps-DP by basic composition. Range queries
// are the same sparse coefficient combinations used by HaarHRR.
//
// This uniform split mirrors the uniform level split used by the
// centralized hierarchical baseline, making the Figure 7 ratio comparison
// apples-to-apples; EXPERIMENTS.md discusses the substitution.

#ifndef LDPRANGE_CENTRAL_CENTRAL_WAVELET_H_
#define LDPRANGE_CENTRAL_CENTRAL_WAVELET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/haar.h"

namespace ldp {

/// Centralized Haar-wavelet mechanism over raw counts.
class CentralWavelet {
 public:
  CentralWavelet(uint64_t domain, double eps);

  uint64_t domain() const { return domain_; }
  uint64_t padded_domain() const { return padded_; }
  uint32_t height() const { return height_; }
  std::string Name() const { return "Central-Wavelet"; }

  /// Laplace scale applied to detail level l (1 = finest): the level's
  /// sensitivity 2^{-l/2} times (h+1)/eps.
  double NoiseScale(uint32_t level) const;

  /// Laplace scale applied to the average coefficient.
  double AverageNoiseScale() const;

  /// Builds noisy coefficients from exact counts (length = domain).
  void Fit(const std::vector<double>& true_counts, Rng& rng);

  /// Noisy count of records in [a, b] inclusive.
  double RangeQuery(uint64_t a, uint64_t b) const;

  /// Exact variance of RangeQuery(a, b): the squared coefficient weights
  /// times the per-level Laplace variances (2 * scale^2). Used by the
  /// analytic average-variance computation for Figure 7.
  double RangeVariance(uint64_t a, uint64_t b) const;

 private:
  uint64_t domain_;
  uint64_t padded_;
  uint32_t height_;
  double eps_;
  bool fitted_ = false;
  HaarCoefficients noisy_;
};

}  // namespace ldp

#endif  // LDPRANGE_CENTRAL_CENTRAL_WAVELET_H_
