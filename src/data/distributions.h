// Synthetic input distributions (paper Section 5, "Dataset Used").
//
// The paper evaluates on values sampled from a truncated Cauchy
// distribution: center P*D (0 < P < 1), height (scale) D/10 by default, and
// samples falling outside [0, D) are dropped and re-drawn. Larger heights
// flatten the distribution; shifting P moves the mass. We add Zipf, uniform
// and a Gaussian mixture for robustness experiments (the paper notes its
// conclusions are insensitive to the data distribution).

#ifndef LDPRANGE_DATA_DISTRIBUTIONS_H_
#define LDPRANGE_DATA_DISTRIBUTIONS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"

namespace ldp {

/// Interface: draws one value in [0, domain).
class ValueDistribution {
 public:
  virtual ~ValueDistribution() = default;
  virtual uint64_t domain() const = 0;
  virtual std::string Name() const = 0;
  virtual uint64_t Sample(Rng& rng) const = 0;
};

/// The paper's truncated Cauchy: center = P*D, scale = height; out-of-range
/// draws are rejected and re-drawn.
class CauchyDistribution final : public ValueDistribution {
 public:
  /// Default parameters match the paper: center_fraction P = 0.4 and
  /// scale = D/10 when `scale` <= 0.
  CauchyDistribution(uint64_t domain, double center_fraction = 0.4,
                     double scale = 0.0);

  uint64_t domain() const override { return domain_; }
  std::string Name() const override;
  uint64_t Sample(Rng& rng) const override;

  double center() const { return center_; }
  double scale() const { return scale_; }

 private:
  uint64_t domain_;
  double center_;
  double scale_;
};

/// Zipf(s) over [0, D): P(z) proportional to 1/(z+1)^s.
class ZipfDistribution final : public ValueDistribution {
 public:
  ZipfDistribution(uint64_t domain, double exponent = 1.1);

  uint64_t domain() const override { return domain_; }
  std::string Name() const override;
  uint64_t Sample(Rng& rng) const override;

 private:
  uint64_t domain_;
  double exponent_;
  std::vector<double> cdf_;  // precomputed inverse-CDF table
};

/// Uniform over [0, D).
class UniformDistribution final : public ValueDistribution {
 public:
  explicit UniformDistribution(uint64_t domain);

  uint64_t domain() const override { return domain_; }
  std::string Name() const override { return "Uniform"; }
  uint64_t Sample(Rng& rng) const override;

 private:
  uint64_t domain_;
};

/// Mixture of two truncated Gaussians (bimodal stress test).
class BimodalGaussianDistribution final : public ValueDistribution {
 public:
  BimodalGaussianDistribution(uint64_t domain, double center1_fraction = 0.25,
                              double center2_fraction = 0.75,
                              double scale_fraction = 0.05);

  uint64_t domain() const override { return domain_; }
  std::string Name() const override { return "Bimodal"; }
  uint64_t Sample(Rng& rng) const override;

 private:
  uint64_t domain_;
  double c1_, c2_, scale_;
};

}  // namespace ldp

#endif  // LDPRANGE_DATA_DISTRIBUTIONS_H_
