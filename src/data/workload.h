// Range-query workloads (paper Section 5, "Sampling range queries for
// evaluation").
//
// Small/medium domains enumerate every range; for D = 2^20 / 2^22 the paper
// picks evenly spaced start points (every 2^15 / 2^16 steps) and evaluates
// all ranges beginning there. Workloads are visited by callback, never
// materialized: the full enumeration at D = 2^16 alone is ~2 * 10^9 queries.

#ifndef LDPRANGE_DATA_WORKLOAD_H_
#define LDPRANGE_DATA_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/random.h"

namespace ldp {

/// Callback receiving one inclusive range [a, b].
using RangeVisitor = std::function<void(uint64_t a, uint64_t b)>;

/// A declarative query workload over a domain of size D.
class QueryWorkload {
 public:
  /// Every range [a, b] with a <= b (D(D+1)/2 queries).
  static QueryWorkload AllRanges();

  /// Every range of exactly length r (D - r + 1 queries).
  static QueryWorkload FixedLength(uint64_t r);

  /// The paper's large-domain sampling: starts at multiples of
  /// `start_stride`; from each start, ends at multiples of `length_stride`
  /// (1 = all ends, matching the paper).
  static QueryWorkload Strided(uint64_t start_stride, uint64_t length_stride);

  /// All D prefix queries [0, b].
  static QueryWorkload Prefixes();

  /// `count` ranges with uniformly random endpoints, from `seed`.
  static QueryWorkload Random(uint64_t count, uint64_t seed);

  /// Invokes `visit` for every query in the workload.
  void Visit(uint64_t domain, const RangeVisitor& visit) const;

  /// Number of queries Visit() will produce.
  uint64_t CountQueries(uint64_t domain) const;

  std::string Name() const;

 private:
  enum class Kind { kAllRanges, kFixedLength, kStrided, kPrefixes, kRandom };

  QueryWorkload(Kind kind, uint64_t p1, uint64_t p2, uint64_t seed);

  Kind kind_;
  uint64_t param1_;
  uint64_t param2_;
  uint64_t seed_;
};

}  // namespace ldp

#endif  // LDPRANGE_DATA_WORKLOAD_H_
