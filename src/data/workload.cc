#include "data/workload.h"

#include "common/check.h"

namespace ldp {

QueryWorkload::QueryWorkload(Kind kind, uint64_t p1, uint64_t p2,
                             uint64_t seed)
    : kind_(kind), param1_(p1), param2_(p2), seed_(seed) {}

QueryWorkload QueryWorkload::AllRanges() {
  return QueryWorkload(Kind::kAllRanges, 0, 0, 0);
}

QueryWorkload QueryWorkload::FixedLength(uint64_t r) {
  LDP_CHECK_GE(r, 1u);
  return QueryWorkload(Kind::kFixedLength, r, 0, 0);
}

QueryWorkload QueryWorkload::Strided(uint64_t start_stride,
                                     uint64_t length_stride) {
  LDP_CHECK_GE(start_stride, 1u);
  LDP_CHECK_GE(length_stride, 1u);
  return QueryWorkload(Kind::kStrided, start_stride, length_stride, 0);
}

QueryWorkload QueryWorkload::Prefixes() {
  return QueryWorkload(Kind::kPrefixes, 0, 0, 0);
}

QueryWorkload QueryWorkload::Random(uint64_t count, uint64_t seed) {
  LDP_CHECK_GE(count, 1u);
  return QueryWorkload(Kind::kRandom, count, 0, seed);
}

void QueryWorkload::Visit(uint64_t domain, const RangeVisitor& visit) const {
  LDP_CHECK_GE(domain, 1u);
  switch (kind_) {
    case Kind::kAllRanges:
      for (uint64_t a = 0; a < domain; ++a) {
        for (uint64_t b = a; b < domain; ++b) {
          visit(a, b);
        }
      }
      return;
    case Kind::kFixedLength: {
      LDP_CHECK_LE(param1_, domain);
      for (uint64_t a = 0; a + param1_ <= domain; ++a) {
        visit(a, a + param1_ - 1);
      }
      return;
    }
    case Kind::kStrided:
      for (uint64_t a = 0; a < domain; a += param1_) {
        for (uint64_t b = a; b < domain; b += param2_) {
          visit(a, b);
        }
      }
      return;
    case Kind::kPrefixes:
      for (uint64_t b = 0; b < domain; ++b) {
        visit(0, b);
      }
      return;
    case Kind::kRandom: {
      Rng rng(seed_);
      for (uint64_t i = 0; i < param1_; ++i) {
        uint64_t x = rng.UniformInt(domain);
        uint64_t y = rng.UniformInt(domain);
        visit(x < y ? x : y, x < y ? y : x);
      }
      return;
    }
  }
}

uint64_t QueryWorkload::CountQueries(uint64_t domain) const {
  switch (kind_) {
    case Kind::kAllRanges:
      return domain * (domain + 1) / 2;
    case Kind::kFixedLength:
      return domain - param1_ + 1;
    case Kind::kStrided: {
      uint64_t total = 0;
      for (uint64_t a = 0; a < domain; a += param1_) {
        total += (domain - a + param2_ - 1) / param2_;
      }
      return total;
    }
    case Kind::kPrefixes:
      return domain;
    case Kind::kRandom:
      return param1_;
  }
  return 0;
}

std::string QueryWorkload::Name() const {
  switch (kind_) {
    case Kind::kAllRanges:
      return "all-ranges";
    case Kind::kFixedLength:
      return std::string("length-") + std::to_string(param1_);
    case Kind::kStrided:
      return std::string("strided-") + std::to_string(param1_) + "x" +
             std::to_string(param2_);
    case Kind::kPrefixes:
      return "prefixes";
    case Kind::kRandom:
      return std::string("random-") + std::to_string(param1_);
  }
  return "unknown";
}

}  // namespace ldp
