// Ground-truth dataset container.
//
// Stores the exact item counts of the simulated population (O(D) memory
// regardless of N, which matters at the paper's N = 2^26) and precomputes
// prefix sums so that true range / prefix / quantile answers are O(1) —
// these are the baselines every experiment compares its private estimates
// against.

#ifndef LDPRANGE_DATA_DATASET_H_
#define LDPRANGE_DATA_DATASET_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "data/distributions.h"

namespace ldp {

/// An immutable population of N private values over [0, D).
class Dataset {
 public:
  /// Samples `n` users i.i.d. from `distribution`.
  static Dataset FromDistribution(const ValueDistribution& distribution,
                                  uint64_t n, Rng& rng);

  /// Builds from explicit per-user values.
  static Dataset FromValues(const std::vector<uint64_t>& values,
                            uint64_t domain);

  /// Builds directly from item counts.
  static Dataset FromCounts(std::vector<uint64_t> counts);

  /// Loads a dataset from a text file with one integer value per line
  /// (blank lines and lines starting with '#' are skipped). Values must
  /// be in [0, domain). Returns nullopt on I/O failure or malformed /
  /// out-of-range input.
  static std::optional<Dataset> FromFile(const std::string& path,
                                         uint64_t domain);

  /// Writes the population to `path` in the FromFile format (values in
  /// ascending order, counts expanded). Returns false on I/O failure.
  bool ToFile(const std::string& path) const;

  uint64_t domain() const { return static_cast<uint64_t>(counts_.size()); }
  uint64_t size() const { return total_; }
  const std::vector<uint64_t>& counts() const { return counts_; }

  /// The population as an explicit value-per-user vector (ascending order,
  /// counts expanded — the iteration order of every ingestion loop in the
  /// library). O(N) memory; the input of the batched encode paths.
  std::vector<uint64_t> ExpandValues() const;

  /// Exact fractional frequencies (length D; sums to 1 for nonempty data).
  std::vector<double> Frequencies() const;

  /// Exact CDF: cdf[j] = fraction of users with value <= j.
  std::vector<double> Cdf() const;

  /// Exact fraction of users in [a, b] inclusive.
  double TrueRange(uint64_t a, uint64_t b) const;

  /// Exact fraction of users with value <= b.
  double TruePrefix(uint64_t b) const { return TrueRange(0, b); }

 private:
  explicit Dataset(std::vector<uint64_t> counts);

  std::vector<uint64_t> counts_;
  std::vector<uint64_t> prefix_;  // prefix_[i] = sum counts_[0..i-1]
  uint64_t total_ = 0;
};

}  // namespace ldp

#endif  // LDPRANGE_DATA_DATASET_H_
