#include "data/distributions.h"

#include <cmath>

#include "common/check.h"

namespace ldp {

CauchyDistribution::CauchyDistribution(uint64_t domain,
                                       double center_fraction, double scale)
    : domain_(domain),
      center_(center_fraction * static_cast<double>(domain)),
      scale_(scale > 0.0 ? scale : static_cast<double>(domain) / 10.0) {
  LDP_CHECK_GE(domain, 1u);
  LDP_CHECK(center_fraction > 0.0 && center_fraction < 1.0);
}

std::string CauchyDistribution::Name() const {
  return std::string("Cauchy(P=") +
         std::to_string(center_ / static_cast<double>(domain_)) + ")";
}

uint64_t CauchyDistribution::Sample(Rng& rng) const {
  // Rejection: re-draw until the variate lands inside the domain (the
  // paper "drops any values that fall outside [D]").
  for (;;) {
    double x = center_ + scale_ * rng.Cauchy();
    if (x >= 0.0 && x < static_cast<double>(domain_)) {
      return static_cast<uint64_t>(x);
    }
  }
}

ZipfDistribution::ZipfDistribution(uint64_t domain, double exponent)
    : domain_(domain), exponent_(exponent), cdf_(domain) {
  LDP_CHECK_GE(domain, 1u);
  LDP_CHECK(exponent > 0.0);
  double total = 0.0;
  for (uint64_t z = 0; z < domain; ++z) {
    total += std::pow(static_cast<double>(z + 1), -exponent);
    cdf_[z] = total;
  }
  for (double& c : cdf_) {
    c /= total;
  }
}

std::string ZipfDistribution::Name() const {
  return std::string("Zipf(s=") + std::to_string(exponent_) + ")";
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.UniformDouble();
  // Binary search the CDF table.
  uint64_t lo = 0;
  uint64_t hi = domain_ - 1;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] >= u) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

UniformDistribution::UniformDistribution(uint64_t domain) : domain_(domain) {
  LDP_CHECK_GE(domain, 1u);
}

uint64_t UniformDistribution::Sample(Rng& rng) const {
  return rng.UniformInt(domain_);
}

BimodalGaussianDistribution::BimodalGaussianDistribution(
    uint64_t domain, double center1_fraction, double center2_fraction,
    double scale_fraction)
    : domain_(domain),
      c1_(center1_fraction * static_cast<double>(domain)),
      c2_(center2_fraction * static_cast<double>(domain)),
      scale_(scale_fraction * static_cast<double>(domain)) {
  LDP_CHECK_GE(domain, 1u);
  LDP_CHECK(scale_ > 0.0);
}

uint64_t BimodalGaussianDistribution::Sample(Rng& rng) const {
  for (;;) {
    double center = rng.Bernoulli(0.5) ? c1_ : c2_;
    double x = center + scale_ * rng.Gaussian();
    if (x >= 0.0 && x < static_cast<double>(domain_)) {
      return static_cast<uint64_t>(x);
    }
  }
}

}  // namespace ldp
