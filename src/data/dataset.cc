#include "data/dataset.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace ldp {

Dataset::Dataset(std::vector<uint64_t> counts) : counts_(std::move(counts)) {
  LDP_CHECK(!counts_.empty());
  prefix_.assign(counts_.size() + 1, 0);
  for (size_t i = 0; i < counts_.size(); ++i) {
    prefix_[i + 1] = prefix_[i] + counts_[i];
  }
  total_ = prefix_.back();
}

Dataset Dataset::FromDistribution(const ValueDistribution& distribution,
                                  uint64_t n, Rng& rng) {
  std::vector<uint64_t> counts(distribution.domain(), 0);
  for (uint64_t i = 0; i < n; ++i) {
    ++counts[distribution.Sample(rng)];
  }
  return Dataset(std::move(counts));
}

Dataset Dataset::FromValues(const std::vector<uint64_t>& values,
                            uint64_t domain) {
  std::vector<uint64_t> counts(domain, 0);
  for (uint64_t v : values) {
    LDP_CHECK_LT(v, domain);
    ++counts[v];
  }
  return Dataset(std::move(counts));
}

Dataset Dataset::FromCounts(std::vector<uint64_t> counts) {
  return Dataset(std::move(counts));
}

std::vector<uint64_t> Dataset::ExpandValues() const {
  std::vector<uint64_t> values;
  values.reserve(total_);
  for (uint64_t z = 0; z < counts_.size(); ++z) {
    values.insert(values.end(), counts_[z], z);
  }
  return values;
}

std::optional<Dataset> Dataset::FromFile(const std::string& path,
                                         uint64_t domain) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::vector<uint64_t> counts(domain, 0);
  std::string line;
  while (std::getline(in, line)) {
    // Skip blanks and comments.
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    std::istringstream parse(line);
    uint64_t value = 0;
    if (!(parse >> value)) return std::nullopt;
    std::string trailing;
    if (parse >> trailing) return std::nullopt;  // more than one token
    if (value >= domain) return std::nullopt;
    ++counts[value];
  }
  if (in.bad()) return std::nullopt;
  return Dataset(std::move(counts));
}

bool Dataset::ToFile(const std::string& path) const {
  std::ofstream outf(path);
  if (!outf) return false;
  outf << "# ldprange dataset: domain=" << domain() << " n=" << size()
       << "\n";
  for (uint64_t z = 0; z < counts_.size(); ++z) {
    for (uint64_t i = 0; i < counts_[z]; ++i) {
      outf << z << "\n";
    }
  }
  return static_cast<bool>(outf);
}

std::vector<double> Dataset::Frequencies() const {
  std::vector<double> freq(counts_.size(), 0.0);
  if (total_ == 0) return freq;
  double n = static_cast<double>(total_);
  for (size_t i = 0; i < counts_.size(); ++i) {
    freq[i] = static_cast<double>(counts_[i]) / n;
  }
  return freq;
}

std::vector<double> Dataset::Cdf() const {
  std::vector<double> cdf(counts_.size(), 0.0);
  if (total_ == 0) return cdf;
  double n = static_cast<double>(total_);
  for (size_t i = 0; i < counts_.size(); ++i) {
    cdf[i] = static_cast<double>(prefix_[i + 1]) / n;
  }
  return cdf;
}

double Dataset::TrueRange(uint64_t a, uint64_t b) const {
  LDP_CHECK_LE(a, b);
  LDP_CHECK_LT(b, domain());
  if (total_ == 0) return 0.0;
  return static_cast<double>(prefix_[b + 1] - prefix_[a]) /
         static_cast<double>(total_);
}

}  // namespace ldp
