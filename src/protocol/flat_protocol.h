// Deployable client/server split of the flat HRR point-query protocol —
// the frequency-oracle analogue of haar_protocol.h, useful when only
// point/short-range queries are needed (paper Section 4.2 shows flat wins
// there). Each report is the 10-byte serialization of one HRR coefficient
// sample.

#ifndef LDPRANGE_PROTOCOL_FLAT_PROTOCOL_H_
#define LDPRANGE_PROTOCOL_FLAT_PROTOCOL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/random.h"
#include "frequency/hrr.h"

namespace ldp::protocol {

/// Serializes an HRR report to the fixed 10-byte wire format
/// [tag][coefficient u64][sign u8].
std::vector<uint8_t> SerializeHrrReport(const HrrReport& report);

/// Parses + validates; false on wrong tag/length/sign byte.
bool ParseHrrReport(const std::vector<uint8_t>& bytes, HrrReport* report);

/// Client-side flat HRR encoder.
class FlatHrrClient {
 public:
  FlatHrrClient(uint64_t domain, double eps);

  uint64_t domain() const { return domain_; }
  uint64_t padded_domain() const { return padded_; }

  HrrReport Encode(uint64_t value, Rng& rng) const;
  std::vector<uint8_t> EncodeSerialized(uint64_t value, Rng& rng) const;

  /// Batched encode (a simulation driver standing in for many devices):
  /// one report per value, drawn exactly as the Encode loop would.
  std::vector<HrrReport> EncodeUsers(std::span<const uint64_t> values,
                                     Rng& rng) const;

 private:
  uint64_t domain_;
  uint64_t padded_;
  double eps_;
};

/// Server-side flat HRR aggregator with O(1) post-Finalize range queries.
class FlatHrrServer {
 public:
  FlatHrrServer(uint64_t domain, double eps);

  FlatHrrServer(const FlatHrrServer&) = delete;
  FlatHrrServer& operator=(const FlatHrrServer&) = delete;

  uint64_t domain() const { return domain_; }

  /// Ingests one report; false (counted) when out of range.
  bool Absorb(const HrrReport& report);
  bool AbsorbSerialized(const std::vector<uint8_t>& bytes);

  /// Batched ingestion; returns the number of accepted reports (rejects
  /// are counted per report, exactly as the Absorb loop would).
  uint64_t AbsorbBatch(std::span<const HrrReport> reports);

  uint64_t accepted_reports() const { return accepted_; }
  uint64_t rejected_reports() const { return rejected_; }

  void Finalize();
  double RangeQuery(uint64_t a, uint64_t b) const;
  std::vector<double> EstimateFrequencies() const;

 private:
  uint64_t domain_;
  uint64_t padded_;
  std::unique_ptr<HrrOracle> oracle_;
  uint64_t accepted_ = 0;
  uint64_t rejected_ = 0;
  bool finalized_ = false;
  std::vector<double> frequencies_;
  std::vector<double> prefix_;
};

}  // namespace ldp::protocol

#endif  // LDPRANGE_PROTOCOL_FLAT_PROTOCOL_H_
