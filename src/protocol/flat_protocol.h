// Deployable client/server split of the flat HRR point-query protocol —
// the frequency-oracle analogue of haar_protocol.h, useful when only
// point/short-range queries are needed (paper Section 4.2 shows flat wins
// there). Each report is one HRR coefficient sample, framed under the
// versioned v2 envelope (envelope.h); the seed's unframed 10-byte v1
// format stays decodable so old captures still parse.

#ifndef LDPRANGE_PROTOCOL_FLAT_PROTOCOL_H_
#define LDPRANGE_PROTOCOL_FLAT_PROTOCOL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/random.h"
#include "frequency/hrr.h"
#include "protocol/envelope.h"

namespace ldp::protocol {

/// Serializes an HRR report. v2 (default): 8-byte envelope + payload
/// [index u64][sign u8], 17 bytes. v1: legacy [tag 0x01][index u64]
/// [sign u8], 10 bytes.
std::vector<uint8_t> SerializeHrrReport(const HrrReport& report,
                                        uint8_t wire_version = kWireVersionV2);

/// Parses + validates either wire version, routed by the leading bytes.
/// Returns an explicit error code; total over arbitrary input.
ParseError ParseHrrReportDetailed(std::span<const uint8_t> bytes,
                                  HrrReport* report);

/// Convenience wrapper: true iff ParseHrrReportDetailed returns kOk.
bool ParseHrrReport(std::span<const uint8_t> bytes, HrrReport* report);

/// Serializes many reports as one v2 batch message (kFlatHrrBatch):
/// payload = [count varint][count x ([index u64][sign u8])].
std::vector<uint8_t> SerializeHrrReportBatch(std::span<const HrrReport> reports);

/// Parses a v2 batch message. Valid items land in `reports`; items whose
/// slot decodes but fails validation (bad sign byte) are skipped and
/// counted in `malformed` (may be null). Structural failures (bad
/// framing, count/size mismatch) reject the whole message.
ParseError ParseHrrReportBatch(std::span<const uint8_t> bytes,
                               std::vector<HrrReport>* reports,
                               uint64_t* malformed = nullptr);

/// Client-side flat HRR encoder.
class FlatHrrClient {
 public:
  FlatHrrClient(uint64_t domain, double eps);

  uint64_t domain() const { return domain_; }
  uint64_t padded_domain() const { return padded_; }

  /// Wire version EncodeSerialized emits (default kWireVersionV2).
  uint8_t wire_version() const { return wire_version_; }
  void set_wire_version(uint8_t version);

  /// Downgrade hook: picks the highest version this client speaks that
  /// the server accepts (see ServerAcceptedVersions()). Returns false —
  /// leaving the current version untouched — when no common version
  /// exists.
  bool NegotiateWireVersion(std::span<const uint8_t> server_accepted);

  HrrReport Encode(uint64_t value, Rng& rng) const;
  std::vector<uint8_t> EncodeSerialized(uint64_t value, Rng& rng) const;

  /// Batched encode (a simulation driver standing in for many devices):
  /// one report per value, drawn exactly as the Encode loop would.
  std::vector<HrrReport> EncodeUsers(std::span<const uint64_t> values,
                                     Rng& rng) const;

  /// Batched encode + one framed v2 batch message (v2-only: the batch
  /// frame does not exist in v1).
  std::vector<uint8_t> EncodeUsersSerialized(std::span<const uint64_t> values,
                                             Rng& rng) const;

 private:
  uint64_t domain_;
  uint64_t padded_;
  double eps_;
  uint8_t wire_version_ = kWireVersionV2;
};

/// Server-side flat HRR aggregator with O(1) post-Finalize range queries.
class FlatHrrServer {
 public:
  FlatHrrServer(uint64_t domain, double eps);

  FlatHrrServer(const FlatHrrServer&) = delete;
  FlatHrrServer& operator=(const FlatHrrServer&) = delete;

  uint64_t domain() const { return domain_; }

  /// Wire versions this server's Absorb path accepts.
  static std::span<const uint8_t> AcceptedWireVersions() {
    return ServerAcceptedVersions();
  }

  /// Ingests one report; false (counted) when out of range.
  bool Absorb(const HrrReport& report);
  bool AbsorbSerialized(std::span<const uint8_t> bytes);

  /// Batched ingestion; returns the number of accepted reports (rejects
  /// are counted per report, exactly as the Absorb loop would).
  uint64_t AbsorbBatch(std::span<const HrrReport> reports);

  /// Parses + ingests one framed v2 batch message. On kOk, per-item
  /// malformed/out-of-range reports are counted as rejections and
  /// `accepted` (may be null) receives the number absorbed; a structural
  /// failure counts one rejection for the whole message.
  ParseError AbsorbBatchSerialized(std::span<const uint8_t> bytes,
                                   uint64_t* accepted = nullptr);

  uint64_t accepted_reports() const { return accepted_; }
  uint64_t rejected_reports() const { return rejected_; }

  void Finalize();
  double RangeQuery(uint64_t a, uint64_t b) const;
  std::vector<double> EstimateFrequencies() const;

 private:
  uint64_t domain_;
  uint64_t padded_;
  std::unique_ptr<HrrOracle> oracle_;
  uint64_t accepted_ = 0;
  uint64_t rejected_ = 0;
  bool finalized_ = false;
  std::vector<double> frequencies_;
  std::vector<double> prefix_;
};

}  // namespace ldp::protocol

#endif  // LDPRANGE_PROTOCOL_FLAT_PROTOCOL_H_
