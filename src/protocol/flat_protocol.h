// Deployable client/server split of the flat HRR point-query protocol —
// the frequency-oracle analogue of haar_protocol.h, useful when only
// point/short-range queries are needed (paper Section 4.2 shows flat wins
// there). Each report is one HRR coefficient sample, framed under the
// versioned v2 envelope (envelope.h); the seed's unframed 10-byte v1
// format stays decodable so old captures still parse.

#ifndef LDPRANGE_PROTOCOL_FLAT_PROTOCOL_H_
#define LDPRANGE_PROTOCOL_FLAT_PROTOCOL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/random.h"
#include "frequency/hrr.h"
#include "protocol/envelope.h"
#include "service/aggregator_server.h"

namespace ldp::protocol {

/// Serializes an HRR report. v2 (default): 8-byte envelope + payload
/// [index u64][sign u8], 17 bytes. v1: legacy [tag 0x01][index u64]
/// [sign u8], 10 bytes.
std::vector<uint8_t> SerializeHrrReport(const HrrReport& report,
                                        uint8_t wire_version = kWireVersionV2);

/// Parses + validates either wire version, routed by the leading bytes.
/// Returns an explicit error code; total over arbitrary input.
ParseError ParseHrrReportDetailed(std::span<const uint8_t> bytes,
                                  HrrReport* report);

/// Convenience wrapper: true iff ParseHrrReportDetailed returns kOk.
bool ParseHrrReport(std::span<const uint8_t> bytes, HrrReport* report);

/// Serializes many reports as one v2 batch message (kFlatHrrBatch):
/// payload = [count varint][count x ([index u64][sign u8])].
std::vector<uint8_t> SerializeHrrReportBatch(std::span<const HrrReport> reports);

/// Parses a v2 batch message. Valid items land in `reports`; items whose
/// slot decodes but fails validation (bad sign byte) are skipped and
/// counted in `malformed` (may be null). Structural failures (bad
/// framing, count/size mismatch) reject the whole message.
ParseError ParseHrrReportBatch(std::span<const uint8_t> bytes,
                               std::vector<HrrReport>* reports,
                               uint64_t* malformed = nullptr);

/// Client-side flat HRR encoder. Wire-version selection and downgrade
/// negotiation come from DowngradableClient.
class FlatHrrClient : public DowngradableClient {
 public:
  FlatHrrClient(uint64_t domain, double eps);

  uint64_t domain() const { return domain_; }
  uint64_t padded_domain() const { return padded_; }

  HrrReport Encode(uint64_t value, Rng& rng) const;
  std::vector<uint8_t> EncodeSerialized(uint64_t value, Rng& rng) const;

  /// Batched encode (a simulation driver standing in for many devices):
  /// one report per value, drawn exactly as the Encode loop would.
  std::vector<HrrReport> EncodeUsers(std::span<const uint64_t> values,
                                     Rng& rng) const;

  /// Batched encode + one framed v2 batch message (v2-only: the batch
  /// frame does not exist in v1).
  std::vector<uint8_t> EncodeUsersSerialized(std::span<const uint64_t> values,
                                             Rng& rng) const;

 private:
  uint64_t domain_;
  uint64_t padded_;
  double eps_;
};

/// Server-side flat HRR aggregator with O(1) post-Finalize range queries.
/// Ingestion accounting, finalize discipline, and quantile search come
/// from service::AggregatorServer.
class FlatHrrServer final : public service::AggregatorServer {
 public:
  FlatHrrServer(uint64_t domain, double eps);

  std::string Name() const override { return "FlatHrr"; }
  uint64_t domain() const override { return domain_; }

  /// Ingests one report; false (counted) when out of range.
  bool Absorb(const HrrReport& report);
  bool AbsorbSerialized(std::span<const uint8_t> bytes) override;

  /// Batched ingestion; returns the number of accepted reports (rejects
  /// are counted per report, exactly as the Absorb loop would).
  uint64_t AbsorbBatch(std::span<const HrrReport> reports);

  ParseError DoAbsorbBatchSerialized(std::span<const uint8_t> bytes,
                                   uint64_t* accepted) override;

  double RangeQuery(uint64_t a, uint64_t b) const override;
  /// Uncertainty from Fact 1: a length-r range answers with variance
  /// r * V_F over the accepted-report population.
  RangeEstimate RangeQueryWithUncertainty(uint64_t a,
                                          uint64_t b) const override;
  std::vector<double> EstimateFrequencies() const override;

 private:
  void DoFinalize() override;
  service::StateKind state_kind() const override {
    return service::StateKind::kFlat;
  }
  double state_epsilon() const override { return eps_; }
  void AppendStateBody(std::vector<uint8_t>& out) const override;
  bool RestoreStateBody(std::span<const uint8_t> body) override;
  std::unique_ptr<service::AggregatorServer> DoCloneEmpty() const override;
  service::MergeStatus DoMergeFrom(service::AggregatorServer& other) override;

  uint64_t domain_;
  uint64_t padded_;
  double eps_;
  std::unique_ptr<HrrOracle> oracle_;
  std::vector<double> frequencies_;
  std::vector<double> prefix_;
};

}  // namespace ldp::protocol

#endif  // LDPRANGE_PROTOCOL_FLAT_PROTOCOL_H_
