#include "protocol/oracle_wire.h"

#include <cmath>

#include "common/check.h"
#include "common/hash.h"
#include "frequency/grr.h"
#include "frequency/olh.h"
#include "protocol/wire.h"

namespace ldp::protocol {

namespace {

// Encodes the perturbed unary vector shared by OUE and SUE: bit j is set
// with probability p_match when j == value, p_other otherwise, consuming
// one Bernoulli draw per bit in index order (identical to the oracles'
// SubmitValue loops).
UnaryWireReport EncodeUnary(uint64_t domain, uint64_t value, double p_match,
                            double p_other, Rng& rng) {
  UnaryWireReport report;
  report.num_bits = domain;
  report.packed.assign((domain + 7) / 8, 0);
  for (uint64_t j = 0; j < domain; ++j) {
    if (rng.Bernoulli(j == value ? p_match : p_other)) {
      report.SetBit(j);
    }
  }
  return report;
}

}  // namespace

GrrWireReport EncodeGrrReport(uint64_t domain, double eps, uint64_t value,
                              Rng& rng) {
  LDP_CHECK_GE(domain, 2u);
  LDP_CHECK_LT(value, domain);
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
  return GrrWireReport{GrrPerturb(value, domain, eps, rng)};
}

UnaryWireReport EncodeOueReport(uint64_t domain, double eps, uint64_t value,
                                Rng& rng) {
  LDP_CHECK_GE(domain, 1u);
  LDP_CHECK_LT(value, domain);
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
  double q = 1.0 / (1.0 + std::exp(eps));
  return EncodeUnary(domain, value, 0.5, q, rng);
}

UnaryWireReport EncodeSueReport(uint64_t domain, double eps, uint64_t value,
                                Rng& rng) {
  LDP_CHECK_GE(domain, 1u);
  LDP_CHECK_LT(value, domain);
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
  double e2 = std::exp(eps / 2.0);
  double p = e2 / (1.0 + e2);
  return EncodeUnary(domain, value, p, 1.0 - p, rng);
}

OlhWireReport EncodeOlhReport(uint64_t domain, double eps, uint64_t value,
                              Rng& rng, uint64_t g_override) {
  LDP_CHECK_GE(domain, 2u);
  LDP_CHECK_LT(value, domain);
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
  uint64_t g = g_override != 0 ? g_override : OlhOptimalHashRange(eps);
  LDP_CHECK_GE(g, 2u);
  OlhWireReport report;
  report.seed = rng.Next();
  uint64_t h = SeededHash(report.seed, value, g);
  report.cell = GrrPerturb(h, g, eps, rng);
  return report;
}

std::vector<uint8_t> SerializeGrrReport(const GrrWireReport& report) {
  std::vector<uint8_t> payload;
  AppendVarU64(payload, report.value);
  return EncodeEnvelope(MechanismTag::kGrr, payload);
}

std::vector<uint8_t> SerializeUnaryReport(MechanismTag tag,
                                          const UnaryWireReport& report) {
  LDP_CHECK(tag == MechanismTag::kOue || tag == MechanismTag::kSue);
  LDP_CHECK_EQ(report.packed.size(), (report.num_bits + 7) / 8);
  std::vector<uint8_t> payload;
  payload.reserve(10 + 4 + report.packed.size());
  AppendVarU64(payload, report.num_bits);
  AppendLengthPrefixedBytes(payload, report.packed);
  return EncodeEnvelope(tag, payload);
}

std::vector<uint8_t> SerializeOlhReport(const OlhWireReport& report) {
  std::vector<uint8_t> payload;
  AppendU64(payload, report.seed);
  AppendVarU64(payload, report.cell);
  return EncodeEnvelope(MechanismTag::kOlh, payload);
}

namespace {

// Shared prologue: decode the envelope and require `tag`.
ParseError OpenEnvelope(MechanismTag tag, std::span<const uint8_t> bytes,
                        Envelope* env) {
  ParseError err = DecodeEnvelope(bytes, env);
  if (err != ParseError::kOk) return err;
  if (env->mechanism != tag) return ParseError::kBadPayload;
  return ParseError::kOk;
}

}  // namespace

ParseError ParseGrrReport(std::span<const uint8_t> bytes,
                          GrrWireReport* report) {
  Envelope env;
  ParseError err = OpenEnvelope(MechanismTag::kGrr, bytes, &env);
  if (err != ParseError::kOk) return err;
  WireReader reader(env.payload);
  uint64_t value = 0;
  if (!reader.ReadVarU64(&value) || !reader.AtEnd()) {
    return ParseError::kBadPayload;
  }
  report->value = value;
  return ParseError::kOk;
}

ParseError ParseUnaryReport(MechanismTag tag, std::span<const uint8_t> bytes,
                            UnaryWireReport* report) {
  LDP_CHECK(tag == MechanismTag::kOue || tag == MechanismTag::kSue);
  Envelope env;
  ParseError err = OpenEnvelope(tag, bytes, &env);
  if (err != ParseError::kOk) return err;
  WireReader reader(env.payload);
  uint64_t num_bits = 0;
  std::span<const uint8_t> packed;
  if (!reader.ReadVarU64(&num_bits) ||
      !reader.ReadLengthPrefixedBytes(&packed) || !reader.AtEnd()) {
    return ParseError::kBadPayload;
  }
  if (packed.size() != (num_bits + 7) / 8) return ParseError::kBadPayload;
  // Guard num_bits + 7 overflow: packed.size() is bounded by the buffer,
  // so any num_bits that agrees with it is far below the wrap point.
  if (num_bits > uint64_t{8} * packed.size()) return ParseError::kBadPayload;
  if (num_bits % 8 != 0 && !packed.empty()) {
    uint8_t padding = static_cast<uint8_t>(packed.back() >>
                                           (num_bits % 8));
    if (padding != 0) return ParseError::kBadPayload;
  }
  report->num_bits = num_bits;
  report->packed.assign(packed.begin(), packed.end());
  return ParseError::kOk;
}

ParseError ParseOlhReport(std::span<const uint8_t> bytes,
                          OlhWireReport* report) {
  Envelope env;
  ParseError err = OpenEnvelope(MechanismTag::kOlh, bytes, &env);
  if (err != ParseError::kOk) return err;
  WireReader reader(env.payload);
  uint64_t seed = 0;
  uint64_t cell = 0;
  if (!reader.ReadU64(&seed) || !reader.ReadVarU64(&cell) ||
      !reader.AtEnd()) {
    return ParseError::kBadPayload;
  }
  report->seed = seed;
  report->cell = cell;
  return ParseError::kOk;
}

}  // namespace ldp::protocol
