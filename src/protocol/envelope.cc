#include "protocol/envelope.h"

#include <algorithm>

#include "common/check.h"
#include "protocol/wire.h"

namespace ldp::protocol {

bool IsKnownMechanismTag(uint8_t tag) {
  switch (static_cast<MechanismTag>(tag)) {
    case MechanismTag::kFlatHrr:
    case MechanismTag::kHaarHrr:
    case MechanismTag::kTreeHrr:
    case MechanismTag::kGrr:
    case MechanismTag::kOue:
    case MechanismTag::kSue:
    case MechanismTag::kOlh:
    case MechanismTag::kAheadReport:
    case MechanismTag::kAheadTree:
    case MechanismTag::kMultiDimReport:
    case MechanismTag::kStreamBegin:
    case MechanismTag::kStreamChunk:
    case MechanismTag::kStreamEnd:
    case MechanismTag::kRangeQueryRequest:
    case MechanismTag::kRangeQueryResponse:
    case MechanismTag::kMultiDimQuery:
    case MechanismTag::kMultiDimQueryResponse:
    case MechanismTag::kStatsQuery:
    case MechanismTag::kStatsResponse:
    case MechanismTag::kStateSnapshot:
    case MechanismTag::kStateMerge:
    case MechanismTag::kStateMergeResponse:
    case MechanismTag::kFlatHrrBatch:
    case MechanismTag::kHaarHrrBatch:
    case MechanismTag::kTreeHrrBatch:
    case MechanismTag::kAheadReportBatch:
    case MechanismTag::kMultiDimReportBatch:
      return true;
  }
  return false;
}

std::string MechanismTagName(MechanismTag tag) {
  switch (tag) {
    case MechanismTag::kFlatHrr: return "FlatHrr";
    case MechanismTag::kHaarHrr: return "HaarHrr";
    case MechanismTag::kTreeHrr: return "TreeHrr";
    case MechanismTag::kGrr: return "Grr";
    case MechanismTag::kOue: return "Oue";
    case MechanismTag::kSue: return "Sue";
    case MechanismTag::kOlh: return "Olh";
    case MechanismTag::kAheadReport: return "AheadReport";
    case MechanismTag::kAheadTree: return "AheadTree";
    case MechanismTag::kMultiDimReport: return "MultiDimReport";
    case MechanismTag::kStreamBegin: return "StreamBegin";
    case MechanismTag::kStreamChunk: return "StreamChunk";
    case MechanismTag::kStreamEnd: return "StreamEnd";
    case MechanismTag::kRangeQueryRequest: return "RangeQueryRequest";
    case MechanismTag::kRangeQueryResponse: return "RangeQueryResponse";
    case MechanismTag::kMultiDimQuery: return "MultiDimQuery";
    case MechanismTag::kMultiDimQueryResponse: return "MultiDimQueryResponse";
    case MechanismTag::kStatsQuery: return "StatsQuery";
    case MechanismTag::kStatsResponse: return "StatsResponse";
    case MechanismTag::kStateSnapshot: return "StateSnapshot";
    case MechanismTag::kStateMerge: return "StateMerge";
    case MechanismTag::kStateMergeResponse: return "StateMergeResponse";
    case MechanismTag::kFlatHrrBatch: return "FlatHrrBatch";
    case MechanismTag::kHaarHrrBatch: return "HaarHrrBatch";
    case MechanismTag::kTreeHrrBatch: return "TreeHrrBatch";
    case MechanismTag::kAheadReportBatch: return "AheadReportBatch";
    case MechanismTag::kMultiDimReportBatch: return "MultiDimReportBatch";
  }
  return "?";
}

std::string ParseErrorName(ParseError error) {
  switch (error) {
    case ParseError::kOk: return "ok";
    case ParseError::kTruncated: return "truncated";
    case ParseError::kBadMagic: return "bad_magic";
    case ParseError::kUnsupportedVersion: return "unsupported_version";
    case ParseError::kUnknownMechanism: return "unknown_mechanism";
    case ParseError::kLengthMismatch: return "length_mismatch";
    case ParseError::kTrailingJunk: return "trailing_junk";
    case ParseError::kBadPayload: return "bad_payload";
  }
  return "?";
}

std::vector<uint8_t> EncodeEnvelope(MechanismTag mechanism,
                                    std::span<const uint8_t> payload) {
  std::vector<uint8_t> out;
  out.reserve(kEnvelopeHeaderSize + payload.size());
  AppendEnvelopeHeader(out, mechanism,
                       static_cast<uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void AppendEnvelopeHeader(std::vector<uint8_t>& out, MechanismTag mechanism,
                          uint32_t payload_len) {
  AppendU8(out, kEnvelopeMagic0);
  AppendU8(out, kEnvelopeMagic1);
  AppendU8(out, kWireVersionV2);
  AppendU8(out, static_cast<uint8_t>(mechanism));
  AppendU32(out, payload_len);
}

ParseError DecodeEnvelope(std::span<const uint8_t> bytes, Envelope* out) {
  if (bytes.size() < kEnvelopeHeaderSize) return ParseError::kTruncated;
  if (bytes[0] != kEnvelopeMagic0 || bytes[1] != kEnvelopeMagic1) {
    return ParseError::kBadMagic;
  }
  uint8_t version = bytes[2];
  if (version != kWireVersionV2) return ParseError::kUnsupportedVersion;
  uint8_t tag = bytes[3];
  if (!IsKnownMechanismTag(tag)) return ParseError::kUnknownMechanism;
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(bytes[4 + i]) << (8 * i);
  }
  // All arithmetic in size_t over validated sizes: a payload_len near
  // UINT32_MAX is compared, never allocated.
  size_t present = bytes.size() - kEnvelopeHeaderSize;
  if (present < payload_len) return ParseError::kLengthMismatch;
  if (present > payload_len) return ParseError::kTrailingJunk;
  out->version = version;
  out->mechanism = static_cast<MechanismTag>(tag);
  out->payload = bytes.subspan(kEnvelopeHeaderSize, payload_len);
  return ParseError::kOk;
}

bool LooksLikeEnvelope(std::span<const uint8_t> bytes) {
  return bytes.size() >= 2 && bytes[0] == kEnvelopeMagic0 &&
         bytes[1] == kEnvelopeMagic1;
}

std::span<const uint8_t> ServerAcceptedVersions() {
  static constexpr uint8_t kAccepted[] = {kWireVersionV1, kWireVersionV2};
  return kAccepted;
}

uint8_t NegotiateWireVersion(std::span<const uint8_t> client_supported,
                             std::span<const uint8_t> server_accepted) {
  uint8_t best = 0;
  for (uint8_t c : client_supported) {
    if (c > best &&
        std::find(server_accepted.begin(), server_accepted.end(), c) !=
            server_accepted.end()) {
      best = c;
    }
  }
  return best;
}

void DowngradableClient::set_wire_version(uint8_t version) {
  LDP_CHECK_MSG(version == kWireVersionV1 || version == kWireVersionV2,
                "unknown wire version");
  wire_version_ = version;
}

bool DowngradableClient::NegotiateWireVersion(
    std::span<const uint8_t> server_accepted) {
  static constexpr uint8_t kSpoken[] = {kWireVersionV1, kWireVersionV2};
  uint8_t version = protocol::NegotiateWireVersion(kSpoken, server_accepted);
  if (version == 0) return false;
  wire_version_ = version;
  return true;
}

}  // namespace ldp::protocol
