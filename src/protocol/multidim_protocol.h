// Deployable client/server split of the multidimensional hierarchical
// grid mechanism (paper Section 6).
//
// Each user samples a level tuple (l_1, ..., l_d) uniformly from the
// (h+1)^d - 1 non-trivial tuples and reports their cell in that tuple's
// product grid through OLH — the oracle whose report size and variance
// are independent of the cell count, which here grows as a product over
// axes. The report is the sampled tuple plus the OLH (seed, perturbed
// cell) pair; every tuple grid shares one hash range g so the client
// does not need to know which grid the server will route to.
//
// Payload layouts (see envelope.h for the surrounding header):
//   kMultiDimReport       [dims u8][dims x level u8][seed u64][cell u32]
//   kMultiDimReportBatch  [dims u8][count varint]
//                           [count x (dims x level u8, seed u64, cell u32)]
// Unlike the 1-D batch messages, dims is hoisted to the batch header —
// that keeps every item the same fixed size (dims + 12 bytes), so the
// structural count-vs-bytes check stays exact. All parsers are total
// over adversarial bytes.

#ifndef LDPRANGE_PROTOCOL_MULTIDIM_PROTOCOL_H_
#define LDPRANGE_PROTOCOL_MULTIDIM_PROTOCOL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/badic.h"
#include "core/multidim.h"
#include "frequency/olh.h"
#include "protocol/envelope.h"
#include "service/aggregator_server.h"

namespace ldp::protocol {

/// One multidim grid report: the sampled per-axis levels (levels[0] is
/// dimension 0; not all zero — the all-root tuple carries no report) and
/// the OLH (seed, perturbed cell) pair for that tuple's product grid.
struct MultiDimReport {
  std::vector<uint8_t> levels;
  uint64_t seed = 0;
  uint32_t cell = 0;

  bool operator==(const MultiDimReport&) const = default;
};

/// Serializes one report as a framed v2 kMultiDimReport message
/// (multidim is v2-native; there is no v1 downgrade form).
std::vector<uint8_t> SerializeMultiDimReport(const MultiDimReport& report);

/// Total parser; kBadPayload on a wrong tag, a dims outside
/// [1, kMaxWireDimensions], a size mismatch, or an all-root level tuple.
ParseError ParseMultiDimReport(std::span<const uint8_t> bytes,
                               MultiDimReport* report);

/// One framed v2 kMultiDimReportBatch message. Every report must carry
/// exactly `dims` levels; `dims` is taken as a parameter (not from the
/// first report) so an empty batch still frames.
std::vector<uint8_t> SerializeMultiDimReportBatch(
    uint32_t dims, std::span<const MultiDimReport> reports);

/// Parses a v2 batch message; per-item validation failures (an all-root
/// tuple) are skipped and counted in `malformed` (may be null),
/// structural failures reject the whole message.
ParseError ParseMultiDimReportBatch(std::span<const uint8_t> bytes,
                                    std::vector<MultiDimReport>* reports,
                                    uint64_t* malformed = nullptr);

/// Client-side encoder. v2-only (no DowngradableClient): the multidim
/// messages have no v1 form to downgrade to.
class MultiDimClient {
 public:
  MultiDimClient(uint64_t domain_per_dim, uint32_t dimensions, double eps,
                 uint64_t fanout = 2);

  const TreeShape& shape() const { return shape_; }
  uint32_t dimensions() const { return dims_; }
  /// The shared OLH hash range g (optimal for eps); the server must be
  /// built with the same eps to agree on it.
  uint64_t hash_range() const { return g_; }

  /// Randomizes one point (`coords` holds dimensions() values, each in
  /// [0, domain_per_dim)).
  MultiDimReport Encode(const uint64_t* coords, Rng& rng) const;
  std::vector<uint8_t> EncodeSerialized(const uint64_t* coords,
                                        Rng& rng) const;

  /// Batched encode over row-major points (coords.size() = n * d), one
  /// report per point, drawn exactly as the Encode loop would.
  std::vector<MultiDimReport> EncodeUsers(std::span<const uint64_t> coords,
                                          Rng& rng) const;

  /// Batched encode + one framed v2 batch message.
  std::vector<uint8_t> EncodeUsersSerialized(std::span<const uint64_t> coords,
                                             Rng& rng) const;

  /// Deterministic parallel encode: points are cut into fixed-size
  /// chunks, each drawn from its own seed-derived Rng into its own
  /// report slots, so the result is bit-identical for every `threads`
  /// value (0 = one per hardware core) — the wire-side analogue of
  /// core EncodePointsSharded.
  std::vector<MultiDimReport> EncodeUsersSharded(
      std::span<const uint64_t> coords, uint64_t seed,
      unsigned threads = 0) const;

 private:
  uint32_t dims_;
  double eps_;
  TreeShape shape_;
  uint64_t g_;
  uint64_t tuple_count_;        // (h+1)^d, including the all-root tuple
  std::vector<uint64_t> tuple_cells_;  // product-grid size per tuple
};

/// Server-side aggregator: one deferred-decode OLH oracle per non-trivial
/// level tuple, box queries assembled by the shared cross-product walk.
/// Ingestion accounting, finalize discipline, and quantile search come
/// from service::AggregatorServer; RangeQuery answers are the axis-0
/// marginal (remaining axes spanning their full domain).
class MultiDimServer final : public service::AggregatorServer {
 public:
  MultiDimServer(
      uint64_t domain_per_dim, uint32_t dimensions, double eps,
      uint64_t fanout = 2,
      uint64_t max_total_cells = HierarchicalGrid::kDefaultCellBudget);

  std::string Name() const override;
  const TreeShape& shape() const { return shape_; }
  /// Per-axis domain (the AggregatorServer contract for multidim).
  uint64_t domain() const override { return shape_.domain(); }
  uint32_t dimensions() const override { return dims_; }
  uint64_t hash_range() const { return g_; }

  /// v2 only: there is no v1 encoding of a multidim report.
  std::span<const uint8_t> AcceptedWireVersions() const override;

  /// Ingests one report; false (counted) on a dims mismatch, an
  /// out-of-range level, an all-root tuple, or a cell >= hash_range().
  bool Absorb(const MultiDimReport& report);
  bool AbsorbSerialized(std::span<const uint8_t> bytes) override;

  /// Batched ingestion; returns the number of accepted reports (rejects
  /// are counted per report, exactly as the Absorb loop would).
  uint64_t AbsorbBatch(std::span<const MultiDimReport> reports);

  ParseError DoAbsorbBatchSerialized(std::span<const uint8_t> bytes,
                                   uint64_t* accepted) override;

  /// System allocations ever made by the per-tuple pending-report columns.
  /// Arena-backed appends make this flat per absorbed chunk at steady
  /// state — the zero-copy ingestion contract's test hook.
  uint64_t report_allocation_count() const;

  double BoxQuery(std::span<const AxisInterval> box) const override;
  /// Uncertainty is the Section 6 cross-product accounting: the summed
  /// OLH estimator variances of the covering cells.
  RangeEstimate BoxQueryWithUncertainty(
      std::span<const AxisInterval> box) const override;

  double RangeQuery(uint64_t a, uint64_t b) const override;
  RangeEstimate RangeQueryWithUncertainty(uint64_t a,
                                          uint64_t b) const override;
  /// Axis-0 marginal frequencies (length = domain()).
  std::vector<double> EstimateFrequencies() const override;

 private:
  void DoFinalize() override;
  service::StateKind state_kind() const override {
    return service::StateKind::kGrid;
  }
  uint64_t state_fanout() const override { return shape_.fanout(); }
  double state_epsilon() const override { return eps_; }
  void AppendStateBody(std::vector<uint8_t>& out) const override;
  bool RestoreStateBody(std::span<const uint8_t> body) override;
  std::unique_ptr<service::AggregatorServer> DoCloneEmpty() const override;
  service::MergeStatus DoMergeFrom(service::AggregatorServer& other) override;

  uint32_t dims_;
  double eps_;
  TreeShape shape_;
  uint64_t g_;
  uint64_t max_total_cells_;  // kept for CloneEmpty (merge-shard contract)
  uint64_t tuple_count_;
  // One oracle per level tuple != all-zero; index = little-endian mixed
  // radix over (h+1), dimension 0 least significant, matching
  // core/multidim.h. Slot 0 stays null (the all-root cell is exact).
  std::vector<std::unique_ptr<OlhOracle>> oracles_;
  std::vector<std::vector<double>> estimates_;
};

}  // namespace ldp::protocol

#endif  // LDPRANGE_PROTOCOL_MULTIDIM_PROTOCOL_H_
