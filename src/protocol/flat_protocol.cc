#include "protocol/flat_protocol.h"

#include "common/bit_util.h"
#include "common/check.h"
#include "protocol/wire.h"

namespace ldp::protocol {

namespace {

constexpr uint8_t kFlatHrrTag = 0x01;

}  // namespace

std::vector<uint8_t> SerializeHrrReport(const HrrReport& report) {
  std::vector<uint8_t> out;
  out.reserve(10);
  AppendU8(out, kFlatHrrTag);
  AppendU64(out, report.coefficient_index);
  AppendU8(out, report.sign > 0 ? 1 : 0);
  return out;
}

bool ParseHrrReport(const std::vector<uint8_t>& bytes, HrrReport* report) {
  WireReader reader(bytes);
  uint8_t tag = 0;
  uint64_t index = 0;
  uint8_t sign = 0;
  if (!reader.ReadU8(&tag) || !reader.ReadU64(&index) ||
      !reader.ReadU8(&sign) || !reader.AtEnd()) {
    return false;
  }
  if (tag != kFlatHrrTag || sign > 1) {
    return false;
  }
  report->coefficient_index = index;
  report->sign = sign == 1 ? +1 : -1;
  return true;
}

FlatHrrClient::FlatHrrClient(uint64_t domain, double eps)
    : domain_(domain), padded_(NextPowerOfTwo(domain)), eps_(eps) {
  LDP_CHECK_GE(domain, 2u);
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
}

HrrReport FlatHrrClient::Encode(uint64_t value, Rng& rng) const {
  LDP_CHECK_LT(value, domain_);
  return HrrEncode(padded_, eps_, value, +1, rng);
}

std::vector<uint8_t> FlatHrrClient::EncodeSerialized(uint64_t value,
                                                     Rng& rng) const {
  return SerializeHrrReport(Encode(value, rng));
}

std::vector<HrrReport> FlatHrrClient::EncodeUsers(
    std::span<const uint64_t> values, Rng& rng) const {
  std::vector<HrrReport> reports;
  reports.reserve(values.size());
  for (uint64_t value : values) {
    reports.push_back(Encode(value, rng));
  }
  return reports;
}

FlatHrrServer::FlatHrrServer(uint64_t domain, double eps)
    : domain_(domain),
      padded_(NextPowerOfTwo(domain)),
      oracle_(std::make_unique<HrrOracle>(domain, eps)) {
  LDP_CHECK_GE(domain, 2u);
}

bool FlatHrrServer::Absorb(const HrrReport& report) {
  LDP_CHECK_MSG(!finalized_, "Absorb after Finalize");
  if (report.coefficient_index >= padded_ ||
      (report.sign != 1 && report.sign != -1)) {
    ++rejected_;
    return false;
  }
  oracle_->AbsorbReport(report);
  ++accepted_;
  return true;
}

bool FlatHrrServer::AbsorbSerialized(const std::vector<uint8_t>& bytes) {
  HrrReport report;
  if (!ParseHrrReport(bytes, &report)) {
    ++rejected_;
    return false;
  }
  return Absorb(report);
}

uint64_t FlatHrrServer::AbsorbBatch(std::span<const HrrReport> reports) {
  uint64_t accepted = 0;
  for (const HrrReport& report : reports) {
    if (Absorb(report)) ++accepted;
  }
  return accepted;
}

void FlatHrrServer::Finalize() {
  LDP_CHECK_MSG(!finalized_, "Finalize called twice");
  frequencies_ = oracle_->EstimateFractions();
  prefix_.assign(domain_ + 1, 0.0);
  for (uint64_t i = 0; i < domain_; ++i) {
    prefix_[i + 1] = prefix_[i] + frequencies_[i];
  }
  finalized_ = true;
}

double FlatHrrServer::RangeQuery(uint64_t a, uint64_t b) const {
  LDP_CHECK_MSG(finalized_, "RangeQuery before Finalize");
  LDP_CHECK_LE(a, b);
  LDP_CHECK_LT(b, domain_);
  return prefix_[b + 1] - prefix_[a];
}

std::vector<double> FlatHrrServer::EstimateFrequencies() const {
  LDP_CHECK_MSG(finalized_, "EstimateFrequencies before Finalize");
  return frequencies_;
}

}  // namespace ldp::protocol
