#include "protocol/flat_protocol.h"

#include <cmath>
#include <limits>

#include "common/bit_util.h"
#include "common/check.h"
#include "core/variance.h"
#include "protocol/wire.h"

namespace ldp::protocol {

namespace {

constexpr uint8_t kFlatHrrTagV1 = 0x01;
constexpr size_t kItemSize = 9;  // [index u64][sign u8]

void AppendItem(std::vector<uint8_t>& out, const HrrReport& report) {
  AppendU64(out, report.coefficient_index);
  AppendU8(out, report.sign > 0 ? 1 : 0);
}

// Decodes one fixed-size item; false on a bad sign byte (the only
// value-level check the item layout admits).
bool ReadItem(WireReader& reader, HrrReport* report) {
  uint64_t index = 0;
  uint8_t sign = 0;
  if (!reader.ReadU64(&index) || !reader.ReadU8(&sign)) return false;
  if (sign > 1) return false;
  report->coefficient_index = index;
  report->sign = sign == 1 ? +1 : -1;
  return true;
}

ParseError ParseV1(std::span<const uint8_t> bytes, HrrReport* report) {
  if (bytes.size() < 1 + kItemSize) return ParseError::kTruncated;
  if (bytes[0] != kFlatHrrTagV1) return ParseError::kBadMagic;
  if (bytes.size() > 1 + kItemSize) return ParseError::kTrailingJunk;
  WireReader reader(bytes.subspan(1));
  HrrReport out;
  if (!ReadItem(reader, &out)) return ParseError::kBadPayload;
  *report = out;
  return ParseError::kOk;
}

}  // namespace

std::vector<uint8_t> SerializeHrrReport(const HrrReport& report,
                                        uint8_t wire_version) {
  std::vector<uint8_t> out;
  if (wire_version == kWireVersionV1) {
    out.reserve(1 + kItemSize);
    AppendU8(out, kFlatHrrTagV1);
  } else {
    LDP_CHECK_EQ(wire_version, kWireVersionV2);
    out.reserve(kEnvelopeHeaderSize + kItemSize);
    AppendEnvelopeHeader(out, MechanismTag::kFlatHrr, kItemSize);
  }
  AppendItem(out, report);
  return out;
}

ParseError ParseHrrReportDetailed(std::span<const uint8_t> bytes,
                                  HrrReport* report) {
  if (!LooksLikeEnvelope(bytes)) return ParseV1(bytes, report);
  Envelope env;
  ParseError err = DecodeEnvelope(bytes, &env);
  if (err != ParseError::kOk) return err;
  if (env.mechanism != MechanismTag::kFlatHrr) {
    return ParseError::kBadPayload;
  }
  if (env.payload.size() != kItemSize) return ParseError::kBadPayload;
  WireReader reader(env.payload);
  HrrReport out;
  if (!ReadItem(reader, &out)) return ParseError::kBadPayload;
  *report = out;
  return ParseError::kOk;
}

bool ParseHrrReport(std::span<const uint8_t> bytes, HrrReport* report) {
  return ParseHrrReportDetailed(bytes, report) == ParseError::kOk;
}

std::vector<uint8_t> SerializeHrrReportBatch(
    std::span<const HrrReport> reports) {
  std::vector<uint8_t> payload;
  payload.reserve(10 + reports.size() * kItemSize);
  AppendVarU64(payload, reports.size());
  for (const HrrReport& report : reports) {
    AppendItem(payload, report);
  }
  return EncodeEnvelope(MechanismTag::kFlatHrrBatch, payload);
}

ParseError ParseHrrReportBatch(std::span<const uint8_t> bytes,
                               std::vector<HrrReport>* reports,
                               uint64_t* malformed) {
  Envelope env;
  ParseError err = DecodeEnvelope(bytes, &env);
  if (err != ParseError::kOk) return err;
  if (env.mechanism != MechanismTag::kFlatHrrBatch) {
    return ParseError::kBadPayload;
  }
  WireReader reader(env.payload);
  uint64_t count = 0;
  if (!reader.ReadVarU64(&count)) return ParseError::kBadPayload;
  // Bound count before the exact-size check so count * kItemSize cannot
  // wrap; exact framing then bounds the reserve by bytes actually present.
  if (count > reader.Remaining() / kItemSize ||
      reader.Remaining() != count * kItemSize) {
    return ParseError::kBadPayload;
  }
  reports->clear();
  reports->reserve(count);
  uint64_t bad = 0;
  for (uint64_t i = 0; i < count; ++i) {
    // ReadItem consumes the full fixed-size slot before validating, so
    // the reader stays aligned across a malformed item.
    HrrReport report;
    if (ReadItem(reader, &report)) {
      reports->push_back(report);
    } else {
      ++bad;
    }
  }
  if (malformed != nullptr) *malformed = bad;
  return ParseError::kOk;
}

FlatHrrClient::FlatHrrClient(uint64_t domain, double eps)
    : domain_(domain), padded_(NextPowerOfTwo(domain)), eps_(eps) {
  LDP_CHECK_GE(domain, 2u);
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
}

HrrReport FlatHrrClient::Encode(uint64_t value, Rng& rng) const {
  LDP_CHECK_LT(value, domain_);
  return HrrEncode(padded_, eps_, value, +1, rng);
}

std::vector<uint8_t> FlatHrrClient::EncodeSerialized(uint64_t value,
                                                     Rng& rng) const {
  return SerializeHrrReport(Encode(value, rng), wire_version_);
}

std::vector<HrrReport> FlatHrrClient::EncodeUsers(
    std::span<const uint64_t> values, Rng& rng) const {
  std::vector<HrrReport> reports;
  reports.reserve(values.size());
  for (uint64_t value : values) {
    reports.push_back(Encode(value, rng));
  }
  return reports;
}

std::vector<uint8_t> FlatHrrClient::EncodeUsersSerialized(
    std::span<const uint64_t> values, Rng& rng) const {
  LDP_CHECK_MSG(wire_version_ == kWireVersionV2,
                "batch framing requires wire v2");
  return SerializeHrrReportBatch(EncodeUsers(values, rng));
}

FlatHrrServer::FlatHrrServer(uint64_t domain, double eps)
    : domain_(domain),
      padded_(NextPowerOfTwo(domain)),
      eps_(eps),
      oracle_(std::make_unique<HrrOracle>(domain, eps)) {
  LDP_CHECK_GE(domain, 2u);
}

bool FlatHrrServer::Absorb(const HrrReport& report) {
  LDP_CHECK_MSG(!finalized_, "Absorb after Finalize");
  if (report.coefficient_index >= padded_ ||
      (report.sign != 1 && report.sign != -1)) {
    stats_.CountRejected();
    return false;
  }
  oracle_->AbsorbReport(report);
  stats_.CountAccepted();
  return true;
}

bool FlatHrrServer::AbsorbSerialized(std::span<const uint8_t> bytes) {
  HrrReport report;
  if (!ParseHrrReport(bytes, &report)) {
    stats_.CountRejected();
    return false;
  }
  return Absorb(report);
}

uint64_t FlatHrrServer::AbsorbBatch(std::span<const HrrReport> reports) {
  uint64_t accepted = 0;
  for (const HrrReport& report : reports) {
    if (Absorb(report)) ++accepted;
  }
  return accepted;
}

ParseError FlatHrrServer::DoAbsorbBatchSerialized(
    std::span<const uint8_t> bytes, uint64_t* accepted) {
  return IngestBatchMessage<HrrReport>(
      bytes,
      [](std::span<const uint8_t> b, std::vector<HrrReport>* r,
         uint64_t* m) { return ParseHrrReportBatch(b, r, m); },
      [this](std::span<const HrrReport> r) { return AbsorbBatch(r); },
      accepted);
}

void FlatHrrServer::AppendStateBody(std::vector<uint8_t>& out) const {
  oracle_->AppendState(out);
}

bool FlatHrrServer::RestoreStateBody(std::span<const uint8_t> body) {
  WireReader reader(body);
  return oracle_->RestoreState(reader) && reader.AtEnd();
}

std::unique_ptr<service::AggregatorServer> FlatHrrServer::DoCloneEmpty()
    const {
  return std::make_unique<FlatHrrServer>(domain_, eps_);
}

service::MergeStatus FlatHrrServer::DoMergeFrom(
    service::AggregatorServer& other) {
  // The base validated kind + configuration, and kFlat names exactly this
  // class, so the downcast is safe.
  auto& o = static_cast<FlatHrrServer&>(other);
  oracle_->MergeFrom(*o.oracle_);
  return service::MergeStatus::kOk;
}

void FlatHrrServer::DoFinalize() {
  frequencies_ = oracle_->EstimateFractions();
  prefix_.assign(domain_ + 1, 0.0);
  for (uint64_t i = 0; i < domain_; ++i) {
    prefix_[i + 1] = prefix_[i] + frequencies_[i];
  }
}

double FlatHrrServer::RangeQuery(uint64_t a, uint64_t b) const {
  LDP_CHECK_MSG(finalized_, "RangeQuery before Finalize");
  LDP_CHECK_LE(a, b);
  LDP_CHECK_LT(b, domain_);
  return prefix_[b + 1] - prefix_[a];
}

RangeEstimate FlatHrrServer::RangeQueryWithUncertainty(uint64_t a,
                                                       uint64_t b) const {
  // No accepted reports: the estimate is vacuous, its uncertainty
  // infinite (the bounds are undefined at n = 0).
  double variance =
      accepted_reports() == 0
          ? std::numeric_limits<double>::infinity()
          : FlatRangeVarianceBound(b - a + 1, eps_,
                                   static_cast<double>(accepted_reports()));
  return RangeEstimate{RangeQuery(a, b), std::sqrt(variance)};
}

std::vector<double> FlatHrrServer::EstimateFrequencies() const {
  LDP_CHECK_MSG(finalized_, "EstimateFrequencies before Finalize");
  return frequencies_;
}

}  // namespace ldp::protocol
