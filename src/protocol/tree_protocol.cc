#include "protocol/tree_protocol.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/bit_util.h"
#include "common/check.h"
#include "core/consistency.h"
#include "core/variance.h"
#include "protocol/wire.h"

namespace ldp::protocol {

namespace {

constexpr uint8_t kTreeHrrTagV1 = 0x03;
constexpr size_t kItemSize = 10;  // [level u8][index u64][sign u8]

void AppendItem(std::vector<uint8_t>& out, const TreeHrrReport& report) {
  AppendU8(out, static_cast<uint8_t>(report.level));
  AppendU64(out, report.inner.coefficient_index);
  AppendU8(out, report.inner.sign > 0 ? 1 : 0);
}

// Decodes one fixed-size item, consuming the full slot before validating
// so batch readers stay aligned across a malformed item.
bool ReadItem(WireReader& reader, TreeHrrReport* report) {
  uint8_t level = 0;
  uint64_t index = 0;
  uint8_t sign = 0;
  if (!reader.ReadU8(&level) || !reader.ReadU64(&index) ||
      !reader.ReadU8(&sign)) {
    return false;
  }
  if (sign > 1 || level == 0) return false;
  report->level = level;
  report->inner.coefficient_index = index;
  report->inner.sign = sign == 1 ? +1 : -1;
  return true;
}

ParseError ParseV1(std::span<const uint8_t> bytes, TreeHrrReport* report) {
  if (bytes.size() < 1 + kItemSize) return ParseError::kTruncated;
  if (bytes[0] != kTreeHrrTagV1) return ParseError::kBadMagic;
  if (bytes.size() > 1 + kItemSize) return ParseError::kTrailingJunk;
  WireReader reader(bytes.subspan(1));
  TreeHrrReport out;
  if (!ReadItem(reader, &out)) return ParseError::kBadPayload;
  *report = out;
  return ParseError::kOk;
}

}  // namespace

std::vector<uint8_t> SerializeTreeHrrReport(const TreeHrrReport& report,
                                            uint8_t wire_version) {
  std::vector<uint8_t> out;
  if (wire_version == kWireVersionV1) {
    out.reserve(1 + kItemSize);
    AppendU8(out, kTreeHrrTagV1);
  } else {
    LDP_CHECK_EQ(wire_version, kWireVersionV2);
    out.reserve(kEnvelopeHeaderSize + kItemSize);
    AppendEnvelopeHeader(out, MechanismTag::kTreeHrr, kItemSize);
  }
  AppendItem(out, report);
  return out;
}

ParseError ParseTreeHrrReportDetailed(std::span<const uint8_t> bytes,
                                      TreeHrrReport* report) {
  if (!LooksLikeEnvelope(bytes)) return ParseV1(bytes, report);
  Envelope env;
  ParseError err = DecodeEnvelope(bytes, &env);
  if (err != ParseError::kOk) return err;
  if (env.mechanism != MechanismTag::kTreeHrr) {
    return ParseError::kBadPayload;
  }
  if (env.payload.size() != kItemSize) return ParseError::kBadPayload;
  WireReader reader(env.payload);
  TreeHrrReport out;
  if (!ReadItem(reader, &out)) return ParseError::kBadPayload;
  *report = out;
  return ParseError::kOk;
}

bool ParseTreeHrrReport(std::span<const uint8_t> bytes,
                        TreeHrrReport* report) {
  return ParseTreeHrrReportDetailed(bytes, report) == ParseError::kOk;
}

std::vector<uint8_t> SerializeTreeHrrReportBatch(
    std::span<const TreeHrrReport> reports) {
  std::vector<uint8_t> payload;
  payload.reserve(10 + reports.size() * kItemSize);
  AppendVarU64(payload, reports.size());
  for (const TreeHrrReport& report : reports) {
    AppendItem(payload, report);
  }
  return EncodeEnvelope(MechanismTag::kTreeHrrBatch, payload);
}

ParseError ParseTreeHrrReportBatch(std::span<const uint8_t> bytes,
                                   std::vector<TreeHrrReport>* reports,
                                   uint64_t* malformed) {
  Envelope env;
  ParseError err = DecodeEnvelope(bytes, &env);
  if (err != ParseError::kOk) return err;
  if (env.mechanism != MechanismTag::kTreeHrrBatch) {
    return ParseError::kBadPayload;
  }
  WireReader reader(env.payload);
  uint64_t count = 0;
  if (!reader.ReadVarU64(&count)) return ParseError::kBadPayload;
  if (count > reader.Remaining() / kItemSize ||
      reader.Remaining() != count * kItemSize) {
    return ParseError::kBadPayload;
  }
  reports->clear();
  reports->reserve(count);
  uint64_t bad = 0;
  for (uint64_t i = 0; i < count; ++i) {
    TreeHrrReport report;
    if (ReadItem(reader, &report)) {
      reports->push_back(report);
    } else {
      ++bad;
    }
  }
  if (malformed != nullptr) *malformed = bad;
  return ParseError::kOk;
}

TreeHrrClient::TreeHrrClient(uint64_t domain, uint64_t fanout, double eps)
    : shape_(domain, fanout), eps_(eps) {
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
}

TreeHrrReport TreeHrrClient::Encode(uint64_t value, Rng& rng) const {
  LDP_CHECK_LT(value, shape_.domain());
  TreeHrrReport report;
  report.level = 1 + static_cast<uint32_t>(rng.UniformInt(shape_.height()));
  uint64_t node = shape_.NodeContaining(report.level, value);
  uint64_t padded = NextPowerOfTwo(shape_.NodesAtLevel(report.level));
  report.inner = HrrEncode(padded, eps_, node, +1, rng);
  return report;
}

std::vector<uint8_t> TreeHrrClient::EncodeSerialized(uint64_t value,
                                                     Rng& rng) const {
  return SerializeTreeHrrReport(Encode(value, rng), wire_version_);
}

std::vector<TreeHrrReport> TreeHrrClient::EncodeUsers(
    std::span<const uint64_t> values, Rng& rng) const {
  std::vector<TreeHrrReport> reports;
  reports.reserve(values.size());
  for (uint64_t value : values) {
    reports.push_back(Encode(value, rng));
  }
  return reports;
}

std::vector<uint8_t> TreeHrrClient::EncodeUsersSerialized(
    std::span<const uint64_t> values, Rng& rng) const {
  LDP_CHECK_MSG(wire_version_ == kWireVersionV2,
                "batch framing requires wire v2");
  return SerializeTreeHrrReportBatch(EncodeUsers(values, rng));
}

TreeHrrServer::TreeHrrServer(uint64_t domain, uint64_t fanout, double eps,
                             bool consistency)
    : shape_(domain, fanout), eps_(eps), consistency_(consistency) {
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
  level_oracles_.reserve(shape_.height());
  for (uint32_t l = 1; l <= shape_.height(); ++l) {
    level_oracles_.push_back(
        std::make_unique<HrrOracle>(shape_.NodesAtLevel(l), eps));
  }
}

bool TreeHrrServer::Absorb(const TreeHrrReport& report) {
  LDP_CHECK_MSG(!finalized_, "Absorb after Finalize");
  if (report.level == 0 || report.level > shape_.height() ||
      (report.inner.sign != 1 && report.inner.sign != -1)) {
    stats_.CountRejected();
    return false;
  }
  HrrOracle& oracle = *level_oracles_[report.level - 1];
  if (report.inner.coefficient_index >= oracle.padded_domain()) {
    stats_.CountRejected();
    return false;
  }
  oracle.AbsorbReport(report.inner);
  stats_.CountAccepted();
  return true;
}

bool TreeHrrServer::AbsorbSerialized(std::span<const uint8_t> bytes) {
  TreeHrrReport report;
  if (!ParseTreeHrrReport(bytes, &report)) {
    stats_.CountRejected();
    return false;
  }
  return Absorb(report);
}

uint64_t TreeHrrServer::AbsorbBatch(std::span<const TreeHrrReport> reports) {
  uint64_t accepted = 0;
  for (const TreeHrrReport& report : reports) {
    if (Absorb(report)) ++accepted;
  }
  return accepted;
}

ParseError TreeHrrServer::DoAbsorbBatchSerialized(
    std::span<const uint8_t> bytes, uint64_t* accepted) {
  return IngestBatchMessage<TreeHrrReport>(
      bytes,
      [](std::span<const uint8_t> b, std::vector<TreeHrrReport>* r,
         uint64_t* m) { return ParseTreeHrrReportBatch(b, r, m); },
      [this](std::span<const TreeHrrReport> r) { return AbsorbBatch(r); },
      accepted);
}

void TreeHrrServer::AppendStateBody(std::vector<uint8_t>& out) const {
  // [levels varint][levels x HrrOracle record, level 1 first].
  AppendVarU64(out, level_oracles_.size());
  for (const auto& oracle : level_oracles_) {
    oracle->AppendState(out);
  }
}

bool TreeHrrServer::RestoreStateBody(std::span<const uint8_t> body) {
  WireReader reader(body);
  uint64_t levels = 0;
  if (!reader.ReadVarU64(&levels)) return false;
  // Cross-check against this server's own shape, never an allocation size.
  if (levels != level_oracles_.size()) return false;
  for (auto& oracle : level_oracles_) {
    if (!oracle->RestoreState(reader)) return false;
  }
  return reader.AtEnd();
}

std::unique_ptr<service::AggregatorServer> TreeHrrServer::DoCloneEmpty()
    const {
  return std::make_unique<TreeHrrServer>(shape_.domain(), shape_.fanout(),
                                         eps_, consistency_);
}

service::MergeStatus TreeHrrServer::DoMergeFrom(
    service::AggregatorServer& other) {
  auto& o = static_cast<TreeHrrServer&>(other);
  // Consistency is a finalize-time post-processing switch, not aggregate
  // state, but merged shards must agree on how they will be finalized.
  if (o.consistency_ != consistency_) {
    return service::MergeStatus::kConfigMismatch;
  }
  for (size_t l = 0; l < level_oracles_.size(); ++l) {
    level_oracles_[l]->MergeFrom(*o.level_oracles_[l]);
  }
  return service::MergeStatus::kOk;
}

void TreeHrrServer::DoFinalize() {
  const uint32_t h = shape_.height();
  estimates_.assign(h + 1, {});
  estimates_[0] = {1.0};  // root known exactly in the local model
  for (uint32_t l = 1; l <= h; ++l) {
    estimates_[l] = level_oracles_[l - 1]->EstimateFractions();
  }
  if (consistency_) {
    EnforceHierarchicalConsistency(estimates_, shape_.fanout());
  }
}

double TreeHrrServer::RangeQuery(uint64_t a, uint64_t b) const {
  LDP_CHECK_MSG(finalized_, "RangeQuery before Finalize");
  LDP_CHECK_LE(a, b);
  LDP_CHECK_LT(b, shape_.domain());
  double total = 0.0;
  for (const TreeNode& node : shape_.Decompose(a, b)) {
    total += estimates_[node.level][node.index];
  }
  return total;
}

RangeEstimate TreeHrrServer::RangeQueryWithUncertainty(uint64_t a,
                                                       uint64_t b) const {
  double n = static_cast<double>(accepted_reports());
  // The bounds are stated for r >= 2 (log_B(1) = 0 would degenerate);
  // answer point queries with the length-2 envelope, a slight
  // over-estimate. No accepted reports: infinite uncertainty (the
  // bounds are undefined at n = 0).
  uint64_t r = std::max<uint64_t>(b - a + 1, 2);
  double variance;
  if (accepted_reports() == 0) {
    variance = std::numeric_limits<double>::infinity();
  } else if (consistency_) {
    variance = HhConsistentRangeVarianceBound(shape_.domain(),
                                              shape_.fanout(), r, eps_, n);
  } else {
    variance =
        HhRangeVarianceBound(shape_.domain(), shape_.fanout(), r, eps_, n);
  }
  return RangeEstimate{RangeQuery(a, b), std::sqrt(variance)};
}

std::vector<double> TreeHrrServer::EstimateFrequencies() const {
  LDP_CHECK_MSG(finalized_, "EstimateFrequencies before Finalize");
  const std::vector<double>& leaves = estimates_[shape_.height()];
  return std::vector<double>(leaves.begin(),
                             leaves.begin() + shape_.domain());
}

}  // namespace ldp::protocol
