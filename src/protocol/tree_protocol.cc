#include "protocol/tree_protocol.h"

#include "common/bit_util.h"
#include "common/check.h"
#include "core/consistency.h"
#include "protocol/wire.h"

namespace ldp::protocol {

namespace {

constexpr uint8_t kTreeHrrTag = 0x03;

}  // namespace

std::vector<uint8_t> SerializeTreeHrrReport(const TreeHrrReport& report) {
  std::vector<uint8_t> out;
  out.reserve(11);
  AppendU8(out, kTreeHrrTag);
  AppendU8(out, static_cast<uint8_t>(report.level));
  AppendU64(out, report.inner.coefficient_index);
  AppendU8(out, report.inner.sign > 0 ? 1 : 0);
  return out;
}

bool ParseTreeHrrReport(const std::vector<uint8_t>& bytes,
                        TreeHrrReport* report) {
  WireReader reader(bytes);
  uint8_t tag = 0;
  uint8_t level = 0;
  uint64_t index = 0;
  uint8_t sign = 0;
  if (!reader.ReadU8(&tag) || !reader.ReadU8(&level) ||
      !reader.ReadU64(&index) || !reader.ReadU8(&sign) || !reader.AtEnd()) {
    return false;
  }
  if (tag != kTreeHrrTag || sign > 1 || level == 0) {
    return false;
  }
  report->level = level;
  report->inner.coefficient_index = index;
  report->inner.sign = sign == 1 ? +1 : -1;
  return true;
}

TreeHrrClient::TreeHrrClient(uint64_t domain, uint64_t fanout, double eps)
    : shape_(domain, fanout), eps_(eps) {
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
}

TreeHrrReport TreeHrrClient::Encode(uint64_t value, Rng& rng) const {
  LDP_CHECK_LT(value, shape_.domain());
  TreeHrrReport report;
  report.level = 1 + static_cast<uint32_t>(rng.UniformInt(shape_.height()));
  uint64_t node = shape_.NodeContaining(report.level, value);
  uint64_t padded = NextPowerOfTwo(shape_.NodesAtLevel(report.level));
  report.inner = HrrEncode(padded, eps_, node, +1, rng);
  return report;
}

std::vector<uint8_t> TreeHrrClient::EncodeSerialized(uint64_t value,
                                                     Rng& rng) const {
  return SerializeTreeHrrReport(Encode(value, rng));
}

std::vector<TreeHrrReport> TreeHrrClient::EncodeUsers(
    std::span<const uint64_t> values, Rng& rng) const {
  std::vector<TreeHrrReport> reports;
  reports.reserve(values.size());
  for (uint64_t value : values) {
    reports.push_back(Encode(value, rng));
  }
  return reports;
}

TreeHrrServer::TreeHrrServer(uint64_t domain, uint64_t fanout, double eps,
                             bool consistency)
    : shape_(domain, fanout), consistency_(consistency) {
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
  level_oracles_.reserve(shape_.height());
  for (uint32_t l = 1; l <= shape_.height(); ++l) {
    level_oracles_.push_back(
        std::make_unique<HrrOracle>(shape_.NodesAtLevel(l), eps));
  }
}

bool TreeHrrServer::Absorb(const TreeHrrReport& report) {
  LDP_CHECK_MSG(!finalized_, "Absorb after Finalize");
  if (report.level == 0 || report.level > shape_.height() ||
      (report.inner.sign != 1 && report.inner.sign != -1)) {
    ++rejected_;
    return false;
  }
  HrrOracle& oracle = *level_oracles_[report.level - 1];
  if (report.inner.coefficient_index >= oracle.padded_domain()) {
    ++rejected_;
    return false;
  }
  oracle.AbsorbReport(report.inner);
  ++accepted_;
  return true;
}

bool TreeHrrServer::AbsorbSerialized(const std::vector<uint8_t>& bytes) {
  TreeHrrReport report;
  if (!ParseTreeHrrReport(bytes, &report)) {
    ++rejected_;
    return false;
  }
  return Absorb(report);
}

uint64_t TreeHrrServer::AbsorbBatch(std::span<const TreeHrrReport> reports) {
  uint64_t accepted = 0;
  for (const TreeHrrReport& report : reports) {
    if (Absorb(report)) ++accepted;
  }
  return accepted;
}

void TreeHrrServer::Finalize() {
  LDP_CHECK_MSG(!finalized_, "Finalize called twice");
  const uint32_t h = shape_.height();
  estimates_.assign(h + 1, {});
  estimates_[0] = {1.0};  // root known exactly in the local model
  for (uint32_t l = 1; l <= h; ++l) {
    estimates_[l] = level_oracles_[l - 1]->EstimateFractions();
  }
  if (consistency_) {
    EnforceHierarchicalConsistency(estimates_, shape_.fanout());
  }
  finalized_ = true;
}

double TreeHrrServer::RangeQuery(uint64_t a, uint64_t b) const {
  LDP_CHECK_MSG(finalized_, "RangeQuery before Finalize");
  LDP_CHECK_LE(a, b);
  LDP_CHECK_LT(b, shape_.domain());
  double total = 0.0;
  for (const TreeNode& node : shape_.Decompose(a, b)) {
    total += estimates_[node.level][node.index];
  }
  return total;
}

std::vector<double> TreeHrrServer::EstimateFrequencies() const {
  LDP_CHECK_MSG(finalized_, "EstimateFrequencies before Finalize");
  const std::vector<double>& leaves = estimates_[shape_.height()];
  return std::vector<double>(leaves.begin(),
                             leaves.begin() + shape_.domain());
}

uint64_t TreeHrrServer::QuantileQuery(double phi) const {
  LDP_CHECK_MSG(finalized_, "QuantileQuery before Finalize");
  LDP_CHECK(phi >= 0.0 && phi <= 1.0);
  uint64_t lo = 0;
  uint64_t hi = shape_.domain() - 1;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (RangeQuery(0, mid) >= phi) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace ldp::protocol
