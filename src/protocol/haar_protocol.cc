#include "protocol/haar_protocol.h"

#include <cmath>
#include <limits>

#include "common/bit_util.h"
#include "common/check.h"
#include "core/variance.h"
#include "protocol/wire.h"

namespace ldp::protocol {

namespace {

constexpr uint8_t kHaarHrrTagV1 = 0x02;
constexpr size_t kItemSize = 10;  // [level u8][index u64][sign u8]

// Sign byte encoding: 0 -> -1, 1 -> +1.
uint8_t SignToByte(int8_t sign) { return sign > 0 ? 1 : 0; }

void AppendItem(std::vector<uint8_t>& out, const HaarHrrReport& report) {
  AppendU8(out, static_cast<uint8_t>(report.level));
  AppendU64(out, report.inner.coefficient_index);
  AppendU8(out, SignToByte(report.inner.sign));
}

// Decodes one fixed-size item, consuming the full slot before validating
// so batch readers stay aligned across a malformed item.
bool ReadItem(WireReader& reader, HaarHrrReport* report) {
  uint8_t level = 0;
  uint64_t index = 0;
  uint8_t sign = 0;
  if (!reader.ReadU8(&level) || !reader.ReadU64(&index) ||
      !reader.ReadU8(&sign)) {
    return false;
  }
  if (sign > 1 || level == 0) return false;
  report->level = level;
  report->inner.coefficient_index = index;
  report->inner.sign = sign == 1 ? +1 : -1;
  return true;
}

ParseError ParseV1(std::span<const uint8_t> bytes, HaarHrrReport* report) {
  if (bytes.size() < 1 + kItemSize) return ParseError::kTruncated;
  if (bytes[0] != kHaarHrrTagV1) return ParseError::kBadMagic;
  if (bytes.size() > 1 + kItemSize) return ParseError::kTrailingJunk;
  WireReader reader(bytes.subspan(1));
  HaarHrrReport out;
  if (!ReadItem(reader, &out)) return ParseError::kBadPayload;
  *report = out;
  return ParseError::kOk;
}

}  // namespace

std::vector<uint8_t> SerializeHaarHrrReport(const HaarHrrReport& report,
                                            uint8_t wire_version) {
  std::vector<uint8_t> out;
  if (wire_version == kWireVersionV1) {
    out.reserve(1 + kItemSize);
    AppendU8(out, kHaarHrrTagV1);
  } else {
    LDP_CHECK_EQ(wire_version, kWireVersionV2);
    out.reserve(kEnvelopeHeaderSize + kItemSize);
    AppendEnvelopeHeader(out, MechanismTag::kHaarHrr, kItemSize);
  }
  AppendItem(out, report);
  return out;
}

ParseError ParseHaarHrrReportDetailed(std::span<const uint8_t> bytes,
                                      HaarHrrReport* report) {
  if (!LooksLikeEnvelope(bytes)) return ParseV1(bytes, report);
  Envelope env;
  ParseError err = DecodeEnvelope(bytes, &env);
  if (err != ParseError::kOk) return err;
  if (env.mechanism != MechanismTag::kHaarHrr) {
    return ParseError::kBadPayload;
  }
  if (env.payload.size() != kItemSize) return ParseError::kBadPayload;
  WireReader reader(env.payload);
  HaarHrrReport out;
  if (!ReadItem(reader, &out)) return ParseError::kBadPayload;
  *report = out;
  return ParseError::kOk;
}

bool ParseHaarHrrReport(std::span<const uint8_t> bytes,
                        HaarHrrReport* report) {
  return ParseHaarHrrReportDetailed(bytes, report) == ParseError::kOk;
}

std::vector<uint8_t> SerializeHaarHrrReportBatch(
    std::span<const HaarHrrReport> reports) {
  std::vector<uint8_t> payload;
  payload.reserve(10 + reports.size() * kItemSize);
  AppendVarU64(payload, reports.size());
  for (const HaarHrrReport& report : reports) {
    AppendItem(payload, report);
  }
  return EncodeEnvelope(MechanismTag::kHaarHrrBatch, payload);
}

ParseError ParseHaarHrrReportBatch(std::span<const uint8_t> bytes,
                                   std::vector<HaarHrrReport>* reports,
                                   uint64_t* malformed) {
  Envelope env;
  ParseError err = DecodeEnvelope(bytes, &env);
  if (err != ParseError::kOk) return err;
  if (env.mechanism != MechanismTag::kHaarHrrBatch) {
    return ParseError::kBadPayload;
  }
  WireReader reader(env.payload);
  uint64_t count = 0;
  if (!reader.ReadVarU64(&count)) return ParseError::kBadPayload;
  if (count > reader.Remaining() / kItemSize ||
      reader.Remaining() != count * kItemSize) {
    return ParseError::kBadPayload;
  }
  reports->clear();
  reports->reserve(count);
  uint64_t bad = 0;
  for (uint64_t i = 0; i < count; ++i) {
    HaarHrrReport report;
    if (ReadItem(reader, &report)) {
      reports->push_back(report);
    } else {
      ++bad;
    }
  }
  if (malformed != nullptr) *malformed = bad;
  return ParseError::kOk;
}

HaarHrrClient::HaarHrrClient(uint64_t domain, double eps)
    : domain_(domain),
      padded_(NextPowerOfTwo(domain)),
      height_(Log2Floor(padded_)),
      eps_(eps) {
  LDP_CHECK_GE(domain, 2u);
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
}

HaarHrrReport HaarHrrClient::Encode(uint64_t value, Rng& rng) const {
  LDP_CHECK_LT(value, domain_);
  HaarHrrReport report;
  report.level = 1 + static_cast<uint32_t>(rng.UniformInt(height_));
  HaarUserCoefficient view = HaarUserView(value, report.level);
  report.inner = HrrEncode(padded_ >> report.level, eps_, view.block,
                           view.sign, rng);
  return report;
}

std::vector<uint8_t> HaarHrrClient::EncodeSerialized(uint64_t value,
                                                     Rng& rng) const {
  return SerializeHaarHrrReport(Encode(value, rng), wire_version_);
}

std::vector<HaarHrrReport> HaarHrrClient::EncodeUsers(
    std::span<const uint64_t> values, Rng& rng) const {
  std::vector<HaarHrrReport> reports;
  reports.reserve(values.size());
  for (uint64_t value : values) {
    reports.push_back(Encode(value, rng));
  }
  return reports;
}

std::vector<uint8_t> HaarHrrClient::EncodeUsersSerialized(
    std::span<const uint64_t> values, Rng& rng) const {
  LDP_CHECK_MSG(wire_version_ == kWireVersionV2,
                "batch framing requires wire v2");
  return SerializeHaarHrrReportBatch(EncodeUsers(values, rng));
}

HaarHrrServer::HaarHrrServer(uint64_t domain, double eps)
    : domain_(domain),
      padded_(NextPowerOfTwo(domain)),
      height_(Log2Floor(padded_)),
      eps_(eps) {
  LDP_CHECK_GE(domain, 2u);
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
  level_oracles_.reserve(height_);
  for (uint32_t l = 1; l <= height_; ++l) {
    level_oracles_.push_back(
        std::make_unique<HrrOracle>(padded_ >> l, eps));
  }
}

bool HaarHrrServer::Absorb(const HaarHrrReport& report) {
  LDP_CHECK_MSG(!finalized_, "Absorb after Finalize");
  if (report.level == 0 || report.level > height_ ||
      report.inner.coefficient_index >= (padded_ >> report.level) ||
      (report.inner.sign != 1 && report.inner.sign != -1)) {
    stats_.CountRejected();
    return false;
  }
  level_oracles_[report.level - 1]->AbsorbReport(report.inner);
  stats_.CountAccepted();
  return true;
}

bool HaarHrrServer::AbsorbSerialized(std::span<const uint8_t> bytes) {
  HaarHrrReport report;
  if (!ParseHaarHrrReport(bytes, &report)) {
    stats_.CountRejected();
    return false;
  }
  return Absorb(report);
}

uint64_t HaarHrrServer::AbsorbBatch(std::span<const HaarHrrReport> reports) {
  uint64_t accepted = 0;
  for (const HaarHrrReport& report : reports) {
    if (Absorb(report)) ++accepted;
  }
  return accepted;
}

ParseError HaarHrrServer::DoAbsorbBatchSerialized(
    std::span<const uint8_t> bytes, uint64_t* accepted) {
  return IngestBatchMessage<HaarHrrReport>(
      bytes,
      [](std::span<const uint8_t> b, std::vector<HaarHrrReport>* r,
         uint64_t* m) { return ParseHaarHrrReportBatch(b, r, m); },
      [this](std::span<const HaarHrrReport> r) { return AbsorbBatch(r); },
      accepted);
}

void HaarHrrServer::AppendStateBody(std::vector<uint8_t>& out) const {
  // [levels varint][levels x HrrOracle record, finest (l = 1) first].
  AppendVarU64(out, level_oracles_.size());
  for (const auto& oracle : level_oracles_) {
    oracle->AppendState(out);
  }
}

bool HaarHrrServer::RestoreStateBody(std::span<const uint8_t> body) {
  WireReader reader(body);
  uint64_t levels = 0;
  if (!reader.ReadVarU64(&levels)) return false;
  // The level count is a cross-check against this server's own shape,
  // never an allocation size.
  if (levels != level_oracles_.size()) return false;
  for (auto& oracle : level_oracles_) {
    if (!oracle->RestoreState(reader)) return false;
  }
  return reader.AtEnd();
}

std::unique_ptr<service::AggregatorServer> HaarHrrServer::DoCloneEmpty()
    const {
  return std::make_unique<HaarHrrServer>(domain_, eps_);
}

service::MergeStatus HaarHrrServer::DoMergeFrom(
    service::AggregatorServer& other) {
  auto& o = static_cast<HaarHrrServer&>(other);
  for (size_t l = 0; l < level_oracles_.size(); ++l) {
    level_oracles_[l]->MergeFrom(*o.level_oracles_[l]);
  }
  return service::MergeStatus::kOk;
}

void HaarHrrServer::DoFinalize() {
  coefficients_.height = height_;
  coefficients_.average = 1.0 / std::sqrt(static_cast<double>(padded_));
  coefficients_.detail.resize(height_);
  for (uint32_t l = 1; l <= height_; ++l) {
    std::vector<double> g = level_oracles_[l - 1]->EstimateFractions();
    double scale = std::exp2(-0.5 * static_cast<double>(l));
    for (double& v : g) {
      v *= scale;
    }
    coefficients_.detail[l - 1] = std::move(g);
  }
}

double HaarHrrServer::RangeQuery(uint64_t a, uint64_t b) const {
  LDP_CHECK_MSG(finalized_, "RangeQuery before Finalize");
  LDP_CHECK_LE(a, b);
  LDP_CHECK_LT(b, domain_);
  return HaarRangeEstimate(coefficients_, padded_, a, b);
}

RangeEstimate HaarHrrServer::RangeQueryWithUncertainty(uint64_t a,
                                                       uint64_t b) const {
  // No accepted reports: the estimate is vacuous, its uncertainty
  // infinite (the bounds are undefined at n = 0).
  double variance =
      accepted_reports() == 0
          ? std::numeric_limits<double>::infinity()
          : HaarRangeVarianceBound(padded_, eps_,
                                   static_cast<double>(accepted_reports()));
  return RangeEstimate{RangeQuery(a, b), std::sqrt(variance)};
}

std::vector<double> HaarHrrServer::EstimateFrequencies() const {
  LDP_CHECK_MSG(finalized_, "EstimateFrequencies before Finalize");
  std::vector<double> leaves = HaarInverse(coefficients_);
  leaves.resize(domain_);
  return leaves;
}

}  // namespace ldp::protocol
