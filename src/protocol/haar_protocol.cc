#include "protocol/haar_protocol.h"

#include <cmath>

#include "common/bit_util.h"
#include "common/check.h"
#include "protocol/wire.h"

namespace ldp::protocol {

namespace {

constexpr uint8_t kHaarHrrTag = 0x02;

// Sign byte encoding: 0 -> -1, 1 -> +1.
uint8_t SignToByte(int8_t sign) { return sign > 0 ? 1 : 0; }

}  // namespace

std::vector<uint8_t> SerializeHaarHrrReport(const HaarHrrReport& report) {
  std::vector<uint8_t> out;
  out.reserve(11);
  AppendU8(out, kHaarHrrTag);
  AppendU8(out, static_cast<uint8_t>(report.level));
  AppendU64(out, report.inner.coefficient_index);
  AppendU8(out, SignToByte(report.inner.sign));
  return out;
}

bool ParseHaarHrrReport(const std::vector<uint8_t>& bytes,
                        HaarHrrReport* report) {
  WireReader reader(bytes);
  uint8_t tag = 0;
  uint8_t level = 0;
  uint64_t index = 0;
  uint8_t sign = 0;
  if (!reader.ReadU8(&tag) || !reader.ReadU8(&level) ||
      !reader.ReadU64(&index) || !reader.ReadU8(&sign) || !reader.AtEnd()) {
    return false;
  }
  if (tag != kHaarHrrTag || sign > 1 || level == 0) {
    return false;
  }
  report->level = level;
  report->inner.coefficient_index = index;
  report->inner.sign = sign == 1 ? +1 : -1;
  return true;
}

HaarHrrClient::HaarHrrClient(uint64_t domain, double eps)
    : domain_(domain),
      padded_(NextPowerOfTwo(domain)),
      height_(Log2Floor(padded_)),
      eps_(eps) {
  LDP_CHECK_GE(domain, 2u);
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
}

HaarHrrReport HaarHrrClient::Encode(uint64_t value, Rng& rng) const {
  LDP_CHECK_LT(value, domain_);
  HaarHrrReport report;
  report.level = 1 + static_cast<uint32_t>(rng.UniformInt(height_));
  HaarUserCoefficient view = HaarUserView(value, report.level);
  report.inner = HrrEncode(padded_ >> report.level, eps_, view.block,
                           view.sign, rng);
  return report;
}

std::vector<uint8_t> HaarHrrClient::EncodeSerialized(uint64_t value,
                                                     Rng& rng) const {
  return SerializeHaarHrrReport(Encode(value, rng));
}

std::vector<HaarHrrReport> HaarHrrClient::EncodeUsers(
    std::span<const uint64_t> values, Rng& rng) const {
  std::vector<HaarHrrReport> reports;
  reports.reserve(values.size());
  for (uint64_t value : values) {
    reports.push_back(Encode(value, rng));
  }
  return reports;
}

HaarHrrServer::HaarHrrServer(uint64_t domain, double eps)
    : domain_(domain),
      padded_(NextPowerOfTwo(domain)),
      height_(Log2Floor(padded_)) {
  LDP_CHECK_GE(domain, 2u);
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
  level_oracles_.reserve(height_);
  for (uint32_t l = 1; l <= height_; ++l) {
    level_oracles_.push_back(
        std::make_unique<HrrOracle>(padded_ >> l, eps));
  }
}

bool HaarHrrServer::Absorb(const HaarHrrReport& report) {
  LDP_CHECK_MSG(!finalized_, "Absorb after Finalize");
  if (report.level == 0 || report.level > height_ ||
      report.inner.coefficient_index >= (padded_ >> report.level) ||
      (report.inner.sign != 1 && report.inner.sign != -1)) {
    ++rejected_;
    return false;
  }
  level_oracles_[report.level - 1]->AbsorbReport(report.inner);
  ++accepted_;
  return true;
}

bool HaarHrrServer::AbsorbSerialized(const std::vector<uint8_t>& bytes) {
  HaarHrrReport report;
  if (!ParseHaarHrrReport(bytes, &report)) {
    ++rejected_;
    return false;
  }
  return Absorb(report);
}

uint64_t HaarHrrServer::AbsorbBatch(std::span<const HaarHrrReport> reports) {
  uint64_t accepted = 0;
  for (const HaarHrrReport& report : reports) {
    if (Absorb(report)) ++accepted;
  }
  return accepted;
}

void HaarHrrServer::Finalize() {
  LDP_CHECK_MSG(!finalized_, "Finalize called twice");
  coefficients_.height = height_;
  coefficients_.average = 1.0 / std::sqrt(static_cast<double>(padded_));
  coefficients_.detail.resize(height_);
  for (uint32_t l = 1; l <= height_; ++l) {
    std::vector<double> g = level_oracles_[l - 1]->EstimateFractions();
    double scale = std::exp2(-0.5 * static_cast<double>(l));
    for (double& v : g) {
      v *= scale;
    }
    coefficients_.detail[l - 1] = std::move(g);
  }
  finalized_ = true;
}

double HaarHrrServer::RangeQuery(uint64_t a, uint64_t b) const {
  LDP_CHECK_MSG(finalized_, "RangeQuery before Finalize");
  LDP_CHECK_LE(a, b);
  LDP_CHECK_LT(b, domain_);
  return HaarRangeEstimate(coefficients_, padded_, a, b);
}

std::vector<double> HaarHrrServer::EstimateFrequencies() const {
  LDP_CHECK_MSG(finalized_, "EstimateFrequencies before Finalize");
  std::vector<double> leaves = HaarInverse(coefficients_);
  leaves.resize(domain_);
  return leaves;
}

uint64_t HaarHrrServer::QuantileQuery(double phi) const {
  LDP_CHECK_MSG(finalized_, "QuantileQuery before Finalize");
  LDP_CHECK(phi >= 0.0 && phi <= 1.0);
  uint64_t lo = 0;
  uint64_t hi = domain_ - 1;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (RangeQuery(0, mid) >= phi) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace ldp::protocol
